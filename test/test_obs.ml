(* The flight-recorder journal: ring-buffer semantics, the disabled no-op
   guarantee, JSONL round-tripping through the built-in reader, the
   bit-exact cost decomposition behind [drtp_sim explain], and — the
   property the per-domain buffers exist for — journal output that is
   byte-identical across [--jobs] counts. *)

module J = Dr_obs.Journal
module Tm = Dr_telemetry.Telemetry
module Pool = Dr_parallel.Pool
module Config = Dr_exp.Config
module Runner = Dr_exp.Runner
module Routing = Drtp.Routing

(* Every test leaves the journal global state as it found it: disabled,
   with the calling domain's buffer empty. *)
let scoped f =
  J.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      J.set_enabled false;
      J.clear (J.current ()))

let test_ring_bounds () =
  scoped @@ fun () ->
  let t = J.create ~capacity:4 () in
  Alcotest.(check int) "capacity" 4 (J.capacity t);
  J.with_buffer t (fun () ->
      for i = 1 to 6 do
        J.set_now (float_of_int i);
        J.record (J.Teardown { conn = i })
      done);
  Alcotest.(check int) "length capped" 4 (J.length t);
  Alcotest.(check int) "recorded counts everything" 6 (J.recorded t);
  Alcotest.(check int) "dropped = overflow" 2 (J.dropped t);
  let es = J.entries t in
  Alcotest.(check (list int)) "oldest entries evicted, order kept"
    [ 2; 3; 4; 5 ]
    (List.map (fun (e : J.entry) -> e.J.seq) es);
  List.iter
    (fun (e : J.entry) ->
      match e.J.event with
      | J.Teardown { conn } ->
          Alcotest.(check int) "seq tracks insert order" (conn - 1) e.J.seq;
          Alcotest.(check (float 0.0)) "sim time stamped" (float_of_int conn)
            e.J.time
      | _ -> Alcotest.fail "unexpected event")
    es;
  J.clear t;
  Alcotest.(check int) "clear empties" 0 (J.length t);
  Alcotest.(check int) "clear resets counter" 0 (J.recorded t)

let test_disabled_noop () =
  J.set_enabled false;
  let t = J.create ~capacity:8 () in
  J.with_buffer t (fun () -> J.record (J.Teardown { conn = 1 }));
  Alcotest.(check int) "nothing recorded while disabled" 0 (J.recorded t)

let test_capture_isolates () =
  scoped @@ fun () ->
  let outer = J.current () in
  J.set_now 123.0;
  J.record (J.Teardown { conn = 7 });
  let (), inner =
    J.capture (fun () ->
        Alcotest.(check (float 0.0)) "capture restarts sim clock" 0.0 (J.now ());
        J.set_now 5.0;
        J.record (J.Teardown { conn = 8 });
        ())
  in
  Alcotest.(check int) "captured exactly the inner entries" 1
    (List.length inner);
  Alcotest.(check (float 0.0)) "outer sim clock restored" 123.0 (J.now ());
  Alcotest.(check int) "outer buffer untouched by capture" 1 (J.recorded outer);
  J.append_entries outer inner;
  match J.entries outer with
  | [ a; b ] ->
      Alcotest.(check int) "re-appended entry re-sequenced" (a.J.seq + 1) b.J.seq;
      Alcotest.(check (float 0.0)) "re-appended entry keeps its time" 5.0 b.J.time
  | _ -> Alcotest.fail "expected two entries"

(* One instance of every event constructor: the round-trip test feeds each
   through the writer and the reader, so a new kind cannot be added without
   serialisation, a kind name and reader acceptance. *)
let one_of_each =
  [
    J.Request { conn = 1; src = 2; dst = 3; bw = 1 };
    J.Admitted { conn = 1; backups = 2; degraded = false };
    J.Rejected { conn = 4; reason = "no-backup" };
    J.Primary_chosen { src = 2; dst = 3; bw = 1; links = [ 0; 5; 9 ] };
    J.Backup_chosen
      {
        src = 2;
        dst = 3;
        bw = 1;
        scheme = "D-LSR";
        rank = 0;
        links =
          [
            { J.lc_link = 7; lc_q = 0.0; lc_conflict = 2.0; lc_eps = 1e-3 };
            { J.lc_link = 8; lc_q = 1e6; lc_conflict = 0.0; lc_eps = 1e-3 };
          ];
      };
    J.Spare_change { link = 7; before = 3; after = 4 };
    J.Flood_done { src = 2; dst = 3; messages = 41; candidates = 5; truncated = true };
    J.Cdp_sent { node = 9; hc = 2 };
    J.Cdp_dropped { node = 9; reason = "ttl" };
    J.Cdp_candidate { hops = 4; primary_ok = true };
    J.Failure_detected { edge = 12; victims = 3 };
    J.Report_hop { conn = 1; hops = 2; detection = 0.01; report = 0.002 };
    J.Backup_activated
      { conn = 1; index = 0; detection = 0.01; report = 0.002; activation = 0.004 };
    J.Backup_contended { conn = 1 };
    J.Connection_lost { conn = 1; latency = 0.012 };
    J.Rerouted { conn = 1; latency = 0.02; retries = 1 };
    J.Reprotected { conn = 1; fresh = 1 };
    J.Teardown { conn = 1 };
    J.Message_dropped { cls = "report"; id = 1 };
    J.Retransmit { cls = "activation"; conn = 1; attempt = 2 };
    J.Flood_truncated { src = 2; dst = 3; messages = 20000 };
    J.Reprotect_queued { conn = 1; pending = 4 };
    J.Group_failed { group = 2; edges = 3; victims = 5 };
    J.Chain_built { src = 0; dst = 4; members = 3; disjoint = 2 };
    J.Chain_failover { conn = 1; depth = 1; remaining = 1 };
    J.Chain_exhausted { conn = 1 };
    J.Lsa_originated { shard = 0; link = 14; lsa_seq = 3 };
    J.Lsa_delivered { shard = 1; link = 14; lsa_seq = 3; lag = 0.05 };
    J.Shard_setup { conn = 1; shards = 2; attempt = 0 };
    J.Shard_crankback { conn = 1; attempt = 1; reason = "stale-reject" };
    J.Stale_decision { conn = 1; age = 1.5; divergent = true };
    J.What_if { conn = 900001; src = 2; dst = 3; verdict = "accepted" };
    J.Batch_done { size = 32; accepted = 29 };
    J.Span_open
      {
        trace = 0x123456789ab;
        span = 4;
        parent = 3;
        cause = -1;
        phase = "activate";
        conn = 17;
        t0 = 1.25;
      };
    J.Span_close { trace = 0x123456789ab; span = 4; dur = 0.012 };
    J.Ring_dropped { count = 42 };
    J.Checkpoint_written { seq = 448; conns = 37; bytes = 20912 };
    J.Wal_appended { seq = 449; op = "request" };
    J.Crash_injected { at_batch = 15; wal_seq = 480 };
    J.Recovery_replayed { checkpoint_seq = 448; replayed = 32; conns = 37 };
    J.Request_shed { conn = 900017; reason = "queue-full"; queued = 24 };
  ]

let test_jsonl_round_trip () =
  scoped @@ fun () ->
  Alcotest.(check int) "one_of_each covers every documented kind"
    (List.length J.all_kinds)
    (List.length (List.sort_uniq compare (List.map J.kind_name one_of_each)));
  let t = J.create () in
  J.with_buffer t (fun () ->
      List.iteri
        (fun i ev ->
          J.set_now (0.5 *. float_of_int i);
          J.record ev)
        one_of_each);
  let lines =
    String.split_on_char '\n' (String.trim (J.to_jsonl_string t))
  in
  Alcotest.(check int) "one line per event" (List.length one_of_each)
    (List.length lines);
  List.iteri
    (fun i line ->
      match J.parse_line line with
      | Error msg -> Alcotest.failf "line %d rejected: %s (%s)" i msg line
      | Ok p ->
          Alcotest.(check int) "seq round-trips" i p.J.p_seq;
          Alcotest.(check (float 1e-12)) "time round-trips"
            (0.5 *. float_of_int i) p.J.p_time;
          Alcotest.(check string) "kind round-trips"
            (J.kind_name (List.nth one_of_each i))
            p.J.p_kind)
    lines;
  (* A malformed line and an undocumented kind must both be rejected. *)
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (J.parse_line "{not json"));
  Alcotest.(check bool) "unknown kind rejected" true
    (Result.is_error (J.parse_line {|{"seq":0,"t":0,"kind":"mystery"}|}))

(* ---- bit-exact cost decomposition --------------------------------------- *)

let small_cfg =
  {
    Config.default with
    Config.warmup = 600.0;
    horizon = 1200.0;
    sample_every = 300.0;
    lifetime_lo = 300.0;
    lifetime_hi = 600.0;
  }

let loaded_state =
  lazy
    (let graph = Config.make_graph small_cfg ~avg_degree:3.0 in
     let scenario = Config.make_scenario small_cfg Config.UT ~lambda:0.4 in
     let state =
       Runner.load_state small_cfg ~graph ~scenario
         ~scheme:(Runner.Lsr Routing.Dlsr) ~until:small_cfg.Config.warmup
     in
     (graph, state))

let test_verdict_matches_cost () =
  let graph, state = Lazy.force loaded_state in
  let primary =
    match Routing.find_primary state ~src:0 ~dst:1 ~bw:1 with
    | Some p -> p
    | None -> (
        (* Fall back to any routable pair on this topology. *)
        let found = ref None in
        let n = Dr_topo.Graph.node_count graph in
        (try
           for s = 0 to n - 1 do
             for d = 0 to n - 1 do
               if s <> d then
                 match Routing.find_primary state ~src:s ~dst:d ~bw:1 with
                 | Some p ->
                     found := Some p;
                     raise Exit
                 | None -> ()
             done
           done
         with Exit -> ());
        match !found with
        | Some p -> p
        | None -> Alcotest.fail "no routable pair in fixture")
  in
  let checked = ref 0 and feasible = ref 0 in
  List.iter
    (fun scheme ->
      Dr_topo.Graph.iter_links graph (fun l ->
          incr checked;
          let cost = Routing.backup_link_cost scheme state ~primary ~bw:1 l in
          match Routing.backup_link_verdict scheme state ~primary ~bw:1 l with
          | Routing.Cost p ->
              incr feasible;
              (* Bit-exact, not approximately equal: the explain table's row
                 total must be the number Dijkstra compared. *)
              Alcotest.(check bool)
                (Printf.sprintf "link %d (%s): parts sum = search cost" l
                   (Routing.scheme_name scheme))
                true
                (Int64.bits_of_float (Routing.parts_total p)
                = Int64.bits_of_float cost)
          | Routing.Dead | Routing.No_bandwidth _ ->
              Alcotest.(check bool) "infeasible verdict = infinite cost" true
                (cost = infinity)))
    [ Routing.Dlsr; Routing.Plsr; Routing.Spf ];
  Alcotest.(check bool) "fixture exercises feasible links" true (!feasible > 0);
  Alcotest.(check bool) "fixture exercises every link x scheme" true
    (!checked = 3 * Dr_topo.Graph.link_count graph)

(* ---- determinism across --jobs ------------------------------------------ *)

let sweep_tasks =
  lazy
    (let graph = Config.make_graph small_cfg ~avg_degree:3.0 in
     Array.of_list
       (List.concat_map
          (fun lambda ->
            let scenario = Config.make_scenario small_cfg Config.UT ~lambda in
            [
              (graph, scenario, Runner.Lsr Routing.Dlsr);
              (graph, scenario, Runner.Lsr Routing.Plsr);
              (graph, scenario, Runner.Bf Dr_flood.Bounded_flood.default_config);
            ])
          [ 0.2; 0.4 ]))

let journal_bytes ~jobs =
  let tasks = Lazy.force sweep_tasks in
  J.set_enabled true;
  Fun.protect ~finally:(fun () -> J.set_enabled false) @@ fun () ->
  let buf = J.create () in
  J.with_buffer buf (fun () ->
      Pool.with_pool ~jobs (fun pool ->
          let results = Runner.run_many ~pool small_cfg tasks in
          Array.iter
            (function
              | Ok _ -> () | Error _ -> Alcotest.fail "sweep task failed")
            results);
      (J.to_jsonl_string buf, J.recorded buf))

let test_jobs_byte_identical () =
  let s1, n1 = journal_bytes ~jobs:1 in
  let s4, n4 = journal_bytes ~jobs:4 in
  Alcotest.(check bool) "journal is non-trivial" true (n1 > 100);
  Alcotest.(check int) "same entry count" n1 n4;
  Alcotest.(check bool) "jobs=4 journal byte-identical to jobs=1" true
    (String.equal s1 s4)

(* Telemetry and journal together under a parallel sweep: the JSONL trace
   must stay line-wise well-formed (worker spans/events never interleave
   mid-record), and the span-name set must match a sequential run. *)
let trace_lines ~jobs =
  let tasks = Lazy.force sweep_tasks in
  let file = Filename.temp_file "drtp_obs_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  Tm.reset ();
  Tm.set_enabled true;
  J.set_enabled true;
  let buf = J.create () in
  Fun.protect
    ~finally:(fun () ->
      Tm.Sink.close ();
      Tm.set_enabled false;
      J.set_enabled false;
      Tm.reset ())
    (fun () ->
      Tm.Sink.set (Tm.Sink.jsonl (open_out file));
      J.with_buffer buf (fun () ->
          Pool.with_pool ~jobs (fun pool ->
              ignore (Runner.run_many ~pool small_cfg tasks)));
      Tm.Sink.close ();
      let ic = open_in file in
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      go [])

let span_names lines =
  List.sort_uniq compare
    (List.filter_map
       (fun line ->
         match J.json_of_string line with
         | Ok j -> (
             match (J.mem "type" j, J.mem "name" j) with
             | Some (J.Str "span"), Some (J.Str name) -> Some name
             | _ -> None)
         | Error _ -> None)
       lines)

let test_trace_under_jobs () =
  let l1 = trace_lines ~jobs:1 in
  let l4 = trace_lines ~jobs:4 in
  Alcotest.(check bool) "trace is non-trivial" true (List.length l4 > 0);
  List.iteri
    (fun i line ->
      match J.json_of_string line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "jobs=4 trace line %d malformed: %s" i msg)
    l4;
  Alcotest.(check (list string)) "same span names as sequential run"
    (span_names l1) (span_names l4)

let suite =
  [
    ( "obs.journal",
      [
        Alcotest.test_case "ring bounds and eviction" `Quick test_ring_bounds;
        Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
        Alcotest.test_case "capture isolates and re-appends" `Quick
          test_capture_isolates;
        Alcotest.test_case "jsonl round-trip, every kind" `Quick
          test_jsonl_round_trip;
        Alcotest.test_case "verdict parts sum bit-exactly" `Quick
          test_verdict_matches_cost;
        Alcotest.test_case "journal byte-identical across jobs" `Slow
          test_jobs_byte_identical;
        Alcotest.test_case "telemetry trace well-formed under jobs" `Slow
          test_trace_under_jobs;
      ] );
  ]

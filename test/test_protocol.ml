(* Distributed-protocol layer: advertised views, LSA damping, staleness
   setup failures and crankback. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing
module View = Dr_proto.Advertised_view
module Sim = Dr_proto.Protocol_sim
module Scenario = Dr_sim.Scenario

let mesh_state ?(capacity = 10) () =
  let graph = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  (graph, Net_state.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed)

let path g nodes = Path.of_nodes g nodes
let link g a b = Option.get (Graph.find_link g ~src:a ~dst:b)

let test_view_snapshots () =
  let g, st = mesh_state () in
  let view = View.create st in
  let l01 = link g 0 1 in
  Alcotest.(check int) "fresh view sees full capacity" 10 (View.free view l01);
  (* Consume ground truth; the view must NOT see it until refreshed. *)
  ignore (Net_state.admit st ~id:1 ~bw:4 ~primary:(path g [ 0; 1 ]) ~backups:[]);
  Alcotest.(check int) "stale view unchanged" 10 (View.free view l01);
  Alcotest.(check bool) "staleness detected" true (View.staleness_count view st > 0);
  View.refresh_link view st l01;
  Alcotest.(check int) "refreshed view sees 6" 6 (View.free view l01);
  View.refresh_all view st;
  Alcotest.(check int) "fully fresh" 0 (View.staleness_count view st)

let test_view_routing_uses_advertisements () =
  let g, st = mesh_state ~capacity:2 () in
  let view = View.create st in
  (* Ground truth: link 0->1 full.  The stale view still offers it. *)
  ignore (Net_state.admit st ~id:1 ~bw:2 ~primary:(path g [ 0; 1 ]) ~backups:[]);
  (match View.find_primary view st ~src:0 ~dst:1 ~bw:1 with
  | Some p -> Alcotest.(check int) "stale view routes the direct hop" 1 (Path.hops p)
  | None -> Alcotest.fail "stale route expected");
  View.refresh_all view st;
  match View.find_primary view st ~src:0 ~dst:1 ~bw:1 with
  | Some p -> Alcotest.(check int) "fresh view detours" 3 (Path.hops p)
  | None -> Alcotest.fail "detour expected"

let test_view_route_matches_ground_truth_when_fresh () =
  let g, st = mesh_state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2; 5; 8 ])
       ~backups:[ path g [ 0; 3; 6; 7; 8 ] ]);
  let view = View.create st in
  let primary = path g [ 3; 4; 5 ] in
  let from_view =
    View.find_backups view st ~scheme:Routing.Dlsr ~primary ~bw:1 ~count:1
  in
  let from_truth = Routing.find_backups Routing.Dlsr st ~primary ~bw:1 ~count:1 in
  Alcotest.(check bool) "identical backup choice" true
    (List.map Path.links from_view = List.map Path.links from_truth)

let request ~time ~conn ~src ~dst ~duration =
  { Scenario.time; event = Scenario.Request { conn; src; dst; bw = 1; duration } }

let mesh_scenario items = Scenario.of_items items

let run_sim ?(config = Sim.default_config) ?(capacity = 10) scenario =
  let graph = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  Sim.run ~config ~graph ~capacity ~scenario ~warmup:0.0 ~horizon:1000.0
    ~sample_every:100.0 ()

let test_protocol_accepts_and_releases () =
  let scenario =
    mesh_scenario
      [
        request ~time:1.0 ~conn:0 ~src:0 ~dst:8 ~duration:100.0;
        { Scenario.time = 101.0; event = Scenario.Release { conn = 0 } };
      ]
  in
  let r = run_sim scenario in
  Alcotest.(check int) "accepted" 1 r.Sim.stats.Sim.accepted;
  Alcotest.(check int) "released" 1 r.Sim.stats.Sim.released;
  Alcotest.(check int) "no setup failures" 0 r.Sim.stats.Sim.setup_failures;
  Alcotest.(check bool) "LSAs originated" true (r.Sim.stats.Sim.lsa_originated > 0)

let test_release_during_setup () =
  (* Release fires before the setup message lands (huge hop delay): the
     connection must still be torn down. *)
  let config = { Sim.default_config with Sim.hop_delay = 10.0 } in
  let scenario =
    mesh_scenario
      [
        request ~time:1.0 ~conn:0 ~src:0 ~dst:8 ~duration:5.0;
        { Scenario.time = 6.0; event = Scenario.Release { conn = 0 } };
      ]
  in
  let r = run_sim ~config scenario in
  Alcotest.(check int) "accepted then immediately torn down" 1 r.Sim.stats.Sim.accepted;
  Alcotest.(check int) "released" 1 r.Sim.stats.Sim.released;
  Alcotest.(check (float 1e-9)) "nothing left active" 0.0 r.Sim.avg_active

let test_stale_view_causes_setup_failure () =
  (* Two simultaneous requests race for the last unit of the bottleneck
     link: with damped LSAs both are routed over it, and the second setup
     to arrive must fail.  Capacity 1 per link makes node 0's two edges the
     scarce resource; both conns 0->1. *)
  let config =
    {
      Sim.default_config with
      Sim.min_lsa_interval = 1000.0;
      lsa_flood_delay = 0.0;
      hop_delay = 0.01;
      max_retries = 0;
      backup_count = 0;
    }
  in
  let scenario =
    mesh_scenario
      [
        request ~time:1.0 ~conn:0 ~src:0 ~dst:1 ~duration:500.0;
        request ~time:1.001 ~conn:1 ~src:0 ~dst:1 ~duration:500.0;
      ]
  in
  let r = run_sim ~config ~capacity:1 scenario in
  Alcotest.(check int) "one accepted" 1 r.Sim.stats.Sim.accepted;
  Alcotest.(check int) "one setup failure" 1 r.Sim.stats.Sim.setup_failures;
  Alcotest.(check int) "lost (no retries)" 1 r.Sim.stats.Sim.lost_after_retries

let test_crankback_retry_recovers () =
  (* Same race, but with a retry: the loser re-routes (view refreshed by the
     winner's LSA at interval 0) over the detour and succeeds. *)
  let config =
    {
      Sim.default_config with
      Sim.min_lsa_interval = 0.0;
      lsa_flood_delay = 0.0;
      hop_delay = 0.01;
      max_retries = 2;
      backup_count = 0;
    }
  in
  let scenario =
    mesh_scenario
      [
        request ~time:1.0 ~conn:0 ~src:0 ~dst:1 ~duration:500.0;
        request ~time:1.001 ~conn:1 ~src:0 ~dst:1 ~duration:500.0;
      ]
  in
  let r = run_sim ~config ~capacity:1 scenario in
  Alcotest.(check int) "both eventually accepted" 2 r.Sim.stats.Sim.accepted;
  Alcotest.(check bool) "via a retry" true (r.Sim.stats.Sim.retries >= 1);
  Alcotest.(check int) "nothing lost" 0 r.Sim.stats.Sim.lost_after_retries

let test_lsa_damping_reduces_traffic () =
  let requests =
    List.concat
      (List.init 20 (fun i ->
           [
             request ~time:(1.0 +. float_of_int i) ~conn:i ~src:(i mod 3)
               ~dst:(6 + (i mod 3))
               ~duration:50.0;
             {
               Scenario.time = 51.0 +. float_of_int i;
               event = Scenario.Release { conn = i };
             };
           ]))
  in
  let scenario = mesh_scenario requests in
  let lsa_count interval =
    let config = { Sim.default_config with Sim.min_lsa_interval = interval } in
    (run_sim ~config scenario).Sim.stats.Sim.lsa_originated
  in
  let fresh = lsa_count 0.0 in
  let damped = lsa_count 300.0 in
  Alcotest.(check bool)
    (Printf.sprintf "damping reduces LSAs (%d -> %d)" fresh damped)
    true (damped < fresh)

let test_fresh_protocol_matches_centralised () =
  (* With zero delays and no damping the protocol admits exactly the same
     connections as the centralised manager. *)
  let rng = Dr_rng.Splitmix64.create 77 in
  let graph = Dr_topo.Gen.waxman ~rng ~n:20 ~avg_degree:3.2 () in
  let spec =
    {
      Dr_sim.Workload.arrival_rate = 0.4;
      horizon = 500.0;
      lifetime_lo = 100.0;
      lifetime_hi = 300.0;
      bw = Dr_sim.Workload.constant_bw 1;
      pattern = Dr_sim.Workload.Uniform;
    }
  in
  let scenario = Dr_sim.Workload.generate rng ~node_count:20 spec in
  let config =
    {
      Sim.default_config with
      Sim.min_lsa_interval = 0.0;
      lsa_flood_delay = 0.0;
      hop_delay = 0.0;
      max_retries = 0;
    }
  in
  let proto =
    Sim.run ~config ~graph ~capacity:8 ~scenario ~warmup:0.0 ~horizon:1000.0
      ~sample_every:200.0 ()
  in
  let manager =
    Drtp.Manager.create ~graph ~capacity:8 ~spare_policy:Net_state.Multiplexed
      ~route:(Routing.link_state_route_fn Routing.Dlsr ~with_backup:true)
  in
  Drtp.Manager.run manager scenario;
  let central = Drtp.Manager.stats manager in
  Alcotest.(check int) "same acceptance as centralised"
    central.Drtp.Manager.accepted proto.Sim.stats.Sim.accepted;
  Alcotest.(check int) "no setup failures when fresh" 0
    proto.Sim.stats.Sim.setup_failures

let test_staleness_experiment_rows () =
  let cfg =
    {
      Dr_exp.Config.default with
      Dr_exp.Config.warmup = 600.0;
      horizon = 1500.0;
      lifetime_lo = 200.0;
      lifetime_hi = 400.0;
    }
  in
  let rows =
    Dr_exp.Staleness_exp.run cfg ~avg_degree:3.0 ~traffic:Dr_exp.Config.UT
      ~lambda:0.4 ~intervals:[ 0.0; 60.0 ] ()
  in
  match rows with
  | [ fresh; damped ] ->
      Alcotest.(check bool) "fresh has fewer setup failures" true
        (fresh.Dr_exp.Staleness_exp.setup_failure_rate
        <= damped.Dr_exp.Staleness_exp.setup_failure_rate);
      Alcotest.(check bool) "damped has fewer LSAs" true
        (damped.Dr_exp.Staleness_exp.lsa_per_second
        <= fresh.Dr_exp.Staleness_exp.lsa_per_second +. 1e-9);
      Alcotest.(check bool) "damped view is staler" true
        (damped.Dr_exp.Staleness_exp.avg_stale_links
        >= fresh.Dr_exp.Staleness_exp.avg_stale_links)
  | _ -> Alcotest.fail "two rows expected"

(* ---- lossy signalling --------------------------------------------------- *)

let lossy_config spec =
  {
    Sim.default_config with
    Sim.faults = Some (Dr_faults.Faults.create ~seed:17 spec);
  }

let two_requests =
  mesh_scenario
    [
      request ~time:1.0 ~conn:0 ~src:0 ~dst:8 ~duration:100.0;
      request ~time:2.0 ~conn:1 ~src:6 ~dst:2 ~duration:100.0;
    ]

let test_zero_spec_protocol_identical () =
  let clean = run_sim two_requests in
  let zero = run_sim ~config:(lossy_config Dr_faults.Faults.zero_spec) two_requests in
  Alcotest.(check bool) "zero-spec run identical to no plan" true (clean = zero)

let test_setup_loss_exhausts_and_loses () =
  let spec = { Dr_faults.Faults.zero_spec with Dr_faults.Faults.p_setup = 1.0 } in
  let r = run_sim ~config:(lossy_config spec) two_requests in
  Alcotest.(check int) "nothing admitted" 0 r.Sim.stats.Sim.accepted;
  Alcotest.(check int) "both connections lost" 2 r.Sim.stats.Sim.lost_after_retries;
  Alcotest.(check bool) "setups dropped" true (r.Sim.stats.Sim.setup_dropped > 0);
  Alcotest.(check bool) "retransmissions attempted" true
    (r.Sim.stats.Sim.retransmits > 0);
  (* Every abandoned setup burned the full retransmission budget before
     cranking back. *)
  let per_attempt = Sim.default_config.Sim.max_retransmits + 1 in
  Alcotest.(check bool) "drops consistent with budget" true
    (r.Sim.stats.Sim.setup_dropped >= 2 * per_attempt)

let test_ack_loss_fails_setup () =
  let spec = { Dr_faults.Faults.zero_spec with Dr_faults.Faults.p_ack = 1.0 } in
  let r = run_sim ~config:(lossy_config spec) two_requests in
  Alcotest.(check int) "no admission without an ACK" 0 r.Sim.stats.Sim.accepted;
  Alcotest.(check bool) "acks dropped" true (r.Sim.stats.Sim.ack_dropped > 0);
  Alcotest.(check bool) "counted as setup failures" true
    (r.Sim.stats.Sim.setup_failures > 0)

let test_mild_loss_still_admits () =
  let spec = Dr_faults.Faults.uniform_spec 0.1 in
  let r = run_sim ~config:(lossy_config spec) two_requests in
  Alcotest.(check bool) "retransmission rescues most setups" true
    (r.Sim.stats.Sim.accepted >= 1)

let suite =
  [
    ( "protocol",
      [
        Alcotest.test_case "view snapshots" `Quick test_view_snapshots;
        Alcotest.test_case "view routing uses advertisements" `Quick test_view_routing_uses_advertisements;
        Alcotest.test_case "fresh view = ground truth routing" `Quick test_view_route_matches_ground_truth_when_fresh;
        Alcotest.test_case "accept and release" `Quick test_protocol_accepts_and_releases;
        Alcotest.test_case "release during setup" `Quick test_release_during_setup;
        Alcotest.test_case "stale view -> setup failure" `Quick test_stale_view_causes_setup_failure;
        Alcotest.test_case "crankback retry recovers" `Quick test_crankback_retry_recovers;
        Alcotest.test_case "LSA damping reduces traffic" `Quick test_lsa_damping_reduces_traffic;
        Alcotest.test_case "fresh protocol = centralised" `Quick test_fresh_protocol_matches_centralised;
        Alcotest.test_case "staleness experiment" `Slow test_staleness_experiment_rows;
        Alcotest.test_case "zero-spec plan identical" `Quick test_zero_spec_protocol_identical;
        Alcotest.test_case "setup loss exhausts and loses" `Quick test_setup_loss_exhausts_and_loses;
        Alcotest.test_case "ack loss fails setup" `Quick test_ack_loss_fails_setup;
        Alcotest.test_case "mild loss still admits" `Quick test_mild_loss_still_admits;
      ] );
  ]

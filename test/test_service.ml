(* Admission-control service layer: snapshot/rollback bit-identity under a
   random mutation walk, what-if side-effect freedom, the batched-vs-
   sequential admission differential (including bounded flooding under a
   message-loss plan), and the serve loop's --jobs independence and smoke
   checks. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Gen = Dr_topo.Gen
module Net_state = Drtp.Net_state
module Resources = Drtp.Resources
module Aplv = Drtp.Aplv
module Routing = Drtp.Routing
module Routing_reference = Drtp.Routing_reference
module Manager = Drtp.Manager
module Bounded_flood = Dr_flood.Bounded_flood
module Faults = Dr_faults.Faults
module Scenario = Dr_sim.Scenario
module Workload = Dr_sim.Workload
module Pool = Dr_parallel.Pool
module Rng = Dr_rng.Splitmix64
module Dist = Dr_rng.Dist
module Service = Dr_service.Service
module Batch = Dr_service.Batch
module Serve = Dr_service.Serve
module J = Dr_obs.Journal
module Trace = Dr_trace.Trace

let property ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let seed_gen = QCheck.int_range 0 1_000_000

(* --- full observable digest of a network state --------------------------- *)

(* The digest used below as the bit-identity witness for snapshot/rollback
   originated here and now lives in {!Dr_persist.State_digest}, where the
   crash-recovery machinery uses the same serialisation as its equivalence
   witness.  Delegate so test and production can never drift apart. *)
let digest = Dr_persist.State_digest.digest
let manager_digest = Dr_persist.State_digest.manager_digest

(* --- shared setup --------------------------------------------------------- *)

let small_scenario ~seed ~rate ~horizon n =
  let rng = Rng.create seed in
  Workload.generate rng ~node_count:n
    {
      Workload.arrival_rate = rate;
      horizon;
      lifetime_lo = 10.0;
      lifetime_hi = 40.0;
      bw = Workload.Constant 1;
      pattern = Workload.Uniform;
    }

let dlsr_route () = Routing.link_state_route_fn Routing.Dlsr ~with_backup:true

let make_service ?(capacity = 12) graph route =
  Service.create
    (Manager.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed ~route)

(* Admit a handful of connections so snapshots cover a non-trivial state. *)
let preload svc rng graph ~count =
  let n = Graph.node_count graph in
  for conn = 0 to count - 1 do
    let src, dst = Dist.pick_distinct_pair rng n in
    ignore
      (Service.admit_now svc ~now:0.0 ~conn ~src ~dst ~bw:1 : Service.verdict)
  done

(* --- random mutation walk over the whole Net_state surface ---------------- *)

let mutation_walk ~steps ~scheme rng graph state next_id =
  let n = Graph.node_count graph in
  let active () =
    let ids = ref [] in
    Net_state.iter_conns state (fun c -> ids := c.Net_state.id :: !ids);
    List.sort compare !ids
  in
  let pick_active () =
    match active () with
    | [] -> None
    | ids -> Some (List.nth ids (Dist.uniform_int rng ~lo:0 ~hi:(List.length ids - 1)))
  in
  for _ = 1 to steps do
    match Dist.uniform_int rng ~lo:0 ~hi:7 with
    | 0 | 1 | 2 -> (
        let src, dst = Dist.pick_distinct_pair rng n in
        let bw = Dist.uniform_int rng ~lo:1 ~hi:3 in
        match Routing.find_primary state ~src ~dst ~bw with
        | None -> ()
        | Some primary -> (
            match Routing.find_backups scheme state ~primary ~bw ~count:2 with
            | [] -> ()
            | backups ->
                let id = !next_id in
                incr next_id;
                ignore (Net_state.admit state ~id ~bw ~primary ~backups : Net_state.conn)))
    | 3 -> (
        match pick_active () with
        | Some id -> Net_state.release state ~id
        | None -> ())
    | 4 ->
        let e = Dist.uniform_int rng ~lo:0 ~hi:(Graph.edge_count graph - 1) in
        if not (Net_state.edge_failed state ~edge:e) then
          Net_state.fail_edge state ~edge:e
    | 5 ->
        let e = Dist.uniform_int rng ~lo:0 ~hi:(Graph.edge_count graph - 1) in
        if Net_state.edge_failed state ~edge:e then
          Net_state.restore_edge state ~edge:e
    | 6 -> (
        match pick_active () with
        | None -> ()
        | Some id -> (
            match Net_state.find state id with
            | Some c
              when c.Net_state.backups <> []
                   && Net_state.activation_feasible state ~id () ->
                Net_state.promote_backup state ~id ()
            | _ -> ()))
    | _ ->
        let v = Dist.uniform_int rng ~lo:0 ~hi:(n - 1) in
        if Dist.uniform_int rng ~lo:0 ~hi:1 = 0 then Net_state.fail_node state ~node:v
        else Net_state.restore_node state ~node:v
  done

(* --- property: capture -> walk -> rollback is bit-identical --------------- *)

let prop_rollback_bit_identity =
  property ~count:25 "snapshot -> random walk -> rollback is bit-identical"
    seed_gen
    (fun seed ->
      let rng = Rng.create ((seed * 7) + 1) in
      let graph = Gen.waxman ~rng ~n:16 ~avg_degree:4.0 () in
      let scheme = if seed mod 2 = 0 then Routing.Dlsr else Routing.Plsr in
      let route = Routing.link_state_route_fn scheme ~with_backup:true in
      let svc = make_service graph route in
      let m = Service.manager svc in
      let state = Manager.state m in
      preload svc rng graph ~count:8;
      let before = manager_digest graph m in
      let snap = Manager.snapshot m in
      let next_id = ref 10_000 in
      mutation_walk ~steps:40 ~scheme rng graph state next_id;
      Manager.rollback m snap;
      (match Net_state.check_invariants state with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "invariants after rollback: %s" msg);
      (match Net_state.check_routing_caches state with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "caches after rollback: %s" msg);
      (* The fast routing path must still agree with the reference oracle on
         the rolled-back state (a stale mirror would diverge here). *)
      let n = Graph.node_count graph in
      for _ = 1 to 4 do
        let src, dst = Dist.pick_distinct_pair rng n in
        let bw = Dist.uniform_int rng ~lo:1 ~hi:2 in
        let fast = Routing.find_primary state ~src ~dst ~bw in
        let oracle = Routing_reference.find_primary state ~src ~dst ~bw in
        let links = Option.map Path.links in
        if links fast <> links oracle then
          QCheck.Test.fail_reportf "primary fast<>oracle after rollback";
        match fast with
        | None -> ()
        | Some primary ->
            let fb = Routing.find_backups scheme state ~primary ~bw ~count:2 in
            let ob =
              Routing_reference.find_backups scheme state ~primary ~bw ~count:2
            in
            if List.map Path.links fb <> List.map Path.links ob then
              QCheck.Test.fail_reportf "backups fast<>oracle after rollback"
      done;
      let after = manager_digest graph m in
      if before <> after then
        QCheck.Test.fail_reportf "state digest changed across rollback";
      true)

(* Reusing one snapshot buffer (the service's steady-state path) must be as
   good as a fresh capture every time. *)
let test_snapshot_buffer_reuse () =
  let rng = Rng.create 77 in
  let graph = Gen.waxman ~rng ~n:14 ~avg_degree:4.0 () in
  let svc = make_service graph (dlsr_route ()) in
  let m = Service.manager svc in
  preload svc rng graph ~count:6;
  let next_id = ref 20_000 in
  let snap = ref (Manager.snapshot m) in
  for round = 1 to 5 do
    let before = manager_digest graph m in
    snap := Manager.snapshot ~into:!snap m;
    mutation_walk ~steps:15 ~scheme:Routing.Dlsr rng graph (Manager.state m)
      next_id;
    Manager.rollback m !snap;
    Alcotest.(check string)
      (Printf.sprintf "round %d: reused-buffer rollback is bit-identical" round)
      before (manager_digest graph m)
  done

(* --- what-if queries leave no trace --------------------------------------- *)

let test_what_if_side_effect_free () =
  let rng = Rng.create 5 in
  let graph = Gen.waxman ~rng ~n:16 ~avg_degree:4.0 () in
  let svc = make_service graph (dlsr_route ()) in
  let m = Service.manager svc in
  preload svc rng graph ~count:10;
  let n = Graph.node_count graph in
  let before = manager_digest graph m in
  let src, dst = Dist.pick_distinct_pair rng n in
  let v1 = Service.what_if_admit svc ~now:1.0 ~src ~dst ~bw:1 in
  let src2, dst2 = Dist.pick_distinct_pair rng n in
  let _set =
    Service.what_if_admit_set svc ~now:1.0 [ (src2, dst2, 1); (dst2, src2, 1) ]
  in
  let _probe = Service.what_if_fail_edge svc ~edge:0 in
  Alcotest.(check string) "what-ifs leave the truth bit-identical" before
    (manager_digest graph m);
  (* The speculative verdict is truthful: committing the same request now
     yields the same verdict. *)
  let v2 = Service.admit_now svc ~now:1.0 ~conn:777 ~src ~dst ~bw:1 in
  Alcotest.(check bool) "what-if verdict matches the real admission" true
    (Service.equal_verdict v1 v2)

let test_what_if_journal_silent () =
  let rng = Rng.create 6 in
  let graph = Gen.waxman ~rng ~n:14 ~avg_degree:4.0 () in
  J.set_enabled true;
  Fun.protect ~finally:(fun () -> J.set_enabled false) @@ fun () ->
  let buf = J.create () in
  let kinds =
    J.with_buffer buf (fun () ->
        let svc = make_service graph (dlsr_route ()) in
        preload svc rng graph ~count:4;
        let n = Graph.node_count graph in
        let src, dst = Dist.pick_distinct_pair rng n in
        let recorded0 = J.recorded buf in
        let _v = Service.what_if_admit svc ~now:2.0 ~src ~dst ~bw:1 in
        let entries = J.entries buf in
        let fresh = List.filteri (fun i _ -> i >= recorded0) entries in
        List.map (fun (e : J.entry) -> J.kind_name e.J.event) fresh)
  in
  (* Exactly one event escapes a speculative admission: the what-if record
     itself.  Everything the speculation journalled internally (request,
     admitted, spare changes, spans) was captured and discarded. *)
  Alcotest.(check (list string)) "one what-if event, nothing else"
    [ "what-if" ] kinds

(* --- batched admissions == sequential admissions --------------------------- *)

let requests_of_scenario scenario =
  Scenario.items scenario |> Array.to_list
  |> List.filter_map (fun (it : Scenario.item) ->
         match it.Scenario.event with
         | Scenario.Request { conn; src; dst; bw; duration = _ } ->
             Some
               {
                 Batch.rq_conn = conn;
                 rq_time = it.Scenario.time;
                 rq_src = src;
                 rq_dst = dst;
                 rq_bw = bw;
               }
         | Scenario.Release _ -> None)
  |> Array.of_list

let batch_vs_sequential ~label mk_route =
  let rng = Rng.create 91 in
  let graph = Gen.waxman ~rng ~n:18 ~avg_degree:4.0 () in
  let scenario = small_scenario ~seed:404 ~rate:1.0 ~horizon:150.0 18 in
  let reqs = requests_of_scenario scenario in
  Alcotest.(check bool) (label ^ ": scenario is non-trivial") true
    (Array.length reqs > 20);
  let svc_batch = make_service graph (mk_route ()) in
  let svc_seq = make_service graph (mk_route ()) in
  let batch_verdicts = Batch.admit svc_batch reqs in
  let seq_verdicts =
    Array.map
      (fun r ->
        Service.admit_now svc_seq ~now:r.Batch.rq_time ~conn:r.Batch.rq_conn
          ~src:r.Batch.rq_src ~dst:r.Batch.rq_dst ~bw:r.Batch.rq_bw)
      reqs
  in
  Array.iteri
    (fun i bv ->
      if not (Service.equal_verdict bv seq_verdicts.(i)) then
        Alcotest.failf "%s: request %d: batch %s <> sequential %s" label i
          (Service.verdict_name bv)
          (Service.verdict_name seq_verdicts.(i)))
    batch_verdicts;
  Alcotest.(check string)
    (label ^ ": end state is bit-identical")
    (manager_digest graph (Service.manager svc_seq))
    (manager_digest graph (Service.manager svc_batch))

let test_batch_differential_dlsr () =
  batch_vs_sequential ~label:"d-lsr" dlsr_route

let test_batch_differential_bf_faults () =
  (* Bounded flooding with a message-loss plan: admissions consult the
     fault injector's RNG, so identical call order (which the default
     batch preserves) must yield identical drops, verdicts and state. *)
  let rng = Rng.create 92 in
  let graph = Gen.waxman ~rng ~n:18 ~avg_degree:4.0 () in
  let hop_matrix = Dr_topo.Shortest_path.hop_matrix graph in
  let mk_route () =
    let faults = Faults.create ~seed:5 (Faults.uniform_spec 0.2) in
    Bounded_flood.route_fn ~stats:(Bounded_flood.fresh_stats ()) ~faults
      ~hop_matrix ()
  in
  let scenario = small_scenario ~seed:405 ~rate:1.0 ~horizon:120.0 18 in
  let reqs = requests_of_scenario scenario in
  let svc_batch = make_service graph (mk_route ()) in
  let svc_seq = make_service graph (mk_route ()) in
  let batch_verdicts = Batch.admit svc_batch reqs in
  let seq_verdicts =
    Array.map
      (fun r ->
        Service.admit_now svc_seq ~now:r.Batch.rq_time ~conn:r.Batch.rq_conn
          ~src:r.Batch.rq_src ~dst:r.Batch.rq_dst ~bw:r.Batch.rq_bw)
      reqs
  in
  Array.iteri
    (fun i bv ->
      if not (Service.equal_verdict bv seq_verdicts.(i)) then
        Alcotest.failf "bf+faults: request %d: batch %s <> sequential %s" i
          (Service.verdict_name bv)
          (Service.verdict_name seq_verdicts.(i)))
    batch_verdicts;
  Alcotest.(check string) "bf+faults: end state is bit-identical"
    (manager_digest graph (Service.manager svc_seq))
    (manager_digest graph (Service.manager svc_batch))

let test_batch_reorder_verdict_positions () =
  (* Reordering is a policy change, but verdicts must still come back at
     the original indices: every accepted verdict corresponds to a request
     that is actually active afterwards, under its own connection id. *)
  let rng = Rng.create 93 in
  let graph = Gen.waxman ~rng ~n:16 ~avg_degree:4.0 () in
  let scenario = small_scenario ~seed:406 ~rate:0.8 ~horizon:100.0 16 in
  let reqs = requests_of_scenario scenario in
  let svc = make_service graph (dlsr_route ()) in
  let verdicts = Batch.admit ~reorder:true svc reqs in
  let state = Manager.state (Service.manager svc) in
  Array.iteri
    (fun i v ->
      let active = Net_state.find state reqs.(i).Batch.rq_conn <> None in
      match v with
      | Service.Accepted _ ->
          if not active then
            Alcotest.failf "request %d reported accepted but is not active" i
      | Service.Rejected _ ->
          if active then
            Alcotest.failf "request %d reported rejected but is active" i)
    verdicts;
  (* And the permutation itself is deterministic and a real permutation. *)
  let order = Batch.locality_order reqs in
  let seen = Array.make (Array.length reqs) false in
  Array.iter (fun i -> seen.(i) <- true) order;
  Alcotest.(check bool) "locality order is a permutation" true
    (Array.for_all Fun.id seen)

(* --- serve loop ------------------------------------------------------------ *)

let serve_config =
  {
    Serve.default with
    Serve.sv_batch = 16;
    sv_what_if_every = 2;
    sv_what_if_burst = 6;
    sv_probe_every = 3;
    sv_check_every = 4;
    sv_seed = 42;
  }

let serve_once ~jobs =
  let rng = Rng.create 7 in
  let graph = Gen.waxman ~rng ~n:20 ~avg_degree:4.0 () in
  let scenario = small_scenario ~seed:42 ~rate:2.0 ~horizon:120.0 20 in
  J.set_enabled true;
  Fun.protect ~finally:(fun () -> J.set_enabled false) @@ fun () ->
  let buf = J.create () in
  J.with_buffer buf (fun () ->
      J.Causal.reset ~seed:9;
      let report =
        Pool.with_pool ~jobs (fun pool ->
            Serve.run ~pool serve_config ~graph ~capacity:12
              ~spare_policy:Net_state.Multiplexed ~route:(dlsr_route ())
              ~scenario)
      in
      (report, J.to_jsonl_string buf))

let test_serve_jobs_identity () =
  let r1, journal1 = serve_once ~jobs:1 in
  let r2, journal2 = serve_once ~jobs:2 in
  Alcotest.(check string) "deterministic report identical for --jobs 1 and 2"
    (Format.asprintf "%a" Serve.pp_deterministic r1)
    (Format.asprintf "%a" Serve.pp_deterministic r2);
  Alcotest.(check string) "journal bytes identical for --jobs 1 and 2" journal1
    journal2;
  Alcotest.(check bool) "what-ifs actually ran" true (r1.Serve.rp_what_ifs > 0)

let test_serve_smoke () =
  (* The tier-1 smoke: a fixed-seed serve run must admit something, violate
     no invariant, and emit a journal the trace checker accepts. *)
  let report, journal = serve_once ~jobs:1 in
  Alcotest.(check bool) "admissions happened" true (report.Serve.rp_accepted > 0);
  Alcotest.(check int) "zero invariant violations" 0
    report.Serve.rp_invariant_failures;
  Alcotest.(check bool) "invariants were audited" true
    (report.Serve.rp_invariant_checks > 1);
  Alcotest.(check bool) "throughput is positive" true
    (report.Serve.rp_requests_per_sec > 0.0);
  let tr = Trace.of_string journal in
  let errors = List.filter Trace.is_error (Trace.check tr) in
  if errors <> [] then
    Alcotest.failf "trace check reported errors: %s" (String.concat "; " errors)

let suite =
  [
    ( "service",
      [
        prop_rollback_bit_identity;
        Alcotest.test_case "snapshot buffer reuse rolls back bit-identically"
          `Quick test_snapshot_buffer_reuse;
        Alcotest.test_case "what-if queries leave no trace on the truth" `Quick
          test_what_if_side_effect_free;
        Alcotest.test_case "what-if records one journal event, discards the rest"
          `Quick test_what_if_journal_silent;
        Alcotest.test_case "batch == sequential (d-lsr)" `Quick
          test_batch_differential_dlsr;
        Alcotest.test_case "batch == sequential (bf + loss plan)" `Quick
          test_batch_differential_bf_faults;
        Alcotest.test_case "reordered batch keeps verdict positions" `Quick
          test_batch_reorder_verdict_positions;
        Alcotest.test_case "serve report and journal independent of --jobs"
          `Quick test_serve_jobs_identity;
        Alcotest.test_case "serve smoke: admissions, invariants, trace check"
          `Quick test_serve_smoke;
      ] );
  ]

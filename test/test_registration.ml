(* Registration guard: every test_*.ml in this directory must be listed in
   the dune (modules ...) stanza AND have its suite concatenated in
   test_main.ml.  A forgotten registration silently drops a whole test
   module from the build — this meta-test turns that into a failure.

   Runs inside the build context (_build/default/test), where dune has
   materialised every source it compiled. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Word-level occurrence check: [needle] bounded by non-identifier chars. *)
let contains_word haystack needle =
  let nlen = String.length needle and hlen = String.length haystack in
  let is_ident c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\''
  in
  let rec scan i =
    if i + nlen > hlen then false
    else if
      String.sub haystack i nlen = needle
      && (i = 0 || not (is_ident haystack.[i - 1]))
      && (i + nlen = hlen || not (is_ident haystack.[i + nlen]))
    then true
    else scan (i + 1)
  in
  scan 0

let test_modules () =
  Sys.readdir "."
  |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 8
         && String.sub f 0 5 = "test_"
         && Filename.check_suffix f ".ml"
         && f <> "test_main.ml")
  |> List.map (fun f -> Filename.chop_suffix f ".ml")
  |> List.sort compare

let test_all_modules_in_dune () =
  if not (Sys.file_exists "dune" && Sys.file_exists "test_main.ml") then
    Alcotest.fail
      "test sources not visible from the test cwd — fix the dune (deps ...) \
       of the test stanza";
  let dune = read_file "dune" in
  let missing =
    List.filter (fun m -> not (contains_word dune m)) (test_modules ())
  in
  if missing <> [] then
    Alcotest.failf
      "test module(s) not listed in test/dune (modules ...): %s"
      (String.concat ", " missing)

let test_all_modules_registered () =
  let main = read_file "test_main.ml" in
  let missing =
    List.filter
      (fun m -> not (contains_word main (String.capitalize_ascii m ^ ".suite")))
      (test_modules ())
  in
  if missing <> [] then
    Alcotest.failf
      "test suite(s) not concatenated in test_main.ml: %s"
      (String.concat ", "
         (List.map (fun m -> String.capitalize_ascii m ^ ".suite") missing))

let test_no_phantom_registrations () =
  let main = read_file "test_main.ml" in
  let modules = test_modules () in
  (* Collect "Test_foo.suite" occurrences and check each has a file. *)
  let phantom = ref [] in
  let len = String.length main in
  let i = ref 0 in
  while !i < len do
    (match String.index_from_opt main !i 'T' with
    | None -> i := len
    | Some j ->
        (if j + 5 <= len && String.sub main j 5 = "Test_" then
           let k = ref (j + 5) in
           while
             !k < len
             && (match main.[!k] with
                | 'a' .. 'z' | '0' .. '9' | '_' -> true
                | _ -> false)
           do
             incr k
           done;
           if !k + 6 <= len && String.sub main !k 6 = ".suite" then
             let name = String.uncapitalize_ascii (String.sub main j (!k - j)) in
             if
               name <> "test_main"
               && (not (List.mem name modules))
               && not (List.mem name !phantom)
             then phantom := name :: !phantom);
        i := j + 1)
  done;
  if !phantom <> [] then
    Alcotest.failf "test_main.ml registers suites with no source file: %s"
      (String.concat ", " (List.rev !phantom))

let test_sanity () =
  (* This very module must find itself. *)
  Alcotest.(check bool)
    "finds test_registration.ml" true
    (List.mem "test_registration" (test_modules ()))

(* The same guard idea applied to the journal's event registry: every kind
   declared in lib/obs/journal.ml ([J.all_kinds]) must have an instance in
   [Test_obs.one_of_each] — otherwise a new event ships with no test ever
   serialising it — and every instance must actually survive the
   JSONL round trip ([to_jsonl_string] -> [parse_line]).  A constructor
   added to the event type but forgotten in [parse_line]'s kind table (or
   vice versa) fails here, not in production journal tooling. *)

module J = Dr_obs.Journal

let test_all_journal_kinds_have_instances () =
  let covered =
    List.sort_uniq compare (List.map J.kind_name Test_obs.one_of_each)
  in
  let missing = List.filter (fun k -> not (List.mem k covered)) J.all_kinds in
  if missing <> [] then
    Alcotest.failf
      "journal kind(s) no test round-trips — add an instance to \
       Test_obs.one_of_each: %s"
      (String.concat ", " missing);
  let unknown = List.filter (fun k -> not (List.mem k J.all_kinds)) covered in
  if unknown <> [] then
    Alcotest.failf
      "Test_obs.one_of_each has kind(s) missing from Journal.all_kinds: %s"
      (String.concat ", " unknown)

let test_all_journal_kinds_round_trip () =
  J.set_enabled true;
  Fun.protect ~finally:(fun () -> J.set_enabled false) @@ fun () ->
  let t = J.create () in
  J.with_buffer t (fun () -> List.iter J.record Test_obs.one_of_each);
  let lines = String.split_on_char '\n' (String.trim (J.to_jsonl_string t)) in
  Alcotest.(check int) "every instance serialises to one line"
    (List.length Test_obs.one_of_each)
    (List.length lines);
  List.iteri
    (fun i line ->
      match J.parse_line line with
      | Error msg ->
          Alcotest.failf "kind %s does not parse back: %s (%s)"
            (J.kind_name (List.nth Test_obs.one_of_each i))
            msg line
      | Ok p ->
          Alcotest.(check string) "kind survives the round trip"
            (J.kind_name (List.nth Test_obs.one_of_each i))
            p.J.p_kind)
    lines

let suite =
  [
    ( "registration-guard",
      [
        Alcotest.test_case "guard sees the sources" `Quick test_sanity;
        Alcotest.test_case "every test_*.ml is in dune modules" `Quick
          test_all_modules_in_dune;
        Alcotest.test_case "every test_*.ml suite is run by test_main" `Quick
          test_all_modules_registered;
        Alcotest.test_case "no registered suite lacks a source file" `Quick
          test_no_phantom_registrations;
        Alcotest.test_case "every journal kind has a round-trip instance"
          `Quick test_all_journal_kinds_have_instances;
        Alcotest.test_case "every journal kind survives the JSONL round trip"
          `Quick test_all_journal_kinds_round_trip;
      ] );
  ]

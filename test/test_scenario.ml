module Scenario = Dr_sim.Scenario

let request ~time ~conn ~src ~dst =
  { Scenario.time; event = Scenario.Request { conn; src; dst; bw = 1; duration = 10.0 } }

let release ~time ~conn = { Scenario.time; event = Scenario.Release { conn } }

let test_sorting () =
  let s =
    Scenario.of_items
      [ release ~time:5.0 ~conn:0; request ~time:1.0 ~conn:0 ~src:0 ~dst:1 ]
  in
  let times = Array.to_list (Array.map (fun i -> i.Scenario.time) (Scenario.items s)) in
  Alcotest.(check (list (float 1e-9))) "sorted" [ 1.0; 5.0 ] times

let test_request_before_release_at_tie () =
  let s =
    Scenario.of_items
      [
        release ~time:2.0 ~conn:0;
        request ~time:1.0 ~conn:0 ~src:0 ~dst:1;
        request ~time:2.0 ~conn:1 ~src:1 ~dst:2;
      ]
  in
  let kinds =
    Array.to_list
      (Array.map
         (fun i -> match i.Scenario.event with Scenario.Request _ -> 'R' | _ -> 'L')
         (Scenario.items s))
  in
  Alcotest.(check (list char)) "R before L at equal time" [ 'R'; 'R'; 'L' ] kinds

let test_counts_and_horizon () =
  let s =
    Scenario.of_items
      [
        request ~time:1.0 ~conn:0 ~src:0 ~dst:1;
        release ~time:4.0 ~conn:0;
        request ~time:2.0 ~conn:1 ~src:1 ~dst:2;
        release ~time:3.0 ~conn:1;
      ]
  in
  Alcotest.(check int) "length" 4 (Scenario.length s);
  Alcotest.(check int) "requests" 2 (Scenario.request_count s);
  Alcotest.(check (float 1e-9)) "horizon" 4.0 (Scenario.horizon s)

let test_validation () =
  let invalid items =
    try ignore (Scenario.of_items items); false with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "duplicate request" true
    (invalid [ request ~time:1.0 ~conn:0 ~src:0 ~dst:1; request ~time:2.0 ~conn:0 ~src:1 ~dst:2 ]);
  Alcotest.(check bool) "release without request" true
    (invalid [ release ~time:1.0 ~conn:9 ]);
  Alcotest.(check bool) "release before request" true
    (invalid [ request ~time:5.0 ~conn:0 ~src:0 ~dst:1; release ~time:1.0 ~conn:0 ]);
  Alcotest.(check bool) "src = dst" true
    (invalid [ request ~time:1.0 ~conn:0 ~src:3 ~dst:3 ]);
  Alcotest.(check bool) "negative time" true
    (invalid [ request ~time:(-1.0) ~conn:0 ~src:0 ~dst:1 ]);
  Alcotest.(check bool) "double release" true
    (invalid
       [
         request ~time:1.0 ~conn:0 ~src:0 ~dst:1;
         release ~time:2.0 ~conn:0;
         release ~time:3.0 ~conn:0;
       ])

let test_text_roundtrip () =
  let s =
    Scenario.of_items
      [
        request ~time:1.25 ~conn:0 ~src:0 ~dst:1;
        request ~time:2.5 ~conn:1 ~src:3 ~dst:2;
        release ~time:11.25 ~conn:0;
        release ~time:12.5 ~conn:1;
      ]
  in
  match Scenario.of_string (Scenario.to_string s) with
  | Error e -> Alcotest.fail e
  | Ok s2 ->
      Alcotest.(check int) "same length" (Scenario.length s) (Scenario.length s2);
      Array.iteri
        (fun i item ->
          let item2 = (Scenario.items s2).(i) in
          Alcotest.(check (float 1e-6)) "same time" item.Scenario.time item2.Scenario.time;
          Alcotest.(check bool) "same event" true (item.Scenario.event = item2.Scenario.event))
        (Scenario.items s)

let test_file_roundtrip () =
  let s =
    Scenario.of_items
      [ request ~time:0.5 ~conn:0 ~src:0 ~dst:5; release ~time:60.5 ~conn:0 ]
  in
  let file = Filename.temp_file "drtp_scenario" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Scenario.save s file;
      match Scenario.load file with
      | Error e -> Alcotest.fail e
      | Ok s2 -> Alcotest.(check int) "round-trips" 2 (Scenario.length s2))

let test_parse_errors () =
  let check_err name text =
    match Scenario.of_string text with
    | Ok _ -> Alcotest.failf "%s should fail" name
    | Error _ -> ()
  in
  check_err "missing header" "R 1.0 0 0 1 1 10.0\n";
  check_err "garbage line" "# drtp-scenario v1\nnonsense here\n";
  check_err "bad number" "# drtp-scenario v1\nR x 0 0 1 1 10.0\n";
  check_err "truncated" "# drtp-scenario v1\nR 1.0 0\n"

let test_parse_tolerates_comments_and_blanks () =
  let text = "# drtp-scenario v1\n\n# comment\nR 1.0 0 0 1 1 10.0\nL 11.0 0\n" in
  match Scenario.of_string text with
  | Error e -> Alcotest.fail e
  | Ok s -> Alcotest.(check int) "two events" 2 (Scenario.length s)

let suite =
  [
    ( "eventsim.scenario",
      [
        Alcotest.test_case "sorted by time" `Quick test_sorting;
        Alcotest.test_case "requests first at ties" `Quick test_request_before_release_at_tie;
        Alcotest.test_case "counts and horizon" `Quick test_counts_and_horizon;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "text round-trip" `Quick test_text_roundtrip;
        Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "comments and blanks ok" `Quick test_parse_tolerates_comments_and_blanks;
      ] );
  ]

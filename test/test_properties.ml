(* Property-based tests (qcheck) on the core data structures and the
   simulation invariants. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module SP = Dr_topo.Shortest_path
module Net_state = Drtp.Net_state
module Aplv = Drtp.Aplv
module Resources = Drtp.Resources
module Pqueue = Dr_pqueue.Pqueue
module Rng = Dr_rng.Splitmix64

let property ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* --- generators --------------------------------------------------------- *)

let seed_gen = QCheck.int_range 0 1_000_000

let random_graph seed =
  let rng = Rng.create seed in
  let n = 6 + Rng.int rng 15 in
  let avg_degree = 2.2 +. Rng.float rng 1.5 in
  Dr_topo.Gen.erdos_renyi ~rng ~n ~avg_degree

let random_pair rng n =
  let a = Rng.int rng n in
  let b = Rng.int rng (n - 1) in
  (a, if b >= a then b + 1 else b)

(* --- pqueue ------------------------------------------------------------- *)

let prop_pqueue_sorts =
  property "pqueue drains in sorted order"
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun keys ->
      let q = Pqueue.create () in
      List.iteri (fun i k -> Pqueue.add q ~key:k i) keys;
      let drained = List.map fst (Pqueue.to_sorted_list q) in
      drained = List.sort compare keys)

(* --- shortest paths ----------------------------------------------------- *)

let prop_dijkstra_equals_bellman_ford =
  property ~count:50 "dijkstra = bellman-ford on random weighted graphs" seed_gen
    (fun seed ->
      let g = random_graph seed in
      let rng = Rng.create (seed + 1) in
      let costs =
        Array.init (Graph.link_count g) (fun _ -> 0.1 +. Rng.float rng 5.0)
      in
      let cost l = costs.(l) in
      let src = Rng.int rng (Graph.node_count g) in
      let d = SP.dijkstra g ~cost ~src in
      match SP.bellman_ford g ~cost ~src with
      | Error _ -> false
      | Ok (dist, _) ->
          Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) d.SP.dist dist)

let prop_dijkstra_unit_equals_bfs =
  property ~count:50 "dijkstra with unit costs = bfs" seed_gen (fun seed ->
      let g = random_graph seed in
      let rng = Rng.create (seed + 2) in
      let src = Rng.int rng (Graph.node_count g) in
      let d = SP.dijkstra g ~cost:(fun _ -> 1.0) ~src in
      let b = SP.bfs_hops g ~src in
      Array.for_all2
        (fun df bh ->
          if bh = SP.unreachable then df = infinity else df = float_of_int bh)
        d.SP.dist b)

let prop_extracted_path_cost_matches =
  property ~count:50 "extracted path recomputes to its distance" seed_gen
    (fun seed ->
      let g = random_graph seed in
      let rng = Rng.create (seed + 3) in
      let costs = Array.init (Graph.link_count g) (fun _ -> 0.1 +. Rng.float rng 3.0) in
      let cost l = costs.(l) in
      let src, dst = random_pair rng (Graph.node_count g) in
      match SP.dijkstra_path g ~cost ~src ~dst with
      | None -> true
      | Some (c, p) ->
          let recomputed =
            List.fold_left (fun acc l -> acc +. cost l) 0.0 (Path.links p)
          in
          Float.abs (c -. recomputed) < 1e-9
          && Path.src p = src && Path.dst p = dst)

let prop_yen_first_is_optimal =
  property ~count:30 "yen's first path equals dijkstra's" seed_gen (fun seed ->
      let g = random_graph seed in
      let rng = Rng.create (seed + 4) in
      let src, dst = random_pair rng (Graph.node_count g) in
      let cost _ = 1.0 in
      match
        ( Dr_topo.Yen.k_shortest g ~cost ~src ~dst ~k:3,
          SP.dijkstra_path g ~cost ~src ~dst )
      with
      | [], None -> true
      | (c1, _) :: _, Some (c2, _) -> Float.abs (c1 -. c2) < 1e-9
      | _, _ -> false)

(* --- flows vs connectivity ---------------------------------------------- *)

let prop_flow_bounded_by_degree =
  property ~count:50 "disjoint path count <= min endpoint degree" seed_gen
    (fun seed ->
      let g = random_graph seed in
      let rng = Rng.create (seed + 5) in
      let src, dst = random_pair rng (Graph.node_count g) in
      let n, _ = Dr_topo.Flow.max_disjoint_paths g ~src ~dst () in
      n <= min (Graph.degree g src) (Graph.degree g dst) && n >= 1)

let prop_bridgeless_implies_two_paths =
  property ~count:30 "2-edge-connected graphs give 2 edge-disjoint paths"
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let g = Dr_topo.Gen.waxman ~rng ~n:20 ~avg_degree:3.0 () in
      let src, dst = random_pair rng 20 in
      Dr_topo.Flow.edge_disjoint_paths g ~src ~dst >= 2)

(* --- aplv ---------------------------------------------------------------- *)

let lset_gen = QCheck.(list_of_size (Gen.int_range 1 6) (int_range 0 10))

let dedup l = List.sort_uniq compare l

let prop_aplv_register_unregister_cancels =
  property "aplv: register then unregister is identity"
    QCheck.(pair lset_gen lset_gen)
    (fun (l1, l2) ->
      let l1 = dedup l1 and l2 = dedup l2 in
      QCheck.assume (l1 <> [] && l2 <> []);
      let a = Aplv.create () in
      Aplv.register a ~edge_lset:l1;
      let norm_before = Aplv.norm1 a and support_before = Aplv.support a in
      Aplv.register a ~edge_lset:l2;
      Aplv.unregister a ~edge_lset:l2;
      Aplv.norm1 a = norm_before && Aplv.support a = support_before)

let prop_aplv_norm_is_sum =
  property "aplv: norm1 = sum over support"
    QCheck.(list_of_size (Gen.int_range 0 8) lset_gen)
    (fun lsets ->
      let lsets = List.filter (fun l -> l <> []) (List.map dedup lsets) in
      let a = Aplv.create () in
      List.iter (fun l -> Aplv.register a ~edge_lset:l) lsets;
      let sum = List.fold_left (fun acc j -> acc + Aplv.get a j) 0 (Aplv.support a) in
      Aplv.norm1 a = sum
      && Aplv.max_element a
         = List.fold_left (fun acc j -> max acc (Aplv.get a j)) 0 (Aplv.support a)
      && Aplv.backup_count a = List.length lsets)

(* --- scenario round-trip -------------------------------------------------- *)

let prop_scenario_roundtrip =
  property ~count:50 "scenario text round-trip" seed_gen (fun seed ->
      let rng = Rng.create seed in
      let spec =
        {
          Dr_sim.Workload.arrival_rate = 0.05 +. Rng.float rng 0.2;
          horizon = 500.0;
          lifetime_lo = 10.0;
          lifetime_hi = 50.0;
          bw = Dr_sim.Workload.constant_bw (1 + Rng.int rng 3);
          pattern = Dr_sim.Workload.Uniform;
        }
      in
      let s = Dr_sim.Workload.generate rng ~node_count:12 spec in
      match Dr_sim.Scenario.of_string (Dr_sim.Scenario.to_string s) with
      | Error _ -> false
      | Ok s2 -> Dr_sim.Scenario.to_string s = Dr_sim.Scenario.to_string s2)

(* --- generators keep their promises -------------------------------------- *)

let prop_waxman_shape =
  property ~count:20 "waxman: connected, exact size, bridge-free" seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let n = 20 + Rng.int rng 30 in
      let avg_degree = 3.0 +. Rng.float rng 1.0 in
      let g = Dr_topo.Gen.waxman ~rng ~n ~avg_degree () in
      Graph.node_count g = n
      && Graph.edge_count g
         = int_of_float (Float.round (float_of_int n *. avg_degree /. 2.0))
      && Dr_topo.Connectivity.is_two_edge_connected g)

(* --- summary ------------------------------------------------------------- *)

let prop_summary_matches_direct =
  property "summary mean/variance match direct computation"
    QCheck.(list_of_size (Gen.int_range 2 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let s = Dr_stats.Summary.create () in
      List.iter (Dr_stats.Summary.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
      in
      Float.abs (Dr_stats.Summary.mean s -. mean) < 1e-6
      && Float.abs (Dr_stats.Summary.variance s -. var) < 1e-6)

(* --- end-to-end state invariants ------------------------------------------ *)

(* Replay a random workload through the manager, checking the deep state
   invariants as we go and that a fully drained network returns to zero. *)
let prop_manager_invariants scheme_name route =
  property ~count:15 ("manager preserves invariants (" ^ scheme_name ^ ")")
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let graph = Dr_topo.Gen.waxman ~rng ~n:20 ~avg_degree:3.2 () in
      let manager =
        Drtp.Manager.create ~graph ~capacity:6
          ~spare_policy:Net_state.Multiplexed ~route:(route graph)
      in
      let spec =
        {
          Dr_sim.Workload.arrival_rate = 0.5;
          horizon = 400.0;
          lifetime_lo = 50.0;
          lifetime_hi = 150.0;
          bw = Dr_sim.Workload.constant_bw 1;
          pattern = Dr_sim.Workload.Uniform;
        }
      in
      let scenario = Dr_sim.Workload.generate rng ~node_count:20 spec in
      let ok = ref true in
      let steps = ref 0 in
      Dr_sim.Scenario.iter scenario (fun item ->
          Drtp.Manager.apply manager item;
          incr steps;
          if !steps mod 50 = 0 then
            match Net_state.check_invariants (Drtp.Manager.state manager) with
            | Ok () -> ()
            | Error _ -> ok := false);
      let state = Drtp.Manager.state manager in
      !ok
      && Net_state.check_invariants state = Ok ()
      && Net_state.active_count state = 0
      && Resources.total_prime (Net_state.resources state) = 0
      && Resources.total_spare (Net_state.resources state) = 0)

let prop_manager_invariants_dlsr =
  prop_manager_invariants "D-LSR" (fun _ ->
      Drtp.Routing.link_state_route_fn Drtp.Routing.Dlsr ~with_backup:true)

let prop_manager_invariants_bf =
  prop_manager_invariants "BF" (fun graph ->
      Dr_flood.Bounded_flood.route_fn
        ~hop_matrix:(SP.hop_matrix graph) ())

let prop_no_deficit_means_full_fault_tolerance =
  property ~count:15 "zero deficit + disjoint backups => P_act-bk = 1" seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let graph = Dr_topo.Gen.waxman ~rng ~n:20 ~avg_degree:3.5 () in
      (* Generous capacity: spare reservations always succeed. *)
      let manager =
        Drtp.Manager.create ~graph ~capacity:200
          ~spare_policy:Net_state.Multiplexed
          ~route:(Drtp.Routing.link_state_route_fn Drtp.Routing.Dlsr ~with_backup:true)
      in
      let spec =
        {
          Dr_sim.Workload.arrival_rate = 0.3;
          horizon = 300.0;
          lifetime_lo = 200.0;
          lifetime_hi = 400.0;
          bw = Dr_sim.Workload.constant_bw 1;
          pattern = Dr_sim.Workload.Uniform;
        }
      in
      let scenario = Dr_sim.Workload.generate rng ~node_count:20 spec in
      (* Stop before releases so the network is loaded. *)
      let items = Dr_sim.Scenario.items scenario in
      Array.iter
        (fun item ->
          if item.Dr_sim.Scenario.time <= 300.0 then Drtp.Manager.apply manager item)
        items;
      let state = Drtp.Manager.state manager in
      let all_disjoint = ref true in
      Net_state.iter_conns state (fun c ->
          match c.Net_state.backups with
          | b :: _ ->
              if Path.edge_overlap b c.Net_state.primary > 0 then all_disjoint := false
          | [] -> all_disjoint := false);
      if Net_state.total_spare_deficit state = 0 && !all_disjoint then
        Drtp.Failure_eval.fault_tolerance (Drtp.Failure_eval.evaluate state) = 1.0
      else true)

let prop_flood_candidates_valid =
  property ~count:30 "flood candidates are loop-free, bounded and feasible"
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let graph = Dr_topo.Gen.waxman ~rng ~n:20 ~avg_degree:3.2 () in
      let state = Net_state.create ~graph ~capacity:5 ~spare_policy:Net_state.Multiplexed in
      let hop_matrix = SP.hop_matrix graph in
      let src, dst = random_pair rng 20 in
      let config = Dr_flood.Bounded_flood.default_config in
      let r = Dr_flood.Bounded_flood.discover config state ~hop_matrix ~src ~dst ~bw:1 in
      let limit = hop_matrix.(src).(dst) + config.Dr_flood.Bounded_flood.beta0 in
      List.for_all
        (fun c ->
          let p = c.Dr_flood.Bounded_flood.path in
          Path.is_simple graph p
          && Path.hops p <= limit
          && Path.src p = src && Path.dst p = dst)
        r.Dr_flood.Bounded_flood.candidates)

let suite =
  [
    ( "properties",
      [
        prop_pqueue_sorts;
        prop_dijkstra_equals_bellman_ford;
        prop_dijkstra_unit_equals_bfs;
        prop_extracted_path_cost_matches;
        prop_yen_first_is_optimal;
        prop_flow_bounded_by_degree;
        prop_bridgeless_implies_two_paths;
        prop_aplv_register_unregister_cancels;
        prop_aplv_norm_is_sum;
        prop_scenario_roundtrip;
        prop_waxman_shape;
        prop_summary_matches_direct;
        prop_manager_invariants_dlsr;
        prop_manager_invariants_bf;
        prop_no_deficit_means_full_fault_tolerance;
        prop_flood_candidates_valid;
      ] );
  ]

module Tm = Dr_telemetry.Telemetry

(* Every test leaves the global telemetry state as it found it: disabled,
   zeroed, noop sink, wall-clock timestamps. *)
let scoped f =
  Tm.reset ();
  Tm.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      Tm.Sink.close ();
      Tm.set_enabled false;
      Tm.set_clock Unix.gettimeofday;
      Tm.reset ())

let test_counter () =
  scoped @@ fun () ->
  let c = Tm.Counter.make "test.counter" in
  Alcotest.(check int) "starts at zero" 0 (Tm.Counter.value c);
  Tm.Counter.incr c;
  Tm.Counter.add c 4;
  Alcotest.(check int) "incr + add" 5 (Tm.Counter.value c);
  Tm.set_enabled false;
  Tm.Counter.incr c;
  Tm.Counter.add c 100;
  Alcotest.(check int) "no-op while disabled" 5 (Tm.Counter.value c);
  Tm.set_enabled true;
  let c' = Tm.Counter.make "test.counter" in
  Tm.Counter.incr c';
  Alcotest.(check int) "same name, same counter" 6 (Tm.Counter.value c)

let test_gauge () =
  scoped @@ fun () ->
  let g = Tm.Gauge.make "test.gauge" in
  Tm.Gauge.set g 3.0;
  Tm.Gauge.set g 7.0;
  Tm.Gauge.set g 2.0;
  Alcotest.(check (float 0.0)) "last value" 2.0 (Tm.Gauge.value g);
  Alcotest.(check (float 0.0)) "high-water mark" 7.0 (Tm.Gauge.max_seen g);
  Tm.reset ();
  Alcotest.(check (float 0.0)) "reset zeroes value" 0.0 (Tm.Gauge.value g);
  Alcotest.(check bool) "reset clears high-water" true
    (Tm.Gauge.max_seen g = neg_infinity)

let test_timer () =
  scoped @@ fun () ->
  let t = Tm.Timer.make "test.timer" in
  Tm.Timer.record t 0.5;
  Tm.Timer.record t 1.5;
  Alcotest.(check int) "count" 2 (Tm.Timer.count t);
  Alcotest.(check (float 1e-9)) "total" 2.0 (Tm.Timer.total_s t);
  Alcotest.(check (float 1e-9)) "summary mean" 1.0
    (Dr_stats.Summary.mean (Tm.Timer.summary t))

let test_timer_time () =
  scoped @@ fun () ->
  (* Drive a fake clock so recorded durations are exact. *)
  let now = ref 100.0 in
  Tm.set_clock (fun () -> !now);
  let t = Tm.Timer.make "test.timer.time" in
  let r =
    Tm.Timer.time t (fun () ->
        now := !now +. 0.25;
        42)
  in
  Alcotest.(check int) "thunk result returned" 42 r;
  Alcotest.(check (float 1e-9)) "duration recorded" 0.25 (Tm.Timer.total_s t);
  (* Exceptions propagate and the duration is still recorded. *)
  (try
     Tm.Timer.time t (fun () ->
         now := !now +. 1.0;
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "count includes raising thunk" 2 (Tm.Timer.count t);
  Alcotest.(check (float 1e-9)) "raising duration recorded" 1.25
    (Tm.Timer.total_s t);
  Tm.set_enabled false;
  let r' = Tm.Timer.time t (fun () -> 7) in
  Alcotest.(check int) "disabled: thunk still runs" 7 r';
  Alcotest.(check int) "disabled: nothing recorded" 2 (Tm.Timer.count t)

let test_span_feeds_timer () =
  scoped @@ fun () ->
  let now = ref 0.0 in
  Tm.set_clock (fun () -> !now);
  let r =
    Tm.Span.with_ ~name:"test.span" (fun () ->
        now := !now +. 0.125;
        "done")
  in
  Alcotest.(check string) "result" "done" r;
  let t = Tm.Timer.make "test.span" in
  Alcotest.(check int) "span recorded on timer of same name" 1
    (Tm.Timer.count t);
  Alcotest.(check (float 1e-9)) "span duration" 0.125 (Tm.Timer.total_s t)

let read_lines file =
  let ic = open_in file in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let contains line sub = Astring.String.is_infix ~affix:sub line

(* Cheap well-formedness check for one JSONL line: object braces balance
   and quotes pair up (sufficient for output we generate ourselves). *)
let looks_like_json line =
  String.length line >= 2
  && line.[0] = '{'
  && line.[String.length line - 1] = '}'
  &&
  let depth = ref 0 and quotes = ref 0 and ok = ref true in
  String.iteri
    (fun i c ->
      let escaped = i > 0 && line.[i - 1] = '\\' in
      match c with
      | '"' when not escaped -> incr quotes
      | '{' when !quotes mod 2 = 0 -> incr depth
      | '}' when !quotes mod 2 = 0 ->
          decr depth;
          if !depth < 0 then ok := false
      | _ -> ())
    line;
  !ok && !depth = 0 && !quotes mod 2 = 0

let test_jsonl_sink () =
  scoped @@ fun () ->
  let now = ref 10.0 in
  Tm.set_clock (fun () -> !now);
  let file = Filename.temp_file "drtp_test_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  Tm.Sink.set (Tm.Sink.jsonl (open_out file));
  let c = Tm.Counter.make "sink.counter" in
  Tm.Counter.add c 3;
  ignore
    (Tm.Span.with_ ~name:"sink.span"
       ~attrs:[ ("scheme", Tm.String "D-LSR"); ("n", Tm.Int 2) ]
       (fun () ->
         now := !now +. 0.5;
         ()));
  Tm.Span.event "sink.event" ~attrs:[ ("ok", Tm.Bool true) ];
  Tm.Sink.close ();
  let lines = read_lines file in
  Alcotest.(check bool) "every line is a JSON object" true
    (List.for_all looks_like_json lines);
  let span =
    match List.filter (fun l -> contains l {|"type":"span"|}) lines with
    | [ l ] -> l
    | other -> Alcotest.failf "expected 1 span line, got %d" (List.length other)
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "span has %s" sub) true
        (contains span sub))
    [ {|"name":"sink.span"|}; {|"dur_s":|}; {|"scheme":"D-LSR"|}; {|"n":2|} ];
  let event =
    match List.filter (fun l -> contains l {|"type":"event"|}) lines with
    | [ l ] -> l
    | other ->
        Alcotest.failf "expected 1 event line, got %d" (List.length other)
  in
  Alcotest.(check bool) "event has no duration" false (contains event {|"dur_s"|});
  Alcotest.(check bool) "event carries attrs" true (contains event {|"ok":true|});
  (* close () appended the metric snapshot *)
  Alcotest.(check bool) "counter snapshot present" true
    (List.exists
       (fun l ->
         contains l {|"type":"counter"|}
         && contains l {|"name":"sink.counter"|}
         && contains l {|"value":3|})
       lines);
  Alcotest.(check bool) "timer snapshot present" true
    (List.exists
       (fun l ->
         contains l {|"type":"timer"|} && contains l {|"name":"sink.span"|})
       lines)

let test_disabled_emits_nothing () =
  scoped @@ fun () ->
  Tm.set_enabled false;
  let file = Filename.temp_file "drtp_test_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  Tm.Sink.set (Tm.Sink.jsonl (open_out file));
  ignore (Tm.Span.with_ ~name:"quiet.span" (fun () -> ()));
  Tm.Span.event "quiet.event";
  Tm.Sink.close ();
  Alcotest.(check bool) "no span/event records while disabled" true
    (List.for_all
       (fun l -> not (contains l {|"type":"span"|} || contains l {|"type":"event"|}))
       (read_lines file))

(* The load-bearing property: switching telemetry on (including a JSONL
   sink) must not perturb a measured run in any way.  The instrumentation
   only observes — identical inputs must give bit-identical measurements. *)
let prop_measurements_unaffected =
  let module Config = Dr_exp.Config in
  let module Runner = Dr_exp.Runner in
  let cfg =
    {
      Config.default with
      Config.warmup = 600.0;
      horizon = 1200.0;
      sample_every = 300.0;
      lifetime_lo = 300.0;
      lifetime_hi = 600.0;
    }
  in
  let graph = lazy (Config.make_graph cfg ~avg_degree:3.0) in
  let gen =
    QCheck2.Gen.pair
      (QCheck2.Gen.oneofl
         [
           Runner.Lsr Drtp.Routing.Dlsr;
           Runner.Lsr Drtp.Routing.Plsr;
           Runner.Bf Dr_flood.Bounded_flood.default_config;
         ])
      (QCheck2.Gen.oneofl [ 0.2; 0.4 ])
  in
  QCheck2.Test.make ~count:4 ~name:"telemetry on/off leaves measurements intact"
    gen (fun (scheme, lambda) ->
      let graph = Lazy.force graph in
      let scenario = Config.make_scenario cfg Config.UT ~lambda in
      let run () = Runner.run cfg ~graph ~scenario ~scheme in
      Tm.set_enabled false;
      let off = run () in
      let file = Filename.temp_file "drtp_prop_trace" ".jsonl" in
      let on =
        Fun.protect
          ~finally:(fun () ->
            Tm.Sink.close ();
            Tm.set_enabled false;
            Tm.reset ();
            Sys.remove file)
          (fun () ->
            Tm.reset ();
            Tm.set_enabled true;
            Tm.Sink.set (Tm.Sink.jsonl (open_out file));
            run ())
      in
      compare off on = 0)

let suite =
  [
    ( "telemetry",
      [
        Alcotest.test_case "counter semantics" `Quick test_counter;
        Alcotest.test_case "gauge high-water" `Quick test_gauge;
        Alcotest.test_case "timer record" `Quick test_timer;
        Alcotest.test_case "timer time + exceptions" `Quick test_timer_time;
        Alcotest.test_case "span feeds timer" `Quick test_span_feeds_timer;
        Alcotest.test_case "jsonl sink shape" `Quick test_jsonl_sink;
        Alcotest.test_case "disabled sink emits nothing" `Quick
          test_disabled_emits_nothing;
        QCheck_alcotest.to_alcotest prop_measurements_unaffected;
      ] );
  ]

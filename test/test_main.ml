(* Aggregated alcotest entry point: one section per module under test. *)

let () =
  Alcotest.run "drtp-reproduction"
    (List.concat
       [
         Test_splitmix.suite;
         Test_dist.suite;
         Test_pqueue.suite;
         Test_graph.suite;
         Test_path.suite;
         Test_shortest_path.suite;
         Test_yen.suite;
         Test_flow.suite;
         Test_connectivity.suite;
         Test_gen.suite;
         Test_topo_metrics.suite;
         Test_summary.suite;
         Test_histogram.suite;
         Test_engine.suite;
         Test_scenario.suite;
         Test_workload.suite;
         Test_resources.suite;
         Test_aplv.suite;
         Test_conflict_vector.suite;
         Test_net_state.suite;
         Test_routing.suite;
         Test_failure_eval.suite;
         Test_manager.suite;
         Test_recovery.suite;
         Test_bounded_flood.suite;
         Test_multi_backup.suite;
         Test_node_failure.suite;
         Test_protocol.suite;
         Test_constrained_path.suite;
         Test_experiments.suite;
         Test_telemetry.suite;
         Test_parallel.suite;
         Test_obs.suite;
         Test_merge.suite;
         Test_properties.suite;
         Test_properties2.suite;
         Test_differential.suite;
         Test_soak.suite;
         Test_registration.suite;
       ])

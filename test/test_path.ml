module Graph = Dr_topo.Graph
module Path = Dr_topo.Path

(* 0 - 1 - 2
   |   |   |
   3 - 4 - 5 *)
let grid () = Dr_topo.Gen.mesh ~rows:2 ~cols:3

let test_of_nodes () =
  let g = grid () in
  let p = Path.of_nodes g [ 0; 1; 2; 5 ] in
  Alcotest.(check int) "src" 0 (Path.src p);
  Alcotest.(check int) "dst" 5 (Path.dst p);
  Alcotest.(check int) "hops" 3 (Path.hops p);
  Alcotest.(check (list int)) "nodes round-trip" [ 0; 1; 2; 5 ] (Path.nodes g p)

let test_of_links_roundtrip () =
  let g = grid () in
  let p = Path.of_nodes g [ 3; 4; 1 ] in
  let p2 = Path.of_links g (Path.links p) in
  Alcotest.(check (list int)) "same links" (Path.links p) (Path.links p2);
  Alcotest.(check int) "same src" (Path.src p) (Path.src p2);
  Alcotest.(check int) "same dst" (Path.dst p) (Path.dst p2)

let test_invalid_paths () =
  let g = grid () in
  let invalid name f =
    Alcotest.(check bool) name true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  invalid "empty links" (fun () -> Path.of_links g []);
  invalid "single node" (fun () -> Path.of_nodes g [ 2 ]);
  invalid "non-adjacent nodes" (fun () -> Path.of_nodes g [ 0; 5 ]);
  invalid "non-contiguous links" (fun () ->
      let a = Path.of_nodes g [ 0; 1 ] and b = Path.of_nodes g [ 4; 5 ] in
      Path.of_links g (Path.links a @ Path.links b))

let test_lset_and_contains () =
  let g = grid () in
  let p = Path.of_nodes g [ 0; 1; 4 ] in
  let ls = Path.lset p in
  Alcotest.(check int) "lset size" 2 (Path.Link_set.cardinal ls);
  List.iter
    (fun l -> Alcotest.(check bool) "contains own link" true (Path.contains_link p l))
    (Path.links p);
  Alcotest.(check bool) "does not contain other" false (Path.contains_link p 11)

let test_edge_set_crosses () =
  let g = grid () in
  let p = Path.of_nodes g [ 0; 1; 4 ] in
  let edges = Path.edge_set p in
  Alcotest.(check int) "two edges" 2 (Path.Link_set.cardinal edges);
  Path.Link_set.iter
    (fun e -> Alcotest.(check bool) "crosses own edge" true (Path.crosses_edge p e))
    edges;
  (* The reverse path crosses the same edges. *)
  let rev = Path.of_nodes g [ 4; 1; 0 ] in
  Alcotest.(check bool) "reverse crosses same edges" true
    (Path.Link_set.equal edges (Path.edge_set rev))

let test_overlap () =
  let g = grid () in
  let a = Path.of_nodes g [ 0; 1; 2 ] in
  let b = Path.of_nodes g [ 3; 4; 1; 2 ] in
  Alcotest.(check int) "link overlap" 1 (Path.link_overlap a b);
  Alcotest.(check int) "edge overlap" 1 (Path.edge_overlap a b);
  (* Opposite directions share edges but not links. *)
  let rev = Path.of_nodes g [ 2; 1; 0 ] in
  Alcotest.(check int) "no shared directed links" 0 (Path.link_overlap a rev);
  Alcotest.(check int) "shared edges" 2 (Path.edge_overlap a rev)

let test_is_simple () =
  let g = grid () in
  Alcotest.(check bool) "simple" true (Path.is_simple g (Path.of_nodes g [ 0; 1; 4 ]));
  let loopy = Path.of_nodes g [ 0; 1; 4; 3; 0; 3 ] in
  Alcotest.(check bool) "revisits node" false (Path.is_simple g loopy)

let suite =
  [
    ( "topology.path",
      [
        Alcotest.test_case "of_nodes" `Quick test_of_nodes;
        Alcotest.test_case "of_links round-trip" `Quick test_of_links_roundtrip;
        Alcotest.test_case "invalid paths rejected" `Quick test_invalid_paths;
        Alcotest.test_case "lset and membership" `Quick test_lset_and_contains;
        Alcotest.test_case "edge set and crossing" `Quick test_edge_set_crosses;
        Alcotest.test_case "overlap measures" `Quick test_overlap;
        Alcotest.test_case "simplicity check" `Quick test_is_simple;
      ] );
  ]

module Pqueue = Dr_pqueue.Pqueue

let test_empty () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check int) "length 0" 0 (Pqueue.length q);
  Alcotest.(check bool) "pop None" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek None" true (Pqueue.peek q = None)

let test_ordering () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.add q ~key:k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = List.map snd (Pqueue.to_sorted_list q) in
  Alcotest.(check (list int)) "sorted pops" [ 1; 2; 3; 4; 5 ] order

let test_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.add q ~key:1.0 v) [ "a"; "b"; "c" ];
  Pqueue.add q ~key:0.5 "first";
  let order = List.map snd (Pqueue.to_sorted_list q) in
  Alcotest.(check (list string)) "equal keys pop in insertion order"
    [ "first"; "a"; "b"; "c" ] order

let test_peek_does_not_remove () =
  let q = Pqueue.create () in
  Pqueue.add q ~key:2.0 "x";
  Alcotest.(check bool) "peek sees x" true (Pqueue.peek q = Some (2.0, "x"));
  Alcotest.(check int) "still there" 1 (Pqueue.length q);
  Alcotest.(check bool) "pop returns it" true (Pqueue.pop q = Some (2.0, "x"));
  Alcotest.(check int) "now empty" 0 (Pqueue.length q)

let test_interleaved () =
  let q = Pqueue.create () in
  Pqueue.add q ~key:3.0 3;
  Pqueue.add q ~key:1.0 1;
  Alcotest.(check bool) "pop 1" true (Pqueue.pop q = Some (1.0, 1));
  Pqueue.add q ~key:2.0 2;
  Alcotest.(check bool) "pop 2" true (Pqueue.pop q = Some (2.0, 2));
  Alcotest.(check bool) "pop 3" true (Pqueue.pop q = Some (3.0, 3));
  Alcotest.(check bool) "empty" true (Pqueue.pop q = None)

let test_large_random () =
  let rng = Dr_rng.Splitmix64.create 31337 in
  let q = Pqueue.create () in
  let n = 10_000 in
  for i = 1 to n do
    Pqueue.add q ~key:(Dr_rng.Splitmix64.float rng 1000.0) i
  done;
  Alcotest.(check int) "all inserted" n (Pqueue.length q);
  let rec drain last count =
    match Pqueue.pop q with
    | None -> count
    | Some (k, _) ->
        Alcotest.(check bool) "non-decreasing keys" true (k >= last);
        drain k (count + 1)
  in
  Alcotest.(check int) "all drained" n (drain neg_infinity 0)

let test_clear () =
  let q = Pqueue.create () in
  for i = 1 to 10 do
    Pqueue.add q ~key:(float_of_int i) i
  done;
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q);
  Pqueue.add q ~key:1.0 42;
  Alcotest.(check bool) "usable after clear" true (Pqueue.pop q = Some (1.0, 42))

(* Regression for the pop space leak: a popped (or moved-to-front) entry
   used to stay reachable from the vacated heap slot, pinning its payload
   for the queue's lifetime.  Track payloads through weak pointers and
   check the collector can reclaim them while the queue itself is live. *)
let test_pop_releases_payloads () =
  let q = Pqueue.create () in
  let n = 64 in
  let weak = Weak.create n in
  for i = 0 to n - 1 do
    let payload = ref i in
    Weak.set weak i (Some payload);
    Pqueue.add q ~key:(float_of_int i) payload
  done;
  for _ = 1 to n do
    match Pqueue.pop q with
    | Some (_, p) -> ignore (Sys.opaque_identity !p)
    | None -> Alcotest.fail "queue drained early"
  done;
  Gc.full_major ();
  let live = ref 0 in
  for i = 0 to n - 1 do
    if Weak.check weak i then incr live
  done;
  Alcotest.(check int) "popped payloads unreachable from heap array" 0 !live;
  Alcotest.(check int) "queue still usable" 0
    (Pqueue.length (Sys.opaque_identity q))

let test_partial_pop_releases_only_popped () =
  let q = Pqueue.create () in
  let n = 64 in
  let weak = Weak.create n in
  for i = 0 to n - 1 do
    let payload = ref i in
    Weak.set weak i (Some payload);
    Pqueue.add q ~key:(float_of_int i) payload
  done;
  (* Keys equal the payload index, so the first [n/2] pops release exactly
     weak slots [0 .. n/2 - 1]. *)
  for _ = 1 to n / 2 do
    ignore (Pqueue.pop q)
  done;
  Gc.full_major ();
  let popped_live = ref 0 and kept_live = ref 0 in
  for i = 0 to (n / 2) - 1 do
    if Weak.check weak i then incr popped_live
  done;
  for i = n / 2 to n - 1 do
    if Weak.check weak i then incr kept_live
  done;
  Alcotest.(check int) "popped payloads released" 0 !popped_live;
  Alcotest.(check int) "queued payloads retained" (n / 2) !kept_live;
  ignore (Sys.opaque_identity q)

let test_to_sorted_list_preserves () =
  let q = Pqueue.create () in
  List.iter (fun k -> Pqueue.add q ~key:(float_of_int k) k) [ 3; 1; 2 ];
  ignore (Pqueue.to_sorted_list q);
  Alcotest.(check int) "heap unchanged" 3 (Pqueue.length q)

let suite =
  [
    ( "pqueue",
      [
        Alcotest.test_case "empty queue" `Quick test_empty;
        Alcotest.test_case "sorted order" `Quick test_ordering;
        Alcotest.test_case "FIFO on equal keys" `Quick test_fifo_ties;
        Alcotest.test_case "peek non-destructive" `Quick test_peek_does_not_remove;
        Alcotest.test_case "interleaved add/pop" `Quick test_interleaved;
        Alcotest.test_case "large random drain" `Quick test_large_random;
        Alcotest.test_case "clear" `Quick test_clear;
        Alcotest.test_case "pop releases payloads" `Quick
          test_pop_releases_payloads;
        Alcotest.test_case "partial pop releases only popped" `Quick
          test_partial_pop_releases_only_popped;
        Alcotest.test_case "to_sorted_list preserves heap" `Quick test_to_sorted_list_preserves;
      ] );
  ]

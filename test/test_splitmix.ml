module Rng = Dr_rng.Splitmix64

let test_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (Rng.next_int64 a = Rng.next_int64 b)

let test_known_vector () =
  (* Reference output of SplitMix64 for seed 0 (from the public-domain
     reference implementation by Vigna). *)
  let g = Rng.create 0 in
  Alcotest.(check int64) "first output" 0xE220A8397B1DCDAFL (Rng.next_int64 g);
  Alcotest.(check int64) "second output" 0x6E789E6AA1B965F4L (Rng.next_int64 g)

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  let xa = Rng.next_int64 a in
  let xb = Rng.next_int64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  ignore (Rng.next_int64 a);
  (* advancing a must not affect b *)
  let c = Rng.copy b in
  Alcotest.(check int64) "b unaffected by a" (Rng.next_int64 b) (Rng.next_int64 c)

let test_split_independent () =
  let parent = Rng.create 99 in
  let child = Rng.split parent in
  let child_out = Rng.next_int64 child in
  let parent_out = Rng.next_int64 parent in
  Alcotest.(check bool) "split streams diverge" false (child_out = parent_out)

let test_int_bounds () =
  let g = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int g 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_int_bound_one () =
  let g = Rng.create 5 in
  for _ = 1 to 10 do
    Alcotest.(check int) "bound 1 gives 0" 0 (Rng.int g 1)
  done

let test_int_rejects_nonpositive () =
  let g = Rng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Splitmix64.int: bound must be positive")
    (fun () -> ignore (Rng.int g 0))

let test_float_bounds () =
  let g = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float g 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let test_int_covers_range () =
  let g = Rng.create 13 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Rng.int g 8) <- true
  done;
  Array.iteri (fun i s -> Alcotest.(check bool) (Printf.sprintf "value %d seen" i) true s) seen

let test_bool_mixes () =
  let g = Rng.create 17 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool g then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 400 && !trues < 600)

let suite =
  [
    ( "rng.splitmix64",
      [
        Alcotest.test_case "deterministic stream" `Quick test_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "known reference vector" `Quick test_known_vector;
        Alcotest.test_case "copy is independent" `Quick test_copy_independent;
        Alcotest.test_case "split is independent" `Quick test_split_independent;
        Alcotest.test_case "int stays in bounds" `Quick test_int_bounds;
        Alcotest.test_case "int bound=1" `Quick test_int_bound_one;
        Alcotest.test_case "int rejects bound<=0" `Quick test_int_rejects_nonpositive;
        Alcotest.test_case "float stays in bounds" `Quick test_float_bounds;
        Alcotest.test_case "int covers the range" `Quick test_int_covers_range;
        Alcotest.test_case "bool is balanced" `Quick test_bool_mixes;
      ] );
  ]

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Net_state = Drtp.Net_state
module Recovery = Drtp.Recovery
module Routing = Drtp.Routing
module Faults = Dr_faults.Faults
module Rng = Dr_rng.Splitmix64

let mesh_state ?(capacity = 10) () =
  let graph = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  (graph, Net_state.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed)

let path g nodes = Path.of_nodes g nodes
let edge g a b = Graph.edge_of_link (Option.get (Graph.find_link g ~src:a ~dst:b))

let first_backup (conn : Net_state.conn) = List.hd conn.Net_state.backups

let test_drtp_switchover () =
  let g, st = mesh_state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  let report = Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~edge:(edge g 0 1) () in
  (match report.Recovery.outcomes with
  | [ (1, Recovery.Switched { latency; reprotected }) ] ->
      Alcotest.(check bool) "positive latency" true (latency > 0.0);
      Alcotest.(check bool) "reprotected" true reprotected
  | _ -> Alcotest.fail "expected one switched outcome");
  Alcotest.(check (float 1e-9)) "all recovered" 1.0 (Recovery.recovered_fraction report);
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check (list int)) "runs on the old backup" [ 0; 3; 4; 5; 2 ]
    (Path.nodes g conn.Net_state.primary);
  Alcotest.(check bool) "has a fresh backup" true (conn.Net_state.backups <> []);
  Alcotest.(check bool) "fresh backup avoids failed edge" true
    (not (Path.crosses_edge (first_backup conn) (edge g 0 1)));
  Alcotest.(check bool) "invariants hold" true (Net_state.check_invariants st = Ok ())

let test_drtp_unprotected_lost () =
  let g, st = mesh_state () in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ]) ~backups:[]);
  let report = Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~edge:(edge g 0 1) () in
  (match report.Recovery.outcomes with
  | [ (1, Recovery.Lost _) ] -> ()
  | _ -> Alcotest.fail "expected a loss");
  Alcotest.(check int) "dropped from the network" 0 (Net_state.active_count st)

let test_drtp_latency_model () =
  let g, st = mesh_state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  let timing =
    { Recovery.default_timing with Recovery.detection_delay = 0.1; link_delay = 0.01 }
  in
  (* Failure on the second primary hop: report travels 1 hop, activation 4
     hops -> 0.1 + 0.01 + 0.04. *)
  let report =
    Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~timing ~edge:(edge g 1 2) ()
  in
  match report.Recovery.outcomes with
  | [ (_, Recovery.Switched { latency; _ }) ] ->
      Alcotest.(check (float 1e-9)) "latency decomposition" 0.15 latency
  | _ -> Alcotest.fail "expected switch"

let test_drtp_broken_backup_rerouted () =
  let g, st = mesh_state () in
  (* Connection whose backup (not primary) crosses the failing edge. *)
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 6; 7; 8 ])
       ~backups:[ path g [ 6; 3; 4; 5; 8 ] ]);
  let report = Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~edge:(edge g 3 4) () in
  Alcotest.(check int) "no primaries affected" 0 (List.length report.Recovery.outcomes);
  Alcotest.(check int) "backup re-routed (step 4)" 1 report.Recovery.backups_rerouted;
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check bool) "new backup avoids failed edge" true
    (not (Path.crosses_edge (first_backup conn) (edge g 3 4)));
  Alcotest.(check bool) "invariants hold" true (Net_state.check_invariants st = Ok ())

let test_drtp_contention_loss () =
  let g, st = mesh_state ~capacity:2 () in
  (* One spare unit on 0->3 shared by two conflicting backups: a failure of
     edge (0,1) can only switch one of them. *)
  ignore (Net_state.admit st ~id:10 ~bw:1 ~primary:(path g [ 0; 3 ]) ~backups:[]);
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 0; 1; 4 ])
       ~backups:[ path g [ 0; 3; 4 ] ]);
  let report =
    Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~reconfigure:false
      ~edge:(edge g 0 1) ()
  in
  let switched, lost =
    List.partition (fun (_, o) -> Recovery.outcome_is_recovered o) report.Recovery.outcomes
  in
  Alcotest.(check int) "one switched" 1 (List.length switched);
  Alcotest.(check int) "one lost" 1 (List.length lost);
  Alcotest.(check bool) "invariants hold" true (Net_state.check_invariants st = Ok ())

let test_reactive_reroute () =
  let g, st = mesh_state () in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ]) ~backups:[]);
  let report = Recovery.fail_edge_reactive st ~edge:(edge g 0 1) () in
  (match report.Recovery.outcomes with
  | [ (1, Recovery.Rerouted { latency; retries }) ] ->
      Alcotest.(check int) "first try" 0 retries;
      Alcotest.(check bool) "positive latency" true (latency > 0.0)
  | _ -> Alcotest.fail "expected a reroute");
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check bool) "new primary avoids failed edge" true
    (not (Path.crosses_edge conn.Net_state.primary (edge g 0 1)))

let test_reactive_loss_on_shortage () =
  (* A two-path topology where the alternative is saturated: reactive
     recovery must fail after retries. *)
  let graph = Dr_topo.Gen.ring 4 in
  let st = Net_state.create ~graph ~capacity:1 ~spare_policy:Net_state.Multiplexed in
  let p_main = Path.of_nodes graph [ 0; 1 ] in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:p_main ~backups:[]);
  (* Saturate the detour 0-3. *)
  ignore (Net_state.admit st ~id:2 ~bw:1 ~primary:(Path.of_nodes graph [ 0; 3 ]) ~backups:[]);
  let e01 = Graph.edge_of_link (Option.get (Graph.find_link graph ~src:0 ~dst:1)) in
  let report = Recovery.fail_edge_reactive st ~edge:e01 () in
  (match report.Recovery.outcomes with
  | [ (1, Recovery.Lost { latency }) ] ->
      (* Retried max_retries times with exponential backoff. *)
      Alcotest.(check bool) "backoff accumulated" true
        (latency > Recovery.default_timing.Recovery.retry_backoff *. 6.9)
  | _ -> Alcotest.fail "expected a loss");
  Alcotest.(check (float 1e-9)) "recovered fraction 0" 0.0
    (Recovery.recovered_fraction report)

let test_reactive_faster_than_nothing_but_slower_than_drtp () =
  let g, st = mesh_state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  let drtp_report = Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~edge:(edge g 0 1) () in
  Net_state.restore_edge st ~edge:(edge g 0 1);
  let g2, st2 = mesh_state () in
  ignore (Net_state.admit st2 ~id:1 ~bw:1 ~primary:(path g2 [ 0; 1; 2 ]) ~backups:[]);
  let reactive_report = Recovery.fail_edge_reactive st2 ~edge:(edge g2 0 1) () in
  let latency_of r =
    match r.Recovery.outcomes with
    | [ (_, Recovery.Switched { latency; _ }) ] | [ (_, Recovery.Rerouted { latency; _ }) ] ->
        latency
    | _ -> Alcotest.fail "expected recovery"
  in
  Alcotest.(check bool) "DRTP switch beats reactive reroute" true
    (latency_of drtp_report < latency_of reactive_report)

let test_local_detour_splices () =
  let g, st = mesh_state () in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ]) ~backups:[]);
  let report = Recovery.fail_edge_local_detour st ~edge:(edge g 0 1) () in
  (match report.Recovery.outcomes with
  | [ (1, Recovery.Rerouted { latency; retries = 0 }) ] ->
      Alcotest.(check bool) "fast local repair" true (latency < 0.05)
  | _ -> Alcotest.fail "expected a local reroute");
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check bool) "new primary avoids the failed edge" true
    (not (Path.crosses_edge conn.Net_state.primary (edge g 0 1)));
  Alcotest.(check int) "endpoints preserved" 0 (Path.src conn.Net_state.primary);
  Alcotest.(check int) "endpoints preserved" 2 (Path.dst conn.Net_state.primary);
  Alcotest.(check bool) "no loops" true (Path.is_simple g conn.Net_state.primary);
  Alcotest.(check bool) "invariants hold" true (Net_state.check_invariants st = Ok ())

let test_local_detour_mid_path () =
  let g, st = mesh_state () in
  (* Fail the middle hop of 0-1-2-5-8: prefix and suffix are kept. *)
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2; 5; 8 ]) ~backups:[]);
  let report = Recovery.fail_edge_local_detour st ~edge:(edge g 1 2) () in
  (match report.Recovery.outcomes with
  | [ (1, Recovery.Rerouted _) ] -> ()
  | _ -> Alcotest.fail "reroute expected");
  let conn = Option.get (Net_state.find st 1) in
  let nodes = Path.nodes g conn.Net_state.primary in
  Alcotest.(check bool) "still starts 0,1" true
    (match nodes with 0 :: 1 :: _ -> true | _ -> false);
  Alcotest.(check bool) "avoids failed edge" true
    (not (Path.crosses_edge conn.Net_state.primary (edge g 1 2)));
  Alcotest.(check bool) "simple after splice" true
    (Path.is_simple g conn.Net_state.primary);
  Alcotest.(check bool) "invariants hold" true (Net_state.check_invariants st = Ok ())

let test_local_detour_needs_free_bw () =
  (* Ring of 4, capacity 1: the only detour is saturated -> loss. *)
  let graph = Dr_topo.Gen.ring 4 in
  let st = Net_state.create ~graph ~capacity:1 ~spare_policy:Net_state.Multiplexed in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(Path.of_nodes graph [ 0; 1 ]) ~backups:[]);
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(Path.of_nodes graph [ 3; 2 ]) ~backups:[]);
  let e01 = Graph.edge_of_link (Option.get (Graph.find_link graph ~src:0 ~dst:1)) in
  let report = Recovery.fail_edge_local_detour st ~edge:e01 () in
  (match report.Recovery.outcomes with
  | [ (1, Recovery.Lost _) ] -> ()
  | _ -> Alcotest.fail "expected loss (detour saturated)");
  Alcotest.(check int) "victim dropped" 1 (Net_state.active_count st)

let test_reroute_primary_moves_backups () =
  let g, st = mesh_state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  (* Move the primary to the top-right corner route; the backup must be
     re-registered against the new LSET. *)
  Net_state.reroute_primary st ~id:1 ~primary:(path g [ 0; 1; 4; 5; 2 ]);
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check (list int)) "new primary" [ 0; 1; 4; 5; 2 ]
    (Path.nodes g conn.Net_state.primary);
  Alcotest.(check bool) "invariants hold" true (Net_state.check_invariants st = Ok ());
  (* The backup shares links 4->5 with the new primary? 0-3-4-5-2 uses
     4->5; the new primary also uses 4->5: the backup survives only if the
     link can host both.  At capacity 10 it can. *)
  Alcotest.(check int) "backup kept" 1 (List.length conn.Net_state.backups)

let test_reroute_primary_rolls_back () =
  let g, st = mesh_state ~capacity:1 () in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1 ]) ~backups:[]);
  ignore (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 0; 3 ]) ~backups:[]);
  (* Rerouting conn 1 over the saturated 0-3 corridor must fail and leave
     everything as it was. *)
  Alcotest.(check bool) "raises" true
    (try
       Net_state.reroute_primary st ~id:1 ~primary:(path g [ 0; 3; 4; 1 ]);
       false
     with Invalid_argument _ -> true);
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check (list int)) "old primary intact" [ 0; 1 ]
    (Path.nodes g conn.Net_state.primary);
  Alcotest.(check bool) "invariants hold" true (Net_state.check_invariants st = Ok ())

let test_recovered_fraction_empty () =
  let g, st = mesh_state () in
  let report = Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~edge:(edge g 0 1) () in
  Alcotest.(check (float 1e-9)) "vacuous 1.0" 1.0 (Recovery.recovered_fraction report)

(* ---- step-4 bookkeeping pinned on hand-built topologies ----------------- *)

let test_step4_counters_reroute_success () =
  (* Mesh: conn 1's backup dies but a replacement exists.  Pins the exact
     counter split: one backup rerouted, none unprotected, nobody joins the
     reprotection candidates. *)
  let g, st = mesh_state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 6; 7; 8 ])
       ~backups:[ path g [ 6; 3; 4; 5; 8 ] ]);
  let report = Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~edge:(edge g 3 4) () in
  Alcotest.(check int) "backups_rerouted" 1 report.Recovery.backups_rerouted;
  Alcotest.(check int) "backups_unprotected" 0 report.Recovery.backups_unprotected;
  Alcotest.(check (list int)) "nothing left unprotected" []
    report.Recovery.unprotected_ids

let test_step4_counters_no_spare_route () =
  (* Ring of 4: conn 1's backup 0-3-2-1 crosses the failing edge (3,2) and
     the only replacement route IS that broken detour — step 4 must record
     it unprotected and hand it to the reprotection queue. *)
  let graph = Dr_topo.Gen.ring 4 in
  let st = Net_state.create ~graph ~capacity:10 ~spare_policy:Net_state.Multiplexed in
  ignore
    (Net_state.admit st ~id:1 ~bw:1
       ~primary:(Path.of_nodes graph [ 0; 1 ])
       ~backups:[ Path.of_nodes graph [ 0; 3; 2; 1 ] ]);
  let e32 = Graph.edge_of_link (Option.get (Graph.find_link graph ~src:3 ~dst:2)) in
  let report = Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~edge:e32 () in
  Alcotest.(check int) "no primary affected" 0 (List.length report.Recovery.outcomes);
  Alcotest.(check int) "backups_rerouted" 0 report.Recovery.backups_rerouted;
  Alcotest.(check int) "backups_unprotected" 1 report.Recovery.backups_unprotected;
  Alcotest.(check (list int)) "queued for reprotection" [ 1 ]
    report.Recovery.unprotected_ids;
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check int) "backup really gone" 0 (List.length conn.Net_state.backups)

let test_step4_promoted_without_fresh_backup () =
  (* Ring of 4: the primary 0-1 fails, the connection switches to 0-3-2-1,
     and no fresh backup exists for the promoted route.  The promoted side
     joins [unprotected_ids] but deliberately does NOT bump
     [backups_unprotected] (that counter tracks broken-backup survivors
     only, as before the fault-injection change). *)
  let graph = Dr_topo.Gen.ring 4 in
  let st = Net_state.create ~graph ~capacity:10 ~spare_policy:Net_state.Multiplexed in
  ignore
    (Net_state.admit st ~id:1 ~bw:1
       ~primary:(Path.of_nodes graph [ 0; 1 ])
       ~backups:[ Path.of_nodes graph [ 0; 3; 2; 1 ] ]);
  let e01 = Graph.edge_of_link (Option.get (Graph.find_link graph ~src:0 ~dst:1)) in
  let report = Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~edge:e01 () in
  (match report.Recovery.outcomes with
  | [ (1, Recovery.Switched { reprotected; _ }) ] ->
      Alcotest.(check bool) "no fresh backup available" false reprotected
  | _ -> Alcotest.fail "expected a switch");
  Alcotest.(check int) "counter untouched for promoted conns" 0
    report.Recovery.backups_unprotected;
  Alcotest.(check (list int)) "promoted conn still queued" [ 1 ]
    report.Recovery.unprotected_ids

(* ---- recovered_fraction property ---------------------------------------- *)

let property ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let prop_recovered_fraction_bounded =
  property ~count:60 "recovered_fraction in [0,1]; 1.0 when unaffected"
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let graph =
        Dr_topo.Gen.erdos_renyi ~rng ~n:(6 + Rng.int rng 10)
          ~avg_degree:(2.5 +. Rng.float rng 1.0)
      in
      let st =
        Net_state.create ~graph ~capacity:(2 + Rng.int rng 4)
          ~spare_policy:Net_state.Multiplexed
      in
      let n = Graph.node_count graph in
      let route = Routing.link_state_route_fn Routing.Dlsr ~with_backup:true in
      for id = 1 to 8 do
        let src = Rng.int rng n in
        let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
        match route st ~src ~dst ~bw:1 with
        | Ok { Routing.primary; backups } ->
            ignore (Net_state.admit st ~id ~bw:1 ~primary ~backups)
        | Error _ -> ()
      done;
      let edge = Rng.int rng (Graph.edge_count graph) in
      let faults =
        if Rng.int rng 2 = 0 then None
        else Some (Faults.create ~seed (Faults.uniform_spec (Rng.float rng 0.5)))
      in
      let report = Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ?faults ~edge () in
      let f = Recovery.recovered_fraction report in
      (f >= 0.0 && f <= 1.0)
      && (report.Recovery.outcomes <> [] || f = 1.0)
      && Net_state.check_invariants st = Ok ())

let suite =
  [
    ( "drtp.recovery",
      [
        Alcotest.test_case "DRTP switchover" `Quick test_drtp_switchover;
        Alcotest.test_case "unprotected connection lost" `Quick test_drtp_unprotected_lost;
        Alcotest.test_case "latency decomposition" `Quick test_drtp_latency_model;
        Alcotest.test_case "broken backup re-routed" `Quick test_drtp_broken_backup_rerouted;
        Alcotest.test_case "spare contention loses one" `Quick test_drtp_contention_loss;
        Alcotest.test_case "reactive reroute" `Quick test_reactive_reroute;
        Alcotest.test_case "reactive loss on shortage" `Quick test_reactive_loss_on_shortage;
        Alcotest.test_case "DRTP faster than reactive" `Quick test_reactive_faster_than_nothing_but_slower_than_drtp;
        Alcotest.test_case "local detour splices" `Quick test_local_detour_splices;
        Alcotest.test_case "local detour mid-path" `Quick test_local_detour_mid_path;
        Alcotest.test_case "local detour needs free bw" `Quick test_local_detour_needs_free_bw;
        Alcotest.test_case "reroute_primary moves backups" `Quick test_reroute_primary_moves_backups;
        Alcotest.test_case "reroute_primary rolls back" `Quick test_reroute_primary_rolls_back;
        Alcotest.test_case "recovered fraction, no victims" `Quick test_recovered_fraction_empty;
        Alcotest.test_case "step 4: reroute success pinned" `Quick test_step4_counters_reroute_success;
        Alcotest.test_case "step 4: no spare route pinned" `Quick test_step4_counters_no_spare_route;
        Alcotest.test_case "step 4: promoted without fresh backup" `Quick test_step4_promoted_without_fresh_backup;
        prop_recovered_fraction_bounded;
      ] );
  ]

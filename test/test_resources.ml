module R = Drtp.Resources

let make () = R.create ~link_count:4 ~capacity:10

let test_initial () =
  let r = make () in
  Alcotest.(check int) "capacity" 10 (R.capacity r 0);
  Alcotest.(check int) "no prime" 0 (R.prime_bw r 0);
  Alcotest.(check int) "no spare" 0 (R.spare_bw r 0);
  Alcotest.(check int) "all free" 10 (R.free r 0);
  Alcotest.(check int) "all available for backup" 10 (R.available_for_backup r 0);
  Alcotest.(check int) "total capacity" 40 (R.total_capacity r)

let test_primary_lifecycle () =
  let r = make () in
  R.reserve_primary r ~link:1 ~bw:4;
  Alcotest.(check int) "prime" 4 (R.prime_bw r 1);
  Alcotest.(check int) "free" 6 (R.free r 1);
  R.release_primary r ~link:1 ~bw:4;
  Alcotest.(check int) "back to zero" 0 (R.prime_bw r 1)

let test_primary_overflow () =
  let r = make () in
  R.reserve_primary r ~link:0 ~bw:10;
  Alcotest.(check bool) "over-reserve raises" true
    (try R.reserve_primary r ~link:0 ~bw:1; false with Invalid_argument _ -> true)

let test_release_underflow () =
  let r = make () in
  Alcotest.(check bool) "release without reserve raises" true
    (try R.release_primary r ~link:0 ~bw:1; false with Invalid_argument _ -> true)

let test_spare_grow_shrink () =
  let r = make () in
  Alcotest.(check int) "grow grants all" 3 (R.grow_spare r ~link:2 ~want:3);
  Alcotest.(check int) "spare" 3 (R.spare_bw r 2);
  Alcotest.(check int) "free reduced" 7 (R.free r 2);
  R.shrink_spare r ~link:2 ~amount:2;
  Alcotest.(check int) "spare after shrink" 1 (R.spare_bw r 2);
  Alcotest.(check bool) "over-shrink raises" true
    (try R.shrink_spare r ~link:2 ~amount:5; false with Invalid_argument _ -> true)

let test_spare_grow_partial () =
  let r = make () in
  R.reserve_primary r ~link:3 ~bw:8;
  Alcotest.(check int) "only free granted" 2 (R.grow_spare r ~link:3 ~want:5);
  Alcotest.(check int) "spare capped by free" 2 (R.spare_bw r 3);
  Alcotest.(check int) "no free left" 0 (R.free r 3)

let test_feasibility_semantics () =
  let r = make () in
  R.reserve_primary r ~link:0 ~bw:6;
  ignore (R.grow_spare r ~link:0 ~want:3);
  (* free = 1, available_for_backup = 4 *)
  Alcotest.(check bool) "primary needs free" false (R.primary_feasible r ~link:0 ~bw:2);
  Alcotest.(check bool) "primary fits in free" true (R.primary_feasible r ~link:0 ~bw:1);
  Alcotest.(check bool) "backup can share spare" true (R.backup_feasible r ~link:0 ~bw:4);
  Alcotest.(check bool) "backup limited by capacity - prime" false
    (R.backup_feasible r ~link:0 ~bw:5)

let test_spare_to_prime () =
  let r = make () in
  ignore (R.grow_spare r ~link:1 ~want:4);
  R.spare_to_prime r ~link:1 ~bw:3;
  Alcotest.(check int) "spare down" 1 (R.spare_bw r 1);
  Alcotest.(check int) "prime up" 3 (R.prime_bw r 1);
  Alcotest.(check int) "free unchanged" 6 (R.free r 1);
  Alcotest.(check bool) "needs spare" true
    (try R.spare_to_prime r ~link:1 ~bw:2; false with Invalid_argument _ -> true)

let test_heterogeneous () =
  let r = R.create_heterogeneous [| 5; 20 |] in
  Alcotest.(check int) "link 0" 5 (R.capacity r 0);
  Alcotest.(check int) "link 1" 20 (R.capacity r 1);
  Alcotest.(check int) "total" 25 (R.total_capacity r)

let test_invariants () =
  let r = make () in
  R.reserve_primary r ~link:0 ~bw:5;
  ignore (R.grow_spare r ~link:0 ~want:5);
  Alcotest.(check bool) "invariants hold" true (R.check_invariants r = Ok ())

let test_totals () =
  let r = make () in
  R.reserve_primary r ~link:0 ~bw:2;
  R.reserve_primary r ~link:1 ~bw:3;
  ignore (R.grow_spare r ~link:2 ~want:4);
  Alcotest.(check int) "total prime" 5 (R.total_prime r);
  Alcotest.(check int) "total spare" 4 (R.total_spare r)

let suite =
  [
    ( "drtp.resources",
      [
        Alcotest.test_case "initial state" `Quick test_initial;
        Alcotest.test_case "primary lifecycle" `Quick test_primary_lifecycle;
        Alcotest.test_case "primary overflow" `Quick test_primary_overflow;
        Alcotest.test_case "release underflow" `Quick test_release_underflow;
        Alcotest.test_case "spare grow/shrink" `Quick test_spare_grow_shrink;
        Alcotest.test_case "spare grows only from free" `Quick test_spare_grow_partial;
        Alcotest.test_case "feasibility semantics" `Quick test_feasibility_semantics;
        Alcotest.test_case "spare to prime (activation)" `Quick test_spare_to_prime;
        Alcotest.test_case "heterogeneous capacities" `Quick test_heterogeneous;
        Alcotest.test_case "invariants" `Quick test_invariants;
        Alcotest.test_case "totals" `Quick test_totals;
      ] );
  ]

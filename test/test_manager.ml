module Graph = Dr_topo.Graph
module Scenario = Dr_sim.Scenario
module Manager = Drtp.Manager
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing

let mesh_manager ?(capacity = 10) ?(with_backup = true) () =
  Manager.create
    ~graph:(Dr_topo.Gen.mesh ~rows:3 ~cols:3)
    ~capacity ~spare_policy:Net_state.Multiplexed
    ~route:(Routing.link_state_route_fn Routing.Dlsr ~with_backup)

let request ~time ~conn ~src ~dst =
  { Scenario.time; event = Scenario.Request { conn; src; dst; bw = 1; duration = 100.0 } }

let release ~time ~conn = { Scenario.time; event = Scenario.Release { conn } }

let test_accept () =
  let m = mesh_manager () in
  Manager.apply m (request ~time:0.0 ~conn:0 ~src:0 ~dst:8);
  let s = Manager.stats m in
  Alcotest.(check int) "requests" 1 s.Manager.requests;
  Alcotest.(check int) "accepted" 1 s.Manager.accepted;
  Alcotest.(check int) "active" 1 (Net_state.active_count (Manager.state m));
  let conn = Option.get (Net_state.find (Manager.state m) 0) in
  Alcotest.(check bool) "has backup" true (conn.Net_state.backups <> [])

let test_release () =
  let m = mesh_manager () in
  Manager.apply m (request ~time:0.0 ~conn:0 ~src:0 ~dst:8);
  Manager.apply m (release ~time:50.0 ~conn:0);
  let s = Manager.stats m in
  Alcotest.(check int) "released" 1 s.Manager.released;
  Alcotest.(check int) "inactive" 0 (Net_state.active_count (Manager.state m))

let test_release_of_rejected_ignored () =
  let m = mesh_manager ~capacity:1 () in
  (* Saturate node 0. *)
  Manager.apply m (request ~time:0.0 ~conn:0 ~src:0 ~dst:1);
  Manager.apply m (request ~time:0.1 ~conn:1 ~src:0 ~dst:3);
  Manager.apply m (request ~time:0.2 ~conn:2 ~src:0 ~dst:8);
  let s = Manager.stats m in
  Alcotest.(check bool) "conn 2 rejected" true (s.Manager.accepted < 3);
  (* Its release must be a no-op, not an exception. *)
  Manager.apply m (release ~time:1.0 ~conn:2);
  Alcotest.(check int) "release count unchanged for rejected" 0 s.Manager.released

let test_rejection_reasons () =
  let m = mesh_manager ~capacity:1 () in
  (* conn 0 takes 0-1, conn 1 takes 0-3: node 0 fully saturated. *)
  Manager.apply m (request ~time:0.0 ~conn:0 ~src:0 ~dst:1);
  Manager.apply m (request ~time:0.1 ~conn:1 ~src:0 ~dst:3);
  Manager.apply m (request ~time:0.2 ~conn:2 ~src:0 ~dst:8);
  let s = Manager.stats m in
  Alcotest.(check bool) "no-primary rejections happened" true
    (s.Manager.rejected_no_primary >= 1);
  (* conn 0 and conn 1: 0-1 and 0-3 are 1-hop primaries; their backups exist
     while capacity lasts.  At capacity 1 the backup of conn 0 consumes the
     0-3 corridor's spare... conn 1's acceptance depends on sharing; just
     check the arithmetic is consistent. *)
  Alcotest.(check int) "bookkeeping consistent" s.Manager.requests
    (s.Manager.accepted + s.Manager.rejected_no_primary + s.Manager.rejected_no_backup)

let test_no_backup_mode_never_rejects_backup () =
  let m = mesh_manager ~with_backup:false () in
  for i = 0 to 9 do
    Manager.apply m (request ~time:(float_of_int i) ~conn:i ~src:(i mod 3) ~dst:8)
  done;
  let s = Manager.stats m in
  Alcotest.(check int) "no backup rejections" 0 s.Manager.rejected_no_backup;
  Net_state.iter_conns (Manager.state m) (fun c ->
      Alcotest.(check bool) "no backups exist" true (c.Net_state.backups = []))

let test_run_scenario () =
  let m = mesh_manager () in
  let scenario =
    Scenario.of_items
      [
        request ~time:1.0 ~conn:0 ~src:0 ~dst:8;
        request ~time:2.0 ~conn:1 ~src:2 ~dst:6;
        release ~time:50.0 ~conn:0;
        release ~time:60.0 ~conn:1;
      ]
  in
  Manager.run m scenario;
  let s = Manager.stats m in
  Alcotest.(check int) "both accepted" 2 s.Manager.accepted;
  Alcotest.(check int) "both released" 2 s.Manager.released;
  Alcotest.(check int) "network empty" 0 (Net_state.active_count (Manager.state m));
  Alcotest.(check bool) "invariants hold" true
    (Net_state.check_invariants (Manager.state m) = Ok ());
  Alcotest.(check (float 1e-9)) "acceptance ratio" 1.0 (Manager.acceptance_ratio m)

let test_acceptance_ratio_empty () =
  let m = mesh_manager () in
  Alcotest.(check (float 1e-9)) "1.0 before requests" 1.0 (Manager.acceptance_ratio m)

let test_degraded_counted () =
  let m = mesh_manager ~capacity:1 () in
  (* At capacity 1, conn 10's primary and backup exhaust node 0's edges, so
     later requests from node 0 cannot all be served untouched. *)
  Manager.apply m (request ~time:0.0 ~conn:10 ~src:0 ~dst:3);
  Manager.apply m (request ~time:0.1 ~conn:0 ~src:0 ~dst:2);
  Manager.apply m (request ~time:0.2 ~conn:1 ~src:0 ~dst:4);
  let s = Manager.stats m in
  Alcotest.(check bool) "something rejected or degraded" true
    (s.Manager.degraded > 0 || s.Manager.accepted < s.Manager.requests);
  Alcotest.(check bool) "invariants hold" true
    (Net_state.check_invariants (Manager.state m) = Ok ())

let suite =
  [
    ( "drtp.manager",
      [
        Alcotest.test_case "accept" `Quick test_accept;
        Alcotest.test_case "release" `Quick test_release;
        Alcotest.test_case "release of rejected ignored" `Quick test_release_of_rejected_ignored;
        Alcotest.test_case "rejection reasons" `Quick test_rejection_reasons;
        Alcotest.test_case "no-backup mode" `Quick test_no_backup_mode_never_rejects_backup;
        Alcotest.test_case "scenario replay" `Quick test_run_scenario;
        Alcotest.test_case "acceptance ratio empty" `Quick test_acceptance_ratio_empty;
        Alcotest.test_case "degraded admissions counted" `Quick test_degraded_counted;
      ] );
  ]

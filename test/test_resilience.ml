(* Tests for the dr_resilience subsystem: the SRLG model and its
   generators, correlated-failure schedules, the generalised spare rule,
   k-resilient backup chains and the group-failure recovery path.

   The load-bearing properties are the identity gates: under the
   singleton model every SRLG-generalised computation must equal the
   paper's per-edge behaviour exactly (spare sizing, chain routing,
   fault-tolerance evaluation), and spare requirements must be monotone
   under SRLG coarsening — the generalised §5 multiplexing rule. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Srlg = Dr_resilience.Srlg
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing
module Recovery = Drtp.Recovery
module Failure_eval = Drtp.Failure_eval
module Rng = Dr_rng.Splitmix64

let property ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let seed_gen = QCheck.int_range 0 1_000_000

let random_graph seed =
  let rng = Rng.create seed in
  let n = 6 + Rng.int rng 15 in
  let avg_degree = 2.2 +. Rng.float rng 1.5 in
  Dr_topo.Gen.erdos_renyi ~rng ~n ~avg_degree

let random_pair rng n =
  let a = Rng.int rng n in
  let b = Rng.int rng (n - 1) in
  (a, if b >= a then b + 1 else b)

(* Admit a batch of randomly routed DR connections (bw 1, two backups)
   into [state]; returns the admissions so they can be replayed into a
   second state for comparison tests. *)
let warm ?(m = 25) ~seed state =
  let g = Net_state.graph state in
  let n = Graph.node_count g in
  let rng = Rng.create seed in
  let route = Routing.link_state_route_fn ~backup_count:2 Routing.Plsr ~with_backup:true in
  let admitted = ref [] in
  for id = 0 to m - 1 do
    let src, dst = random_pair rng n in
    match route state ~src ~dst ~bw:1 with
    | Error _ -> ()
    | Ok { Routing.primary; backups } ->
        ignore (Net_state.admit state ~id ~bw:1 ~primary ~backups);
        admitted := (id, primary, backups) :: !admitted
  done;
  List.rev !admitted

(* --- SRLG model construction and accessors ------------------------------ *)

let test_create_dedup_and_singletons () =
  let s = Srlg.create ~edge_count:5 ~groups:[ ("duct", [ 2; 0; 2 ]) ] in
  Alcotest.(check int) "explicit + 3 implicit" 4 (Srlg.group_count s);
  Alcotest.(check (list int)) "deduped, sorted members" [ 0; 2 ] (Srlg.edges_of_group s 0);
  Alcotest.(check string) "explicit name" "duct" (Srlg.group_name s 0);
  Alcotest.(check string) "implicit singleton name" "edge-1" (Srlg.group_name s 1);
  Alcotest.(check (list int)) "edge 2 in the duct only" [ 0 ] (Srlg.groups_of_edge s 2);
  Alcotest.(check (list int)) "edge 3's singleton" [ 2 ] (Srlg.groups_of_edge s 3);
  Alcotest.(check bool) "not singleton" false (Srlg.is_singleton s)

let test_create_validation () =
  (try
     ignore (Srlg.create ~edge_count:3 ~groups:[ ("empty", []) ]);
     Alcotest.fail "empty group accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Srlg.create ~edge_count:3 ~groups:[ ("oob", [ 3 ]) ]);
     Alcotest.fail "out-of-range edge accepted"
   with Invalid_argument _ -> ())

let test_singletons_identity () =
  let s = Srlg.singletons ~edge_count:7 in
  Alcotest.(check bool) "is_singleton" true (Srlg.is_singleton s);
  Alcotest.(check int) "one group per edge" 7 (Srlg.group_count s);
  Alcotest.(check (float 1e-9)) "mean size 1" 1.0 (Srlg.mean_group_size s);
  (* groups_of_edges must return a sorted edge LSET verbatim: the property
     that keeps singleton states bit-identical to per-edge bookkeeping. *)
  Alcotest.(check (list int)) "groups_of_edges = identity" [ 0; 2; 5 ]
    (Srlg.groups_of_edges s [ 0; 2; 5 ])

let test_random_partition () =
  let s1 = Srlg.random_partition ~seed:11 ~edge_count:20 ~mean_size:1 in
  Alcotest.(check bool) "mean_size 1 is the singleton model" true (Srlg.is_singleton s1);
  let s = Srlg.random_partition ~seed:11 ~edge_count:20 ~mean_size:4 in
  Alcotest.(check bool) "mean_size 4 is coarser" true (Srlg.group_count s < 20);
  (* A partition: every edge in exactly one group. *)
  for e = 0 to 19 do
    Alcotest.(check int)
      (Printf.sprintf "edge %d covered once" e)
      1
      (List.length (Srlg.groups_of_edge s e))
  done;
  let s' = Srlg.random_partition ~seed:11 ~edge_count:20 ~mean_size:4 in
  Alcotest.(check int) "deterministic in seed" (Srlg.group_count s) (Srlg.group_count s')

let test_random_overlay () =
  let s = Srlg.random_overlay ~seed:3 ~edge_count:12 ~extra:3 ~size:4 in
  Alcotest.(check int) "singletons plus extras" (12 + 3) (Srlg.group_count s);
  Alcotest.(check bool) "overlapping model" false (Srlg.is_singleton s);
  (* Overlay groups hold [size] distinct edges. *)
  for gid = 12 to 14 do
    let members = Srlg.edges_of_group s gid in
    Alcotest.(check int) "overlay size" 4 (List.length members);
    Alcotest.(check (list int)) "distinct members" members (List.sort_uniq compare members)
  done

let test_regional_grid () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  let coords =
    Array.init 9 (fun v -> (float_of_int (v mod 3) /. 2.0, float_of_int (v / 3) /. 2.0))
  in
  let g = Graph.with_coords g coords in
  let s = Srlg.regional_grid ~graph:g ~cells:2 in
  Alcotest.(check bool) "at most cells^2 groups" true (Srlg.group_count s <= 4);
  for e = 0 to Graph.edge_count g - 1 do
    Alcotest.(check int) "every edge in exactly one tile" 1
      (List.length (Srlg.groups_of_edge s e))
  done;
  let bare = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  (try
     ignore (Srlg.regional_grid ~graph:bare ~cells:2);
     Alcotest.fail "accepted a graph without coordinates"
   with Invalid_argument _ -> ())

let test_merge_groups () =
  let s = Srlg.create ~edge_count:6 ~groups:[ ("a", [ 0; 1 ]); ("b", [ 2; 3 ]) ] in
  let before = Srlg.group_count s in
  let merged = Srlg.merge_groups s 0 1 in
  Alcotest.(check int) "one fewer group" (before - 1) (Srlg.group_count merged);
  Alcotest.(check (list int)) "b's edges joined a" [ 0; 1; 2; 3 ]
    (Srlg.edges_of_group merged 0);
  (try
     ignore (Srlg.merge_groups s 1 1);
     Alcotest.fail "merged a group with itself"
   with Invalid_argument _ -> ());
  (try
     ignore (Srlg.merge_groups s 0 99);
     Alcotest.fail "merged an out-of-range group"
   with Invalid_argument _ -> ())

(* --- correlated-failure schedules --------------------------------------- *)

let mesh_srlg () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  (g, Srlg.random_partition ~seed:5 ~edge_count:(Graph.edge_count g) ~mean_size:3)

let test_group_schedule_deterministic () =
  let _, s = mesh_srlg () in
  let sched seed = Srlg.group_schedule ~seed s ~mtbf:40.0 ~mttr:15.0 ~horizon:2000.0 () in
  Alcotest.(check bool) "non-empty" true (sched 9 <> []);
  Alcotest.(check bool) "same seed, same schedule" true (sched 9 = sched 9);
  Alcotest.(check bool) "different seed, different schedule" true (sched 9 <> sched 10)

let test_group_schedule_well_formed () =
  let _, s = mesh_srlg () in
  let bursts = Srlg.group_schedule ~seed:9 s ~mtbf:40.0 ~mttr:15.0 ~horizon:2000.0 () in
  let last = ref neg_infinity in
  (* An edge is "down" until this time; bursts must never re-fail it. *)
  let down_until = Hashtbl.create 16 in
  List.iter
    (fun (b : Srlg.burst) ->
      Alcotest.(check bool) "sorted by fail_at" true (b.fail_at >= !last);
      last := b.fail_at;
      Alcotest.(check bool) "repairs after failing" true (b.repair_at > b.fail_at);
      (match b.group with
      | None -> Alcotest.fail "group schedule produced a regional burst"
      | Some g ->
          Alcotest.(check (list int)) "burst fails the whole group"
            (Srlg.edges_of_group s g) b.edges);
      List.iter
        (fun e ->
          let d = Option.value ~default:neg_infinity (Hashtbl.find_opt down_until e) in
          Alcotest.(check bool) "no overlap on an edge" true (d <= b.fail_at);
          Hashtbl.replace down_until e b.repair_at)
        b.edges)
    bursts

let test_merge_schedules_drop_rule () =
  let b ~fail_at ~edges ~repair_at =
    { Srlg.fail_at; group = Some 0; edges; repair_at }
  in
  let a = [ b ~fail_at:1.0 ~edges:[ 0; 1 ] ~repair_at:5.0 ] in
  let c =
    [
      b ~fail_at:2.0 ~edges:[ 1 ] ~repair_at:3.0 (* edge 1 still down: dropped *);
      b ~fail_at:6.0 ~edges:[ 1 ] ~repair_at:7.0 (* edge 1 repaired: kept *);
    ]
  in
  let merged = Srlg.merge_schedules ~edge_count:3 a c in
  Alcotest.(check int) "overlapping burst dropped" 2 (List.length merged);
  Alcotest.(check (list (float 1e-9))) "kept bursts in order" [ 1.0; 6.0 ]
    (List.map (fun (x : Srlg.burst) -> x.fail_at) merged)

(* --- generalised spare rule --------------------------------------------- *)

(* Oracle for the singleton model: spare on directed link l is the worst
   single-edge activation burst, max_e Σ bw over (connection, backup)
   pairs whose backup crosses l and whose primary crosses edge e. *)
let singleton_spare_oracle state =
  let g = Net_state.graph state in
  let links = Graph.link_count g and edges = Graph.edge_count g in
  let w = Array.make_matrix links edges 0 in
  Net_state.iter_conns state (fun c ->
      let pedges = Path.Link_set.elements (Path.edge_set c.Net_state.primary) in
      List.iter
        (fun b ->
          List.iter
            (fun l -> List.iter (fun e -> w.(l).(e) <- w.(l).(e) + c.Net_state.bw) pedges)
            (Path.links b))
        c.Net_state.backups);
  Array.init links (fun l -> Array.fold_left max 0 w.(l))

let prop_singleton_spare_equals_worst_edge =
  property ~count:40 "singleton SRLG spare = worst single-edge burst" seed_gen
    (fun seed ->
      let g = random_graph seed in
      let state = Net_state.create ~graph:g ~capacity:6 ~spare_policy:Net_state.Multiplexed in
      ignore (warm ~seed:(seed + 1) state);
      let oracle = singleton_spare_oracle state in
      let ok = ref true in
      for l = 0 to Graph.link_count g - 1 do
        if Net_state.spare_required state ~link:l <> oracle.(l) then ok := false
      done;
      !ok)

let prop_spare_monotone_under_coarsening =
  property ~count:40 "spare_required monotone under merge_groups" seed_gen
    (fun seed ->
      let g = random_graph seed in
      let edge_count = Graph.edge_count g in
      let fine = Srlg.random_partition ~seed:(seed + 7) ~edge_count ~mean_size:3 in
      if Srlg.group_count fine < 2 then true
      else begin
        let coarse = Srlg.merge_groups fine 0 1 in
        (* Generous capacity: coarser models reserve more spare, which eats
           free bandwidth — at tight capacity the replayed admissions could
           legitimately fail in the coarse state. The property under test is
           the spare bookkeeping, not admission pressure. *)
        let mk srlg =
          Net_state.create_srlg ~srlg ~graph:g ~capacity:100
            ~spare_policy:Net_state.Multiplexed
        in
        let st_fine = mk fine and st_coarse = mk coarse in
        (* Identical admissions into both states: hosting feasibility does
           not depend on the SRLG model, only the spare sizing does. *)
        List.iter
          (fun (id, primary, backups) ->
            ignore (Net_state.admit st_coarse ~id ~bw:1 ~primary ~backups))
          (warm ~seed:(seed + 1) st_fine);
        let ok = ref true in
        for l = 0 to Graph.link_count g - 1 do
          if
            Net_state.spare_required st_coarse ~link:l
            < Net_state.spare_required st_fine ~link:l
          then ok := false
        done;
        !ok
      end)

(* --- k-resilient chains -------------------------------------------------- *)

let links_of_pair { Routing.primary; backups } =
  (Path.links primary, List.map Path.links backups)

let prop_chain_equals_link_state_under_singletons =
  property ~count:40 "singleton chain = link-state backups, path for path" seed_gen
    (fun seed ->
      let g = random_graph seed in
      let state = Net_state.create ~graph:g ~capacity:6 ~spare_policy:Net_state.Multiplexed in
      ignore (warm ~seed:(seed + 1) state);
      let rng = Rng.create (seed + 2) in
      let n = Graph.node_count g in
      let ok = ref true in
      List.iter
        (fun scheme ->
          for _ = 1 to 5 do
            let src, dst = random_pair rng n in
            List.iter
              (fun k ->
                let chain = Routing.chain_route_fn ~k scheme state ~src ~dst ~bw:1 in
                let flat =
                  Routing.link_state_route_fn ~backup_count:k scheme ~with_backup:true
                    state ~src ~dst ~bw:1
                in
                let same =
                  match (chain, flat) with
                  | Ok a, Ok b -> links_of_pair a = links_of_pair b
                  | Error a, Error b -> a = b
                  | _ -> false
                in
                if not same then ok := false)
              [ 1; 2 ]
          done)
        [ Routing.Plsr; Routing.Dlsr; Routing.Spf ];
      !ok)

let test_chain_ranks_and_disjointness () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  let state = Net_state.create ~graph:g ~capacity:20 ~spare_policy:Net_state.Multiplexed in
  match Routing.find_primary state ~src:0 ~dst:8 ~bw:1 with
  | None -> Alcotest.fail "no primary in a 3x3 mesh"
  | Some primary ->
      let chain = Routing.find_backup_chain Routing.Plsr state ~primary ~bw:1 ~k:3 in
      Alcotest.(check bool) "found members" true (chain <> []);
      List.iteri
        (fun i m ->
          Alcotest.(check int) "ranks are the failover order" i m.Routing.cm_rank)
        chain;
      let seen = List.map (fun m -> Path.links m.Routing.cm_path) chain in
      Alcotest.(check int) "members distinct" (List.length seen)
        (List.length (List.sort_uniq compare seen))

let test_chain_soft_fallback_shares_risk () =
  (* Ring of 6: the only backup for a 0->3 primary is the other arc.  A
     group tying one edge of each arc together makes SRLG-disjointness
     impossible; the chain must still return the member, flagged as
     sharing risk, rather than coming back empty. *)
  let g = Dr_topo.Gen.ring 6 in
  let srlg = Srlg.create ~edge_count:6 ~groups:[ ("duct", [ 0; 5 ]) ] in
  let state =
    Net_state.create_srlg ~srlg ~graph:g ~capacity:10 ~spare_policy:Net_state.Multiplexed
  in
  match Routing.find_primary state ~src:0 ~dst:3 ~bw:1 with
  | None -> Alcotest.fail "no primary in a ring"
  | Some primary -> (
      match Routing.find_backup_chain Routing.Plsr state ~primary ~bw:1 ~k:1 with
      | [ m ] ->
          Alcotest.(check bool) "soft fallback member shares risk" false
            m.Routing.cm_disjoint
      | other -> Alcotest.failf "expected one member, got %d" (List.length other))

(* --- group failures: recovery and evaluation ----------------------------- *)

let test_group_failover_recovers () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  let srlg = Srlg.random_partition ~seed:5 ~edge_count:(Graph.edge_count g) ~mean_size:3 in
  let state =
    Net_state.create_srlg ~srlg ~graph:g ~capacity:20 ~spare_policy:Net_state.Multiplexed
  in
  let route = Routing.chain_route_fn ~k:2 Routing.Plsr in
  (match route state ~src:0 ~dst:8 ~bw:1 with
  | Error _ -> Alcotest.fail "chain routing failed on an idle mesh"
  | Ok { Routing.primary; backups } ->
      ignore (Net_state.admit state ~id:0 ~bw:1 ~primary ~backups));
  let victim_group =
    match Net_state.find state 0 with
    | None -> Alcotest.fail "connection vanished"
    | Some c ->
        List.hd
          (Srlg.groups_of_edges srlg (Path.Link_set.elements (Path.edge_set c.primary)))
  in
  let report =
    Recovery.fail_group_drtp state ~scheme:Routing.Plsr ~backup_count:2
      ~group:victim_group ()
  in
  Alcotest.(check (list int)) "the whole group failed"
    (Srlg.edges_of_group srlg victim_group) report.Recovery.failed_edges;
  Alcotest.(check (float 1e-9)) "victim switched to a surviving member" 1.0
    (Recovery.recovered_fraction report)

let test_partitioning_group_is_lost_not_raise () =
  (* Two triangles joined by bridge edge 3 = (2,3): failing the group that
     owns the bridge partitions the topology, so the 0->4 victim's whole
     chain dies with its primary.  That must surface as a Lost outcome,
     never an exception. *)
  let g =
    Graph.create ~node_count:6
      ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 5); (5, 3) ]
  in
  let srlg = Srlg.create ~edge_count:7 ~groups:[ ("bridge", [ 3 ]) ] in
  let state =
    Net_state.create_srlg ~srlg ~graph:g ~capacity:10 ~spare_policy:Net_state.Multiplexed
  in
  (match Routing.chain_route_fn ~k:2 Routing.Plsr state ~src:0 ~dst:4 ~bw:1 with
  | Error _ -> Alcotest.fail "no route across the barbell"
  | Ok { Routing.primary; backups } ->
      ignore (Net_state.admit state ~id:0 ~bw:1 ~primary ~backups));
  let report = Recovery.fail_group_drtp state ~scheme:Routing.Plsr ~group:0 () in
  (match report.Recovery.outcomes with
  | [ (0, Recovery.Lost _) ] -> ()
  | other -> Alcotest.failf "expected conn 0 Lost, got %d outcomes" (List.length other));
  Alcotest.(check (float 1e-9)) "nothing recovered" 0.0
    (Recovery.recovered_fraction report)

let prop_evaluate_srlg_equals_evaluate_under_singletons =
  property ~count:30 "singleton evaluate_srlg = evaluate" seed_gen (fun seed ->
      let g = random_graph seed in
      let state = Net_state.create ~graph:g ~capacity:6 ~spare_policy:Net_state.Multiplexed in
      ignore (warm ~seed:(seed + 1) state);
      let a = Failure_eval.evaluate state in
      let b = Failure_eval.evaluate_srlg state in
      a.Failure_eval.attempts = b.Failure_eval.attempts
      && a.Failure_eval.successes = b.Failure_eval.successes)

let suite =
  [
    ( "resilience.srlg",
      [
        Alcotest.test_case "create dedups and fills singletons" `Quick
          test_create_dedup_and_singletons;
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "singleton model identity" `Quick test_singletons_identity;
        Alcotest.test_case "random partition" `Quick test_random_partition;
        Alcotest.test_case "random overlay" `Quick test_random_overlay;
        Alcotest.test_case "regional grid" `Quick test_regional_grid;
        Alcotest.test_case "merge_groups" `Quick test_merge_groups;
        Alcotest.test_case "group schedule deterministic" `Quick
          test_group_schedule_deterministic;
        Alcotest.test_case "group schedule well-formed" `Quick
          test_group_schedule_well_formed;
        Alcotest.test_case "merge_schedules drop rule" `Quick
          test_merge_schedules_drop_rule;
      ] );
    ( "resilience.chains",
      [
        Alcotest.test_case "chain ranks and distinctness" `Quick
          test_chain_ranks_and_disjointness;
        Alcotest.test_case "soft fallback shares risk" `Quick
          test_chain_soft_fallback_shares_risk;
        Alcotest.test_case "group failover recovers" `Quick test_group_failover_recovers;
        Alcotest.test_case "partitioning group -> Lost, no raise" `Quick
          test_partitioning_group_is_lost_not_raise;
        prop_singleton_spare_equals_worst_edge;
        prop_spare_monotone_under_coarsening;
        prop_chain_equals_link_state_under_singletons;
        prop_evaluate_srlg_equals_evaluate_under_singletons;
      ] );
  ]

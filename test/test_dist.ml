module Rng = Dr_rng.Splitmix64
module Dist = Dr_rng.Dist

let g () = Rng.create 2024

let test_uniform_int_range () =
  let g = g () in
  for _ = 1 to 1000 do
    let v = Dist.uniform_int g ~lo:3 ~hi:9 in
    Alcotest.(check bool) "in [3,9]" true (v >= 3 && v <= 9)
  done

let test_uniform_int_point () =
  let g = g () in
  Alcotest.(check int) "degenerate range" 5 (Dist.uniform_int g ~lo:5 ~hi:5)

let test_uniform_int_bad_range () =
  let g = g () in
  Alcotest.check_raises "inverted range"
    (Invalid_argument "Dist.uniform_int: empty range") (fun () ->
      ignore (Dist.uniform_int g ~lo:2 ~hi:1))

let test_uniform_float_range () =
  let g = g () in
  for _ = 1 to 1000 do
    let v = Dist.uniform_float g ~lo:1.5 ~hi:2.5 in
    Alcotest.(check bool) "in [1.5,2.5]" true (v >= 1.5 && v <= 2.5)
  done

let test_exponential_positive () =
  let g = g () in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "positive" true (Dist.exponential g ~rate:0.5 > 0.0)
  done

let test_exponential_mean () =
  let g = g () in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Dist.exponential g ~rate:2.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f close to 0.5" mean)
    true
    (Float.abs (mean -. 0.5) < 0.02)

let test_exponential_bad_rate () =
  let g = g () in
  Alcotest.check_raises "rate 0"
    (Invalid_argument "Dist.exponential: rate must be positive") (fun () ->
      ignore (Dist.exponential g ~rate:0.0))

let test_poisson_mean () =
  let g = g () in
  let n = 20_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Dist.poisson g ~mean:3.0
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f close to 3" mean)
    true
    (Float.abs (mean -. 3.0) < 0.1)

let test_poisson_zero_mean () =
  let g = g () in
  Alcotest.(check int) "mean 0 gives 0" 0 (Dist.poisson g ~mean:0.0)

let test_pick_distinct_pair () =
  let g = g () in
  for _ = 1 to 1000 do
    let a, b = Dist.pick_distinct_pair g 5 in
    Alcotest.(check bool) "distinct and in range" true
      (a <> b && a >= 0 && a < 5 && b >= 0 && b < 5)
  done

let test_pick_distinct_pair_covers_all () =
  let g = g () in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 2000 do
    Hashtbl.replace seen (Dist.pick_distinct_pair g 3) ()
  done;
  Alcotest.(check int) "all 6 ordered pairs of 3 values" 6 (Hashtbl.length seen)

let test_shuffle_permutation () =
  let g = g () in
  let arr = Array.init 20 (fun i -> i) in
  Dist.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let g = g () in
  let s = Dist.sample_without_replacement g ~k:5 ~n:10 in
  Alcotest.(check int) "k values" 5 (Array.length s);
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem tbl v);
      Hashtbl.add tbl v ())
    s

let test_sample_all () =
  let g = g () in
  let s = Dist.sample_without_replacement g ~k:4 ~n:4 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "whole population" [| 0; 1; 2; 3 |] sorted

let suite =
  [
    ( "rng.dist",
      [
        Alcotest.test_case "uniform_int range" `Quick test_uniform_int_range;
        Alcotest.test_case "uniform_int degenerate" `Quick test_uniform_int_point;
        Alcotest.test_case "uniform_int bad range" `Quick test_uniform_int_bad_range;
        Alcotest.test_case "uniform_float range" `Quick test_uniform_float_range;
        Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
        Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
        Alcotest.test_case "exponential bad rate" `Quick test_exponential_bad_rate;
        Alcotest.test_case "poisson mean" `Slow test_poisson_mean;
        Alcotest.test_case "poisson zero mean" `Quick test_poisson_zero_mean;
        Alcotest.test_case "distinct pair" `Quick test_pick_distinct_pair;
        Alcotest.test_case "distinct pair coverage" `Quick test_pick_distinct_pair_covers_all;
        Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
        Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
        Alcotest.test_case "sample whole population" `Quick test_sample_all;
      ] );
  ]

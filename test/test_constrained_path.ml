(* Hop-constrained cheapest paths and QoS-bounded backup routing. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module CP = Dr_topo.Constrained_path
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing

let unit_cost _ = 1.0

let test_matches_dijkstra_when_loose () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  match
    ( CP.cheapest_within_hops g ~cost:unit_cost ~src:0 ~dst:8 ~max_hops:8,
      Dr_topo.Shortest_path.dijkstra_path g ~cost:unit_cost ~src:0 ~dst:8 )
  with
  | Some (c1, p1), Some (c2, _) ->
      Alcotest.(check (float 1e-9)) "same cost" c2 c1;
      Alcotest.(check int) "4 hops" 4 (Path.hops p1)
  | _ -> Alcotest.fail "paths expected"

let test_infeasible_budget () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  Alcotest.(check bool) "needs 4 hops, budget 3" true
    (CP.cheapest_within_hops g ~cost:unit_cost ~src:0 ~dst:8 ~max_hops:3 = None);
  Alcotest.(check bool) "exactly 4 works" true
    (CP.cheapest_within_hops g ~cost:unit_cost ~src:0 ~dst:8 ~max_hops:4 <> None)

let test_budget_forces_expensive_shortcut () =
  (* Ring of 6 with the short way made expensive: unbounded takes the long
     way round (cost 5 x 1), a 1-hop budget takes the expensive direct
     link. *)
  let g = Dr_topo.Gen.ring 6 in
  let direct = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  let cost l = if l = direct then 10.0 else 1.0 in
  (match Dr_topo.Shortest_path.dijkstra_path g ~cost ~src:0 ~dst:1 with
  | Some (c, p) ->
      Alcotest.(check (float 1e-9)) "unbounded prefers detour" 5.0 c;
      Alcotest.(check int) "5 hops" 5 (Path.hops p)
  | None -> Alcotest.fail "path expected");
  match CP.cheapest_within_hops g ~cost ~src:0 ~dst:1 ~max_hops:2 with
  | Some (c, p) ->
      Alcotest.(check (float 1e-9)) "budget forces the direct link" 10.0 c;
      Alcotest.(check int) "1 hop" 1 (Path.hops p)
  | None -> Alcotest.fail "bounded path expected"

let test_respects_budget_and_cost_tradeoff () =
  let g = Dr_topo.Gen.ring 6 in
  let direct = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  let cost l = if l = direct then 10.0 else 1.0 in
  (* Budget 5 admits the detour again. *)
  match CP.cheapest_within_hops g ~cost ~src:0 ~dst:1 ~max_hops:5 with
  | Some (c, _) -> Alcotest.(check (float 1e-9)) "detour returns" 5.0 c
  | None -> Alcotest.fail "path expected"

let test_infinite_cost_excluded () =
  let g = Dr_topo.Gen.line 3 in
  let l12 = Option.get (Graph.find_link g ~src:1 ~dst:2) in
  let cost l = if l = l12 then infinity else 1.0 in
  Alcotest.(check bool) "blocked" true
    (CP.cheapest_within_hops g ~cost ~src:0 ~dst:2 ~max_hops:5 = None)

let test_validation () =
  let g = Dr_topo.Gen.ring 4 in
  Alcotest.(check bool) "max_hops 0 rejected" true
    (try ignore (CP.cheapest_within_hops g ~cost:unit_cost ~src:0 ~dst:1 ~max_hops:0); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative cost rejected" true
    (try
       ignore (CP.cheapest_within_hops g ~cost:(fun _ -> -1.0) ~src:0 ~dst:1 ~max_hops:2);
       false
     with Invalid_argument _ -> true)

let test_degenerate_queries () =
  (* src = dst is a non-query, answered None rather than raised; a
     disconnected destination is None at any budget. *)
  let g = Graph.create ~node_count:4 ~edges:[ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "src = dst" true
    (CP.cheapest_within_hops g ~cost:unit_cost ~src:2 ~dst:2 ~max_hops:3 = None);
  Alcotest.(check bool) "disconnected dst" true
    (CP.cheapest_within_hops g ~cost:unit_cost ~src:0 ~dst:3 ~max_hops:10 = None)

let test_random_agreement_with_yen () =
  (* Oracle: the cheapest bounded path equals the cheapest of Yen's k
     shortest that fits the budget (for k large enough on small graphs). *)
  let rng = Dr_rng.Splitmix64.create 5 in
  for seed = 1 to 20 do
    let rng2 = Dr_rng.Splitmix64.create seed in
    let g = Dr_topo.Gen.erdos_renyi ~rng:rng2 ~n:8 ~avg_degree:2.8 in
    let costs =
      Array.init (Graph.link_count g) (fun _ -> 0.5 +. Dr_rng.Splitmix64.float rng 3.0)
    in
    let cost l = costs.(l) in
    let src = 0 and dst = 7 in
    let budget = 3 in
    let bounded = CP.cheapest_within_hops g ~cost ~src ~dst ~max_hops:budget in
    let yen =
      Dr_topo.Yen.k_shortest g ~cost ~src ~dst ~k:40
      |> List.filter (fun (_, p) -> Path.hops p <= budget)
    in
    match (bounded, yen) with
    | None, [] -> ()
    | Some (c, _), (c', _) :: _ ->
        Alcotest.(check (float 1e-9)) (Printf.sprintf "seed %d" seed) c' c
    | Some _, [] -> Alcotest.failf "seed %d: bounded found, yen did not" seed
    | None, _ :: _ -> Alcotest.failf "seed %d: yen found, bounded did not" seed
  done

let test_reachable_within_hops () =
  let g = Dr_topo.Gen.line 5 in
  let reach = CP.reachable_within_hops g ~usable:(fun _ -> true) ~src:0 ~max_hops:2 in
  Alcotest.(check (array bool)) "two hops down the line"
    [| true; true; true; false; false |] reach

let test_bounded_backup_routing () =
  let graph = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  let st = Net_state.create ~graph ~capacity:10 ~spare_policy:Net_state.Multiplexed in
  let primary = Path.of_nodes graph [ 0; 1; 2 ] in
  (* Unbounded: 4-hop disjoint backup exists. *)
  (match Routing.find_backup Routing.Dlsr st ~primary ~bw:1 with
  | Some b -> Alcotest.(check int) "unbounded backup" 4 (Path.hops b)
  | None -> Alcotest.fail "backup expected");
  (* Budget 2 (= primary length): no 2-hop disjoint route exists from 0 to
     2; the bounded search must settle for an overlapping one or fail —
     with Q finite the only 2-hop alternative is the primary itself, which
     is excluded, so expect None via the route_fn slack 0. *)
  let fn = Routing.link_state_route_fn ~backup_hop_slack:0 Routing.Dlsr ~with_backup:true in
  (match fn st ~src:0 ~dst:2 ~bw:1 with
  | Error Routing.No_backup -> ()
  | Ok { Routing.backups = [ b ]; _ } ->
      (* If a 2-hop walk exists it must differ from the primary. *)
      Alcotest.(check bool) "within budget" true (Path.hops b <= 2)
  | _ -> Alcotest.fail "unexpected");
  (* Slack 2 admits the 4-hop disjoint backup. *)
  let fn2 = Routing.link_state_route_fn ~backup_hop_slack:2 Routing.Dlsr ~with_backup:true in
  match fn2 st ~src:0 ~dst:2 ~bw:1 with
  | Ok { Routing.backups = [ b ]; _ } ->
      Alcotest.(check int) "disjoint within slack" 0 (Path.edge_overlap b primary);
      Alcotest.(check bool) "within budget" true (Path.hops b <= 4)
  | _ -> Alcotest.fail "bounded backup expected"

let test_qos_ablation_shape () =
  let cfg =
    {
      Dr_exp.Config.default with
      Dr_exp.Config.warmup = 600.0;
      horizon = 1500.0;
      lifetime_lo = 200.0;
      lifetime_hi = 400.0;
    }
  in
  let rows =
    Dr_exp.Ablation.qos_bound cfg ~avg_degree:3.0 ~traffic:Dr_exp.Config.UT
      ~lambda:0.3 ~slacks:[ Some 0; None ] ()
  in
  match rows with
  | [ tight; unbounded ] ->
      Alcotest.(check bool) "tight budget rejects more" true
        (tight.Dr_exp.Ablation.rejected_no_backup
        > unbounded.Dr_exp.Ablation.rejected_no_backup);
      Alcotest.(check bool) "tight budget shortens backups" true
        (tight.Dr_exp.Ablation.avg_backup_hops
        <= unbounded.Dr_exp.Ablation.avg_backup_hops);
      Alcotest.(check int) "unbounded rejects none" 0
        unbounded.Dr_exp.Ablation.rejected_no_backup
  | _ -> Alcotest.fail "two rows expected"

let suite =
  [
    ( "topology.constrained_path",
      [
        Alcotest.test_case "matches dijkstra when loose" `Quick test_matches_dijkstra_when_loose;
        Alcotest.test_case "infeasible budget" `Quick test_infeasible_budget;
        Alcotest.test_case "budget forces shortcut" `Quick test_budget_forces_expensive_shortcut;
        Alcotest.test_case "budget/cost trade-off" `Quick test_respects_budget_and_cost_tradeoff;
        Alcotest.test_case "infinite cost excluded" `Quick test_infinite_cost_excluded;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "degenerate queries" `Quick test_degenerate_queries;
        Alcotest.test_case "agrees with yen oracle" `Quick test_random_agreement_with_yen;
        Alcotest.test_case "reachability" `Quick test_reachable_within_hops;
        Alcotest.test_case "bounded backup routing" `Quick test_bounded_backup_routing;
        Alcotest.test_case "QoS ablation shape (E5)" `Slow test_qos_ablation_shape;
      ] );
  ]

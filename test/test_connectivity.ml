module Graph = Dr_topo.Graph
module C = Dr_topo.Connectivity

let test_ring_no_bridges () =
  let g = Dr_topo.Gen.ring 5 in
  Alcotest.(check (list int)) "no bridges" [] (C.bridges g);
  Alcotest.(check bool) "2-edge-connected" true (C.is_two_edge_connected g);
  Alcotest.(check (list int)) "no articulation points" [] (C.articulation_points g)

let test_line_all_bridges () =
  let g = Dr_topo.Gen.line 4 in
  Alcotest.(check (list int)) "all edges are bridges" [ 0; 1; 2 ] (C.bridges g);
  Alcotest.(check bool) "not 2-edge-connected" false (C.is_two_edge_connected g);
  Alcotest.(check (list int)) "inner nodes articulate" [ 1; 2 ] (C.articulation_points g)

let test_two_triangles_bridge () =
  (* Triangles 0-1-2 and 3-4-5 joined by edge (2,3) = edge id 3. *)
  let g =
    Graph.create ~node_count:6
      ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 5); (5, 3) ]
  in
  Alcotest.(check (list int)) "the joining edge" [ 3 ] (C.bridges g);
  Alcotest.(check (list int)) "bridge endpoints articulate" [ 2; 3 ]
    (C.articulation_points g)

let test_barbell_articulation () =
  (* Two triangles sharing node 2: no bridges, but node 2 articulates. *)
  let g =
    Graph.create ~node_count:5
      ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 2) ]
  in
  Alcotest.(check (list int)) "no bridges" [] (C.bridges g);
  Alcotest.(check (list int)) "shared node articulates" [ 2 ] (C.articulation_points g)

let test_disconnected_not_2ec () =
  let g = Graph.create ~node_count:6 ~edges:[ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ] in
  Alcotest.(check (list int)) "no bridges in either triangle" [] (C.bridges g);
  Alcotest.(check bool) "disconnected is not 2-edge-connected" false
    (C.is_two_edge_connected g)

let test_mesh_no_bridges () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  Alcotest.(check (list int)) "grid has no bridges" [] (C.bridges g)

let test_pendant_edge () =
  (* Ring of 4 plus a pendant node. *)
  let g = Graph.create ~node_count:5 ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0); (2, 4) ] in
  Alcotest.(check (list int)) "pendant edge is a bridge" [ 4 ] (C.bridges g);
  Alcotest.(check (list int)) "its attachment articulates" [ 2 ] (C.articulation_points g)

let test_single_node () =
  let g = Graph.create ~node_count:1 ~edges:[] in
  Alcotest.(check (list int)) "no bridges" [] (C.bridges g);
  Alcotest.(check (list int)) "no articulation points" [] (C.articulation_points g);
  Alcotest.(check bool) "trivially 2-edge-connected" true (C.is_two_edge_connected g)

let test_disconnected_with_bridges () =
  (* A bridge inside one component must still be found when the graph has
     several components. *)
  let g =
    Graph.create ~node_count:7
      ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (4, 5); (5, 6); (6, 4) ]
  in
  Alcotest.(check (list int)) "pendant bridge in first component" [ 3 ] (C.bridges g);
  Alcotest.(check (list int)) "its attachment articulates" [ 2 ]
    (C.articulation_points g);
  Alcotest.(check bool) "disconnected" false (C.is_two_edge_connected g)

let test_bridges_match_flow () =
  (* Cross-check: an edge is a bridge iff some pair it separates has
     edge-disjoint-path count 1.  Sample a small random graph. *)
  let rng = Dr_rng.Splitmix64.create 5 in
  let g = Dr_topo.Gen.erdos_renyi ~rng ~n:12 ~avg_degree:2.2 in
  let bridges = C.bridges g in
  let has_bridge = bridges <> [] in
  let min_flow = ref max_int in
  for i = 0 to 11 do
    for j = i + 1 to 11 do
      min_flow := min !min_flow (Dr_topo.Flow.edge_disjoint_paths g ~src:i ~dst:j)
    done
  done;
  Alcotest.(check bool) "bridges <=> some pair has min cut 1" has_bridge (!min_flow <= 1)

let suite =
  [
    ( "topology.connectivity",
      [
        Alcotest.test_case "ring has no bridges" `Quick test_ring_no_bridges;
        Alcotest.test_case "line is all bridges" `Quick test_line_all_bridges;
        Alcotest.test_case "two triangles + bridge" `Quick test_two_triangles_bridge;
        Alcotest.test_case "barbell articulation" `Quick test_barbell_articulation;
        Alcotest.test_case "disconnected graph" `Quick test_disconnected_not_2ec;
        Alcotest.test_case "mesh bridge-free" `Quick test_mesh_no_bridges;
        Alcotest.test_case "pendant edge" `Quick test_pendant_edge;
        Alcotest.test_case "single-node graph" `Quick test_single_node;
        Alcotest.test_case "disconnected with bridges" `Quick
          test_disconnected_with_bridges;
        Alcotest.test_case "bridges agree with max-flow" `Quick test_bridges_match_flow;
      ] );
  ]

module H = Dr_stats.Histogram

let test_binning () =
  let h = H.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (H.add h) [ 0.0; 1.9; 2.0; 5.5; 9.999 ];
  Alcotest.(check (array int)) "bin counts" [| 2; 1; 1; 0; 1 |] (H.bin_counts h);
  Alcotest.(check int) "count" 5 (H.count h);
  Alcotest.(check int) "no underflow" 0 (H.underflow h);
  Alcotest.(check int) "no overflow" 0 (H.overflow h)

let test_under_over_flow () =
  let h = H.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  H.add h (-0.5);
  H.add h 1.0;
  H.add h 2.0;
  Alcotest.(check int) "underflow" 1 (H.underflow h);
  Alcotest.(check int) "overflow (hi is exclusive)" 2 (H.overflow h);
  Alcotest.(check int) "all counted" 3 (H.count h)

let test_bin_bounds () =
  let h = H.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "bin 0" (0.0, 2.0) (H.bin_bounds h 0);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "bin 4" (8.0, 10.0) (H.bin_bounds h 4);
  Alcotest.(check bool) "out of range rejected" true
    (try ignore (H.bin_bounds h 5); false with Invalid_argument _ -> true)

let test_create_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "lo >= hi" true
    (invalid (fun () -> H.create ~lo:1.0 ~hi:1.0 ~bins:3));
  Alcotest.(check bool) "no bins" true
    (invalid (fun () -> H.create ~lo:0.0 ~hi:1.0 ~bins:0))

let test_quantiles () =
  let samples = [| 3.0; 1.0; 2.0; 5.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (H.quantile samples 0.5);
  Alcotest.(check (float 1e-9)) "min" 1.0 (H.quantile samples 0.0);
  Alcotest.(check (float 1e-9)) "max" 5.0 (H.quantile samples 1.0);
  Alcotest.(check (float 1e-9)) "q25 interpolates" 2.0 (H.quantile samples 0.25)

let test_quantile_interpolation () =
  let samples = [| 0.0; 10.0 |] in
  Alcotest.(check (float 1e-9)) "midpoint" 5.0 (H.quantile samples 0.5);
  Alcotest.(check (float 1e-9)) "q90" 9.0 (H.quantile samples 0.9)

let test_quantile_singleton () =
  Alcotest.(check (float 1e-9)) "single sample" 7.0 (H.quantile [| 7.0 |] 0.33)

let test_quantile_validation () =
  Alcotest.(check bool) "empty rejected" true
    (try ignore (H.quantile [||] 0.5); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "q out of range" true
    (try ignore (H.quantile [| 1.0 |] 1.5); false with Invalid_argument _ -> true)

let suite =
  [
    ( "stats.histogram",
      [
        Alcotest.test_case "binning" `Quick test_binning;
        Alcotest.test_case "under/overflow" `Quick test_under_over_flow;
        Alcotest.test_case "bin bounds" `Quick test_bin_bounds;
        Alcotest.test_case "creation validation" `Quick test_create_validation;
        Alcotest.test_case "quantiles" `Quick test_quantiles;
        Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
        Alcotest.test_case "quantile singleton" `Quick test_quantile_singleton;
        Alcotest.test_case "quantile validation" `Quick test_quantile_validation;
      ] );
  ]

module Graph = Dr_topo.Graph

let triangle () = Graph.create ~node_count:3 ~edges:[ (0, 1); (1, 2); (2, 0) ]

let test_sizes () =
  let g = triangle () in
  Alcotest.(check int) "nodes" 3 (Graph.node_count g);
  Alcotest.(check int) "edges" 3 (Graph.edge_count g);
  Alcotest.(check int) "links" 6 (Graph.link_count g)

let test_link_endpoints () =
  let g = triangle () in
  (* edge 0 is (0,1): link 0 goes 0->1, link 1 goes 1->0 *)
  Alcotest.(check int) "link 0 src" 0 (Graph.link_src g 0);
  Alcotest.(check int) "link 0 dst" 1 (Graph.link_dst g 0);
  Alcotest.(check int) "link 1 src" 1 (Graph.link_src g 1);
  Alcotest.(check int) "link 1 dst" 0 (Graph.link_dst g 1)

let test_twin_edge_mapping () =
  Alcotest.(check int) "twin of 4" 5 (Graph.twin 4);
  Alcotest.(check int) "twin of 5" 4 (Graph.twin 5);
  Alcotest.(check int) "edge of link 4" 2 (Graph.edge_of_link 4);
  Alcotest.(check int) "edge of link 5" 2 (Graph.edge_of_link 5);
  Alcotest.(check (pair int int)) "links of edge 2" (4, 5) (Graph.links_of_edge 2)

let test_find_link () =
  let g = triangle () in
  Alcotest.(check (option int)) "0->1" (Some 0) (Graph.find_link g ~src:0 ~dst:1);
  Alcotest.(check (option int)) "1->0" (Some 1) (Graph.find_link g ~src:1 ~dst:0);
  Alcotest.(check (option int)) "2->0" (Some 4) (Graph.find_link g ~src:2 ~dst:0);
  Alcotest.(check (option int)) "0->2" (Some 5) (Graph.find_link g ~src:0 ~dst:2);
  let g2 = Graph.create ~node_count:3 ~edges:[ (0, 1) ] in
  Alcotest.(check (option int)) "absent edge" None (Graph.find_link g2 ~src:1 ~dst:2)

let test_adjacency () =
  let g = triangle () in
  Alcotest.(check int) "degree" 2 (Graph.degree g 0);
  let neigh = Array.to_list (Graph.neighbors g 0) in
  Alcotest.(check (list int)) "neighbors of 0" [ 1; 2 ] (List.sort compare neigh);
  Alcotest.(check int) "out links count" 2 (Array.length (Graph.out_links g 1));
  Alcotest.(check int) "in links count" 2 (Array.length (Graph.in_links g 1))

let test_out_in_consistency () =
  let g = triangle () in
  for v = 0 to 2 do
    Array.iter
      (fun l -> Alcotest.(check int) "out link leaves v" v (Graph.link_src g l))
      (Graph.out_links g v);
    Array.iter
      (fun l -> Alcotest.(check int) "in link enters v" v (Graph.link_dst g l))
      (Graph.in_links g v)
  done

let test_average_degree () =
  let g = triangle () in
  Alcotest.(check (float 1e-9)) "avg degree 2" 2.0 (Graph.average_degree g)

let test_connectivity () =
  Alcotest.(check bool) "triangle connected" true (Graph.is_connected (triangle ()));
  let g = Graph.create ~node_count:4 ~edges:[ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "two components" false (Graph.is_connected g);
  Alcotest.(check int) "component count" 2 (List.length (Graph.components g))

let test_components_content () =
  let g = Graph.create ~node_count:5 ~edges:[ (0, 1); (2, 3) ] in
  let comps = List.map (List.sort compare) (Graph.components g) in
  Alcotest.(check (list (list int))) "components" [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ] comps

let test_validation () =
  let invalid name f = Alcotest.(check bool) name true
    (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  invalid "self loop" (fun () -> Graph.create ~node_count:2 ~edges:[ (0, 0) ]);
  invalid "out of range" (fun () -> Graph.create ~node_count:2 ~edges:[ (0, 2) ]);
  invalid "duplicate edge" (fun () ->
      Graph.create ~node_count:3 ~edges:[ (0, 1); (1, 0) ]);
  invalid "no nodes" (fun () -> Graph.create ~node_count:0 ~edges:[])

let test_coords () =
  let g = triangle () in
  Alcotest.(check bool) "no coords initially" true (Graph.coords g = None);
  let g2 = Graph.with_coords g [| (0.0, 0.0); (1.0, 0.0); (0.0, 1.0) |] in
  Alcotest.(check bool) "coords attached" true (Graph.coords g2 <> None);
  Alcotest.(check bool) "wrong length rejected" true
    (try ignore (Graph.with_coords g [| (0.0, 0.0) |]); false
     with Invalid_argument _ -> true)

let test_iterators () =
  let g = triangle () in
  let links = Graph.fold_links g ~init:0 ~f:(fun acc _ -> acc + 1) in
  Alcotest.(check int) "fold over links" 6 links;
  let edges = ref 0 in
  Graph.iter_edges g (fun _ -> incr edges);
  Alcotest.(check int) "iter over edges" 3 !edges

let test_text_roundtrip () =
  let rng = Dr_rng.Splitmix64.create 12 in
  let g = Dr_topo.Gen.waxman ~rng ~n:15 ~avg_degree:3.0 () in
  match Graph.of_string (Graph.to_string g) with
  | Error e -> Alcotest.fail e
  | Ok g2 ->
      Alcotest.(check int) "nodes" (Graph.node_count g) (Graph.node_count g2);
      Alcotest.(check int) "edges" (Graph.edge_count g) (Graph.edge_count g2);
      Graph.iter_edges g (fun e ->
          Alcotest.(check (pair int int)) "edge preserved"
            (Graph.edge_endpoints g e) (Graph.edge_endpoints g2 e));
      Alcotest.(check bool) "coords preserved" true (Graph.coords g2 <> None)

let test_text_parse_errors () =
  let err s = match Graph.of_string s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "no header" true (err "edge 0 1\n");
  Alcotest.(check bool) "bad edge" true (err "graph 2 1\nedge 0 x\n");
  Alcotest.(check bool) "edge count mismatch" true (err "graph 3 2\nedge 0 1\n");
  Alcotest.(check bool) "out of range" true (err "graph 2 1\nedge 0 5\n")

let test_file_roundtrip () =
  let g = triangle () in
  let file = Filename.temp_file "drtp_graph" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Graph.save g file;
      match Graph.load file with
      | Error e -> Alcotest.fail e
      | Ok g2 -> Alcotest.(check int) "edges" 3 (Graph.edge_count g2))

let suite =
  [
    ( "topology.graph",
      [
        Alcotest.test_case "sizes" `Quick test_sizes;
        Alcotest.test_case "link endpoints" `Quick test_link_endpoints;
        Alcotest.test_case "twin/edge mapping" `Quick test_twin_edge_mapping;
        Alcotest.test_case "find_link" `Quick test_find_link;
        Alcotest.test_case "adjacency" `Quick test_adjacency;
        Alcotest.test_case "out/in consistency" `Quick test_out_in_consistency;
        Alcotest.test_case "average degree" `Quick test_average_degree;
        Alcotest.test_case "connectivity" `Quick test_connectivity;
        Alcotest.test_case "components content" `Quick test_components_content;
        Alcotest.test_case "construction validation" `Quick test_validation;
        Alcotest.test_case "coordinates" `Quick test_coords;
        Alcotest.test_case "iterators" `Quick test_iterators;
        Alcotest.test_case "text round-trip" `Quick test_text_roundtrip;
        Alcotest.test_case "text parse errors" `Quick test_text_parse_errors;
        Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
      ] );
  ]

(* Second property-test battery: the extended machinery — multi-backup
   state transitions, hop-constrained routing, recovery dynamics, the
   advertised-view protocol and the double-failure evaluator. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module SP = Dr_topo.Shortest_path
module CP = Dr_topo.Constrained_path
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing
module FE = Drtp.Failure_eval
module Rng = Dr_rng.Splitmix64

let property ?(count = 50) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let seed_gen = QCheck.int_range 0 1_000_000

let random_graph seed =
  let rng = Rng.create seed in
  let n = 8 + Rng.int rng 12 in
  Dr_topo.Gen.waxman ~rng ~n ~avg_degree:(3.0 +. Rng.float rng 0.8) ()

let random_pair rng n =
  let a = Rng.int rng n in
  let b = Rng.int rng (n - 1) in
  (a, if b >= a then b + 1 else b)

(* Load a random workload with k backups per connection; stop before any
   release so the network is busy. *)
let loaded_state ?(backup_count = 1) ?(capacity = 15) seed =
  let rng = Rng.create seed in
  let graph = Dr_topo.Gen.waxman ~rng ~n:16 ~avg_degree:3.4 () in
  let manager =
    Drtp.Manager.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed
      ~route:(Routing.link_state_route_fn ~backup_count Routing.Dlsr ~with_backup:true)
  in
  let spec =
    {
      Dr_sim.Workload.arrival_rate = 0.5;
      horizon = 300.0;
      lifetime_lo = 400.0;
      lifetime_hi = 800.0;
      bw = Dr_sim.Workload.constant_bw 1;
      pattern = Dr_sim.Workload.Uniform;
    }
  in
  let scenario = Dr_sim.Workload.generate rng ~node_count:16 spec in
  Array.iter
    (fun item ->
      if item.Dr_sim.Scenario.time <= 300.0 then Drtp.Manager.apply manager item)
    (Dr_sim.Scenario.items scenario);
  (graph, Drtp.Manager.state manager, rng)

let prop_constrained_never_beats_dijkstra =
  property "bounded path cost >= unbounded cost" seed_gen (fun seed ->
      let g = random_graph seed in
      let rng = Rng.create (seed + 1) in
      let costs =
        Array.init (Graph.link_count g) (fun _ -> 0.1 +. Rng.float rng 2.0)
      in
      let cost l = costs.(l) in
      let src, dst = random_pair rng (Graph.node_count g) in
      let budget = 1 + Rng.int rng 6 in
      match
        ( CP.cheapest_within_hops g ~cost ~src ~dst ~max_hops:budget,
          SP.dijkstra_path g ~cost ~src ~dst )
      with
      | None, _ -> true
      | Some _, None -> false
      | Some (cb, pb), Some (cu, _) ->
          cb +. 1e-9 >= cu && Path.hops pb <= budget && Path.is_simple g pb)

let prop_constrained_monotone_in_budget =
  property "bounded path cost non-increasing in budget" seed_gen (fun seed ->
      let g = random_graph seed in
      let rng = Rng.create (seed + 2) in
      let costs = Array.init (Graph.link_count g) (fun _ -> 0.1 +. Rng.float rng 2.0) in
      let cost l = costs.(l) in
      let src, dst = random_pair rng (Graph.node_count g) in
      let cost_at h =
        Option.map fst (CP.cheapest_within_hops g ~cost ~src ~dst ~max_hops:h)
      in
      let rec check h prev =
        if h > 8 then true
        else
          match (prev, cost_at h) with
          | _, None -> check (h + 1) prev
          | None, (Some _ as c) -> check (h + 1) c
          | Some p, Some c -> c <= p +. 1e-9 && check (h + 1) (Some c)
      in
      check 1 None)

let prop_multi_backup_invariants =
  property ~count:15 "k=2 workload preserves invariants" seed_gen (fun seed ->
      let _, state, _ = loaded_state ~backup_count:2 seed in
      Net_state.check_invariants state = Ok ())

let prop_backups_within_hop_budget =
  property ~count:20 "bounded route_fn respects the budget" seed_gen (fun seed ->
      let g = random_graph seed in
      let state = Net_state.create ~graph:g ~capacity:10 ~spare_policy:Net_state.Multiplexed in
      let rng = Rng.create (seed + 3) in
      let src, dst = random_pair rng (Graph.node_count g) in
      let slack = Rng.int rng 3 in
      let fn = Routing.link_state_route_fn ~backup_hop_slack:slack Routing.Dlsr ~with_backup:true in
      match fn state ~src ~dst ~bw:1 with
      | Error _ -> true
      | Ok { Routing.primary; backups } ->
          List.for_all (fun b -> Path.hops b <= Path.hops primary + slack) backups)

let prop_promote_random_backup_keeps_invariants =
  property ~count:15 "random promotions preserve invariants" seed_gen (fun seed ->
      let _, state, rng = loaded_state ~backup_count:2 seed in
      (* Promote a handful of random connections on a random backup index. *)
      let ids = ref [] in
      Net_state.iter_conns state (fun c -> ids := c.Net_state.id :: !ids);
      let ids = Array.of_list !ids in
      let ok = ref true in
      for _ = 1 to min 10 (Array.length ids) do
        let id = ids.(Rng.int rng (Array.length ids)) in
        match Net_state.find state id with
        | Some conn when conn.Net_state.backups <> [] ->
            let index = Rng.int rng (List.length conn.Net_state.backups) in
            if Net_state.activation_feasible state ~id ~index () then begin
              Net_state.promote_backup state ~id ~index ();
              if Net_state.check_invariants state <> Ok () then ok := false
            end
        | _ -> ()
      done;
      !ok && Net_state.check_invariants state = Ok ())

let prop_recovery_conserves_connections =
  property ~count:15 "recovery outcomes partition the victims" seed_gen
    (fun seed ->
      let graph, state, rng = loaded_state seed in
      let edge = Rng.int rng (Graph.edge_count graph) in
      let before = Net_state.active_count state in
      let victims = List.length (Net_state.primaries_crossing_edge state edge) in
      let report = Drtp.Recovery.fail_edge_drtp state ~scheme:Routing.Dlsr ~edge () in
      let lost =
        List.length
          (List.filter
             (fun (_, o) -> not (Drtp.Recovery.outcome_is_recovered o))
             report.Drtp.Recovery.outcomes)
      in
      List.length report.Drtp.Recovery.outcomes = victims
      && Net_state.active_count state = before - lost
      && Net_state.check_invariants state = Ok ())

let prop_double_failure_dominated_by_single =
  property ~count:15 "single-failure ft >= double-failure ft" seed_gen
    (fun seed ->
      let _, state, _ = loaded_state seed in
      let single = FE.fault_tolerance (FE.evaluate state) in
      let double = FE.fault_tolerance (FE.evaluate_double ~samples:100 state) in
      double <= single +. 0.02)

let prop_view_refresh_converges =
  property ~count:20 "refreshed advertised view matches ground truth" seed_gen
    (fun seed ->
      let _, state, _ = loaded_state seed in
      let view = Dr_proto.Advertised_view.create state in
      Dr_proto.Advertised_view.refresh_all view state;
      Dr_proto.Advertised_view.staleness_count view state = 0)

let prop_fresh_view_routes_like_ground_truth =
  property ~count:20 "fresh view backup = ground-truth backup" seed_gen
    (fun seed ->
      let graph, state, rng = loaded_state seed in
      let view = Dr_proto.Advertised_view.create state in
      let src, dst = random_pair rng (Graph.node_count graph) in
      match Routing.find_primary state ~src ~dst ~bw:1 with
      | None -> true
      | Some primary ->
          let a =
            Dr_proto.Advertised_view.find_backups view state ~scheme:Routing.Dlsr
              ~primary ~bw:1 ~count:1
          in
          let b = Routing.find_backups Routing.Dlsr state ~primary ~bw:1 ~count:1 in
          List.map Path.links a = List.map Path.links b)

let prop_node_eval_consistent_with_pair =
  property ~count:15 "degree-2 node failure = its edge-pair failure" seed_gen
    (fun seed ->
      let graph, state, _ = loaded_state seed in
      (* For nodes of degree 2, failing the node equals failing its two
         incident edges simultaneously, modulo endpoint exclusions. *)
      let ok = ref true in
      for node = 0 to Graph.node_count graph - 1 do
        if Graph.degree graph node = 2 then begin
          let edges =
            Array.to_list (Graph.out_links graph node) |> List.map Graph.edge_of_link
          in
          match edges with
          | [ e1; e2 ] ->
              let n = FE.evaluate_node state ~node in
              let p = FE.evaluate_edge_pair state ~edges:(e1, e2) in
              (* The pair count includes endpoint connections; transit =
                 pair affected - endpoints. *)
              if
                n.FE.transit_affected + n.FE.endpoint_lost <> p.FE.affected
                || n.FE.transit_activated > p.FE.activated
              then ok := false
          | _ -> ()
        end
      done;
      !ok)

let suite =
  [
    ( "properties.extended",
      [
        prop_constrained_never_beats_dijkstra;
        prop_constrained_monotone_in_budget;
        prop_multi_backup_invariants;
        prop_backups_within_hop_budget;
        prop_promote_random_backup_keeps_invariants;
        prop_recovery_conserves_connections;
        prop_double_failure_dominated_by_single;
        prop_view_refresh_converges;
        prop_fresh_view_routes_like_ground_truth;
        prop_node_eval_consistent_with_pair;
      ] );
  ]

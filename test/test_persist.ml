(* Durability layer: WAL encode/decode/CRC, checkpoint round-trips,
   crash-recovery bit-identity against an uncrashed run (the property the
   CI crash-equivalence gate enforces end-to-end), recovery idempotence,
   crash-schedule determinism, and the reprotect-queue drain-order
   regression across snapshot/rollback under an active loss plan. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Gen = Dr_topo.Gen
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing
module Routing_reference = Drtp.Routing_reference
module Manager = Drtp.Manager
module Dist = Dr_rng.Dist
module Faults = Dr_faults.Faults
module Scenario = Dr_sim.Scenario
module Workload = Dr_sim.Workload
module Rng = Dr_rng.Splitmix64
module J = Dr_obs.Journal
module Crc32 = Dr_persist.Crc32
module Wal = Dr_persist.Wal
module Checkpoint = Dr_persist.Checkpoint
module Persist = Dr_persist.Persist
module State_digest = Dr_persist.State_digest

let property ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let seed_gen = QCheck.int_range 0 1_000_000

(* Fresh WAL/checkpoint paths per test so runs never see stale files. *)
let temp_wal () =
  let path = Filename.temp_file "drtp_wal" ".jsonl" in
  let cleanup () =
    List.iter
      (fun p -> if Sys.file_exists p then Sys.remove p)
      [ path; path ^ ".ckpt"; path ^ ".ckpt.tmp" ]
  in
  (path, cleanup)

let small_scenario ~seed ~rate ~horizon n =
  let rng = Rng.create seed in
  Workload.generate rng ~node_count:n
    {
      Workload.arrival_rate = rate;
      horizon;
      lifetime_lo = 10.0;
      lifetime_hi = 40.0;
      bw = Workload.Constant 1;
      pattern = Workload.Uniform;
    }

let make_manager ?(capacity = 8) ~scheme graph =
  Manager.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed
    ~route:(Routing.link_state_route_fn scheme ~with_backup:true)

(* --- CRC-32 ---------------------------------------------------------------- *)

let test_crc32 () =
  (* The IEEE 802.3 check value. *)
  Alcotest.(check int) "known vector" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  Alcotest.(check int) "update composes"
    (Crc32.string "123456789")
    (Crc32.update (Crc32.string "12345") "6789");
  Alcotest.(check bool) "fits 32 bits, non-negative" true
    (let c = Crc32.string "\x00\xff\x80 arbitrary bytes" in
     c >= 0 && c < 1 lsl 32)

(* --- WAL round-trip -------------------------------------------------------- *)

(* One record per op constructor, with awkward floats (subnormal, repeating
   binary fraction, negative zero is excluded by construction — times are
   non-negative). *)
let one_of_each_op =
  [
    Wal.Request { conn = 3; src = 0; dst = 7; bw = 2; duration = 1.0 /. 3.0 };
    Wal.Release { conn = 3 };
    Wal.Fail_edge { edge = 11 };
    Wal.Restore_edge { edge = 11 };
    Wal.Fail_group { group = 2 };
    Wal.Restore_group { group = 2 };
    Wal.Promote { conn = 5; index = 1 };
    Wal.Reroute { conn = 5; links = [ 0; 4; 9 ] };
    Wal.Replace_backups { conn = 5; backups = [ [ 1; 2 ]; [ 3 ] ] };
    Wal.Queue_reprotect { conn = 5; scheme = "D-LSR"; count = 2 };
    Wal.Drain_reprotect;
  ]

let test_wal_round_trip () =
  List.iteri
    (fun i op ->
      let r = { Wal.seq = i + 1; time = 0.1 *. float_of_int i; op } in
      let line = Wal.encode r in
      match Wal.decode line with
      | Error msg -> Alcotest.failf "%s rejected: %s" (Wal.op_name op) msg
      | Ok r' ->
          Alcotest.(check int) "seq" r.Wal.seq r'.Wal.seq;
          Alcotest.(check (float 0.0)) "time bit-exact" r.Wal.time r'.Wal.time;
          Alcotest.(check bool)
            (Wal.op_name op ^ " round-trips")
            true (r.Wal.op = r'.Wal.op))
    one_of_each_op;
  (* Subnormal and huge times survive the hex encoding bit-exactly. *)
  List.iter
    (fun t ->
      let r = { Wal.seq = 1; time = t; op = Wal.Drain_reprotect } in
      match Wal.decode (Wal.encode r) with
      | Ok r' ->
          Alcotest.(check bool) "time bits identical" true
            (Int64.bits_of_float t = Int64.bits_of_float r'.Wal.time)
      | Error msg -> Alcotest.failf "time %h rejected: %s" t msg)
    [ 0.0; 4.9e-324; 1e300; 12345.6789 ]

let test_wal_corruption_rejected () =
  let r =
    {
      Wal.seq = 7;
      time = 2.5;
      op = Wal.Request { conn = 1; src = 0; dst = 3; bw = 1; duration = 9.0 };
    }
  in
  let line = Wal.encode r in
  (* Flip one payload byte: the CRC must catch it. *)
  let flipped = Bytes.of_string line in
  Bytes.set flipped 10 (Char.chr (Char.code (Bytes.get flipped 10) lxor 1));
  Alcotest.(check bool) "flipped byte rejected" true
    (Result.is_error (Wal.decode (Bytes.to_string flipped)));
  (* A torn tail (truncated write) must be rejected, not replayed. *)
  Alcotest.(check bool) "torn line rejected" true
    (Result.is_error (Wal.decode (String.sub line 0 (String.length line - 4))));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Wal.decode "{not json"))

let test_wal_load () =
  let path, cleanup = temp_wal () in
  Fun.protect ~finally:cleanup @@ fun () ->
  Alcotest.(check bool) "missing file is an empty log" true
    (Wal.load "/nonexistent/drtp.wal" = Ok []);
  let recs =
    List.mapi
      (fun i op -> { Wal.seq = i + 1; time = float_of_int i; op })
      one_of_each_op
  in
  let oc = open_out path in
  List.iter (fun r -> output_string oc (Wal.encode r ^ "\n")) recs;
  close_out oc;
  (match Wal.load path with
  | Error msg -> Alcotest.failf "load rejected a good log: %s" msg
  | Ok got ->
      Alcotest.(check int) "all records" (List.length recs) (List.length got);
      Alcotest.(check bool) "records identical" true (got = recs));
  (* Duplicate (non-increasing) sequence numbers are corruption. *)
  let oc = open_out path in
  output_string oc
    (Wal.encode { Wal.seq = 4; time = 0.0; op = Wal.Drain_reprotect } ^ "\n");
  output_string oc
    (Wal.encode { Wal.seq = 4; time = 1.0; op = Wal.Drain_reprotect } ^ "\n");
  close_out oc;
  Alcotest.(check bool) "non-increasing seq rejected" true
    (Result.is_error (Wal.load path))

(* --- checkpoint round-trip ------------------------------------------------- *)

let test_checkpoint_round_trip () =
  let rng = Rng.create 17 in
  let graph = Gen.waxman ~rng ~n:16 ~avg_degree:4.0 () in
  let m = make_manager ~scheme:Routing.Dlsr graph in
  (* A non-trivial state: admissions, releases, a failed edge, a waiting
     reprotect entry. *)
  let scenario = small_scenario ~seed:71 ~rate:1.0 ~horizon:80.0 16 in
  Scenario.iter scenario (fun it -> Manager.apply m it);
  Net_state.fail_edge (Manager.state m) ~edge:0;
  Net_state.iter_conns (Manager.state m) (fun c ->
      if c.Net_state.backups = [] then
        Manager.queue_reprotect m ~id:c.Net_state.id ~scheme:Routing.Dlsr
          ~now:90.0 ());
  let path, cleanup = temp_wal () in
  Fun.protect ~finally:cleanup @@ fun () ->
  let ck =
    { Checkpoint.ck_wal_seq = 42; ck_time = 90.5; ck_repr = Manager.Serial.dump m }
  in
  let bytes = Checkpoint.save path ck in
  Alcotest.(check bool) "bytes counted" true (bytes > 0);
  match Checkpoint.load path with
  | Error msg -> Alcotest.failf "checkpoint rejected: %s" msg
  | Ok None -> Alcotest.fail "checkpoint file vanished"
  | Ok (Some ck') ->
      Alcotest.(check int) "wal seq" 42 ck'.Checkpoint.ck_wal_seq;
      Alcotest.(check (float 0.0)) "time bit-exact" 90.5 ck'.Checkpoint.ck_time;
      let fresh = make_manager ~scheme:Routing.Dlsr graph in
      Manager.Serial.restore fresh ck'.Checkpoint.ck_repr;
      Alcotest.(check string) "restored manager is bit-identical"
        (State_digest.manager_digest graph m)
        (State_digest.manager_digest graph fresh);
      Alcotest.(check int) "reprotect queue survives"
        (Manager.reprotect_pending m)
        (Manager.reprotect_pending fresh);
      Alcotest.(check bool) "invariants hold" true
        (Net_state.check_invariants (Manager.state fresh) = Ok ());
      Alcotest.(check bool) "caches consistent" true
        (Net_state.check_routing_caches (Manager.state fresh) = Ok ())

let test_checkpoint_load_missing () =
  Alcotest.(check bool) "missing checkpoint is None" true
    (Checkpoint.load "/nonexistent/drtp.ckpt" = Ok None)

(* --- crash-recovery bit-identity ------------------------------------------- *)

(* Drive the same scenario twice: once straight through a manager, once
   write-ahead-logged with the manager killed and recovered at every
   scheduled crash point.  The final full-state digests must be equal —
   the in-process version of the CI crash-equivalence gate. *)
let crash_recovery_bit_identity scheme =
  let rng = Rng.create 7 in
  let graph = Gen.waxman ~rng ~n:16 ~avg_degree:4.0 () in
  let scenario = small_scenario ~seed:505 ~rate:1.5 ~horizon:150.0 16 in
  let mk () = make_manager ~scheme graph in
  let baseline = mk () in
  Scenario.iter scenario (fun it -> Manager.apply baseline it);
  let want = State_digest.manager_digest graph baseline in
  let path, cleanup = temp_wal () in
  Fun.protect ~finally:cleanup @@ fun () ->
  let cfg =
    { (Persist.default_config ~wal_path:path) with Persist.checkpoint_every = 32 }
  in
  let crash_at =
    Faults.crash_schedule ~seed:3 ~mean_gap:40.0 ~count:4
      ~horizon:(Scenario.length scenario) ()
  in
  Alcotest.(check bool) "at least 3 crash points" true
    (List.length crash_at >= 3);
  let m = ref (mk ()) and p = ref (Persist.create cfg) in
  let ord = ref 0 and crashes = ref 0 in
  Scenario.iter scenario (fun it ->
      incr ord;
      Persist.append !p ~manager:!m ~time:it.Scenario.time
        (Wal.op_of_event it.Scenario.event);
      Manager.apply !m it;
      if List.mem !ord crash_at then begin
        incr crashes;
        Persist.close !p;
        let fresh = mk () in
        match Persist.recover cfg ~manager:fresh with
        | Error msg -> Alcotest.failf "recovery %d failed: %s" !crashes msg
        | Ok rv ->
            m := fresh;
            p := Persist.resume cfg rv
      end);
  Persist.close !p;
  Alcotest.(check int) "every crash point fired" (List.length crash_at) !crashes;
  Alcotest.(check bool) "invariants hold after recovery" true
    (Net_state.check_invariants (Manager.state !m) = Ok ());
  Alcotest.(check bool) "caches consistent after recovery" true
    (Net_state.check_routing_caches (Manager.state !m) = Ok ());
  (* The fast routing path must agree with the reference oracle on the
     recovered state — a mirror rebuilt wrong by replay would route
     differently here even if the digest matched. *)
  let state = Manager.state !m in
  let n = Graph.node_count graph in
  let orng = Rng.create 99 in
  for _ = 1 to 8 do
    let src, dst = Dist.pick_distinct_pair orng n in
    let bw = Dist.uniform_int orng ~lo:1 ~hi:2 in
    let links = Option.map Path.links in
    let fast = Routing.find_primary state ~src ~dst ~bw in
    let oracle = Routing_reference.find_primary state ~src ~dst ~bw in
    if links fast <> links oracle then
      Alcotest.fail "primary fast<>oracle on recovered state";
    match fast with
    | None -> ()
    | Some primary ->
        let fb = Routing.find_backups scheme state ~primary ~bw ~count:2 in
        let ob = Routing_reference.find_backups scheme state ~primary ~bw ~count:2 in
        if List.map Path.links fb <> List.map Path.links ob then
          Alcotest.fail "backups fast<>oracle on recovered state"
  done;
  Alcotest.(check string)
    (Routing.scheme_name scheme ^ ": crashed run is bit-identical")
    want
    (State_digest.manager_digest graph !m)

let test_crash_recovery_plsr () = crash_recovery_bit_identity Routing.Plsr
let test_crash_recovery_dlsr () = crash_recovery_bit_identity Routing.Dlsr

(* --- recovery idempotence (qcheck) ----------------------------------------- *)

(* Recovering from the same checkpoint + WAL tail is a pure function of
   the files: doing it twice — or into two different fresh managers —
   lands on the same digest as doing it once, which also equals the live
   manager's digest at the moment of the crash. *)
let prop_recover_idempotent =
  property ~count:12 "recover twice = recover once = live digest"
    QCheck.(pair seed_gen (int_range 0 2))
    (fun (seed, ck_mode) ->
      let rng = Rng.create (seed lxor 0x9e37) in
      let graph = Gen.waxman ~rng ~n:12 ~avg_degree:3.5 () in
      let scenario =
        small_scenario ~seed:(seed + 1) ~rate:1.0 ~horizon:60.0 12
      in
      let mk () = make_manager ~capacity:6 ~scheme:Routing.Dlsr graph in
      let path, cleanup = temp_wal () in
      Fun.protect ~finally:cleanup @@ fun () ->
      let cfg =
        {
          (Persist.default_config ~wal_path:path) with
          Persist.checkpoint_every = [| 0; 8; 32 |].(ck_mode);
        }
      in
      let m = mk () in
      let p = Persist.create cfg in
      Scenario.iter scenario (fun it ->
          Persist.append p ~manager:m ~time:it.Scenario.time
            (Wal.op_of_event it.Scenario.event);
          Manager.apply m it);
      Persist.close p;
      let live = State_digest.manager_digest graph m in
      let once = mk () and twice = mk () in
      (match Persist.recover cfg ~manager:once with
      | Error msg -> QCheck.Test.fail_reportf "first recover failed: %s" msg
      | Ok _ -> ());
      (match Persist.recover cfg ~manager:twice with
      | Error msg -> QCheck.Test.fail_reportf "second recover failed: %s" msg
      | Ok _ -> ());
      let d1 = State_digest.manager_digest graph once in
      let d2 = State_digest.manager_digest graph twice in
      if d1 <> d2 then QCheck.Test.fail_report "recover is not idempotent";
      if d1 <> live then
        QCheck.Test.fail_report "recovered digest differs from live";
      true)

(* --- persist handle mechanics ---------------------------------------------- *)

let test_auto_checkpoint_truncates () =
  let rng = Rng.create 23 in
  let graph = Gen.waxman ~rng ~n:12 ~avg_degree:3.5 () in
  let m = make_manager ~capacity:6 ~scheme:Routing.Dlsr graph in
  let path, cleanup = temp_wal () in
  Fun.protect ~finally:cleanup @@ fun () ->
  let cfg =
    { (Persist.default_config ~wal_path:path) with Persist.checkpoint_every = 5 }
  in
  let p = Persist.create cfg in
  let scenario = small_scenario ~seed:91 ~rate:1.0 ~horizon:60.0 12 in
  Scenario.iter scenario (fun it ->
      Persist.append p ~manager:m ~time:it.Scenario.time
        (Wal.op_of_event it.Scenario.event);
      Manager.apply m it);
  Persist.close p;
  Alcotest.(check bool) "checkpoints happened" true (Persist.checkpoints p > 1);
  Alcotest.(check bool) "wal seq monotone across truncation" true
    (Persist.wal_seq p = Scenario.length scenario);
  (* After truncation the on-disk tail only holds records past the
     checkpoint — never more than checkpoint_every + the final partial
     stretch. *)
  (match Wal.load path with
  | Error msg -> Alcotest.failf "tail unreadable: %s" msg
  | Ok tail ->
      Alcotest.(check int) "tail length = seq - checkpoint seq"
        (Persist.wal_seq p - Persist.checkpoint_seq p)
        (List.length tail);
      List.iter
        (fun (r : Wal.record) ->
          if r.Wal.seq <= Persist.checkpoint_seq p then
            Alcotest.failf "record %d survived truncation" r.Wal.seq)
        tail);
  (* The checkpoint on disk agrees with the handle's accounting. *)
  match Checkpoint.load cfg.Persist.checkpoint_path with
  | Ok (Some ck) ->
      Alcotest.(check int) "checkpoint covers the recorded seq"
        (Persist.checkpoint_seq p) ck.Checkpoint.ck_wal_seq
  | Ok None -> Alcotest.fail "no checkpoint on disk"
  | Error msg -> Alcotest.failf "checkpoint unreadable: %s" msg

(* --- crash schedules ------------------------------------------------------- *)

let test_crash_schedule () =
  let a = Faults.crash_schedule ~seed:5 ~mean_gap:10.0 ~horizon:200 () in
  let b = Faults.crash_schedule ~seed:5 ~mean_gap:10.0 ~horizon:200 () in
  Alcotest.(check bool) "deterministic" true (a = b);
  Alcotest.(check bool) "non-empty at this density" true (a <> []);
  let rec increasing = function
    | x :: (y :: _ as rest) -> x < y && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly increasing" true (increasing a);
  List.iter
    (fun i ->
      if i < 1 || i > 200 then Alcotest.failf "crash point %d out of range" i)
    a;
  let capped = Faults.crash_schedule ~seed:5 ~mean_gap:10.0 ~count:3 ~horizon:200 () in
  Alcotest.(check bool) "count cap respected" true (List.length capped <= 3);
  Alcotest.(check bool) "cap is a prefix" true
    (capped = List.filteri (fun i _ -> i < 3) a);
  Alcotest.(check int) "empty horizon, empty schedule" 0
    (List.length (Faults.crash_schedule ~seed:5 ~mean_gap:10.0 ~horizon:0 ()));
  Alcotest.check_raises "mean_gap < 1 rejected"
    (Invalid_argument "Faults.crash_schedule: mean_gap must be >= 1") (fun () ->
      ignore (Faults.crash_schedule ~seed:5 ~mean_gap:0.5 ~horizon:10 ()))

(* --- reprotect drain order across rollback under loss ---------------------- *)

(* Satellite regression: the manager snapshot shares the reprotect queue
   (immutable entries), so rollback -> drain must walk the entries in the
   same FIFO order and land on the same state as the first drain — even
   when the replacement-backup search is gated by an active message-loss
   plan (pinned seed, re-created before each drain so the loss draws are
   reproducible). *)
let test_reprotect_drain_order_survives_rollback () =
  let graph = Gen.mesh ~rows:4 ~cols:4 in
  let m = make_manager ~capacity:4 ~scheme:Routing.Dlsr graph in
  let st = Manager.state m in
  (* Six backup-less connections admitted in a pinned order. *)
  let routes =
    [
      (1, [ 0; 1; 2 ]); (2, [ 12; 13; 14 ]); (3, [ 0; 4; 8 ]);
      (4, [ 3; 7; 11 ]); (5, [ 12; 8; 9 ]); (6, [ 2; 6; 10 ]);
    ]
  in
  List.iter
    (fun (id, nodes) ->
      ignore
        (Net_state.admit st ~id ~bw:1 ~primary:(Path.of_nodes graph nodes)
           ~backups:[]
          : Net_state.conn))
    routes;
  List.iter
    (fun (id, _) ->
      Manager.queue_reprotect m ~id ~scheme:Routing.Dlsr
        ~now:(float_of_int id) ())
    routes;
  Alcotest.(check int) "all six queued" 6 (Manager.reprotect_pending m);
  (* A lossy reprotect router: each search first draws a delivery for its
     "reprotect request" from the plan; a drop means the search fails this
     round (the entry stays queued). *)
  let drain_with_pinned_losses () =
    let faults = Faults.create ~seed:29 (Faults.uniform_spec 0.5) in
    Manager.set_reprotect_router m (fun scheme state ~primary ~bw ~existing ~count ->
        if not (Faults.deliver faults Faults.Report) then []
        else
          Manager.default_reprotect_router scheme state ~primary ~bw ~existing
            ~count);
    let buf = J.create () in
    J.set_enabled true;
    let drained =
      Fun.protect
        (fun () -> J.with_buffer buf (fun () -> Manager.drain_reprotect m ~now:20.0))
        ~finally:(fun () ->
          J.set_enabled false;
          J.clear (J.current ()))
    in
    let order =
      List.filter_map
        (fun (e : J.entry) ->
          match e.J.event with
          | J.Reprotected { conn; _ } -> Some conn
          | _ -> None)
        (J.entries buf)
    in
    (drained, order, State_digest.manager_digest graph m)
  in
  let snap = Manager.snapshot m in
  let d1, o1, dig1 = drain_with_pinned_losses () in
  Manager.rollback m snap;
  Alcotest.(check int) "rollback restores the queue" 6
    (Manager.reprotect_pending m);
  let d2, o2, dig2 = drain_with_pinned_losses () in
  (* The pinned loss plan must actually bite: some entries drain, some are
     held back by a dropped search. *)
  Alcotest.(check bool) "losses split the queue" true
    (d1 > 0 && Manager.reprotect_pending m > 0);
  Alcotest.(check int) "same drained count" d1 d2;
  Alcotest.(check (list int)) "same drain order" o1 o2;
  Alcotest.(check string) "same end state" dig1 dig2;
  Alcotest.(check bool) "invariants hold" true
    (Net_state.check_invariants st = Ok ())

let suite =
  [
    ( "persist.wal",
      [
        Alcotest.test_case "crc32 vectors" `Quick test_crc32;
        Alcotest.test_case "op round-trip" `Quick test_wal_round_trip;
        Alcotest.test_case "corruption rejected" `Quick
          test_wal_corruption_rejected;
        Alcotest.test_case "log load" `Quick test_wal_load;
      ] );
    ( "persist.checkpoint",
      [
        Alcotest.test_case "manager round-trip" `Quick
          test_checkpoint_round_trip;
        Alcotest.test_case "missing file" `Quick test_checkpoint_load_missing;
        Alcotest.test_case "auto-checkpoint truncates the WAL" `Quick
          test_auto_checkpoint_truncates;
      ] );
    ( "persist.recovery",
      [
        Alcotest.test_case "crash bit-identity (P-LSR)" `Quick
          test_crash_recovery_plsr;
        Alcotest.test_case "crash bit-identity (D-LSR)" `Quick
          test_crash_recovery_dlsr;
        prop_recover_idempotent;
        Alcotest.test_case "crash schedule" `Quick test_crash_schedule;
        Alcotest.test_case "reprotect drain order survives rollback" `Quick
          test_reprotect_drain_order_survives_rollback;
      ] );
  ]

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module SP = Dr_topo.Shortest_path

let grid () = Dr_topo.Gen.mesh ~rows:3 ~cols:3

let test_bfs_hops () =
  let g = grid () in
  let d = SP.bfs_hops g ~src:0 in
  Alcotest.(check int) "self" 0 d.(0);
  Alcotest.(check int) "adjacent" 1 d.(1);
  Alcotest.(check int) "centre" 2 d.(4);
  Alcotest.(check int) "far corner" 4 d.(8)

let test_bfs_rev_symmetric () =
  let g = grid () in
  let fwd = SP.bfs_hops g ~src:2 in
  let rev = SP.bfs_hops_rev g ~dst:2 in
  Alcotest.(check (array int)) "symmetric graph: fwd = rev" fwd rev

let test_bfs_unreachable () =
  let g = Graph.create ~node_count:3 ~edges:[ (0, 1) ] in
  let d = SP.bfs_hops g ~src:0 in
  Alcotest.(check int) "unreachable sentinel" SP.unreachable d.(2)

let test_hop_matrix () =
  let g = grid () in
  let m = SP.hop_matrix g in
  for i = 0 to 8 do
    Alcotest.(check int) "diagonal" 0 m.(i).(i);
    for j = 0 to 8 do
      Alcotest.(check int) "symmetric" m.(i).(j) m.(j).(i)
    done
  done

let test_min_hop_path () =
  let g = grid () in
  match SP.min_hop_path g ~src:0 ~dst:8 () with
  | None -> Alcotest.fail "path expected"
  | Some p ->
      Alcotest.(check int) "4 hops" 4 (Path.hops p);
      Alcotest.(check int) "src" 0 (Path.src p);
      Alcotest.(check int) "dst" 8 (Path.dst p)

let test_min_hop_usable_filter () =
  let g = grid () in
  (* Forbid both directions of edge (0,1); the path must leave via node 3. *)
  let banned = Graph.find_link g ~src:0 ~dst:1 in
  let banned = Option.get banned in
  let usable l = l <> banned && l <> Graph.twin banned in
  match SP.min_hop_path g ~usable ~src:0 ~dst:2 () with
  | None -> Alcotest.fail "alternative path expected"
  | Some p ->
      Alcotest.(check bool) "avoids banned link" false (Path.contains_link p banned);
      Alcotest.(check int) "detour costs 4 hops" 4 (Path.hops p)

let test_min_hop_none () =
  let g = Graph.create ~node_count:3 ~edges:[ (0, 1) ] in
  Alcotest.(check bool) "unreachable" true (SP.min_hop_path g ~src:0 ~dst:2 () = None)

let test_dijkstra_uniform_matches_bfs () =
  let g = grid () in
  let r = SP.dijkstra g ~cost:(fun _ -> 1.0) ~src:0 in
  let bfs = SP.bfs_hops g ~src:0 in
  for v = 0 to 8 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "node %d" v)
      (float_of_int bfs.(v))
      r.SP.dist.(v)
  done

let test_dijkstra_weighted_detour () =
  let g = grid () in
  (* Make the direct edge 0-1 expensive: 0->2 should go 0-3-4-1-2 or stay on
     cheap links. *)
  let e01 = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  let cost l = if l = e01 || l = Graph.twin e01 then 10.0 else 1.0 in
  match SP.dijkstra_path g ~cost ~src:0 ~dst:2 with
  | None -> Alcotest.fail "path expected"
  | Some (c, p) ->
      Alcotest.(check bool) "avoids expensive link" false (Path.contains_link p e01);
      Alcotest.(check (float 1e-9)) "detour cost" 4.0 c

let test_dijkstra_infinite_excludes () =
  let g = Graph.create ~node_count:3 ~edges:[ (0, 1); (1, 2) ] in
  let e12 = Option.get (Graph.find_link g ~src:1 ~dst:2) in
  let cost l = if l = e12 then infinity else 1.0 in
  Alcotest.(check bool) "no path through infinite link" true
    (SP.dijkstra_path g ~cost ~src:0 ~dst:2 = None)

let test_dijkstra_negative_rejected () =
  let g = grid () in
  Alcotest.(check bool) "negative cost raises" true
    (try ignore (SP.dijkstra g ~cost:(fun _ -> -1.0) ~src:0); false
     with Invalid_argument _ -> true)

let test_extract_path_at_source () =
  let g = grid () in
  let r = SP.dijkstra g ~cost:(fun _ -> 1.0) ~src:0 in
  Alcotest.(check bool) "no path to self" true (SP.extract_path g r ~dst:0 = None)

let test_bellman_ford_matches_dijkstra () =
  let g = grid () in
  let cost l = 1.0 +. (0.1 *. float_of_int (l mod 3)) in
  let d = SP.dijkstra g ~cost ~src:4 in
  match SP.bellman_ford g ~cost ~src:4 with
  | Error e -> Alcotest.fail e
  | Ok (dist, _) ->
      for v = 0 to 8 do
        Alcotest.(check (float 1e-9)) (Printf.sprintf "node %d" v) d.SP.dist.(v) dist.(v)
      done

let test_bellman_ford_infinite () =
  let g = Graph.create ~node_count:3 ~edges:[ (0, 1) ] in
  match SP.bellman_ford g ~cost:(fun _ -> 1.0) ~src:0 with
  | Error e -> Alcotest.fail e
  | Ok (dist, _) ->
      Alcotest.(check (float 1e-9)) "unreachable is infinite" infinity dist.(2)

let suite =
  [
    ( "topology.shortest_path",
      [
        Alcotest.test_case "bfs hop counts" `Quick test_bfs_hops;
        Alcotest.test_case "reverse bfs symmetric" `Quick test_bfs_rev_symmetric;
        Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
        Alcotest.test_case "hop matrix" `Quick test_hop_matrix;
        Alcotest.test_case "min-hop path" `Quick test_min_hop_path;
        Alcotest.test_case "min-hop with filter" `Quick test_min_hop_usable_filter;
        Alcotest.test_case "min-hop unreachable" `Quick test_min_hop_none;
        Alcotest.test_case "dijkstra = bfs on unit costs" `Quick test_dijkstra_uniform_matches_bfs;
        Alcotest.test_case "dijkstra weighted detour" `Quick test_dijkstra_weighted_detour;
        Alcotest.test_case "dijkstra infinite cost excludes" `Quick test_dijkstra_infinite_excludes;
        Alcotest.test_case "dijkstra rejects negative" `Quick test_dijkstra_negative_rejected;
        Alcotest.test_case "extract path at source" `Quick test_extract_path_at_source;
        Alcotest.test_case "bellman-ford agrees" `Quick test_bellman_ford_matches_dijkstra;
        Alcotest.test_case "bellman-ford unreachable" `Quick test_bellman_ford_infinite;
      ] );
  ]

module Graph = Dr_topo.Graph
module Gen = Dr_topo.Gen
module Rng = Dr_rng.Splitmix64

let test_mesh_shape () =
  let g = Gen.mesh ~rows:3 ~cols:4 in
  Alcotest.(check int) "nodes" 12 (Graph.node_count g);
  (* 3 rows x 3 horizontal + 2 x 4 vertical = 17 edges *)
  Alcotest.(check int) "edges" 17 (Graph.edge_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check int) "corner degree" 2 (Graph.degree g 0);
  Alcotest.(check int) "centre degree" 4 (Graph.degree g 5)

let test_ring_shape () =
  let g = Gen.ring 7 in
  Alcotest.(check int) "nodes" 7 (Graph.node_count g);
  Alcotest.(check int) "edges" 7 (Graph.edge_count g);
  for v = 0 to 6 do
    Alcotest.(check int) "degree 2" 2 (Graph.degree g v)
  done

let test_line_shape () =
  let g = Gen.line 5 in
  Alcotest.(check int) "edges" 4 (Graph.edge_count g);
  Alcotest.(check int) "end degree" 1 (Graph.degree g 0);
  Alcotest.(check int) "middle degree" 2 (Graph.degree g 2)

let test_torus_shape () =
  let g = Gen.torus ~rows:3 ~cols:4 in
  Alcotest.(check int) "nodes" 12 (Graph.node_count g);
  Alcotest.(check int) "edges" 24 (Graph.edge_count g);
  for v = 0 to 11 do
    Alcotest.(check int) "regular degree 4" 4 (Graph.degree g v)
  done;
  Alcotest.(check bool) "2-edge-connected" true
    (Dr_topo.Connectivity.is_two_edge_connected g)

let test_complete_shape () =
  let g = Gen.complete 6 in
  Alcotest.(check int) "edges" 15 (Graph.edge_count g);
  for v = 0 to 5 do
    Alcotest.(check int) "degree n-1" 5 (Graph.degree g v)
  done

let test_star_shape () =
  let g = Gen.star 6 in
  Alcotest.(check int) "hub degree" 5 (Graph.degree g 0);
  Alcotest.(check int) "leaf degree" 1 (Graph.degree g 3)

let test_double_ring () =
  let g = Gen.double_ring 8 in
  Alcotest.(check int) "edges" 12 (Graph.edge_count g);
  for v = 0 to 7 do
    Alcotest.(check int) "degree 3" 3 (Graph.degree g v)
  done

let test_waxman_basic () =
  let rng = Rng.create 1 in
  let g = Gen.waxman ~rng ~n:40 ~avg_degree:3.0 () in
  Alcotest.(check int) "nodes" 40 (Graph.node_count g);
  Alcotest.(check int) "exact edge budget" 60 (Graph.edge_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check bool) "coordinates attached" true (Graph.coords g <> None)

let test_waxman_two_edge_connected () =
  let rng = Rng.create 2 in
  let g = Gen.waxman ~rng ~n:60 ~avg_degree:3.0 () in
  Alcotest.(check bool) "bridge-free" true
    (Dr_topo.Connectivity.is_two_edge_connected g);
  let min_deg = ref max_int in
  for v = 0 to 59 do
    min_deg := min !min_deg (Graph.degree g v)
  done;
  Alcotest.(check bool) "min degree >= 2" true (!min_deg >= 2)

let test_waxman_plain_mode () =
  let rng = Rng.create 3 in
  let g = Gen.waxman ~rng ~n:40 ~avg_degree:3.0 ~two_edge_connected:false () in
  Alcotest.(check bool) "still connected" true (Graph.is_connected g);
  Alcotest.(check int) "edge budget" 60 (Graph.edge_count g)

let test_waxman_deterministic () =
  let edges g =
    List.init (Graph.edge_count g) (fun e -> Graph.edge_endpoints g e)
  in
  let g1 = Gen.waxman ~rng:(Rng.create 9) ~n:30 ~avg_degree:3.0 () in
  let g2 = Gen.waxman ~rng:(Rng.create 9) ~n:30 ~avg_degree:3.0 () in
  Alcotest.(check (list (pair int int))) "same seed, same graph" (edges g1) (edges g2);
  let g3 = Gen.waxman ~rng:(Rng.create 10) ~n:30 ~avg_degree:3.0 () in
  Alcotest.(check bool) "different seed, different graph" false (edges g1 = edges g3)

let test_waxman_locality () =
  (* Waxman prefers short edges: mean edge length should be well below the
     mean distance of uniformly random node pairs (~0.52 in the unit
     square). *)
  let rng = Rng.create 4 in
  let g = Gen.waxman ~rng ~n:60 ~avg_degree:4.0 () in
  let coords = Option.get (Graph.coords g) in
  let total = ref 0.0 in
  Graph.iter_edges g (fun e ->
      let u, v = Graph.edge_endpoints g e in
      let xu, yu = coords.(u) and xv, yv = coords.(v) in
      total := !total +. sqrt (((xu -. xv) ** 2.0) +. ((yu -. yv) ** 2.0)));
  let mean = !total /. float_of_int (Graph.edge_count g) in
  Alcotest.(check bool)
    (Printf.sprintf "mean edge length %.3f < 0.4" mean)
    true (mean < 0.4)

let test_erdos_renyi () =
  let rng = Rng.create 6 in
  let g = Gen.erdos_renyi ~rng ~n:30 ~avg_degree:4.0 in
  Alcotest.(check int) "edge budget" 60 (Graph.edge_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_degree_too_low () =
  let rng = Rng.create 7 in
  Alcotest.(check bool) "rejects impossible degree" true
    (try ignore (Gen.waxman ~rng ~n:30 ~avg_degree:0.5 ()); false
     with Invalid_argument _ -> true)

let test_degree_too_high () =
  let rng = Rng.create 8 in
  Alcotest.(check bool) "rejects beyond complete" true
    (try ignore (Gen.erdos_renyi ~rng ~n:5 ~avg_degree:5.0); false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "topology.gen",
      [
        Alcotest.test_case "mesh" `Quick test_mesh_shape;
        Alcotest.test_case "ring" `Quick test_ring_shape;
        Alcotest.test_case "line" `Quick test_line_shape;
        Alcotest.test_case "torus" `Quick test_torus_shape;
        Alcotest.test_case "complete" `Quick test_complete_shape;
        Alcotest.test_case "star" `Quick test_star_shape;
        Alcotest.test_case "double ring" `Quick test_double_ring;
        Alcotest.test_case "waxman basics" `Quick test_waxman_basic;
        Alcotest.test_case "waxman 2-edge-connected" `Quick test_waxman_two_edge_connected;
        Alcotest.test_case "waxman plain mode" `Quick test_waxman_plain_mode;
        Alcotest.test_case "waxman deterministic" `Quick test_waxman_deterministic;
        Alcotest.test_case "waxman locality" `Quick test_waxman_locality;
        Alcotest.test_case "erdos-renyi" `Quick test_erdos_renyi;
        Alcotest.test_case "degree too low rejected" `Quick test_degree_too_low;
        Alcotest.test_case "degree too high rejected" `Quick test_degree_too_high;
      ] );
  ]

module Summary = Dr_stats.Summary

let test_empty () =
  let s = Summary.create () in
  Alcotest.(check int) "count" 0 (Summary.count s);
  Alcotest.(check bool) "mean is nan" true (Float.is_nan (Summary.mean s));
  Alcotest.(check (float 1e-9)) "variance 0" 0.0 (Summary.variance s)

let test_single () =
  let s = Summary.create () in
  Summary.add s 4.2;
  Alcotest.(check (float 1e-9)) "mean" 4.2 (Summary.mean s);
  Alcotest.(check (float 1e-9)) "variance" 0.0 (Summary.variance s);
  Alcotest.(check (float 1e-9)) "min" 4.2 (Summary.min_value s);
  Alcotest.(check (float 1e-9)) "max" 4.2 (Summary.max_value s)

let test_known_stats () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Summary.mean s);
  (* population variance 4 -> sample variance 4 * 8/7 *)
  Alcotest.(check (float 1e-9)) "sample variance" (32.0 /. 7.0) (Summary.variance s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Summary.min_value s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Summary.max_value s)

let test_weighted_mean () =
  let s = Summary.create () in
  Summary.add_weighted s ~weight:3.0 10.0;
  Summary.add_weighted s ~weight:1.0 2.0;
  Alcotest.(check (float 1e-9)) "time-weighted mean" 8.0 (Summary.mean s);
  Alcotest.(check (float 1e-9)) "total weight" 4.0 (Summary.total_weight s)

let test_zero_weight_ignored () =
  let s = Summary.create () in
  Summary.add_weighted s ~weight:0.0 100.0;
  Alcotest.(check int) "not counted" 0 (Summary.count s)

let test_negative_weight_rejected () =
  let s = Summary.create () in
  Alcotest.(check bool) "raises" true
    (try Summary.add_weighted s ~weight:(-1.0) 1.0; false
     with Invalid_argument _ -> true)

let test_merge_equivalent () =
  let all = Summary.create () in
  let a = Summary.create () and b = Summary.create () in
  List.iteri
    (fun i x ->
      Summary.add all x;
      if i mod 2 = 0 then Summary.add a x else Summary.add b x)
    [ 1.0; 5.0; 2.0; 8.0; 3.0; 9.0; 4.0 ];
  let merged = Summary.merge a b in
  Alcotest.(check int) "count" (Summary.count all) (Summary.count merged);
  Alcotest.(check (float 1e-9)) "mean" (Summary.mean all) (Summary.mean merged);
  Alcotest.(check (float 1e-9)) "variance" (Summary.variance all) (Summary.variance merged);
  Alcotest.(check (float 1e-9)) "min" (Summary.min_value all) (Summary.min_value merged);
  Alcotest.(check (float 1e-9)) "max" (Summary.max_value all) (Summary.max_value merged)

let test_merge_with_empty () =
  let a = Summary.create () in
  Summary.add a 3.0;
  let e = Summary.create () in
  let m1 = Summary.merge a e and m2 = Summary.merge e a in
  Alcotest.(check (float 1e-9)) "a + empty" 3.0 (Summary.mean m1);
  Alcotest.(check (float 1e-9)) "empty + a" 3.0 (Summary.mean m2)

let test_ci_shrinks () =
  let s1 = Summary.create () and s2 = Summary.create () in
  let rng = Dr_rng.Splitmix64.create 2 in
  for _ = 1 to 10 do
    Summary.add s1 (Dr_rng.Splitmix64.float rng 1.0)
  done;
  for _ = 1 to 1000 do
    Summary.add s2 (Dr_rng.Splitmix64.float rng 1.0)
  done;
  Alcotest.(check bool) "more samples, tighter CI" true
    (Summary.ci95_halfwidth s2 < Summary.ci95_halfwidth s1)

let suite =
  [
    ( "stats.summary",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "single value" `Quick test_single;
        Alcotest.test_case "known dataset" `Quick test_known_stats;
        Alcotest.test_case "weighted mean" `Quick test_weighted_mean;
        Alcotest.test_case "zero weight ignored" `Quick test_zero_weight_ignored;
        Alcotest.test_case "negative weight rejected" `Quick test_negative_weight_rejected;
        Alcotest.test_case "merge = pooled" `Quick test_merge_equivalent;
        Alcotest.test_case "merge with empty" `Quick test_merge_with_empty;
        Alcotest.test_case "CI shrinks with n" `Quick test_ci_shrinks;
      ] );
  ]

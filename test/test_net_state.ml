module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Net_state = Drtp.Net_state
module Resources = Drtp.Resources
module Aplv = Drtp.Aplv

(* 3x3 mesh:   0 - 1 - 2
               |   |   |
               3 - 4 - 5
               |   |   |
               6 - 7 - 8 *)
let mesh () = Dr_topo.Gen.mesh ~rows:3 ~cols:3

let state ?(capacity = 10) ?(policy = Net_state.Multiplexed) () =
  let graph = mesh () in
  (graph, Net_state.create ~graph ~capacity ~spare_policy:policy)

let path g nodes = Path.of_nodes g nodes

let link g a b = Option.get (Graph.find_link g ~src:a ~dst:b)

let check_inv state =
  match Net_state.check_invariants state with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant violated: %s" msg

let test_admit_reserves () =
  let g, st = state () in
  let primary = path g [ 0; 1; 2 ] and backup = path g [ 0; 3; 4; 5; 2 ] in
  let conn = Net_state.admit st ~id:1 ~bw:2 ~primary ~backups:[ backup ] in
  Alcotest.(check bool) "not degraded" false conn.Net_state.degraded;
  let r = Net_state.resources st in
  List.iter
    (fun l -> Alcotest.(check int) "prime on primary links" 2 (Resources.prime_bw r l))
    (Path.links primary);
  List.iter
    (fun l -> Alcotest.(check int) "spare on backup links" 2 (Resources.spare_bw r l))
    (Path.links backup);
  Alcotest.(check int) "active" 1 (Net_state.active_count st);
  check_inv st

let test_admit_without_backup () =
  let g, st = state () in
  let primary = path g [ 0; 1 ] in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary ~backups:[]);
  Alcotest.(check int) "no spare anywhere" 0 (Resources.total_spare (Net_state.resources st));
  check_inv st

let test_multiplexing_disjoint_primaries () =
  let g, st = state () in
  (* P1 = top row, P2 = middle row (disjoint); both backups use the bottom
     corridor. *)
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2; 5; 8 ])
       ~backups:[ path g [ 0; 3; 6; 7; 8 ] ]);
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 3; 4; 5 ])
       ~backups:[ path g [ 3; 6; 7; 8; 5 ] ]);
  let shared = link g 6 7 in
  Alcotest.(check int) "two backups on shared link" 2
    (Net_state.backup_count_on_link st ~link:shared);
  Alcotest.(check int) "but spare for one (safe multiplexing)" 1
    (Net_state.spare_required st ~link:shared);
  Alcotest.(check int) "spare actually reserved" 1
    (Resources.spare_bw (Net_state.resources st) shared);
  check_inv st

let test_conflicting_primaries_need_more_spare () =
  let g, st = state () in
  (* Both primaries cross edge (1,2); both backups cross link 3->4. *)
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 1; 2; 5 ])
       ~backups:[ path g [ 1; 4; 5 ] ]);
  (* Conflicting pair on link 4->5. *)
  let contended = link g 4 5 in
  Alcotest.(check int) "spare for two" 2 (Net_state.spare_required st ~link:contended);
  Alcotest.(check int) "deficit zero (capacity suffices)" 0
    (Net_state.spare_deficit st ~link:contended);
  check_inv st

let test_release_returns_everything () =
  let g, st = state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:3 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  Net_state.release st ~id:1;
  let r = Net_state.resources st in
  Alcotest.(check int) "no prime" 0 (Resources.total_prime r);
  Alcotest.(check int) "no spare" 0 (Resources.total_spare r);
  Alcotest.(check int) "no conns" 0 (Net_state.active_count st);
  Graph.iter_links g (fun l ->
      Alcotest.(check int) "APLV empty" 0 (Aplv.norm1 (Net_state.aplv st l)));
  check_inv st

let test_release_unknown () =
  let _, st = state () in
  Alcotest.(check bool) "raises" true
    (try Net_state.release st ~id:9; false with Invalid_argument _ -> true)

let test_admit_duplicate_id () =
  let g, st = state () in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1 ]) ~backups:[]);
  Alcotest.(check bool) "duplicate id raises" true
    (try
       ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 3; 4 ]) ~backups:[]);
       false
     with Invalid_argument _ -> true)

let test_admit_infeasible_primary () =
  let g, st = state ~capacity:2 () in
  ignore (Net_state.admit st ~id:1 ~bw:2 ~primary:(path g [ 0; 1 ]) ~backups:[]);
  Alcotest.(check bool) "full link raises" true
    (try
       ignore (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 0; 1; 2 ]) ~backups:[]);
       false
     with Invalid_argument _ -> true)

let test_degraded_when_no_room_for_spare () =
  let g, st = state ~capacity:2 () in
  (* Fill link 3->4 with primaries so its spare pool cannot grow. *)
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 3; 4 ]) ~backups:[]);
  ignore (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 3; 4; 7 ]) ~backups:[]);
  (* Conn 3's backup runs through the full link: available_for_backup = 0
     there, so admission must refuse it outright. *)
  Alcotest.(check bool) "backup on full link rejected" true
    (try
       ignore
         (Net_state.admit st ~id:3 ~bw:1 ~primary:(path g [ 0; 1 ])
            ~backups:[ path g [ 0; 3; 4; 1 ] ]);
       false
     with Invalid_argument _ -> true);
  (* Now a link where prime = 1, spare = 1 and a conflicting second backup
     wants spare 2: the grow fails, the connection is degraded. *)
  let _, st = state ~capacity:2 () in
  let g = Net_state.graph st in
  ignore (Net_state.admit st ~id:10 ~bw:1 ~primary:(path g [ 3; 4 ]) ~backups:[]);
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  let c2 =
    Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 0; 1; 4 ])
      ~backups:[ path g [ 0; 3; 4 ] ]
  in
  Alcotest.(check bool) "conflicting backup degraded" true c2.Net_state.degraded;
  Alcotest.(check int) "deficit recorded" 1
    (Net_state.spare_deficit st ~link:(link g 0 3) + Net_state.spare_deficit st ~link:(link g 3 4));
  check_inv st

let test_deficit_reclaimed_after_release () =
  let g, st = state ~capacity:2 () in
  (* Occupy link 0->3 with a primary, then create a conflicting backup pair
     needing 2 spare units there; one unit short -> deficit. *)
  ignore (Net_state.admit st ~id:10 ~bw:1 ~primary:(path g [ 0; 3 ]) ~backups:[]);
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 0; 1; 4 ])
       ~backups:[ path g [ 0; 3; 4 ] ]);
  let l03 = link g 0 3 in
  Alcotest.(check int) "deficit present" 1 (Net_state.spare_deficit st ~link:l03);
  (* Releasing the occupying primary frees a unit, which must flow into the
     deficient spare pool (§5 last paragraph). *)
  Net_state.release st ~id:10;
  Alcotest.(check int) "deficit repaired" 0 (Net_state.spare_deficit st ~link:l03);
  Alcotest.(check int) "spare now 2" 2 (Resources.spare_bw (Net_state.resources st) l03);
  check_inv st

let test_dedicated_policy () =
  let g, st = state ~policy:Net_state.Dedicated () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2; 5; 8 ])
       ~backups:[ path g [ 0; 3; 6; 7; 8 ] ]);
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 3; 4; 5 ])
       ~backups:[ path g [ 3; 6; 7; 8; 5 ] ]);
  let shared = link g 6 7 in
  Alcotest.(check int) "dedicated: spare for each backup" 2
    (Net_state.spare_required st ~link:shared);
  check_inv st

let test_primaries_crossing_edge () =
  let g, st = state () in
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 0; 1; 2 ]) ~backups:[]);
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 2; 1; 0; 3 ]) ~backups:[]);
  ignore (Net_state.admit st ~id:3 ~bw:1 ~primary:(path g [ 6; 7 ]) ~backups:[]);
  let edge01 = Graph.edge_of_link (link g 0 1) in
  let ids =
    List.map (fun c -> c.Net_state.id) (Net_state.primaries_crossing_edge st edge01)
  in
  Alcotest.(check (list int)) "both directions counted, sorted" [ 1; 2 ] ids

let test_promote_backup () =
  let g, st = state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:2 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  Alcotest.(check bool) "activation feasible" true (Net_state.activation_feasible st ~id:1 ());
  Net_state.promote_backup st ~id:1 ();
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check (list int)) "backup became primary" [ 0; 3; 4; 5; 2 ]
    (Path.nodes g conn.Net_state.primary);
  Alcotest.(check bool) "no backup left" true (conn.Net_state.backups = []);
  let r = Net_state.resources st in
  List.iter
    (fun l -> Alcotest.(check int) "new primary reserved" 2 (Resources.prime_bw r l))
    (Path.links conn.Net_state.primary);
  Alcotest.(check int) "old primary links free" 0 (Resources.prime_bw r (link g 0 1));
  Alcotest.(check int) "no spare left" 0 (Resources.total_spare r);
  (* The index must follow the new primary. *)
  let edge34 = Graph.edge_of_link (link g 3 4) in
  Alcotest.(check int) "index updated" 1
    (List.length (Net_state.primaries_crossing_edge st edge34));
  check_inv st

let test_promote_without_backup_rejected () =
  let g, st = state () in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1 ]) ~backups:[]);
  Alcotest.(check bool) "raises" true
    (try Net_state.promote_backup st ~id:1 (); false with Invalid_argument _ -> true)

let test_replace_backup () =
  let g, st = state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  Net_state.replace_backups st ~id:1 ~backups:[ path g [ 0; 3; 4; 1; 2 ] ];
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check (list int)) "new backup installed" [ 0; 3; 4; 1; 2 ]
    (Path.nodes g (List.hd conn.Net_state.backups));
  Alcotest.(check int) "old backup link spare gone" 0
    (Resources.spare_bw (Net_state.resources st) (link g 4 5));
  check_inv st;
  Net_state.replace_backups st ~id:1 ~backups:[];
  Alcotest.(check int) "unprotected: no spare" 0
    (Resources.total_spare (Net_state.resources st));
  check_inv st

let test_fail_restore_edge () =
  let g, st = state () in
  let e = Graph.edge_of_link (link g 0 1) in
  Alcotest.(check bool) "initially alive" false (Net_state.edge_failed st ~edge:e);
  Net_state.fail_edge st ~edge:e;
  Alcotest.(check bool) "failed" true (Net_state.edge_failed st ~edge:e);
  Net_state.restore_edge st ~edge:e;
  Alcotest.(check bool) "restored" false (Net_state.edge_failed st ~edge:e)

let test_drop () =
  let g, st = state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  Net_state.drop st ~id:1;
  Alcotest.(check int) "gone" 0 (Net_state.active_count st);
  Alcotest.(check int) "resources returned" 0
    (Resources.total_prime (Net_state.resources st));
  check_inv st

let suite =
  [
    ( "drtp.net_state",
      [
        Alcotest.test_case "admit reserves resources" `Quick test_admit_reserves;
        Alcotest.test_case "admit without backup" `Quick test_admit_without_backup;
        Alcotest.test_case "safe multiplexing (Fig 1, L8)" `Quick test_multiplexing_disjoint_primaries;
        Alcotest.test_case "conflict needs more spare (Fig 1, L7)" `Quick test_conflicting_primaries_need_more_spare;
        Alcotest.test_case "release returns everything" `Quick test_release_returns_everything;
        Alcotest.test_case "release unknown id" `Quick test_release_unknown;
        Alcotest.test_case "duplicate id rejected" `Quick test_admit_duplicate_id;
        Alcotest.test_case "infeasible primary rejected" `Quick test_admit_infeasible_primary;
        Alcotest.test_case "degraded on spare shortage" `Quick test_degraded_when_no_room_for_spare;
        Alcotest.test_case "deficit repaired by release (§5)" `Quick test_deficit_reclaimed_after_release;
        Alcotest.test_case "dedicated policy" `Quick test_dedicated_policy;
        Alcotest.test_case "primaries_crossing_edge" `Quick test_primaries_crossing_edge;
        Alcotest.test_case "promote backup (DRTP step 3)" `Quick test_promote_backup;
        Alcotest.test_case "promote without backup" `Quick test_promote_without_backup_rejected;
        Alcotest.test_case "replace backup (DRTP step 4)" `Quick test_replace_backup;
        Alcotest.test_case "fail/restore edge" `Quick test_fail_restore_edge;
        Alcotest.test_case "drop" `Quick test_drop;
      ] );
  ]

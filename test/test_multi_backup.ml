(* Multi-backup semantics: the paper's "one primary and one or more backup
   channels".  These tests exercise two backups end to end: routing,
   registration, activation priority, contention fallback to the second
   backup, promotion with surviving backups, and reconfiguration. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing
module Resources = Drtp.Resources
module FE = Drtp.Failure_eval

(* The double ring has three edge-disjoint paths between opposite nodes, so
   a primary plus two mutually disjoint backups exist. *)
let ring_state ?(capacity = 10) () =
  let graph = Dr_topo.Gen.double_ring 8 in
  (graph, Net_state.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed)

let mesh_state ?(capacity = 10) () =
  let graph = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  (graph, Net_state.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed)

let path g nodes = Path.of_nodes g nodes
let edge g a b = Graph.edge_of_link (Option.get (Graph.find_link g ~src:a ~dst:b))

let check_inv st =
  match Net_state.check_invariants st with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant violated: %s" msg

let test_find_two_disjoint_backups () =
  let _, st = ring_state () in
  let g = Net_state.graph st in
  let primary = Option.get (Routing.find_primary st ~src:0 ~dst:4 ~bw:1) in
  let backups = Routing.find_backups Routing.Dlsr st ~primary ~bw:1 ~count:2 in
  Alcotest.(check int) "two backups found" 2 (List.length backups);
  match backups with
  | [ b1; b2 ] ->
      Alcotest.(check int) "b1 disjoint from primary" 0 (Path.edge_overlap b1 primary);
      Alcotest.(check int) "b2 disjoint from primary" 0 (Path.edge_overlap b2 primary);
      Alcotest.(check int) "b1 disjoint from b2" 0 (Path.edge_overlap b1 b2);
      Alcotest.(check bool) "all simple" true
        (Path.is_simple g b1 && Path.is_simple g b2)
  | _ -> Alcotest.fail "expected two"

let test_count_capped_by_topology () =
  (* A ring only has two edge-disjoint routes; the third request must come
     back empty-handed rather than overlap. *)
  let graph = Dr_topo.Gen.ring 6 in
  let st = Net_state.create ~graph ~capacity:10 ~spare_policy:Net_state.Multiplexed in
  let primary = Path.of_nodes graph [ 0; 1; 2; 3 ] in
  let backups = Routing.find_backups Routing.Dlsr st ~primary ~bw:1 ~count:3 in
  (* The second "backup" can only repeat one of the existing routes modulo
     Q-penalties; the dedup rule stops the enumeration. *)
  Alcotest.(check int) "only one extra disjoint route exists" 1 (List.length backups)

let test_admit_registers_both () =
  let _, st = ring_state () in
  let g = Net_state.graph st in
  let primary = path g [ 0; 1; 2; 3; 4 ] in
  let b1 = path g [ 0; 7; 6; 5; 4 ] in
  let b2 = path g [ 0; 4 ] in
  let conn = Net_state.admit st ~id:1 ~bw:1 ~primary ~backups:[ b1; b2 ] in
  Alcotest.(check int) "two backups stored" 2 (List.length conn.Net_state.backups);
  let r = Net_state.resources st in
  List.iter
    (fun b ->
      List.iter
        (fun l -> Alcotest.(check int) "spare on every backup link" 1 (Resources.spare_bw r l))
        (Path.links b))
    [ b1; b2 ];
  check_inv st;
  Net_state.release st ~id:1;
  Alcotest.(check int) "everything returned" 0 (Resources.total_spare r);
  check_inv st

let test_failure_eval_uses_second_backup () =
  let _, st = ring_state () in
  let g = Net_state.graph st in
  let primary = path g [ 0; 1; 2; 3; 4 ] in
  (* First backup deliberately overlaps the primary on edge (0,1); second is
     disjoint.  A failure of (0,1) must fall through to the second. *)
  let b1 = path g [ 0; 1; 5; 4 ] in
  let b2 = path g [ 0; 7; 6; 5; 4 ] in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary ~backups:[ b1; b2 ]);
  let o = FE.evaluate_edge st ~edge:(edge g 0 1) in
  Alcotest.(check int) "affected" 1 o.FE.affected;
  Alcotest.(check int) "activated via second backup" 1 o.FE.activated;
  (* Failure elsewhere on the primary: the first backup works. *)
  let o2 = FE.evaluate_edge st ~edge:(edge g 2 3) in
  Alcotest.(check int) "first backup suffices" 1 o2.FE.activated

let test_second_backup_rescues_contention () =
  (* Two connections whose primaries share edge (0,1) and whose first
     backups both need the starved link 3->4 (spare for one): on a failure
     of (0,1), connection 1 wins the spare, and connection 2 only survives
     through its second backup. *)
  let _, st = mesh_state ~capacity:2 () in
  let g = Net_state.graph st in
  ignore (Net_state.admit st ~id:10 ~bw:1 ~primary:(path g [ 3; 4 ]) ~backups:[]);
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  let with_second_backup = [ path g [ 0; 3; 4 ]; path g [ 0; 3; 6; 7; 4 ] ] in
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 0; 1; 4 ])
       ~backups:with_second_backup);
  Alcotest.(check int) "3->4 spare is short by one"
    1 (Net_state.spare_deficit st ~link:(Option.get (Graph.find_link g ~src:3 ~dst:4)));
  let o = FE.evaluate_edge st ~edge:(edge g 0 1) in
  Alcotest.(check int) "both affected" 2 o.FE.affected;
  Alcotest.(check int) "both survive thanks to the second backup" 2 o.FE.activated;
  check_inv st;
  (* Counterfactual: without the second backup, one of them dies. *)
  Net_state.replace_backups st ~id:2 ~backups:[ path g [ 0; 3; 4 ] ];
  let o2 = FE.evaluate_edge st ~edge:(edge g 0 1) in
  Alcotest.(check int) "only one survives without it" 1 o2.FE.activated

let test_promote_keeps_surviving_backup () =
  let _, st = ring_state () in
  let g = Net_state.graph st in
  let primary = path g [ 0; 1; 2; 3; 4 ] in
  let b1 = path g [ 0; 7; 6; 5; 4 ] in
  let b2 = path g [ 0; 4 ] in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary ~backups:[ b1; b2 ]);
  Net_state.promote_backup st ~id:1 ~index:0 ();
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check (list int)) "b1 became primary" (Path.nodes g b1)
    (Path.nodes g conn.Net_state.primary);
  Alcotest.(check int) "b2 still protects" 1 (List.length conn.Net_state.backups);
  Alcotest.(check (list int)) "and it is b2" (Path.nodes g b2)
    (Path.nodes g (List.hd conn.Net_state.backups));
  check_inv st

let test_promote_second_backup_directly () =
  let _, st = ring_state () in
  let g = Net_state.graph st in
  let primary = path g [ 0; 1; 2; 3; 4 ] in
  let b1 = path g [ 0; 7; 6; 5; 4 ] in
  let b2 = path g [ 0; 4 ] in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary ~backups:[ b1; b2 ]);
  Alcotest.(check bool) "index 1 feasible" true
    (Net_state.activation_feasible st ~id:1 ~index:1 ());
  Net_state.promote_backup st ~id:1 ~index:1 ();
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check (list int)) "b2 became primary" (Path.nodes g b2)
    (Path.nodes g conn.Net_state.primary);
  Alcotest.(check (list int)) "b1 kept as backup" (Path.nodes g b1)
    (Path.nodes g (List.hd conn.Net_state.backups));
  check_inv st

let test_replace_backups_multi () =
  let _, st = ring_state () in
  let g = Net_state.graph st in
  let primary = path g [ 0; 1; 2; 3; 4 ] in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary ~backups:[ path g [ 0; 4 ] ]);
  Net_state.replace_backups st ~id:1
    ~backups:[ path g [ 0; 7; 6; 5; 4 ]; path g [ 0; 4 ] ];
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check int) "two backups now" 2 (List.length conn.Net_state.backups);
  check_inv st

let test_route_fn_backup_count () =
  let _, st = ring_state () in
  let fn = Routing.link_state_route_fn ~backup_count:2 Routing.Dlsr ~with_backup:true in
  match fn st ~src:0 ~dst:4 ~bw:1 with
  | Ok { Routing.backups; _ } -> Alcotest.(check int) "two backups" 2 (List.length backups)
  | Error _ -> Alcotest.fail "acceptance expected"

let test_drtp_recovery_with_two_backups () =
  let _, st = ring_state () in
  let g = Net_state.graph st in
  let primary = path g [ 0; 1; 2; 3; 4 ] in
  let b1 = path g [ 0; 7; 6; 5; 4 ] in
  let b2 = path g [ 0; 4 ] in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary ~backups:[ b1; b2 ]);
  let report =
    Drtp.Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~backup_count:2
      ~edge:(edge g 1 2) ()
  in
  (match report.Drtp.Recovery.outcomes with
  | [ (1, Drtp.Recovery.Switched { reprotected; _ }) ] ->
      Alcotest.(check bool) "still protected" true reprotected
  | _ -> Alcotest.fail "expected switch");
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check bool) "kept at least one backup" true
    (List.length conn.Net_state.backups >= 1);
  check_inv st

let test_dual_backup_ft_dominates_single () =
  (* Random workload on a well-connected graph: two backups can only help
     the snapshot fault-tolerance. *)
  let rng = Dr_rng.Splitmix64.create 11 in
  let graph = Dr_topo.Gen.waxman ~rng ~n:30 ~avg_degree:4.0 () in
  let run backup_count =
    let manager =
      Drtp.Manager.create ~graph ~capacity:30 ~spare_policy:Net_state.Multiplexed
        ~route:(Routing.link_state_route_fn ~backup_count Routing.Dlsr ~with_backup:true)
    in
    let spec =
      {
        Dr_sim.Workload.arrival_rate = 0.4;
        horizon = 800.0;
        lifetime_lo = 400.0;
        lifetime_hi = 900.0;
        bw = Dr_sim.Workload.constant_bw 1;
        pattern = Dr_sim.Workload.Uniform;
      }
    in
    let scenario = Dr_sim.Workload.generate (Dr_rng.Splitmix64.create 12) ~node_count:30 spec in
    let items = Dr_sim.Scenario.items scenario in
    Array.iter
      (fun item ->
        if item.Dr_sim.Scenario.time <= 800.0 then Drtp.Manager.apply manager item)
      items;
    let state = Drtp.Manager.state manager in
    (match Net_state.check_invariants state with
    | Ok () -> ()
    | Error m -> Alcotest.failf "invariants: %s" m);
    FE.fault_tolerance (FE.evaluate state)
  in
  let ft1 = run 1 and ft2 = run 2 in
  Alcotest.(check bool)
    (Printf.sprintf "ft with 2 backups (%.4f) >= ft with 1 (%.4f)" ft2 ft1)
    true
    (ft2 >= ft1 -. 0.005)

let suite =
  [
    ( "drtp.multi_backup",
      [
        Alcotest.test_case "find two disjoint backups" `Quick test_find_two_disjoint_backups;
        Alcotest.test_case "count capped by topology" `Quick test_count_capped_by_topology;
        Alcotest.test_case "admit registers both" `Quick test_admit_registers_both;
        Alcotest.test_case "failure eval falls through" `Quick test_failure_eval_uses_second_backup;
        Alcotest.test_case "second backup rescues contention" `Quick test_second_backup_rescues_contention;
        Alcotest.test_case "promotion keeps survivor" `Quick test_promote_keeps_surviving_backup;
        Alcotest.test_case "promote second backup" `Quick test_promote_second_backup_directly;
        Alcotest.test_case "replace with two" `Quick test_replace_backups_multi;
        Alcotest.test_case "route_fn backup_count" `Quick test_route_fn_backup_count;
        Alcotest.test_case "recovery with two backups" `Quick test_drtp_recovery_with_two_backups;
        Alcotest.test_case "dual-backup FT dominates" `Slow test_dual_backup_ft_dominates_single;
      ] );
  ]

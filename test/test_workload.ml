module Workload = Dr_sim.Workload
module Scenario = Dr_sim.Scenario
module Rng = Dr_rng.Splitmix64

let spec ?(rate = 0.1) ?(pattern = Workload.Uniform) () =
  {
    Workload.arrival_rate = rate;
    horizon = 10_000.0;
    lifetime_lo = 100.0;
    lifetime_hi = 200.0;
    bw = Workload.constant_bw 1;
    pattern;
  }

let test_request_release_pairing () =
  let s = Workload.generate (Rng.create 1) ~node_count:10 (spec ()) in
  let requests = Hashtbl.create 64 in
  Scenario.iter s (fun item ->
      match item.Scenario.event with
      | Scenario.Request { conn; duration; _ } ->
          Hashtbl.add requests conn (item.Scenario.time, duration)
      | Scenario.Release { conn } ->
          let t_req, duration = Hashtbl.find requests conn in
          Alcotest.(check (float 1e-6)) "release = request + lifetime"
            (t_req +. duration) item.Scenario.time);
  Alcotest.(check bool) "some requests generated" true (Hashtbl.length requests > 0)

let test_arrival_count () =
  (* rate 0.1/s over 10000 s -> ~1000 arrivals *)
  let s = Workload.generate (Rng.create 2) ~node_count:10 (spec ()) in
  let n = Scenario.request_count s in
  Alcotest.(check bool) (Printf.sprintf "%d near 1000" n) true (n > 850 && n < 1150)

let test_lifetimes_in_range () =
  let s = Workload.generate (Rng.create 3) ~node_count:10 (spec ()) in
  Scenario.iter s (fun item ->
      match item.Scenario.event with
      | Scenario.Request { duration; _ } ->
          Alcotest.(check bool) "lifetime in [100,200]" true
            (duration >= 100.0 && duration <= 200.0)
      | Scenario.Release _ -> ())

let test_endpoints_valid () =
  let s = Workload.generate (Rng.create 4) ~node_count:7 (spec ()) in
  Scenario.iter s (fun item ->
      match item.Scenario.event with
      | Scenario.Request { src; dst; _ } ->
          Alcotest.(check bool) "valid endpoints" true
            (src <> dst && src >= 0 && src < 7 && dst >= 0 && dst < 7)
      | Scenario.Release _ -> ())

let test_deterministic () =
  let s1 = Workload.generate (Rng.create 5) ~node_count:10 (spec ()) in
  let s2 = Workload.generate (Rng.create 5) ~node_count:10 (spec ()) in
  Alcotest.(check string) "same seed, same scenario" (Scenario.to_string s1)
    (Scenario.to_string s2)

let test_hotspot_concentration () =
  let rng = Rng.create 6 in
  let pattern = Workload.hotspot_pattern rng ~node_count:50 ~hotspots:5 ~fraction:0.5 in
  let hotspots =
    match pattern with
    | Workload.Hotspot { destinations; _ } -> destinations
    | Workload.Uniform -> Alcotest.fail "expected hotspot pattern"
  in
  Alcotest.(check int) "five hotspots" 5 (Array.length hotspots);
  let s = Workload.generate rng ~node_count:50 (spec ~rate:0.5 ~pattern ()) in
  let hot = ref 0 and total = ref 0 in
  Scenario.iter s (fun item ->
      match item.Scenario.event with
      | Scenario.Request { dst; _ } ->
          incr total;
          if Array.exists (fun h -> h = dst) hotspots then incr hot
      | Scenario.Release _ -> ());
  let frac = float_of_int !hot /. float_of_int !total in
  (* 50% directed + 10% of the uniform half by chance = ~55% *)
  Alcotest.(check bool)
    (Printf.sprintf "hotspot fraction %.2f in [0.48, 0.62]" frac)
    true
    (frac > 0.48 && frac < 0.62)

let test_uniform_spread () =
  let s = Workload.generate (Rng.create 7) ~node_count:20 (spec ~rate:0.5 ()) in
  let dst_counts = Array.make 20 0 in
  Scenario.iter s (fun item ->
      match item.Scenario.event with
      | Scenario.Request { dst; _ } -> dst_counts.(dst) <- dst_counts.(dst) + 1
      | Scenario.Release _ -> ());
  Array.iteri
    (fun i c -> Alcotest.(check bool) (Printf.sprintf "node %d targeted" i) true (c > 0))
    dst_counts

let test_validation () =
  let invalid s =
    try ignore (Workload.generate (Rng.create 8) ~node_count:10 s); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "zero rate" true (invalid { (spec ()) with Workload.arrival_rate = 0.0 });
  Alcotest.(check bool) "bad lifetimes" true
    (invalid { (spec ()) with Workload.lifetime_hi = 1.0 });
  Alcotest.(check bool) "zero bw" true
    (invalid { (spec ()) with Workload.bw = Workload.constant_bw 0 });
  Alcotest.(check bool) "empty class list" true
    (invalid { (spec ()) with Workload.bw = Workload.Classes [] });
  Alcotest.(check bool) "negative class weight" true
    (invalid { (spec ()) with Workload.bw = Workload.Classes [ (1, -0.5) ] });
  Alcotest.(check bool) "hotspot out of range" true
    (invalid
       {
         (spec ()) with
         Workload.pattern = Workload.Hotspot { destinations = [| 99 |]; fraction = 0.5 };
       })

let test_bandwidth_classes () =
  let pattern = Workload.Uniform in
  let spec =
    {
      (spec ~rate:0.5 ~pattern ()) with
      Workload.bw = Workload.Classes [ (1, 0.7); (4, 0.3) ];
    }
  in
  let s = Workload.generate (Rng.create 9) ~node_count:10 spec in
  let audio = ref 0 and video = ref 0 in
  Scenario.iter s (fun item ->
      match item.Scenario.event with
      | Scenario.Request { bw; _ } ->
          if bw = 1 then incr audio
          else if bw = 4 then incr video
          else Alcotest.failf "unexpected class %d" bw
      | Scenario.Release _ -> ());
  let total = !audio + !video in
  let video_frac = float_of_int !video /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "video fraction %.2f near 0.3" video_frac)
    true
    (video_frac > 0.22 && video_frac < 0.38)

let test_mixed_classes_through_manager () =
  (* Heterogeneous bandwidths exercise the weighted multiplexing rule:
     replay a mixed workload and check the deep invariants. *)
  let rng = Rng.create 31 in
  let graph = Dr_topo.Gen.waxman ~rng ~n:20 ~avg_degree:3.5 () in
  let manager =
    Drtp.Manager.create ~graph ~capacity:20
      ~spare_policy:Drtp.Net_state.Multiplexed
      ~route:
        (Drtp.Routing.link_state_route_fn Drtp.Routing.Dlsr ~with_backup:true)
  in
  let spec =
    {
      Workload.arrival_rate = 0.4;
      horizon = 600.0;
      lifetime_lo = 100.0;
      lifetime_hi = 400.0;
      bw = Workload.Classes [ (1, 0.7); (4, 0.3) ];
      pattern = Workload.Uniform;
    }
  in
  let s = Workload.generate rng ~node_count:20 spec in
  Drtp.Manager.run manager s;
  Alcotest.(check bool) "invariants hold under mixed classes" true
    (Drtp.Net_state.check_invariants (Drtp.Manager.state manager) = Ok ());
  let stats = Drtp.Manager.stats manager in
  Alcotest.(check bool) "some accepted" true (stats.Drtp.Manager.accepted > 0)

let test_paper_defaults () =
  Alcotest.(check (float 1e-9)) "20 min" 1200.0 Workload.default_lifetime_lo;
  Alcotest.(check (float 1e-9)) "60 min" 3600.0 Workload.default_lifetime_hi

let suite =
  [
    ( "eventsim.workload",
      [
        Alcotest.test_case "request/release pairing" `Quick test_request_release_pairing;
        Alcotest.test_case "poisson arrival count" `Quick test_arrival_count;
        Alcotest.test_case "lifetimes in range" `Quick test_lifetimes_in_range;
        Alcotest.test_case "endpoints valid" `Quick test_endpoints_valid;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "NT hotspot concentration" `Quick test_hotspot_concentration;
        Alcotest.test_case "UT spread" `Quick test_uniform_spread;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "bandwidth classes" `Quick test_bandwidth_classes;
        Alcotest.test_case "mixed classes end-to-end" `Quick test_mixed_classes_through_manager;
        Alcotest.test_case "paper lifetime defaults" `Quick test_paper_defaults;
      ] );
  ]

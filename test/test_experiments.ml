module Config = Dr_exp.Config
module Runner = Dr_exp.Runner
module Sweep = Dr_exp.Sweep

(* A miniature configuration so experiment plumbing tests stay fast. *)
let tiny_cfg =
  {
    Config.default with
    Config.warmup = 600.0;
    horizon = 1800.0;
    sample_every = 300.0;
    lifetime_lo = 300.0;
    lifetime_hi = 600.0;
  }

let tiny_graph = lazy (Config.make_graph tiny_cfg ~avg_degree:3.0)

let run_tiny scheme ~lambda =
  let graph = Lazy.force tiny_graph in
  let scenario = Config.make_scenario tiny_cfg Config.UT ~lambda in
  Runner.run tiny_cfg ~graph ~scenario ~scheme

let test_traffic_parsing () =
  Alcotest.(check bool) "UT" true (Config.traffic_of_string "ut" = Ok Config.UT);
  Alcotest.(check bool) "NT" true (Config.traffic_of_string "NT" = Ok Config.NT);
  Alcotest.(check bool) "junk" true
    (match Config.traffic_of_string "xx" with Error _ -> true | Ok _ -> false)

let test_lambda_sweeps () =
  Alcotest.(check (list (float 1e-9))) "E=3 sweep" [ 0.2; 0.3; 0.4; 0.5; 0.6; 0.7 ]
    (Config.lambdas_for_degree 3.0);
  Alcotest.(check bool) "E=4 sweep reaches 1.0" true
    (List.mem 1.0 (Config.lambdas_for_degree 4.0))

let test_graph_determinism () =
  let g1 = Config.make_graph tiny_cfg ~avg_degree:3.0 in
  let g2 = Config.make_graph tiny_cfg ~avg_degree:3.0 in
  Alcotest.(check int) "same edge count" (Dr_topo.Graph.edge_count g1)
    (Dr_topo.Graph.edge_count g2);
  Alcotest.(check int) "60 nodes" 60 (Dr_topo.Graph.node_count g1);
  Alcotest.(check bool) "2-edge-connected" true
    (Dr_topo.Connectivity.is_two_edge_connected g1)

let test_scenario_determinism () =
  let s1 = Config.make_scenario tiny_cfg Config.UT ~lambda:0.3 in
  let s2 = Config.make_scenario tiny_cfg Config.UT ~lambda:0.3 in
  Alcotest.(check string) "identical scenario files" (Dr_sim.Scenario.to_string s1)
    (Dr_sim.Scenario.to_string s2);
  let s3 = Config.make_scenario tiny_cfg Config.NT ~lambda:0.3 in
  Alcotest.(check bool) "NT differs" false
    (Dr_sim.Scenario.to_string s1 = Dr_sim.Scenario.to_string s3)

let test_runner_measurement_sanity () =
  let m = run_tiny (Runner.Lsr Drtp.Routing.Dlsr) ~lambda:0.3 in
  Alcotest.(check bool) "requests seen" true (m.Runner.requests > 0);
  Alcotest.(check bool) "snapshots taken" true (m.Runner.snapshots >= 4);
  Alcotest.(check bool) "ft in [0,1]" true
    (m.Runner.ft_overall >= 0.0 && m.Runner.ft_overall <= 1.0);
  Alcotest.(check bool) "active connections positive" true (m.Runner.avg_active > 0.0);
  Alcotest.(check bool) "acceptance in (0,1]" true
    (m.Runner.acceptance > 0.0 && m.Runner.acceptance <= 1.0);
  Alcotest.(check bool) "hops sane" true
    (m.Runner.avg_primary_hops >= 1.0 && m.Runner.avg_backup_hops >= m.Runner.avg_primary_hops)

let test_runner_deterministic () =
  let m1 = run_tiny (Runner.Lsr Drtp.Routing.Plsr) ~lambda:0.3 in
  let m2 = run_tiny (Runner.Lsr Drtp.Routing.Plsr) ~lambda:0.3 in
  Alcotest.(check (float 1e-12)) "same ft" m1.Runner.ft_overall m2.Runner.ft_overall;
  Alcotest.(check (float 1e-9)) "same active" m1.Runner.avg_active m2.Runner.avg_active

let test_no_backup_baseline () =
  let m = run_tiny Runner.No_backup ~lambda:0.3 in
  Alcotest.(check int) "never rejected for backup" 0 m.Runner.rejected_no_backup;
  Alcotest.(check (float 1e-9)) "no spare" 0.0 m.Runner.avg_spare_fraction;
  Alcotest.(check (float 1e-9)) "no backup hops" 0.0 m.Runner.avg_backup_hops

let test_backup_scheme_uses_more_capacity () =
  let base = run_tiny Runner.No_backup ~lambda:0.3 in
  let dlsr = run_tiny (Runner.Lsr Drtp.Routing.Dlsr) ~lambda:0.3 in
  Alcotest.(check bool) "spare reserved" true (dlsr.Runner.avg_spare_fraction > 0.0);
  Alcotest.(check bool) "active count not higher than baseline" true
    (dlsr.Runner.avg_active <= base.Runner.avg_active +. 1e-9)

let test_bf_counts_messages () =
  let m = run_tiny (Runner.Bf Dr_flood.Bounded_flood.default_config) ~lambda:0.2 in
  (match m.Runner.flood_messages_per_request with
  | Some v -> Alcotest.(check bool) "positive message count" true (v > 0.0)
  | None -> Alcotest.fail "BF must report message counts");
  Alcotest.(check bool) "BF admits some unprotected connections" true
    (m.Runner.unprotected > 0);
  let lsr_m = run_tiny (Runner.Lsr Drtp.Routing.Dlsr) ~lambda:0.2 in
  Alcotest.(check int) "LSR never unprotected" 0 lsr_m.Runner.unprotected

let test_dedicated_reserves_more () =
  let mux = run_tiny (Runner.Lsr Drtp.Routing.Dlsr) ~lambda:0.3 in
  let ded = run_tiny (Runner.Lsr_dedicated Drtp.Routing.Dlsr) ~lambda:0.3 in
  Alcotest.(check bool) "dedicated spare exceeds multiplexed" true
    (ded.Runner.avg_spare_fraction > mux.Runner.avg_spare_fraction)

let test_backup_count_ablation () =
  let rows =
    Dr_exp.Ablation.backup_count tiny_cfg ~avg_degree:3.0 ~traffic:Config.UT
      ~lambda:0.3 ~counts:[ 0; 1; 2 ] ()
  in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  match rows with
  | [ k0; k1; k2 ] ->
      Alcotest.(check int) "ordered" 0 k0.Dr_exp.Ablation.backups;
      Alcotest.(check bool) "k1 protects" true (k1.Dr_exp.Ablation.ft > 0.9);
      Alcotest.(check bool) "k2 edge-ft >= k1" true
        (k2.Dr_exp.Ablation.ft >= k1.Dr_exp.Ablation.ft -. 0.01);
      Alcotest.(check bool) "k2 node-ft >= k1" true
        (k2.Dr_exp.Ablation.node_ft >= k1.Dr_exp.Ablation.node_ft -. 0.01);
      Alcotest.(check bool) "k2 costs more" true
        (k2.Dr_exp.Ablation.overhead_pct >= k1.Dr_exp.Ablation.overhead_pct -. 1.0)
  | _ -> Alcotest.fail "unexpected rows"

let test_node_ft_measured () =
  let m = run_tiny (Runner.Lsr Drtp.Routing.Dlsr) ~lambda:0.3 in
  Alcotest.(check bool) "node ft in [0,1]" true
    (m.Runner.node_ft_overall >= 0.0 && m.Runner.node_ft_overall <= 1.0);
  Alcotest.(check bool) "node ft <= edge ft" true
    (m.Runner.node_ft_overall <= m.Runner.ft_overall +. 1e-9)

let test_replicate_aggregates () =
  let t =
    Dr_exp.Replicate.run tiny_cfg ~avg_degree:3.0 ~seeds:[ 0; 1 ]
      ~traffics:[ Config.UT ] ~lambdas:[ 0.3 ]
      ~schemes:[ Runner.Lsr Drtp.Routing.Dlsr ] ()
  in
  Alcotest.(check int) "one aggregated cell" 1 (List.length t.Dr_exp.Replicate.cells);
  let c = List.hd t.Dr_exp.Replicate.cells in
  Alcotest.(check int) "two observations" 2 (Dr_stats.Summary.count c.Dr_exp.Replicate.ft);
  let out = Format.asprintf "%a" Dr_exp.Replicate.print_figure4 t in
  Alcotest.(check bool) "renders with seeds count" true
    (Astring.String.is_infix ~affix:"2 seeds" out)

let test_replicate_dedupes_seeds () =
  (* A repeated seed replays the identical sweep; it must be counted once,
     not silently twice. *)
  let t =
    Dr_exp.Replicate.run tiny_cfg ~avg_degree:3.0 ~seeds:[ 0; 0; 1; 0 ]
      ~traffics:[ Config.UT ] ~lambdas:[ 0.3 ]
      ~schemes:[ Runner.Lsr Drtp.Routing.Dlsr ] ()
  in
  Alcotest.(check (list int)) "seeds deduped, first-occurrence order" [ 0; 1 ]
    t.Dr_exp.Replicate.seeds;
  let c = List.hd t.Dr_exp.Replicate.cells in
  Alcotest.(check int) "one observation per distinct seed" 2
    (Dr_stats.Summary.count c.Dr_exp.Replicate.ft)

let test_replicate_rejects_empty_seeds () =
  Alcotest.check_raises "empty seed list"
    (Invalid_argument "Replicate.run: need at least one seed") (fun () ->
      ignore
        (Dr_exp.Replicate.run tiny_cfg ~avg_degree:3.0 ~seeds:[]
           ~traffics:[ Config.UT ] ~lambdas:[ 0.3 ]
           ~schemes:[ Runner.Lsr Drtp.Routing.Dlsr ] ()))

let test_scheme_labels () =
  Alcotest.(check string) "dlsr" "D-LSR" (Runner.scheme_label (Runner.Lsr Drtp.Routing.Dlsr));
  Alcotest.(check string) "bf" "BF"
    (Runner.scheme_label (Runner.Bf Dr_flood.Bounded_flood.default_config));
  Alcotest.(check string) "baseline" "no-backup" (Runner.scheme_label Runner.No_backup);
  Alcotest.(check string) "k-backup" "D-LSR-k2"
    (Runner.scheme_label (Runner.Lsr_k (Drtp.Routing.Dlsr, 2)));
  Alcotest.(check int) "paper has three schemes" 3 (List.length Runner.paper_schemes)

let test_sweep_and_reports () =
  let sweep =
    Sweep.run tiny_cfg ~avg_degree:3.0 ~traffics:[ Config.UT ] ~lambdas:[ 0.3 ]
      ~schemes:[ Runner.Lsr Drtp.Routing.Dlsr; Runner.Bf Dr_flood.Bounded_flood.default_config ]
      ()
  in
  Alcotest.(check int) "two cells" 2 (List.length sweep.Sweep.cells);
  Alcotest.(check int) "min-hop + BF baselines" 2 (List.length sweep.Sweep.baselines);
  (match Sweep.find sweep ~traffic:Config.UT ~lambda:0.3 ~label:"D-LSR" with
  | None -> Alcotest.fail "cell lookup failed"
  | Some cell ->
      let ov = Sweep.capacity_overhead_pct cell in
      Alcotest.(check bool) "overhead in [-5, 60]" true (ov > -5.0 && ov < 60.0));
  (* Report rendering must produce the figure headers. *)
  let fig4 = Format.asprintf "%a" Dr_exp.Report.print_figure4 sweep in
  Alcotest.(check bool) "figure 4 header" true
    (Astring.String.is_infix ~affix:"Figure 4" fig4);
  let fig5 = Format.asprintf "%a" Dr_exp.Report.print_figure5 sweep in
  Alcotest.(check bool) "figure 5 header" true
    (Astring.String.is_infix ~affix:"Figure 5" fig5);
  let details = Format.asprintf "%a" Dr_exp.Report.print_details sweep in
  Alcotest.(check bool) "details mention D-LSR" true
    (Astring.String.is_infix ~affix:"D-LSR" details)

let test_table1_renders () =
  let s = Format.asprintf "%a" Config.pp_table1 tiny_cfg in
  Alcotest.(check bool) "mentions Waxman" true (Astring.String.is_infix ~affix:"Waxman" s);
  Alcotest.(check bool) "mentions lifetime" true
    (Astring.String.is_infix ~affix:"uniform" s)

let test_overhead_table () =
  let t = Dr_exp.Overhead.measure tiny_cfg ~avg_degree:3.0 ~traffic:Config.UT ~lambda:0.2 in
  Alcotest.(check bool) "bf messages positive" true (t.Dr_exp.Overhead.bf_messages_per_request > 0.0);
  Alcotest.(check bool) "dlsr entries bigger than plsr" true
    (t.Dr_exp.Overhead.dlsr_bytes_per_link > t.Dr_exp.Overhead.plsr_bytes_per_link);
  Alcotest.(check bool) "full aplv biggest" true
    (t.Dr_exp.Overhead.full_aplv_lsdb_bytes > t.Dr_exp.Overhead.dlsr_lsdb_bytes)

let test_availability_rows () =
  let rows =
    Dr_exp.Availability_exp.run tiny_cfg ~avg_degree:3.0 ~traffic:Config.UT
      ~lambda:0.3 ~mtbf:200.0 ~mttr:50.0 ()
  in
  Alcotest.(check int) "three approaches" 3 (List.length rows);
  (match rows with
  | drtp :: _ :: reactive :: _ ->
      Alcotest.(check bool) "same failure timeline" true
        (drtp.Dr_exp.Availability_exp.failures
        = reactive.Dr_exp.Availability_exp.failures);
      Alcotest.(check bool) "availability in [0,1]" true
        (drtp.Dr_exp.Availability_exp.availability >= 0.0
        && drtp.Dr_exp.Availability_exp.availability <= 1.0);
      Alcotest.(check bool) "DRTP at least as available" true
        (drtp.Dr_exp.Availability_exp.availability
        >= reactive.Dr_exp.Availability_exp.availability -. 1e-6);
      Alcotest.(check bool) "DRTP switches, reactive reroutes" true
        (drtp.Dr_exp.Availability_exp.reroutes = 0
        && reactive.Dr_exp.Availability_exp.switchovers = 0)
  | _ -> Alcotest.fail "unexpected rows");
  (* Deterministic under the same seed. *)
  let rows2 =
    Dr_exp.Availability_exp.run tiny_cfg ~avg_degree:3.0 ~traffic:Config.UT
      ~lambda:0.3 ~mtbf:200.0 ~mttr:50.0 ()
  in
  Alcotest.(check bool) "deterministic" true
    (List.map (fun r -> r.Dr_exp.Availability_exp.downtime_s) rows
    = List.map (fun r -> r.Dr_exp.Availability_exp.downtime_s) rows2)

let test_recovery_rows () =
  let rows =
    Dr_exp.Recovery_exp.run tiny_cfg ~avg_degree:3.0 ~traffic:Config.UT ~lambda:0.3
      ~failures:5 ()
  in
  Alcotest.(check int) "four approaches" 4 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "ratio in [0,1]" true
        (r.Dr_exp.Recovery_exp.recovery_ratio >= 0.0
        && r.Dr_exp.Recovery_exp.recovery_ratio <= 1.0))
    rows;
  match rows with
  | drtp :: _ :: _ :: reactive :: _ ->
      Alcotest.(check bool) "DRTP at least as reliable" true
        (drtp.Dr_exp.Recovery_exp.recovery_ratio
        >= reactive.Dr_exp.Recovery_exp.recovery_ratio -. 0.05)
  | _ -> Alcotest.fail "unexpected rows"

let suite =
  [
    ( "experiments",
      [
        Alcotest.test_case "traffic parsing" `Quick test_traffic_parsing;
        Alcotest.test_case "lambda sweeps" `Quick test_lambda_sweeps;
        Alcotest.test_case "graph determinism" `Quick test_graph_determinism;
        Alcotest.test_case "scenario determinism" `Quick test_scenario_determinism;
        Alcotest.test_case "runner sanity" `Slow test_runner_measurement_sanity;
        Alcotest.test_case "runner deterministic" `Slow test_runner_deterministic;
        Alcotest.test_case "no-backup baseline" `Slow test_no_backup_baseline;
        Alcotest.test_case "backups consume capacity" `Slow test_backup_scheme_uses_more_capacity;
        Alcotest.test_case "BF message accounting" `Slow test_bf_counts_messages;
        Alcotest.test_case "dedicated spare costs more" `Slow test_dedicated_reserves_more;
        Alcotest.test_case "scheme labels" `Quick test_scheme_labels;
        Alcotest.test_case "backup-count ablation (E2)" `Slow test_backup_count_ablation;
        Alcotest.test_case "node fault-tolerance measured" `Slow test_node_ft_measured;
        Alcotest.test_case "replication aggregates" `Slow test_replicate_aggregates;
        Alcotest.test_case "replication dedupes seeds" `Slow test_replicate_dedupes_seeds;
        Alcotest.test_case "replication rejects empty seeds" `Quick
          test_replicate_rejects_empty_seeds;
        Alcotest.test_case "sweep and reports" `Slow test_sweep_and_reports;
        Alcotest.test_case "table 1 renders" `Quick test_table1_renders;
        Alcotest.test_case "overhead table" `Slow test_overhead_table;
        Alcotest.test_case "recovery experiment rows" `Slow test_recovery_rows;
        Alcotest.test_case "availability experiment (E6)" `Slow test_availability_rows;
      ] );
  ]

(* The trace assembler and critical-path analyser over causal spans.

   The load-bearing gates: (1) for every complete trace the left-folded
   phase durations equal the root's journalled end-to-end duration
   bit-for-bit — the contract that makes the critical-path tables a true
   decomposition of the recovery latencies the journal reports; (2) the
   assembler is deterministic (same seed, same journal, same report);
   (3) structural damage is detected, and ring-overwrite incompleteness
   is a warning rather than an error because the journal announces the
   loss itself; (4) the pinned seed-42 crankback walk assembles into the
   exact attempt -> attempt causal chain the sharded handshake executes. *)

module J = Dr_obs.Journal
module C = J.Causal
module Trace = Dr_trace.Trace
module Graph = Dr_topo.Graph
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing
module Recovery = Drtp.Recovery
module Faults = Dr_faults.Faults
module Scenario = Dr_sim.Scenario
module Partition = Dr_shard.Partition
module Shard_sim = Dr_shard.Shard_sim
module Rng = Dr_rng.Splitmix64

let property ?(count = 60) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let seed_gen = QCheck.int_range 0 1_000_000

(* Every test leaves the journal global state as it found it. *)
let scoped f =
  J.set_enabled true;
  Fun.protect f ~finally:(fun () ->
      J.set_enabled false;
      J.clear (J.current ()))

let bits = Int64.bits_of_float

(* --- hand-built journals: assembly and analysis --------------------------- *)

let hand_jsonl () =
  let buf = J.create () in
  J.with_buffer buf (fun () ->
      C.reset ~seed:7;
      J.set_now 1.0;
      let root = C.root ~conn:9 ~t0:1.0 "recovery" in
      C.leaf ~conn:9 ~t0:1.0 ~dur:0.01 ~parent:root "detect";
      let rep = C.child ~conn:9 ~t0:1.01 ~parent:root "report" in
      C.leaf ~conn:9 ~t0:1.01 ~dur:0.1 ~parent:rep "retransmit-wait";
      C.close rep ~dur:0.102;
      C.leaf ~conn:9 ~t0:1.112 ~dur:0.005 ~parent:root "activate";
      C.close root ~dur:(0.01 +. 0.102 +. 0.005));
  J.to_jsonl_string buf

let test_assemble_basic () =
  scoped @@ fun () ->
  let t = Trace.of_string (hand_jsonl ()) in
  Alcotest.(check int) "no parse errors" 0 (List.length (Trace.parse_errors t));
  Alcotest.(check int) "one trace" 1 (List.length (Trace.traces t));
  Alcotest.(check int) "five spans" 5 (Trace.span_count t);
  let tr = List.hd (Trace.traces t) in
  Alcotest.(check bool) "complete" true (Trace.complete tr);
  let root = Option.get (Trace.root tr) in
  Alcotest.(check string) "root phase" "recovery" root.Trace.sp_phase;
  Alcotest.(check int) "root conn" 9 root.Trace.sp_conn;
  Alcotest.(check (list string)) "phases in emission order"
    [ "detect"; "report"; "activate" ]
    (List.map (fun s -> s.Trace.sp_phase) (Trace.phases tr));
  Alcotest.(check bool) "phase sum bit-exact" true
    (bits (Trace.phase_sum tr) = bits root.Trace.sp_dur);
  Alcotest.(check (list string)) "critical path descends into report"
    [ "recovery"; "report"; "retransmit-wait" ]
    (List.map (fun s -> s.Trace.sp_phase) (Trace.critical_path tr));
  Alcotest.(check (list string)) "structurally sound" [] (Trace.check t)

let test_check_detects_damage () =
  scoped @@ fun () ->
  let lines = String.split_on_char '\n' (String.trim (hand_jsonl ())) in
  (* Drop the root's span-open (the first span line): dangling parents and
     a rootless trace — hard errors on a lossless journal... *)
  let is_root_open l =
    Astring.String.is_infix ~affix:"span-open" l
    && Astring.String.is_infix ~affix:{|"phase":"recovery"|} l
  in
  let damaged = List.filter (fun l -> not (is_root_open l)) lines in
  let t = Trace.of_string (String.concat "\n" damaged ^ "\n") in
  let issues = Trace.check t in
  Alcotest.(check bool) "damage reported" true (issues <> []);
  Alcotest.(check bool) "as errors" true (List.exists Trace.is_error issues);
  (* ... but the same loss under an announced ring overwrite is a
     warning: the journal said it dropped entries. *)
  let announced = {|{"seq":0,"t":0,"kind":"ring-dropped","count":3}|} in
  let t' =
    Trace.of_string (announced ^ "\n" ^ String.concat "\n" damaged ^ "\n")
  in
  Alcotest.(check int) "overwrite count surfaced" 3 (Trace.ring_dropped t');
  let issues' = Trace.check t' in
  Alcotest.(check bool) "still reported" true (issues' <> []);
  Alcotest.(check bool) "downgraded to warnings" false
    (List.exists Trace.is_error issues');
  (* A duplicate span id is structural damage no overwrite can excuse. *)
  let span_lines =
    List.filter (fun l -> Astring.String.is_infix ~affix:"span-open" l) lines
  in
  let dup =
    Trace.of_string
      (announced ^ "\n"
      ^ String.concat "\n" (lines @ [ List.hd span_lines ])
      ^ "\n")
  in
  Alcotest.(check bool) "duplicate span id stays an error" true
    (List.exists Trace.is_error (Trace.check dup))

let test_perfetto_json () =
  scoped @@ fun () ->
  let t = Trace.of_string (hand_jsonl ()) in
  let file = Filename.temp_file "drtp_test_perfetto" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      Trace.write_perfetto t oc;
      close_out oc;
      let ic = open_in_bin file in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match J.json_of_string text with
      | Error msg -> Alcotest.failf "perfetto output is not JSON: %s" msg
      | Ok json -> (
          match J.mem "traceEvents" json with
          | Some (J.Arr events) ->
              (* 5 complete "X" events + 1 thread-name metadata row + 2
                 flow events for the one cause edge. *)
              Alcotest.(check bool) "has events" true (List.length events >= 6)
          | _ -> Alcotest.fail "missing traceEvents array"))

let test_deterministic_assembly () =
  scoped @@ fun () ->
  let report_of jsonl =
    let t = Trace.of_string jsonl in
    Format.asprintf "%a" (Trace.report ~top:3) t
  in
  let a = hand_jsonl () in
  let b = hand_jsonl () in
  Alcotest.(check string) "same seed, same journal bytes" a b;
  Alcotest.(check string) "same report" (report_of a) (report_of b)

(* --- the bit-exactness property over random fault scenarios ---------------- *)

(* Admit a handful of routed connections on a mesh, then play random
   failures forward — lossy signalling, retransmission backoff, chain
   failovers, reactive fallbacks — and require every complete trace's
   phase durations to fold (left-associated, emission order) to exactly
   the root's journalled end-to-end duration. *)
let random_recovery_jsonl seed =
  let rng = Rng.create seed in
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  let st =
    Net_state.create ~graph:g
      ~capacity:(2 + Rng.int rng 6)
      ~spare_policy:Net_state.Multiplexed
  in
  let n = Graph.node_count g in
  let route = Routing.link_state_route_fn Routing.Dlsr ~with_backup:true in
  let id = ref 0 in
  for _ = 1 to 4 + Rng.int rng 8 do
    let src = Rng.int rng n in
    let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
    match route st ~src ~dst ~bw:1 with
    | Ok { Routing.primary; backups } ->
        incr id;
        ignore (Net_state.admit st ~id:!id ~bw:1 ~primary ~backups)
    | Error _ -> ()
  done;
  let buf = J.create () in
  J.with_buffer buf (fun () ->
      C.reset ~seed;
      let loss = 0.5 *. Rng.float rng 1.0 in
      let faults = Faults.create ~seed:(seed + 1) (Faults.uniform_spec loss) in
      let edges = Graph.edge_count g in
      for k = 1 to 1 + Rng.int rng 3 do
        J.set_now (10.0 *. float_of_int k);
        let e = Rng.int rng edges in
        if not (Net_state.edge_failed st ~edge:e) then
          if Rng.bool rng then
            ignore
              (Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~faults ~edge:e ())
          else
            ignore (Recovery.fail_edge_reactive st ~edge:e ())
      done);
  J.to_jsonl_string buf

let prop_phase_sum_bit_exact =
  property ~count:80 "phase durations fold bit-exactly to the root duration"
    seed_gen (fun seed ->
      scoped @@ fun () ->
      let t = Trace.of_string (random_recovery_jsonl seed) in
      if Trace.parse_errors t <> [] then
        QCheck.Test.fail_report "parse errors in generated journal";
      if List.exists Trace.is_error (Trace.check t) then
        QCheck.Test.fail_report "structural errors in generated journal";
      List.iter
        (fun tr ->
          if not (Trace.complete tr) then
            QCheck.Test.fail_report "incomplete trace without ring overwrite";
          let root = Option.get (Trace.root tr) in
          if Trace.phases tr <> [] && bits (Trace.phase_sum tr) <> bits root.Trace.sp_dur
          then
            QCheck.Test.fail_reportf
              "trace %012x (%s): phases fold to %.17g but root closed at %.17g"
              (Trace.trace_id tr) root.Trace.sp_phase (Trace.phase_sum tr)
              root.Trace.sp_dur)
        (Trace.traces t);
      true)

(* --- pinned seed-42 regression: crankback-dominated shard traces ----------- *)

(* The same pinned 6-node walk as [Test_shard.test_pinned_crankback]:
   conn 2 routes on a stale view, is rejected against ground truth, and
   cranks back onto the detour.  Its trace must assemble as a root with
   two attempt phases, the second cause-chained to the first, carrying a
   stale-decision marker — and the phase fold must still be bit-exact. *)
let test_seed42_crankback_trace () =
  scoped @@ fun () ->
  let graph =
    Graph.create ~node_count:6
      ~edges:[ (4, 0); (0, 1); (1, 3); (0, 2); (2, 5); (5, 3) ]
  in
  let partition = Partition.of_regions graph [| 0; 0; 0; 0; 1; 0 |] in
  let scenario =
    Scenario.of_items
      [
        {
          Scenario.time = 1.0;
          event =
            Scenario.Request { conn = 1; src = 0; dst = 3; bw = 1; duration = 100.0 };
        };
        {
          Scenario.time = 2.0;
          event =
            Scenario.Request { conn = 2; src = 4; dst = 3; bw = 1; duration = 100.0 };
        };
      ]
  in
  let config =
    {
      Shard_sim.default_config with
      Shard_sim.scheme = Routing.Dlsr;
      backup_count = 0;
      lsa_interval = 0.0;
      lsa_refresh = 0.0;
      lsa_flood_delay = 0.0;
      max_retries = 1;
      faults =
        Some (Faults.create ~seed:1 { Faults.zero_spec with Faults.p_lsa = 1.0 });
    }
  in
  let (), entries =
    J.capture ~trace_seed:42 (fun () ->
        ignore
          (Shard_sim.run ~config ~partition ~graph ~capacity:1 ~scenario
             ~warmup:0.0 ~horizon:10.0 ~sample_every:5.0 ()))
  in
  let buf = J.create () in
  J.append_entries buf entries;
  let t = Trace.of_string (J.to_jsonl_string buf) in
  Alcotest.(check (list string)) "structurally sound" [] (Trace.check t);
  let setups =
    List.filter
      (fun tr ->
        match Trace.root tr with
        | Some r -> r.Trace.sp_phase = "shard-setup"
        | None -> false)
      (Trace.traces t)
  in
  Alcotest.(check int) "one trace per request" 2 (List.length setups);
  let conn_of tr = (Option.get (Trace.root tr)).Trace.sp_conn in
  let tr1 = List.find (fun tr -> conn_of tr = 1) setups in
  let tr2 = List.find (fun tr -> conn_of tr = 2) setups in
  (* Conn 1 commits synchronously inside its shard: one instantaneous
     attempt. *)
  Alcotest.(check (list string)) "conn 1: single attempt" [ "attempt" ]
    (List.map (fun s -> s.Trace.sp_phase) (Trace.phases tr1));
  Alcotest.(check bool) "conn 1: instantaneous" true
    ((Option.get (Trace.root tr1)).Trace.sp_dur = 0.0);
  (* Conn 2 is the crankback walk. *)
  (match Trace.phases tr2 with
  | [ a1; a2 ] ->
      Alcotest.(check string) "two attempts" "attempt"
        (a1.Trace.sp_phase ^ "" |> fun s -> s);
      Alcotest.(check string) "second is an attempt" "attempt" a2.Trace.sp_phase;
      Alcotest.(check int) "crankback cause-chained to the failed attempt"
        a1.Trace.sp_id a2.Trace.sp_cause;
      let stale_marks =
        List.filter
          (fun id ->
            match Trace.find_span tr2 id with
            | Some s -> s.Trace.sp_phase = "stale-decision"
            | None -> false)
          a1.Trace.sp_children
      in
      Alcotest.(check int) "first attempt carries the stale-decision mark" 1
        (List.length stale_marks)
  | ps ->
      Alcotest.failf "conn 2: expected 2 attempt phases, got %d" (List.length ps));
  let root2 = Option.get (Trace.root tr2) in
  Alcotest.(check bool) "conn 2: positive end-to-end duration" true
    (root2.Trace.sp_dur > 0.0);
  Alcotest.(check bool) "conn 2: phase fold bit-exact" true
    (bits (Trace.phase_sum tr2) = bits root2.Trace.sp_dur);
  Alcotest.(check (list string)) "conn 2: critical path enters an attempt" []
    (match List.map (fun s -> s.Trace.sp_phase) (Trace.critical_path tr2) with
    | "shard-setup" :: "attempt" :: _ -> []
    | other -> other)

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "assemble: DAG, phases, critical path" `Quick
          test_assemble_basic;
        Alcotest.test_case "check: damage vs announced overwrite" `Quick
          test_check_detects_damage;
        Alcotest.test_case "perfetto export is well-formed JSON" `Quick
          test_perfetto_json;
        Alcotest.test_case "assembly and report are deterministic" `Quick
          test_deterministic_assembly;
        prop_phase_sum_bit_exact;
        Alcotest.test_case "seed-42 pinned crankback trace" `Quick
          test_seed42_crankback_trace;
      ] );
  ]

module Graph = Dr_topo.Graph
module M = Dr_topo.Topo_metrics

let test_ring_metrics () =
  let m = M.compute (Dr_topo.Gen.ring 6) in
  Alcotest.(check int) "nodes" 6 m.M.nodes;
  Alcotest.(check int) "edges" 6 m.M.edges;
  Alcotest.(check (float 1e-9)) "avg degree" 2.0 m.M.avg_degree;
  Alcotest.(check int) "diameter" 3 m.M.diameter;
  Alcotest.(check bool) "connected" true m.M.connected;
  Alcotest.(check int) "min/max degree" 2 m.M.min_degree;
  Alcotest.(check int) "min/max degree" 2 m.M.max_degree;
  Alcotest.(check int) "two disjoint everywhere" 2 m.M.min_edge_disjoint;
  (* Ring of 6: per node distances 1,1,2,2,3 -> mean 1.8 *)
  Alcotest.(check (float 1e-9)) "avg hops" 1.8 m.M.avg_path_hops

let test_line_metrics () =
  let m = M.compute (Dr_topo.Gen.line 4) in
  Alcotest.(check int) "diameter" 3 m.M.diameter;
  Alcotest.(check int) "single path pairs" 1 m.M.min_edge_disjoint;
  Alcotest.(check int) "min degree" 1 m.M.min_degree

let test_disconnected () =
  let g = Graph.create ~node_count:4 ~edges:[ (0, 1); (2, 3) ] in
  let m = M.compute g in
  Alcotest.(check bool) "not connected" false m.M.connected

let test_degree_histogram () =
  let g = Dr_topo.Gen.star 5 in
  Alcotest.(check (list (pair int int))) "star histogram" [ (1, 4); (4, 1) ]
    (M.degree_histogram g)

let test_complete_metrics () =
  let m = M.compute (Dr_topo.Gen.complete 5) in
  Alcotest.(check int) "diameter 1" 1 m.M.diameter;
  Alcotest.(check (float 1e-9)) "avg hops 1" 1.0 m.M.avg_path_hops;
  Alcotest.(check int) "disjoint paths n-1" 4 m.M.min_edge_disjoint

let contains s sub = Astring.String.is_infix ~affix:sub s

let test_dot_export () =
  let g = Dr_topo.Gen.ring 4 in
  let dot = Dr_topo.Dot.to_dot ~highlight:[ (0, "red") ] g in
  Alcotest.(check bool) "graph header" true (contains dot "graph");
  Alcotest.(check bool) "highlighted edge" true (contains dot "color=\"red\"");
  Alcotest.(check bool) "plain edges grey" true (contains dot "grey70");
  (* every edge appears *)
  Graph.iter_edges g (fun e ->
      let u, v = Graph.edge_endpoints g e in
      Alcotest.(check bool) "edge listed" true
        (contains dot (Printf.sprintf "%d -- %d" u v)))

let test_dot_coords () =
  let rng = Dr_rng.Splitmix64.create 3 in
  let g = Dr_topo.Gen.waxman ~rng ~n:10 ~avg_degree:3.0 () in
  Alcotest.(check bool) "positions pinned" true
    (contains (Dr_topo.Dot.to_dot g) "pos=")

let test_dot_routes () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  let primary = Dr_topo.Path.of_nodes g [ 0; 1; 2 ] in
  let backup = Dr_topo.Path.of_nodes g [ 0; 3; 4; 5; 2 ] in
  let dot = Dr_topo.Dot.routes_to_dot g ~primary ~backups:[ backup ] in
  Alcotest.(check bool) "primary red" true (contains dot "color=\"red\"");
  Alcotest.(check bool) "backup blue" true (contains dot "color=\"blue\"")

let suite =
  [
    ( "topology.metrics",
      [
        Alcotest.test_case "ring" `Quick test_ring_metrics;
        Alcotest.test_case "line" `Quick test_line_metrics;
        Alcotest.test_case "disconnected" `Quick test_disconnected;
        Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
        Alcotest.test_case "complete graph" `Quick test_complete_metrics;
        Alcotest.test_case "dot export" `Quick test_dot_export;
        Alcotest.test_case "dot coordinates" `Quick test_dot_coords;
        Alcotest.test_case "dot routes" `Quick test_dot_routes;
      ] );
  ]

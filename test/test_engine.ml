module Engine = Dr_sim.Engine

let test_clock_starts () =
  let e = Engine.create () in
  Alcotest.(check (float 1e-9)) "starts at 0" 0.0 (Engine.now e);
  let e2 = Engine.create ~start:5.0 () in
  Alcotest.(check (float 1e-9)) "custom start" 5.0 (Engine.now e2)

let test_events_in_order () =
  let e = Engine.create () in
  Engine.schedule e ~at:3.0 "c";
  Engine.schedule e ~at:1.0 "a";
  Engine.schedule e ~at:2.0 "b";
  let log = ref [] in
  Engine.run e ~handler:(fun e ev -> log := (Engine.now e, ev) :: !log);
  Alcotest.(check (list (pair (float 1e-9) string)))
    "time order" [ (1.0, "a"); (2.0, "b"); (3.0, "c") ] (List.rev !log)

let test_fifo_simultaneous () =
  let e = Engine.create () in
  Engine.schedule e ~at:1.0 "first";
  Engine.schedule e ~at:1.0 "second";
  let log = ref [] in
  Engine.run e ~handler:(fun _ ev -> log := ev :: !log);
  Alcotest.(check (list string)) "insertion order" [ "first"; "second" ] (List.rev !log)

let test_handler_schedules () =
  let e = Engine.create () in
  Engine.schedule e ~at:1.0 `Tick;
  let count = ref 0 in
  Engine.run e ~handler:(fun e `Tick ->
      incr count;
      if !count < 5 then Engine.schedule_after e ~delay:1.0 `Tick);
  Alcotest.(check int) "cascade of 5" 5 !count;
  Alcotest.(check (float 1e-9)) "final clock" 5.0 (Engine.now e)

let test_past_rejected () =
  let e = Engine.create ~start:10.0 () in
  Alcotest.(check bool) "past scheduling raises" true
    (try Engine.schedule e ~at:9.0 (); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative delay raises" true
    (try Engine.schedule_after e ~delay:(-1.0) (); false
     with Invalid_argument _ -> true)

let test_run_until () =
  let e = Engine.create () in
  List.iter (fun t -> Engine.schedule e ~at:t t) [ 1.0; 2.0; 3.0; 4.0 ];
  let log = ref [] in
  Engine.run_until e ~stop:2.5 ~handler:(fun _ t -> log := t :: !log);
  Alcotest.(check (list (float 1e-9))) "only events <= stop" [ 1.0; 2.0 ] (List.rev !log);
  Alcotest.(check int) "rest still pending" 2 (Engine.pending e);
  Alcotest.(check (float 1e-9)) "clock advanced to stop" 2.5 (Engine.now e);
  (* Resume. *)
  Engine.run e ~handler:(fun _ t -> log := t :: !log);
  Alcotest.(check int) "all processed eventually" 4 (List.length !log)

let test_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "step on empty" false (Engine.step e ~handler:(fun _ _ -> ()));
  Engine.schedule e ~at:1.0 ();
  Alcotest.(check bool) "step consumes" true (Engine.step e ~handler:(fun _ _ -> ()));
  Alcotest.(check int) "nothing pending" 0 (Engine.pending e)

let suite =
  [
    ( "eventsim.engine",
      [
        Alcotest.test_case "clock start" `Quick test_clock_starts;
        Alcotest.test_case "time ordering" `Quick test_events_in_order;
        Alcotest.test_case "FIFO at equal times" `Quick test_fifo_simultaneous;
        Alcotest.test_case "handler schedules more" `Quick test_handler_schedules;
        Alcotest.test_case "past events rejected" `Quick test_past_rejected;
        Alcotest.test_case "run_until" `Quick test_run_until;
        Alcotest.test_case "single step" `Quick test_step;
      ] );
  ]

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing
module Resources = Drtp.Resources

let mesh_state ?(capacity = 10) () =
  let graph = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  (graph, Net_state.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed)

let path g nodes = Path.of_nodes g nodes
let link g a b = Option.get (Graph.find_link g ~src:a ~dst:b)

let test_primary_min_hop () =
  let _, st = mesh_state () in
  match Routing.find_primary st ~src:0 ~dst:8 ~bw:1 with
  | None -> Alcotest.fail "path expected"
  | Some p -> Alcotest.(check int) "min hops" 4 (Path.hops p)

let test_primary_respects_free_bw () =
  let g, st = mesh_state ~capacity:2 () in
  (* Saturate the direct corridor 0-1. *)
  ignore (Net_state.admit st ~id:1 ~bw:2 ~primary:(path g [ 0; 1 ]) ~backups:[]);
  match Routing.find_primary st ~src:0 ~dst:1 ~bw:1 with
  | None -> Alcotest.fail "detour expected"
  | Some p ->
      Alcotest.(check bool) "avoids full link" false
        (Path.contains_link p (link g 0 1));
      Alcotest.(check int) "detour length" 3 (Path.hops p)

let test_primary_none_when_saturated () =
  let g, st = mesh_state ~capacity:1 () in
  (* Cut node 0 off by filling both its edges. *)
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1 ]) ~backups:[]);
  ignore (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 0; 3 ]) ~backups:[]);
  Alcotest.(check bool) "no primary" true
    (Routing.find_primary st ~src:0 ~dst:8 ~bw:1 = None)

let test_backup_edge_disjoint_when_possible () =
  let _, st = mesh_state () in
  let g = Net_state.graph st in
  let primary = path g [ 0; 1; 2 ] in
  List.iter
    (fun scheme ->
      match Routing.find_backup scheme st ~primary ~bw:1 with
      | None -> Alcotest.fail "backup expected"
      | Some b ->
          Alcotest.(check int)
            (Routing.scheme_name scheme ^ " disjoint")
            0 (Path.edge_overlap b primary))
    [ Routing.Plsr; Routing.Dlsr; Routing.Spf ]

let test_backup_overlap_only_when_forced () =
  (* Pendant node: ring 0-1-2-3 plus node 4 hanging off 2.  Any connection
     from 4 must use edge (2,4) twice. *)
  let graph =
    Graph.create ~node_count:5 ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0); (2, 4) ]
  in
  let st = Net_state.create ~graph ~capacity:10 ~spare_policy:Net_state.Multiplexed in
  let primary = Path.of_nodes graph [ 4; 2; 1; 0 ] in
  match Routing.find_backup Routing.Dlsr st ~primary ~bw:1 with
  | None -> Alcotest.fail "backup expected despite forced overlap"
  | Some b ->
      Alcotest.(check int) "only the pendant edge shared" 1 (Path.edge_overlap b primary);
      (* After the pendant edge, it must take the other side of the ring. *)
      Alcotest.(check (list int)) "goes around" [ 4; 2; 3; 0 ] (Path.nodes graph b)

let test_plsr_avoids_loaded_links () =
  let g, st = mesh_state () in
  (* Register a backup through the bottom corridor; P-LSR should route the
     next backup elsewhere. *)
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2; 5; 8 ])
       ~backups:[ path g [ 0; 3; 6; 7; 8 ] ]);
  let primary = path g [ 3; 4; 5 ] in
  (match Routing.find_backup Routing.Plsr st ~primary ~bw:1 with
  | None -> Alcotest.fail "backup expected"
  | Some b ->
      (* P-LSR sees nonzero ||APLV|| on 0->3/3->6/6->7/7->8 and prefers the
         top corridor. *)
      Alcotest.(check bool) "avoids 6->7" false (Path.contains_link b (link g 6 7)));
  ()

let test_dlsr_distinguishes_conflicts () =
  let g, st = mesh_state () in
  (* Existing connection: primary on top corridor, backup through bottom. *)
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2; 5; 8 ])
       ~backups:[ path g [ 0; 3; 6; 7; 8 ] ]);
  (* New primary is disjoint from conn 1's primary, so sharing backup links
     with B1 creates NO conflict: D-LSR may take the short bottom route.  The
     link costs must reflect that. *)
  let primary = path g [ 3; 4; 5 ] in
  let cost = Routing.backup_link_cost Routing.Dlsr st ~primary ~bw:1 in
  Alcotest.(check (float 1e-6)) "no conflict on 6->7" Routing.epsilon (cost (link g 6 7));
  (* Whereas a primary overlapping conn 1's primary does conflict there. *)
  let overlapping = path g [ 0; 1; 2 ] in
  let cost2 = Routing.backup_link_cost Routing.Dlsr st ~primary:overlapping ~bw:1 in
  Alcotest.(check (float 1e-6)) "two shared failure domains on 6->7"
    (2.0 +. Routing.epsilon)
    (cost2 (link g 6 7))

let test_plsr_cost_is_norm () =
  let g, st = mesh_state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2; 5; 8 ])
       ~backups:[ path g [ 0; 3; 6; 7; 8 ] ]);
  let primary = path g [ 3; 4; 5 ] in
  let cost = Routing.backup_link_cost Routing.Plsr st ~primary ~bw:1 in
  (* P1 has 4 edges, all feeding APLV of 6->7: P-LSR cannot tell the
     conflicts are harmless. *)
  Alcotest.(check (float 1e-6)) "norm cost" (4.0 +. Routing.epsilon) (cost (link g 6 7))

let test_q_penalty_on_primary_edges () =
  let g, st = mesh_state () in
  let primary = path g [ 0; 1; 2 ] in
  let cost = Routing.backup_link_cost Routing.Dlsr st ~primary ~bw:1 in
  Alcotest.(check bool) "Q on the primary's own edge" true
    (cost (link g 0 1) >= Routing.q_constant);
  Alcotest.(check bool) "Q on the reverse direction too" true
    (cost (link g 1 0) >= Routing.q_constant)

let test_bandwidth_infeasible_excluded () =
  let g, st = mesh_state ~capacity:1 () in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 3; 4 ]) ~backups:[]);
  let primary = path g [ 0; 1; 2 ] in
  let cost = Routing.backup_link_cost Routing.Dlsr st ~primary ~bw:1 in
  Alcotest.(check (float 1e-6)) "full link infinite" infinity (cost (link g 3 4))

let test_route_fn_rejects () =
  let g, st = mesh_state ~capacity:1 () in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1 ]) ~backups:[]);
  ignore (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 0; 3 ]) ~backups:[]);
  let fn = Routing.link_state_route_fn Routing.Dlsr ~with_backup:true in
  (match fn st ~src:0 ~dst:8 ~bw:1 with
  | Error Routing.No_primary -> ()
  | Error Routing.No_backup -> Alcotest.fail "expected No_primary"
  | Ok _ -> Alcotest.fail "expected rejection");
  (* A 0->1 connection in a saturated neighbourhood has a primary (the
     remaining path) but no backup bandwidth. *)
  ()

let test_route_fn_no_backup_mode () =
  let _, st = mesh_state () in
  let fn = Routing.link_state_route_fn Routing.Plsr ~with_backup:false in
  match fn st ~src:0 ~dst:8 ~bw:1 with
  | Ok { Routing.backups = []; _ } -> ()
  | Ok _ -> Alcotest.fail "no backup expected"
  | Error _ -> Alcotest.fail "acceptance expected"

let test_failed_edge_avoided () =
  let g, st = mesh_state () in
  Net_state.fail_edge st ~edge:(Graph.edge_of_link (link g 0 1));
  (match Routing.find_primary st ~src:0 ~dst:2 ~bw:1 with
  | None -> Alcotest.fail "detour expected"
  | Some p ->
      Alcotest.(check bool) "failed edge avoided" false
        (Path.contains_link p (link g 0 1)))

let test_scheme_names () =
  Alcotest.(check string) "dlsr" "D-LSR" (Routing.scheme_name Routing.Dlsr);
  Alcotest.(check bool) "parse p-lsr" true
    (Routing.scheme_of_string "p-lsr" = Ok Routing.Plsr);
  Alcotest.(check bool) "parse unknown" true
    (match Routing.scheme_of_string "bogus" with Error _ -> true | Ok _ -> false)

let suite =
  [
    ( "drtp.routing",
      [
        Alcotest.test_case "primary is min-hop" `Quick test_primary_min_hop;
        Alcotest.test_case "primary respects free bandwidth" `Quick test_primary_respects_free_bw;
        Alcotest.test_case "primary rejection" `Quick test_primary_none_when_saturated;
        Alcotest.test_case "backups edge-disjoint when possible" `Quick test_backup_edge_disjoint_when_possible;
        Alcotest.test_case "forced overlap is minimal" `Quick test_backup_overlap_only_when_forced;
        Alcotest.test_case "P-LSR avoids loaded links" `Quick test_plsr_avoids_loaded_links;
        Alcotest.test_case "D-LSR sees real conflicts only" `Quick test_dlsr_distinguishes_conflicts;
        Alcotest.test_case "P-LSR cost = ||APLV||" `Quick test_plsr_cost_is_norm;
        Alcotest.test_case "Q on primary edges" `Quick test_q_penalty_on_primary_edges;
        Alcotest.test_case "bandwidth-infeasible excluded" `Quick test_bandwidth_infeasible_excluded;
        Alcotest.test_case "route_fn rejection" `Quick test_route_fn_rejects;
        Alcotest.test_case "route_fn no-backup mode" `Quick test_route_fn_no_backup_mode;
        Alcotest.test_case "failed edges avoided" `Quick test_failed_edge_avoided;
        Alcotest.test_case "scheme names" `Quick test_scheme_names;
      ] );
  ]

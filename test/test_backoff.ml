module Backoff = Dr_faults.Backoff

let b ?factor ?cap ~base ~max_attempts () = Backoff.make ?factor ?cap ~base ~max_attempts ()

let test_attempt_zero_free () =
  let s = b ~base:0.1 ~max_attempts:3 () in
  Alcotest.(check (float 0.0)) "no sleep before the first send" 0.0
    (Backoff.delay s ~attempt:0);
  Alcotest.(check (float 0.0)) "nothing accumulated at attempt 0" 0.0
    (Backoff.total_before s ~attempt:0)

let test_doubling_schedule () =
  let s = b ~base:0.05 ~max_attempts:5 () in
  Alcotest.(check (float 1e-12)) "attempt 1" 0.05 (Backoff.delay s ~attempt:1);
  Alcotest.(check (float 1e-12)) "attempt 2" 0.10 (Backoff.delay s ~attempt:2);
  Alcotest.(check (float 1e-12)) "attempt 3" 0.20 (Backoff.delay s ~attempt:3);
  Alcotest.(check (float 1e-12)) "attempt 4" 0.40 (Backoff.delay s ~attempt:4)

let test_cap_bounds_each_delay () =
  let s = b ~cap:0.15 ~base:0.05 ~max_attempts:6 () in
  Alcotest.(check (float 1e-12)) "below the cap untouched" 0.10
    (Backoff.delay s ~attempt:2);
  Alcotest.(check (float 1e-12)) "attempt 3 clipped" 0.15 (Backoff.delay s ~attempt:3);
  Alcotest.(check (float 1e-12)) "stays clipped" 0.15 (Backoff.delay s ~attempt:5)

let manual_total s ~attempt =
  let sum = ref 0.0 in
  for k = 1 to attempt do
    sum := !sum +. Backoff.delay s ~attempt:k
  done;
  !sum

let test_total_before_matches_sum () =
  let schedules =
    [
      b ~base:0.05 ~max_attempts:8 ();
      b ~cap:0.15 ~base:0.05 ~max_attempts:8 ();
      b ~factor:3.0 ~base:0.01 ~max_attempts:8 ();
      b ~factor:1.0 ~base:0.2 ~max_attempts:8 ();
    ]
  in
  List.iter
    (fun s ->
      for n = 0 to 8 do
        Alcotest.(check (float 1e-12))
          (Printf.sprintf "closed form = sum at attempt %d" n)
          (manual_total s ~attempt:n)
          (Backoff.total_before s ~attempt:n)
      done)
    schedules

let test_total_before_legacy_closed_form () =
  (* The reactive-retry path historically charged base *. (2^n - 1); the
     shared helper must reproduce those bits exactly. *)
  let base = Drtp.Recovery.default_timing.Drtp.Recovery.retry_backoff in
  let s = b ~base ~max_attempts:3 () in
  for n = 0 to 4 do
    let legacy = base *. (Float.of_int (1 lsl n) -. 1.0) in
    Alcotest.(check bool)
      (Printf.sprintf "bit-identical at n=%d" n)
      true
      (Int64.equal
         (Int64.bits_of_float legacy)
         (Int64.bits_of_float (Backoff.total_before s ~attempt:n)))
  done

let test_exhausted_boundary () =
  let s = b ~base:0.05 ~max_attempts:4 () in
  Alcotest.(check bool) "attempt 0 has retries left" false
    (Backoff.exhausted s ~attempt:0);
  Alcotest.(check bool) "attempt 3 still allowed" false
    (Backoff.exhausted s ~attempt:3);
  Alcotest.(check bool) "attempt 4 = budget spent" true
    (Backoff.exhausted s ~attempt:4);
  Alcotest.(check bool) "beyond stays exhausted" true (Backoff.exhausted s ~attempt:9)

let test_zero_budget_exhausted_immediately () =
  let s = b ~base:0.1 ~max_attempts:0 () in
  Alcotest.(check bool) "no retries at all" true (Backoff.exhausted s ~attempt:0)

let test_constant_factor_one () =
  let s = b ~factor:1.0 ~base:0.2 ~max_attempts:5 () in
  Alcotest.(check (float 1e-12)) "flat schedule" 0.2 (Backoff.delay s ~attempt:4);
  Alcotest.(check (float 1e-12)) "linear accumulation" 0.8
    (Backoff.total_before s ~attempt:4)

let test_make_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative base rejected" true
    (raises (fun () -> b ~base:(-0.1) ~max_attempts:3 ()));
  Alcotest.(check bool) "factor below 1 rejected" true
    (raises (fun () -> b ~factor:0.5 ~base:0.1 ~max_attempts:3 ()));
  Alcotest.(check bool) "negative cap rejected" true
    (raises (fun () -> b ~cap:(-1.0) ~base:0.1 ~max_attempts:3 ()));
  Alcotest.(check bool) "negative budget rejected" true
    (raises (fun () -> b ~base:0.1 ~max_attempts:(-1) ()));
  (* Zero base is a legitimate schedule (crankback counts attempts without
     sleeping). *)
  let s = b ~base:0.0 ~max_attempts:3 () in
  Alcotest.(check (float 0.0)) "zero base sleeps nothing" 0.0
    (Backoff.total_before s ~attempt:3)

let suite =
  [
    ( "faults.backoff",
      [
        Alcotest.test_case "attempt 0 is free" `Quick test_attempt_zero_free;
        Alcotest.test_case "doubling schedule" `Quick test_doubling_schedule;
        Alcotest.test_case "cap bounds each delay" `Quick test_cap_bounds_each_delay;
        Alcotest.test_case "total_before matches manual sum" `Quick test_total_before_matches_sum;
        Alcotest.test_case "legacy closed form bit-identical" `Quick test_total_before_legacy_closed_form;
        Alcotest.test_case "exhausted boundary" `Quick test_exhausted_boundary;
        Alcotest.test_case "zero retry budget" `Quick test_zero_budget_exhausted_immediately;
        Alcotest.test_case "factor 1 is constant" `Quick test_constant_factor_one;
        Alcotest.test_case "make validates arguments" `Quick test_make_validation;
      ] );
  ]

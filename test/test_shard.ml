(* Tests for the dr_shard subsystem: the seeded edge-cut partitioner and
   the sharded control plane's correctness anchors.

   The load-bearing gates: with a single shard the sharded simulator must
   reproduce the centralised manager's row exactly (every commit is
   synchronous and no LSA is ever sent); with any sharding but zero LSA
   loss, zero flood delay and no damping, inter-shard routing must
   converge to the omniscient routes (zero divergence, zero lag, the
   centralised acceptance); and as LSA damping grows, staleness
   divergence must grow with it — the paper-facing claim the `shard`
   sweep exists to measure.  A pinned 6-node layout walks the
   stale-rejection -> crankback handshake deterministically. *)

module Graph = Dr_topo.Graph
module Scenario = Dr_sim.Scenario
module Routing = Drtp.Routing
module Partition = Dr_shard.Partition
module Shard_sim = Dr_shard.Shard_sim
module Shard_exp = Dr_exp.Shard_exp
module Config = Dr_exp.Config
module Faults = Dr_faults.Faults
module Rng = Dr_rng.Splitmix64
module J = Dr_obs.Journal

let property ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let seed_gen = QCheck.int_range 0 1_000_000

let random_graph seed =
  let rng = Rng.create seed in
  let n = 6 + Rng.int rng 15 in
  let avg_degree = 2.2 +. Rng.float rng 1.5 in
  Dr_topo.Gen.erdos_renyi ~rng ~n ~avg_degree

(* --- the partitioner ----------------------------------------------------- *)

let prop_partition_well_formed =
  property ~count:80 "partition: dense cover, consistent ownership"
    QCheck.(pair seed_gen (int_range 1 5))
    (fun (seed, parts) ->
      let g = random_graph seed in
      let parts = min parts (Graph.node_count g) in
      let p = Partition.create ~seed g ~parts in
      let seen = Array.make parts false in
      for v = 0 to Graph.node_count g - 1 do
        let r = Partition.region_of_node p v in
        if r < 0 || r >= parts then QCheck.Test.fail_report "region out of range";
        seen.(r) <- true
      done;
      if not (Array.for_all Fun.id seen) then
        QCheck.Test.fail_report "empty region";
      let cut = ref 0 in
      Graph.iter_edges g (fun e ->
          let u, v = Graph.edge_endpoints g e in
          let owner = Partition.owner_of_edge p e in
          if owner <> Partition.region_of_node p u then
            QCheck.Test.fail_report "edge not owned by its first endpoint";
          if
            Partition.owner_of_link p (2 * e) <> owner
            || Partition.owner_of_link p ((2 * e) + 1) <> owner
          then QCheck.Test.fail_report "links of an edge disagree on owner";
          if Partition.region_of_node p u <> Partition.region_of_node p v then
            incr cut);
      !cut = Partition.cut_edges p)

let prop_partition_deterministic =
  property ~count:40 "partition: deterministic in (seed, graph, parts)"
    QCheck.(pair seed_gen (int_range 1 5))
    (fun (seed, parts) ->
      let g = random_graph seed in
      let parts = min parts (Graph.node_count g) in
      let a = Partition.create ~seed g ~parts in
      let b = Partition.create ~seed g ~parts in
      let same = ref (Partition.cut_edges a = Partition.cut_edges b) in
      for v = 0 to Graph.node_count g - 1 do
        if Partition.region_of_node a v <> Partition.region_of_node b v then
          same := false
      done;
      !same)

let test_partition_extremes () =
  let g = random_graph 11 in
  let n = Graph.node_count g in
  let one = Partition.create ~seed:3 g ~parts:1 in
  for v = 0 to n - 1 do
    Alcotest.(check int) "single part: region 0" 0
      (Partition.region_of_node one v)
  done;
  Alcotest.(check int) "single part: no cut" 0 (Partition.cut_edges one);
  let full = Partition.create ~seed:3 g ~parts:n in
  let seen = Array.make n false in
  for v = 0 to n - 1 do
    seen.(Partition.region_of_node full v) <- true
  done;
  Alcotest.(check bool) "n parts: regions are singletons" true
    (Array.for_all Fun.id seen);
  Alcotest.(check int) "n parts: every edge cut" (Graph.edge_count g)
    (Partition.cut_edges full)

let test_partition_validation () =
  let g = random_graph 5 in
  let n = Graph.node_count g in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "parts = 0 rejected" true
    (raises (fun () -> Partition.create g ~parts:0));
  Alcotest.(check bool) "parts > nodes rejected" true
    (raises (fun () -> Partition.create g ~parts:(n + 1)));
  Alcotest.(check bool) "of_regions: wrong length rejected" true
    (raises (fun () -> Partition.of_regions g (Array.make (n + 1) 0)));
  Alcotest.(check bool) "of_regions: sparse region ids rejected" true
    (raises (fun () ->
         let a = Array.make n 0 in
         a.(0) <- 2;
         Partition.of_regions g a));
  let a = Array.make n 0 in
  a.(0) <- 1;
  let p = Partition.of_regions g a in
  Alcotest.(check int) "of_regions adopts the layout" 1
    (Partition.region_of_node p 0);
  Alcotest.(check int) "of_regions: parts inferred" 2 (Partition.parts p)

(* --- equivalence anchors -------------------------------------------------- *)

(* A miniature configuration so full workload replays stay fast. *)
let tiny_cfg =
  {
    Config.default with
    Config.warmup = 600.0;
    horizon = 1800.0;
    sample_every = 300.0;
    lifetime_lo = 300.0;
    lifetime_hi = 600.0;
  }

let cell ?(parts = 1) ?(interval = 5.0) ?(flood_delay = 0.05)
    ?(hop_delay = 0.001) ?(lsa_refresh = 30.0) ?(partition_seed = 3)
    ?(baseline = false) ~seed () =
  Shard_exp.run_cell tiny_cfg ~avg_degree:3.0 ~traffic:Config.UT ~lambda:0.5
    ~scheme:Routing.Dlsr ~backup_count:1 ~parts ~interval ~loss:0.0
    ~lsa_refresh ~flood_delay ~hop_delay ~max_retries:1 ~partition_seed
    ~baseline ~seed ()

let test_single_shard_matches_centralised () =
  (* The CI anchor: one shard owns every link, so every commit is
     synchronous and the fault plan is never consulted — the run must be
     bit-identical to the centralised manager, shard-only columns zero. *)
  let sharded = cell ~parts:1 ~seed:99 () in
  let central = cell ~parts:1 ~baseline:true ~seed:99 () in
  Alcotest.(check int) "requests" central.Shard_exp.requests
    sharded.Shard_exp.requests;
  Alcotest.(check int) "accepted" central.Shard_exp.accepted
    sharded.Shard_exp.accepted;
  Alcotest.(check (float 0.0)) "acceptance bit-identical"
    central.Shard_exp.acceptance sharded.Shard_exp.acceptance;
  Alcotest.(check (float 0.0)) "fault tolerance bit-identical"
    central.Shard_exp.ft sharded.Shard_exp.ft;
  Alcotest.(check (float 0.0)) "mean active bit-identical"
    central.Shard_exp.avg_active sharded.Shard_exp.avg_active;
  Alcotest.(check int) "no inter-shard handshakes" 0
    sharded.Shard_exp.inter_shard;
  Alcotest.(check (float 0.0)) "no LSA traffic" 0.0
    sharded.Shard_exp.lsa_per_second;
  Alcotest.(check bool) "whole rows structurally equal" true (sharded = central)

let prop_zero_delay_sharding_is_omniscient =
  (* With zero LSA loss, zero flood delay and no damping every view is
     refreshed before the next decision, so inter-shard routing converges
     to the omniscient routes: no divergence, no lag, and exactly the
     centralised acceptance trajectory. *)
  property ~count:4 "zero-loss zero-delay sharding = centralised routes"
    QCheck.(pair seed_gen (int_range 2 5))
    (fun (seed, parts) ->
      let sharded =
        cell ~parts ~interval:0.0 ~flood_delay:0.0 ~hop_delay:0.0
          ~lsa_refresh:0.0 ~partition_seed:seed ~seed ()
      in
      let central = cell ~baseline:true ~seed () in
      if sharded.Shard_exp.divergence <> 0.0 then
        QCheck.Test.fail_report "divergent decision under fresh views";
      if sharded.Shard_exp.lag_max <> 0.0 then
        QCheck.Test.fail_report "nonzero convergence lag at zero delay";
      if sharded.Shard_exp.inter_shard = 0 then
        QCheck.Test.fail_report "sweep never crossed a shard boundary";
      sharded.Shard_exp.requests = central.Shard_exp.requests
      && sharded.Shard_exp.accepted = central.Shard_exp.accepted
      && sharded.Shard_exp.acceptance = central.Shard_exp.acceptance
      && sharded.Shard_exp.ft = central.Shard_exp.ft
      && sharded.Shard_exp.avg_active = central.Shard_exp.avg_active)

(* --- pinned stale-rejection -> crankback walk ----------------------------- *)

(* Two regions over a 6-node diamond; every LSA is dropped (p_lsa = 1, no
   randomness consumed), so region B decides on its initial view:

        B: 4 --- 0 --- 1 --- 3     conn 1 (region A, 0->3) takes 0-1-3;
                  \         /      conn 2 (region B, 4->3) prefers the
                   2 ------ 5      stale 3-hop 4-0-1-3, is rejected
                                   against ground truth, and cranks back
   onto 4-0-2-5-3 with the piggybacked fresh snapshots. *)
let test_pinned_crankback () =
  let graph =
    Graph.create ~node_count:6
      ~edges:[ (4, 0); (0, 1); (1, 3); (0, 2); (2, 5); (5, 3) ]
  in
  let partition = Partition.of_regions graph [| 0; 0; 0; 0; 1; 0 |] in
  let scenario =
    Scenario.of_items
      [
        {
          Scenario.time = 1.0;
          event = Scenario.Request { conn = 1; src = 0; dst = 3; bw = 1; duration = 100.0 };
        };
        {
          Scenario.time = 2.0;
          event = Scenario.Request { conn = 2; src = 4; dst = 3; bw = 1; duration = 100.0 };
        };
      ]
  in
  let config =
    {
      Shard_sim.default_config with
      Shard_sim.scheme = Routing.Dlsr;
      backup_count = 0;
      lsa_interval = 0.0;
      lsa_refresh = 0.0;
      lsa_flood_delay = 0.0;
      max_retries = 1;
      faults =
        Some (Faults.create ~seed:1 { Faults.zero_spec with Faults.p_lsa = 1.0 });
    }
  in
  let r =
    Shard_sim.run ~config ~partition ~graph ~capacity:1 ~scenario ~warmup:0.0
      ~horizon:10.0 ~sample_every:5.0 ()
  in
  let s = r.Shard_sim.stats in
  Alcotest.(check int) "both requests admitted" 2 s.Shard_sim.accepted;
  Alcotest.(check int) "conn 1 committed synchronously" 1 s.Shard_sim.intra_shard;
  Alcotest.(check int) "conn 2 crossed the boundary twice" 2
    s.Shard_sim.inter_shard;
  Alcotest.(check int) "stale route rejected against truth" 1
    s.Shard_sim.setup_failures;
  Alcotest.(check int) "exactly one crankback" 1 s.Shard_sim.crankbacks;
  Alcotest.(check int) "first decision diverged from omniscient" 1
    s.Shard_sim.divergent_decisions;
  Alcotest.(check int) "nothing lost" 0 s.Shard_sim.lost_after_retries;
  Alcotest.(check bool) "every LSA was dropped" true
    (s.Shard_sim.lsa_dropped > 0 && s.Shard_sim.lsa_originated > 0)

(* --- the acceptance gate: divergence grows with damping ------------------- *)

let test_divergence_monotone_in_interval () =
  let rows =
    Shard_exp.run tiny_cfg ~avg_degree:3.0 ~traffic:Config.UT ~lambda:0.5
      ~scheme:Routing.Dlsr ~parts_list:[ 4 ] ~intervals:[ 0.0; 2.0; 20.0 ]
      ~losses:[ 0.0 ] ~lsa_refresh:0.0 ~flood_delay:0.0 ~seed:6311 ()
  in
  match rows with
  | [ r0; r2; r20 ] ->
      Alcotest.(check (float 0.0)) "no damping, no divergence" 0.0
        r0.Shard_exp.divergence;
      Alcotest.(check bool) "divergence grows 0 -> 2s" true
        (r0.Shard_exp.divergence <= r2.Shard_exp.divergence);
      Alcotest.(check bool) "divergence grows 2s -> 20s" true
        (r2.Shard_exp.divergence <= r20.Shard_exp.divergence);
      Alcotest.(check bool) "heavy damping diverges" true
        (r20.Shard_exp.divergence > 0.0);
      Alcotest.(check bool) "heavy damping lags" true
        (r20.Shard_exp.lag_mean > 0.0
        && r20.Shard_exp.lag_max >= r20.Shard_exp.lag_mean);
      Alcotest.(check bool) "decisions aged" true
        (r20.Shard_exp.decision_age > 0.0)
  | _ -> Alcotest.fail "expected three rows"

(* --- crash-restart -------------------------------------------------------- *)

let crash_scenario seed =
  let rng = Rng.create seed in
  Dr_sim.Workload.generate rng ~node_count:16
    {
      Dr_sim.Workload.arrival_rate = 1.0;
      horizon = 300.0;
      lifetime_lo = 30.0;
      lifetime_hi = 80.0;
      bw = Dr_sim.Workload.Constant 1;
      pattern = Dr_sim.Workload.Uniform;
    }

let crash_graph seed =
  let rng = Rng.create seed in
  Dr_topo.Gen.waxman ~rng ~n:16 ~avg_degree:4.0 ()

let run_with_crashes ~parts ~crash_mean_gap () =
  let config =
    {
      Shard_sim.default_config with
      Shard_sim.scheme = Routing.Dlsr;
      parts;
      lsa_interval = 1.0;
      lsa_refresh = 10.0;
      lsa_flood_delay = 0.05;
      crash_mean_gap;
      crash_seed = 11;
      view_checkpoint_every = 25.0;
    }
  in
  Shard_sim.run ~config ~graph:(crash_graph 31) ~capacity:6
    ~scenario:(crash_scenario 808) ~warmup:0.0 ~horizon:320.0
    ~sample_every:50.0 ()

let test_single_shard_crashes_harmless () =
  (* With one shard every link is its own, so a restart re-reads the whole
     LSDB from ground truth: crash-restarts must not change a single
     decision — the shard-layer analogue of the serve crash gate. *)
  let crashed = run_with_crashes ~parts:1 ~crash_mean_gap:15.0 () in
  let clean = run_with_crashes ~parts:1 ~crash_mean_gap:0.0 () in
  Alcotest.(check bool) "crashes actually injected" true
    (crashed.Shard_sim.stats.Shard_sim.shard_crashes > 0);
  Alcotest.(check int) "requests identical"
    clean.Shard_sim.stats.Shard_sim.requests
    crashed.Shard_sim.stats.Shard_sim.requests;
  Alcotest.(check int) "accepted identical"
    clean.Shard_sim.stats.Shard_sim.accepted
    crashed.Shard_sim.stats.Shard_sim.accepted;
  Alcotest.(check (float 0.0)) "acceptance bit-identical"
    clean.Shard_sim.acceptance crashed.Shard_sim.acceptance;
  Alcotest.(check (float 0.0)) "fault tolerance bit-identical"
    clean.Shard_sim.ft_overall crashed.Shard_sim.ft_overall;
  Alcotest.(check (float 0.0)) "mean active bit-identical"
    clean.Shard_sim.avg_active crashed.Shard_sim.avg_active

let test_multi_shard_crash_restart () =
  (* Crashing one of several shards loses real knowledge (remote LSDB
     entries regress to the checkpoint) but never corrupts ground truth:
     the run completes, the books balance, and the periodic checkpoints
     and rollbacks are visible in the counters.  Deterministic, so run
     twice and demand identical stats. *)
  let r = run_with_crashes ~parts:3 ~crash_mean_gap:12.0 () in
  let s = r.Shard_sim.stats in
  Alcotest.(check bool) "crashes injected" true (s.Shard_sim.shard_crashes > 0);
  Alcotest.(check bool) "periodic checkpoints taken" true
    (s.Shard_sim.view_checkpoints > 0);
  Alcotest.(check bool) "some LSDB entries rolled back" true
    (s.Shard_sim.view_rollbacks > 0);
  Alcotest.(check bool) "requests all answered" true
    (s.Shard_sim.accepted + s.Shard_sim.rejected_no_route
     + s.Shard_sim.lost_after_retries
    <= s.Shard_sim.requests);
  Alcotest.(check bool) "acceptance sane" true
    (r.Shard_sim.acceptance >= 0.0 && r.Shard_sim.acceptance <= 1.0);
  let r2 = run_with_crashes ~parts:3 ~crash_mean_gap:12.0 () in
  Alcotest.(check bool) "crash-restart runs are deterministic" true
    (r2.Shard_sim.stats = s
    && r2.Shard_sim.acceptance = r.Shard_sim.acceptance
    && r2.Shard_sim.avg_staleness = r.Shard_sim.avg_staleness)

(* --- journal integration -------------------------------------------------- *)

let test_shard_kinds_registered () =
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " registered") true (List.mem k J.all_kinds))
    [
      "lsa-originated"; "lsa-delivered"; "shard-setup"; "shard-crankback";
      "stale-decision";
    ]

let suite =
  [
    ( "shard.partition",
      [
        prop_partition_well_formed;
        prop_partition_deterministic;
        Alcotest.test_case "single and full partitions" `Quick
          test_partition_extremes;
        Alcotest.test_case "argument validation" `Quick test_partition_validation;
      ] );
    ( "shard.sim",
      [
        Alcotest.test_case "single shard = centralised manager" `Quick
          test_single_shard_matches_centralised;
        prop_zero_delay_sharding_is_omniscient;
        Alcotest.test_case "pinned stale-reject crankback" `Quick
          test_pinned_crankback;
        Alcotest.test_case "divergence monotone in LSA interval" `Quick
          test_divergence_monotone_in_interval;
        Alcotest.test_case "single-shard crash-restarts are harmless" `Quick
          test_single_shard_crashes_harmless;
        Alcotest.test_case "multi-shard crash-restart" `Quick
          test_multi_shard_crash_restart;
        Alcotest.test_case "journal kinds registered" `Quick
          test_shard_kinds_registered;
      ] );
  ]

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path

let unit_cost _ = 1.0

let test_k1_is_shortest () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  match Dr_topo.Yen.k_shortest g ~cost:unit_cost ~src:0 ~dst:8 ~k:1 with
  | [ (c, p) ] ->
      Alcotest.(check (float 1e-9)) "cost 4" 4.0 c;
      Alcotest.(check int) "4 hops" 4 (Path.hops p)
  | other -> Alcotest.failf "expected one path, got %d" (List.length other)

let test_nondecreasing_costs () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  let paths = Dr_topo.Yen.k_shortest g ~cost:unit_cost ~src:0 ~dst:8 ~k:8 in
  Alcotest.(check int) "got 8 paths" 8 (List.length paths);
  let costs = List.map fst paths in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by cost" true (non_decreasing costs)

let test_all_distinct_and_simple () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  let paths = Dr_topo.Yen.k_shortest g ~cost:unit_cost ~src:0 ~dst:8 ~k:10 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (_, p) ->
      Alcotest.(check bool) "simple" true (Path.is_simple g p);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen (Path.links p));
      Hashtbl.add seen (Path.links p) ();
      Alcotest.(check int) "right endpoints" 0 (Path.src p);
      Alcotest.(check int) "right endpoints" 8 (Path.dst p))
    paths

let test_counts_all_shortest () =
  (* In a 3x3 grid there are exactly C(4,2) = 6 monotone 4-hop paths from
     corner to corner; Yen must list all of them before any 6-hop path. *)
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  let paths = Dr_topo.Yen.k_shortest g ~cost:unit_cost ~src:0 ~dst:8 ~k:7 in
  let four_hop = List.filter (fun (c, _) -> c = 4.0) paths in
  Alcotest.(check int) "six shortest paths" 6 (List.length four_hop)

let test_k_larger_than_available () =
  let g = Graph.create ~node_count:3 ~edges:[ (0, 1); (1, 2) ] in
  let paths = Dr_topo.Yen.k_shortest g ~cost:unit_cost ~src:0 ~dst:2 ~k:5 in
  Alcotest.(check int) "only one simple path exists" 1 (List.length paths)

let test_unreachable () =
  let g = Graph.create ~node_count:3 ~edges:[ (0, 1) ] in
  Alcotest.(check int) "no path" 0
    (List.length (Dr_topo.Yen.k_shortest g ~cost:unit_cost ~src:0 ~dst:2 ~k:3))

let test_k_zero () =
  let g = Dr_topo.Gen.ring 4 in
  Alcotest.(check int) "k=0" 0
    (List.length (Dr_topo.Yen.k_shortest g ~cost:unit_cost ~src:0 ~dst:2 ~k:0))

let test_ring_two_paths () =
  let g = Dr_topo.Gen.ring 6 in
  let paths = Dr_topo.Yen.k_shortest g ~cost:unit_cost ~src:0 ~dst:3 ~k:5 in
  (* A 6-ring has exactly two simple paths between opposite nodes. *)
  Alcotest.(check int) "two paths" 2 (List.length paths);
  Alcotest.(check (list (float 1e-9))) "costs 3 and 3" [ 3.0; 3.0 ] (List.map fst paths)

let test_respects_weights () =
  let g = Dr_topo.Gen.ring 4 in
  (* Make one direction of the ring expensive; the cheapest path must go the
     other way round. *)
  let e01 = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  let cost l = if l = e01 then 100.0 else 1.0 in
  match Dr_topo.Yen.k_shortest g ~cost ~src:0 ~dst:1 ~k:2 with
  | (c1, p1) :: _ ->
      Alcotest.(check (float 1e-9)) "detour cheaper" 3.0 c1;
      Alcotest.(check int) "3 hops around" 3 (Path.hops p1)
  | [] -> Alcotest.fail "paths expected"

(* --- lazy iterator ------------------------------------------------------ *)

let pull it n =
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      match Dr_topo.Yen.next it with
      | None -> List.rev acc
      | Some p -> go (p :: acc) (n - 1)
  in
  go [] n

let test_iterator_matches_k_shortest () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  let it = Dr_topo.Yen.iterator g ~cost:unit_cost ~src:0 ~dst:8 in
  let pulled = pull it 10 in
  let listed = Dr_topo.Yen.k_shortest g ~cost:unit_cost ~src:0 ~dst:8 ~k:10 in
  Alcotest.(check int) "same count" (List.length listed) (List.length pulled);
  List.iter2
    (fun (c, p) (c', p') ->
      Alcotest.(check (float 1e-9)) "same cost" c' c;
      Alcotest.(check bool) "same path" true (Path.links p = Path.links p'))
    pulled listed

let test_iterator_exhausts_to_none () =
  (* A ring has exactly two loopless s-t paths; the third pull and every
     one after it must be None. *)
  let g = Dr_topo.Gen.ring 6 in
  let it = Dr_topo.Yen.iterator g ~cost:unit_cost ~src:0 ~dst:3 in
  Alcotest.(check int) "two paths" 2 (List.length (pull it 5));
  Alcotest.(check bool) "stays exhausted" true (Dr_topo.Yen.next it = None);
  Alcotest.(check bool) "forever" true (Dr_topo.Yen.next it = None)

let test_iterator_unreachable () =
  let g = Graph.create ~node_count:4 ~edges:[ (0, 1); (2, 3) ] in
  let it = Dr_topo.Yen.iterator g ~cost:unit_cost ~src:0 ~dst:3 in
  Alcotest.(check bool) "no path at all" true (Dr_topo.Yen.next it = None)

let prop_iterator_lazy_sequence =
  (* On random weighted graphs the iterator's emitted sequence is simple,
     duplicate-free, cost-monotone and equal to k_shortest's list. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:50 ~name:"iterator = k_shortest; simple, distinct, monotone"
       (QCheck.int_range 0 1_000_000)
       (fun seed ->
         let rng = Dr_rng.Splitmix64.create seed in
         let n = 6 + Dr_rng.Splitmix64.int rng 10 in
         let g =
           Dr_topo.Gen.erdos_renyi ~rng ~n
             ~avg_degree:(2.2 +. Dr_rng.Splitmix64.float rng 1.5)
         in
         let costs =
           Array.init (Graph.link_count g) (fun _ ->
               0.1 +. Dr_rng.Splitmix64.float rng 5.0)
         in
         let cost l = costs.(l) in
         let src = Dr_rng.Splitmix64.int rng n in
         let dst = (src + 1 + Dr_rng.Splitmix64.int rng (n - 1)) mod n in
         if src = dst then true
         else begin
           let k = 1 + Dr_rng.Splitmix64.int rng 8 in
           let it = Dr_topo.Yen.iterator g ~cost ~src ~dst in
           let pulled = pull it k in
           let listed = Dr_topo.Yen.k_shortest g ~cost ~src ~dst ~k in
           let same =
             List.length pulled = List.length listed
             && List.for_all2
                  (fun (c, p) (c', p') ->
                    Float.abs (c -. c') < 1e-9 && Path.links p = Path.links p')
                  pulled listed
           in
           let links = List.map (fun (_, p) -> Path.links p) pulled in
           let simple = List.for_all (fun (_, p) -> Path.is_simple g p) pulled in
           let distinct = List.length links = List.length (List.sort_uniq compare links) in
           let rec monotone = function
             | (a, _) :: ((b, _) :: _ as rest) -> a <= b +. 1e-9 && monotone rest
             | _ -> true
           in
           same && simple && distinct && monotone pulled
         end))

let suite =
  [
    ( "topology.yen",
      [
        Alcotest.test_case "k=1 is the shortest path" `Quick test_k1_is_shortest;
        Alcotest.test_case "costs non-decreasing" `Quick test_nondecreasing_costs;
        Alcotest.test_case "paths distinct and simple" `Quick test_all_distinct_and_simple;
        Alcotest.test_case "finds all equal-length shortest" `Quick test_counts_all_shortest;
        Alcotest.test_case "k exceeding path count" `Quick test_k_larger_than_available;
        Alcotest.test_case "unreachable destination" `Quick test_unreachable;
        Alcotest.test_case "k = 0" `Quick test_k_zero;
        Alcotest.test_case "ring has exactly two" `Quick test_ring_two_paths;
        Alcotest.test_case "respects link weights" `Quick test_respects_weights;
        Alcotest.test_case "iterator matches k_shortest" `Quick
          test_iterator_matches_k_shortest;
        Alcotest.test_case "iterator exhausts to None" `Quick
          test_iterator_exhausts_to_none;
        Alcotest.test_case "iterator unreachable" `Quick test_iterator_unreachable;
        prop_iterator_lazy_sequence;
      ] );
  ]

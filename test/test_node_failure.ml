(* Node-failure evaluation (extension E3) and node fail/restore marking. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Net_state = Drtp.Net_state
module FE = Drtp.Failure_eval

let mesh_state ?(capacity = 10) () =
  let graph = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  (graph, Net_state.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed)

let path g nodes = Path.of_nodes g nodes

let test_transit_switchable () =
  let g, st = mesh_state () in
  (* Primary 0-1-2 transits node 1; backup avoids node 1 entirely. *)
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  let o = FE.evaluate_node st ~node:1 in
  Alcotest.(check int) "one transit victim" 1 o.FE.transit_affected;
  Alcotest.(check int) "it activates" 1 o.FE.transit_activated;
  Alcotest.(check int) "no endpoint losses" 0 o.FE.endpoint_lost

let test_backup_through_failed_node_fails () =
  let g, st = mesh_state () in
  (* Backup passes through node 4; node 4's failure kills it even though
     the primary only transits node 1. *)
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  (* Fail node 1: backup avoids it -> recoverable (previous test).  Now a
     second connection whose primary transits node 4 and whose backup also
     transits node 4 cannot recover from node 4's failure. *)
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 3; 4; 5 ])
       ~backups:[ path g [ 3; 6; 7; 4; 1; 2; 5 ] ]);
  let o = FE.evaluate_node st ~node:4 in
  (* Victims of node 4: conn 1?  Its primary 0-1-2 does not touch node 4.
     Conn 2 transits node 4 and its backup also does -> unrecoverable. *)
  Alcotest.(check int) "one transit victim" 1 o.FE.transit_affected;
  Alcotest.(check int) "unrecoverable" 0 o.FE.transit_activated

let test_endpoint_excluded () =
  let g, st = mesh_state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  let o = FE.evaluate_node st ~node:0 in
  Alcotest.(check int) "source node loss is an endpoint loss" 1 o.FE.endpoint_lost;
  Alcotest.(check int) "not a transit attempt" 0 o.FE.transit_affected

let test_node_contention () =
  let g, st = mesh_state ~capacity:2 () in
  (* Starve 0->3's spare to one unit; two primaries transiting node 1 with
     backups sharing link 0->3. *)
  ignore (Net_state.admit st ~id:10 ~bw:1 ~primary:(path g [ 0; 3 ]) ~backups:[]);
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 0; 1; 4 ])
       ~backups:[ path g [ 0; 3; 4 ] ]);
  (* Node 1 failure hits both; the single spare unit on 0->3 admits one. *)
  let o = FE.evaluate_node st ~node:1 in
  Alcotest.(check int) "both transit victims" 2 o.FE.transit_affected;
  Alcotest.(check int) "one switch" 1 o.FE.transit_activated

let test_evaluate_nodes_aggregates () =
  let g, st = mesh_state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  let r = FE.evaluate_nodes st in
  (* The only transit node of the primary is node 1. *)
  Alcotest.(check int) "one node evaluated" 1 r.FE.edges_evaluated;
  Alcotest.(check int) "one attempt" 1 r.FE.attempts;
  Alcotest.(check int) "one success" 1 r.FE.successes

let test_fail_restore_node_marks_edges () =
  let g, st = mesh_state () in
  Net_state.fail_node st ~node:4;
  Array.iter
    (fun l ->
      Alcotest.(check bool) "incident edge failed" true
        (Net_state.edge_failed st ~edge:(Graph.edge_of_link l)))
    (Graph.out_links g 4);
  Alcotest.(check bool) "distant edge alive" false (Net_state.edge_failed st ~edge:0);
  (* Routing must now avoid node 4 entirely. *)
  (match Drtp.Routing.find_primary st ~src:3 ~dst:5 ~bw:1 with
  | None -> Alcotest.fail "detour expected"
  | Some p ->
      Alcotest.(check bool) "path avoids node 4" false
        (List.mem 4 (Path.nodes g p)));
  Net_state.restore_node st ~node:4;
  Array.iter
    (fun l ->
      Alcotest.(check bool) "restored" false
        (Net_state.edge_failed st ~edge:(Graph.edge_of_link l)))
    (Graph.out_links g 4)

let test_node_ft_harder_than_edge_ft () =
  (* On a loaded random network, node failures can only be as survivable as
     edge failures. *)
  let rng = Dr_rng.Splitmix64.create 21 in
  let graph = Dr_topo.Gen.waxman ~rng ~n:30 ~avg_degree:4.0 () in
  let manager =
    Drtp.Manager.create ~graph ~capacity:20 ~spare_policy:Net_state.Multiplexed
      ~route:(Drtp.Routing.link_state_route_fn Drtp.Routing.Dlsr ~with_backup:true)
  in
  let spec =
    {
      Dr_sim.Workload.arrival_rate = 0.5;
      horizon = 600.0;
      lifetime_lo = 300.0;
      lifetime_hi = 800.0;
      bw = Dr_sim.Workload.constant_bw 1;
      pattern = Dr_sim.Workload.Uniform;
    }
  in
  let scenario = Dr_sim.Workload.generate (Dr_rng.Splitmix64.create 22) ~node_count:30 spec in
  Array.iter
    (fun item ->
      if item.Dr_sim.Scenario.time <= 600.0 then Drtp.Manager.apply manager item)
    (Dr_sim.Scenario.items scenario);
  let state = Drtp.Manager.state manager in
  let edge_ft = FE.fault_tolerance (FE.evaluate state) in
  let node_ft = FE.fault_tolerance (FE.evaluate_nodes state) in
  Alcotest.(check bool)
    (Printf.sprintf "node ft %.4f <= edge ft %.4f" node_ft edge_ft)
    true (node_ft <= edge_ft +. 1e-9)

let suite =
  [
    ( "drtp.node_failure",
      [
        Alcotest.test_case "transit switchable" `Quick test_transit_switchable;
        Alcotest.test_case "backup through failed node dies" `Quick test_backup_through_failed_node_fails;
        Alcotest.test_case "endpoints excluded" `Quick test_endpoint_excluded;
        Alcotest.test_case "spare contention" `Quick test_node_contention;
        Alcotest.test_case "aggregate over nodes" `Quick test_evaluate_nodes_aggregates;
        Alcotest.test_case "fail/restore node" `Quick test_fail_restore_node_marks_edges;
        Alcotest.test_case "node ft <= edge ft" `Slow test_node_ft_harder_than_edge_ft;
      ] );
  ]

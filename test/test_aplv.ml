module Aplv = Drtp.Aplv

let test_empty () =
  let a = Aplv.create () in
  Alcotest.(check int) "norm1" 0 (Aplv.norm1 a);
  Alcotest.(check int) "max" 0 (Aplv.max_element a);
  Alcotest.(check int) "backups" 0 (Aplv.backup_count a);
  Alcotest.(check (list int)) "support" [] (Aplv.support a);
  Alcotest.(check int) "get absent" 0 (Aplv.get a 7)

let test_register () =
  let a = Aplv.create () in
  Aplv.register a ~edge_lset:[ 1; 3; 5 ];
  Alcotest.(check int) "counts set" 1 (Aplv.get a 3);
  Alcotest.(check int) "norm1" 3 (Aplv.norm1 a);
  Alcotest.(check int) "max" 1 (Aplv.max_element a);
  Alcotest.(check int) "one backup" 1 (Aplv.backup_count a);
  Alcotest.(check (list int)) "support sorted" [ 1; 3; 5 ] (Aplv.support a)

let test_overlapping_registrations () =
  let a = Aplv.create () in
  Aplv.register a ~edge_lset:[ 1; 2 ];
  Aplv.register a ~edge_lset:[ 2; 3 ];
  Aplv.register a ~edge_lset:[ 2 ];
  Alcotest.(check int) "a_2 accumulated" 3 (Aplv.get a 2);
  Alcotest.(check int) "norm1" 5 (Aplv.norm1 a);
  Alcotest.(check int) "max element" 3 (Aplv.max_element a);
  Alcotest.(check int) "three backups" 3 (Aplv.backup_count a)

let test_unregister () =
  let a = Aplv.create () in
  Aplv.register a ~edge_lset:[ 1; 2 ];
  Aplv.register a ~edge_lset:[ 2; 3 ];
  Aplv.unregister a ~edge_lset:[ 1; 2 ];
  Alcotest.(check int) "1 removed" 0 (Aplv.get a 1);
  Alcotest.(check int) "2 decremented" 1 (Aplv.get a 2);
  Alcotest.(check int) "norm1" 2 (Aplv.norm1 a);
  Alcotest.(check int) "one backup left" 1 (Aplv.backup_count a);
  Aplv.unregister a ~edge_lset:[ 2; 3 ];
  Alcotest.(check int) "empty again" 0 (Aplv.norm1 a);
  Alcotest.(check (list int)) "no support" [] (Aplv.support a)

let test_unregister_underflow () =
  let a = Aplv.create () in
  Aplv.register a ~edge_lset:[ 1 ];
  Alcotest.(check bool) "unknown edge raises" true
    (try Aplv.unregister a ~edge_lset:[ 9 ]; false with Invalid_argument _ -> true)

let test_duplicate_lset_rejected () =
  let a = Aplv.create () in
  Alcotest.(check bool) "duplicate edge in one LSET" true
    (try Aplv.register a ~edge_lset:[ 1; 1 ]; false with Invalid_argument _ -> true)

let test_conflict_count () =
  let a = Aplv.create () in
  Aplv.register a ~edge_lset:[ 1; 2; 3 ];
  Aplv.register a ~edge_lset:[ 3; 4 ];
  (* New primary crossing edges {2, 3, 9}: conflicts at 2 and 3. *)
  Alcotest.(check int) "distinct conflicting positions" 2
    (Aplv.conflict_count_with a ~edge_lset:[ 2; 3; 9 ]);
  (* Weighted variant counts multiplicity at 3. *)
  Alcotest.(check int) "overlap weight" 3
    (Aplv.overlap_weight_with a ~edge_lset:[ 2; 3; 9 ])

let test_paper_example_values () =
  (* Mirrors the paper's APLV_7 example (§3): PSET_7 = {P1, P3} with
     LSET(P1) = {8, 12, 13} and LSET(P3) = {11, 13}; then
     a_{7,13} = 2 and ||APLV_7||_1 = 5. *)
  let a = Aplv.create () in
  Aplv.register a ~edge_lset:[ 8; 12; 13 ];
  Aplv.register a ~edge_lset:[ 11; 13 ];
  Alcotest.(check int) "a_13 = 2" 2 (Aplv.get a 13);
  Alcotest.(check int) "a_8 = 1" 1 (Aplv.get a 8);
  Alcotest.(check int) "norm = 5" 5 (Aplv.norm1 a);
  Alcotest.(check int) "spare requirement = 2 connections" 2 (Aplv.max_element a)

let suite =
  [
    ( "drtp.aplv",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "register" `Quick test_register;
        Alcotest.test_case "overlapping registrations" `Quick test_overlapping_registrations;
        Alcotest.test_case "unregister" `Quick test_unregister;
        Alcotest.test_case "unregister underflow" `Quick test_unregister_underflow;
        Alcotest.test_case "duplicate LSET rejected" `Quick test_duplicate_lset_rejected;
        Alcotest.test_case "conflict counting" `Quick test_conflict_count;
        Alcotest.test_case "paper APLV_7 example" `Quick test_paper_example_values;
      ] );
  ]

module Aplv = Drtp.Aplv
module CV = Drtp.Conflict_vector

let test_from_aplv () =
  let a = Aplv.create () in
  Aplv.register a ~edge_lset:[ 0; 2; 7 ];
  let cv = CV.of_aplv a ~domains:8 in
  Alcotest.(check int) "length" 8 (CV.length cv);
  Alcotest.(check bool) "bit 0" true (CV.get cv 0);
  Alcotest.(check bool) "bit 1" false (CV.get cv 1);
  Alcotest.(check bool) "bit 2" true (CV.get cv 2);
  Alcotest.(check bool) "bit 7" true (CV.get cv 7);
  Alcotest.(check int) "popcount" 3 (CV.popcount cv)

let test_bits_not_counts () =
  (* The CV keeps positions, not multiplicities (paper §3.2). *)
  let a = Aplv.create () in
  Aplv.register a ~edge_lset:[ 4 ];
  Aplv.register a ~edge_lset:[ 4 ];
  let cv = CV.of_aplv a ~domains:5 in
  Alcotest.(check int) "one bit despite count 2" 1 (CV.popcount cv)

let test_paper_cv6_example () =
  (* Paper §3.2: PSET_6 = {P1, P2}, CV_6 = 1010000100011 (bits 0,2,7,11,12
     using 0-based indexing of the 13 links). *)
  let a = Aplv.create () in
  Aplv.register a ~edge_lset:[ 0; 7; 11 ];
  Aplv.register a ~edge_lset:[ 2; 12 ];
  let cv = CV.of_aplv a ~domains:13 in
  let expected = [ 0; 2; 7; 11; 12 ] in
  for j = 0 to 12 do
    Alcotest.(check bool) (Printf.sprintf "bit %d" j) (List.mem j expected) (CV.get cv j)
  done

let test_conflict_count_matches_aplv () =
  let a = Aplv.create () in
  Aplv.register a ~edge_lset:[ 1; 3 ];
  Aplv.register a ~edge_lset:[ 3; 5 ];
  let cv = CV.of_aplv a ~domains:6 in
  let lset = [ 0; 3; 5 ] in
  Alcotest.(check int) "CV and APLV agree on D-LSR cost"
    (Aplv.conflict_count_with a ~edge_lset:lset)
    (CV.conflict_count_with cv ~edge_lset:lset)

let test_byte_size () =
  let a = Aplv.create () in
  Alcotest.(check int) "8 bits -> 1 byte" 1 (CV.byte_size (CV.of_aplv a ~domains:8));
  Alcotest.(check int) "9 bits -> 2 bytes" 2 (CV.byte_size (CV.of_aplv a ~domains:9));
  Alcotest.(check int) "0 bits -> 0 bytes" 0 (CV.byte_size (CV.of_aplv a ~domains:0))

let test_of_bits_and_equal () =
  let cv1 = CV.of_bits [| true; false; true |] in
  let cv2 = CV.of_bits [| true; false; true |] in
  let cv3 = CV.of_bits [| true; true; true |] in
  Alcotest.(check bool) "equal" true (CV.equal cv1 cv2);
  Alcotest.(check bool) "not equal" false (CV.equal cv1 cv3)

let test_pp () =
  let cv = CV.of_bits [| true; false; true; false |] in
  Alcotest.(check string) "rendering" "1010" (Format.asprintf "%a" CV.pp cv)

let test_out_of_range () =
  let cv = CV.of_bits [| true |] in
  Alcotest.(check bool) "get out of range raises" true
    (try ignore (CV.get cv 1); false with Invalid_argument _ -> true);
  let a = Aplv.create () in
  Aplv.register a ~edge_lset:[ 10 ];
  Alcotest.(check bool) "domain too small raises" true
    (try ignore (CV.of_aplv a ~domains:5); false with Invalid_argument _ -> true)

let suite =
  [
    ( "drtp.conflict_vector",
      [
        Alcotest.test_case "from APLV" `Quick test_from_aplv;
        Alcotest.test_case "bits not counts" `Quick test_bits_not_counts;
        Alcotest.test_case "paper CV_6 example" `Quick test_paper_cv6_example;
        Alcotest.test_case "agrees with APLV costs" `Quick test_conflict_count_matches_aplv;
        Alcotest.test_case "byte size" `Quick test_byte_size;
        Alcotest.test_case "of_bits / equal" `Quick test_of_bits_and_equal;
        Alcotest.test_case "pretty printing" `Quick test_pp;
        Alcotest.test_case "range checks" `Quick test_out_of_range;
      ] );
  ]

module Faults = Dr_faults.Faults

let draws plan cls n = List.init n (fun _ -> Faults.deliver plan cls)

let test_zero_spec_transparent () =
  let plan = Faults.create ~seed:7 Faults.zero_spec in
  Alcotest.(check bool) "not active" false (Faults.active plan);
  List.iter
    (fun c ->
      Alcotest.(check bool) "always delivers" true
        (List.for_all Fun.id (draws plan c 50)))
    Faults.all_classes;
  Alcotest.(check int) "nothing dropped" 0 (Faults.dropped plan)

let test_certain_loss () =
  let plan = Faults.create ~seed:7 (Faults.uniform_spec 1.0) in
  Alcotest.(check bool) "active" true (Faults.active plan);
  Alcotest.(check bool) "never delivers" true
    (List.for_all not (draws plan Faults.Report 20));
  Alcotest.(check int) "every draw dropped" 20 (Faults.dropped_of plan Faults.Report);
  Alcotest.(check int) "total matches" 20 (Faults.dropped plan)

let test_seed_determinism () =
  let a = Faults.create ~seed:42 (Faults.uniform_spec 0.3) in
  let b = Faults.create ~seed:42 (Faults.uniform_spec 0.3) in
  List.iter
    (fun c ->
      Alcotest.(check (list bool)) "same seed, same sequence" (draws a c 200)
        (draws b c 200))
    Faults.all_classes;
  let c = Faults.create ~seed:43 (Faults.uniform_spec 0.3) in
  Alcotest.(check bool) "different seed diverges" true
    (draws a Faults.Report 200 <> draws c Faults.Report 200)

let test_class_streams_independent () =
  (* Heavy traffic on one class must not perturb another class's drop
     sequence — each class owns its own split-off generator. *)
  let a = Faults.create ~seed:11 (Faults.uniform_spec 0.4) in
  let b = Faults.create ~seed:11 (Faults.uniform_spec 0.4) in
  ignore (draws a Faults.Report 500);
  ignore (draws a Faults.Cdp 137);
  Alcotest.(check (list bool)) "setup stream unperturbed"
    (draws b Faults.Setup 100) (draws a Faults.Setup 100)

let test_drop_rate_plausible () =
  let plan = Faults.create ~seed:5 (Faults.uniform_spec 0.2) in
  let n = 5000 in
  ignore (draws plan Faults.Activation n);
  let rate = float_of_int (Faults.dropped plan) /. float_of_int n in
  Alcotest.(check bool) "empirical rate near 0.2" true
    (rate > 0.15 && rate < 0.25)

let test_spec_accessors () =
  let spec = Faults.uniform_spec 0.25 in
  List.iter
    (fun c -> Alcotest.(check (float 0.0)) "uniform" 0.25 (Faults.spec_loss spec c))
    Faults.all_classes;
  let plan = Faults.create spec in
  Alcotest.(check (float 0.0)) "loss reads the spec" 0.25 (Faults.loss plan Faults.Ack)

let test_create_validation () =
  let raises spec = try ignore (Faults.create spec); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "p > 1 rejected" true
    (raises (Faults.uniform_spec 1.5));
  Alcotest.(check bool) "negative p rejected" true
    (raises { Faults.zero_spec with Faults.p_report = -0.1 })

let test_cls_names_stable () =
  Alcotest.(check (list string)) "journal tags"
    [ "cdp"; "report"; "activation"; "setup"; "ack"; "lsa" ]
    (List.map Faults.cls_name Faults.all_classes)

(* ---- flap schedules ----------------------------------------------------- *)

let schedule ?(seed = 3) ?(edge_count = 12) ?(mtbf = 40.0) ?(mttr = 25.0)
    ?after ?(horizon = 2000.0) () =
  Faults.flap_schedule ~seed ~edge_count ~mtbf ~mttr ?after ~horizon ()

let test_flap_well_formed () =
  let flaps = schedule () in
  Alcotest.(check bool) "produces events" true (List.length flaps > 10);
  let sorted = ref true and last = ref neg_infinity in
  List.iter
    (fun (f : Faults.flap) ->
      if f.fail_at < !last then sorted := false;
      last := f.fail_at;
      Alcotest.(check bool) "within window" true
        (f.fail_at >= 0.0 && f.fail_at < 2000.0);
      Alcotest.(check bool) "valid edge" true (f.edge >= 0 && f.edge < 12);
      Alcotest.(check bool) "repair strictly later" true (f.repair_at > f.fail_at))
    flaps;
  Alcotest.(check bool) "ordered by fail_at" true !sorted

let test_flap_never_double_fails () =
  let flaps = schedule ~edge_count:3 ~mtbf:10.0 ~mttr:100.0 () in
  (* With long repairs on few edges, overlap pressure is high: check no edge
     fails again before its previous repair. *)
  let down_until = Hashtbl.create 8 in
  List.iter
    (fun (f : Faults.flap) ->
      (match Hashtbl.find_opt down_until f.edge with
      | Some until ->
          Alcotest.(check bool) "edge was repaired before refailing" true
            (f.fail_at >= until)
      | None -> ());
      Hashtbl.replace down_until f.edge f.repair_at)
    flaps

let test_flap_deterministic () =
  let a = schedule () and b = schedule () in
  Alcotest.(check bool) "same arguments, same timeline" true (a = b);
  let c = schedule ~seed:4 () in
  Alcotest.(check bool) "seed changes the timeline" true (a <> c)

let test_flap_after_window () =
  let flaps = schedule ~after:500.0 () in
  List.iter
    (fun (f : Faults.flap) ->
      Alcotest.(check bool) "respects warmup offset" true (f.fail_at >= 500.0))
    flaps

let test_flap_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "mtbf <= 0 rejected" true
    (raises (fun () -> schedule ~mtbf:0.0 ()));
  Alcotest.(check bool) "mttr <= 0 rejected" true
    (raises (fun () -> schedule ~mttr:(-1.0) ()));
  Alcotest.(check (list unit)) "no edges, no events" []
    (List.map ignore (schedule ~edge_count:0 ()))

let suite =
  [
    ( "faults.plan",
      [
        Alcotest.test_case "zero spec is transparent" `Quick test_zero_spec_transparent;
        Alcotest.test_case "probability 1 always drops" `Quick test_certain_loss;
        Alcotest.test_case "seeded determinism" `Quick test_seed_determinism;
        Alcotest.test_case "class streams independent" `Quick test_class_streams_independent;
        Alcotest.test_case "empirical drop rate" `Quick test_drop_rate_plausible;
        Alcotest.test_case "spec accessors" `Quick test_spec_accessors;
        Alcotest.test_case "create validates probabilities" `Quick test_create_validation;
        Alcotest.test_case "class names stable" `Quick test_cls_names_stable;
      ] );
    ( "faults.flaps",
      [
        Alcotest.test_case "well-formed timeline" `Quick test_flap_well_formed;
        Alcotest.test_case "no double failures" `Quick test_flap_never_double_fails;
        Alcotest.test_case "deterministic" `Quick test_flap_deterministic;
        Alcotest.test_case "after-window respected" `Quick test_flap_after_window;
        Alcotest.test_case "argument validation" `Quick test_flap_validation;
      ] );
  ]

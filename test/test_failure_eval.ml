module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Net_state = Drtp.Net_state
module FE = Drtp.Failure_eval

let mesh_state ?(capacity = 10) () =
  let graph = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  (graph, Net_state.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed)

let path g nodes = Path.of_nodes g nodes
let edge g a b = Graph.edge_of_link (Option.get (Graph.find_link g ~src:a ~dst:b))

let test_empty_network () =
  let _, st = mesh_state () in
  let r = FE.evaluate st in
  Alcotest.(check int) "no attempts" 0 r.FE.attempts;
  Alcotest.(check int) "no edges evaluated" 0 r.FE.edges_evaluated;
  Alcotest.(check (float 1e-9)) "vacuous ft" 1.0 (FE.fault_tolerance r)

let test_protected_connection_survives () =
  let g, st = mesh_state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  let r = FE.evaluate st in
  Alcotest.(check int) "2 primary edges at risk" 2 r.FE.attempts;
  Alcotest.(check int) "both survivable" 2 r.FE.successes;
  Alcotest.(check (float 1e-9)) "ft = 1" 1.0 (FE.fault_tolerance r)

let test_unprotected_connection_fails () =
  let g, st = mesh_state () in
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ]) ~backups:[]);
  let r = FE.evaluate st in
  Alcotest.(check int) "attempts" 2 r.FE.attempts;
  Alcotest.(check int) "no successes" 0 r.FE.successes

let test_backup_crossing_failed_edge () =
  let g, st = mesh_state () in
  (* Backup overlaps the primary on edge (0,1): failure of that edge is
     unrecoverable, failure of (1,2) is fine. *)
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 1; 4; 5; 2 ] ]);
  let o_shared = FE.evaluate_edge st ~edge:(edge g 0 1) in
  Alcotest.(check int) "shared edge kills both" 0 o_shared.FE.activated;
  let o_other = FE.evaluate_edge st ~edge:(edge g 1 2) in
  Alcotest.(check int) "disjoint edge recoverable" 1 o_other.FE.activated

let test_spare_contention () =
  let g, st = mesh_state ~capacity:2 () in
  (* Fill 0->3 so only 1 spare unit fits there; two conflicting backups
     multiplex onto it. *)
  ignore (Net_state.admit st ~id:10 ~bw:1 ~primary:(path g [ 0; 3 ]) ~backups:[]);
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 0; 1; 4 ])
       ~backups:[ path g [ 0; 3; 4 ] ]);
  (* Edge (0,1) failure hits both conns; only one can win the single spare
     unit on 0->3. *)
  let o = FE.evaluate_edge st ~edge:(edge g 0 1) in
  Alcotest.(check int) "both affected" 2 o.FE.affected;
  Alcotest.(check int) "one activates" 1 o.FE.activated

let test_greedy_order_is_conn_id () =
  let g, st = mesh_state ~capacity:2 () in
  ignore (Net_state.admit st ~id:10 ~bw:1 ~primary:(path g [ 0; 3 ]) ~backups:[]);
  (* Register higher id first: the evaluator must still grant id 1 first. *)
  ignore
    (Net_state.admit st ~id:5 ~bw:1 ~primary:(path g [ 0; 1; 4 ])
       ~backups:[ path g [ 0; 3; 4 ] ]);
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  let o = FE.evaluate_edge st ~edge:(edge g 0 1) in
  Alcotest.(check int) "one winner" 1 o.FE.activated

let test_spare_only_vs_free () =
  let g, st = mesh_state ~capacity:3 () in
  ignore (Net_state.admit st ~id:10 ~bw:1 ~primary:(path g [ 0; 3 ]) ~backups:[]);
  (* One spare unit reserved on 0->3 (deficit 1), free = 1 there. *)
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 0; 1; 4 ])
       ~backups:[ path g [ 0; 3; 4 ] ]);
  (* capacity 3: prime 1 + spare 2 -> both fit via spare alone. *)
  let strict = FE.evaluate_edge st ~edge:(edge g 0 1) in
  Alcotest.(check int) "spare covers both" 2 strict.FE.activated;
  (* Under capacity 2 the spare pool is 1; free-bw mode cannot help since
     free is 0, but with capacity 3 both modes agree. *)
  let loose = FE.evaluate_edge ~spare_only:false st ~edge:(edge g 0 1) in
  Alcotest.(check int) "free mode agrees here" 2 loose.FE.activated

let test_aggregation () =
  let g, st = mesh_state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 6; 7; 8 ])
       ~backups:[ path g [ 6; 3; 4; 5; 8 ] ]);
  let r = FE.evaluate st in
  Alcotest.(check int) "4 edges evaluated" 4 r.FE.edges_evaluated;
  Alcotest.(check int) "per-edge records" 4 (List.length r.FE.per_edge);
  let sum_affected =
    List.fold_left (fun acc (o : FE.edge_outcome) -> acc + o.FE.affected) 0 r.FE.per_edge
  in
  Alcotest.(check int) "per-edge sums to attempts" r.FE.attempts sum_affected

let test_does_not_mutate () =
  let g, st = mesh_state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  let before = Drtp.Resources.total_spare (Net_state.resources st) in
  ignore (FE.evaluate st);
  ignore (FE.evaluate st);
  Alcotest.(check int) "state untouched" before
    (Drtp.Resources.total_spare (Net_state.resources st));
  Alcotest.(check bool) "invariants hold" true (Net_state.check_invariants st = Ok ())

let test_pair_loses_backup_too () =
  let g, st = mesh_state () in
  (* Primary 0-1-2, backup 0-3-4-5-2.  Failing (0,1) alone is survivable;
     failing (0,1) together with a backup edge is not. *)
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  let e_prim = edge g 0 1 and e_back = edge g 3 4 and e_other = edge g 6 7 in
  let o_both = FE.evaluate_edge_pair st ~edges:(e_prim, e_back) in
  Alcotest.(check int) "affected" 1 o_both.FE.affected;
  Alcotest.(check int) "backup died too" 0 o_both.FE.activated;
  let o_ok = FE.evaluate_edge_pair st ~edges:(e_prim, e_other) in
  Alcotest.(check int) "unrelated second failure harmless" 1 o_ok.FE.activated

let test_pair_contention_beyond_single_sizing () =
  let g, st = mesh_state ~capacity:2 () in
  (* Disjoint primaries -> multiplexing reserves ONE unit on the shared
     backup corridor (correct for single failures).  Failing both primaries
     at once overloads it. *)
  ignore (Net_state.admit st ~id:10 ~bw:1 ~primary:(path g [ 3; 6 ]) ~backups:[]);
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 6; 7; 8 ])
       ~backups:[ path g [ 6; 3; 4; 5; 8 ] ]);
  (* Both backups share links 3->4 and 4->5; primaries are disjoint, so the
     spare requirement there is 1 unit.  Starve link 3->4 so it cannot hold
     more than 1: capacity 2, prime 0... grow is capped by requirement
     anyway. *)
  let o = FE.evaluate_edge_pair st ~edges:(edge g 0 1, edge g 7 8) in
  Alcotest.(check int) "both victims" 2 o.FE.affected;
  Alcotest.(check int) "single-failure sizing admits one" 1 o.FE.activated;
  (* Each failure alone is fully survivable. *)
  Alcotest.(check int) "alone ok" 1 (FE.evaluate_edge st ~edge:(edge g 0 1)).FE.activated;
  Alcotest.(check int) "alone ok" 1 (FE.evaluate_edge st ~edge:(edge g 7 8)).FE.activated

let test_double_monte_carlo () =
  let g, st = mesh_state () in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ]);
  let r = FE.evaluate_double ~samples:50 st in
  Alcotest.(check bool) "ft in [0,1]" true
    (FE.fault_tolerance r >= 0.0 && FE.fault_tolerance r <= 1.0);
  (* Deterministic under a fixed seed. *)
  let r2 = FE.evaluate_double ~samples:50 st in
  Alcotest.(check int) "deterministic" r.FE.successes r2.FE.successes;
  (* Double-failure tolerance cannot beat single-failure tolerance here. *)
  let single = FE.fault_tolerance (FE.evaluate st) in
  Alcotest.(check bool) "double <= single" true
    (FE.fault_tolerance r <= single +. 1e-9)

let suite =
  [
    ( "drtp.failure_eval",
      [
        Alcotest.test_case "empty network" `Quick test_empty_network;
        Alcotest.test_case "protected connection survives" `Quick test_protected_connection_survives;
        Alcotest.test_case "unprotected fails" `Quick test_unprotected_connection_fails;
        Alcotest.test_case "backup crossing failed edge" `Quick test_backup_crossing_failed_edge;
        Alcotest.test_case "spare contention" `Quick test_spare_contention;
        Alcotest.test_case "greedy grant order" `Quick test_greedy_order_is_conn_id;
        Alcotest.test_case "spare-only vs free mode" `Quick test_spare_only_vs_free;
        Alcotest.test_case "aggregation" `Quick test_aggregation;
        Alcotest.test_case "evaluation is pure" `Quick test_does_not_mutate;
        Alcotest.test_case "pair kills backup too" `Quick test_pair_loses_backup_too;
        Alcotest.test_case "pair overloads single sizing" `Quick test_pair_contention_beyond_single_sizing;
        Alcotest.test_case "double-failure monte carlo" `Quick test_double_monte_carlo;
      ] );
  ]

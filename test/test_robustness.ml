module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Net_state = Drtp.Net_state
module Recovery = Drtp.Recovery
module Routing = Drtp.Routing
module Manager = Drtp.Manager
module Faults = Dr_faults.Faults
module Config = Dr_exp.Config
module Robustness = Dr_exp.Robustness_exp

let cfg =
  {
    Config.default with
    Config.nodes = 20;
    capacity = 10;
    warmup = 100.0;
    horizon = 600.0;
    sample_every = 100.0;
  }

let cell ?(loss = 0.0) ?(mtbf = 50.0) ?(mttr = 25.0) ?(queue = true)
    ?(fault_layer = true) ?(seed = 9) () =
  Robustness.run_cell cfg ~avg_degree:3.0 ~traffic:Config.UT ~lambda:0.1
    ~scheme:Routing.Dlsr ~loss ~mtbf ~mttr ~seed ~queue ~fault_layer ()

let mesh_state ?(capacity = 10) () =
  let graph = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  (graph, Net_state.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed)

let path g nodes = Path.of_nodes g nodes
let edge g a b = Graph.edge_of_link (Option.get (Graph.find_link g ~src:a ~dst:b))

let admit_protected g st =
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1; 2 ])
       ~backups:[ path g [ 0; 3; 4; 5; 2 ] ])

(* ---- zero-fault transparency -------------------------------------------- *)

let test_zero_spec_report_identical () =
  let g, st_plain = mesh_state () in
  admit_protected g st_plain;
  let plain = Recovery.fail_edge_drtp st_plain ~scheme:Routing.Dlsr ~edge:(edge g 0 1) () in
  let g2, st_faulty = mesh_state () in
  admit_protected g2 st_faulty;
  let faults = Faults.create ~seed:123 Faults.zero_spec in
  let faulty =
    Recovery.fail_edge_drtp st_faulty ~scheme:Routing.Dlsr ~faults ~edge:(edge g2 0 1) ()
  in
  Alcotest.(check bool) "reports structurally identical" true (plain = faulty);
  Alcotest.(check int) "no retransmits" 0 faulty.Recovery.retransmits;
  Alcotest.(check int) "no drops" 0 faulty.Recovery.messages_dropped

let test_zero_loss_cell_identical_to_no_layer () =
  (* The CI gate in miniature: loss 0 with the fault layer installed must
     produce exactly the row the historical lossless path produces. *)
  let with_layer = cell ~loss:0.0 ~fault_layer:true () in
  let without = cell ~loss:0.0 ~fault_layer:false () in
  Alcotest.(check bool) "rows identical" true (with_layer = without);
  Alcotest.(check int) "no retransmits at loss 0" 0 with_layer.Robustness.retransmits

(* ---- deterministic loss behaviour --------------------------------------- *)

let test_activation_loss_falls_back () =
  let g, st = mesh_state () in
  admit_protected g st;
  let clean_g, clean_st = mesh_state () in
  admit_protected clean_g clean_st;
  let clean =
    Recovery.fail_edge_drtp clean_st ~scheme:Routing.Dlsr ~edge:(edge clean_g 0 1) ()
  in
  let clean_latency =
    match clean.Recovery.outcomes with
    | [ (_, Recovery.Switched { latency; _ }) ] -> latency
    | _ -> Alcotest.fail "clean run should switch"
  in
  let faults =
    Faults.create ~seed:1 { Faults.zero_spec with Faults.p_activation = 1.0 }
  in
  let report =
    Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~faults ~edge:(edge g 0 1) ()
  in
  (match report.Recovery.outcomes with
  | [ (1, Recovery.Rerouted { latency; _ }) ] ->
      Alcotest.(check bool) "retransmission backoff dominates" true
        (latency > clean_latency +. 1.0)
  | _ -> Alcotest.fail "expected reactive fallback after activation loss");
  let r = Recovery.default_retrans in
  Alcotest.(check int) "all retransmits spent" r.Recovery.max_retransmits
    report.Recovery.retransmits;
  Alcotest.(check int) "original + retransmits all lost"
    (r.Recovery.max_retransmits + 1)
    report.Recovery.messages_dropped;
  Alcotest.(check (list int)) "fallback left it unprotected" [ 1 ]
    report.Recovery.unprotected_ids;
  Alcotest.(check bool) "invariants hold" true (Net_state.check_invariants st = Ok ())

let test_report_loss_falls_back () =
  let g, st = mesh_state () in
  admit_protected g st;
  let faults = Faults.create ~seed:1 { Faults.zero_spec with Faults.p_report = 1.0 } in
  let report =
    Recovery.fail_edge_drtp st ~scheme:Routing.Dlsr ~faults ~edge:(edge g 0 1) ()
  in
  (match report.Recovery.outcomes with
  | [ (1, Recovery.Rerouted _) ] -> ()
  | _ -> Alcotest.fail "expected fallback when the report never arrives");
  let r = Recovery.default_retrans in
  Alcotest.(check int) "report retransmitted to exhaustion"
    r.Recovery.max_retransmits report.Recovery.retransmits

let test_lossy_cell_raises_latency () =
  (* Differential: same churn timeline, loss 0 vs loss 0.3 — retransmission
     backoff must push the mean recovery latency up. *)
  let lossless = cell ~loss:0.0 () in
  let lossy = cell ~loss:0.3 () in
  Alcotest.(check bool) "losses actually occurred" true
    (lossy.Robustness.messages_dropped > 0);
  Alcotest.(check bool) "retransmissions occurred" true
    (lossy.Robustness.retransmits > 0);
  Alcotest.(check bool) "latency strictly higher under loss" true
    (lossy.Robustness.latency_mean_ms > lossless.Robustness.latency_mean_ms)

(* ---- reprotection queue ------------------------------------------------- *)

let test_queue_recovers_at_least_baseline () =
  let with_queue = cell ~loss:0.3 ~mtbf:30.0 ~mttr:20.0 () in
  let without = cell ~loss:0.3 ~mtbf:30.0 ~mttr:20.0 ~queue:false () in
  Alcotest.(check bool) "queue saw traffic" true
    (with_queue.Robustness.reprotect_queued > 0);
  Alcotest.(check bool) "queue drained some waiters" true
    (with_queue.Robustness.reprotect_drained > 0);
  Alcotest.(check bool) "success ratio at least the no-queue baseline" true
    (with_queue.Robustness.success_ratio >= without.Robustness.success_ratio);
  Alcotest.(check int) "no-queue baseline never queues" 0
    without.Robustness.reprotect_queued

let test_manager_queue_unit () =
  let graph = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  let route = Routing.link_state_route_fn Routing.Dlsr ~with_backup:true in
  let manager =
    Manager.create ~graph ~capacity:10 ~spare_policy:Net_state.Multiplexed ~route
  in
  let st = Manager.state manager in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(Path.of_nodes graph [ 0; 1; 2 ])
       ~backups:[]);
  ignore
    (Net_state.admit st ~id:2 ~bw:1
       ~primary:(Path.of_nodes graph [ 6; 7; 8 ])
       ~backups:[ Path.of_nodes graph [ 6; 3; 4; 5; 8 ] ]);
  (* Backup-less conn 1 queues; protected conn 2 and unknown conn 99 are
     no-ops; double-queueing is idempotent. *)
  Manager.queue_reprotect manager ~id:1 ~scheme:Routing.Dlsr ~now:10.0 ();
  Manager.queue_reprotect manager ~id:1 ~scheme:Routing.Dlsr ~now:11.0 ();
  Manager.queue_reprotect manager ~id:2 ~scheme:Routing.Dlsr ~now:12.0 ();
  Manager.queue_reprotect manager ~id:99 ~scheme:Routing.Dlsr ~now:13.0 ();
  Alcotest.(check int) "only the unprotected conn waits" 1
    (Manager.reprotect_pending manager);
  let drained = Manager.drain_reprotect manager ~now:20.0 in
  Alcotest.(check int) "drained" 1 drained;
  Alcotest.(check int) "queue empty" 0 (Manager.reprotect_pending manager);
  let conn = Option.get (Net_state.find st 1) in
  Alcotest.(check bool) "conn regained a backup" true (conn.Net_state.backups <> []);
  let rs = Manager.reprotect_stats manager in
  Alcotest.(check int) "queued once" 1 rs.Manager.queued;
  Alcotest.(check int) "drained once" 1 rs.Manager.drained;
  Alcotest.(check bool) "unprotected time charged" true
    (rs.Manager.unprotected_time >= 10.0 -. 1e-9);
  Alcotest.(check bool) "invariants hold" true (Net_state.check_invariants st = Ok ())

let test_manager_queue_flush_abandons () =
  (* Ring of 4 at capacity 1: no disjoint backup can ever be found, so the
     entry waits until flush abandons it. *)
  let graph = Dr_topo.Gen.ring 4 in
  let route = Routing.link_state_route_fn Routing.Dlsr ~with_backup:true in
  let manager =
    Manager.create ~graph ~capacity:1 ~spare_policy:Net_state.Multiplexed ~route
  in
  let st = Manager.state manager in
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(Path.of_nodes graph [ 0; 1 ]) ~backups:[]);
  ignore
    (Net_state.admit st ~id:2 ~bw:1 ~primary:(Path.of_nodes graph [ 3; 2 ]) ~backups:[]);
  Manager.queue_reprotect manager ~id:1 ~scheme:Routing.Dlsr ~now:0.0 ();
  let drained = Manager.drain_reprotect manager ~now:50.0 in
  Alcotest.(check int) "nothing drained under shortage" 0 drained;
  Alcotest.(check int) "still waiting" 1 (Manager.reprotect_pending manager);
  Manager.flush_reprotect manager ~now:100.0;
  let rs = Manager.reprotect_stats manager in
  Alcotest.(check int) "abandoned at flush" 1 rs.Manager.abandoned;
  Alcotest.(check int) "queue emptied" 0 (Manager.reprotect_pending manager);
  Alcotest.(check (float 1e-9)) "waited the whole window" 100.0
    rs.Manager.unprotected_time;
  Alcotest.(check bool) "searches were attempted" true (rs.Manager.attempts > 0)

(* ---- parallel determinism ----------------------------------------------- *)

let test_sweep_jobs_independent () =
  let losses = [ 0.0; 0.2 ] and mtbfs = [ 60.0 ] in
  let sweep pool =
    Robustness.run ?pool cfg ~avg_degree:3.0 ~traffic:Config.UT ~lambda:0.1
      ~scheme:Routing.Dlsr ~losses ~mtbfs ~mttr:25.0 ~seed:5 ()
  in
  let sequential = sweep None in
  let parallel =
    Dr_parallel.Pool.with_pool ~jobs:2 (fun pool -> sweep (Some pool))
  in
  Alcotest.(check int) "cell count" (List.length losses * List.length mtbfs)
    (List.length sequential);
  Alcotest.(check bool) "rows byte-equal across jobs" true (sequential = parallel)

let suite =
  [
    ( "experiments.robustness",
      [
        Alcotest.test_case "zero-spec report identical" `Quick test_zero_spec_report_identical;
        Alcotest.test_case "zero-loss cell = no fault layer" `Quick test_zero_loss_cell_identical_to_no_layer;
        Alcotest.test_case "activation loss falls back" `Quick test_activation_loss_falls_back;
        Alcotest.test_case "report loss falls back" `Quick test_report_loss_falls_back;
        Alcotest.test_case "loss raises recovery latency" `Quick test_lossy_cell_raises_latency;
        Alcotest.test_case "queue >= no-queue success" `Quick test_queue_recovers_at_least_baseline;
        Alcotest.test_case "manager queue unit" `Quick test_manager_queue_unit;
        Alcotest.test_case "manager queue flush abandons" `Quick test_manager_queue_flush_abandons;
        Alcotest.test_case "sweep independent of --jobs" `Quick test_sweep_jobs_independent;
      ] );
  ]

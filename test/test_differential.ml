(* Differential tests: the routing fast path ({!Drtp.Routing}) against the
   reference oracle ({!Drtp.Routing_reference}), driven through the
   {!Drtp.Routing_check} harness.  A single divergent route, a single bit
   of a cost decomposition, or a single drifted incremental cache fails
   these tests. *)

module RC = Drtp.Routing_check

let property ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let fail_report r =
  Alcotest.failf "%d divergences:@.%a" r.RC.divergence_count RC.pp_report r

(* The acceptance-criteria run: the harness defaults replay >= 500
   randomized admissions (4 graphs x 3 schemes x 60 attempts, with
   edge/node failure churn) and must see zero divergence. *)
let test_default_run () =
  let r = RC.run RC.default_params in
  if r.RC.divergence_count > 0 then fail_report r;
  Alcotest.(check bool)
    "at least 500 admissions exercised" true
    (r.RC.admissions_checked >= 500);
  Alcotest.(check int) "all graphs ran" RC.default_params.RC.graphs
    r.RC.graphs_run;
  Alcotest.(check bool) "churn actually happened" true (r.RC.churn_events > 0);
  Alcotest.(check bool)
    "some admissions were accepted" true (r.RC.admitted > 0)

(* Heavy churn: fail/restore after nearly every admission, so most verdict
   comparisons run against a degraded network (Dead links, promoted spare,
   partially-released state). *)
let test_churn_heavy () =
  let params =
    {
      RC.default_params with
      RC.graphs = 2;
      nodes = 16;
      admissions = 40;
      churn_every = 2;
      invariants_every = 5;
      seed = 1234;
    }
  in
  let r = RC.run params in
  if r.RC.divergence_count > 0 then fail_report r;
  Alcotest.(check bool) "churned" true (r.RC.churn_events >= 30)

(* No-churn control: the caches must also agree on a healthy network. *)
let test_no_churn () =
  let params =
    {
      RC.default_params with
      RC.graphs = 1;
      nodes = 24;
      admissions = 50;
      churn_every = 0;
      seed = 99;
    }
  in
  let r = RC.run params in
  if r.RC.divergence_count > 0 then fail_report r

(* qcheck: any seed, any small topology — fast path and oracle agree. *)
let prop_random_seeds =
  property ~count:12 "fast path = oracle on random seeds/topologies"
    QCheck.(pair (int_range 0 100_000) (int_range 10 20))
    (fun (seed, nodes) ->
      let params =
        {
          RC.default_params with
          RC.graphs = 1;
          nodes;
          admissions = 15;
          churn_every = 3;
          invariants_every = 7;
          seed;
          max_bw = 3;
          capacity = 30;
        }
      in
      let r = RC.run_graph params ~graph_index:0 in
      if r.RC.divergence_count > 0 then
        QCheck.Test.fail_reportf "%a" RC.pp_report r;
      true)

let test_report_merge () =
  let r = { RC.empty_report with RC.graphs_run = 1; admissions_checked = 5 } in
  let m = RC.merge r (RC.merge r r) in
  Alcotest.(check int) "graphs sum" 3 m.RC.graphs_run;
  Alcotest.(check int) "admissions sum" 15 m.RC.admissions_checked

let suite =
  [
    ( "differential",
      [
        Alcotest.test_case "default run: >=500 admissions, 0 divergence" `Slow
          test_default_run;
        Alcotest.test_case "heavy churn" `Quick test_churn_heavy;
        Alcotest.test_case "no churn" `Quick test_no_churn;
        Alcotest.test_case "report merge" `Quick test_report_merge;
        prop_random_seeds;
      ] );
  ]

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing
module BF = Dr_flood.Bounded_flood
module Faults = Dr_faults.Faults
module J = Dr_obs.Journal

let mesh_state ?(capacity = 10) () =
  let graph = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  (graph, Net_state.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed)

let hop_matrix st = Dr_topo.Shortest_path.hop_matrix (Net_state.graph st)

let path g nodes = Path.of_nodes g nodes

let test_candidates_reach_destination () =
  let _, st = mesh_state () in
  let r = BF.discover BF.default_config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:8 ~bw:1 in
  Alcotest.(check bool) "found candidates" true (List.length r.BF.candidates > 0);
  Alcotest.(check bool) "messages counted" true (r.BF.messages > 0);
  Alcotest.(check bool) "not truncated" false r.BF.truncated;
  let g = Net_state.graph st in
  List.iter
    (fun c ->
      Alcotest.(check int) "src" 0 (Path.src c.BF.path);
      Alcotest.(check int) "dst" 8 (Path.dst c.BF.path);
      Alcotest.(check int) "hops consistent" (Path.hops c.BF.path) c.BF.hops;
      Alcotest.(check bool) "loop-free" true (Path.is_simple g c.BF.path))
    r.BF.candidates

let test_hop_limit_respected () =
  let _, st = mesh_state () in
  (* min-hop 0->8 is 4; with rho=1, beta0=2 no candidate may exceed 6. *)
  let r = BF.discover BF.default_config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:8 ~bw:1 in
  List.iter
    (fun c -> Alcotest.(check bool) "within hc_limit" true (c.BF.hops <= 6))
    r.BF.candidates

let test_tight_bound_shortest_only () =
  let _, st = mesh_state () in
  let config = { BF.default_config with beta0 = 0; beta1 = 0 } in
  let r = BF.discover config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:8 ~bw:1 in
  List.iter
    (fun c -> Alcotest.(check int) "only min-hop routes" 4 c.BF.hops)
    r.BF.candidates;
  (* The 3x3 mesh has exactly 6 monotone corner-to-corner routes. *)
  Alcotest.(check int) "all six shortest found" 6 (List.length r.BF.candidates)

let test_widening_monotone () =
  let _, st = mesh_state () in
  let count beta0 beta1 =
    let config = { BF.default_config with beta0; beta1 } in
    let r = BF.discover config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:8 ~bw:1 in
    (List.length r.BF.candidates, r.BF.messages)
  in
  let c0, m0 = count 0 0 in
  let c2, m2 = count 2 1 in
  Alcotest.(check bool) "wider flood, more candidates" true (c2 >= c0);
  Alcotest.(check bool) "wider flood, more messages" true (m2 > m0)

let test_bandwidth_test_prunes () =
  let g, st = mesh_state ~capacity:1 () in
  (* Saturate link 0->1 in the primary sense: prime = capacity. *)
  ignore (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 0; 1 ]) ~backups:[]);
  let r = BF.discover BF.default_config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:2 ~bw:1 in
  let l01 = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  List.iter
    (fun c ->
      Alcotest.(check bool) "full link never crossed" false
        (Path.contains_link c.BF.path l01))
    r.BF.candidates

let test_primary_flag_tracks_free_bw () =
  let g, st = mesh_state ~capacity:2 () in
  (* Spare consumes 0->1's last free unit: still backup-feasible, not
     primary-feasible. *)
  ignore
    (Net_state.admit st ~id:1 ~bw:1 ~primary:(path g [ 3; 4; 5 ])
       ~backups:[ path g [ 3; 0; 1; 2; 5 ] ]);
  ignore (Net_state.admit st ~id:2 ~bw:1 ~primary:(path g [ 0; 1 ]) ~backups:[]);
  let r = BF.discover BF.default_config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:2 ~bw:1 in
  let l01 = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  let through, around =
    List.partition (fun c -> Path.contains_link c.BF.path l01) r.BF.candidates
  in
  Alcotest.(check bool) "some route still crosses 0->1" true (through <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "flag cleared through loaded link" false c.BF.primary_ok)
    through;
  Alcotest.(check bool) "alternatives keep the flag" true
    (List.exists (fun c -> c.BF.primary_ok) around)

let test_rho_widens_limit () =
  let _, st = mesh_state () in
  (* 0->8 min-hop 4; rho=1.5 allows 6-hop routes even with beta0=0. *)
  let config = { BF.default_config with rho = 1.5; beta0 = 0; beta1 = 2 } in
  let r = BF.discover config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:8 ~bw:1 in
  Alcotest.(check bool) "some longer-than-min routes found" true
    (List.exists (fun c -> c.BF.hops > 4) r.BF.candidates);
  List.iter
    (fun c -> Alcotest.(check bool) "within 1.5*D" true (c.BF.hops <= 6))
    r.BF.candidates

let test_alpha_loosens_detours () =
  let _, st = mesh_state () in
  let count alpha =
    let config = { BF.default_config with alpha; beta0 = 2; beta1 = 0 } in
    (BF.discover config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:8 ~bw:1).BF.messages
  in
  Alcotest.(check bool) "alpha=1.5 forwards at least as much as alpha=1" true
    (count 1.5 >= count 1.0)

let test_crt_cap_limits_candidates () =
  let _, st = mesh_state () in
  let config = { BF.default_config with crt_cap = 3 } in
  let r = BF.discover config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:8 ~bw:1 in
  Alcotest.(check int) "CRT capped" 3 (List.length r.BF.candidates)

let test_select_shortest_primary () =
  let _, st = mesh_state () in
  let r = BF.discover BF.default_config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:8 ~bw:1 in
  match BF.select st ~bw:1 r.BF.candidates with
  | Error _ -> Alcotest.fail "selection expected"
  | Ok { Routing.primary; backups } ->
      Alcotest.(check int) "primary is min-hop" 4 (Path.hops primary);
      let b = List.hd backups in
      Alcotest.(check int) "backup disjoint (overlap 0)" 0 (Path.edge_overlap b primary)

let test_select_no_candidates () =
  let _, st = mesh_state () in
  match BF.select st ~bw:1 [] with
  | Error Routing.No_primary -> ()
  | _ -> Alcotest.fail "expected No_primary"

let test_select_single_candidate_no_backup () =
  let g, st = mesh_state () in
  let cand = { BF.path = path g [ 0; 1; 2 ]; primary_ok = true; hops = 2 } in
  (match BF.select ~allow_unprotected:false st ~bw:1 [ cand ] with
  | Error Routing.No_backup -> ()
  | _ -> Alcotest.fail "expected No_backup");
  (* The default destination policy establishes it unprotected instead. *)
  match BF.select st ~bw:1 [ cand ] with
  | Ok { Routing.backups = []; _ } -> ()
  | _ -> Alcotest.fail "expected unprotected acceptance"

let test_select_without_backup_mode () =
  let g, st = mesh_state () in
  let cand = { BF.path = path g [ 0; 1; 2 ]; primary_ok = true; hops = 2 } in
  match BF.select ~with_backup:false st ~bw:1 [ cand ] with
  | Ok { Routing.backups = []; _ } -> ()
  | _ -> Alcotest.fail "expected primary-only acceptance"

let test_select_prefers_low_overlap_over_short () =
  let g, st = mesh_state () in
  let mk nodes flag = { BF.path = path g nodes; primary_ok = flag; hops = List.length nodes - 1 } in
  let primary = mk [ 0; 1; 2 ] true in
  (* Short backup overlapping the primary vs longer disjoint one. *)
  let overlapping = mk [ 0; 1; 4; 5; 2 ] false in
  let disjoint = mk [ 0; 3; 4; 5; 2 ] false in
  match BF.select st ~bw:1 [ primary; overlapping; disjoint ] with
  | Ok { Routing.backups = [ b ]; _ } ->
      Alcotest.(check (list int)) "disjoint wins" [ 0; 3; 4; 5; 2 ] (Path.nodes g b)
  | _ -> Alcotest.fail "selection expected"

let test_select_two_backups () =
  let _, st = mesh_state () in
  let r = BF.discover BF.default_config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:8 ~bw:1 in
  match BF.select ~backup_count:2 st ~bw:1 r.BF.candidates with
  | Ok { Routing.primary; backups = [ b1; b2 ] } ->
      Alcotest.(check int) "b1 disjoint from primary" 0 (Path.edge_overlap b1 primary);
      Alcotest.(check bool) "b2 is a distinct route" true
        (Path.links b1 <> Path.links b2)
  | Ok { Routing.backups; _ } ->
      Alcotest.failf "expected two backups, got %d" (List.length backups)
  | Error _ -> Alcotest.fail "selection expected"

let test_route_fn_end_to_end () =
  let _, st = mesh_state () in
  let stats = BF.fresh_stats () in
  let fn = BF.route_fn ~stats ~hop_matrix:(hop_matrix st) () in
  (match fn st ~src:0 ~dst:8 ~bw:1 with
  | Ok { Routing.primary; backups = [ b ] } ->
      Alcotest.(check int) "primary min-hop" 4 (Path.hops primary);
      Alcotest.(check bool) "backup present" true (Path.hops b >= 4)
  | Ok _ -> Alcotest.fail "backup expected"
  | Error _ -> Alcotest.fail "acceptance expected");
  Alcotest.(check int) "flood counted" 1 stats.BF.floods;
  Alcotest.(check bool) "messages counted" true (stats.BF.total_messages > 0)

let test_cdp_cap_truncates () =
  let _, st = mesh_state () in
  let config = { BF.default_config with cdp_cap = 5 } in
  let r = BF.discover config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:8 ~bw:1 in
  Alcotest.(check bool) "truncated" true r.BF.truncated;
  Alcotest.(check bool) "message cap respected" true (r.BF.messages <= 5)

let test_truncation_surfaced () =
  (* Truncation used to be a silent flag on the result; it must now reach
     both the [on_truncated] hook (the CLI's stderr warning) and the
     journal as a [flood-truncated] event. *)
  let _, st = mesh_state () in
  let config = { BF.default_config with cdp_cap = 5 } in
  let calls = ref [] in
  let old_hook = !BF.on_truncated in
  BF.on_truncated :=
    (fun ~src ~dst ~messages -> calls := (src, dst, messages) :: !calls);
  let was_on = J.enabled () in
  J.set_enabled true;
  let r, entries =
    J.capture (fun () ->
        BF.discover config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:8 ~bw:1)
  in
  J.set_enabled was_on;
  BF.on_truncated := old_hook;
  Alcotest.(check bool) "truncated" true r.BF.truncated;
  Alcotest.(check (list (triple int int int))) "hook fired once"
    [ (0, 8, r.BF.messages) ] !calls;
  let truncation_events =
    List.filter_map
      (fun (e : J.entry) ->
        match e.J.event with
        | J.Flood_truncated { src; dst; messages } -> Some (src, dst, messages)
        | _ -> None)
      entries
  in
  Alcotest.(check (list (triple int int int))) "journalled once"
    [ (0, 8, r.BF.messages) ] truncation_events

let test_untruncated_flood_no_hook () =
  let _, st = mesh_state () in
  let calls = ref 0 in
  let old_hook = !BF.on_truncated in
  BF.on_truncated := (fun ~src:_ ~dst:_ ~messages:_ -> incr calls);
  let r = BF.discover BF.default_config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:8 ~bw:1 in
  BF.on_truncated := old_hook;
  Alcotest.(check bool) "not truncated" false r.BF.truncated;
  Alcotest.(check int) "hook never fired" 0 !calls

let test_cdp_loss_thins_candidates () =
  let _, st = mesh_state () in
  let hm = hop_matrix st in
  let clean = BF.discover BF.default_config st ~hop_matrix:hm ~src:0 ~dst:8 ~bw:1 in
  (* Zero-probability plan: observationally identical to no plan. *)
  let zero = Faults.create ~seed:3 Faults.zero_spec in
  let with_zero =
    BF.discover ~faults:zero BF.default_config st ~hop_matrix:hm ~src:0 ~dst:8 ~bw:1
  in
  Alcotest.(check bool) "zero-spec flood identical" true (clean = with_zero);
  (* Certain loss: every forwarded copy still costs a message but nothing
     survives to the destination. *)
  let all_lost = Faults.create ~seed:3 { Faults.zero_spec with Faults.p_cdp = 1.0 } in
  let r =
    BF.discover ~faults:all_lost BF.default_config st ~hop_matrix:hm ~src:0 ~dst:8 ~bw:1
  in
  Alcotest.(check int) "no candidates survive" 0 (List.length r.BF.candidates);
  Alcotest.(check bool) "losses still cost messages" true (r.BF.messages > 0);
  (* Partial loss thins but need not empty the candidate set. *)
  let lossy = Faults.create ~seed:3 { Faults.zero_spec with Faults.p_cdp = 0.5 } in
  let r2 =
    BF.discover ~faults:lossy BF.default_config st ~hop_matrix:hm ~src:0 ~dst:8 ~bw:1
  in
  Alcotest.(check bool) "no more candidates than lossless" true
    (List.length r2.BF.candidates <= List.length clean.BF.candidates)

let test_unreachable_destination () =
  let graph = Graph.create ~node_count:3 ~edges:[ (0, 1) ] in
  let st = Net_state.create ~graph ~capacity:5 ~spare_policy:Net_state.Multiplexed in
  let hm = Dr_topo.Shortest_path.hop_matrix graph in
  let r = BF.discover BF.default_config st ~hop_matrix:hm ~src:0 ~dst:2 ~bw:1 in
  Alcotest.(check int) "no candidates" 0 (List.length r.BF.candidates);
  Alcotest.(check int) "no messages" 0 r.BF.messages

let test_failed_edge_not_flooded () =
  let g, st = mesh_state () in
  let e01 = Graph.edge_of_link (Option.get (Graph.find_link g ~src:0 ~dst:1)) in
  Net_state.fail_edge st ~edge:e01;
  let r = BF.discover BF.default_config st ~hop_matrix:(hop_matrix st) ~src:0 ~dst:2 ~bw:1 in
  List.iter
    (fun c ->
      Alcotest.(check bool) "failed edge avoided" false (Path.crosses_edge c.BF.path e01))
    r.BF.candidates

let suite =
  [
    ( "flooding.bounded_flood",
      [
        Alcotest.test_case "candidates reach destination" `Quick test_candidates_reach_destination;
        Alcotest.test_case "hop limit respected" `Quick test_hop_limit_respected;
        Alcotest.test_case "tight bound = shortest only" `Quick test_tight_bound_shortest_only;
        Alcotest.test_case "widening is monotone" `Quick test_widening_monotone;
        Alcotest.test_case "bandwidth test prunes" `Quick test_bandwidth_test_prunes;
        Alcotest.test_case "primary flag tracks free bw" `Quick test_primary_flag_tracks_free_bw;
        Alcotest.test_case "select shortest primary" `Quick test_select_shortest_primary;
        Alcotest.test_case "select with no candidates" `Quick test_select_no_candidates;
        Alcotest.test_case "single candidate -> no backup" `Quick test_select_single_candidate_no_backup;
        Alcotest.test_case "select without backup" `Quick test_select_without_backup_mode;
        Alcotest.test_case "overlap beats length" `Quick test_select_prefers_low_overlap_over_short;
        Alcotest.test_case "two backups from the CRT" `Quick test_select_two_backups;
        Alcotest.test_case "rho widens the hop limit" `Quick test_rho_widens_limit;
        Alcotest.test_case "alpha loosens the detour test" `Quick test_alpha_loosens_detours;
        Alcotest.test_case "crt cap" `Quick test_crt_cap_limits_candidates;
        Alcotest.test_case "route_fn end-to-end" `Quick test_route_fn_end_to_end;
        Alcotest.test_case "cdp cap truncates" `Quick test_cdp_cap_truncates;
        Alcotest.test_case "truncation surfaced" `Quick test_truncation_surfaced;
        Alcotest.test_case "no hook without truncation" `Quick test_untruncated_flood_no_hook;
        Alcotest.test_case "cdp loss thins candidates" `Quick test_cdp_loss_thins_candidates;
        Alcotest.test_case "unreachable destination" `Quick test_unreachable_destination;
        Alcotest.test_case "failed edges not flooded" `Quick test_failed_edge_not_flooded;
      ] );
  ]

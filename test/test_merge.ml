(* Properties of the parallel-merge operations: Summary.merge and
   Histogram.merge must combine per-worker accumulators as if a single
   stream had seen every observation. *)

module Summary = Dr_stats.Summary
module Histogram = Dr_stats.Histogram

let property ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let samples = QCheck.(list (float_bound_inclusive 1000.0))

let summary_of xs =
  let s = Summary.create () in
  List.iter (Summary.add s) xs;
  s

(* Welford merging is exact on counts and floating-point-associative only
   up to rounding on the moments; empty summaries have nan means. *)
let feq a b =
  (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a +. Float.abs b)

let summary_eq a b =
  Summary.count a = Summary.count b
  && feq (Summary.total_weight a) (Summary.total_weight b)
  && feq (Summary.mean a) (Summary.mean b)
  && feq (Summary.variance a) (Summary.variance b)
  && feq (Summary.min_value a) (Summary.min_value b)
  && feq (Summary.max_value a) (Summary.max_value b)

let prop_summary_split =
  property "Summary.merge of a split = one stream"
    QCheck.(pair samples samples)
    (fun (xs, ys) ->
      summary_eq
        (summary_of (xs @ ys))
        (Summary.merge (summary_of xs) (summary_of ys)))

let prop_summary_commutative =
  property "Summary.merge commutative"
    QCheck.(pair samples samples)
    (fun (xs, ys) ->
      let a = summary_of xs and b = summary_of ys in
      summary_eq (Summary.merge a b) (Summary.merge b a))

let prop_summary_associative =
  property "Summary.merge associative (up to float rounding)"
    QCheck.(triple samples samples samples)
    (fun (xs, ys, zs) ->
      let a = summary_of xs and b = summary_of ys and c = summary_of zs in
      summary_eq
        (Summary.merge (Summary.merge a b) c)
        (Summary.merge a (Summary.merge b c)))

(* Histograms count into integer bins, so every histogram property is
   exact, not approximate.  The generator range straddles [lo, hi) to
   exercise the under/overflow counters. *)
let hist_samples =
  QCheck.(list (map (fun x -> x -. 25.0) (float_bound_inclusive 150.0)))

let hist_of xs =
  let h = Histogram.create ~lo:0.0 ~hi:100.0 ~bins:8 in
  List.iter (Histogram.add h) xs;
  h

let hist_eq a b =
  Histogram.bin_counts a = Histogram.bin_counts b
  && Histogram.count a = Histogram.count b
  && Histogram.underflow a = Histogram.underflow b
  && Histogram.overflow a = Histogram.overflow b

let prop_hist_split =
  property "Histogram.merge of a split = one stream"
    QCheck.(pair hist_samples hist_samples)
    (fun (xs, ys) ->
      hist_eq (hist_of (xs @ ys)) (Histogram.merge (hist_of xs) (hist_of ys)))

let prop_hist_commutative =
  property "Histogram.merge commutative"
    QCheck.(pair hist_samples hist_samples)
    (fun (xs, ys) ->
      let a = hist_of xs and b = hist_of ys in
      hist_eq (Histogram.merge a b) (Histogram.merge b a))

let prop_hist_associative =
  property "Histogram.merge associative"
    QCheck.(triple hist_samples hist_samples hist_samples)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      hist_eq
        (Histogram.merge (Histogram.merge a b) c)
        (Histogram.merge a (Histogram.merge b c)))

let test_hist_layout_mismatch () =
  let check_raises a b =
    Alcotest.check_raises "incompatible layouts"
      (Invalid_argument "Histogram.merge: incompatible bin layouts") (fun () ->
        ignore (Histogram.merge a b))
  in
  check_raises
    (Histogram.create ~lo:0.0 ~hi:10.0 ~bins:4)
    (Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5);
  check_raises
    (Histogram.create ~lo:0.0 ~hi:10.0 ~bins:4)
    (Histogram.create ~lo:1.0 ~hi:10.0 ~bins:4);
  check_raises
    (Histogram.create ~lo:0.0 ~hi:10.0 ~bins:4)
    (Histogram.create ~lo:0.0 ~hi:20.0 ~bins:4)

let suite =
  [
    ( "merge",
      [
        prop_summary_split;
        prop_summary_commutative;
        prop_summary_associative;
        prop_hist_split;
        prop_hist_commutative;
        prop_hist_associative;
        Alcotest.test_case "histogram layout mismatch" `Quick
          test_hist_layout_mismatch;
      ] );
  ]

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Flow = Dr_topo.Flow

let test_single_path () =
  let g = Graph.create ~node_count:3 ~edges:[ (0, 1); (1, 2) ] in
  let n, paths = Flow.max_disjoint_paths g ~src:0 ~dst:2 () in
  Alcotest.(check int) "one path" 1 n;
  Alcotest.(check int) "one decomposed" 1 (List.length paths)

let test_ring () =
  let g = Dr_topo.Gen.ring 6 in
  let n, paths = Flow.max_disjoint_paths g ~src:0 ~dst:3 () in
  Alcotest.(check int) "two disjoint around the ring" 2 n;
  Alcotest.(check int) "two paths decomposed" 2 (List.length paths);
  (* The two paths must be link-disjoint. *)
  match paths with
  | [ a; b ] -> Alcotest.(check int) "disjoint" 0 (Path.link_overlap a b)
  | _ -> Alcotest.fail "expected two paths"

let test_complete_graph () =
  let g = Dr_topo.Gen.complete 5 in
  let n, _ = Flow.max_disjoint_paths g ~src:0 ~dst:4 () in
  Alcotest.(check int) "K5 gives 4 disjoint paths" 4 n

let test_grid_corner () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  let n, _ = Flow.max_disjoint_paths g ~src:0 ~dst:8 () in
  Alcotest.(check int) "corner degree bounds flow" 2 n

let test_disconnected () =
  let g = Graph.create ~node_count:4 ~edges:[ (0, 1); (2, 3) ] in
  let n, paths = Flow.max_disjoint_paths g ~src:0 ~dst:3 () in
  Alcotest.(check int) "no path" 0 n;
  Alcotest.(check int) "no decomposition" 0 (List.length paths)

let test_usable_restriction () =
  let g = Dr_topo.Gen.ring 6 in
  (* Ban one direction of edge (0,1): the clockwise path disappears. *)
  let l01 = Option.get (Graph.find_link g ~src:0 ~dst:1) in
  let n, _ = Flow.max_disjoint_paths g ~usable:(fun l -> l <> l01) ~src:0 ~dst:3 () in
  Alcotest.(check int) "one path left" 1 n

let test_decomposition_valid () =
  let g = Dr_topo.Gen.mesh ~rows:3 ~cols:4 in
  let n, paths = Flow.max_disjoint_paths g ~src:0 ~dst:11 () in
  Alcotest.(check int) "count matches decomposition" n (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check int) "starts at src" 0 (Path.src p);
      Alcotest.(check int) "ends at dst" 11 (Path.dst p))
    paths;
  (* Pairwise link-disjoint. *)
  let rec pairwise = function
    | [] -> ()
    | p :: rest ->
        List.iter
          (fun q -> Alcotest.(check int) "pairwise disjoint" 0 (Path.link_overlap p q))
          rest;
        pairwise rest
  in
  pairwise paths

let test_edge_disjoint_ring () =
  let g = Dr_topo.Gen.ring 6 in
  Alcotest.(check int) "two edge-disjoint" 2 (Flow.edge_disjoint_paths g ~src:0 ~dst:3)

let test_edge_disjoint_bridge () =
  (* Two triangles joined by a bridge: only one edge-disjoint path across. *)
  let g =
    Graph.create ~node_count:6
      ~edges:[ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 5); (5, 3) ]
  in
  Alcotest.(check int) "bridge limits to 1" 1 (Flow.edge_disjoint_paths g ~src:0 ~dst:5)

let test_edge_disjoint_vs_double_ring () =
  let g = Dr_topo.Gen.double_ring 8 in
  Alcotest.(check int) "ring+chord gives 3" 3 (Flow.edge_disjoint_paths g ~src:0 ~dst:4)

let test_src_eq_dst_rejected () =
  let g = Dr_topo.Gen.ring 4 in
  Alcotest.(check bool) "src=dst raises" true
    (try ignore (Flow.max_disjoint_paths g ~src:1 ~dst:1 ()); false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "topology.flow",
      [
        Alcotest.test_case "single path" `Quick test_single_path;
        Alcotest.test_case "ring" `Quick test_ring;
        Alcotest.test_case "complete graph" `Quick test_complete_graph;
        Alcotest.test_case "grid corner" `Quick test_grid_corner;
        Alcotest.test_case "disconnected" `Quick test_disconnected;
        Alcotest.test_case "usable restriction" `Quick test_usable_restriction;
        Alcotest.test_case "decomposition valid" `Quick test_decomposition_valid;
        Alcotest.test_case "edge-disjoint on ring" `Quick test_edge_disjoint_ring;
        Alcotest.test_case "edge-disjoint across bridge" `Quick test_edge_disjoint_bridge;
        Alcotest.test_case "edge-disjoint on double ring" `Quick test_edge_disjoint_vs_double_ring;
        Alcotest.test_case "src=dst rejected" `Quick test_src_eq_dst_rejected;
      ] );
  ]

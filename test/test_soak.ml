(* Randomized invariant soak: a long random walk over the whole Net_state
   mutation surface — admit, release, fail/restore edge and node, backup
   promotion, backup replacement, primary reroute — asserting the deep
   invariant check (which includes the incremental routing-cache
   coherence check) after every single step.  This is the test that
   catches a cache delta wired into only {e most} of the mutation paths. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing
module Rng = Dr_rng.Splitmix64
module Dist = Dr_rng.Dist

let check step state =
  match Net_state.check_invariants state with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "step %d: invariant violated: %s" step msg

let active_ids state =
  let ids = ref [] in
  Net_state.iter_conns state (fun c -> ids := c.Net_state.id :: !ids);
  List.sort compare !ids

let pick_active rng state =
  match active_ids state with
  | [] -> None
  | ids -> Some (List.nth ids (Dist.uniform_int rng ~lo:0 ~hi:(List.length ids - 1)))

let failed_edges state graph =
  let es = ref [] in
  Graph.iter_edges graph (fun e ->
      if Net_state.edge_failed state ~edge:e then es := e :: !es);
  !es

(* One soak walk on one topology/scheme. *)
let soak ~steps ~seed ~scheme graph =
  let state =
    Net_state.create ~graph ~capacity:50 ~spare_policy:Net_state.Multiplexed
  in
  let rng = Rng.create seed in
  let n = Graph.node_count graph in
  let next_id = ref 0 in
  (* Interleaved service-layer snapshots: capture mid-walk, keep walking,
     roll back 25 steps later.  The restored state must be bit-identical
     (full accessor digest, including the aplv_norm/conflict mirrors) and
     pass the deep invariant check — this is the soak-side witness that
     what-if speculation can never corrupt the truth. *)
  let pending = ref None in
  for step = 1 to steps do
    (match Dist.uniform_int rng ~lo:0 ~hi:9 with
    | 0 | 1 | 2 | 3 -> (
        (* admit *)
        let src, dst = Dist.pick_distinct_pair rng n in
        let bw = Dist.uniform_int rng ~lo:1 ~hi:4 in
        match Routing.find_primary state ~src ~dst ~bw with
        | None -> ()
        | Some primary -> (
            match
              Routing.find_backups scheme state ~primary ~bw ~count:2
            with
            | [] -> ()
            | backups ->
                let id = !next_id in
                incr next_id;
                ignore
                  (Net_state.admit state ~id ~bw ~primary ~backups
                    : Net_state.conn)))
    | 4 -> (
        (* release *)
        match pick_active rng state with
        | Some id -> Net_state.release state ~id
        | None -> ())
    | 5 -> (
        (* fail an edge *)
        let e = Dist.uniform_int rng ~lo:0 ~hi:(Graph.edge_count graph - 1) in
        if not (Net_state.edge_failed state ~edge:e) then
          Net_state.fail_edge state ~edge:e)
    | 6 -> (
        (* restore an edge *)
        match failed_edges state graph with
        | [] -> ()
        | es ->
            let e =
              List.nth es (Dist.uniform_int rng ~lo:0 ~hi:(List.length es - 1))
            in
            Net_state.restore_edge state ~edge:e)
    | 7 -> (
        (* fail or restore a node *)
        let v = Dist.uniform_int rng ~lo:0 ~hi:(n - 1) in
        if Dist.uniform_int rng ~lo:0 ~hi:1 = 0 then
          Net_state.fail_node state ~node:v
        else Net_state.restore_node state ~node:v)
    | 8 -> (
        (* promote a backup (failure recovery, step 3) *)
        match pick_active rng state with
        | None -> ()
        | Some id -> (
            match Net_state.find state id with
            | Some c
              when c.Net_state.backups <> []
                   && Net_state.activation_feasible state ~id () ->
                Net_state.promote_backup state ~id ()
            | _ -> ()))
    | _ -> (
        (* replace backups / reroute primary (reconfiguration, step 4) *)
        match pick_active rng state with
        | None -> ()
        | Some id -> (
            match Net_state.find state id with
            | None -> ()
            | Some c ->
                let bw = c.Net_state.bw and primary = c.Net_state.primary in
                if Dist.uniform_int rng ~lo:0 ~hi:1 = 0 then
                  let backups =
                    Routing.find_backups scheme state ~primary ~bw ~count:2
                  in
                  Net_state.replace_backups state ~id ~backups
                else
                  (* Reroute: nudge the search away from the current route by
                     failing its first edge, then restore it. *)
                  let e = Graph.edge_of_link (List.hd (Path.links primary)) in
                  let was_failed = Net_state.edge_failed state ~edge:e in
                  if not was_failed then Net_state.fail_edge state ~edge:e;
                  (match
                     Routing.find_primary state ~src:c.Net_state.src
                       ~dst:c.Net_state.dst ~bw
                   with
                  | Some p when Path.links p <> Path.links primary ->
                      Net_state.reroute_primary state ~id ~primary:p
                  | _ -> ());
                  if not was_failed then Net_state.restore_edge state ~edge:e)));
    check step state;
    if step mod 50 = 0 then
      pending :=
        Some (Net_state.Snapshot.capture state, Test_service.digest graph state)
    else if step mod 50 = 25 then
      match !pending with
      | None -> ()
      | Some (snap, before) ->
          Net_state.Snapshot.rollback state snap;
          pending := None;
          if Test_service.digest graph state <> before then
            Alcotest.failf "step %d: state digest changed across rollback" step;
          check step state
  done;
  (* Tear everything down: the cache must return to all-zeros. *)
  List.iter (fun id -> Net_state.release state ~id) (active_ids state);
  check (steps + 1) state;
  let graph_links = Graph.link_count graph in
  for l = 0 to graph_links - 1 do
    if Net_state.aplv_norm state l <> 0 then
      Alcotest.failf "link %d: aplv_norm %d after full teardown" l
        (Net_state.aplv_norm state l)
  done

let waxman seed =
  let rng = Rng.create seed in
  Dr_topo.Gen.waxman ~rng ~n:20 ~avg_degree:4.0 ()

let test_soak_plsr () = soak ~steps:300 ~seed:11 ~scheme:Routing.Plsr (waxman 1)
let test_soak_dlsr () = soak ~steps:300 ~seed:22 ~scheme:Routing.Dlsr (waxman 2)
let test_soak_spf () = soak ~steps:300 ~seed:33 ~scheme:Routing.Spf (waxman 3)

let test_soak_mesh () =
  soak ~steps:200 ~seed:44 ~scheme:Routing.Plsr (Dr_topo.Gen.mesh ~rows:4 ~cols:4)

let suite =
  [
    ( "soak",
      [
        Alcotest.test_case "plsr random walk, invariants every step" `Slow
          test_soak_plsr;
        Alcotest.test_case "dlsr random walk, invariants every step" `Slow
          test_soak_dlsr;
        Alcotest.test_case "spf random walk, invariants every step" `Slow
          test_soak_spf;
        Alcotest.test_case "mesh random walk" `Quick test_soak_mesh;
      ] );
  ]

(* The domain worker pool: ordered result collection, coordinator-side
   callbacks, crash containment with retry, and — the property the whole
   subsystem exists to preserve — parallel sweeps identical to sequential
   ones. *)

module Pool = Dr_parallel.Pool
module Config = Dr_exp.Config
module Runner = Dr_exp.Runner
module Sweep = Dr_exp.Sweep

let test_default_jobs () =
  Alcotest.(check bool) "at least one domain" true (Pool.default_jobs () >= 1)

let test_map_ordered () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check int) "jobs" 4 (Pool.jobs pool);
      let results = Pool.map pool (fun x -> x * x) (Array.init 50 Fun.id) in
      Alcotest.(check int) "one result per task" 50 (Array.length results);
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) "index order" (i * i) v
          | Error _ -> Alcotest.fail "unexpected task failure")
        results)

let test_small_queue_bound () =
  (* A bound far below the batch size forces submit to block and refill;
     the batch must still complete in order. *)
  Pool.with_pool ~jobs:2 ~queue_bound:2 (fun pool ->
      let results = Pool.map pool succ (Array.init 100 Fun.id) in
      Array.iteri
        (fun i r -> Alcotest.(check bool) "value" true (r = Ok (i + 1)))
        results)

let test_crash_containment () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let results =
        Pool.map pool
          (fun x -> if x = 3 then failwith "boom" else x)
          (Array.init 8 Fun.id)
      in
      Array.iteri
        (fun i r ->
          match (i, r) with
          | 3, Error (e : Pool.error) ->
              Alcotest.(check int) "error carries its index" 3 e.Pool.index;
              Alcotest.(check int) "retried once by default" 2 e.Pool.attempts;
              Alcotest.(check bool) "message names the exception" true
                (Astring.String.is_infix ~affix:"boom" e.Pool.message)
          | 3, Ok _ -> Alcotest.fail "crashing task returned Ok"
          | _, Ok v -> Alcotest.(check int) "healthy task unaffected" i v
          | _, Error _ -> Alcotest.fail "healthy task errored")
        results)

let test_flaky_task_recovers_on_retry () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let tries = Array.init 4 (fun _ -> Atomic.make 0) in
      let results =
        Pool.map pool
          (fun i ->
            if Atomic.fetch_and_add tries.(i) 1 = 0 && i = 1 then
              failwith "transient"
            else i)
          (Array.init 4 Fun.id)
      in
      Alcotest.(check bool) "first attempt failed, retry succeeded" true
        (results.(1) = Ok 1);
      Alcotest.(check int) "flaky task ran twice" 2 (Atomic.get tries.(1)))

let test_zero_retries () =
  Pool.with_pool ~jobs:2 ~retries:0 (fun pool ->
      let results =
        Pool.map pool (fun i -> if i = 0 then failwith "once" else i) [| 0; 1 |]
      in
      match results.(0) with
      | Error e -> Alcotest.(check int) "single attempt" 1 e.Pool.attempts
      | Ok _ -> Alcotest.fail "expected a failed task")

let test_on_result_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let seen = ref [] in
      let _ =
        Pool.map pool
          ~on_result:(fun i _ -> seen := i :: !seen)
          Fun.id (Array.init 32 Fun.id)
      in
      Alcotest.(check (list int)) "strict index order, coordinator side"
        (List.init 32 Fun.id) (List.rev !seen))

let test_pool_reuse_and_map_list () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let a = Pool.map pool succ [| 1; 2; 3 |] in
      let b = Pool.map_list pool succ [ 10; 20 ] in
      Alcotest.(check bool) "first batch" true (a = [| Ok 2; Ok 3; Ok 4 |]);
      Alcotest.(check bool) "second batch on the same pool" true
        (b = [ Ok 11; Ok 21 ]))

let test_shutdown_idempotent () =
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.(check pass) "double shutdown" () ()

(* --- parallel = sequential on real experiment output -------------------- *)

let tiny_cfg =
  {
    Config.default with
    Config.warmup = 600.0;
    horizon = 1800.0;
    sample_every = 300.0;
    lifetime_lo = 300.0;
    lifetime_hi = 600.0;
  }

let tiny_sweep ~pool ~progress degree =
  Sweep.run ~pool ~progress tiny_cfg ~avg_degree:degree ~traffics:[ Config.UT ]
    ~lambdas:[ 0.3 ]
    ~schemes:
      [ Runner.Lsr Drtp.Routing.Dlsr; Runner.Bf Dr_flood.Bounded_flood.default_config ]
    ()

let test_sweep_jobs_determinism () =
  let sweep_at jobs =
    let lines = ref [] in
    let sweep =
      Pool.with_pool ~jobs (fun pool ->
          tiny_sweep ~pool ~progress:(fun l -> lines := l :: !lines) 3.0)
    in
    (sweep, List.rev !lines)
  in
  let s1, p1 = sweep_at 1 in
  let s4, p4 = sweep_at 4 in
  Alcotest.(check bool) "identical cells" true (s1.Sweep.cells = s4.Sweep.cells);
  Alcotest.(check bool) "identical baselines" true
    (s1.Sweep.baselines = s4.Sweep.baselines);
  Alcotest.(check bool) "no failures" true
    (s1.Sweep.failures = [] && s4.Sweep.failures = []);
  Alcotest.(check (list string)) "identical progress lines, same order" p1 p4

let test_claims_json_jobs_determinism () =
  let claims jobs =
    Pool.with_pool ~jobs (fun pool ->
        let e3 = tiny_sweep ~pool ~progress:ignore 3.0 in
        let e4 = tiny_sweep ~pool ~progress:ignore 4.0 in
        Dr_exp.Report.claims_to_json (Dr_exp.Report.check_claims ~e3 ~e4))
  in
  Alcotest.(check string) "claims --json identical across job counts"
    (claims 1) (claims 4)

let suite =
  [
    ( "parallel pool",
      [
        Alcotest.test_case "default jobs" `Quick test_default_jobs;
        Alcotest.test_case "map keeps index order" `Quick test_map_ordered;
        Alcotest.test_case "bounded queue backpressure" `Quick
          test_small_queue_bound;
        Alcotest.test_case "crash containment" `Quick test_crash_containment;
        Alcotest.test_case "flaky task recovers on retry" `Quick
          test_flaky_task_recovers_on_retry;
        Alcotest.test_case "retries:0 means one attempt" `Quick
          test_zero_retries;
        Alcotest.test_case "on_result in coordinator order" `Quick
          test_on_result_order;
        Alcotest.test_case "pool reuse and map_list" `Quick
          test_pool_reuse_and_map_list;
        Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        Alcotest.test_case "sweep identical at jobs 1 vs 4" `Slow
          test_sweep_jobs_determinism;
        Alcotest.test_case "claims JSON identical at jobs 1 vs 4" `Slow
          test_claims_json_jobs_determinism;
      ] );
  ]

(* Backup multiplexing on the paper's 3x3 mesh (in the spirit of
   Figures 1-3): three DR-connections whose backups share links, one pair
   safely (disjoint primaries) and one pair in conflict (overlapping
   primaries), and how D-LSR's Conflict Vector steers the third backup.

   Node layout:        0 - 1 - 2
                       |   |   |
                       3 - 4 - 5
                       |   |   |
                       6 - 7 - 8

   Run with: dune exec examples/mesh_multiplexing.exe *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
open Drtp

let print_link_state state graph label link =
  Format.printf "%s (link %d, %d->%d): APLV %a, spare required %d unit(s)@."
    label link (Graph.link_src graph link) (Graph.link_dst graph link) Aplv.pp
    (Net_state.aplv state link)
    (Net_state.spare_required state ~link)

let () =
  let graph = Dr_topo.Gen.mesh ~rows:3 ~cols:3 in
  let state = Net_state.create ~graph ~capacity:10 ~spare_policy:Net_state.Multiplexed in
  let path nodes = Path.of_nodes graph nodes in
  let link a b =
    match Graph.find_link graph ~src:a ~dst:b with
    | Some l -> l
    | None -> assert false
  in

  (* D1: 0 -> 8, primary along the top and right, backup along the left and
     bottom. *)
  let _d1 =
    Net_state.admit state ~id:1 ~bw:1 ~primary:(path [ 0; 1; 2; 5; 8 ])
      ~backups:[ path [ 0; 3; 6; 7; 8 ] ]
  in
  (* D2: 3 -> 5, primary across the middle, backup along the bottom.  B1 and
     B2 share links 3->6, 6->7, 7->8, but P1 and P2 are edge-disjoint, so one
     spare unit on those links protects both (safe multiplexing, the L8 case
     of Fig. 1). *)
  let _d2 =
    Net_state.admit state ~id:2 ~bw:1 ~primary:(path [ 3; 4; 5 ])
      ~backups:[ path [ 3; 6; 7; 8; 5 ] ]
  in
  Format.printf "--- after D1 and D2 (disjoint primaries, shared backup links) ---@.";
  print_link_state state graph "shared backup link" (link 6 7);
  Format.printf
    "=> two backups, spare requirement still 1: multiplexing is free here.@.@.";

  (* D3: 0 -> 5.  Its primary overlaps P1 on edges (0,1), (1,2) and (2,5).
     Any backup must leave node 0 via 0->3 (0->1 is on its own primary),
     which B1 already uses — an unavoidable conflict, and exactly what the
     Conflict Vector records. *)
  let p3 = path [ 0; 1; 2; 5 ] in
  let p3_edges = Path.Link_set.elements (Path.edge_set p3) in
  let l03 = link 0 3 in
  Format.printf "--- choosing a backup for D3 (primary %a) ---@." Path.pp p3;
  Format.printf "conflict vector of link 0->3: %a@." Conflict_vector.pp
    (Net_state.conflict_vector state l03);
  Format.printf
    "D-LSR conflict count on 0->3 against D3's primary: %d (B1's primary P1 \
     shares failure domains with P3)@."
    (Aplv.conflict_count_with (Net_state.aplv state l03) ~edge_lset:p3_edges);

  (match Routing.find_backup Routing.Dlsr state ~primary:p3 ~bw:1 with
  | None -> Format.printf "no backup found (unexpected)@."
  | Some b3 ->
      Format.printf "D-LSR picks backup %a@." Path.pp b3;
      let _d3 = Net_state.admit state ~id:3 ~bw:1 ~primary:p3 ~backups:[ b3 ] in
      print_link_state state graph "contended backup link" l03;
      Format.printf
        "=> the conflicting pair forces 2 spare units on 0->3 (the L7 case of \
         Fig. 1); D-LSR diverges from B1 right after it.@.@.");

  (* The failure analysis quantifies the result: every single-edge failure is
     survivable. *)
  let r = Failure_eval.evaluate state in
  Format.printf
    "single-edge failure analysis: %d/%d backup activations succeed \
     (P_act-bk = %.2f)@."
    r.Failure_eval.successes r.Failure_eval.attempts
    (Failure_eval.fault_tolerance r);
  match Net_state.check_invariants state with
  | Ok () -> Format.printf "state invariants hold@."
  | Error msg -> Format.printf "INVARIANT VIOLATION: %s@." msg

(* The distributed protocol in action: the same workload routed on fresh
   vs damped link-state advertisements.  With stale advertisements the
   source still *thinks* bandwidth is there — the setup message finds out
   otherwise, cranks back, and retries on a refreshed view.

   Run with: dune exec examples/distributed_protocol.exe *)

module Config = Dr_exp.Config
module Sim = Dr_proto.Protocol_sim

let () =
  let cfg =
    { Config.default with Config.warmup = 2400.0; horizon = 6000.0 }
  in
  let graph = Config.make_graph cfg ~avg_degree:3.0 in
  let scenario = Config.make_scenario cfg Config.UT ~lambda:0.5 in
  Format.printf
    "60-node Waxman network, lambda = 0.5/s, D-LSR routed on *advertised* \
     link-state@.@.";
  Format.printf
    "%-18s %-8s %-16s %-6s %-8s %-8s@." "LSA damping" "accept"
    "setup-fail/req" "lost" "LSA/s" "stale links";
  List.iter
    (fun interval ->
      let config =
        { Sim.default_config with Sim.min_lsa_interval = interval }
      in
      let r =
        Sim.run ~config ~graph ~capacity:cfg.Config.capacity ~scenario
          ~warmup:cfg.Config.warmup ~horizon:cfg.Config.horizon
          ~sample_every:cfg.Config.sample_every ()
      in
      let fail_rate =
        float_of_int r.Sim.stats.Sim.setup_failures
        /. float_of_int (max 1 r.Sim.stats.Sim.requests)
      in
      Format.printf "%15.0f s  %-8.3f %-16.4f %-6d %-8.1f %-8.1f@." interval
        r.Sim.acceptance fail_rate r.Sim.stats.Sim.lost_after_retries
        r.Sim.lsa_per_second r.Sim.avg_staleness)
    [ 0.0; 5.0; 60.0; 300.0 ];
  Format.printf
    "@.Reading: damping advertisements saves control traffic (LSA/s) but \
     routers increasingly race in-flight setups against reality — wasted \
     signalling round-trips (setup failures), recovered by crankback \
     retries.  Admission always double-checks ground truth, so safety \
     (fault-tolerance) is unaffected; only efficiency pays.@."

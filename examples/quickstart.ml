(* Quickstart: set up dependable real-time connections on a small network,
   route their backups with D-LSR, and see what a link failure would do.

   Run with: dune exec examples/quickstart.exe *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
open Drtp

let () =
  (* A ring of 8 routers with cross chords: every node pair has at least
     three edge-disjoint paths, so disjoint backups always exist. *)
  let graph = Dr_topo.Gen.double_ring 8 in
  Format.printf "network: %d nodes, %d bidirectional edges@."
    (Graph.node_count graph) (Graph.edge_count graph);

  (* A connection manager handling 10 bandwidth units per link direction,
     with backup multiplexing (the paper's spare-sharing discipline). *)
  let manager =
    Manager.create ~graph ~capacity:10 ~spare_policy:Net_state.Multiplexed
      ~route:(Routing.link_state_route_fn Routing.Dlsr ~with_backup:true)
  in
  let state = Manager.state manager in

  (* Request three DR-connections of 1 unit each, 0->4, 1->5, 2->6.
     Requests and releases normally come from a scenario file; here we feed
     events by hand. *)
  List.iteri
    (fun i (src, dst) ->
      Manager.apply manager
        {
          Dr_sim.Scenario.time = float_of_int i;
          event = Dr_sim.Scenario.Request { conn = i; src; dst; bw = 1; duration = 3600.0 };
        })
    [ (0, 4); (1, 5); (2, 6) ];

  Net_state.iter_conns state (fun c ->
      Format.printf "connection %d: primary %a@.               backups %a@."
        c.Net_state.id Path.pp c.Net_state.primary
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Path.pp)
        c.Net_state.backups);

  (* What happens if an edge fails?  The snapshot evaluator answers without
     disturbing the network. *)
  let result = Failure_eval.evaluate state in
  Format.printf
    "single-edge failure analysis: %d at-risk primaries across %d edges, %d \
     backups activate => P_act-bk = %.3f@."
    result.Failure_eval.attempts result.Failure_eval.edges_evaluated
    result.Failure_eval.successes
    (Failure_eval.fault_tolerance result);

  (* Now actually fail the first edge of connection 0's primary and watch
     DRTP switch it over. *)
  let victim_edge =
    match Net_state.find state 0 with
    | Some c -> Graph.edge_of_link (List.hd (Path.links c.Net_state.primary))
    | None -> assert false
  in
  let report = Recovery.fail_edge_drtp state ~scheme:Routing.Dlsr ~edge:victim_edge () in
  List.iter
    (fun (id, outcome) ->
      match outcome with
      | Recovery.Switched { latency; reprotected } ->
          Format.printf
            "edge %d failed: connection %d switched to its backup in %.1f ms%s@."
            victim_edge id (1000.0 *. latency)
            (if reprotected then " (and got a new backup)" else "")
      | Recovery.Rerouted _ | Recovery.Lost _ ->
          Format.printf "edge %d failed: connection %d was not recovered@."
            victim_edge id)
    report.Recovery.outcomes;

  match Net_state.check_invariants state with
  | Ok () -> Format.printf "state invariants hold@."
  | Error msg -> Format.printf "INVARIANT VIOLATION: %s@." msg

(* Bounded flooding up close: one channel-discovery flood on a 5x5 torus,
   showing how the hop-count limit and the valid-detour test bound the
   explored region, what candidates reach the destination, and which
   primary/backup pair the destination picks.

   Run with: dune exec examples/flooding_demo.exe *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module BF = Dr_flood.Bounded_flood
open Drtp

let () =
  let graph = Dr_topo.Gen.torus ~rows:5 ~cols:5 in
  let state = Net_state.create ~graph ~capacity:4 ~spare_policy:Net_state.Multiplexed in
  let hop_matrix = Dr_topo.Shortest_path.hop_matrix graph in
  let src = 0 and dst = 12 (* centre of the grid: 4 hops away *) in
  Format.printf "flooding a CDP from %d to %d (min-hop distance %d) on a 5x5 torus@."
    src dst hop_matrix.(src).(dst);

  (* Widen the flood step by step and watch the overhead/choice trade-off
     the paper tunes with rho and beta (§4.1: "the values of rho and beta
     are determined by making a trade-off between the routing overhead and
     the connection-acceptance probability"). *)
  List.iter
    (fun (rho, beta0, beta1) ->
      let config = { BF.default_config with rho; beta0; beta1 } in
      let r = BF.discover config state ~hop_matrix ~src ~dst ~bw:1 in
      Format.printf
        "rho=%.1f beta0=%d beta1=%d: %3d CDP messages, %2d candidate routes@."
        rho beta0 beta1 r.BF.messages
        (List.length r.BF.candidates))
    [ (1.0, 0, 0); (1.0, 2, 0); (1.0, 2, 1); (1.0, 2, 2); (1.5, 2, 2) ];

  (* Run the selection the destination performs on the default flood. *)
  let r = BF.discover BF.default_config state ~hop_matrix ~src ~dst ~bw:1 in
  Format.printf "@.candidates reaching the destination (default config):@.";
  List.iter
    (fun c ->
      Format.printf "  %d hops, primary-capable=%b: %a@." c.BF.hops c.BF.primary_ok
        Path.pp c.BF.path)
    r.BF.candidates;
  (match BF.select state ~bw:1 r.BF.candidates with
  | Error reason ->
      Format.printf "selection failed: %s@." (Routing.reject_reason_name reason)
  | Ok { Routing.primary; backups } ->
      Format.printf "@.selected primary: %a@." Path.pp primary;
      (match backups with
      | b :: _ ->
          Format.printf "selected backup:  %a (edge overlap with primary: %d)@."
            Path.pp b (Path.edge_overlap b primary)
      | [] -> Format.printf "no backup selected@."));

  (* Fill part of the network and flood again: the bandwidth test prunes
     saturated links, so the flood routes around load. *)
  Format.printf "@.now loading the direct corridor with primaries...@.";
  let p1 = Path.of_nodes graph [ 1; 2; 7 ] in
  List.iteri
    (fun i path ->
      for k = 0 to 3 do
        ignore
          (Net_state.admit state ~id:((10 * i) + k) ~bw:1 ~primary:path ~backups:[])
      done)
    [ p1 ];
  let r2 = BF.discover BF.default_config state ~hop_matrix ~src ~dst ~bw:1 in
  Format.printf "after loading, %d messages and %d candidates (link 1->2 is full)@."
    r2.BF.messages
    (List.length r2.BF.candidates)

(* Hotspot workload under failures: the paper's NT traffic pattern (half of
   all connections target ten pre-selected servers) on a 60-node Waxman
   network, with live edge failures injected while the workload runs.
   Compares DRTP (prepared backups, D-LSR routed) against reactive
   re-establishment.

   Run with: dune exec examples/hotspot_recovery.exe *)

module Config = Dr_exp.Config

let () =
  let cfg =
    {
      Config.default with
      Config.warmup = 2400.0;
      horizon = 7200.0;
      workload_seed = 2026;
    }
  in
  let lambda = 0.4 in
  Format.printf
    "60-node Waxman network (E = 3), NT traffic (10 hotspots draw 50%% of \
     connections), lambda = %.1f/s@."
    lambda;
  let rows =
    Dr_exp.Recovery_exp.run cfg ~avg_degree:3.0 ~traffic:Config.NT ~lambda
      ~failures:25 ()
  in
  Format.printf "%a@." Dr_exp.Recovery_exp.pp rows;
  match rows with
  | [ dlsr; _; _; reactive ] ->
      Format.printf
        "DRTP recovered %.1f%% of hit connections in %.1f ms on average; the \
         reactive baseline managed %.1f%% in %.1f ms.@."
        (100.0 *. dlsr.Dr_exp.Recovery_exp.recovery_ratio)
        dlsr.Dr_exp.Recovery_exp.latency_mean_ms
        (100.0 *. reactive.Dr_exp.Recovery_exp.recovery_ratio)
        reactive.Dr_exp.Recovery_exp.latency_mean_ms
  | _ -> ()

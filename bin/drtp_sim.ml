(* drtp_sim — command-line driver for the DSN'01 reproduction.

   One subcommand per reproduced artifact: Table 1, Figures 4 and 5, the
   §6.2 claims check, the ablations, the routing-overhead table and the
   recovery extension, plus scenario-file and topology tooling. *)

open Cmdliner

let stderr_progress line =
  prerr_string line;
  prerr_newline ()

(* ---- telemetry --------------------------------------------------------- *)

module Telemetry = Dr_telemetry.Telemetry
module Journal = Dr_obs.Journal

let trace_t =
  let doc =
    "Enable telemetry and write a JSONL trace (span records, then a final \
     snapshot of every counter/gauge/timer) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_t =
  let doc =
    "Enable telemetry and print the metrics summary table when the command \
     finishes."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let journal_t =
  let doc =
    "Enable the flight-recorder journal and write it as JSONL (one event \
     per line, simulation-time stamped) to $(docv) when the command \
     finishes.  Output is byte-identical for any $(b,--jobs) count."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

(* Evaluating this term configures telemetry as a side effect, so every
   subcommand picks the flags up by prepending [$ telemetry_t].  The
   summary table and the trace/journal finalisation run from [at_exit]:
   they then also cover commands that leave through [exit] (claims). *)
let telemetry_t =
  let setup trace metrics journal =
    if trace <> None || metrics then Telemetry.set_enabled true;
    (match trace with
    | None -> ()
    | Some file ->
        let oc =
          try open_out file
          with Sys_error msg ->
            Printf.eprintf "drtp_sim: cannot open trace file (%s)\n" msg;
            exit 2
        in
        Telemetry.Sink.set (Telemetry.Sink.jsonl oc);
        at_exit Telemetry.Sink.close);
    (match journal with
    | None -> ()
    | Some file ->
        let oc =
          try open_out file
          with Sys_error msg ->
            Printf.eprintf "drtp_sim: cannot open journal file (%s)\n" msg;
            exit 2
        in
        Journal.set_enabled true;
        at_exit (fun () ->
            Journal.write_jsonl (Journal.current ()) oc;
            close_out_noerr oc));
    if metrics then
      (* Registered after the sink hook, so LIFO order prints the table
         before the trace file is finalised.  The GC sample lands just
         before the table renders, so the [gc.*] gauges report the whole
         run's allocation odometers and top-heap high-water mark. *)
      at_exit (fun () ->
          Telemetry.observe_gc ();
          Format.printf "@.%a@." Telemetry.pp_summary ())
  in
  Term.(const setup $ trace_t $ metrics_t $ journal_t)

(* ---- shared options ---------------------------------------------------- *)

let degree_t =
  let doc = "Average node degree E of the Waxman topology (3 or 4)." in
  Arg.(value & opt float 3.0 & info [ "degree"; "E" ] ~docv:"E" ~doc)

let lambda_t ~default =
  let doc = "Connection arrival rate lambda (requests/second)." in
  Arg.(value & opt float default & info [ "lambda" ] ~docv:"LAMBDA" ~doc)

let traffic_t =
  let doc = "Traffic pattern: UT (uniform) or NT (hotspots)." in
  let parse s = Result.map_error (fun e -> `Msg e) (Dr_exp.Config.traffic_of_string s) in
  let print ppf t = Format.pp_print_string ppf (Dr_exp.Config.traffic_name t) in
  Arg.(
    value
    & opt (conv (parse, print)) Dr_exp.Config.UT
    & info [ "traffic" ] ~docv:"PATTERN" ~doc)

let quick_t =
  let doc =
    "Quick mode: shorter horizon and fewer load points (for smoke tests)."
  in
  Arg.(value & flag & info [ "quick" ] ~doc)

let jobs_t =
  let doc =
    "Worker domains for independent simulation runs (default: the runtime's \
     recommended domain count).  Output is identical for any $(docv); \
     single-run commands accept the flag but run on one domain."
  in
  Arg.(
    value
    & opt int (Dr_parallel.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let with_pool jobs f =
  if jobs < 1 then begin
    Printf.eprintf "drtp_sim: --jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  Dr_parallel.Pool.with_pool ~jobs f

let seed_t =
  let doc = "Base seed for topology and workload generation." in
  Arg.(value & opt int Dr_exp.Config.default.Dr_exp.Config.topology_seed
       & info [ "seed" ] ~docv:"SEED" ~doc)

let config_of ~quick ~seed =
  let cfg = Dr_exp.Config.default in
  let cfg = { cfg with Dr_exp.Config.topology_seed = seed; workload_seed = seed * 101 } in
  if quick then
    { cfg with Dr_exp.Config.warmup = 2400.0; horizon = 4800.0; sample_every = 300.0 }
  else cfg

let lambdas_for ~quick degree =
  let all = Dr_exp.Config.lambdas_for_degree degree in
  if quick then
    match all with a :: _ :: c :: _ -> [ a; c ] | other -> other
  else all

(* ---- subcommands ------------------------------------------------------- *)

let table1_cmd =
  let run () _jobs quick seed =
    Format.printf "%a@." Dr_exp.Config.pp_table1 (config_of ~quick ~seed)
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the simulation parameters (paper Table 1).")
    Term.(const run $ telemetry_t $ jobs_t $ quick_t $ seed_t)

let csv_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also dump the sweep as CSV to this file.")

let sweep_and_print ~print jobs degree quick seed csv =
  let cfg = config_of ~quick ~seed in
  let sweep =
    with_pool jobs (fun pool ->
        Dr_exp.Sweep.run ~pool ~progress:stderr_progress cfg ~avg_degree:degree
          ~lambdas:(lambdas_for ~quick degree) ())
  in
  Format.printf "%a@." print sweep;
  match csv with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Dr_exp.Report.to_csv sweep));
      Format.eprintf "wrote %s@." file

let fig4_cmd =
  let run () jobs degree quick seed csv =
    sweep_and_print ~print:Dr_exp.Report.print_figure4 jobs degree quick seed csv
  in
  Cmd.v
    (Cmd.info "fig4"
       ~doc:"Reproduce Figure 4: fault-tolerance P_act-bk vs lambda.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ quick_t $ seed_t $ csv_t)

let fig5_cmd =
  let run () jobs degree quick seed csv =
    sweep_and_print ~print:Dr_exp.Report.print_figure5 jobs degree quick seed csv
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Reproduce Figure 5: capacity overhead vs lambda.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ quick_t $ seed_t $ csv_t)

let details_cmd =
  let json_t =
    let doc =
      "Emit one machine-readable JSON record per sweep cell (the CSV \
       fields) instead of the aligned table — the journal/inspect \
       counterpart of $(b,claims --json)."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run () jobs json degree quick seed csv =
    let cfg = config_of ~quick ~seed in
    let sweep =
      with_pool jobs (fun pool ->
          Dr_exp.Sweep.run ~pool ~progress:stderr_progress cfg ~avg_degree:degree
            ~lambdas:(lambdas_for ~quick degree) ())
    in
    if json then print_string (Dr_exp.Report.details_to_json sweep)
    else Format.printf "%a@." Dr_exp.Report.print_details sweep;
    match csv with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Dr_exp.Report.to_csv sweep));
        Format.eprintf "wrote %s@." file
  in
  Cmd.v
    (Cmd.info "details" ~doc:"Per-cell diagnostics for one sweep.")
    Term.(const run $ telemetry_t $ jobs_t $ json_t $ degree_t $ quick_t $ seed_t $ csv_t)

let claims_cmd =
  let json_t =
    let doc =
      "Emit one machine-readable JSON record per claim \
       (claim/expected/measured/pass) instead of the tables."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run () jobs json quick seed =
    let cfg = config_of ~quick ~seed in
    let claims =
      with_pool jobs (fun pool ->
          let sweep degree =
            Dr_exp.Sweep.run ~pool ~progress:stderr_progress cfg
              ~avg_degree:degree
              ~lambdas:(lambdas_for ~quick degree) ()
          in
          let e3 = sweep 3.0 in
          let e4 = sweep 4.0 in
          let claims = Dr_exp.Report.check_claims ~e3 ~e4 in
          if json then print_string (Dr_exp.Report.claims_to_json claims)
          else begin
            Format.printf "%a@.@.%a@.@.%a@.@.%a@.@." Dr_exp.Report.print_figure4
              e3 Dr_exp.Report.print_figure4 e4 Dr_exp.Report.print_figure5 e3
              Dr_exp.Report.print_figure5 e4;
            Format.printf "%a@." Dr_exp.Report.print_claims claims
          end;
          claims)
    in
    (* Nonzero exit on any failed claim, so CI can gate on this command.
       Outside [with_pool]: the workers are already joined. *)
    if not (Dr_exp.Report.all_claims_hold claims) then exit 1
  in
  Cmd.v
    (Cmd.info "claims"
       ~doc:
         "Run both sweeps and check the paper's summary claims (§6.2); \
          exits 1 if any claim fails.")
    Term.(const run $ telemetry_t $ jobs_t $ json_t $ quick_t $ seed_t)

let ablate_mux_cmd =
  let run () jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Ablation.pp_mux
      (with_pool jobs (fun pool ->
           Dr_exp.Ablation.no_multiplexing ~pool cfg ~avg_degree:degree ~traffic
             ~lambda))
  in
  Cmd.v
    (Cmd.info "ablate-mux"
       ~doc:"Ablation A1: multiplexed vs dedicated spare reservations.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.5 $ quick_t $ seed_t)

let ablate_flood_cmd =
  let run () jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Ablation.pp_flood
      (with_pool jobs (fun pool ->
           Dr_exp.Ablation.flood_scope ~pool cfg ~avg_degree:degree ~traffic
             ~lambda ()))
  in
  Cmd.v
    (Cmd.info "ablate-flood"
       ~doc:"Ablation A2: bounded-flooding scope parameters.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.5 $ quick_t $ seed_t)

let ablate_spf_cmd =
  let run () jobs traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Ablation.pp_blind
      (with_pool jobs (fun pool ->
           Dr_exp.Ablation.conflict_blind ~pool cfg ~traffic ~lambda))
  in
  Cmd.v
    (Cmd.info "ablate-spf"
       ~doc:"Ablation A3: conflict-aware vs conflict-blind backup routing.")
    Term.(const run $ telemetry_t $ jobs_t $ traffic_t $ lambda_t ~default:0.5 $ quick_t $ seed_t)

let ablate_backups_cmd =
  let run () jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Ablation.pp_backup_count
      (with_pool jobs (fun pool ->
           Dr_exp.Ablation.backup_count ~pool cfg ~avg_degree:degree ~traffic
             ~lambda ()))
  in
  Cmd.v
    (Cmd.info "ablate-backups"
       ~doc:
         "Extension E2: zero, one or two backups per DR-connection (edge and \
          node fault-tolerance vs capacity).")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.4 $ quick_t $ seed_t)

let replicate_cmd =
  let seeds_t =
    Arg.(
      value & opt int 3
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of independent replications.")
  in
  let run () jobs degree seeds quick seed =
    let cfg = config_of ~quick ~seed in
    let t =
      with_pool jobs (fun pool ->
          Dr_exp.Replicate.run ~pool ~progress:stderr_progress cfg
            ~avg_degree:degree
            ~seeds:(List.init seeds (fun i -> i))
            ~lambdas:(lambdas_for ~quick degree) ())
    in
    Format.printf "%a@.@.%a@." Dr_exp.Replicate.print_figure4 t
      Dr_exp.Replicate.print_figure5 t
  in
  Cmd.v
    (Cmd.info "replicate"
       ~doc:
         "Figures 4/5 with multi-seed replication and confidence intervals.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ seeds_t $ quick_t $ seed_t)

let ablate_qos_cmd =
  let run () jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Ablation.pp_qos
      (with_pool jobs (fun pool ->
           Dr_exp.Ablation.qos_bound ~pool cfg ~avg_degree:degree ~traffic
             ~lambda ()))
  in
  Cmd.v
    (Cmd.info "ablate-qos"
       ~doc:
         "Extension E5: hop (delay) budget on backup routes — tight QoS \
          forfeits protection.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.4 $ quick_t $ seed_t)

let ablate_classes_cmd =
  let run () jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Ablation.pp_classes
      (with_pool jobs (fun pool ->
           Dr_exp.Ablation.traffic_classes ~pool cfg ~avg_degree:degree ~traffic
             ~lambda ()))
  in
  Cmd.v
    (Cmd.info "ablate-classes"
       ~doc:
         "Heterogeneous bandwidth classes (audio/video mixes) through the \
          weighted multiplexing rule.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.3 $ quick_t $ seed_t)

let availability_cmd =
  let mtbf_t =
    Arg.(value & opt float 600.0
         & info [ "mtbf" ] ~docv:"S" ~doc:"Mean time between failures (seconds).")
  in
  let mttr_t =
    Arg.(value & opt float 120.0
         & info [ "mttr" ] ~docv:"S" ~doc:"Mean time to repair (seconds).")
  in
  let run () _jobs degree traffic lambda mtbf mttr quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Availability_exp.pp
      (Dr_exp.Availability_exp.run cfg ~avg_degree:degree ~traffic ~lambda ~mtbf
         ~mttr ())
  in
  Cmd.v
    (Cmd.info "availability"
       ~doc:
         "Extension E6: service availability under a continuous \
          failure/repair process, DRTP vs reactive.")
    Term.(
      const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.5 $ mtbf_t $ mttr_t
      $ quick_t $ seed_t)

let staleness_cmd =
  let run () _jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Staleness_exp.pp
      (Dr_exp.Staleness_exp.run cfg ~avg_degree:degree ~traffic ~lambda ())
  in
  Cmd.v
    (Cmd.info "staleness"
       ~doc:
         "Extension E4: distributed protocol with damped link-state \
          advertisements (setup failures vs advertisement traffic).")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.5 $ quick_t $ seed_t)

let overhead_cmd =
  let run () _jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Overhead.pp
      (Dr_exp.Overhead.measure cfg ~avg_degree:degree ~traffic ~lambda)
  in
  Cmd.v
    (Cmd.info "overhead" ~doc:"Routing-overhead comparison of the schemes.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.5 $ quick_t $ seed_t)

let recovery_cmd =
  let failures_t =
    Arg.(value & opt int 40 & info [ "failures" ] ~docv:"N" ~doc:"Failures to inject.")
  in
  let run () _jobs degree traffic lambda failures quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Recovery_exp.pp
      (Dr_exp.Recovery_exp.run cfg ~avg_degree:degree ~traffic ~lambda ~failures ())
  in
  Cmd.v
    (Cmd.info "recovery"
       ~doc:"Extension E1: dynamic failure recovery, DRTP vs reactive.")
    Term.(
      const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.5 $ failures_t
      $ quick_t $ seed_t)

let topo_cmd =
  let dot_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Also write a Graphviz rendering.")
  in
  let save_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Also save the edge list.")
  in
  let run () _jobs degree dot save quick seed =
    let cfg = config_of ~quick ~seed in
    let g = Dr_exp.Config.make_graph cfg ~avg_degree:degree in
    (match save with
    | None -> ()
    | Some file ->
        Dr_topo.Graph.save g file;
        Format.printf "saved %s@." file);
    Format.printf "%a@." Dr_topo.Topo_metrics.pp (Dr_topo.Topo_metrics.compute g);
    Format.printf "degree histogram: %a@."
      (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf (d, c) ->
           Format.fprintf ppf "%d:%d" d c))
      (Dr_topo.Topo_metrics.degree_histogram g);
    match dot with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Dr_topo.Dot.to_dot g));
        Format.printf "wrote %s@." file
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Describe the generated evaluation topology.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ dot_t $ save_t $ quick_t $ seed_t)

let scenario_cmd =
  let out_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output scenario file.")
  in
  let run () _jobs traffic lambda out quick seed =
    let cfg = config_of ~quick ~seed in
    let s = Dr_exp.Config.make_scenario cfg traffic ~lambda in
    Dr_sim.Scenario.save s out;
    Format.printf "wrote %d events (%d requests) to %s@."
      (Dr_sim.Scenario.length s)
      (Dr_sim.Scenario.request_count s)
      out
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:"Generate and save a scenario file (the paper's Matlab step).")
    Term.(const run $ telemetry_t $ jobs_t $ traffic_t $ lambda_t ~default:0.5 $ out_t $ quick_t $ seed_t)

let replay_cmd =
  let file_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "scenario" ] ~docv:"FILE" ~doc:"Scenario file to replay.")
  in
  let scheme_t =
    let parse s =
      match String.lowercase_ascii s with
      | "bf" -> Ok `Bf
      | "none" | "no-backup" -> Ok `None
      | other ->
          Result.map_error (fun e -> `Msg e)
            (Result.map (fun x -> `Lsr x) (Drtp.Routing.scheme_of_string other))
    in
    let print ppf = function
      | `Bf -> Format.pp_print_string ppf "bf"
      | `None -> Format.pp_print_string ppf "none"
      | `Lsr x -> Format.pp_print_string ppf (Drtp.Routing.scheme_name x)
    in
    Arg.(
      value
      & opt (conv (parse, print)) (`Lsr Drtp.Routing.Dlsr)
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:"Routing scheme: d-lsr, p-lsr, spf, bf or none.")
  in
  let run () _jobs degree file scheme quick seed =
    let cfg = config_of ~quick ~seed in
    match Dr_sim.Scenario.load file with
    | Error msg ->
        Format.eprintf "cannot load %s: %s@." file msg;
        exit 1
    | Ok scenario ->
        let graph = Dr_exp.Config.make_graph cfg ~avg_degree:degree in
        let spec =
          match scheme with
          | `Bf -> Dr_exp.Runner.Bf Dr_flood.Bounded_flood.default_config
          | `None -> Dr_exp.Runner.No_backup
          | `Lsr x -> Dr_exp.Runner.Lsr x
        in
        let m = Dr_exp.Runner.run cfg ~graph ~scenario ~scheme:spec in
        Format.printf
          "%s: %d requests, acceptance %.3f, ft %.4f, node-ft %.4f, avg \
           active %.1f, degraded %d@."
          m.Dr_exp.Runner.label m.Dr_exp.Runner.requests m.Dr_exp.Runner.acceptance
          m.Dr_exp.Runner.ft_overall m.Dr_exp.Runner.node_ft_overall
          m.Dr_exp.Runner.avg_active m.Dr_exp.Runner.degraded
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a saved scenario file under a chosen routing scheme.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ file_t $ scheme_t $ quick_t $ seed_t)

(* ---- explain: route one connection and show the decision ---------------- *)

let explain_cmd =
  let scheme_t =
    let parse s =
      Result.map_error (fun e -> `Msg e) (Drtp.Routing.scheme_of_string s)
    in
    let print ppf s = Format.pp_print_string ppf (Drtp.Routing.scheme_name s) in
    Arg.(
      value
      & opt (conv (parse, print)) Drtp.Routing.Dlsr
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:"Link-state scheme to explain: d-lsr, p-lsr or spf.")
  in
  let src_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "src" ] ~docv:"NODE" ~doc:"Source node (default: a seeded draw).")
  in
  let dst_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "dst" ] ~docv:"NODE"
          ~doc:"Destination node (default: a seeded draw).")
  in
  let bw_t =
    Arg.(
      value & opt int 1
      & info [ "bw" ] ~docv:"UNITS" ~doc:"Requested bandwidth units.")
  in
  let top_t =
    Arg.(
      value & opt int 3
      & info [ "top" ] ~docv:"K" ~doc:"Candidate backup routes to tabulate.")
  in
  let dot_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write an annotated Graphviz overlay of the chosen routes (edges \
             labelled id/capacity/spare).")
  in
  let chain_t =
    Arg.(
      value & opt int 0
      & info [ "chain" ] ~docv:"K"
          ~doc:
            "Also build and print the $(docv)-resilient backup chain \
             (failover order, per-member SRLG-disjointness).  0 = off.")
  in
  let srlg_size_t =
    Arg.(
      value & opt int 1
      & info [ "srlg-size" ] ~docv:"S"
          ~doc:
            "Warm the network under a random SRLG partition of mean group \
             size $(docv) (seeded); 1 = singleton model.")
  in
  let run () _jobs degree traffic lambda scheme src dst bw top dot chain
      srlg_size quick seed =
    let cfg = config_of ~quick ~seed in
    let graph = Dr_exp.Config.make_graph cfg ~avg_degree:degree in
    let scenario = Dr_exp.Config.make_scenario cfg traffic ~lambda in
    Format.eprintf "warming network to t=%.0f s (%s, lambda=%.2f)...@."
      cfg.Dr_exp.Config.warmup
      (Dr_exp.Config.traffic_name traffic)
      lambda;
    let srlg_model =
      if srlg_size <= 1 then None
      else
        Some
          (Dr_resilience.Srlg.random_partition ~seed:(seed + 2)
             ~edge_count:(Dr_topo.Graph.edge_count graph)
             ~mean_size:srlg_size)
    in
    let state =
      Dr_exp.Runner.load_state ?srlg:srlg_model cfg ~graph ~scenario
        ~scheme:(Dr_exp.Runner.Lsr scheme) ~until:cfg.Dr_exp.Config.warmup
    in
    let n = Dr_topo.Graph.node_count graph in
    let src, dst =
      match (src, dst) with
      | Some s, Some d -> (s, d)
      | _ ->
          let rng = Dr_rng.Splitmix64.create ((seed * 7919) + 17) in
          let s, d = Dr_rng.Dist.pick_distinct_pair rng n in
          (Option.value src ~default:s, Option.value dst ~default:d)
    in
    if src < 0 || src >= n || dst < 0 || dst >= n || src = dst then begin
      Printf.eprintf "drtp_sim: bad src/dst pair (%d, %d) for %d nodes\n" src
        dst n;
      exit 2
    end;
    let pp_nodes ppf p =
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_char ppf '-')
        Format.pp_print_int ppf (Dr_topo.Path.nodes graph p)
    in
    match Drtp.Routing.find_primary state ~src ~dst ~bw with
    | None ->
        Format.printf "no feasible primary route %d -> %d (bw=%d)@." src dst bw;
        exit 1
    | Some primary ->
        Format.printf "request: %d -> %d, bw=%d, scheme=%s@." src dst bw
          (Drtp.Routing.scheme_name scheme);
        Format.printf "primary (%d hops): %a@."
          (Dr_topo.Path.hops primary)
          pp_nodes primary;
        let chosen = Drtp.Routing.find_backup scheme state ~primary ~bw in
        (match chosen with
        | None -> Format.printf "chosen backup: none (no feasible route)@."
        | Some b ->
            Format.printf "chosen backup (%d hops): %a@." (Dr_topo.Path.hops b)
              pp_nodes b);
        (if chain > 0 then begin
           let srlg = Drtp.Net_state.srlg state in
           let groups_of p =
             Dr_resilience.Srlg.groups_of_edges srlg
               (List.sort_uniq compare
                  (List.map
                     (fun l -> Dr_topo.Graph.edge_of_link l)
                     (Dr_topo.Path.links p)))
           in
           let pp_groups ppf gs =
             Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
               (fun ppf g ->
                 Format.pp_print_string ppf
                   (Dr_resilience.Srlg.group_name srlg g))
               ppf gs
           in
           Format.printf
             "@.k-resilient chain (k=%d, srlg model: %d groups, mean size \
              %.1f):@."
             chain
             (Dr_resilience.Srlg.group_count srlg)
             (Dr_resilience.Srlg.mean_group_size srlg);
           Format.printf "primary crosses srlgs: %a@." pp_groups
             (groups_of primary);
           match
             Drtp.Routing.find_backup_chain scheme state ~primary ~bw ~k:chain
           with
           | [] -> Format.printf "no chain member found@."
           | members ->
               List.iter
                 (fun (m : Drtp.Routing.chain_member) ->
                   Format.printf "member #%d (%d hops, %s): %a@."
                     m.Drtp.Routing.cm_rank
                     (Dr_topo.Path.hops m.Drtp.Routing.cm_path)
                     (if m.Drtp.Routing.cm_disjoint then "srlg-disjoint"
                      else "shares risk")
                     pp_nodes m.Drtp.Routing.cm_path;
                   Format.printf "  crosses srlgs: %a@." pp_groups
                     (groups_of m.Drtp.Routing.cm_path))
                 members
         end);
        let chosen_links = Option.map Dr_topo.Path.links chosen in
        let cost = Drtp.Routing.backup_link_cost scheme state ~primary ~bw in
        let cands = Dr_topo.Yen.k_shortest graph ~cost ~src ~dst ~k:top in
        let resources = Drtp.Net_state.resources state in
        if cands = [] then Format.printf "no feasible backup candidates@."
        else
          List.iteri
            (fun i (total, path) ->
              let mark =
                if Some (Dr_topo.Path.links path) = chosen_links then
                  "  <== chosen"
                else ""
              in
              Format.printf "@.candidate #%d (%d hops, cost %g)%s: %a@." (i + 1)
                (Dr_topo.Path.hops path)
                total mark pp_nodes path;
              Format.printf "  %4s %9s %5s %5s %10s %10s %8s %10s@." "link"
                "route" "free" "spare" "q" "conflict" "eps" "total";
              let sum = ref 0.0 in
              List.iter
                (fun l ->
                  let u = Dr_topo.Graph.link_src graph l
                  and v = Dr_topo.Graph.link_dst graph l in
                  match
                    Drtp.Routing.backup_link_verdict scheme state ~primary ~bw l
                  with
                  | Drtp.Routing.Cost p ->
                      let t = Drtp.Routing.parts_total p in
                      sum := !sum +. t;
                      Format.printf
                        "  %4d %4d>%-4d %5d %5d %10g %10g %8g %10g@." l u v
                        (Drtp.Resources.free resources l)
                        (Drtp.Resources.spare_bw resources l)
                        p.Drtp.Routing.q p.Drtp.Routing.conflict
                        p.Drtp.Routing.eps t
                  | Drtp.Routing.Dead ->
                      Format.printf "  %4d %4d>%-4d (link dead)@." l u v
                  | Drtp.Routing.No_bandwidth { required } ->
                      Format.printf "  %4d %4d>%-4d (needs %d units)@." l u v
                        required)
                (Dr_topo.Path.links path);
              Format.printf "  %56s %10g@." "sum =" !sum)
            cands;
        (match dot with
        | None -> ()
        | Some file ->
            let edge_label e =
              let l, _ = Dr_topo.Graph.links_of_edge e in
              Some
                (Printf.sprintf "e%d c=%d s=%d" e
                   (Drtp.Resources.capacity resources l)
                   (Drtp.Resources.spare_bw resources l))
            in
            let backups = match chosen with None -> [] | Some b -> [ b ] in
            let oc = open_out file in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc
                  (Dr_topo.Dot.routes_to_dot ~edge_label graph ~primary ~backups));
            Format.printf "wrote %s@." file)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Route one seeded DR-connection on a warmed network and print the \
          backup decision: the chosen route next to the top-K candidate \
          routes, each link's cost decomposed into Q-penalty, conflict term \
          and epsilon tie-break (rows sum bit-exactly to the search cost).")
    Term.(
      const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t
      $ lambda_t ~default:0.5 $ scheme_t $ src_t $ dst_t $ bw_t $ top_t $ dot_t
      $ chain_t $ srlg_size_t $ quick_t $ seed_t)

(* ---- serve: throughput-gated admission-control service loop ------------- *)

let serve_cmd =
  let module Serve = Dr_service.Serve in
  let module Serve_exp = Dr_exp.Serve_exp in
  let scheme_t =
    let parse s =
      Result.map_error (fun e -> `Msg e) (Drtp.Routing.scheme_of_string s)
    in
    let print ppf s = Format.pp_print_string ppf (Drtp.Routing.scheme_name s) in
    Arg.(
      value
      & opt (conv (parse, print)) Drtp.Routing.Dlsr
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:
            "Link-state scheme to serve with: d-lsr, p-lsr or spf (bounded \
             flooding shares mutable flood statistics and is not servable).")
  in
  let batch_t =
    Arg.(
      value
      & opt int Serve.default.Serve.sv_batch
      & info [ "batch" ] ~docv:"N" ~doc:"Requests per admission batch.")
  in
  let reorder_t =
    Arg.(
      value & flag
      & info [ "reorder" ]
          ~doc:
            "Commit each batch in locality order (grouped by source, then \
             destination) instead of arrival order.")
  in
  let what_if_every_t =
    Arg.(
      value
      & opt int Serve.default.Serve.sv_what_if_every
      & info [ "what-if-every" ] ~docv:"N"
          ~doc:"Inject a what-if query burst every $(docv) batches (0 = never).")
  in
  let what_if_burst_t =
    Arg.(
      value
      & opt int Serve.default.Serve.sv_what_if_burst
      & info [ "what-if-burst" ] ~docv:"N" ~doc:"Queries per what-if burst.")
  in
  let probe_every_t =
    Arg.(
      value
      & opt int Serve.default.Serve.sv_probe_every
      & info [ "probe-every" ] ~docv:"N"
          ~doc:
            "Evaluate a seeded link-failure probe every $(docv) batches (0 = \
             never).")
  in
  let check_every_t =
    Arg.(
      value
      & opt int Serve.default.Serve.sv_check_every
      & info [ "check-every" ] ~docv:"N"
          ~doc:
            "Audit state invariants and routing caches every $(docv) batches \
             (a final audit always runs).")
  in
  let smoke_t =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Tiny fixed-seed run for CI: a short horizon, frequent invariant \
             audits, nonzero exit on any violation.")
  in
  let wal_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal" ] ~docv:"PATH"
          ~doc:
            "Write-ahead-log every admission and release to $(docv) (the \
             checkpoint lives at $(docv).ckpt); enables crash recovery.")
  in
  let checkpoint_every_t =
    Arg.(
      value
      & opt int Serve.default.Serve.sv_checkpoint_every
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Checkpoint the manager once the WAL tail reaches $(docv) \
             records (at the next batch boundary); 0 = never.")
  in
  let crash_every_t =
    Arg.(
      value
      & opt int Serve.default.Serve.sv_crash_every
      & info [ "crash-every" ] ~docv:"N"
          ~doc:
            "Crash the manager every $(docv) batches and recover it from \
             the checkpoint + WAL tail (requires $(b,--wal)); 0 = never.")
  in
  let queue_cap_t =
    Arg.(
      value
      & opt int Serve.default.Serve.sv_queue_cap
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Bound the admission queue at $(docv) requests; excess arrivals \
             are shed with a journalled verdict (0 = unbounded).")
  in
  let deadline_t =
    Arg.(
      value
      & opt float Serve.default.Serve.sv_deadline
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Shed queued requests whose simulated wait exceeds $(docv) at \
             flush time (0 = off).")
  in
  let overload_every_t =
    Arg.(
      value
      & opt int Serve.default.Serve.sv_overload_every
      & info [ "overload-every" ] ~docv:"N"
          ~doc:
            "Inject a seeded synthetic request burst every $(docv) batches \
             (0 = off).")
  in
  let overload_burst_t =
    Arg.(
      value
      & opt int Serve.default.Serve.sv_overload_burst
      & info [ "overload-burst" ] ~docv:"N"
          ~doc:"Synthetic requests per overload burst.")
  in
  let run () jobs degree traffic lambda scheme batch reorder what_if_every
      what_if_burst probe_every check_every quick smoke wal checkpoint_every
      crash_every queue_cap deadline overload_every overload_burst seed =
    let cfg = config_of ~quick:(quick || smoke) ~seed in
    let cfg =
      if smoke then { cfg with Dr_exp.Config.warmup = 600.0; horizon = 1200.0 }
      else cfg
    in
    let serve_cfg =
      {
        Serve.default with
        Serve.sv_batch = batch;
        sv_reorder = reorder;
        sv_what_if_every = what_if_every;
        sv_what_if_burst = what_if_burst;
        sv_probe_every = probe_every;
        sv_check_every = (if smoke then min check_every 4 else check_every);
        sv_bw = cfg.Dr_exp.Config.bw_req;
        sv_seed = seed;
        sv_wal = wal;
        sv_checkpoint_every = checkpoint_every;
        sv_crash_every = crash_every;
        sv_queue_cap = queue_cap;
        sv_deadline = deadline;
        sv_overload_every = overload_every;
        sv_overload_burst = overload_burst;
      }
    in
    let params =
      { Serve_exp.scheme; traffic; lambda; avg_degree = degree; serve = serve_cfg }
    in
    let report = with_pool jobs (fun pool -> Serve_exp.run ~pool cfg params) in
    (* Deterministic counts on stdout (CI diffs them across --jobs);
       wall-clock throughput/latency/GC on stderr. *)
    Format.printf "%a%!" Serve.pp_deterministic report;
    Format.eprintf "%a%!" Serve.pp_timing report;
    if report.Serve.rp_invariant_failures > 0 then exit 1;
    if smoke && report.Serve.rp_accepted = 0 then begin
      prerr_endline "drtp_sim serve --smoke: no admissions were accepted";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Drive a seeded open-loop request stream through the batched \
          admission service, with interleaved what-if queries and failure \
          probes; reports sustained admissions/sec and latency quantiles.")
    Term.(
      const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t
      $ lambda_t ~default:0.4 $ scheme_t $ batch_t $ reorder_t
      $ what_if_every_t $ what_if_burst_t $ probe_every_t $ check_every_t
      $ quick_t $ smoke_t $ wal_t $ checkpoint_every_t $ crash_every_t
      $ queue_cap_t $ deadline_t $ overload_every_t $ overload_burst_t
      $ seed_t)

(* ---- recover: rebuild a manager from checkpoint + WAL ------------------- *)

let recover_cmd =
  let module Persist = Dr_persist.Persist in
  let scheme_t =
    let parse s =
      Result.map_error (fun e -> `Msg e) (Drtp.Routing.scheme_of_string s)
    in
    let print ppf s = Format.pp_print_string ppf (Drtp.Routing.scheme_name s) in
    Arg.(
      value
      & opt (conv (parse, print)) Drtp.Routing.Dlsr
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:
            "Link-state scheme the logged run served with (d-lsr, p-lsr or \
             spf) — replay must route exactly as the live run did.")
  in
  let wal_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "wal" ] ~docv:"PATH"
          ~doc:
            "Write-ahead log to recover from (the checkpoint is read from \
             $(docv).ckpt when present).")
  in
  let smoke_t =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Use the serve $(b,--smoke) topology parameters, so the digest \
             is comparable with a smoke run's.")
  in
  let run () degree scheme quick smoke wal seed =
    let cfg = config_of ~quick:(quick || smoke) ~seed in
    let graph = Dr_exp.Config.make_graph cfg ~avg_degree:degree in
    let route = Drtp.Routing.link_state_route_fn scheme ~with_backup:true in
    let manager =
      Drtp.Manager.create ~graph ~capacity:cfg.Dr_exp.Config.capacity
        ~spare_policy:Drtp.Net_state.Multiplexed ~route
    in
    match Persist.recover (Persist.default_config ~wal_path:wal) ~manager with
    | Error e ->
        Printf.eprintf "drtp_sim recover: %s\n%!" e;
        exit 1
    | Ok rv ->
        let state = Drtp.Manager.state manager in
        let audit name = function
          | Ok () -> ()
          | Error m ->
              (* Flush pending stdout before the stderr diagnostic so the
                 two streams never interleave mid-line. *)
              Format.print_flush ();
              Printf.eprintf "drtp_sim recover: %s failed: %s\n%!" name m;
              exit 1
        in
        audit "check_invariants" (Drtp.Net_state.check_invariants state);
        audit "check_routing_caches" (Drtp.Net_state.check_routing_caches state);
        Format.printf "recover: checkpoint-seq=%d replayed=%d wal-seq=%d@."
          rv.Persist.rv_checkpoint_seq rv.Persist.rv_replayed
          rv.Persist.rv_wal_seq;
        Format.printf "recover: active=%d digest=%s@."
          (Drtp.Net_state.active_count state)
          (Dr_persist.State_digest.manager_hex graph manager);
        Format.print_flush ()
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Rebuild admission-control state from a serve run's checkpoint and \
          write-ahead-log tail, audit its invariants, and print the state \
          digest — compare with the serve run's $(b,digest=) line to verify \
          crash-recovery equivalence.")
    Term.(
      const run $ telemetry_t $ degree_t $ scheme_t $ quick_t $ smoke_t
      $ wal_t $ seed_t)

(* ---- check-routing: fast path vs reference oracle ----------------------- *)

let check_routing_cmd =
  let module RC = Drtp.Routing_check in
  let graphs_t =
    Arg.(
      value
      & opt int RC.default_params.RC.graphs
      & info [ "graphs" ] ~docv:"N"
          ~doc:"Independent Waxman graphs to check.")
  in
  let nodes_t =
    Arg.(
      value
      & opt int RC.default_params.RC.nodes
      & info [ "nodes" ] ~docv:"N" ~doc:"Nodes per graph.")
  in
  let admissions_t =
    Arg.(
      value
      & opt int RC.default_params.RC.admissions
      & info [ "admissions" ] ~docv:"N"
          ~doc:"Random admission attempts per graph per scheme.")
  in
  let run () jobs graphs nodes admissions degree seed =
    let params =
      {
        RC.default_params with
        RC.graphs;
        nodes;
        admissions;
        avg_degree = degree;
        seed;
      }
    in
    let report =
      with_pool jobs (fun pool ->
          let results =
            Dr_parallel.Pool.map pool
              (fun g -> RC.run_graph params ~graph_index:g)
              (Array.init graphs (fun g -> g))
          in
          Array.fold_left
            (fun acc res ->
              match res with
              | Ok r -> RC.merge acc r
              | Error e ->
                  RC.merge acc
                    {
                      RC.empty_report with
                      RC.divergence_count = 1;
                      divergences =
                        [
                          Printf.sprintf "graph %d: harness crashed: %s"
                            e.Dr_parallel.Pool.index
                            e.Dr_parallel.Pool.message;
                        ];
                    })
            RC.empty_report results)
    in
    Format.printf "%a@." RC.pp_report report;
    if report.RC.divergence_count > 0 then begin
      Format.printf "check-routing: FAIL (%d divergences)@."
        report.RC.divergence_count;
      exit 1
    end
    else Format.printf "check-routing: OK@."
  in
  Cmd.v
    (Cmd.info "check-routing"
       ~doc:
         "Differential check of the routing fast path against the reference \
          oracle: replay randomized admission workloads (all three schemes, \
          with failure churn) on Waxman graphs, comparing routes and \
          bit-exact per-link cost decompositions between $(b,Routing) and \
          $(b,Routing_reference).  Exits non-zero on any divergence.")
    Term.(
      const run $ telemetry_t $ jobs_t $ graphs_t $ nodes_t $ admissions_t
      $ degree_t $ seed_t)

(* ---- chaos: robustness sweep under control-plane loss + repair churn ----- *)

let chaos_cmd =
  let scheme_t =
    let parse s =
      Result.map_error (fun e -> `Msg e) (Drtp.Routing.scheme_of_string s)
    in
    let print ppf s = Format.pp_print_string ppf (Drtp.Routing.scheme_name s) in
    Arg.(
      value
      & opt (conv (parse, print)) Drtp.Routing.Dlsr
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:"Link-state scheme under test: d-lsr, p-lsr or spf.")
  in
  let losses_t =
    Arg.(
      value
      & opt (list float) Dr_exp.Robustness_exp.default_losses
      & info [ "losses" ] ~docv:"P,P,..."
          ~doc:"Control-message loss probabilities to sweep (comma-separated).")
  in
  let mtbfs_t =
    Arg.(
      value
      & opt (list float) Dr_exp.Robustness_exp.default_mtbfs
      & info [ "mtbfs" ] ~docv:"S,S,..."
          ~doc:"Mean times between link failures to sweep (seconds).")
  in
  let mttr_t =
    Arg.(
      value & opt float 60.0
      & info [ "mttr" ] ~docv:"S" ~doc:"Mean time to repair (seconds).")
  in
  let no_queue_t =
    Arg.(
      value & flag
      & info [ "no-queue" ]
          ~doc:
            "Disable the reprotection queue (the no-queue baseline for the \
             differential comparison).")
  in
  let baseline_t =
    Arg.(
      value & flag
      & info [ "baseline" ]
          ~doc:
            "Bypass the fault-injection layer entirely (no loss plan is \
             even installed).  A sweep at $(b,--losses) 0 must be \
             byte-identical to this — the zero-loss equivalence CI gate.")
  in
  let run () jobs degree traffic lambda scheme losses mtbfs mttr no_queue
      baseline quick seed =
    let cfg = config_of ~quick ~seed in
    let rows =
      with_pool jobs (fun pool ->
          Dr_exp.Robustness_exp.run ~pool cfg ~avg_degree:degree ~traffic
            ~lambda ~scheme ~losses ~mtbfs ~mttr ~queue:(not no_queue)
            ~fault_layer:(not baseline)
            ~seed:((seed * 31) + 7) ())
    in
    Format.printf "%a@." Dr_exp.Robustness_exp.pp rows
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Robustness sweep: recovery success, latency (retransmissions \
          included) and time-unprotected over a loss-probability x \
          repair-churn grid, with lossy failure reports and activation \
          signals and the manager's reprotection queue.")
    Term.(
      const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t
      $ lambda_t ~default:0.5 $ scheme_t $ losses_t $ mtbfs_t $ mttr_t
      $ no_queue_t $ baseline_t $ quick_t $ seed_t)

(* ---- srlg: k-resilient chains under correlated failures ------------------ *)

let srlg_cmd =
  let scheme_t =
    let parse s =
      Result.map_error (fun e -> `Msg e) (Drtp.Routing.scheme_of_string s)
    in
    let print ppf s = Format.pp_print_string ppf (Drtp.Routing.scheme_name s) in
    Arg.(
      value
      & opt (conv (parse, print)) Drtp.Routing.Dlsr
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:"Link-state scheme under test: d-lsr, p-lsr or spf.")
  in
  let ks_t =
    Arg.(
      value
      & opt (list int) Dr_exp.Resilience_exp.default_ks
      & info [ "ks" ] ~docv:"K,K,..."
          ~doc:"Backup-chain depths to sweep (comma-separated).")
  in
  let sizes_t =
    Arg.(
      value
      & opt (list int) Dr_exp.Resilience_exp.default_sizes
      & info [ "sizes" ] ~docv:"S,S,..."
          ~doc:
            "Mean SRLG sizes to sweep; 1 is the singleton model (the \
             paper's independent single-link failures).")
  in
  let mtbf_t =
    Arg.(
      value & opt float 300.0
      & info [ "mtbf" ] ~docv:"S"
          ~doc:"Mean time between correlated failure events (seconds).")
  in
  let mttr_t =
    Arg.(
      value & opt float 60.0
      & info [ "mttr" ] ~docv:"S" ~doc:"Mean group outage duration (seconds).")
  in
  let baseline_t =
    Arg.(
      value & flag
      & info [ "baseline" ]
          ~doc:
            "Route with SRLG-blind backup sets \
             ($(b,link_state_route_fn ~backup_count:k)) instead of \
             SRLG-disjoint chains.  At $(b,--sizes) 1 this must be \
             byte-identical to the chain router — the singleton \
             equivalence CI gate.")
  in
  let regional_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "regional" ] ~docv:"RADIUS"
          ~doc:
            "Merge a geographic burst schedule into the sweep: each event \
             fails every alive edge whose midpoint lies within $(docv) of \
             a random disc center in the unit square.")
  in
  let overlay_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "overlay" ] ~docv:"EXTRA"
          ~doc:
            "Replace the SRLG partition with singletons plus $(docv) \
             random overlapping groups of $(b,--sizes) edges each \
             (edges may belong to several risk groups).")
  in
  let run () jobs degree traffic lambda scheme ks sizes mtbf mttr regional
      overlay baseline quick seed =
    let cfg = config_of ~quick ~seed in
    let rows =
      with_pool jobs (fun pool ->
          Dr_exp.Resilience_exp.run ~pool cfg ~avg_degree:degree ~traffic
            ~lambda ~scheme ~ks ~mean_sizes:sizes ~mtbf ~mttr ?regional
            ?overlay ~baseline
            ~seed:((seed * 37) + 11) ())
    in
    Format.printf "%a@." Dr_exp.Resilience_exp.pp rows
  in
  Cmd.v
    (Cmd.info "srlg"
       ~doc:
         "Correlated-failure sweep: k-resilient backup chains over random \
          shared-risk link groups, failing whole groups at a time.  Shows \
          the k=1 dependability degradation under correlated failures and \
          how much deeper SRLG-disjoint chains win back, plus the \
          acceptance-ratio cost of the generalised spare rule.")
    Term.(
      const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t
      $ lambda_t ~default:0.5 $ scheme_t $ ks_t $ sizes_t $ mtbf_t $ mttr_t
      $ regional_t $ overlay_t $ baseline_t $ quick_t $ seed_t)

(* ---- shard: sharded control plane, convergence-lag sweep ----------------- *)

let shard_cmd =
  let scheme_t =
    let parse s =
      Result.map_error (fun e -> `Msg e) (Drtp.Routing.scheme_of_string s)
    in
    let print ppf s = Format.pp_print_string ppf (Drtp.Routing.scheme_name s) in
    Arg.(
      value
      & opt (conv (parse, print)) Drtp.Routing.Dlsr
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:"Link-state scheme under test: d-lsr, p-lsr or spf.")
  in
  let shards_t =
    Arg.(
      value
      & opt (list int) Dr_exp.Shard_exp.default_parts
      & info [ "shards" ] ~docv:"N,N,..."
          ~doc:
            "Shard counts to sweep (comma-separated); 1 is the centralised \
             anchor configuration.")
  in
  let intervals_t =
    Arg.(
      value
      & opt (list float) Dr_exp.Shard_exp.default_intervals
      & info [ "intervals" ] ~docv:"S,S,..."
          ~doc:
            "Triggered-LSA damping intervals to sweep (seconds, \
             comma-separated); 0 floods every change immediately.")
  in
  let losses_t =
    Arg.(
      value
      & opt (list float) Dr_exp.Shard_exp.default_losses
      & info [ "losses" ] ~docv:"P,P,..."
          ~doc:"LSA/setup/ACK loss probabilities to sweep (comma-separated).")
  in
  let refresh_t =
    Arg.(
      value & opt float 30.0
      & info [ "refresh" ] ~docv:"S"
          ~doc:
            "Periodic full re-advertisement period (seconds); 0 disables, \
             leaving loss repair to triggered traffic.")
  in
  let flood_delay_t =
    Arg.(
      value & opt float 0.050
      & info [ "flood-delay" ] ~docv:"S"
          ~doc:"LSA origination-to-delivery latency (seconds).")
  in
  let hop_delay_t =
    Arg.(
      value & opt float 0.001
      & info [ "hop-delay" ] ~docv:"S"
          ~doc:"Per-hop setup/teardown latency (seconds).")
  in
  let retries_t =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:"Crankback budget per connection after a stale-view rejection.")
  in
  let backups_t =
    Arg.(
      value & opt int 1
      & info [ "backups" ] ~docv:"N" ~doc:"Backups per DR-connection.")
  in
  let baseline_t =
    Arg.(
      value & flag
      & info [ "baseline" ]
          ~doc:
            "Drive the same workload and sampling through the centralised \
             $(b,Drtp.Manager) instead of the sharded control plane.  A \
             sweep at $(b,--shards) 1 must be byte-identical to this — \
             the single-shard equivalence CI gate.")
  in
  let run () jobs degree traffic lambda scheme shards intervals losses refresh
      flood_delay hop_delay retries backups baseline quick seed =
    let cfg = config_of ~quick ~seed in
    let rows =
      with_pool jobs (fun pool ->
          Dr_exp.Shard_exp.run ~pool cfg ~avg_degree:degree ~traffic ~lambda
            ~scheme ~backup_count:backups ~parts_list:shards ~intervals ~losses
            ~lsa_refresh:refresh ~flood_delay ~hop_delay ~max_retries:retries
            ~baseline
            ~seed:((seed * 41) + 13) ())
    in
    Format.printf "%a@." Dr_exp.Shard_exp.pp rows
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Sharded-control-plane sweep: partition the topology into region \
          shards exchanging sequence-numbered link-state advertisements \
          over lossy channels, and measure convergence lag, advertisement \
          age at decision time, and how often stale inter-shard routing \
          diverges from the omniscient choice, over a shard-count x \
          LSA-interval x loss grid.")
    Term.(
      const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t
      $ lambda_t ~default:0.5 $ scheme_t $ shards_t $ intervals_t $ losses_t
      $ refresh_t $ flood_delay_t $ hop_delay_t $ retries_t $ backups_t
      $ baseline_t $ quick_t $ seed_t)

(* ---- inspect: summarise a journal file ---------------------------------- *)

let inspect_cmd =
  let file_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOURNAL" ~doc:"Journal JSONL file to summarise.")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Schema-validate only: parse every line and exit 1 if any line \
             is malformed or of unknown event kind.")
  in
  let top_t =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Rows per ranking table.")
  in
  let run () file check top =
    let num fields name =
      match List.assoc_opt name fields with
      | Some (Journal.Num v) -> Some v
      | _ -> None
    in
    let lines = ref 0 and error_count = ref 0 in
    let first_errors = ref [] in
    let kind_counts = Hashtbl.create 32 in
    (* Conflict mass each link accumulated across backup-chosen cost rows:
       the links the schemes kept paying for are the contended ones. *)
    let contended = Hashtbl.create 64 in
    (* Spare-capacity high water per link, with the sim time it was first
       reached (from spare-change events). *)
    let spare_hw = Hashtbl.create 64 in
    let s_det = ref 0.0 and s_rep = ref 0.0 and s_act = ref 0.0 in
    let n_act = ref 0 and n_lost = ref 0 and n_cont = ref 0 in
    (* Chain health: membership and disjointness at build time, residual
       resilience (members left) after each failover, exhaustions. *)
    let n_built = ref 0 and s_members = ref 0 and s_disjoint = ref 0 in
    let remaining_hist = Hashtbl.create 8 in
    let n_failover = ref 0 and n_exhausted = ref 0 in
    (* Victim mass per SRLG across group-failed events: the risk groups
       whose failure keeps hurting are the exposed ones. *)
    let group_victims = Hashtbl.create 16 in
    (* Events the bounded ring overwrote before export ([ring-dropped]
       lines): the journal is a suffix of what the run recorded. *)
    let ring_dropped = ref 0 in
    let folded =
      Journal.fold_jsonl file ~init:() ~f:(fun () lineno parsed ->
          incr lines;
          match parsed with
          | Error msg ->
              incr error_count;
              if List.length !first_errors < 5 then
                first_errors := (lineno, msg) :: !first_errors
          | Ok p ->
              Hashtbl.replace kind_counts p.Journal.p_kind
                (1
                + Option.value
                    (Hashtbl.find_opt kind_counts p.Journal.p_kind)
                    ~default:0);
              let fields = p.Journal.p_fields in
              (match p.Journal.p_kind with
              | "backup-chosen" -> (
                  match List.assoc_opt "links" fields with
                  | Some (Journal.Arr rows) ->
                      List.iter
                        (function
                          | Journal.Obj row -> (
                              match (num row "link", num row "conflict") with
                              | Some l, Some c ->
                                  let l = int_of_float l in
                                  let s, k =
                                    Option.value
                                      (Hashtbl.find_opt contended l)
                                      ~default:(0.0, 0)
                                  in
                                  Hashtbl.replace contended l (s +. c, k + 1)
                              | _ -> ())
                          | _ -> ())
                        rows
                  | _ -> ())
              | "spare-change" -> (
                  match (num fields "link", num fields "after") with
                  | Some l, Some after -> (
                      let l = int_of_float l in
                      match Hashtbl.find_opt spare_hw l with
                      | Some (peak, _) when after <= peak -> ()
                      | _ -> Hashtbl.replace spare_hw l (after, p.Journal.p_time)
                      )
                  | _ -> ())
              | "backup-activated" -> (
                  match
                    ( num fields "detection_s",
                      num fields "report_s",
                      num fields "activation_s" )
                  with
                  | Some d, Some r, Some a ->
                      s_det := !s_det +. d;
                      s_rep := !s_rep +. r;
                      s_act := !s_act +. a;
                      incr n_act
                  | _ -> ())
              | "connection-lost" -> incr n_lost
              | "backup-contended" -> incr n_cont
              | "chain-built" -> (
                  match (num fields "members", num fields "disjoint") with
                  | Some m, Some d ->
                      incr n_built;
                      s_members := !s_members + int_of_float m;
                      s_disjoint := !s_disjoint + int_of_float d
                  | _ -> ())
              | "chain-failover" -> (
                  incr n_failover;
                  match num fields "remaining" with
                  | Some r ->
                      let r = int_of_float r in
                      Hashtbl.replace remaining_hist r
                        (1
                        + Option.value
                            (Hashtbl.find_opt remaining_hist r)
                            ~default:0)
                  | None -> ())
              | "chain-exhausted" -> incr n_exhausted
              | "ring-dropped" -> (
                  match num fields "count" with
                  | Some c -> ring_dropped := !ring_dropped + int_of_float c
                  | None -> ())
              | "group-failed" -> (
                  match (num fields "group", num fields "victims") with
                  | Some g, Some v ->
                      let g = int_of_float g in
                      let s, k =
                        Option.value
                          (Hashtbl.find_opt group_victims g)
                          ~default:(0, 0)
                      in
                      Hashtbl.replace group_victims g
                        (s + int_of_float v, k + 1)
                  | _ -> ())
              | _ -> ()))
    in
    match folded with
    | Error msg ->
        Printf.eprintf "drtp_sim: cannot read %s (%s)\n" file msg;
        exit 2
    | Ok () ->
        if check then begin
          Printf.printf "%s: %d lines, %d errors\n" file !lines !error_count;
          List.iter
            (fun (ln, msg) -> Printf.printf "  line %d: %s\n" ln msg)
            (List.rev !first_errors);
          if !error_count > 0 then exit 1
        end
        else begin
          Format.printf "# journal %s: %d events%s@." file !lines
            (if !error_count > 0 then
               Printf.sprintf " (%d malformed lines!)" !error_count
             else "");
          if !ring_dropped > 0 then
            Format.printf
              "# warning: ring overwrote %d events before export — the \
               journal is a suffix of the run; traces may be incomplete@."
              !ring_dropped;
          Format.printf "@.@[<v># events by kind@,";
          List.iter
            (fun k ->
              match Hashtbl.find_opt kind_counts k with
              | Some c -> Format.printf "%-18s %8d@," k c
              | None -> ())
            Journal.all_kinds;
          Format.printf "@]@.";
          let ranked tbl =
            List.sort compare
              (Hashtbl.fold (fun l (v, x) acc -> (-.v, l, x) :: acc) tbl [])
          in
          (match ranked contended with
          | [] -> ()
          | rows ->
              Format.printf
                "@.@[<v># top contended links (conflict mass across \
                 backup-chosen rows)@,";
              List.iteri
                (fun i (neg_sum, l, k) ->
                  if i < top then
                    Format.printf "link %-5d conflict-sum %10.1f over %d rows@,"
                      l (-.neg_sum) k)
                rows;
              Format.printf "@]@.");
          (match
             List.sort compare
               (Hashtbl.fold
                  (fun l (peak, t) acc -> (-.peak, t, l) :: acc)
                  spare_hw [])
           with
          | [] -> ()
          | rows ->
              Format.printf
                "@.@[<v># spare-capacity high water (SC_i peaks)@,";
              List.iteri
                (fun i (neg_peak, t, l) ->
                  if i < top then
                    Format.printf
                      "link %-5d peak %4.0f units, first reached t=%.1f s@," l
                      (-.neg_peak) t)
                rows;
              Format.printf "@]@.");
          if !n_act > 0 || !n_lost > 0 || !n_cont > 0 then begin
            Format.printf "@.@[<v># recovery breakdown@,";
            (if !n_act > 0 then
               let m = float_of_int !n_act in
               Format.printf
                 "backup activations %d: mean detection %.4f s + report %.4f \
                  s + activation %.4f s = %.4f s@,"
                 !n_act (!s_det /. m) (!s_rep /. m) (!s_act /. m)
                 ((!s_det +. !s_rep +. !s_act) /. m));
            Format.printf "contended backups %d, connections lost %d@," !n_cont
              !n_lost;
            Format.printf "@]@."
          end;
          if !n_built > 0 || !n_failover > 0 || !n_exhausted > 0 then begin
            Format.printf "@.@[<v># chain health@,";
            (if !n_built > 0 then
               let m = float_of_int !n_built in
               Format.printf
                 "chains built %d: mean members %.2f, mean srlg-disjoint \
                  %.2f@,"
                 !n_built
                 (float_of_int !s_members /. m)
                 (float_of_int !s_disjoint /. m));
            Format.printf "failovers %d, chains exhausted %d@," !n_failover
              !n_exhausted;
            (match
               List.sort compare
                 (Hashtbl.fold (fun r c acc -> (r, c) :: acc) remaining_hist [])
             with
            | [] -> ()
            | rows ->
                Format.printf
                  "residual resilience after failover (members left -> \
                   connections):@,";
                List.iter
                  (fun (r, c) -> Format.printf "  %d left %8d@," r c)
                  rows);
            Format.printf "@]@."
          end;
          (* Critical-path quantiles from the causal spans, when the
             journal carries any: per root phase, the end-to-end tail and
             which child phase dominated it. *)
          (if Hashtbl.mem kind_counts "span-open" then
             match Dr_trace.Trace.of_file file with
             | Error _ -> ()
             | Ok t ->
                 let module Tr = Dr_trace.Trace in
                 let groups = Hashtbl.create 8 in
                 let order = ref [] in
                 List.iter
                   (fun tr ->
                     if Tr.complete tr then
                       match Tr.root tr with
                       | None -> ()
                       | Some r ->
                           let key = r.Tr.sp_phase in
                           if not (Hashtbl.mem groups key) then begin
                             order := key :: !order;
                             Hashtbl.replace groups key []
                           end;
                           Hashtbl.replace groups key
                             (tr :: Hashtbl.find groups key))
                   (Tr.traces t);
                 if !order <> [] then begin
                   Format.printf
                     "@.@[<v># critical paths (complete traces; durations \
                      in s)@,";
                   Format.printf "%-14s %8s %10s %10s %10s  %s@," "root"
                     "traces" "p50" "p95" "p99" "dominant";
                   List.iter
                     (fun key ->
                       let trs = Hashtbl.find groups key in
                       let durs =
                         Array.of_list
                           (List.filter_map
                              (fun tr ->
                                Option.map
                                  (fun r -> r.Tr.sp_dur)
                                  (Tr.root tr))
                              trs)
                       in
                       let q p = Dr_stats.Histogram.quantile durs p in
                       (* Most frequent dominant child phase across the
                          group's critical paths. *)
                       let dom = Hashtbl.create 8 in
                       List.iter
                         (fun tr ->
                           match Tr.critical_path tr with
                           | _ :: step :: _ ->
                               Hashtbl.replace dom step.Tr.sp_phase
                                 (1
                                 + Option.value
                                     (Hashtbl.find_opt dom step.Tr.sp_phase)
                                     ~default:0)
                           | _ -> ())
                         trs;
                       let dominant =
                         match
                           List.sort compare
                             (Hashtbl.fold
                                (fun p c acc -> (-c, p) :: acc)
                                dom [])
                         with
                         | (neg_c, p) :: _ ->
                             Printf.sprintf "%s (%d)" p (-neg_c)
                         | [] -> "-"
                       in
                       Format.printf "%-14s %8d %10.6f %10.6f %10.6f  %s@,"
                         key (Array.length durs) (q 0.5) (q 0.95) (q 0.99)
                         dominant)
                     (List.rev !order);
                   Format.printf "@]@."
                 end);
          match
            List.sort compare
              (Hashtbl.fold
                 (fun g (v, k) acc -> (-v, g, k) :: acc)
                 group_victims [])
          with
          | [] -> ()
          | rows ->
              Format.printf
                "@.@[<v># top srlgs by exposure (victims across group-failed \
                 events)@,";
              List.iteri
                (fun i (neg_v, g, k) ->
                  if i < top then
                    Format.printf "group %-5d victims %6d over %d events@," g
                      (-neg_v) k)
                rows;
              Format.printf "@]@."
        end
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Summarise a flight-recorder journal (written with $(b,--journal)): \
          event histogram, top contended links, spare-capacity high-water \
          marks and the recovery-latency phase breakdown.")
    Term.(const run $ telemetry_t $ file_t $ check_t $ top_t)

(* ---- trace: causal-trace assembly and critical-path report -------------- *)

let trace_cmd =
  let file_t =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOURNAL"
          ~doc:
            "Journal JSONL file (written with $(b,--journal)) carrying \
             span-open/span-close records.")
  in
  let perfetto_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Also write the traces as Chrome trace-event JSON to $(docv) — \
             load in ui.perfetto.dev to inspect tails visually.")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate trace structure only: duplicate spans, unclosed \
             spans, dangling parent/cause edges, cycles, multi-root \
             traces.  Exit 1 on structural errors; ring-overwrite \
             incompleteness is reported as a warning, not an error.")
  in
  let top_t =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"N"
          ~doc:"Slowest traces whose critical paths are spelled out.")
  in
  let run () file perfetto check top =
    let module Tr = Dr_trace.Trace in
    match Tr.of_file file with
    | Error msg ->
        Printf.eprintf "drtp_sim: cannot read %s (%s)\n" file msg;
        exit 2
    | Ok t ->
        (match perfetto with
        | None -> ()
        | Some out ->
            let oc =
              try open_out out
              with Sys_error msg ->
                Printf.eprintf "drtp_sim: cannot open perfetto file (%s)\n"
                  msg;
                exit 2
            in
            Tr.write_perfetto t oc;
            close_out oc);
        if check then begin
          let issues = Tr.check t in
          let errors = List.filter Tr.is_error issues in
          Printf.printf "%s: %d spans in %d traces, %d errors, %d warnings\n"
            file (Tr.span_count t)
            (List.length (Tr.traces t))
            (List.length errors)
            (List.length issues - List.length errors);
          List.iter (fun m -> Printf.printf "  %s\n" m) issues;
          if errors <> [] then exit 1
        end
        else Tr.report ~top Format.std_formatter t
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Assemble the causal traces recorded in a flight-recorder journal \
          and report sim-time critical paths: per-phase attribution tables \
          with p50/p95/p99 quantiles, the slowest traces spelled out, \
          optional Perfetto (Chrome trace-event) export, and a structural \
          validation mode ($(b,--check)).")
    Term.(const run $ telemetry_t $ file_t $ perfetto_t $ check_t $ top_t)

let default_info =
  Cmd.info "drtp_sim" ~version:"1.0.0"
    ~doc:
      "Reproduction of 'Design and Evaluation of Routing Schemes for \
       Dependable Real-Time Connections' (DSN 2001)."

let () =
  (* Surface silent flooding degradation: a truncated flood means BF routed
     on an incomplete candidate set.  Warn once per process (floods may run
     on worker domains, hence the atomic latch); every occurrence is also
     journalled as a [flood-truncated] event and counted in telemetry. *)
  let truncation_warned = Atomic.make false in
  (Dr_flood.Bounded_flood.on_truncated :=
     fun ~src ~dst ~messages ->
       if not (Atomic.exchange truncation_warned true) then
         Printf.eprintf
           "drtp_sim: warning: bounded flood %d->%d truncated at %d messages \
            (cdp_cap reached); BF candidate sets are incomplete — consider a \
            larger cdp_cap\n\
            %!"
           src dst messages);
  let cmds =
    [
      table1_cmd; fig4_cmd; fig5_cmd; details_cmd; claims_cmd; ablate_mux_cmd;
      ablate_flood_cmd; ablate_spf_cmd; ablate_backups_cmd; ablate_qos_cmd;
      ablate_classes_cmd; replicate_cmd; staleness_cmd; availability_cmd;
      overhead_cmd;
      recovery_cmd; chaos_cmd; srlg_cmd; shard_cmd; topo_cmd; scenario_cmd;
      replay_cmd;
      explain_cmd; serve_cmd; recover_cmd; inspect_cmd; trace_cmd;
      check_routing_cmd;
    ]
  in
  exit (Cmd.eval (Cmd.group default_info cmds))

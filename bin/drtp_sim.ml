(* drtp_sim — command-line driver for the DSN'01 reproduction.

   One subcommand per reproduced artifact: Table 1, Figures 4 and 5, the
   §6.2 claims check, the ablations, the routing-overhead table and the
   recovery extension, plus scenario-file and topology tooling. *)

open Cmdliner

let stderr_progress line =
  prerr_string line;
  prerr_newline ()

(* ---- telemetry --------------------------------------------------------- *)

module Telemetry = Dr_telemetry.Telemetry

let trace_t =
  let doc =
    "Enable telemetry and write a JSONL trace (span records, then a final \
     snapshot of every counter/gauge/timer) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_t =
  let doc =
    "Enable telemetry and print the metrics summary table when the command \
     finishes."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Evaluating this term configures telemetry as a side effect, so every
   subcommand picks the flags up by prepending [$ telemetry_t].  The
   summary table and the trace finalisation run from [at_exit]: they then
   also cover commands that leave through [exit] (claims). *)
let telemetry_t =
  let setup trace metrics =
    if trace <> None || metrics then Telemetry.set_enabled true;
    (match trace with
    | None -> ()
    | Some file ->
        let oc =
          try open_out file
          with Sys_error msg ->
            Printf.eprintf "drtp_sim: cannot open trace file (%s)\n" msg;
            exit 2
        in
        Telemetry.Sink.set (Telemetry.Sink.jsonl oc);
        at_exit Telemetry.Sink.close);
    if metrics then
      (* Registered after the sink hook, so LIFO order prints the table
         before the trace file is finalised. *)
      at_exit (fun () -> Format.printf "@.%a@." Telemetry.pp_summary ())
  in
  Term.(const setup $ trace_t $ metrics_t)

(* ---- shared options ---------------------------------------------------- *)

let degree_t =
  let doc = "Average node degree E of the Waxman topology (3 or 4)." in
  Arg.(value & opt float 3.0 & info [ "degree"; "E" ] ~docv:"E" ~doc)

let lambda_t ~default =
  let doc = "Connection arrival rate lambda (requests/second)." in
  Arg.(value & opt float default & info [ "lambda" ] ~docv:"LAMBDA" ~doc)

let traffic_t =
  let doc = "Traffic pattern: UT (uniform) or NT (hotspots)." in
  let parse s = Result.map_error (fun e -> `Msg e) (Dr_exp.Config.traffic_of_string s) in
  let print ppf t = Format.pp_print_string ppf (Dr_exp.Config.traffic_name t) in
  Arg.(
    value
    & opt (conv (parse, print)) Dr_exp.Config.UT
    & info [ "traffic" ] ~docv:"PATTERN" ~doc)

let quick_t =
  let doc =
    "Quick mode: shorter horizon and fewer load points (for smoke tests)."
  in
  Arg.(value & flag & info [ "quick" ] ~doc)

let jobs_t =
  let doc =
    "Worker domains for independent simulation runs (default: the runtime's \
     recommended domain count).  Output is identical for any $(docv); \
     single-run commands accept the flag but run on one domain."
  in
  Arg.(
    value
    & opt int (Dr_parallel.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let with_pool jobs f =
  if jobs < 1 then begin
    Printf.eprintf "drtp_sim: --jobs must be >= 1 (got %d)\n" jobs;
    exit 2
  end;
  Dr_parallel.Pool.with_pool ~jobs f

let seed_t =
  let doc = "Base seed for topology and workload generation." in
  Arg.(value & opt int Dr_exp.Config.default.Dr_exp.Config.topology_seed
       & info [ "seed" ] ~docv:"SEED" ~doc)

let config_of ~quick ~seed =
  let cfg = Dr_exp.Config.default in
  let cfg = { cfg with Dr_exp.Config.topology_seed = seed; workload_seed = seed * 101 } in
  if quick then
    { cfg with Dr_exp.Config.warmup = 2400.0; horizon = 4800.0; sample_every = 300.0 }
  else cfg

let lambdas_for ~quick degree =
  let all = Dr_exp.Config.lambdas_for_degree degree in
  if quick then
    match all with a :: _ :: c :: _ -> [ a; c ] | other -> other
  else all

(* ---- subcommands ------------------------------------------------------- *)

let table1_cmd =
  let run () _jobs quick seed =
    Format.printf "%a@." Dr_exp.Config.pp_table1 (config_of ~quick ~seed)
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the simulation parameters (paper Table 1).")
    Term.(const run $ telemetry_t $ jobs_t $ quick_t $ seed_t)

let csv_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also dump the sweep as CSV to this file.")

let sweep_and_print ~print jobs degree quick seed csv =
  let cfg = config_of ~quick ~seed in
  let sweep =
    with_pool jobs (fun pool ->
        Dr_exp.Sweep.run ~pool ~progress:stderr_progress cfg ~avg_degree:degree
          ~lambdas:(lambdas_for ~quick degree) ())
  in
  Format.printf "%a@." print sweep;
  match csv with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Dr_exp.Report.to_csv sweep));
      Format.eprintf "wrote %s@." file

let fig4_cmd =
  let run () jobs degree quick seed csv =
    sweep_and_print ~print:Dr_exp.Report.print_figure4 jobs degree quick seed csv
  in
  Cmd.v
    (Cmd.info "fig4"
       ~doc:"Reproduce Figure 4: fault-tolerance P_act-bk vs lambda.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ quick_t $ seed_t $ csv_t)

let fig5_cmd =
  let run () jobs degree quick seed csv =
    sweep_and_print ~print:Dr_exp.Report.print_figure5 jobs degree quick seed csv
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Reproduce Figure 5: capacity overhead vs lambda.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ quick_t $ seed_t $ csv_t)

let details_cmd =
  let run () jobs degree quick seed csv =
    sweep_and_print ~print:Dr_exp.Report.print_details jobs degree quick seed csv
  in
  Cmd.v
    (Cmd.info "details" ~doc:"Per-cell diagnostics for one sweep.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ quick_t $ seed_t $ csv_t)

let claims_cmd =
  let json_t =
    let doc =
      "Emit one machine-readable JSON record per claim \
       (claim/expected/measured/pass) instead of the tables."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run () jobs json quick seed =
    let cfg = config_of ~quick ~seed in
    let claims =
      with_pool jobs (fun pool ->
          let sweep degree =
            Dr_exp.Sweep.run ~pool ~progress:stderr_progress cfg
              ~avg_degree:degree
              ~lambdas:(lambdas_for ~quick degree) ()
          in
          let e3 = sweep 3.0 in
          let e4 = sweep 4.0 in
          let claims = Dr_exp.Report.check_claims ~e3 ~e4 in
          if json then print_string (Dr_exp.Report.claims_to_json claims)
          else begin
            Format.printf "%a@.@.%a@.@.%a@.@.%a@.@." Dr_exp.Report.print_figure4
              e3 Dr_exp.Report.print_figure4 e4 Dr_exp.Report.print_figure5 e3
              Dr_exp.Report.print_figure5 e4;
            Format.printf "%a@." Dr_exp.Report.print_claims claims
          end;
          claims)
    in
    (* Nonzero exit on any failed claim, so CI can gate on this command.
       Outside [with_pool]: the workers are already joined. *)
    if not (Dr_exp.Report.all_claims_hold claims) then exit 1
  in
  Cmd.v
    (Cmd.info "claims"
       ~doc:
         "Run both sweeps and check the paper's summary claims (§6.2); \
          exits 1 if any claim fails.")
    Term.(const run $ telemetry_t $ jobs_t $ json_t $ quick_t $ seed_t)

let ablate_mux_cmd =
  let run () jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Ablation.pp_mux
      (with_pool jobs (fun pool ->
           Dr_exp.Ablation.no_multiplexing ~pool cfg ~avg_degree:degree ~traffic
             ~lambda))
  in
  Cmd.v
    (Cmd.info "ablate-mux"
       ~doc:"Ablation A1: multiplexed vs dedicated spare reservations.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.5 $ quick_t $ seed_t)

let ablate_flood_cmd =
  let run () jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Ablation.pp_flood
      (with_pool jobs (fun pool ->
           Dr_exp.Ablation.flood_scope ~pool cfg ~avg_degree:degree ~traffic
             ~lambda ()))
  in
  Cmd.v
    (Cmd.info "ablate-flood"
       ~doc:"Ablation A2: bounded-flooding scope parameters.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.5 $ quick_t $ seed_t)

let ablate_spf_cmd =
  let run () jobs traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Ablation.pp_blind
      (with_pool jobs (fun pool ->
           Dr_exp.Ablation.conflict_blind ~pool cfg ~traffic ~lambda))
  in
  Cmd.v
    (Cmd.info "ablate-spf"
       ~doc:"Ablation A3: conflict-aware vs conflict-blind backup routing.")
    Term.(const run $ telemetry_t $ jobs_t $ traffic_t $ lambda_t ~default:0.5 $ quick_t $ seed_t)

let ablate_backups_cmd =
  let run () jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Ablation.pp_backup_count
      (with_pool jobs (fun pool ->
           Dr_exp.Ablation.backup_count ~pool cfg ~avg_degree:degree ~traffic
             ~lambda ()))
  in
  Cmd.v
    (Cmd.info "ablate-backups"
       ~doc:
         "Extension E2: zero, one or two backups per DR-connection (edge and \
          node fault-tolerance vs capacity).")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.4 $ quick_t $ seed_t)

let replicate_cmd =
  let seeds_t =
    Arg.(
      value & opt int 3
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of independent replications.")
  in
  let run () jobs degree seeds quick seed =
    let cfg = config_of ~quick ~seed in
    let t =
      with_pool jobs (fun pool ->
          Dr_exp.Replicate.run ~pool ~progress:stderr_progress cfg
            ~avg_degree:degree
            ~seeds:(List.init seeds (fun i -> i))
            ~lambdas:(lambdas_for ~quick degree) ())
    in
    Format.printf "%a@.@.%a@." Dr_exp.Replicate.print_figure4 t
      Dr_exp.Replicate.print_figure5 t
  in
  Cmd.v
    (Cmd.info "replicate"
       ~doc:
         "Figures 4/5 with multi-seed replication and confidence intervals.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ seeds_t $ quick_t $ seed_t)

let ablate_qos_cmd =
  let run () jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Ablation.pp_qos
      (with_pool jobs (fun pool ->
           Dr_exp.Ablation.qos_bound ~pool cfg ~avg_degree:degree ~traffic
             ~lambda ()))
  in
  Cmd.v
    (Cmd.info "ablate-qos"
       ~doc:
         "Extension E5: hop (delay) budget on backup routes — tight QoS \
          forfeits protection.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.4 $ quick_t $ seed_t)

let ablate_classes_cmd =
  let run () jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Ablation.pp_classes
      (with_pool jobs (fun pool ->
           Dr_exp.Ablation.traffic_classes ~pool cfg ~avg_degree:degree ~traffic
             ~lambda ()))
  in
  Cmd.v
    (Cmd.info "ablate-classes"
       ~doc:
         "Heterogeneous bandwidth classes (audio/video mixes) through the \
          weighted multiplexing rule.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.3 $ quick_t $ seed_t)

let availability_cmd =
  let mtbf_t =
    Arg.(value & opt float 600.0
         & info [ "mtbf" ] ~docv:"S" ~doc:"Mean time between failures (seconds).")
  in
  let mttr_t =
    Arg.(value & opt float 120.0
         & info [ "mttr" ] ~docv:"S" ~doc:"Mean time to repair (seconds).")
  in
  let run () _jobs degree traffic lambda mtbf mttr quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Availability_exp.pp
      (Dr_exp.Availability_exp.run cfg ~avg_degree:degree ~traffic ~lambda ~mtbf
         ~mttr ())
  in
  Cmd.v
    (Cmd.info "availability"
       ~doc:
         "Extension E6: service availability under a continuous \
          failure/repair process, DRTP vs reactive.")
    Term.(
      const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.5 $ mtbf_t $ mttr_t
      $ quick_t $ seed_t)

let staleness_cmd =
  let run () _jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Staleness_exp.pp
      (Dr_exp.Staleness_exp.run cfg ~avg_degree:degree ~traffic ~lambda ())
  in
  Cmd.v
    (Cmd.info "staleness"
       ~doc:
         "Extension E4: distributed protocol with damped link-state \
          advertisements (setup failures vs advertisement traffic).")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.5 $ quick_t $ seed_t)

let overhead_cmd =
  let run () _jobs degree traffic lambda quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Overhead.pp
      (Dr_exp.Overhead.measure cfg ~avg_degree:degree ~traffic ~lambda)
  in
  Cmd.v
    (Cmd.info "overhead" ~doc:"Routing-overhead comparison of the schemes.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.5 $ quick_t $ seed_t)

let recovery_cmd =
  let failures_t =
    Arg.(value & opt int 40 & info [ "failures" ] ~docv:"N" ~doc:"Failures to inject.")
  in
  let run () _jobs degree traffic lambda failures quick seed =
    let cfg = config_of ~quick ~seed in
    Format.printf "%a@." Dr_exp.Recovery_exp.pp
      (Dr_exp.Recovery_exp.run cfg ~avg_degree:degree ~traffic ~lambda ~failures ())
  in
  Cmd.v
    (Cmd.info "recovery"
       ~doc:"Extension E1: dynamic failure recovery, DRTP vs reactive.")
    Term.(
      const run $ telemetry_t $ jobs_t $ degree_t $ traffic_t $ lambda_t ~default:0.5 $ failures_t
      $ quick_t $ seed_t)

let topo_cmd =
  let dot_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Also write a Graphviz rendering.")
  in
  let save_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Also save the edge list.")
  in
  let run () _jobs degree dot save quick seed =
    let cfg = config_of ~quick ~seed in
    let g = Dr_exp.Config.make_graph cfg ~avg_degree:degree in
    (match save with
    | None -> ()
    | Some file ->
        Dr_topo.Graph.save g file;
        Format.printf "saved %s@." file);
    Format.printf "%a@." Dr_topo.Topo_metrics.pp (Dr_topo.Topo_metrics.compute g);
    Format.printf "degree histogram: %a@."
      (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf (d, c) ->
           Format.fprintf ppf "%d:%d" d c))
      (Dr_topo.Topo_metrics.degree_histogram g);
    match dot with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Dr_topo.Dot.to_dot g));
        Format.printf "wrote %s@." file
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Describe the generated evaluation topology.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ dot_t $ save_t $ quick_t $ seed_t)

let scenario_cmd =
  let out_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output scenario file.")
  in
  let run () _jobs traffic lambda out quick seed =
    let cfg = config_of ~quick ~seed in
    let s = Dr_exp.Config.make_scenario cfg traffic ~lambda in
    Dr_sim.Scenario.save s out;
    Format.printf "wrote %d events (%d requests) to %s@."
      (Dr_sim.Scenario.length s)
      (Dr_sim.Scenario.request_count s)
      out
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:"Generate and save a scenario file (the paper's Matlab step).")
    Term.(const run $ telemetry_t $ jobs_t $ traffic_t $ lambda_t ~default:0.5 $ out_t $ quick_t $ seed_t)

let replay_cmd =
  let file_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "scenario" ] ~docv:"FILE" ~doc:"Scenario file to replay.")
  in
  let scheme_t =
    let parse s =
      match String.lowercase_ascii s with
      | "bf" -> Ok `Bf
      | "none" | "no-backup" -> Ok `None
      | other ->
          Result.map_error (fun e -> `Msg e)
            (Result.map (fun x -> `Lsr x) (Drtp.Routing.scheme_of_string other))
    in
    let print ppf = function
      | `Bf -> Format.pp_print_string ppf "bf"
      | `None -> Format.pp_print_string ppf "none"
      | `Lsr x -> Format.pp_print_string ppf (Drtp.Routing.scheme_name x)
    in
    Arg.(
      value
      & opt (conv (parse, print)) (`Lsr Drtp.Routing.Dlsr)
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:"Routing scheme: d-lsr, p-lsr, spf, bf or none.")
  in
  let run () _jobs degree file scheme quick seed =
    let cfg = config_of ~quick ~seed in
    match Dr_sim.Scenario.load file with
    | Error msg ->
        Format.eprintf "cannot load %s: %s@." file msg;
        exit 1
    | Ok scenario ->
        let graph = Dr_exp.Config.make_graph cfg ~avg_degree:degree in
        let spec =
          match scheme with
          | `Bf -> Dr_exp.Runner.Bf Dr_flood.Bounded_flood.default_config
          | `None -> Dr_exp.Runner.No_backup
          | `Lsr x -> Dr_exp.Runner.Lsr x
        in
        let m = Dr_exp.Runner.run cfg ~graph ~scenario ~scheme:spec in
        Format.printf
          "%s: %d requests, acceptance %.3f, ft %.4f, node-ft %.4f, avg \
           active %.1f, degraded %d@."
          m.Dr_exp.Runner.label m.Dr_exp.Runner.requests m.Dr_exp.Runner.acceptance
          m.Dr_exp.Runner.ft_overall m.Dr_exp.Runner.node_ft_overall
          m.Dr_exp.Runner.avg_active m.Dr_exp.Runner.degraded
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a saved scenario file under a chosen routing scheme.")
    Term.(const run $ telemetry_t $ jobs_t $ degree_t $ file_t $ scheme_t $ quick_t $ seed_t)

let default_info =
  Cmd.info "drtp_sim" ~version:"1.0.0"
    ~doc:
      "Reproduction of 'Design and Evaluation of Routing Schemes for \
       Dependable Real-Time Connections' (DSN 2001)."

let () =
  let cmds =
    [
      table1_cmd; fig4_cmd; fig5_cmd; details_cmd; claims_cmd; ablate_mux_cmd;
      ablate_flood_cmd; ablate_spf_cmd; ablate_backups_cmd; ablate_qos_cmd;
      ablate_classes_cmd; replicate_cmd; staleness_cmd; availability_cmd;
      overhead_cmd;
      recovery_cmd; topo_cmd; scenario_cmd; replay_cmd;
    ]
  in
  exit (Cmd.eval (Cmd.group default_info cmds))

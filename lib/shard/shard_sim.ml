module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Scenario = Dr_sim.Scenario
module Engine = Dr_sim.Engine
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing
module View = Dr_proto.Advertised_view
module Faults = Dr_faults.Faults
module Backoff = Dr_faults.Backoff
module Tm = Dr_telemetry.Telemetry
module Summary = Dr_stats.Summary
module J = Dr_obs.Journal
module C = Dr_obs.Journal.Causal

let c_lsa_sent = Tm.Counter.make "shard.lsa.sent"
let c_lsa_dropped = Tm.Counter.make "shard.lsa.dropped"
let c_setup_dropped = Tm.Counter.make "shard.setup.dropped"
let c_ack_dropped = Tm.Counter.make "shard.ack.dropped"
let c_retransmits = Tm.Counter.make "shard.retransmits"
let c_crankbacks = Tm.Counter.make "shard.crankbacks"
let c_stale_decisions = Tm.Counter.make "shard.decisions.stale"
let c_divergent = Tm.Counter.make "shard.decisions.divergent"

type config = {
  scheme : Routing.scheme;
  backup_count : int;
  parts : int;
  partition_seed : int;
  lsa_interval : float;
  lsa_refresh : float;
  lsa_flood_delay : float;
  hop_delay : float;
  max_retries : int;
  faults : Faults.t option;
  setup_rto : float;
  max_retransmits : int;
  crash_mean_gap : float;
      (* mean workload ops between shard crashes (Faults.crash_schedule);
         0 = no crashes *)
  crash_seed : int;
  view_checkpoint_every : float;
      (* seconds between in-memory LSDB checkpoints; 0 = initial
         checkpoint only *)
}

let default_config =
  {
    scheme = Routing.Dlsr;
    backup_count = 1;
    parts = 4;
    partition_seed = 7;
    lsa_interval = 5.0;
    lsa_refresh = 30.0;
    lsa_flood_delay = 0.050;
    hop_delay = 0.001;
    max_retries = 1;
    faults = None;
    setup_rto = 0.050;
    max_retransmits = 4;
    crash_mean_gap = 0.0;
    crash_seed = 11;
    view_checkpoint_every = 0.0;
  }

type stats = {
  mutable requests : int;
  mutable accepted : int;
  mutable rejected_no_route : int;
  mutable intra_shard : int;
  mutable inter_shard : int;
  mutable setup_failures : int;
  mutable crankbacks : int;
  mutable lost_after_retries : int;
  mutable released : int;
  mutable lsa_originated : int;
  mutable lsa_dropped : int;
  mutable retransmits : int;
  mutable setup_dropped : int;
  mutable ack_dropped : int;
  mutable stale_decisions : int;
  mutable divergent_decisions : int;
  mutable shard_crashes : int;
  mutable view_rollbacks : int;
      (* remote-link LSDB entries that regressed to checkpoint state
         across all crashes — re-converged by later (refresh) LSAs *)
  mutable view_checkpoints : int;
}

type result = {
  stats : stats;
  cut_edges : int;
  acceptance : float;
  ft_overall : float;
  avg_active : float;
  lsa_per_second : float;
  avg_staleness : float;
  decision_age_mean : float;
  convergence_lag_mean : float;
  convergence_lag_max : float;
  divergence_fraction : float;
}

type event =
  | Workload of Scenario.item
  | Setup_arrival of {
      conn : int;
      bw : int;
      attempt : int;
      shard : int;
      pair : Routing.route_pair;
    }
  | Setup_retransmit of {
      conn : int;
      bw : int;
      attempt : int;
      retransmit : int;  (* resends already performed, this copy included *)
      shard : int;
      pair : Routing.route_pair;
    }
  | Setup_abandoned of {
      conn : int;
      bw : int;
      attempt : int;
      shard : int;
      pair : Routing.route_pair;
    }
  | Teardown_arrival of int
  | Lsa_originate of int  (* directed link *)
  | Lsa_deliver of {
      dst_shard : int;
      link : int;
      lsa_seq : int;
      origin : float;
      dirty : float;  (* first-divergence instant; < 0 = no change conveyed *)
      payload : View.snapshot;
    }
  | Lsa_refresh
  | View_checkpoint
  | Sample

(* The admission checks of Net_state.admit, evaluated without committing,
   against the current ground truth (same as Protocol_sim). *)
let admissible state ~bw (pair : Routing.route_pair) =
  let resources = Net_state.resources state in
  let primary_links = Path.links pair.Routing.primary in
  let primary_ok =
    List.for_all
      (fun l -> Drtp.Resources.primary_feasible resources ~link:l ~bw)
      primary_links
  in
  let occurrences l links =
    List.fold_left (fun n x -> if x = l then n + 1 else n) 0 links
  in
  let rec backups_ok earlier = function
    | [] -> true
    | b :: rest ->
        List.for_all
          (fun l ->
            let own =
              occurrences l primary_links
              + List.fold_left (fun n e -> n + occurrences l (Path.links e)) 0 earlier
            in
            Drtp.Resources.available_for_backup resources l >= bw * (1 + own))
          (Path.links b)
        && backups_ok (b :: earlier) rest
  in
  primary_ok && backups_ok [] pair.Routing.backups

let setup_hops (pair : Routing.route_pair) =
  List.fold_left
    (fun acc b -> max acc (Path.hops b))
    (Path.hops pair.Routing.primary)
    pair.Routing.backups

let pair_links (pair : Routing.route_pair) =
  Path.links pair.Routing.primary
  @ List.concat_map Path.links pair.Routing.backups

let pair_signature (pair : Routing.route_pair) =
  Path.links pair.Routing.primary :: List.map Path.links pair.Routing.backups

let run ?(config = default_config) ?partition ~graph ~capacity ~scenario ~warmup
    ~horizon ~sample_every () =
  let part =
    match partition with
    | Some p -> p
    | None -> Partition.create ~seed:config.partition_seed graph ~parts:config.parts
  in
  let parts = Partition.parts part in
  let truth =
    Net_state.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed
  in
  let views = Array.init parts (fun _ -> View.create truth) in
  let engine : event Engine.t = Engine.create () in
  let stats =
    {
      requests = 0;
      accepted = 0;
      rejected_no_route = 0;
      intra_shard = 0;
      inter_shard = 0;
      setup_failures = 0;
      crankbacks = 0;
      lost_after_retries = 0;
      released = 0;
      lsa_originated = 0;
      lsa_dropped = 0;
      retransmits = 0;
      setup_dropped = 0;
      ack_dropped = 0;
      stale_decisions = 0;
      divergent_decisions = 0;
      shard_crashes = 0;
      view_rollbacks = 0;
      view_checkpoints = 0;
    }
  in
  let links = Graph.link_count graph in
  (* LSA sequencing and damping. *)
  let lsa_seq = Array.make links 0 in
  let lsa_next_ok = Array.make links 0.0 in
  let lsa_scheduled = Array.make links false in
  (* Per-shard receiver state: last applied sequence number and its
     origination time (the advertisement's age baseline). *)
  let applied = Array.make_matrix parts links 0 in
  let applied_origin = Array.make_matrix parts links 0.0 in
  (* First instant a link's truth diverged from its last advertisement
     (< 0 = clean) — the convergence-lag clock. *)
  let dirty_since = Array.make links (-1.0) in
  (* In-memory LSDB checkpoints: per-shard copies of the applied-sequence
     rows and of every view entry, captured periodically.  A crashed shard
     loses its LSDB and restarts from the latest checkpoint; the regressed
     applied sequence numbers let newer (refresh) LSAs re-apply, which is
     how the shard re-converges. *)
  let view_entry v l =
    {
      View.s_free = View.free v l;
      s_avail = View.available_for_backup v l;
      s_norm1 = View.norm1 v l;
      s_cv = View.conflict_vector v l;
    }
  in
  let ck_applied = Array.make_matrix parts links 0 in
  let ck_origin = Array.make_matrix parts links 0.0 in
  let ck_snap =
    Array.init parts (fun s -> Array.init links (view_entry views.(s)))
  in
  let ck_version = ref 0 in
  let take_checkpoint () =
    for s = 0 to parts - 1 do
      Array.blit applied.(s) 0 ck_applied.(s) 0 links;
      Array.blit applied_origin.(s) 0 ck_origin.(s) 0 links;
      for l = 0 to links - 1 do
        ck_snap.(s).(l) <- view_entry views.(s) l
      done
    done;
    incr ck_version;
    stats.view_checkpoints <- stats.view_checkpoints + 1
  in
  let crash_points =
    ref
      (if config.crash_mean_gap > 0.0 then
         Faults.crash_schedule ~seed:config.crash_seed
           ~mean_gap:config.crash_mean_gap ~horizon:(Scenario.length scenario) ()
       else [])
  in
  let op_ord = ref 0 in
  let crash_shard now ~ord =
    let s = ord mod parts in
    stats.shard_crashes <- stats.shard_crashes + 1;
    if !J.on then begin
      J.set_now now;
      J.record (J.Crash_injected { at_batch = ord; wal_seq = !ck_version })
    end;
    let rolled = ref 0 in
    for l = 0 to links - 1 do
      if applied.(s).(l) > ck_applied.(s).(l) then incr rolled
    done;
    Array.blit ck_applied.(s) 0 applied.(s) 0 links;
    Array.blit ck_origin.(s) 0 applied_origin.(s) 0 links;
    for l = 0 to links - 1 do
      View.set_snapshot views.(s) l ck_snap.(s).(l)
    done;
    (* A restarting router re-reads its own links from its interfaces:
       own-shard entries come back fresh from the ground truth. *)
    for l = 0 to links - 1 do
      if Partition.owner_of_link part l = s then
        View.refresh_link views.(s) truth l
    done;
    stats.view_rollbacks <- stats.view_rollbacks + !rolled;
    if !J.on then
      J.record
        (J.Recovery_replayed
           {
             checkpoint_seq = !ck_version;
             replayed = !rolled;
             conns = Net_state.active_count truth;
           })
  in
  let maybe_crash now =
    incr op_ord;
    match !crash_points with
    | next :: rest when next = !op_ord ->
        crash_points := rest;
        crash_shard now ~ord:!op_ord
    | _ -> ()
  in
  let rto_backoff =
    Backoff.make ~base:config.setup_rto ~max_attempts:config.max_retransmits ()
  in
  let crank = Backoff.make ~base:0.0 ~max_attempts:config.max_retries () in
  let released_early = Hashtbl.create 16 in
  (* Causal tracing: one [shard-setup] root per in-flight request plus its
     current attempt child; crankbacks chain attempts by cause edges.  One
     [lsa] root per origination, closed when its last scheduled delivery
     lands (per-destination [flight] leaves).  Touched only when the
     journal is on. *)
  let setup_spans : (int, C.span * float * C.span * float) Hashtbl.t =
    Hashtbl.create 16
  in
  let lsa_spans : (int * int, C.span * float * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  (* Omniscient comparator: an always-fresh view routed with exactly the
     same algorithm as the shards' LSDBs, so a divergent decision measures
     staleness and nothing else (and, unlike {!Routing.link_state_route_fn},
     routing it records no journal events). *)
  let view_omni = View.create truth in
  (* Measurement accumulators. *)
  let attempts = ref 0 and successes = ref 0 in
  let staleness = Summary.create () in
  let ages = Summary.create () in
  let conv_lag = Summary.create () in
  let cursor = ref warmup in
  let active_time = ref 0.0 in
  let integrate_to t =
    let t = min t horizon in
    if t > !cursor then begin
      active_time :=
        !active_time
        +. (float_of_int (Net_state.active_count truth) *. (t -. !cursor));
      cursor := t
    end
  in
  let trigger_lsa now l =
    if not lsa_scheduled.(l) then begin
      lsa_scheduled.(l) <- true;
      Engine.schedule engine ~at:(max now lsa_next_ok.(l)) (Lsa_originate l)
    end
  in
  (* A link's ground truth changed: its owner's own view refreshes
     synchronously; other shards must wait for an advertisement. *)
  let touch now l =
    View.refresh_link views.(Partition.owner_of_link part l) truth l;
    if parts > 1 then begin
      View.refresh_link view_omni truth l;
      if dirty_since.(l) < 0.0 then dirty_since.(l) <- now;
      trigger_lsa now l
    end
  in
  let touch_pair now pair = List.iter (touch now) (pair_links pair) in
  let originate now l =
    lsa_seq.(l) <- lsa_seq.(l) + 1;
    let sq = lsa_seq.(l) in
    let payload = View.snapshot truth l in
    let dirty = dirty_since.(l) in
    dirty_since.(l) <- -1.0;
    let owner = Partition.owner_of_link part l in
    stats.lsa_originated <- stats.lsa_originated + 1;
    Tm.Counter.incr c_lsa_sent;
    if !J.on then
      J.record (J.Lsa_originated { shard = owner; link = l; lsa_seq = sq });
    let sp_lsa = if !J.on then C.root ~conn:l ~t0:now "lsa" else C.null in
    let scheduled = ref 0 in
    for d = 0 to parts - 1 do
      if d <> owner then
        match config.faults with
        | Some f when not (Faults.deliver f Faults.Lsa) ->
            stats.lsa_dropped <- stats.lsa_dropped + 1;
            Tm.Counter.incr c_lsa_dropped;
            if !J.on then J.record (J.Message_dropped { cls = "lsa"; id = l })
        | _ ->
            incr scheduled;
            Engine.schedule engine ~at:(now +. config.lsa_flood_delay)
              (Lsa_deliver
                 { dst_shard = d; link = l; lsa_seq = sq; origin = now; dirty; payload })
    done;
    if !J.on then begin
      if !scheduled = 0 then
        (* Every copy was dropped (or the origination had no remote
           audience): the dissemination never leaves the origin. *)
        C.close sp_lsa ~dur:0.0
      else Hashtbl.replace lsa_spans (l, sq) (sp_lsa, now, ref !scheduled)
    end
  in
  let release_now now conn =
    match Net_state.find truth conn with
    | None -> ()
    | Some c ->
        let pair =
          { Routing.primary = c.Net_state.primary; backups = c.Net_state.backups }
        in
        Net_state.release truth ~id:conn;
        stats.released <- stats.released + 1;
        touch_pair now pair
  in
  let commit now ~conn ~bw (pair : Routing.route_pair) =
    ignore
      (Net_state.admit truth ~id:conn ~bw ~primary:pair.Routing.primary
         ~backups:pair.Routing.backups);
    stats.accepted <- stats.accepted + 1;
    if !J.on then begin
      match Hashtbl.find_opt setup_spans conn with
      | Some (sp_root, root_t0, sp_att, att_t0) ->
          C.close sp_att ~dur:(now -. att_t0);
          C.close sp_root ~dur:(now -. root_t0);
          Hashtbl.remove setup_spans conn
      | None -> ()
    end;
    touch_pair now pair;
    if Hashtbl.mem released_early conn then begin
      Hashtbl.remove released_early conn;
      release_now now conn
    end
  in
  let route_from_view shard ~src ~dst ~bw =
    View.route views.(shard) truth ~scheme:config.scheme
      ~backup_count:config.backup_count ~src ~dst ~bw
  in
  let launch_setup now ~conn ~bw ~attempt ?(retransmit = 0) ~shard pair =
    match config.faults with
    | Some f when not (Faults.deliver f Faults.Setup) ->
        stats.setup_dropped <- stats.setup_dropped + 1;
        Tm.Counter.incr c_setup_dropped;
        if !J.on then J.record (J.Message_dropped { cls = "setup"; id = conn });
        let wait = Backoff.delay rto_backoff ~attempt:(retransmit + 1) in
        let wait_leaf phase =
          if !J.on then
            match Hashtbl.find_opt setup_spans conn with
            | Some (_, _, sp_att, _) ->
                C.leaf ~parent:sp_att ~conn ~t0:now ~dur:wait phase
            | None -> ()
        in
        if Backoff.exhausted rto_backoff ~attempt:retransmit then begin
          wait_leaf "timeout-wait";
          Engine.schedule engine ~at:(now +. wait)
            (Setup_abandoned { conn; bw; attempt; shard; pair })
        end
        else begin
          stats.retransmits <- stats.retransmits + 1;
          Tm.Counter.incr c_retransmits;
          if !J.on then
            J.record (J.Retransmit { cls = "setup"; conn; attempt = retransmit + 1 });
          wait_leaf "retransmit-wait";
          Engine.schedule engine ~at:(now +. wait)
            (Setup_retransmit
               { conn; bw; attempt; retransmit = retransmit + 1; shard; pair })
        end
    | _ ->
        Engine.schedule engine
          ~at:(now +. (config.hop_delay *. float_of_int (setup_hops pair)))
          (Setup_arrival { conn; bw; attempt; shard; pair })
  in
  (* Route an admission decision to its commit path: an all-own-links route
     commits synchronously (exact state); anything else is an inter-shard
     handshake decided on possibly-stale advertisements, so record the
     decision's staleness metrics before launching it. *)
  let dispatch now ~conn ~bw ~attempt ~shard (pair : Routing.route_pair) =
    let route_links = pair_links pair in
    let remote =
      List.filter (fun l -> Partition.owner_of_link part l <> shard) route_links
    in
    if remote = [] then begin
      stats.intra_shard <- stats.intra_shard + 1;
      commit now ~conn ~bw pair
    end
    else begin
      stats.stale_decisions <- stats.stale_decisions + 1;
      Tm.Counter.incr c_stale_decisions;
      let age =
        List.fold_left
          (fun acc l -> acc +. (now -. applied_origin.(shard).(l)))
          0.0 remote
        /. float_of_int (List.length remote)
      in
      Summary.add ages age;
      let src = Path.src pair.Routing.primary
      and dst = Path.dst pair.Routing.primary in
      let divergent =
        match
          View.route view_omni truth ~scheme:config.scheme
            ~backup_count:config.backup_count ~src ~dst ~bw
        with
        | Ok opair -> pair_signature pair <> pair_signature opair
        | Error _ -> true
      in
      if divergent then begin
        stats.divergent_decisions <- stats.divergent_decisions + 1;
        Tm.Counter.incr c_divergent
      end;
      if !J.on then begin
        J.record (J.Stale_decision { conn; age; divergent });
        (* The decision instant leaves a marker leaf on the attempt; its
           cost (if the staleness bites) shows up as the crankback chain
           this attempt causes. *)
        match Hashtbl.find_opt setup_spans conn with
        | Some (_, _, sp_att, _) ->
            C.leaf ~parent:sp_att ~conn ~t0:now ~dur:0.0 "stale-decision"
        | None -> ()
      end;
      let shards =
        List.length
          (List.sort_uniq compare
             (shard :: List.map (Partition.owner_of_link part) route_links))
      in
      stats.inter_shard <- stats.inter_shard + 1;
      if !J.on then
        J.record (J.Shard_setup { conn; shards; attempt = attempt + 1 });
      launch_setup now ~conn ~bw ~attempt ~shard pair
    end
  in
  (* Stale-view rejection: the reject notice piggybacks fresh snapshots of
     the failed route's remote links (PNNI-style crankback), which the
     source applies seq-checked before re-routing. *)
  let crankback now ~conn ~bw ~attempt ~shard ~reason (pair : Routing.route_pair)
      =
    (* Close the failing attempt; a retry's fresh attempt span is
       cause-chained to it so crankback storms read as causal chains. *)
    let entry = if !J.on then Hashtbl.find_opt setup_spans conn else None in
    (match entry with
    | Some (_, _, sp_att, att_t0) -> C.close sp_att ~dur:(now -. att_t0)
    | None -> ());
    let lost () =
      stats.lost_after_retries <- stats.lost_after_retries + 1;
      match entry with
      | Some (sp_root, root_t0, _, _) ->
          C.close sp_root ~dur:(now -. root_t0);
          Hashtbl.remove setup_spans conn
      | None -> ()
    in
    if Backoff.exhausted crank ~attempt then lost ()
    else begin
      stats.crankbacks <- stats.crankbacks + 1;
      Tm.Counter.incr c_crankbacks;
      if !J.on then
        J.record (J.Shard_crankback { conn; attempt = attempt + 1; reason });
      List.iter
        (fun l ->
          if Partition.owner_of_link part l <> shard then begin
            applied.(shard).(l) <- lsa_seq.(l);
            applied_origin.(shard).(l) <- now;
            View.refresh_link views.(shard) truth l
          end)
        (pair_links pair);
      match
        route_from_view shard ~src:(Path.src pair.Routing.primary)
          ~dst:(Path.dst pair.Routing.primary) ~bw
      with
      | Error _ -> lost ()
      | Ok pair' ->
          (match entry with
          | Some (sp_root, root_t0, sp_att, _) ->
              let sp' =
                C.child ~cause:sp_att ~conn ~t0:now ~parent:sp_root "attempt"
              in
              Hashtbl.replace setup_spans conn (sp_root, root_t0, sp', now)
          | None -> ());
          dispatch now ~conn ~bw ~attempt:(attempt + 1) ~shard pair'
    end
  in
  (* The destination's ACK back to the source, drawn analytically with the
     same retransmission budget (a duplicate setup re-elicits it). *)
  let ack_delivered ~conn =
    match config.faults with
    | None -> true
    | Some f ->
        let rec go k =
          if Faults.deliver f Faults.Ack then true
          else begin
            stats.ack_dropped <- stats.ack_dropped + 1;
            Tm.Counter.incr c_ack_dropped;
            if !J.on then J.record (J.Message_dropped { cls = "ack"; id = conn });
            if Backoff.exhausted rto_backoff ~attempt:k then false
            else begin
              stats.retransmits <- stats.retransmits + 1;
              Tm.Counter.incr c_retransmits;
              if !J.on then
                J.record (J.Retransmit { cls = "ack"; conn; attempt = k + 1 });
              go (k + 1)
            end
          end
        in
        go 0
  in
  let handler engine event =
    let now = Engine.now engine in
    integrate_to now;
    match event with
    | Workload { event = Scenario.Request { conn; src; dst; bw; duration = _ }; _ }
      -> (
        maybe_crash now;
        stats.requests <- stats.requests + 1;
        let shard = Partition.region_of_node part src in
        match route_from_view shard ~src ~dst ~bw with
        | Error _ ->
            stats.rejected_no_route <- stats.rejected_no_route + 1;
            if !J.on then begin
              (* Rejected before any packet left: a zero-length trace. *)
              let sp = C.root ~conn ~t0:now "shard-setup" in
              C.close sp ~dur:0.0
            end
        | Ok pair ->
            if !J.on then begin
              let sp_root = C.root ~conn ~t0:now "shard-setup" in
              let sp_att = C.child ~conn ~t0:now ~parent:sp_root "attempt" in
              Hashtbl.replace setup_spans conn (sp_root, now, sp_att, now)
            end;
            dispatch now ~conn ~bw ~attempt:0 ~shard pair)
    | Workload { event = Scenario.Release { conn }; _ } -> (
        maybe_crash now;
        match Net_state.find truth conn with
        | None ->
            (* Setup still in flight (or the request was rejected): remember
               so an eventual admission is immediately torn down. *)
            Hashtbl.replace released_early conn ()
        | Some c ->
            let pair =
              {
                Routing.primary = c.Net_state.primary;
                backups = c.Net_state.backups;
              }
            in
            let shard = Partition.region_of_node part (Path.src c.Net_state.primary) in
            if
              List.for_all
                (fun l -> Partition.owner_of_link part l = shard)
                (pair_links pair)
            then release_now now conn
            else
              Engine.schedule engine
                ~at:(now +. (config.hop_delay *. float_of_int (setup_hops pair)))
                (Teardown_arrival conn))
    | Teardown_arrival conn -> release_now now conn
    | Setup_arrival { conn; bw; attempt; shard; pair } ->
        if admissible truth ~bw pair then begin
          if ack_delivered ~conn then commit now ~conn ~bw pair
          else begin
            (* Every ACK copy was lost: the destination's reservation times
               out and the source, none the wiser, cranks back. *)
            stats.setup_failures <- stats.setup_failures + 1;
            crankback now ~conn ~bw ~attempt ~shard ~reason:"ack-lost" pair
          end
        end
        else begin
          stats.setup_failures <- stats.setup_failures + 1;
          crankback now ~conn ~bw ~attempt ~shard ~reason:"stale-reject" pair
        end
    | Setup_retransmit { conn; bw; attempt; retransmit; shard; pair } ->
        launch_setup now ~conn ~bw ~attempt ~retransmit ~shard pair
    | Setup_abandoned { conn; bw; attempt; shard; pair } ->
        stats.setup_failures <- stats.setup_failures + 1;
        crankback now ~conn ~bw ~attempt ~shard ~reason:"abandoned" pair
    | Lsa_originate l ->
        lsa_scheduled.(l) <- false;
        lsa_next_ok.(l) <- now +. config.lsa_interval;
        originate now l
    | Lsa_refresh ->
        for l = 0 to links - 1 do
          originate now l
        done;
        if now +. config.lsa_refresh <= horizon then
          Engine.schedule engine ~at:(now +. config.lsa_refresh) Lsa_refresh
    | View_checkpoint ->
        take_checkpoint ();
        if
          config.view_checkpoint_every > 0.0
          && now +. config.view_checkpoint_every <= horizon
        then
          Engine.schedule engine
            ~at:(now +. config.view_checkpoint_every)
            View_checkpoint
    | Lsa_deliver { dst_shard; link; lsa_seq = sq; origin; dirty; payload } ->
        if !J.on then begin
          match Hashtbl.find_opt lsa_spans (link, sq) with
          | Some (sp, t0, remaining) ->
              C.leaf ~conn:link ~t0 ~dur:(now -. t0) ~parent:sp "flight";
              decr remaining;
              if !remaining = 0 then begin
                C.close sp ~dur:(now -. t0);
                Hashtbl.remove lsa_spans (link, sq)
              end
          | None -> ()
        end;
        if sq > applied.(dst_shard).(link) then begin
          applied.(dst_shard).(link) <- sq;
          applied_origin.(dst_shard).(link) <- origin;
          View.set_snapshot views.(dst_shard) link payload;
          let lag = if dirty >= 0.0 then now -. dirty else 0.0 in
          if dirty >= 0.0 then Summary.add conv_lag lag;
          if !J.on then
            J.record (J.Lsa_delivered { shard = dst_shard; link; lsa_seq = sq; lag })
        end
    | Sample ->
        let r = Drtp.Failure_eval.evaluate truth in
        attempts := !attempts + r.Drtp.Failure_eval.attempts;
        successes := !successes + r.Drtp.Failure_eval.successes;
        let stale = ref 0 in
        for i = 0 to parts - 1 do
          stale := !stale + View.staleness_count views.(i) truth
        done;
        Summary.add staleness (float_of_int !stale /. float_of_int parts)
  in
  Scenario.iter scenario (fun item ->
      if item.Scenario.time <= horizon then
        Engine.schedule engine ~at:item.Scenario.time (Workload item));
  let rec schedule_samples t =
    if t <= horizon then begin
      Engine.schedule engine ~at:t Sample;
      schedule_samples (t +. sample_every)
    end
  in
  schedule_samples warmup;
  if parts > 1 && config.lsa_refresh > 0.0 && config.lsa_refresh <= horizon then
    Engine.schedule engine ~at:config.lsa_refresh Lsa_refresh;
  if
    config.view_checkpoint_every > 0.0
    && config.view_checkpoint_every <= horizon
  then Engine.schedule engine ~at:config.view_checkpoint_every View_checkpoint;
  Engine.run engine ~handler;
  integrate_to horizon;
  let window = horizon -. warmup in
  {
    stats;
    cut_edges = Partition.cut_edges part;
    acceptance =
      (if stats.requests = 0 then 1.0
       else float_of_int stats.accepted /. float_of_int stats.requests);
    ft_overall =
      (if !attempts = 0 then 1.0
       else float_of_int !successes /. float_of_int !attempts);
    avg_active = (if window > 0.0 then !active_time /. window else 0.0);
    lsa_per_second =
      (if horizon > 0.0 then float_of_int stats.lsa_originated /. horizon
       else 0.0);
    avg_staleness =
      (if Summary.count staleness = 0 then 0.0 else Summary.mean staleness);
    decision_age_mean = (if Summary.count ages = 0 then 0.0 else Summary.mean ages);
    convergence_lag_mean =
      (if Summary.count conv_lag = 0 then 0.0 else Summary.mean conv_lag);
    convergence_lag_max =
      (if Summary.count conv_lag = 0 then 0.0 else Summary.max_value conv_lag);
    divergence_fraction =
      (if stats.stale_decisions = 0 then 0.0
       else
         float_of_int stats.divergent_decisions
         /. float_of_int stats.stale_decisions);
  }

(** Seeded k-way edge-cut partition of a topology into control-plane
    regions.

    Each shard of {!Shard_sim} owns the links of one region; the partition
    decides which setup handshakes stay intra-shard (synchronous, exact
    state) and which must cross a region boundary (asynchronous, routed on
    advertised state).  The partitioner therefore aims for balanced
    regions with few cut edges: seeds are spread by farthest-point hop
    distance ({!Dr_topo.Shortest_path.bfs_hops}), regions grow by balanced
    multi-source BFS (always extending the currently-smallest region), and
    one deterministic boundary-refinement pass moves each node to its
    neighbour-majority region when that strictly helps.

    Every undirected edge is owned by exactly one region — the region of
    its first endpoint in creation order — so both directed links of an
    edge share an owner and the owned link sets partition the link ids.
    Deterministic in [(seed, graph, parts)]. *)

type t

val create : ?seed:int -> Dr_topo.Graph.t -> parts:int -> t
(** Partition into [parts] regions.  Raises [Invalid_argument] unless
    [1 <= parts <= node_count].  [seed] defaults to 0. *)

val of_regions : Dr_topo.Graph.t -> int array -> t
(** Adopt an explicit node→region assignment (length [node_count], region
    ids dense from 0) — used by tests that need a hand-built layout.
    Raises [Invalid_argument] on a bad length, a negative id, or a region
    id with no member node. *)

val graph : t -> Dr_topo.Graph.t
val parts : t -> int

val region_of_node : t -> int -> int

val owner_of_edge : t -> int -> int
(** The region owning an undirected edge: the region of the edge's first
    endpoint. *)

val owner_of_link : t -> int -> int
(** [owner_of_edge] of the link's edge — both directions of an edge have
    the same owner. *)

val nodes_of : t -> int -> int list
(** Member nodes of one region, ascending. *)

val cut_edges : t -> int
(** Edges whose endpoints lie in different regions — the inter-shard
    surface the LSA protocol has to keep coherent. *)

val pp : Format.formatter -> t -> unit

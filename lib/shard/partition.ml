module Graph = Dr_topo.Graph
module Sp = Dr_topo.Shortest_path
module Sm = Dr_rng.Splitmix64

type t = {
  graph : Graph.t;
  parts : int;
  region : int array;  (* node -> region *)
  owner : int array;  (* edge -> region of first endpoint *)
  cut : int;
}

let graph t = t.graph
let parts t = t.parts
let region_of_node t n = t.region.(n)
let owner_of_edge t e = t.owner.(e)
let owner_of_link t l = t.owner.(Graph.edge_of_link l)
let cut_edges t = t.cut

let nodes_of t r =
  List.filter
    (fun n -> t.region.(n) = r)
    (List.init (Graph.node_count t.graph) Fun.id)

let finish graph parts region =
  let owner =
    Array.init (Graph.edge_count graph) (fun e ->
        region.(fst (Graph.edge_endpoints graph e)))
  in
  let cut = ref 0 in
  Graph.iter_edges graph (fun e ->
      let u, v = Graph.edge_endpoints graph e in
      if region.(u) <> region.(v) then incr cut);
  { graph; parts; region; owner; cut = !cut }

let of_regions graph region =
  let n = Graph.node_count graph in
  if Array.length region <> n then
    invalid_arg "Partition.of_regions: assignment length <> node_count";
  Array.iter
    (fun r -> if r < 0 then invalid_arg "Partition.of_regions: negative region")
    region;
  let parts = 1 + Array.fold_left max 0 region in
  let seen = Array.make parts false in
  Array.iter (fun r -> seen.(r) <- true) region;
  Array.iteri
    (fun r present ->
      if not present then
        invalid_arg
          (Printf.sprintf "Partition.of_regions: region %d has no nodes" r))
    seen;
  finish graph parts (Array.copy region)

(* Farthest-point seed spreading: the first seed is a random node, each
   subsequent seed maximises its minimum hop distance to the seeds chosen
   so far (ties -> lowest node id). *)
let spread_seeds rng graph parts =
  let n = Graph.node_count graph in
  let first = Sm.int rng n in
  let min_dist = Array.make n max_int in
  let add s =
    let hops = Sp.bfs_hops graph ~src:s in
    for v = 0 to n - 1 do
      if hops.(v) < min_dist.(v) then min_dist.(v) <- hops.(v)
    done
  in
  add first;
  let seeds = ref [ first ] in
  for _ = 2 to parts do
    let best = ref (-1) and best_d = ref (-1) in
    for v = 0 to n - 1 do
      if min_dist.(v) > !best_d then begin
        best := v;
        best_d := min_dist.(v)
      end
    done;
    seeds := !best :: !seeds;
    add !best
  done;
  List.rev !seeds

let create ?(seed = 0) graph ~parts =
  let n = Graph.node_count graph in
  if parts < 1 || parts > n then
    invalid_arg
      (Printf.sprintf "Partition.create: parts %d outside [1, %d]" parts n);
  let rng = Sm.create seed in
  let seeds = spread_seeds rng graph parts in
  let region = Array.make n (-1) in
  let sizes = Array.make parts 0 in
  let queues = Array.init parts (fun _ -> Queue.create ()) in
  List.iteri
    (fun r s ->
      region.(s) <- r;
      sizes.(r) <- 1;
      Queue.push s queues.(r))
    seeds;
  let remaining = ref (n - parts) in
  (* Balanced multi-source BFS: always grow the smallest region that still
     has a frontier (ties -> lowest region id). *)
  let pick () =
    let best = ref (-1) in
    for r = parts - 1 downto 0 do
      if
        (not (Queue.is_empty queues.(r)))
        && (!best < 0 || sizes.(r) <= sizes.(!best))
      then best := r
    done;
    !best
  in
  let rec pop_unassigned q =
    match Queue.take_opt q with
    | None -> None
    | Some v -> if region.(v) < 0 then Some v else pop_unassigned q
  in
  let assign r v =
    region.(v) <- r;
    sizes.(r) <- sizes.(r) + 1;
    decr remaining;
    Array.iter
      (fun l ->
        let w = Graph.link_dst graph l in
        if region.(w) < 0 then Queue.push w queues.(r))
      (Graph.out_links graph v)
  in
  let rec grow () =
    if !remaining > 0 then
      match pick () with
      | -1 ->
          (* Disconnected leftovers: sweep them into the smallest region. *)
          for v = 0 to n - 1 do
            if region.(v) < 0 then begin
              let best = ref 0 in
              for r = 1 to parts - 1 do
                if sizes.(r) < sizes.(!best) then best := r
              done;
              region.(v) <- !best;
              sizes.(!best) <- sizes.(!best) + 1;
              decr remaining
            end
          done
      | r -> (
          match pop_unassigned queues.(r) with
          | None -> grow ()
          | Some v ->
              assign r v;
              grow ())
  in
  grow ();
  (* One boundary-refinement pass: move a node to its neighbour-majority
     region when strictly better, never emptying a region. *)
  let counts = Array.make parts 0 in
  for v = 0 to n - 1 do
    Array.fill counts 0 parts 0;
    Array.iter
      (fun w -> counts.(region.(w)) <- counts.(region.(w)) + 1)
      (Graph.neighbors graph v);
    let cur = region.(v) in
    let best = ref cur in
    for r = 0 to parts - 1 do
      if counts.(r) > counts.(!best) then best := r
    done;
    if !best <> cur && counts.(!best) > counts.(cur) && sizes.(cur) > 1 then begin
      region.(v) <- !best;
      sizes.(cur) <- sizes.(cur) - 1;
      sizes.(!best) <- sizes.(!best) + 1
    end
  done;
  finish graph parts region

let pp ppf t =
  Format.fprintf ppf "@[<v>partition: %d regions, %d cut edges@," t.parts t.cut;
  for r = 0 to t.parts - 1 do
    Format.fprintf ppf "region %d: %d nodes@," r (List.length (nodes_of t r))
  done;
  Format.fprintf ppf "@]"

(** Sharded control plane with asynchronous link-state dissemination.

    The paper's distributed schemes assume every router decides on a
    possibly-stale local link-state database; the centralised
    {!Drtp.Manager} hides that entirely.  This simulator splits the
    control plane into region shards over a {!Partition}: each shard owns
    the ground truth of its region's links and keeps an
    {!Dr_proto.Advertised_view} LSDB whose {e own-region} entries are
    refreshed synchronously on every commit while {e remote} entries only
    change when a sequence-numbered link-state advertisement arrives —
    periodically refreshed and trigger-flooded (OSPF-style MinLSInterval
    damping) over lossy {!Dr_faults.Faults} channels.

    Admissions are decided by the source node's shard on its LSDB.  A
    route staying inside the shard commits synchronously (exact state); a
    route touching links owned by other shards launches an asynchronous
    setup handshake — setup-loss draws with {!Dr_faults.Backoff}
    retransmission, admission re-checked against ground truth on arrival,
    and {e crankback} on stale-view rejection: the reject notice carries
    fresh snapshots of the failed route's remote links (PNNI-style), the
    source applies them seq-checked to its LSDB and re-routes.

    {b Metrics.}  Every inter-shard decision records the mean age of the
    advertisements it routed on and whether the chosen route differs from
    the omniscient (ground-truth) route; every applied advertisement that
    conveyed a change records its convergence lag (delivery time minus the
    instant the link first diverged from its previous advertisement).

    {b Single-shard anchor.}  With [parts = 1] every link is owned by the
    deciding shard: all commits are synchronous, no LSA is ever sent (so
    the fault plan is never consulted), and the run is bit-identical to
    the centralised manager — the correctness gate in CI.

    {b Crash-restart.}  With [crash_mean_gap > 0], a seeded
    {!Dr_faults.Faults.crash_schedule} kills one shard's control plane at
    workload-op boundaries: the shard's LSDB (remote-entry snapshots and
    applied LSA sequence rows) reverts to the latest in-memory checkpoint
    (period [view_checkpoint_every]), its own-region entries are re-read
    from the ground truth (a restarting router re-reads its interfaces),
    and the regressed sequence numbers let subsequent triggered/refresh
    LSAs re-converge the view.  Ground truth (admitted connections) is
    unaffected — only the crashed shard's {e knowledge} is lost, which
    shows up as extra staleness, crankbacks and divergent decisions. *)

type config = {
  scheme : Drtp.Routing.scheme;
  backup_count : int;
  parts : int;  (** shard count (1 = centralised anchor) *)
  partition_seed : int;
  lsa_interval : float;
      (** MinLSInterval damping for triggered advertisements (seconds);
          0 floods every change immediately *)
  lsa_refresh : float;
      (** periodic full re-advertisement period; 0 disables (loss repair
          then relies on triggered traffic only) *)
  lsa_flood_delay : float;  (** origination-to-delivery latency *)
  hop_delay : float;  (** per-hop setup/teardown latency *)
  max_retries : int;  (** crankback budget per connection *)
  faults : Dr_faults.Faults.t option;
      (** loss plan for [Lsa]/[Setup]/[Ack] draws; [None] = lossless *)
  setup_rto : float;
  max_retransmits : int;
  crash_mean_gap : float;
      (** mean workload ops between shard crashes
          ({!Dr_faults.Faults.crash_schedule}); 0 = no crashes *)
  crash_seed : int;
  view_checkpoint_every : float;
      (** seconds between in-memory LSDB checkpoints; 0 = the implicit
          initial checkpoint only *)
}

val default_config : config

type stats = {
  mutable requests : int;
  mutable accepted : int;
  mutable rejected_no_route : int;
  mutable intra_shard : int;  (** admissions committed synchronously *)
  mutable inter_shard : int;  (** setup handshakes launched *)
  mutable setup_failures : int;
      (** arrivals rejected against ground truth (stale view) or lost *)
  mutable crankbacks : int;
  mutable lost_after_retries : int;
  mutable released : int;
  mutable lsa_originated : int;
  mutable lsa_dropped : int;
  mutable retransmits : int;
  mutable setup_dropped : int;
  mutable ack_dropped : int;
  mutable stale_decisions : int;  (** inter-shard routing decisions *)
  mutable divergent_decisions : int;
      (** decisions whose route differs from the omniscient route *)
  mutable shard_crashes : int;  (** crash-restarts injected *)
  mutable view_rollbacks : int;
      (** LSDB entries that regressed to checkpoint state across all
          crashes (re-converged by later LSAs) *)
  mutable view_checkpoints : int;  (** periodic LSDB checkpoints taken *)
}

type result = {
  stats : stats;
  cut_edges : int;
  acceptance : float;
  ft_overall : float;
  avg_active : float;
  lsa_per_second : float;
  avg_staleness : float;
      (** mean over samples of the per-shard stale-entry count *)
  decision_age_mean : float;
      (** mean advertisement age (s) at inter-shard decisions *)
  convergence_lag_mean : float;
  convergence_lag_max : float;
  divergence_fraction : float;
      (** divergent / inter-shard decisions; 0 when there were none *)
}

val run :
  ?config:config ->
  ?partition:Partition.t ->
  graph:Dr_topo.Graph.t ->
  capacity:int ->
  scenario:Dr_sim.Scenario.t ->
  warmup:float ->
  horizon:float ->
  sample_every:float ->
  unit ->
  result
(** Replay a scenario through the sharded control plane.  [partition]
    overrides the seeded partitioner (tests with hand-built layouts);
    it must be over [graph].  Deterministic in all arguments. *)

type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length q = q.size
let is_empty q = q.size = 0

let entry_lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow q =
  let cap = Array.length q.heap in
  let new_cap = if cap = 0 then 16 else 2 * cap in
  (* The dummy entry is never read below q.size. *)
  let dummy = q.heap.(0) in
  let bigger = Array.make new_cap dummy in
  Array.blit q.heap 0 bigger 0 q.size;
  q.heap <- bigger

let sift_up q i0 =
  let e = q.heap.(i0) in
  let i = ref i0 in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_lt e q.heap.(parent) then begin
      q.heap.(!i) <- q.heap.(parent);
      i := parent
    end
    else continue := false
  done;
  q.heap.(!i) <- e

let sift_down q i0 =
  let e = q.heap.(i0) in
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let left = (2 * !i) + 1 in
    if left >= q.size then continue := false
    else begin
      let right = left + 1 in
      let child =
        if right < q.size && entry_lt q.heap.(right) q.heap.(left) then right
        else left
      in
      if entry_lt q.heap.(child) e then begin
        q.heap.(!i) <- q.heap.(child);
        i := child
      end
      else continue := false
    end
  done;
  q.heap.(!i) <- e

let add q ~key value =
  let e = { key; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 && Array.length q.heap = 0 then q.heap <- Array.make 16 e;
  if q.size = Array.length q.heap then grow q;
  q.heap.(q.size) <- e;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek q =
  if q.size = 0 then None
  else
    let e = q.heap.(0) in
    Some (e.key, e.value)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.key, top.value)
  end

let clear q =
  q.size <- 0;
  q.heap <- [||]

let to_sorted_list q =
  let copy =
    {
      heap = Array.sub q.heap 0 (max q.size (min 1 (Array.length q.heap)));
      size = q.size;
      next_seq = q.next_seq;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some kv -> drain (kv :: acc)
  in
  drain []

type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a entry;
}

(* The dummy entry fills every slot at or above [size] so vacated slots
   never pin a popped payload in memory.  Its [value] is an unboxed
   placeholder that is never read: every access goes through indices below
   [size], which only ever hold real entries. *)
let create () =
  let dummy = { key = nan; seq = min_int; value = Obj.magic 0 } in
  { heap = [||]; size = 0; next_seq = 0; dummy }

let length q = q.size
let is_empty q = q.size = 0

let entry_lt a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow q =
  let cap = Array.length q.heap in
  let new_cap = if cap = 0 then 16 else 2 * cap in
  let bigger = Array.make new_cap q.dummy in
  Array.blit q.heap 0 bigger 0 q.size;
  q.heap <- bigger

let sift_up q i0 =
  let e = q.heap.(i0) in
  let i = ref i0 in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_lt e q.heap.(parent) then begin
      q.heap.(!i) <- q.heap.(parent);
      i := parent
    end
    else continue := false
  done;
  q.heap.(!i) <- e

let sift_down q i0 =
  let e = q.heap.(i0) in
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let left = (2 * !i) + 1 in
    if left >= q.size then continue := false
    else begin
      let right = left + 1 in
      let child =
        if right < q.size && entry_lt q.heap.(right) q.heap.(left) then right
        else left
      in
      if entry_lt q.heap.(child) e then begin
        q.heap.(!i) <- q.heap.(child);
        i := child
      end
      else continue := false
    end
  done;
  q.heap.(!i) <- e

let add q ~key value =
  let e = { key; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.heap then grow q;
  q.heap.(q.size) <- e;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek q =
  if q.size = 0 then None
  else
    let e = q.heap.(0) in
    Some (e.key, e.value)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      (* Blank the vacated tail slot: leaving the moved entry there would
         keep the event payload reachable for the queue's lifetime. *)
      q.heap.(q.size) <- q.dummy;
      sift_down q 0
    end
    else q.heap.(0) <- q.dummy;
    Some (top.key, top.value)
  end

(* Dropping the backing array outright both releases every payload and
   resets the capacity, so a queue that once ballooned does not hold a
   large array forever. *)
let clear q =
  q.size <- 0;
  q.heap <- [||]

(* Empty the queue but keep the backing array: the workspace reuse pattern
   (one queue per domain, one search per call) would otherwise re-grow the
   heap from scratch on every search.  Occupied slots are blanked so no
   payload stays reachable. *)
let reset q =
  Array.fill q.heap 0 q.size q.dummy;
  q.size <- 0

let to_sorted_list q =
  let copy =
    {
      heap = Array.sub q.heap 0 q.size;
      size = q.size;
      next_seq = q.next_seq;
      dummy = q.dummy;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some kv -> drain (kv :: acc)
  in
  drain []

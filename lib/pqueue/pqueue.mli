(** Array-based binary min-heap with stable tie-breaking.

    Elements are ordered by a float key; equal keys pop in insertion order
    (a monotone sequence number breaks ties).  Determinism under equal keys
    matters here: both the discrete-event engine and the routing algorithms
    must behave identically across runs for scenario replay to be exact. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> key:float -> 'a -> unit
(** Insert an element with the given priority key. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key element, or [None] when empty. *)

val peek : 'a t -> (float * 'a) option
(** Return the minimum-key element without removing it. *)

val clear : 'a t -> unit
(** Empty the queue and drop the backing array (capacity resets to 0). *)

val reset : 'a t -> unit
(** Empty the queue but keep the backing array's capacity, blanking the
    occupied slots so no payload stays reachable.  The choice between
    {!clear} and [reset] is a space/time trade: [reset] suits a queue that
    is reused at a steady size (e.g. a per-domain search workspace). *)

val to_sorted_list : 'a t -> (float * 'a) list
(** Drain a copy of the heap in pop order (the heap itself is unchanged). *)

(** The advertised link-state database — what routers actually route on.

    The centralised simulator lets every routing decision read the ground
    truth; a real deployment of the paper's link-state schemes routes on
    the {e last advertisement} of each link, which lags reality by the
    flooding delay and, more importantly, by the advertisement damping
    interval (an OSPF-style MinLSInterval; §3 notes that "the extended
    link-state packet … introduces additional routing traffic", which is
    exactly what damping trades against freshness).

    This module is that database: per-link snapshots of the quantities the
    paper's schemes distribute — free bandwidth, available-for-backup
    bandwidth, [‖APLV‖₁] for P-LSR and the Conflict Vector for D-LSR —
    refreshed only when {!refresh_link} is called (by the protocol
    simulator when an LSA is delivered), plus route computations that read
    the view instead of the ground truth. *)

type t

val create : Drtp.Net_state.t -> t
(** A view seeded from the current ground truth (all entries fresh). *)

val refresh_link : t -> Drtp.Net_state.t -> int -> unit
(** Deliver an advertisement for one directed link: snapshot its free and
    available bandwidth, [‖APLV‖₁] and Conflict Vector from the ground
    truth. *)

val refresh_all : t -> Drtp.Net_state.t -> unit

(** {1 Snapshot payloads}

    A link-state advertisement carries the advertised quantities as they
    stood at {e origination} time; {!Dr_shard.Shard_sim} captures a
    {!snapshot} when an LSA is built and applies it with {!set_snapshot}
    when the (possibly delayed, possibly lost-and-retried) advertisement
    is finally delivered — so a receiver's view reflects the sender's
    past, not the shared present. *)

type snapshot = {
  s_free : int;
  s_avail : int;
  s_norm1 : int;
  s_cv : Drtp.Conflict_vector.t;
}

val snapshot : Drtp.Net_state.t -> int -> snapshot
(** Capture one link's advertised quantities from the ground truth now. *)

val set_snapshot : t -> int -> snapshot -> unit
(** Apply a previously captured payload to the view's entry for the link. *)

val free : t -> int -> int
(** Advertised free bandwidth of a link. *)

val available_for_backup : t -> int -> int

val norm1 : t -> int -> int
(** Advertised [‖APLV‖₁]. *)

val conflict_vector : t -> int -> Drtp.Conflict_vector.t

val staleness_count : t -> Drtp.Net_state.t -> int
(** Links whose advertised free bandwidth currently disagrees with the
    ground truth (diagnostics). *)

(** {1 Routing on the advertised view}

    Same algorithms as {!Drtp.Routing}, with every bandwidth and conflict
    read taken from the view.  Failed edges are excluded from routing (the
    adjacency of a dead link is learned immediately by its neighbours). *)

val find_primary :
  t -> Drtp.Net_state.t -> src:int -> dst:int -> bw:int -> Dr_topo.Path.t option

val find_backups :
  t ->
  Drtp.Net_state.t ->
  scheme:Drtp.Routing.scheme ->
  primary:Dr_topo.Path.t ->
  bw:int ->
  count:int ->
  Dr_topo.Path.t list

val route :
  t ->
  Drtp.Net_state.t ->
  scheme:Drtp.Routing.scheme ->
  backup_count:int ->
  src:int ->
  dst:int ->
  bw:int ->
  (Drtp.Routing.route_pair, Drtp.Routing.reject_reason) result

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing

type t = {
  free : int array;
  avail : int array;
  norm1 : int array;
  cv : Drtp.Conflict_vector.t array;
}

let snapshot_link state l =
  let resources = Net_state.resources state in
  ( Drtp.Resources.free resources l,
    Drtp.Resources.available_for_backup resources l,
    Drtp.Aplv.norm1 (Net_state.aplv state l),
    Net_state.conflict_vector state l )

let refresh_link t state l =
  let free, avail, norm1, cv = snapshot_link state l in
  t.free.(l) <- free;
  t.avail.(l) <- avail;
  t.norm1.(l) <- norm1;
  t.cv.(l) <- cv

type snapshot = {
  s_free : int;
  s_avail : int;
  s_norm1 : int;
  s_cv : Drtp.Conflict_vector.t;
}

let snapshot state l =
  let s_free, s_avail, s_norm1, s_cv = snapshot_link state l in
  { s_free; s_avail; s_norm1; s_cv }

let set_snapshot t l s =
  t.free.(l) <- s.s_free;
  t.avail.(l) <- s.s_avail;
  t.norm1.(l) <- s.s_norm1;
  t.cv.(l) <- s.s_cv

let create state =
  let links = Graph.link_count (Net_state.graph state) in
  let t =
    {
      free = Array.make links 0;
      avail = Array.make links 0;
      norm1 = Array.make links 0;
      cv =
        Array.init links (fun l -> Net_state.conflict_vector state l);
    }
  in
  for l = 0 to links - 1 do
    refresh_link t state l
  done;
  t

let refresh_all t state =
  for l = 0 to Array.length t.free - 1 do
    refresh_link t state l
  done

let free t l = t.free.(l)
let available_for_backup t l = t.avail.(l)
let norm1 t l = t.norm1.(l)
let conflict_vector t l = t.cv.(l)

let staleness_count t state =
  let resources = Net_state.resources state in
  let stale = ref 0 in
  for l = 0 to Array.length t.free - 1 do
    if t.free.(l) <> Drtp.Resources.free resources l then incr stale
  done;
  !stale

let link_alive state l =
  not (Net_state.edge_failed state ~edge:(Graph.edge_of_link l))

let find_primary t state ~src ~dst ~bw =
  let usable l = link_alive state l && t.free.(l) >= bw in
  Dr_topo.Shortest_path.min_hop_path (Net_state.graph state) ~usable ~src ~dst ()

(* Mirror of Drtp.Routing.backup_link_cost_general, reading the view. *)
let backup_cost t state ~scheme ~primary ~earlier ~bw =
  let primary_edges = Path.edge_set primary in
  let primary_edge_list = Path.Link_set.elements primary_edges in
  let primary_links = Path.lset primary in
  (* Exact per-link share counts over the earlier backups, mirroring
     {!Drtp.Routing}: multiplicity matters when two earlier members share
     a link. *)
  let earlier_share_count =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun b ->
        List.iter
          (fun l ->
            Hashtbl.replace tbl l
              (1 + Option.value (Hashtbl.find_opt tbl l) ~default:0))
          (Path.links b))
      earlier;
    tbl
  in
  let earlier_edges =
    List.fold_left
      (fun acc b -> Path.Link_set.union acc (Path.edge_set b))
      Path.Link_set.empty earlier
  in
  fun l ->
    let own_shares =
      (if Path.Link_set.mem l primary_links then 1 else 0)
      + Option.value (Hashtbl.find_opt earlier_share_count l) ~default:0
    in
    let required = bw * (1 + own_shares) in
    if not (link_alive state l) then infinity
    else if t.avail.(l) < required then infinity
    else
      let q =
        let e = Graph.edge_of_link l in
        (if Path.Link_set.mem e primary_edges then Routing.q_constant else 0.0)
        +.
        if Path.Link_set.mem e earlier_edges then Routing.q_constant else 0.0
      in
      match scheme with
      | Routing.Spf -> q +. 1.0
      | Routing.Plsr -> q +. float_of_int t.norm1.(l) +. Routing.epsilon
      | Routing.Dlsr ->
          q
          +. float_of_int
               (Drtp.Conflict_vector.conflict_count_with t.cv.(l)
                  ~edge_lset:primary_edge_list)
          +. Routing.epsilon

let find_backups t state ~scheme ~primary ~bw ~count =
  let graph = Net_state.graph state in
  let rec collect earlier fresh k =
    if k = 0 then List.rev fresh
    else
      let cost = backup_cost t state ~scheme ~primary ~earlier ~bw in
      match
        Dr_topo.Shortest_path.dijkstra_path graph ~cost ~src:(Path.src primary)
          ~dst:(Path.dst primary)
      with
      | None -> List.rev fresh
      | Some (_, b) ->
          if
            Path.links b = Path.links primary
            || List.exists (fun b' -> Path.links b' = Path.links b) earlier
          then List.rev fresh
          else collect (b :: earlier) (b :: fresh) (k - 1)
  in
  collect [] [] count

let route t state ~scheme ~backup_count ~src ~dst ~bw =
  match find_primary t state ~src ~dst ~bw with
  | None -> Error Routing.No_primary
  | Some primary -> (
      if backup_count = 0 then Ok { Routing.primary; backups = [] }
      else
        match find_backups t state ~scheme ~primary ~bw ~count:backup_count with
        | [] -> Error Routing.No_backup
        | backups -> Ok { Routing.primary; backups })

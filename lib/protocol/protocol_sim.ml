module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Scenario = Dr_sim.Scenario
module Engine = Dr_sim.Engine
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing
module Resources = Drtp.Resources
module Faults = Dr_faults.Faults
module Backoff = Dr_faults.Backoff
module Tm = Dr_telemetry.Telemetry
module J = Dr_obs.Journal
module C = Dr_obs.Journal.Causal

let c_setup_dropped = Tm.Counter.make "proto.setup.dropped"
let c_ack_dropped = Tm.Counter.make "proto.ack.dropped"
let c_retransmits = Tm.Counter.make "proto.retransmits"

type config = {
  scheme : Drtp.Routing.scheme;
  backup_count : int;
  min_lsa_interval : float;
  lsa_flood_delay : float;
  hop_delay : float;
  max_retries : int;
  faults : Dr_faults.Faults.t option;
  setup_rto : float;
  max_retransmits : int;
}

let default_config =
  {
    scheme = Routing.Dlsr;
    backup_count = 1;
    min_lsa_interval = 5.0;
    lsa_flood_delay = 0.050;
    hop_delay = 0.001;
    max_retries = 1;
    faults = None;
    setup_rto = 0.050;
    max_retransmits = 4;
  }

type stats = {
  mutable requests : int;
  mutable accepted : int;
  mutable rejected_no_route : int;
  mutable setup_failures : int;
  mutable retries : int;
  mutable lost_after_retries : int;
  mutable lsa_originated : int;
  mutable released : int;
  mutable retransmits : int;
  mutable setup_dropped : int;
  mutable ack_dropped : int;
}

type result = {
  stats : stats;
  ft_overall : float;
  avg_active : float;
  acceptance : float;
  lsa_per_second : float;
  avg_staleness : float;
}

type event =
  | Workload of Scenario.item
  | Setup_arrival of {
      conn : int;
      bw : int;
      attempt : int;
      pair : Routing.route_pair;
    }
  | Setup_retransmit of {
      conn : int;
      bw : int;
      attempt : int;
      retransmit : int;  (* resends already performed, this copy included *)
      pair : Routing.route_pair;
    }
  | Setup_abandoned of {
      conn : int;
      bw : int;
      attempt : int;
      pair : Routing.route_pair;
    }
  | Lsa_originate of int  (* directed link *)
  | Lsa_deliver of int
  | Sample

(* The admission checks of Net_state.admit, evaluated without committing,
   against the current ground truth. *)
let admissible state ~bw (pair : Routing.route_pair) =
  let resources = Net_state.resources state in
  let primary_links = Path.links pair.Routing.primary in
  let primary_ok =
    List.for_all
      (fun l -> Resources.primary_feasible resources ~link:l ~bw)
      primary_links
  in
  let occurrences l links =
    List.fold_left (fun n x -> if x = l then n + 1 else n) 0 links
  in
  let rec backups_ok earlier = function
    | [] -> true
    | b :: rest ->
        List.for_all
          (fun l ->
            let own =
              occurrences l primary_links
              + List.fold_left (fun n e -> n + occurrences l (Path.links e)) 0 earlier
            in
            Resources.available_for_backup resources l >= bw * (1 + own))
          (Path.links b)
        && backups_ok (b :: earlier) rest
  in
  primary_ok && backups_ok [] pair.Routing.backups

let setup_hops (pair : Routing.route_pair) =
  (* Primary and backup confirmations run simultaneously (§4.4); the setup
     completes when the longest one lands. *)
  List.fold_left
    (fun acc b -> max acc (Path.hops b))
    (Path.hops pair.Routing.primary)
    pair.Routing.backups

let run ?(config = default_config) ~graph ~capacity ~scenario ~warmup ~horizon
    ~sample_every () =
  let state = Net_state.create ~graph ~capacity ~spare_policy:Net_state.Multiplexed in
  let view = Advertised_view.create state in
  let engine : event Engine.t = Engine.create () in
  let stats =
    {
      requests = 0;
      accepted = 0;
      rejected_no_route = 0;
      setup_failures = 0;
      retries = 0;
      lost_after_retries = 0;
      lsa_originated = 0;
      released = 0;
      retransmits = 0;
      setup_dropped = 0;
      ack_dropped = 0;
    }
  in
  (* Retransmission pacing for lossy setup/ACK signalling; only consulted
     when a fault plan is installed. *)
  let rto_backoff =
    Backoff.make ~base:config.setup_rto ~max_attempts:config.max_retransmits ()
  in
  (* Crankback retry budget, expressed through the shared helper (no
     inter-retry delay: the failure notice itself already travelled back). *)
  let crank = Backoff.make ~base:0.0 ~max_attempts:config.max_retries () in
  let links = Graph.link_count graph in
  let lsa_next_ok = Array.make links 0.0 in
  let lsa_scheduled = Array.make links false in
  (* Releases that arrived while the connection's setup was in flight. *)
  let released_early = Hashtbl.create 16 in
  (* Causal tracing: one [setup] root per request still in flight, plus the
     current attempt child (crankback chains attempts by cause edges).  The
     tables are only touched when the journal is on. *)
  let setup_spans : (int, C.span * float * C.span * float) Hashtbl.t =
    Hashtbl.create 16
  in
  (* Per-link FIFO of in-flight [lsa] root spans, paired by the matching
     [Lsa_deliver] (deliveries for one link are processed in order). *)
  let lsa_pending : (C.span * float) list array = Array.make links [] in
  (* Measurement accumulators. *)
  let attempts = ref 0 and successes = ref 0 in
  let samples = ref 0 in
  let staleness = Dr_stats.Summary.create () in
  let cursor = ref warmup in
  let active_time = ref 0.0 in
  let integrate_to t =
    let t = min t horizon in
    if t > !cursor then begin
      active_time :=
        !active_time +. (float_of_int (Net_state.active_count state) *. (t -. !cursor));
      cursor := t
    end
  in
  let trigger_lsa now l =
    if not lsa_scheduled.(l) then begin
      lsa_scheduled.(l) <- true;
      Engine.schedule engine ~at:(max now lsa_next_ok.(l)) (Lsa_originate l)
    end
  in
  let trigger_path_lsas now (p : Path.t) =
    List.iter (fun l -> trigger_lsa now l) (Path.links p)
  in
  let trigger_pair_lsas now (pair : Routing.route_pair) =
    trigger_path_lsas now pair.Routing.primary;
    List.iter (trigger_path_lsas now) pair.Routing.backups
  in
  let route_from_view ~src ~dst ~bw =
    Advertised_view.route view state ~scheme:config.scheme
      ~backup_count:config.backup_count ~src ~dst ~bw
  in
  (* Send one copy of the setup packet: [retransmit] copies were already
     lost.  A lost copy times out at the source and is resent after a
     doubling RTO ([Setup_retransmit] on the engine queue); an exhausted
     budget abandons the setup after one final timeout. *)
  let launch_setup now ~conn ~bw ~attempt ?(retransmit = 0) pair =
    match config.faults with
    | Some f when not (Faults.deliver f Faults.Setup) ->
        stats.setup_dropped <- stats.setup_dropped + 1;
        Tm.Counter.incr c_setup_dropped;
        if !J.on then J.record (J.Message_dropped { cls = "setup"; id = conn });
        let wait = Backoff.delay rto_backoff ~attempt:(retransmit + 1) in
        let wait_leaf phase =
          if !J.on then
            match Hashtbl.find_opt setup_spans conn with
            | Some (_, _, sp_att, _) ->
                C.leaf ~parent:sp_att ~conn ~t0:now ~dur:wait phase
            | None -> ()
        in
        if Backoff.exhausted rto_backoff ~attempt:retransmit then begin
          wait_leaf "timeout-wait";
          Engine.schedule engine ~at:(now +. wait)
            (Setup_abandoned { conn; bw; attempt; pair })
        end
        else begin
          stats.retransmits <- stats.retransmits + 1;
          Tm.Counter.incr c_retransmits;
          if !J.on then
            J.record (J.Retransmit { cls = "setup"; conn; attempt = retransmit + 1 });
          wait_leaf "retransmit-wait";
          Engine.schedule engine ~at:(now +. wait)
            (Setup_retransmit { conn; bw; attempt; retransmit = retransmit + 1; pair })
        end
    | _ ->
        Engine.schedule engine
          ~at:(now +. (config.hop_delay *. float_of_int (setup_hops pair)))
          (Setup_arrival { conn; bw; attempt; pair })
  in
  (* Crankback: the failure notice travels back and the source re-routes
     on whatever the view says by then. *)
  let crankback now ~conn ~bw ~attempt (pair : Routing.route_pair) =
    (* The failing attempt's span closes here; a retry opens the next
       attempt cause-chained to it, so crankback storms read as an
       attempt -> attempt -> ... causal chain in the trace. *)
    let entry = if !J.on then Hashtbl.find_opt setup_spans conn else None in
    (match entry with
    | Some (_, _, sp_att, att_t0) -> C.close sp_att ~dur:(now -. att_t0)
    | None -> ());
    let lost () =
      stats.lost_after_retries <- stats.lost_after_retries + 1;
      match entry with
      | Some (sp_root, root_t0, _, _) ->
          C.close sp_root ~dur:(now -. root_t0);
          Hashtbl.remove setup_spans conn
      | None -> ()
    in
    if not (Backoff.exhausted crank ~attempt) then begin
      stats.retries <- stats.retries + 1;
      match
        route_from_view ~src:(Path.src pair.Routing.primary)
          ~dst:(Path.dst pair.Routing.primary) ~bw
      with
      | Error _ -> lost ()
      | Ok pair' ->
          (match entry with
          | Some (sp_root, root_t0, sp_att, _) ->
              let sp' =
                C.child ~cause:sp_att ~conn ~t0:now ~parent:sp_root "attempt"
              in
              Hashtbl.replace setup_spans conn (sp_root, root_t0, sp', now)
          | None -> ());
          launch_setup now ~conn ~bw ~attempt:(attempt + 1) pair'
    end
    else lost ()
  in
  (* The destination's ACK back to the source, drawn analytically with the
     same retransmission budget (a duplicate setup re-elicits it). *)
  let ack_delivered ~conn =
    match config.faults with
    | None -> true
    | Some f ->
        let rec go k =
          if Faults.deliver f Faults.Ack then true
          else begin
            stats.ack_dropped <- stats.ack_dropped + 1;
            Tm.Counter.incr c_ack_dropped;
            if !J.on then
              J.record (J.Message_dropped { cls = "ack"; id = conn });
            if Backoff.exhausted rto_backoff ~attempt:k then false
            else begin
              stats.retransmits <- stats.retransmits + 1;
              Tm.Counter.incr c_retransmits;
              if !J.on then
                J.record (J.Retransmit { cls = "ack"; conn; attempt = k + 1 });
              go (k + 1)
            end
          end
        in
        go 0
  in
  let handler engine event =
    let now = Engine.now engine in
    integrate_to now;
    match event with
    | Workload { event = Scenario.Request { conn; src; dst; bw; duration = _ }; _ }
      -> (
        stats.requests <- stats.requests + 1;
        match route_from_view ~src ~dst ~bw with
        | Error _ ->
            stats.rejected_no_route <- stats.rejected_no_route + 1;
            if !J.on then begin
              (* Rejected before any packet left: a zero-length trace. *)
              let sp = C.root ~conn ~t0:now "setup" in
              C.close sp ~dur:0.0
            end
        | Ok pair ->
            if !J.on then begin
              let sp_root = C.root ~conn ~t0:now "setup" in
              let sp_att = C.child ~conn ~t0:now ~parent:sp_root "attempt" in
              Hashtbl.replace setup_spans conn (sp_root, now, sp_att, now)
            end;
            launch_setup now ~conn ~bw ~attempt:0 pair)
    | Workload { event = Scenario.Release { conn }; _ } -> (
        match Net_state.find state conn with
        | Some c ->
            let touched =
              Path.links c.Net_state.primary
              @ List.concat_map Path.links c.Net_state.backups
            in
            Net_state.release state ~id:conn;
            stats.released <- stats.released + 1;
            List.iter (fun l -> trigger_lsa now l) touched
        | None ->
            (* Setup still in flight (or the request was rejected): remember
               so an eventual admission is immediately torn down. *)
            Hashtbl.replace released_early conn ())
    | Setup_arrival { conn; bw; attempt; pair } ->
        if admissible state ~bw pair then begin
          if ack_delivered ~conn then begin
            ignore
              (Net_state.admit state ~id:conn ~bw ~primary:pair.Routing.primary
                 ~backups:pair.Routing.backups);
            stats.accepted <- stats.accepted + 1;
            if !J.on then begin
              (match Hashtbl.find_opt setup_spans conn with
              | Some (sp_root, root_t0, sp_att, att_t0) ->
                  C.close sp_att ~dur:(now -. att_t0);
                  C.close sp_root ~dur:(now -. root_t0);
                  Hashtbl.remove setup_spans conn
              | None -> ())
            end;
            trigger_pair_lsas now pair;
            if Hashtbl.mem released_early conn then begin
              Hashtbl.remove released_early conn;
              Net_state.release state ~id:conn;
              stats.released <- stats.released + 1
            end
          end
          else begin
            (* Every ACK copy was lost: the destination's reservation times
               out and the source, none the wiser, cranks back. *)
            stats.setup_failures <- stats.setup_failures + 1;
            crankback now ~conn ~bw ~attempt pair
          end
        end
        else begin
          stats.setup_failures <- stats.setup_failures + 1;
          crankback now ~conn ~bw ~attempt pair
        end
    | Setup_retransmit { conn; bw; attempt; retransmit; pair } ->
        launch_setup now ~conn ~bw ~attempt ~retransmit pair
    | Setup_abandoned { conn; bw; attempt; pair } ->
        (* Setup retransmissions exhausted: charged like a setup failure,
           with the same crankback chances. *)
        stats.setup_failures <- stats.setup_failures + 1;
        crankback now ~conn ~bw ~attempt pair
    | Lsa_originate l ->
        lsa_scheduled.(l) <- false;
        lsa_next_ok.(l) <- now +. config.min_lsa_interval;
        stats.lsa_originated <- stats.lsa_originated + 1;
        if !J.on then begin
          (* One [lsa] trace per origination, closed at delivery; the conn
             field carries the directed link id. *)
          let sp = C.root ~conn:l ~t0:now "lsa" in
          lsa_pending.(l) <- lsa_pending.(l) @ [ (sp, now) ]
        end;
        Engine.schedule engine ~at:(now +. config.lsa_flood_delay) (Lsa_deliver l)
    | Lsa_deliver l ->
        if !J.on then begin
          match lsa_pending.(l) with
          | (sp, t0) :: rest ->
              lsa_pending.(l) <- rest;
              C.leaf ~conn:l ~t0 ~dur:(now -. t0) ~parent:sp "flight";
              C.close sp ~dur:(now -. t0)
          | [] -> ()
        end;
        Advertised_view.refresh_link view state l
    | Sample ->
        incr samples;
        let r = Drtp.Failure_eval.evaluate state in
        attempts := !attempts + r.Drtp.Failure_eval.attempts;
        successes := !successes + r.Drtp.Failure_eval.successes;
        Dr_stats.Summary.add staleness
          (float_of_int (Advertised_view.staleness_count view state))
  in
  Scenario.iter scenario (fun item ->
      if item.Scenario.time <= horizon then
        Engine.schedule engine ~at:item.Scenario.time (Workload item));
  let rec schedule_samples t =
    if t <= horizon then begin
      Engine.schedule engine ~at:t Sample;
      schedule_samples (t +. sample_every)
    end
  in
  schedule_samples warmup;
  Engine.run engine ~handler;
  integrate_to horizon;
  let window = horizon -. warmup in
  {
    stats;
    ft_overall =
      (if !attempts = 0 then 1.0
       else float_of_int !successes /. float_of_int !attempts);
    avg_active = (if window > 0.0 then !active_time /. window else 0.0);
    acceptance =
      (if stats.requests = 0 then 1.0
       else float_of_int stats.accepted /. float_of_int stats.requests);
    lsa_per_second =
      (if horizon > 0.0 then float_of_int stats.lsa_originated /. horizon else 0.0);
    avg_staleness =
      (if Dr_stats.Summary.count staleness = 0 then 0.0
       else Dr_stats.Summary.mean staleness);
  }

(** Distributed-protocol simulation of DR-connection management.

    The centralised {!Drtp.Manager} routes on ground truth; this simulator
    runs the protocol the paper actually describes, on the discrete-event
    engine:

    - {b link-state advertisements}: routers route on the
      {!Advertised_view}, which is refreshed per link only when an LSA is
      delivered.  LSAs are {e triggered} by state changes on a link but
      damped by a per-link minimum origination interval
      ([min_lsa_interval], OSPF's MinLSInterval), and take
      [lsa_flood_delay] to reach the network;
    - {b signalling}: a connection request computes routes at the source
      from the advertised view, then a setup message travels the primary
      and backup paths hop by hop ([hop_delay] each).  Admission is
      checked against ground truth {e when the setup arrives} — by which
      time other in-flight setups may have taken the bandwidth the view
      promised.  Such a {e setup failure} is the cost of staleness;
    - {b crankback retries}: a failed setup returns to the source, which
      re-routes on the (possibly refreshed) view up to [max_retries]
      times.

    With [min_lsa_interval = 0], [lsa_flood_delay = 0] and
    [hop_delay = 0] the protocol collapses to the centralised behaviour,
    which the tests verify; growing the damping interval trades
    advertisement traffic for setup failures and lost acceptance —
    extension E4's staleness ablation. *)

type config = {
  scheme : Drtp.Routing.scheme;
  backup_count : int;
  min_lsa_interval : float;  (** seconds between LSAs of one link; 0 = immediate *)
  lsa_flood_delay : float;  (** origination -> everyone's database, seconds *)
  hop_delay : float;  (** per-hop signalling delay, seconds *)
  max_retries : int;  (** crankback attempts after a setup failure *)
  faults : Dr_faults.Faults.t option;
      (** loss plan for setup packets and their ACKs; [None] (the default)
          keeps the control plane perfect and the simulation bit-identical
          to the pre-fault behaviour *)
  setup_rto : float;  (** retransmission timeout for lost setups; doubles *)
  max_retransmits : int;  (** setup/ACK resends before abandoning *)
}

val default_config : config
(** D-LSR, one backup, 5 s damping, 50 ms flood delay, 1 ms per hop,
    1 retry; no fault plan, 50 ms RTO, 4 retransmissions. *)

type stats = {
  mutable requests : int;
  mutable accepted : int;
  mutable rejected_no_route : int;
      (** the advertised view offered no primary or no backup *)
  mutable setup_failures : int;
      (** arrived setups that found less bandwidth than advertised *)
  mutable retries : int;
  mutable lost_after_retries : int;
  mutable lsa_originated : int;
  mutable released : int;
  mutable retransmits : int;
      (** setup/ACK copies resent after a loss timeout *)
  mutable setup_dropped : int;  (** setup copies lost in flight *)
  mutable ack_dropped : int;  (** ACK copies lost in flight *)
}

type result = {
  stats : stats;
  ft_overall : float;  (** ground-truth snapshot fault-tolerance *)
  avg_active : float;
  acceptance : float;
  lsa_per_second : float;
  avg_staleness : float;
      (** mean number of links whose advertised free bandwidth disagreed
          with ground truth, sampled with the fault-tolerance snapshots *)
}

val run :
  ?config:config ->
  graph:Dr_topo.Graph.t ->
  capacity:int ->
  scenario:Dr_sim.Scenario.t ->
  warmup:float ->
  horizon:float ->
  sample_every:float ->
  unit ->
  result
(** Drive the scenario through the distributed protocol and measure over
    [warmup, horizon] like {!Dr_exp.Runner}. *)

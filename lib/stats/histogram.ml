type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if lo >= hi then invalid_arg "Histogram.create: lo must be < hi";
  if bins < 1 then invalid_arg "Histogram.create: need at least one bin";
  { lo; hi; counts = Array.make bins 0; under = 0; over = 0; total = 0 }

let add h x =
  h.total <- h.total + 1;
  if x < h.lo then h.under <- h.under + 1
  else if x >= h.hi then h.over <- h.over + 1
  else begin
    let bins = Array.length h.counts in
    let idx = int_of_float ((x -. h.lo) /. (h.hi -. h.lo) *. float_of_int bins) in
    let idx = min idx (bins - 1) in
    h.counts.(idx) <- h.counts.(idx) + 1
  end

let merge a b =
  if
    a.lo <> b.lo || a.hi <> b.hi
    || Array.length a.counts <> Array.length b.counts
  then invalid_arg "Histogram.merge: incompatible bin layouts";
  {
    lo = a.lo;
    hi = a.hi;
    counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
    under = a.under + b.under;
    over = a.over + b.over;
    total = a.total + b.total;
  }

let count h = h.total
let bin_counts h = Array.copy h.counts
let underflow h = h.under
let overflow h = h.over

let bin_bounds h i =
  let bins = Array.length h.counts in
  if i < 0 || i >= bins then invalid_arg "Histogram.bin_bounds";
  let width = (h.hi -. h.lo) /. float_of_int bins in
  (h.lo +. (float_of_int i *. width), h.lo +. (float_of_int (i + 1) *. width))

let pp ppf h =
  let max_count = Array.fold_left max 1 h.counts in
  Format.fprintf ppf "@[<v>";
  if h.under > 0 then Format.fprintf ppf "< %8.3f : %d@," h.lo h.under;
  Array.iteri
    (fun i c ->
      let lo, hi = bin_bounds h i in
      let bar_len = c * 40 / max_count in
      Format.fprintf ppf "[%8.3f, %8.3f) %6d %s@," lo hi c (String.make bar_len '#'))
    h.counts;
  if h.over > 0 then Format.fprintf ppf ">= %8.3f : %d@," h.hi h.over;
  Format.fprintf ppf "@]"

let quantile samples q =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Histogram.quantile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q out of range";
  Array.sort compare samples;
  if n = 1 then samples.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    samples.(lo) +. (frac *. (samples.(hi) -. samples.(lo)))
  end

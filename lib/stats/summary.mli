(** Streaming summary statistics (Welford's online algorithm).

    Used by the measurement layer: fault-tolerance samples are accumulated
    per snapshot, active-connection counts are time-averaged, and the
    harness reports means with confidence intervals. *)

type t

val create : unit -> t

val add : t -> float -> unit

val add_weighted : t -> weight:float -> float -> unit
(** Weighted observation (used for time-weighted averages: the weight is the
    duration a value was held). *)

val count : t -> int
(** Number of [add]/[add_weighted] calls. *)

val total_weight : t -> float

val mean : t -> float
(** Mean of the observations ([nan] when empty). *)

val variance : t -> float
(** Unbiased (frequency-weighted) sample variance; [0.] with fewer than two
    observations. *)

val stddev : t -> float

val min_value : t -> float
val max_value : t -> float

val ci95_halfwidth : t -> float
(** Half-width of a normal-approximation 95% confidence interval for the
    mean ([1.96 * stddev / sqrt count]); [0.] with fewer than two samples. *)

val merge : t -> t -> t
(** Combine two summaries as if all observations went into one. *)

val pp : Format.formatter -> t -> unit

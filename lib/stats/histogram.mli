(** Fixed-bin histograms and empirical quantiles.

    The recovery-latency experiment (extension E1 in DESIGN.md) reports
    latency distributions; the routing-overhead experiment reports CDP
    message-count distributions. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Histogram over [lo, hi) with [bins] equal-width bins plus underflow and
    overflow counters.  Requires [lo < hi] and [bins >= 1]. *)

val add : t -> float -> unit

val merge : t -> t -> t
(** Combine two histograms with the same [lo]/[hi]/bin layout as if every
    observation went into one (bin, underflow, overflow and total counts
    add; the merge is exact, commutative and associative).  Used to fold
    per-worker accumulators from parallel runs.  Raises [Invalid_argument]
    on mismatched layouts. *)

val count : t -> int

val bin_counts : t -> int array

val underflow : t -> int
val overflow : t -> int

val bin_bounds : t -> int -> float * float
(** Inclusive-exclusive bounds of a bin. *)

val pp : Format.formatter -> t -> unit
(** Text rendering with proportional bars. *)

val quantile : float array -> float -> float
(** [quantile samples q] is the empirical [q]-quantile (linear
    interpolation) of the array, which is sorted in place.
    Requires a non-empty array and [0. <= q <= 1.]. *)

type t = {
  mutable count : int;
  mutable weight : float;
  mutable mean : float;
  mutable m2 : float; (* weighted sum of squared deviations *)
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { count = 0; weight = 0.0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

let add_weighted s ~weight x =
  if weight < 0.0 then invalid_arg "Summary.add_weighted: negative weight";
  if weight > 0.0 then begin
    s.count <- s.count + 1;
    let new_weight = s.weight +. weight in
    let delta = x -. s.mean in
    let r = delta *. weight /. new_weight in
    s.mean <- s.mean +. r;
    s.m2 <- s.m2 +. (s.weight *. delta *. r);
    s.weight <- new_weight;
    if x < s.min_v then s.min_v <- x;
    if x > s.max_v then s.max_v <- x
  end

let add s x = add_weighted s ~weight:1.0 x

let count s = s.count
let total_weight s = s.weight
let mean s = if s.count = 0 then nan else s.mean

let variance s =
  if s.count < 2 || s.weight <= 0.0 then 0.0
  else s.m2 /. s.weight *. (float_of_int s.count /. float_of_int (s.count - 1))

let stddev s = sqrt (variance s)

let min_value s = if s.count = 0 then nan else s.min_v
let max_value s = if s.count = 0 then nan else s.max_v

let ci95_halfwidth s =
  if s.count < 2 then 0.0 else 1.96 *. stddev s /. sqrt (float_of_int s.count)

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else begin
    let weight = a.weight +. b.weight in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. b.weight /. weight) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. a.weight *. b.weight /. weight) in
    {
      count = a.count + b.count;
      weight;
      mean;
      m2;
      min_v = min a.min_v b.min_v;
      max_v = max a.max_v b.max_v;
    }
  end

let pp ppf s =
  if s.count = 0 then Format.pp_print_string ppf "(empty)"
  else
    Format.fprintf ppf "mean=%.4f sd=%.4f n=%d range=[%.4f, %.4f]" (mean s)
      (stddev s) s.count s.min_v s.max_v

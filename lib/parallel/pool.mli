(** Domain-based worker pool for independent simulation tasks.

    The evaluation grid — {!Dr_exp.Sweep} cells, {!Dr_exp.Replicate}
    seeds, the double-failure Monte-Carlo — is embarrassingly parallel:
    every task builds its own manager and network state and only shares
    immutable inputs (the graph, a scenario).  The pool executes such
    tasks across OCaml 5 domains while keeping the {e observable} output
    identical to a sequential run:

    - {b Deterministic merging.}  {!map} collects results into an array
      keyed by task index, so the caller sees submission order regardless
      of completion order.  Running the same batch with [~jobs:1] and
      [~jobs:N] produces the same result array, element for element.
    - {b Coordinated callbacks.}  [on_result] is invoked {e only} from
      the domain that called {!map} (the coordinating domain), in strict
      task-index order — never concurrently, never out of order.
    - {b Crash containment.}  An exception inside a task is caught in the
      worker, the task is retried ([retries] more attempts, default one),
      and a still-failing task becomes an [Error] element rather than
      killing the batch or the pool.
    - {b Sharded, bounded queue.}  Each worker owns a queue shard;
      submission round-robins across shards and blocks once a shard holds
      [queue_bound] tasks, so a huge batch never materialises in memory.
      Idle workers steal from other shards.

    Telemetry (through {!Dr_telemetry.Telemetry}, enabled with the usual
    switch): counters [pool.tasks], [pool.retries], [pool.failures];
    gauges [pool.queue_depth], [pool.in_flight] and per-worker
    [pool.worker<i>.busy_s] busy-time accumulators.

    With [jobs = 1] no domains are spawned and tasks run inline in the
    submitting domain — the sequential path, byte-identical to the
    pre-pool code.  A pool is owned by one coordinating domain: calls to
    {!map} on the same pool must not overlap. *)

type t

type error = {
  index : int;  (** index of the failed task in its batch *)
  attempts : int;  (** executions attempted (1 + retries performed) *)
  message : string;  (** [Printexc.to_string] of the last exception *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)

val create : ?jobs:int -> ?queue_bound:int -> ?retries:int -> unit -> t
(** Spawn a pool of [jobs] worker domains (default {!default_jobs}; [1]
    spawns none).  [queue_bound] (default 32) bounds each worker's queue
    shard; [retries] (default 1) is how many times a raising task is
    re-executed before it is reported as failed. *)

val jobs : t -> int

val map :
  ?on_result:(int -> ('b, error) result -> unit) ->
  t ->
  ('a -> 'b) ->
  'a array ->
  ('b, error) result array
(** [map pool f items] runs [f items.(i)] for every [i] and returns the
    results in index order.  Tasks must be independent: they may share
    immutable data but must not communicate or mutate shared state.
    [on_result] is called from the coordinating domain in index order as
    results become available (element [i] is reported only after every
    element before it). *)

val map_list :
  ?on_result:(int -> ('b, error) result -> unit) ->
  t ->
  ('a -> 'b) ->
  'a list ->
  ('b, error) result list

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Must not be called
    while a {!map} is in progress. *)

val with_pool :
  ?jobs:int -> ?queue_bound:int -> ?retries:int -> (t -> 'a) -> 'a
(** [create], run the function, always [shutdown]. *)

module Tm = Dr_telemetry.Telemetry

(* Pool-level telemetry.  The per-worker busy-time gauges are created per
   pool (worker counts vary); everything else is shared. *)
let c_tasks = Tm.Counter.make "pool.tasks"
let c_retries = Tm.Counter.make "pool.retries"
let c_failures = Tm.Counter.make "pool.failures"
let g_queue_depth = Tm.Gauge.make "pool.queue_depth"
let g_in_flight = Tm.Gauge.make "pool.in_flight"

type error = { index : int; attempts : int; message : string }

(* One queue shard per worker.  Submission round-robins across shards and
   blocks on [not_full] at [queue_bound]; workers drain their own shard
   first and steal from the others when it is empty. *)
type shard = {
  sm : Mutex.t;
  not_full : Condition.t;
  q : (unit -> unit) Queue.t;
}

type t = {
  jobs : int;
  queue_bound : int;
  retries : int;
  shards : shard array; (* empty when [jobs = 1] *)
  gm : Mutex.t; (* guards [queued], [in_flight], [stopped], [mapping] *)
  work_ready : Condition.t; (* workers sleep here when every shard is dry *)
  task_done : Condition.t; (* the coordinator sleeps here inside [map] *)
  mutable queued : int;
  mutable in_flight : int;
  mutable stopped : bool;
  mutable mapping : bool;
  mutable domains : unit Domain.t list;
  busy : float array; (* per-worker busy seconds; each slot single-writer *)
  busy_gauges : Tm.Gauge.t array;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs pool = pool.jobs

(* Scan the shards starting at the worker's own; pop the first task found.
   Signalling [not_full] after unlocking is safe: the submitter re-checks
   the queue length in a predicate loop. *)
let try_pop pool i =
  let n = Array.length pool.shards in
  let rec scan k =
    if k >= n then None
    else begin
      let s = pool.shards.((i + k) mod n) in
      Mutex.lock s.sm;
      if Queue.is_empty s.q then begin
        Mutex.unlock s.sm;
        scan (k + 1)
      end
      else begin
        let task = Queue.pop s.q in
        Mutex.unlock s.sm;
        Condition.signal s.not_full;
        Some task
      end
    end
  in
  scan 0

let worker pool i =
  let next () =
    match try_pop pool i with
    | Some task -> Some task
    | None ->
        Mutex.lock pool.gm;
        let rec wait () =
          match try_pop pool i with
          | Some task ->
              Mutex.unlock pool.gm;
              Some task
          | None ->
              if pool.stopped then begin
                Mutex.unlock pool.gm;
                None
              end
              else begin
                Condition.wait pool.work_ready pool.gm;
                wait ()
              end
        in
        wait ()
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some task ->
        Mutex.lock pool.gm;
        pool.queued <- pool.queued - 1;
        pool.in_flight <- pool.in_flight + 1;
        Tm.Gauge.set g_queue_depth (float_of_int pool.queued);
        Tm.Gauge.set g_in_flight (float_of_int pool.in_flight);
        Mutex.unlock pool.gm;
        let t0 = Unix.gettimeofday () in
        task ();
        pool.busy.(i) <- pool.busy.(i) +. (Unix.gettimeofday () -. t0);
        Tm.Gauge.set pool.busy_gauges.(i) pool.busy.(i);
        Mutex.lock pool.gm;
        pool.in_flight <- pool.in_flight - 1;
        Tm.Gauge.set g_in_flight (float_of_int pool.in_flight);
        Condition.broadcast pool.task_done;
        Mutex.unlock pool.gm;
        loop ()
  in
  loop ()

let create ?jobs ?(queue_bound = 32) ?(retries = 1) () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  if queue_bound < 1 then invalid_arg "Pool.create: queue_bound must be >= 1";
  if retries < 0 then invalid_arg "Pool.create: retries must be >= 0";
  let pool =
    {
      jobs;
      queue_bound;
      retries;
      shards =
        (if jobs = 1 then [||]
         else
           Array.init jobs (fun _ ->
               {
                 sm = Mutex.create ();
                 not_full = Condition.create ();
                 q = Queue.create ();
               }));
      gm = Mutex.create ();
      work_ready = Condition.create ();
      task_done = Condition.create ();
      queued = 0;
      in_flight = 0;
      stopped = false;
      mapping = false;
      domains = [];
      busy = Array.make jobs 0.0;
      busy_gauges =
        Array.init jobs (fun i ->
            Tm.Gauge.make (Printf.sprintf "pool.worker%d.busy_s" i));
    }
  in
  if jobs > 1 then
    pool.domains <- List.init jobs (fun i -> Domain.spawn (fun () -> worker pool i));
  pool

let submit pool idx task =
  let s = pool.shards.(idx mod pool.jobs) in
  Mutex.lock s.sm;
  while Queue.length s.q >= pool.queue_bound do
    Condition.wait s.not_full s.sm
  done;
  Queue.push task s.q;
  Mutex.unlock s.sm;
  Mutex.lock pool.gm;
  pool.queued <- pool.queued + 1;
  Tm.Gauge.set g_queue_depth (float_of_int pool.queued);
  Condition.signal pool.work_ready;
  Mutex.unlock pool.gm

(* Run one task with crash containment: catch, retry, and only then
   surface an [Error].  Runs inside a worker domain (or inline when
   [jobs = 1]) — it must never raise. *)
let run_task pool f x index =
  Tm.Counter.incr c_tasks;
  let rec attempt k =
    match f x with
    | v -> Ok v
    | exception e ->
        if k <= pool.retries then begin
          Tm.Counter.incr c_retries;
          attempt (k + 1)
        end
        else begin
          Tm.Counter.incr c_failures;
          Error { index; attempts = k; message = Printexc.to_string e }
        end
  in
  attempt 1

let map ?on_result pool f items =
  let n = Array.length items in
  let results = Array.make n None in
  let report i r =
    match on_result with None -> () | Some cb -> cb i r
  in
  if pool.jobs = 1 then
    for i = 0 to n - 1 do
      let r = run_task pool f items.(i) i in
      results.(i) <- Some r;
      report i r
    done
  else begin
    Mutex.lock pool.gm;
    if pool.stopped then begin
      Mutex.unlock pool.gm;
      invalid_arg "Pool.map: pool is shut down"
    end;
    if pool.mapping then begin
      Mutex.unlock pool.gm;
      invalid_arg "Pool.map: overlapping map on the same pool"
    end;
    pool.mapping <- true;
    Mutex.unlock pool.gm;
    for i = 0 to n - 1 do
      submit pool i (fun () -> results.(i) <- Some (run_task pool f items.(i) i))
    done;
    (* Collect in index order so [on_result] fires deterministically from
       this — the coordinating — domain.  A worker's result write happens
       before its [task_done] broadcast (both ordered by [gm]), so a slot
       observed as [None] here is re-checked after the next broadcast. *)
    Mutex.lock pool.gm;
    for i = 0 to n - 1 do
      while results.(i) = None do
        Condition.wait pool.task_done pool.gm
      done;
      match results.(i) with
      | None -> assert false
      | Some r ->
          Mutex.unlock pool.gm;
          report i r;
          Mutex.lock pool.gm
    done;
    pool.mapping <- false;
    Mutex.unlock pool.gm
  end;
  Array.map (function Some r -> r | None -> assert false) results

let map_list ?on_result pool f items =
  Array.to_list (map ?on_result pool f (Array.of_list items))

let shutdown pool =
  Mutex.lock pool.gm;
  if pool.stopped then Mutex.unlock pool.gm
  else begin
    pool.stopped <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.gm;
    List.iter Domain.join pool.domains;
    pool.domains <- []
  end

let with_pool ?jobs ?queue_bound ?retries f =
  let pool = create ?jobs ?queue_bound ?retries () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

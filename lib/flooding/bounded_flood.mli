(** Routing with bounded flooding (paper §4).

    On a connection request the source floods a channel-discovery packet
    (CDP) towards the destination.  A CDP carries the hop count so far, a
    [primary_flag] that stays 1 only while every traversed link has enough
    {e free} bandwidth for a primary, and the list of nodes visited.
    Flooding is bounded three ways:

    - {b distance test}: a CDP is forwarded to neighbour [k] only if it can
      still reach the destination within [hc_limit = ρ·D + β₀] hops, where
      [D] is the min-hop distance from source to destination known from the
      per-node distance tables (Eq. 8/10);
    - {b loop-freedom test}: never forward to a node already on the CDP's
      node list (Eq. 11);
    - {b bandwidth test}: only cross links with
      [total_bw - prime_bw >= bw_req] — a backup may share the spare pool
      (Eq. 9/12);
    - {b valid-detour test}: once a node has seen the connection (it has a
      Pending-Connection-Table entry), further copies must satisfy
      [hc_curr <= α·min_dist + β₁] (Eq. 13).

    The destination accumulates the surviving CDPs in a Candidate-Route
    Table, picks the shortest [primary_flag = 1] route as primary, and the
    shortest minimally-overlapping remaining route as backup (§4.4).

    The simulation is message-accurate: every CDP forward is counted, which
    is the scheme's routing overhead (there is no link-state distribution
    at all). *)

type config = {
  rho : float;  (** hop-limit slope ρ ≥ 1 *)
  beta0 : int;  (** hop-limit offset β₀ ≥ 0 *)
  alpha : float;  (** valid-detour slope α ≥ 1 *)
  beta1 : int;  (** valid-detour offset β₁ ≥ 0 *)
  crt_cap : int;  (** max candidate routes kept by the destination *)
  cdp_cap : int;  (** safety cap on CDP forwards per request *)
  allow_unprotected : bool;
      (** accept a connection whose CRT held only one usable route without a
          backup instead of rejecting it; such connections cannot recover
          from a primary failure, which is precisely why BF's
          fault-tolerance curve sits below the link-state schemes' *)
  backup_count : int;
      (** backups the destination tries to select from the CRT (the
          paper's "one or more"); default 1 *)
}

val default_config : config
(** The paper's §6.2 operating point — "ρ = α = 1, β = 2, β = 0" in the
    (OCR-garbled) text: ρ = α = 1, β₀ = 2, and β₁ = 2, the valid-detour
    slack that best reproduces Fig. 4's BF curves (the scan is ambiguous
    about which β is which; ablation A2 sweeps the alternatives, and the
    paper's own remark that "increasing the flooding area beyond this
    barely improves the performance" holds at this point too).
    Unprotected acceptance is on.  Table caps are generous. *)

type candidate = {
  path : Dr_topo.Path.t;
  primary_ok : bool;  (** the CDP's primary_flag on arrival *)
  hops : int;
}

type flood_result = {
  candidates : candidate list;  (** in arrival (hop-count) order *)
  messages : int;  (** CDP forwards performed *)
  truncated : bool;  (** true if [cdp_cap] stopped the flood early *)
}

val on_truncated : (src:int -> dst:int -> messages:int -> unit) ref
(** Hook invoked whenever a flood hits [cdp_cap] and stops expanding — a
    silent route-quality degradation (the candidate set is incomplete).
    Default: no-op.  The CLI installs a one-time stderr warning here; the
    same condition is journalled as a [flood-truncated] event. *)

val discover :
  ?faults:Dr_faults.Faults.t ->
  config ->
  Drtp.Net_state.t ->
  hop_matrix:int array array ->
  src:int ->
  dst:int ->
  bw:int ->
  flood_result
(** Run one bounded flood.  [hop_matrix] is the network's distance tables
    (precomputed once per topology; they only change on topology changes,
    §4.1).  With a [faults] plan, each forwarded CDP copy may be lost in
    flight: it still costs a message (and still counts toward [cdp_cap])
    but is never enqueued at the far end — flooding is naturally redundant,
    so losses thin the candidate set rather than failing the flood. *)

val select :
  ?with_backup:bool ->
  ?allow_unprotected:bool ->
  ?backup_count:int ->
  Drtp.Net_state.t ->
  bw:int ->
  candidate list ->
  (Drtp.Routing.route_pair, Drtp.Routing.reject_reason) result
(** The destination's route-selection process (§4.4): primary = shortest
    candidate with [primary_ok]; backup = shortest remaining candidate with
    minimum edge overlap against the chosen primary, subject to remaining
    feasible once the primary is reserved (shared links need bandwidth for
    both).  [Error No_primary] if no candidate can host a primary,
    [Error No_backup] if no backup candidate survives.
    [with_backup:false] (default [true]) skips the backup — the
    flooding-routed no-backup baseline for the capacity-overhead metric. *)

type stats = {
  mutable floods : int;
  mutable total_messages : int;
  mutable truncated_floods : int;
}

val fresh_stats : unit -> stats

val route_fn :
  ?config:config ->
  ?stats:stats ->
  ?with_backup:bool ->
  ?faults:Dr_faults.Faults.t ->
  hop_matrix:int array array ->
  unit ->
  Drtp.Routing.route_fn
(** The BF scheme packaged for the connection {!Manager}.  Message counts
    accumulate into [stats] when provided. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Pqueue = Dr_pqueue.Pqueue
module Net_state = Drtp.Net_state
module Resources = Drtp.Resources
module Routing = Drtp.Routing
module Tm = Dr_telemetry.Telemetry
module J = Dr_obs.Journal
module C = Dr_obs.Journal.Causal
module Faults = Dr_faults.Faults

(* Telemetry: per-flood message accounting (§4's CDP traffic is the
   scheme's dominant cost) and the per-request discovery timer. *)
let c_floods = Tm.Counter.make "flood.runs"
let c_cdp_sent = Tm.Counter.make "flood.cdp.sent"
let c_cdp_ttl = Tm.Counter.make "flood.cdp.ttl_expired"
let c_cdp_dropped = Tm.Counter.make "flood.cdp.dropped"
let c_cdp_lost = Tm.Counter.make "flood.cdp.lost"
let c_truncated = Tm.Counter.make "flood.truncated"
let t_discover = Tm.Timer.make "flood.discover"

(* Truncation is a silent quality degradation: the flood stopped expanding
   at [cdp_cap], so the candidate set — and with it BF's route quality — is
   incomplete.  Drivers that want to surface this to the user (the CLI
   prints a one-time warning) install a hook here. *)
let on_truncated : (src:int -> dst:int -> messages:int -> unit) ref =
  ref (fun ~src:_ ~dst:_ ~messages:_ -> ())

type config = {
  rho : float;
  beta0 : int;
  alpha : float;
  beta1 : int;
  crt_cap : int;
  cdp_cap : int;
  allow_unprotected : bool;
  backup_count : int;
}

let default_config =
  {
    rho = 1.0;
    beta0 = 2;
    alpha = 1.0;
    beta1 = 2;
    crt_cap = 64;
    cdp_cap = 20_000;
    allow_unprotected = true;
    backup_count = 1;
  }

type candidate = { path : Path.t; primary_ok : bool; hops : int }

type flood_result = {
  candidates : candidate list;
  messages : int;
  truncated : bool;
}

(* A CDP as it arrives at [node]: [visited] holds the node list in travel
   order, [node] included last. *)
type cdp = { node : int; hc : int; primary_flag : bool; visited : int list }

let link_alive state l =
  not (Net_state.edge_failed state ~edge:(Graph.edge_of_link l))

let discover ?faults cfg state ~hop_matrix ~src ~dst ~bw =
  if cfg.rho < 1.0 || cfg.alpha < 1.0 || cfg.beta0 < 0 || cfg.beta1 < 0 then
    invalid_arg "Bounded_flood.discover: bad config";
  if src = dst then invalid_arg "Bounded_flood.discover: src = dst";
  Tm.Counter.incr c_floods;
  Tm.Timer.time t_discover @@ fun () ->
  let graph = Net_state.graph state in
  let resources = Net_state.resources state in
  let d_min = hop_matrix.(src).(dst) in
  (* Attach the flood to whatever span is ambient (the admission trace's
     [route] child when the manager drives us); a null parent makes this
     free-standing floods a no-op. *)
  let sp_flood =
    if !J.on then C.child ~parent:(C.current ()) "flood" else C.null
  in
  if d_min = Dr_topo.Shortest_path.unreachable then begin
    if !J.on then C.close sp_flood ~dur:0.0;
    { candidates = []; messages = 0; truncated = false }
  end
  else begin
    let hc_limit =
      int_of_float (Float.round (cfg.rho *. float_of_int d_min)) + cfg.beta0
    in
    (* Pending Connection Table: one flood = one connection, so a plain
       per-node [min_dist] array stands in for each node's PCT entry. *)
    let min_dist = Array.make (Graph.node_count graph) (-1) in
    let queue = Pqueue.create () in
    let messages = ref 0 in
    let truncated = ref false in
    let candidates = ref [] in
    let candidate_count = ref 0 in
    (* Forward one CDP copy over [link]; returns the updated CDP at the far
       end if all per-neighbour tests pass. *)
    let try_forward (m : cdp) link =
      let k = Graph.link_dst graph link in
      let distance_ok = m.hc + hop_matrix.(k).(dst) + 1 <= hc_limit in
      let loop_free = not (List.mem k m.visited) in
      let bandwidth_ok =
        link_alive state link && Resources.backup_feasible resources ~link ~bw
      in
      if distance_ok && loop_free && bandwidth_ok then begin
        let primary_flag =
          m.primary_flag && Resources.primary_feasible resources ~link ~bw
        in
        if !J.on then J.record (J.Cdp_sent { node = k; hc = m.hc + 1 });
        Some { node = k; hc = m.hc + 1; primary_flag; visited = m.visited @ [ k ] }
      end
      else begin
        if !Tm.on then
          Tm.Counter.incr (if not distance_ok then c_cdp_ttl else c_cdp_dropped);
        if !J.on then begin
          let reason =
            if not distance_ok then "ttl"
            else if not loop_free then "loop"
            else "bandwidth"
          in
          J.record (J.Cdp_dropped { node = k; reason })
        end;
        None
      end
    in
    let enqueue (m : cdp) = Pqueue.add queue ~key:(float_of_int m.hc) m in
    let expand (m : cdp) =
      Array.iter
        (fun link ->
          if !messages < cfg.cdp_cap then begin
            match try_forward m link with
            | None -> ()
            | Some m' -> (
                incr messages;
                Tm.Counter.incr c_cdp_sent;
                (* The copy was transmitted (it costs a message either
                   way); the fault plan decides whether it arrives. *)
                match faults with
                | Some f when not (Faults.deliver f Faults.Cdp) ->
                    Tm.Counter.incr c_cdp_lost;
                    if !J.on then
                      J.record (J.Message_dropped { cls = "cdp"; id = m'.node })
                | _ -> enqueue m')
          end
          else truncated := true)
        (Graph.out_links graph m.node)
    in
    (* The source composes the CDP and tests each neighbour (§4.2). *)
    expand { node = src; hc = 0; primary_flag = true; visited = [ src ] };
    let rec pump () =
      match Pqueue.pop queue with
      | None -> ()
      | Some (_, m) ->
          if m.node = dst then begin
            (* §4.4: fill the Candidate Route Table. *)
            if !candidate_count < cfg.crt_cap then begin
              incr candidate_count;
              if !J.on then
                J.record (J.Cdp_candidate { hops = m.hc; primary_ok = m.primary_flag });
              candidates :=
                {
                  path = Path.of_nodes graph m.visited;
                  primary_ok = m.primary_flag;
                  hops = m.hc;
                }
                :: !candidates
            end
          end
          else begin
            (* §4.3: valid-detour test against the PCT, then forward. *)
            let detour_ok =
              min_dist.(m.node) < 0
              || float_of_int m.hc
                 <= (cfg.alpha *. float_of_int min_dist.(m.node))
                    +. float_of_int cfg.beta1
            in
            if min_dist.(m.node) < 0 || m.hc < min_dist.(m.node) then
              min_dist.(m.node) <- m.hc;
            if detour_ok then expand m
          end;
          pump ()
    in
    pump ();
    if !truncated then begin
      Tm.Counter.incr c_truncated;
      if !J.on then
        J.record (J.Flood_truncated { src; dst; messages = !messages });
      !on_truncated ~src ~dst ~messages:!messages
    end;
    if !J.on then begin
      C.close sp_flood ~dur:0.0;
      J.record
        (J.Flood_done
           {
             src;
             dst;
             messages = !messages;
             candidates = !candidate_count;
             truncated = !truncated;
           })
    end;
    { candidates = List.rev !candidates; messages = !messages; truncated = !truncated }
  end

let occurrences l links =
  List.fold_left (fun n x -> if x = l then n + 1 else n) 0 links

let backup_feasible_after_primary state ~bw ~primary ~earlier (cand : candidate) =
  let resources = Net_state.resources state in
  let primary_links = Path.links primary in
  List.for_all
    (fun l ->
      let own =
        occurrences l primary_links
        + List.fold_left (fun n b -> n + occurrences l (Path.links b)) 0 earlier
      in
      Resources.available_for_backup resources l >= bw * (1 + own))
    (Path.links cand.path)

let select ?(with_backup = true) ?(allow_unprotected = true) ?(backup_count = 1)
    state ~bw candidates =
  (* Primary: shortest candidate whose flag stayed 1 (ties: arrival order,
     which the flood already sorts by hop count). *)
  let primary_cands = List.filter (fun c -> c.primary_ok) candidates in
  let best_primary =
    List.fold_left
      (fun best c ->
        match best with
        | None -> Some c
        | Some b -> if c.hops < b.hops then Some c else best)
      None primary_cands
  in
  match best_primary with
  | None -> Error Routing.No_primary
  | Some prim when not with_backup -> Ok { Routing.primary = prim.path; backups = [] }
  | Some prim ->
      let primary = prim.path in
      (* Backups: repeatedly pick the remaining candidate with minimum
         (edge overlap against the primary and already-chosen backups,
         hops); arrival order is the final tie.  The chosen primary
         candidate is excluded by identity. *)
      let remaining = ref (List.filter (fun c -> c != prim) candidates) in
      let chosen = ref [] in
      let pick_one () =
        let feasible =
          List.filter
            (backup_feasible_after_primary state ~bw ~primary ~earlier:!chosen)
            !remaining
        in
        let overlap c =
          Path.edge_overlap c.path primary
          + List.fold_left (fun n b -> n + Path.edge_overlap c.path b) 0 !chosen
        in
        let best =
          List.fold_left
            (fun best c ->
              let ov = overlap c and hops = c.hops in
              match best with
              | None -> Some (ov, hops, c)
              | Some (bov, bhops, _) ->
                  if ov < bov || (ov = bov && hops < bhops) then Some (ov, hops, c)
                  else best)
            None feasible
        in
        match best with
        | None -> false
        | Some (_, _, c) ->
            chosen := !chosen @ [ c.path ];
            remaining := List.filter (fun c' -> c' != c) !remaining;
            true
      in
      let rec take k = if k > 0 && pick_one () then take (k - 1) in
      take backup_count;
      (match !chosen with
      | [] ->
          (* A CRT with a single usable route: the connection can still be
             established, just without dependability.  The paper never says
             such requests are refused, and refusing them would charge BF a
             large acceptance penalty the LSR schemes do not pay. *)
          if allow_unprotected then Ok { Routing.primary; backups = [] }
          else Error Routing.No_backup
      | backups -> Ok { Routing.primary; backups })

type stats = {
  mutable floods : int;
  mutable total_messages : int;
  mutable truncated_floods : int;
}

let fresh_stats () = { floods = 0; total_messages = 0; truncated_floods = 0 }

let route_fn ?(config = default_config) ?stats ?(with_backup = true) ?faults
    ~hop_matrix () : Routing.route_fn =
 fun state ~src ~dst ~bw ->
  let result = discover ?faults config state ~hop_matrix ~src ~dst ~bw in
  (match stats with
  | None -> ()
  | Some s ->
      s.floods <- s.floods + 1;
      s.total_messages <- s.total_messages + result.messages;
      if result.truncated then s.truncated_floods <- s.truncated_floods + 1);
  select ~with_backup ~allow_unprotected:config.allow_unprotected
    ~backup_count:config.backup_count state ~bw result.candidates

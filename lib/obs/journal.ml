module Rng = Dr_rng.Splitmix64

let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* ---- events ------------------------------------------------------------- *)

type link_cost = {
  lc_link : int;
  lc_q : float;
  lc_conflict : float;
  lc_eps : float;
}

let link_cost_total lc = lc.lc_q +. lc.lc_conflict +. lc.lc_eps

type event =
  | Request of { conn : int; src : int; dst : int; bw : int }
  | Admitted of { conn : int; backups : int; degraded : bool }
  | Rejected of { conn : int; reason : string }
  | Primary_chosen of { src : int; dst : int; bw : int; links : int list }
  | Backup_chosen of {
      src : int;
      dst : int;
      bw : int;
      scheme : string;
      rank : int;
      links : link_cost list;
    }
  | Spare_change of { link : int; before : int; after : int }
  | Flood_done of {
      src : int;
      dst : int;
      messages : int;
      candidates : int;
      truncated : bool;
    }
  | Cdp_sent of { node : int; hc : int }
  | Cdp_dropped of { node : int; reason : string }
  | Cdp_candidate of { hops : int; primary_ok : bool }
  | Failure_detected of { edge : int; victims : int }
  | Report_hop of { conn : int; hops : int; detection : float; report : float }
  | Backup_activated of {
      conn : int;
      index : int;
      detection : float;
      report : float;
      activation : float;
    }
  | Backup_contended of { conn : int }
  | Connection_lost of { conn : int; latency : float }
  | Rerouted of { conn : int; latency : float; retries : int }
  | Reprotected of { conn : int; fresh : int }
  | Teardown of { conn : int }
  | Message_dropped of { cls : string; id : int }
  | Retransmit of { cls : string; conn : int; attempt : int }
  | Flood_truncated of { src : int; dst : int; messages : int }
  | Reprotect_queued of { conn : int; pending : int }
  | Group_failed of { group : int; edges : int; victims : int }
  | Chain_built of { src : int; dst : int; members : int; disjoint : int }
  | Chain_failover of { conn : int; depth : int; remaining : int }
  | Chain_exhausted of { conn : int }
  | Lsa_originated of { shard : int; link : int; lsa_seq : int }
  | Lsa_delivered of { shard : int; link : int; lsa_seq : int; lag : float }
  | Shard_setup of { conn : int; shards : int; attempt : int }
  | Shard_crankback of { conn : int; attempt : int; reason : string }
  | Stale_decision of { conn : int; age : float; divergent : bool }
  | What_if of { conn : int; src : int; dst : int; verdict : string }
  | Batch_done of { size : int; accepted : int }
  | Span_open of {
      trace : int;
      span : int;
      parent : int;
      cause : int;
      phase : string;
      conn : int;
      t0 : float;
    }
  | Span_close of { trace : int; span : int; dur : float }
  | Ring_dropped of { count : int }
  | Checkpoint_written of { seq : int; conns : int; bytes : int }
  | Wal_appended of { seq : int; op : string }
  | Crash_injected of { at_batch : int; wal_seq : int }
  | Recovery_replayed of { checkpoint_seq : int; replayed : int; conns : int }
  | Request_shed of { conn : int; reason : string; queued : int }

let kind_name = function
  | Request _ -> "request"
  | Admitted _ -> "admitted"
  | Rejected _ -> "rejected"
  | Primary_chosen _ -> "primary-chosen"
  | Backup_chosen _ -> "backup-chosen"
  | Spare_change _ -> "spare-change"
  | Flood_done _ -> "flood-done"
  | Cdp_sent _ -> "cdp-sent"
  | Cdp_dropped _ -> "cdp-dropped"
  | Cdp_candidate _ -> "cdp-candidate"
  | Failure_detected _ -> "failure-detected"
  | Report_hop _ -> "report-hop"
  | Backup_activated _ -> "backup-activated"
  | Backup_contended _ -> "backup-contended"
  | Connection_lost _ -> "connection-lost"
  | Rerouted _ -> "rerouted"
  | Reprotected _ -> "reprotected"
  | Teardown _ -> "teardown"
  | Message_dropped _ -> "message-dropped"
  | Retransmit _ -> "retransmit"
  | Flood_truncated _ -> "flood-truncated"
  | Reprotect_queued _ -> "reprotect-queued"
  | Group_failed _ -> "group-failed"
  | Chain_built _ -> "chain-built"
  | Chain_failover _ -> "chain-failover"
  | Chain_exhausted _ -> "chain-exhausted"
  | Lsa_originated _ -> "lsa-originated"
  | Lsa_delivered _ -> "lsa-delivered"
  | Shard_setup _ -> "shard-setup"
  | Shard_crankback _ -> "shard-crankback"
  | Stale_decision _ -> "stale-decision"
  | What_if _ -> "what-if"
  | Batch_done _ -> "batch-done"
  | Span_open _ -> "span-open"
  | Span_close _ -> "span-close"
  | Ring_dropped _ -> "ring-dropped"
  | Checkpoint_written _ -> "checkpoint-written"
  | Wal_appended _ -> "wal-appended"
  | Crash_injected _ -> "crash-injected"
  | Recovery_replayed _ -> "recovery-replayed"
  | Request_shed _ -> "request-shed"

let all_kinds =
  [
    "request"; "admitted"; "rejected"; "primary-chosen"; "backup-chosen";
    "spare-change"; "flood-done"; "cdp-sent"; "cdp-dropped"; "cdp-candidate";
    "failure-detected"; "report-hop"; "backup-activated"; "backup-contended";
    "connection-lost"; "rerouted"; "reprotected"; "teardown";
    "message-dropped"; "retransmit"; "flood-truncated"; "reprotect-queued";
    "group-failed"; "chain-built"; "chain-failover"; "chain-exhausted";
    "lsa-originated"; "lsa-delivered"; "shard-setup"; "shard-crankback";
    "stale-decision"; "what-if"; "batch-done"; "span-open"; "span-close";
    "ring-dropped"; "checkpoint-written"; "wal-appended"; "crash-injected";
    "recovery-replayed"; "request-shed";
  ]

type entry = { seq : int; time : float; event : event }

(* ---- ring buffer -------------------------------------------------------- *)

let default_capacity = 1 lsl 18

type t = {
  ring : entry option array;
  mutable appended : int; (* total ever appended; next seq *)
  mutable trace_epochs : int; (* next per-buffer trace-seed epoch *)
}

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Journal.create: capacity must be >= 1";
  { ring = Array.make capacity None; appended = 0; trace_epochs = 0 }

let capacity t = Array.length t.ring
let length t = min t.appended (Array.length t.ring)
let recorded t = t.appended
let dropped t = max 0 (t.appended - Array.length t.ring)

let append t ~time event =
  let cap = Array.length t.ring in
  t.ring.(t.appended mod cap) <- Some { seq = t.appended; time; event };
  t.appended <- t.appended + 1

let entries t =
  let cap = Array.length t.ring in
  let n = length t in
  let first = t.appended - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.appended <- 0;
  t.trace_epochs <- 0

(* ---- per-domain recording context --------------------------------------- *)

(* Each domain records into its own buffer with its own simulation clock, so
   pool workers never interleave entries; drivers that fan tasks out wrap
   each task in [capture] and re-append in task-index order, which is what
   makes journal output byte-identical across --jobs counts. *)
type ctx = {
  mutable buf : t;
  mutable sim_now : float;
  (* causal-tracing state: a dedicated RNG for trace ids (never shared with
     the simulation streams, so tracing cannot perturb behaviour), a span-id
     counter, and the ambient current-span stack used to thread causality
     across module boundaries without signature churn *)
  mutable c_rng : Rng.t;
  mutable c_next_span : int;
  mutable c_stack : (int * int) list; (* (trace, span) *)
}

let ctx_key =
  Domain.DLS.new_key (fun () ->
      {
        buf = create ();
        sim_now = 0.0;
        c_rng = Rng.create 0;
        c_next_span = 0;
        c_stack = [];
      })

let ctx () = Domain.DLS.get ctx_key

let set_now time = (ctx ()).sim_now <- time
let now () = (ctx ()).sim_now
let current () = (ctx ()).buf

let record event =
  if !on then
    let c = ctx () in
    append c.buf ~time:c.sim_now event

(* ---- causal spans -------------------------------------------------------- *)

module Causal = struct
  type span = { sp_trace : int; sp_id : int }

  let null = { sp_trace = -1; sp_id = -1 }
  let is_null s = s.sp_id < 0
  let trace_id s = s.sp_trace
  let span_id s = s.sp_id
  let of_ids ~trace ~span = { sp_trace = trace; sp_id = span }

  let reset ~seed =
    let c = ctx () in
    c.c_rng <- Rng.create seed;
    c.c_next_span <- 0;
    c.c_stack <- []

  (* Per-buffer, not process-global: a journal's bytes must depend only
     on the run that produced it, never on how many runs preceded it in
     the same process. *)
  let alloc_trace_epochs t n =
    if n < 0 then invalid_arg "Causal.alloc_trace_epochs: n must be >= 0";
    let base = t.trace_epochs in
    t.trace_epochs <- base + n;
    base

  (* Trace ids are the top 48 bits of a SplitMix64 draw: always a
     non-negative OCaml int, and collisions between independently seeded
     tasks are negligible. *)
  let fresh_trace c =
    Int64.to_int (Int64.shift_right_logical (Rng.next_int64 c.c_rng) 16)

  let fresh_span c =
    let id = c.c_next_span in
    c.c_next_span <- id + 1;
    id

  let open_span c ~trace ~parent ~cause ~conn ~t0 phase =
    let id = fresh_span c in
    append c.buf ~time:c.sim_now
      (Span_open
         {
           trace;
           span = id;
           parent;
           cause = (if is_null cause then -1 else cause.sp_id);
           phase;
           conn;
           t0 = (match t0 with Some t -> t | None -> c.sim_now);
         });
    { sp_trace = trace; sp_id = id }

  let root ?(cause = null) ?(conn = -1) ?t0 phase =
    if not !on then null
    else
      let c = ctx () in
      open_span c ~trace:(fresh_trace c) ~parent:(-1) ~cause ~conn ~t0 phase

  let child ?(cause = null) ?(conn = -1) ?t0 ~parent phase =
    if (not !on) || is_null parent then null
    else
      let c = ctx () in
      open_span c ~trace:parent.sp_trace ~parent:parent.sp_id ~cause ~conn ~t0
        phase

  let close s ~dur =
    if !on && not (is_null s) then
      record (Span_close { trace = s.sp_trace; span = s.sp_id; dur })

  let leaf ?cause ?conn ?t0 ~parent ~dur phase =
    let s = child ?cause ?conn ?t0 ~parent phase in
    close s ~dur

  let current () =
    if not !on then null
    else
      match (ctx ()).c_stack with
      | [] -> null
      | (tr, id) :: _ -> { sp_trace = tr; sp_id = id }

  let with_current s f =
    if (not !on) || is_null s then f ()
    else begin
      let c = ctx () in
      c.c_stack <- (s.sp_trace, s.sp_id) :: c.c_stack;
      let pop () =
        match c.c_stack with [] -> () | _ :: tl -> c.c_stack <- tl
      in
      match f () with
      | v ->
          pop ();
          v
      | exception e ->
          pop ();
          raise e
    end
end

let with_buffer buf f =
  let c = ctx () in
  let saved = c.buf in
  c.buf <- buf;
  match f () with
  | v ->
      c.buf <- saved;
      v
  | exception e ->
      c.buf <- saved;
      raise e

let capture ?capacity ?trace_seed f =
  let c = ctx () in
  let saved_now = c.sim_now in
  let saved_rng = c.c_rng in
  let saved_span = c.c_next_span in
  let saved_stack = c.c_stack in
  c.sim_now <- 0.0;
  (match trace_seed with
  | Some seed ->
      c.c_rng <- Rng.create seed;
      c.c_next_span <- 0;
      c.c_stack <- []
  | None -> ());
  let buf = create ?capacity () in
  let finish () =
    c.sim_now <- saved_now;
    (match trace_seed with
    | Some _ ->
        c.c_rng <- saved_rng;
        c.c_next_span <- saved_span;
        c.c_stack <- saved_stack
    | None -> ())
  in
  let captured () =
    let es = entries buf in
    (* Surface ring overwrite instead of silently handing back a window:
       downstream consumers (trace assembly in particular) must know the
       DAG may be missing its oldest spans. *)
    if dropped buf > 0 then
      { seq = 0; time = 0.0; event = Ring_dropped { count = dropped buf } }
      :: es
    else es
  in
  match with_buffer buf f with
  | v ->
      finish ();
      (v, captured ())
  | exception e ->
      finish ();
      raise e

let append_entries t es = List.iter (fun e -> append t ~time:e.time e.event) es

(* ---- JSONL writer -------------------------------------------------------- *)

let buf_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.add_char b '"'

(* JSON has no NaN/Infinity literals; journal floats are always finite, but
   clamp defensively like the telemetry sink does. *)
let buf_json_float b v =
  if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.17g" v)
  else Buffer.add_string b "null"

let field b ~first name writer =
  if not !first then Buffer.add_char b ',';
  first := false;
  buf_json_string b name;
  Buffer.add_char b ':';
  writer b

let int_field b first name v =
  field b ~first name (fun b -> Buffer.add_string b (string_of_int v))

let float_field b first name v = field b ~first name (fun b -> buf_json_float b v)

let str_field b first name v = field b ~first name (fun b -> buf_json_string b v)

let bool_field b first name v =
  field b ~first name (fun b -> Buffer.add_string b (string_of_bool v))

let int_list_field b first name vs =
  field b ~first name (fun b ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int v))
        vs;
      Buffer.add_char b ']')

let link_cost_list_field b first name lcs =
  field b ~first name (fun b ->
      Buffer.add_char b '[';
      List.iteri
        (fun i lc ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '{';
          let f = ref true in
          int_field b f "link" lc.lc_link;
          float_field b f "q" lc.lc_q;
          float_field b f "conflict" lc.lc_conflict;
          float_field b f "eps" lc.lc_eps;
          float_field b f "total" (link_cost_total lc);
          Buffer.add_char b '}')
        lcs;
      Buffer.add_char b ']')

let add_event_fields b first = function
  | Request { conn; src; dst; bw } ->
      int_field b first "conn" conn;
      int_field b first "src" src;
      int_field b first "dst" dst;
      int_field b first "bw" bw
  | Admitted { conn; backups; degraded } ->
      int_field b first "conn" conn;
      int_field b first "backups" backups;
      bool_field b first "degraded" degraded
  | Rejected { conn; reason } ->
      int_field b first "conn" conn;
      str_field b first "reason" reason
  | Primary_chosen { src; dst; bw; links } ->
      int_field b first "src" src;
      int_field b first "dst" dst;
      int_field b first "bw" bw;
      int_list_field b first "links" links
  | Backup_chosen { src; dst; bw; scheme; rank; links } ->
      int_field b first "src" src;
      int_field b first "dst" dst;
      int_field b first "bw" bw;
      str_field b first "scheme" scheme;
      int_field b first "rank" rank;
      link_cost_list_field b first "links" links
  | Spare_change { link; before; after } ->
      int_field b first "link" link;
      int_field b first "before" before;
      int_field b first "after" after
  | Flood_done { src; dst; messages; candidates; truncated } ->
      int_field b first "src" src;
      int_field b first "dst" dst;
      int_field b first "messages" messages;
      int_field b first "candidates" candidates;
      bool_field b first "truncated" truncated
  | Cdp_sent { node; hc } ->
      int_field b first "node" node;
      int_field b first "hc" hc
  | Cdp_dropped { node; reason } ->
      int_field b first "node" node;
      str_field b first "reason" reason
  | Cdp_candidate { hops; primary_ok } ->
      int_field b first "hops" hops;
      bool_field b first "primary_ok" primary_ok
  | Failure_detected { edge; victims } ->
      int_field b first "edge" edge;
      int_field b first "victims" victims
  | Report_hop { conn; hops; detection; report } ->
      int_field b first "conn" conn;
      int_field b first "hops" hops;
      float_field b first "detection_s" detection;
      float_field b first "report_s" report
  | Backup_activated { conn; index; detection; report; activation } ->
      int_field b first "conn" conn;
      int_field b first "index" index;
      float_field b first "detection_s" detection;
      float_field b first "report_s" report;
      float_field b first "activation_s" activation
  | Backup_contended { conn } -> int_field b first "conn" conn
  | Connection_lost { conn; latency } ->
      int_field b first "conn" conn;
      float_field b first "latency_s" latency
  | Rerouted { conn; latency; retries } ->
      int_field b first "conn" conn;
      float_field b first "latency_s" latency;
      int_field b first "retries" retries
  | Reprotected { conn; fresh } ->
      int_field b first "conn" conn;
      int_field b first "fresh" fresh
  | Teardown { conn } -> int_field b first "conn" conn
  | Message_dropped { cls; id } ->
      str_field b first "cls" cls;
      int_field b first "id" id
  | Retransmit { cls; conn; attempt } ->
      str_field b first "cls" cls;
      int_field b first "conn" conn;
      int_field b first "attempt" attempt
  | Flood_truncated { src; dst; messages } ->
      int_field b first "src" src;
      int_field b first "dst" dst;
      int_field b first "messages" messages
  | Reprotect_queued { conn; pending } ->
      int_field b first "conn" conn;
      int_field b first "pending" pending
  | Group_failed { group; edges; victims } ->
      int_field b first "group" group;
      int_field b first "edges" edges;
      int_field b first "victims" victims
  | Chain_built { src; dst; members; disjoint } ->
      int_field b first "src" src;
      int_field b first "dst" dst;
      int_field b first "members" members;
      int_field b first "disjoint" disjoint
  | Chain_failover { conn; depth; remaining } ->
      int_field b first "conn" conn;
      int_field b first "depth" depth;
      int_field b first "remaining" remaining
  | Chain_exhausted { conn } -> int_field b first "conn" conn
  | Lsa_originated { shard; link; lsa_seq } ->
      int_field b first "shard" shard;
      int_field b first "link" link;
      int_field b first "lsa_seq" lsa_seq
  | Lsa_delivered { shard; link; lsa_seq; lag } ->
      int_field b first "shard" shard;
      int_field b first "link" link;
      int_field b first "lsa_seq" lsa_seq;
      float_field b first "lag_s" lag
  | Shard_setup { conn; shards; attempt } ->
      int_field b first "conn" conn;
      int_field b first "shards" shards;
      int_field b first "attempt" attempt
  | Shard_crankback { conn; attempt; reason } ->
      int_field b first "conn" conn;
      int_field b first "attempt" attempt;
      str_field b first "reason" reason
  | Stale_decision { conn; age; divergent } ->
      int_field b first "conn" conn;
      float_field b first "age_s" age;
      bool_field b first "divergent" divergent
  | What_if { conn; src; dst; verdict } ->
      int_field b first "conn" conn;
      int_field b first "src" src;
      int_field b first "dst" dst;
      str_field b first "verdict" verdict
  | Batch_done { size; accepted } ->
      int_field b first "size" size;
      int_field b first "accepted" accepted
  | Span_open { trace; span; parent; cause; phase; conn; t0 } ->
      int_field b first "trace" trace;
      int_field b first "span" span;
      int_field b first "parent" parent;
      int_field b first "cause" cause;
      str_field b first "phase" phase;
      int_field b first "conn" conn;
      float_field b first "t0_s" t0
  | Span_close { trace; span; dur } ->
      int_field b first "trace" trace;
      int_field b first "span" span;
      float_field b first "dur_s" dur
  | Ring_dropped { count } -> int_field b first "count" count
  | Checkpoint_written { seq; conns; bytes } ->
      int_field b first "seq_wal" seq;
      int_field b first "conns" conns;
      int_field b first "bytes" bytes
  | Wal_appended { seq; op } ->
      int_field b first "seq_wal" seq;
      str_field b first "op" op
  | Crash_injected { at_batch; wal_seq } ->
      int_field b first "at_batch" at_batch;
      int_field b first "wal_seq" wal_seq
  | Recovery_replayed { checkpoint_seq; replayed; conns } ->
      int_field b first "checkpoint_seq" checkpoint_seq;
      int_field b first "replayed" replayed;
      int_field b first "conns" conns
  | Request_shed { conn; reason; queued } ->
      int_field b first "conn" conn;
      str_field b first "reason" reason;
      int_field b first "queued" queued

let entry_to_json e =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  let first = ref true in
  int_field b first "seq" e.seq;
  float_field b first "t" e.time;
  str_field b first "kind" (kind_name e.event);
  add_event_fields b first e.event;
  Buffer.add_char b '}';
  Buffer.contents b

(* A wrapped ring leads its export with a [ring-dropped] line (seq =
   total appended, so it never clashes with a retained entry's seq) — the
   reader side uses it to warn that the oldest events are gone. *)
let export_entries t =
  let es = entries t in
  if dropped t > 0 then
    { seq = recorded t; time = 0.0; event = Ring_dropped { count = dropped t } }
    :: es
  else es

let write_jsonl t oc =
  List.iter
    (fun e ->
      output_string oc (entry_to_json e);
      output_char oc '\n')
    (export_entries t)

let to_jsonl_string t =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (entry_to_json e);
      Buffer.add_char b '\n')
    (export_entries t);
  Buffer.contents b

(* ---- JSONL reader -------------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let json_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect ch =
    match peek () with
    | Some c when c = ch -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" ch)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape");
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              (* Journal output only escapes control characters, so plain
                 byte emission is enough for round-tripping our own files. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape %C" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let mem name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

type parsed = {
  p_seq : int;
  p_time : float;
  p_kind : string;
  p_fields : (string * json) list;
}

let parse_line line =
  match json_of_string line with
  | Error msg -> Error msg
  | Ok (Obj fields as j) -> (
      match (mem "seq" j, mem "t" j, mem "kind" j) with
      | Some (Num seq), Some (Num t), Some (Str kind) ->
          if Float.is_integer seq && seq >= 0.0 then
            if List.mem kind all_kinds then
              Ok { p_seq = int_of_float seq; p_time = t; p_kind = kind; p_fields = fields }
            else Error (Printf.sprintf "unknown event kind %S" kind)
          else Error "\"seq\" is not a non-negative integer"
      | _ -> Error "missing or ill-typed \"seq\"/\"t\"/\"kind\" field")
  | Ok _ -> Error "line is not a JSON object"

let fold_jsonl file ~init ~f =
  match open_in file with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let acc = ref init in
          let lineno = ref 0 in
          (try
             while true do
               let line = input_line ic in
               incr lineno;
               if String.trim line <> "" then
                 acc := f !acc !lineno (parse_line line)
             done
           with End_of_file -> ());
          Ok !acc)

(** Flight recorder: a typed, sim-time-stamped event journal covering the
    full DR-connection lifecycle.

    Aggregate metrics ({!Dr_telemetry.Telemetry}) answer "how many"; this
    journal answers {e why}: which backup D-LSR chose and what every
    candidate link's cost decomposed into (Q-overlap term, conflict term
    [Σc_{i,j}] or [‖APLV_i‖₁], ε tie-break), which links' spare pools
    [SC_i] moved and to what level, and where a failed connection's
    recovery latency was spent (detection, hop-by-hop reporting, backup
    activation — §4 of the paper).

    {b Recording model.}  Events go into the {e current buffer} — a
    bounded ring that overwrites its oldest entries, so a long run keeps a
    recent window plus a count of what it dropped.  Each domain has its own
    current buffer (domain-local state), so worker domains of a
    {!Dr_parallel.Pool} never interleave entries: a parallel driver wraps
    each task in {!capture} and re-appends the captured entries
    index-keyed from the coordinator, which makes the merged journal
    byte-identical for any [--jobs] count.

    {b Timestamps} are simulation time, not wall-clock: drivers install
    the clock by calling {!set_now} (the event engine stamps each
    dispatch; {!Drtp.Manager} stamps each scenario item), so journals are
    deterministic and diffable across runs and job counts.

    {b Cost.}  Every probe is guarded by the {!on} switch: disabled cost
    is one load and one branch, inside the same <= 2% budget the bench
    harness enforces for telemetry. *)

val on : bool ref
(** Master switch, exposed as a ref so hot paths can guard event
    construction with [if !Journal.on then ...].  Flip it with
    {!set_enabled}. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Events} *)

(** One link's backup-route cost, decomposed exactly as
    [Drtp.Routing.backup_link_cost] computes it: the total is
    [lc_q +. lc_conflict +. lc_eps] in that association order, so the
    parts sum {e bit-exactly} to the scheme's link cost. *)
type link_cost = {
  lc_link : int;
  lc_q : float;  (** Q-penalty for sharing a failure domain with the
                     primary or an earlier backup *)
  lc_conflict : float;
      (** scheme conflict term: [‖APLV_i‖₁] (P-LSR), [Σ c_{i,j}] (D-LSR)
          or the constant 1 (SPF) *)
  lc_eps : float;  (** ε per-hop tie-break (0 for SPF) *)
}

val link_cost_total : link_cost -> float
(** [lc_q +. lc_conflict +. lc_eps] — bit-identical to the routing cost. *)

type event =
  | Request of { conn : int; src : int; dst : int; bw : int }
  | Admitted of { conn : int; backups : int; degraded : bool }
  | Rejected of { conn : int; reason : string }
  | Primary_chosen of { src : int; dst : int; bw : int; links : int list }
  | Backup_chosen of {
      src : int;
      dst : int;
      bw : int;
      scheme : string;
      rank : int;  (** 0 = first backup, 1 = second, ... *)
      links : link_cost list;  (** per-link cost decomposition *)
    }
  | Spare_change of { link : int; before : int; after : int }
      (** the link's spare pool [SC_i] moved (reservation, multiplexing
          adjustment, release reclaim or activation steal) *)
  | Flood_done of {
      src : int;
      dst : int;
      messages : int;
      candidates : int;
      truncated : bool;
    }
  | Cdp_sent of { node : int; hc : int }
  | Cdp_dropped of { node : int; reason : string }
      (** reason is ["ttl"], ["loop"] or ["bandwidth"] *)
  | Cdp_candidate of { hops : int; primary_ok : bool }
  | Failure_detected of { edge : int; victims : int }
  | Report_hop of { conn : int; hops : int; detection : float; report : float }
      (** failure report travelling [hops] links back to the source:
          detection and reporting components of the recovery latency *)
  | Backup_activated of {
      conn : int;
      index : int;
      detection : float;
      report : float;
      activation : float;
    }  (** per-phase latency decomposition; their sum is the paper's
          service-disruption time *)
  | Backup_contended of { conn : int }
      (** no surviving backup could get its bandwidth *)
  | Connection_lost of { conn : int; latency : float }
  | Rerouted of { conn : int; latency : float; retries : int }
  | Reprotected of { conn : int; fresh : int }
  | Teardown of { conn : int }
  | Message_dropped of { cls : string; id : int }
      (** a control-plane message was lost to fault injection; [cls] is a
          {!Dr_faults.Faults.cls_name} tag, [id] the affected connection
          (or destination node for CDP copies) *)
  | Retransmit of { cls : string; conn : int; attempt : int }
      (** retransmission [attempt] (1-based) of a lost control message
          after its backoff timeout *)
  | Flood_truncated of { src : int; dst : int; messages : int }
      (** a bounded flood hit [cdp_cap] and stopped expanding — its
          candidate set is incomplete, which silently skews BF routing *)
  | Reprotect_queued of { conn : int; pending : int }
      (** step 4 left the connection with no backup; it joined the
          manager's reprotection queue ([pending] entries now queued) *)
  | Group_failed of { group : int; edges : int; victims : int }
      (** an SRLG group failed as one correlated event, taking [edges]
          member edges down; [victims] is the group's
          protected-connection exposure (primaries crossing it) *)
  | Chain_built of { src : int; dst : int; members : int; disjoint : int }
      (** a k-resilient backup chain was selected; [disjoint] of its
          [members] are fully SRLG-disjoint from the primary and from the
          chain's earlier members (the rest are graceful fallbacks) *)
  | Chain_failover of { conn : int; depth : int; remaining : int }
      (** a group failure activated chain member [depth] (0-based
          priority), leaving [remaining] registered members — the
          connection's residual resilience *)
  | Chain_exhausted of { conn : int }
      (** no chain member survived the correlated failure (or none could
          get bandwidth); the connection is lost or queued for
          reprotection *)
  | Lsa_originated of { shard : int; link : int; lsa_seq : int }
      (** a shard originated a sequence-numbered link-state advertisement
          for one of its own links ({!Dr_shard.Shard_sim}) *)
  | Lsa_delivered of { shard : int; link : int; lsa_seq : int; lag : float }
      (** an LSA reached shard [shard]; [lag] is the convergence lag —
          delivery time minus the instant the link's state first diverged
          from its last advertisement (0 for pure periodic refreshes) *)
  | Shard_setup of { conn : int; shards : int; attempt : int }
      (** an inter-shard setup handshake was launched across [shards]
          involved shards (attempt 1 = first try, >1 = after crankback) *)
  | Shard_crankback of { conn : int; attempt : int; reason : string }
      (** an inter-shard setup was rejected against ground truth (the
          source routed on a stale view); the source cranks back and
          re-routes with the piggybacked fresh state *)
  | Stale_decision of { conn : int; age : float; divergent : bool }
      (** an inter-shard admission decision was taken on a view whose
          remote entries averaged [age] seconds old; [divergent] marks
          the route differing from the omniscient route *)
  | What_if of { conn : int; src : int; dst : int; verdict : string }
      (** a speculative admission probe ran against a snapshot and was
          rolled back: the truth is unchanged, [verdict] records what the
          admission would have returned ("accepted", "no-primary",
          "no-backup") *)
  | Batch_done of { size : int; accepted : int }
      (** the batched admission path committed [size] requests, of which
          [accepted] were admitted *)
  | Span_open of {
      trace : int;  (** 48-bit trace id drawn from the causal RNG *)
      span : int;  (** span id, unique within the trace *)
      parent : int;  (** enclosing span id, [-1] for a trace root *)
      cause : int;
          (** causal-predecessor span id ([-1] for none): the span whose
              completion triggered this one without containing it — e.g. a
              crankback attempt caused by the rejected previous attempt *)
      phase : string;  (** phase label, e.g. ["recovery"], ["report"] *)
      conn : int;  (** connection id, [-1] when not connection-scoped *)
      t0 : float;
          (** logical start time.  Distinct from the entry's [t] stamp
              because analytic recovery computes a whole latency
              decomposition at one simulation instant: [t0]/[dur] carry the
              reconstructed timeline. *)
    }
  | Span_close of { trace : int; span : int; dur : float }
      (** closes [span]; [dur] is the span's {e exact} duration as the
          emitting code computed it, so per-phase durations re-folded in
          emission order sum bit-exactly to the composed latency *)
  | Ring_dropped of { count : int }
      (** the bounded ring overwrote [count] entries before this export:
          the journal's oldest events (and any spans they carried) are
          gone.  Synthesised at export time, never recorded live. *)
  | Checkpoint_written of { seq : int; conns : int; bytes : int }
      (** the persistence layer serialised a checkpoint covering WAL
          records up to [seq]; [conns] connections, [bytes] on disk *)
  | Wal_appended of { seq : int; op : string }
      (** a write-ahead record was durably appended ({e sampled} — the
          persistence layer journals every [wal_sample]-th append, so the
          journal carries the WAL's progress without doubling it) *)
  | Crash_injected of { at_batch : int; wal_seq : int }
      (** fault injection killed the manager at a batch boundary; the WAL
          had [wal_seq] records — everything after the last checkpoint
          must come back through replay *)
  | Recovery_replayed of { checkpoint_seq : int; replayed : int; conns : int }
      (** recovery restored the checkpoint at [checkpoint_seq] and
          replayed [replayed] WAL-tail records through [Manager.apply],
          leaving [conns] live connections *)
  | Request_shed of { conn : int; reason : string; queued : int }
      (** overload control rejected the request without admission work;
          [reason] is ["queue-full"] or ["deadline"], [queued] the
          admission-queue depth at the decision *)

val kind_name : event -> string
(** Stable kebab-case kind tag, e.g. ["backup-chosen"]. *)

val all_kinds : string list
(** The documented set of kind tags — the schema contract CI checks. *)

type entry = { seq : int; time : float; event : event }
(** [seq] numbers appends into one buffer (monotone, survives ring
    overwrite so gaps reveal drops); [time] is the simulation time
    current when the event was recorded. *)

(** {1 Buffers} *)

type t
(** A bounded ring buffer of entries. *)

val create : ?capacity:int -> unit -> t
(** Default capacity {!default_capacity}. *)

val default_capacity : int

val capacity : t -> int
val length : t -> int

val recorded : t -> int
(** Total entries ever appended, including overwritten ones. *)

val dropped : t -> int
(** [recorded - length] once the ring has wrapped. *)

val entries : t -> entry list
(** Oldest first. *)

val clear : t -> unit

(** {1 Recording} *)

val record : event -> unit
(** Append to the current domain's buffer, stamped with {!now}.  No-op
    while disabled. *)

val set_now : float -> unit
(** Install the simulation time used to stamp subsequent events (per
    domain). *)

val now : unit -> float

val current : unit -> t
(** The calling domain's current buffer. *)

(** {1 Causal spans}

    A lightweight causal-context layer over the journal: spans are
    [Span_open]/[Span_close] event pairs carrying a trace id, a parent
    edge (containment) and an optional cause edge (triggering), from
    which {!Dr_trace.Trace} reconstructs per-connection DAGs and critical
    paths.

    {b Determinism.}  Trace ids are drawn from a dedicated per-domain
    SplitMix64 stream (never shared with simulation RNGs, so tracing is
    behaviour-neutral), and span ids count up from a per-context counter.
    Parallel drivers hand each task a distinct [trace_seed] (via
    {!capture}) in task-index order, which keeps merged journals
    byte-identical for any [--jobs] count.

    {b Cost.}  Every operation is a no-op returning {!Causal.null} while
    the journal is disabled — same one-load-one-branch budget as
    {!record}. *)

module Causal : sig
  type span
  (** A handle to an open span: trace id + span id.  Copyable, cheap. *)

  val null : span
  (** The absent span: all operations on it are no-ops, and passing it as
      [?cause] means "no causal predecessor". *)

  val is_null : span -> bool
  val trace_id : span -> int
  val span_id : span -> int

  val of_ids : trace:int -> span:int -> span
  (** Rebuild a span handle from serialised (trace, span) ids — the
      persistence layer's checkpoint restore uses it so a recovered
      manager closes the {e same} spans the uncrashed run would.
      [of_ids ~trace:(-1) ~span:(-1)] is {!null}. *)

  val reset : seed:int -> unit
  (** Re-seed the calling domain's causal context (trace-id RNG, span
      counter, ambient stack).  Unpooled drivers call this once per run;
      pooled tasks get it implicitly from [capture ~trace_seed]. *)

  val alloc_trace_epochs : t -> int -> int
  (** [alloc_trace_epochs buf n] reserves a block of [n] distinct
      trace-seed epochs on the coordinator buffer [buf] and returns the
      first: give task [i] seed [base + i] (before any parallel
      dispatch) and the merged journal is independent of the job count.
      The counter is per-buffer — a journal's bytes depend only on the
      run that produced it, not on earlier runs in the same process —
      and advances across successive fan-outs into the same buffer, so
      seed streams never repeat within a journal.  {!clear} resets
      it. *)

  val root : ?cause:span -> ?conn:int -> ?t0:float -> string -> span
  (** Open a root span of a fresh trace.  [t0] defaults to {!now}.
      Returns {!null} (and records nothing) while disabled. *)

  val child : ?cause:span -> ?conn:int -> ?t0:float -> parent:span -> string -> span
  (** Open a span under [parent] (same trace).  {!null} parent begets a
      {!null} child, so call sites need no enabled-check of their own. *)

  val leaf : ?cause:span -> ?conn:int -> ?t0:float -> parent:span -> dur:float -> string -> unit
  (** [child] + immediate {!close}: a span with no children of its own. *)

  val close : span -> dur:float -> unit
  (** Close the span with its exact duration, as computed by the caller
      — the assembler folds these durations verbatim, preserving
      bit-exactness against composed latencies. *)

  val current : unit -> span
  (** Innermost span pushed by {!with_current} on this domain ({!null}
      when none): lets a callee (e.g. the flooding layer) attach children
      to its caller's span without a signature change. *)

  val with_current : span -> (unit -> 'a) -> 'a
  (** Run the thunk with the span pushed as the ambient {!current}
      (popped on exit, also on exception). *)
end

val with_buffer : t -> (unit -> 'a) -> 'a
(** Run the thunk with [t] installed as the current buffer (restored on
    exit, also on exception). *)

val capture : ?capacity:int -> ?trace_seed:int -> (unit -> 'a) -> 'a * entry list
(** Run the thunk against a fresh buffer with simulation time reset to 0,
    and return what it recorded.  The worker-side half of deterministic
    parallel journalling: the coordinator re-appends each task's entries
    in task-index order with {!append_entries}.

    [trace_seed] additionally resets the causal context ({!Causal.reset})
    for the thunk's duration and restores it after — give each task a
    distinct, task-indexed seed (a per-cell seed or a
    {!Causal.alloc_trace_epochs} block) and span ids in the merged
    journal are byte-identical for any job count.

    If the thunk wraps its private ring, the returned list is prefixed
    with a [Ring_dropped] entry so the overwrite is not silent. *)

val append_entries : t -> entry list -> unit
(** Re-append captured entries (coordinator side).  Sequence numbers are
    re-stamped by the receiving buffer; timestamps are kept. *)

(** {1 JSONL export} *)

val entry_to_json : entry -> string
(** One JSON object, no trailing newline:
    [{"seq":N,"t":<sim-s>,"kind":"...",...}] with event payload fields
    inlined at top level. *)

val write_jsonl : t -> out_channel -> unit
(** One line per retained entry, oldest first.  A buffer that wrapped its
    ring leads with a synthetic [ring-dropped] line (seq = total appended)
    announcing how many entries were overwritten. *)

val to_jsonl_string : t -> string

(** {1 JSONL reader}

    A minimal self-contained JSON parser (the repo carries no JSON
    dependency), enough to read journals back for [drtp_sim inspect] and
    the CI schema check. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_of_string : string -> (json, string) result

val mem : string -> json -> json option
(** Field lookup in an [Obj]. *)

type parsed = {
  p_seq : int;
  p_time : float;
  p_kind : string;
  p_fields : (string * json) list;
}

val parse_line : string -> (parsed, string) result
(** Parse one journal line and validate the envelope: an object carrying
    integer ["seq"], numeric ["t"] and a ["kind"] drawn from
    {!all_kinds}. *)

val fold_jsonl :
  string -> init:'a -> f:('a -> int -> (parsed, string) result -> 'a) -> ('a, string) result
(** Fold [f acc lineno result] over every line of a journal file;
    [Error] only for I/O failure. *)

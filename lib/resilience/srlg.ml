module Graph = Dr_topo.Graph
module Sm = Dr_rng.Splitmix64

type t = {
  edge_count : int;
  names : string array; (* per group *)
  members : int array array; (* per group: sorted member edges *)
  owners : int array array; (* per edge: sorted containing groups *)
  singleton : bool;
}

let edge_count t = t.edge_count
let group_count t = Array.length t.members
let is_singleton t = t.singleton

let group_name t g = t.names.(g)
let edges_of_group_arr t g = t.members.(g)
let edges_of_group t g = Array.to_list t.members.(g)
let groups_of_edge_arr t e = t.owners.(e)
let groups_of_edge t e = Array.to_list t.owners.(e)

let groups_of_edges t edges =
  if t.singleton then edges
  else
    List.concat_map (fun e -> groups_of_edge t e) edges
    |> List.sort_uniq compare

let mean_group_size t =
  let groups = group_count t in
  if groups = 0 then 0.0
  else
    let total = Array.fold_left (fun acc m -> acc + Array.length m) 0 t.members in
    float_of_int total /. float_of_int groups

let singletons ~edge_count =
  if edge_count < 0 then invalid_arg "Srlg.singletons: negative edge count";
  {
    edge_count;
    names = Array.init edge_count (Printf.sprintf "edge-%d");
    members = Array.init edge_count (fun e -> [| e |]);
    owners = Array.init edge_count (fun e -> [| e |]);
    singleton = true;
  }

let create ~edge_count ~groups =
  if edge_count < 0 then invalid_arg "Srlg.create: negative edge count";
  let explicit =
    List.map
      (fun (name, edges) ->
        let edges = List.sort_uniq compare edges in
        if edges = [] then
          invalid_arg (Printf.sprintf "Srlg.create: group %S is empty" name);
        List.iter
          (fun e ->
            if e < 0 || e >= edge_count then
              invalid_arg
                (Printf.sprintf "Srlg.create: group %S: edge %d out of range"
                   name e))
          edges;
        (name, Array.of_list edges))
      groups
  in
  let covered = Array.make edge_count false in
  List.iter
    (fun (_, m) -> Array.iter (fun e -> covered.(e) <- true) m)
    explicit;
  let implicit = ref [] in
  for e = edge_count - 1 downto 0 do
    if not covered.(e) then
      implicit := (Printf.sprintf "edge-%d" e, [| e |]) :: !implicit
  done;
  let all = Array.of_list (explicit @ !implicit) in
  let names = Array.map fst all and members = Array.map snd all in
  let owner_lists = Array.make edge_count [] in
  (* Reverse group order so each edge's owner list comes out ascending. *)
  for g = Array.length members - 1 downto 0 do
    Array.iter (fun e -> owner_lists.(e) <- g :: owner_lists.(e)) members.(g)
  done;
  let owners = Array.map Array.of_list owner_lists in
  let singleton =
    Array.length members = edge_count
    && Array.for_all Fun.id (Array.mapi (fun g m -> m = [| g |]) members)
  in
  { edge_count; names; members; owners; singleton }

let pp ppf t =
  Format.fprintf ppf "@[<v>srlg: %d groups over %d edges (mean size %.2f)@,"
    (group_count t) t.edge_count (mean_group_size t);
  Array.iteri
    (fun g m ->
      Format.fprintf ppf "%3d %-12s {%s}@," g t.names.(g)
        (String.concat "," (List.map string_of_int (Array.to_list m))))
    t.members;
  Format.fprintf ppf "@]"

(* ---- generators ---------------------------------------------------------- *)

let random_partition ~seed ~edge_count ~mean_size =
  if edge_count < 0 then invalid_arg "Srlg.random_partition: negative edge count";
  if mean_size <= 1 then singletons ~edge_count
  else begin
    let rng = Sm.create seed in
    let perm = Array.init edge_count Fun.id in
    for i = edge_count - 1 downto 1 do
      let j = Sm.int rng (i + 1) in
      let tmp = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- tmp
    done;
    let groups = ref [] in
    let i = ref 0 and gi = ref 0 in
    while !i < edge_count do
      let size = 1 + Sm.int rng ((2 * mean_size) - 1) in
      let size = min size (edge_count - !i) in
      let members = Array.to_list (Array.sub perm !i size) in
      groups := (Printf.sprintf "srlg-%d" !gi, members) :: !groups;
      incr gi;
      i := !i + size
    done;
    create ~edge_count ~groups:(List.rev !groups)
  end

let random_overlay ~seed ~edge_count ~extra ~size =
  if size > edge_count then
    invalid_arg "Srlg.random_overlay: group size exceeds edge count";
  if size <= 0 then invalid_arg "Srlg.random_overlay: group size must be positive";
  let rng = Sm.create seed in
  let base = List.init edge_count (fun e -> (Printf.sprintf "edge-%d" e, [ e ])) in
  let overlay =
    List.init extra (fun i ->
        (* Partial Fisher–Yates: the first [size] slots of a fresh
           permutation are a uniform distinct sample. *)
        let perm = Array.init edge_count Fun.id in
        for j = 0 to size - 1 do
          let k = j + Sm.int rng (edge_count - j) in
          let tmp = perm.(j) in
          perm.(j) <- perm.(k);
          perm.(k) <- tmp
        done;
        (Printf.sprintf "overlay-%d" i, Array.to_list (Array.sub perm 0 size)))
  in
  create ~edge_count ~groups:(base @ overlay)

let edge_midpoint graph coords e =
  let u, v = Graph.edge_endpoints graph e in
  let ux, uy = coords.(u) and vx, vy = coords.(v) in
  ((ux +. vx) /. 2.0, (uy +. vy) /. 2.0)

let regional_grid ~graph ~cells =
  if cells <= 0 then invalid_arg "Srlg.regional_grid: cells must be positive";
  match Graph.coords graph with
  | None -> invalid_arg "Srlg.regional_grid: graph has no coordinates"
  | Some coords ->
      let edge_count = Graph.edge_count graph in
      let tile x = min (cells - 1) (max 0 (int_of_float (x *. float_of_int cells))) in
      let buckets = Hashtbl.create 16 in
      (* Edges visited in id order, so each bucket's member list is sorted. *)
      Graph.iter_edges graph (fun e ->
          let mx, my = edge_midpoint graph coords e in
          let key = (tile my, tile mx) in
          Hashtbl.replace buckets key
            (e :: Option.value ~default:[] (Hashtbl.find_opt buckets key)));
      let groups =
        Hashtbl.fold (fun k es acc -> (k, List.rev es) :: acc) buckets []
        |> List.sort compare
        |> List.map (fun ((row, col), es) ->
               (Printf.sprintf "cell-%d-%d" row col, es))
      in
      create ~edge_count ~groups

let merge_groups t a b =
  let groups = group_count t in
  if a = b then invalid_arg "Srlg.merge_groups: cannot merge a group with itself";
  if a < 0 || a >= groups || b < 0 || b >= groups then
    invalid_arg "Srlg.merge_groups: group id out of range";
  let merged =
    List.sort_uniq compare (edges_of_group t a @ edges_of_group t b)
  in
  let rebuilt = ref [] in
  for g = groups - 1 downto 0 do
    if g = a then rebuilt := (t.names.(a), merged) :: !rebuilt
    else if g <> b then rebuilt := (t.names.(g), edges_of_group t g) :: !rebuilt
  done;
  create ~edge_count:t.edge_count ~groups:!rebuilt

(* ---- correlated-failure schedules ---------------------------------------- *)

type burst = {
  fail_at : float;
  group : int option;
  edges : int list;
  repair_at : float;
}

(* Shared scheduler core, mirroring {!Dr_faults.Faults.flap_schedule}:
   Poisson arrivals; each arrival asks [pick] for a victim edge set among
   the currently-alive edges, and a burst's edges stay ineligible until its
   exponential repair completes.  [pick] sees the rng so every draw stays
   on the single seeded stream. *)
let schedule ~seed ~edge_count ~mtbf ~mttr ~after ~horizon ~pick =
  if mtbf <= 0.0 then invalid_arg "Srlg: mtbf must be positive";
  if mttr <= 0.0 then invalid_arg "Srlg: mttr must be positive";
  if edge_count <= 0 then []
  else begin
    let rng = Sm.create seed in
    let repair_at = Array.make edge_count neg_infinity in
    let alive e t = repair_at.(e) <= t in
    let events = ref [] in
    let t = ref (after +. Dr_rng.Dist.exponential rng ~rate:(1.0 /. mtbf)) in
    while !t < horizon do
      (match pick rng ~alive:(fun e -> alive e !t) with
      | None -> ()
      | Some (group, edges) ->
          let repair = !t +. Dr_rng.Dist.exponential rng ~rate:(1.0 /. mttr) in
          List.iter (fun e -> repair_at.(e) <- repair) edges;
          events := { fail_at = !t; group; edges; repair_at = repair } :: !events);
      t := !t +. Dr_rng.Dist.exponential rng ~rate:(1.0 /. mtbf)
    done;
    List.rev !events
  end

let group_schedule ~seed t ~mtbf ~mttr ?(after = 0.0) ~horizon () =
  let groups = group_count t in
  let pick rng ~alive =
    let eligible =
      List.filter
        (fun g -> Array.for_all alive t.members.(g))
        (List.init groups Fun.id)
    in
    match eligible with
    | [] -> None
    | _ ->
        let g = List.nth eligible (Sm.int rng (List.length eligible)) in
        Some (Some g, edges_of_group t g)
  in
  schedule ~seed ~edge_count:t.edge_count ~mtbf ~mttr ~after ~horizon ~pick

let regional_schedule ~seed ~graph ~radius ~mtbf ~mttr ?(after = 0.0) ~horizon () =
  if radius <= 0.0 then invalid_arg "Srlg.regional_schedule: radius must be positive";
  match Graph.coords graph with
  | None -> invalid_arg "Srlg.regional_schedule: graph has no coordinates"
  | Some coords ->
      let edge_count = Graph.edge_count graph in
      let midpoints =
        Array.init edge_count (fun e -> edge_midpoint graph coords e)
      in
      let pick rng ~alive =
        let cx = Sm.float rng 1.0 and cy = Sm.float rng 1.0 in
        let hit = ref [] in
        for e = edge_count - 1 downto 0 do
          let mx, my = midpoints.(e) in
          let dx = mx -. cx and dy = my -. cy in
          if alive e && (dx *. dx) +. (dy *. dy) <= radius *. radius then
            hit := e :: !hit
        done;
        match !hit with [] -> None | edges -> Some (None, edges)
      in
      schedule ~seed ~edge_count ~mtbf ~mttr ~after ~horizon ~pick

let merge_schedules ~edge_count a b =
  (* Stable merge by fail time ([a] wins ties), then a linear pass that
     drops bursts colliding with an edge still down from a kept burst. *)
  let rec merge xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs', y :: ys' ->
        if x.fail_at <= y.fail_at then x :: merge xs' ys
        else y :: merge xs ys'
  in
  let repair_at = Array.make (max 1 edge_count) neg_infinity in
  List.filter
    (fun burst ->
      let ok =
        List.for_all
          (fun e ->
            if e < 0 || e >= edge_count then
              invalid_arg "Srlg.merge_schedules: edge out of range";
            repair_at.(e) <= burst.fail_at)
          burst.edges
      in
      if ok then
        List.iter (fun e -> repair_at.(e) <- burst.repair_at) burst.edges;
      ok)
    (merge a b)

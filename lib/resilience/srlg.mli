(** Shared-risk link groups (SRLGs) and correlated-failure schedules.

    The paper evaluates independent single-link failures only; real
    failures are correlated — a conduit cut, a line-card death or a
    regional event takes several edges down at once.  An SRLG model names
    these failure domains: each group is a set of undirected edges assumed
    to fail together, and one edge may sit in several groups (a fibre can
    share a duct on one segment and a bridge on another).

    Every edge is covered: edges not mentioned by any explicit group get
    an implicit singleton group, so the {e singleton model} — exactly one
    group per edge — reproduces the paper's independent-failure world and
    is the identity baseline the rest of the stack is gated against
    (k=1 + singletons must be bit-identical to the pre-SRLG behaviour).

    Group ids are dense, starting at 0, in construction order (explicit
    groups first, implicit singletons after, in edge order), so higher
    layers can use plain arrays indexed by group id — the same shape
    {!Dr_topo.Graph} gives links and edges. *)

type t

(** {1 Construction} *)

val create : edge_count:int -> groups:(string * int list) list -> t
(** Build a model over [edge_count] edges from named groups.  Member
    lists are deduplicated and sorted; raises [Invalid_argument] on an
    empty group or an out-of-range edge.  Edges covered by no group get
    implicit singleton groups (named ["edge-<e>"]) appended in edge
    order. *)

val singletons : edge_count:int -> t
(** One group per edge — the paper's independent single-link failure
    model.  [is_singleton (singletons ~edge_count)] holds. *)

val is_singleton : t -> bool
(** True iff group [i] is exactly [{i}] for every group — the model under
    which every SRLG-generalised computation must degrade to today's
    per-edge behaviour. *)

(** {1 Accessors} *)

val edge_count : t -> int
val group_count : t -> int

val group_name : t -> int -> string

val edges_of_group : t -> int -> int list
(** Member edges, sorted ascending. *)

val edges_of_group_arr : t -> int -> int array
(** Member edges as the internal array (do not mutate). *)

val groups_of_edge : t -> int -> int list
(** Groups containing the edge, sorted ascending; never empty. *)

val groups_of_edge_arr : t -> int -> int array
(** Internal array form of {!groups_of_edge} (do not mutate) — the
    allocation-free read the routing fast path uses. *)

val groups_of_edges : t -> int list -> int list
(** Sorted, deduplicated union of {!groups_of_edge} over an edge list —
    the failure domains that can take a route down.  Under the singleton
    model this returns the input list itself (callers pass sorted edge
    LSETs), which is what keeps {!is_singleton} states bit-identical to
    the historical per-edge bookkeeping. *)

val mean_group_size : t -> float

val pp : Format.formatter -> t -> unit

(** {1 Generators} *)

val random_partition : seed:int -> edge_count:int -> mean_size:int -> t
(** Random disjoint SRLG assignment: a seeded permutation of the edges is
    cut into runs of uniform random size in [[1, 2·mean_size-1]] (mean
    [mean_size]).  [mean_size <= 1] returns {!singletons} exactly, so the
    density knob's low end is the identity model.  Deterministic in
    [seed]. *)

val random_overlay : seed:int -> edge_count:int -> extra:int -> size:int -> t
(** Singletons plus [extra] random overlapping groups of [size] distinct
    edges each — exercises edges belonging to several risk groups.
    Raises [Invalid_argument] if [size] exceeds [edge_count]. *)

val regional_grid : graph:Dr_topo.Graph.t -> cells:int -> t
(** Geographic SRLGs on an embedded topology: the unit square is cut into
    [cells × cells] tiles and every edge joins the group of the tile its
    midpoint falls in (groups named ["cell-<row>-<col>"]; empty tiles are
    dropped).  Raises [Invalid_argument] when the graph carries no
    coordinates. *)

val merge_groups : t -> int -> int -> t
(** [merge_groups t a b] coarsens the model: group [b]'s edges join group
    [a] and [b] disappears (ids above [b] shift down).  Spare
    requirements are monotone under this operation — the property test
    behind the generalised multiplexing rule.  Raises [Invalid_argument]
    on equal or out-of-range ids. *)

(** {1 Correlated-failure schedules}

    Seeded timelines of whole-group and regional failure events, the
    correlated counterparts of {!Dr_faults.Faults.flap_schedule}.  Bursts
    never overlap on an edge: a group (or disc) is only eligible while
    all its member edges are up, mirroring the single-link scheduler. *)

type burst = {
  fail_at : float;
  group : int option;  (** the failed group, or [None] for regional events *)
  edges : int list;  (** the edges the burst takes down, sorted *)
  repair_at : float;
}

val group_schedule :
  seed:int ->
  t ->
  mtbf:float ->
  mttr:float ->
  ?after:float ->
  horizon:float ->
  unit ->
  burst list
(** Poisson arrivals (network-wide mean inter-event time [mtbf]) each
    failing one uniformly-chosen fully-alive group for an exponential
    outage of mean [mttr].  Deterministic in [seed]; sorted by
    [fail_at]. *)

val regional_schedule :
  seed:int ->
  graph:Dr_topo.Graph.t ->
  radius:float ->
  mtbf:float ->
  mttr:float ->
  ?after:float ->
  horizon:float ->
  unit ->
  burst list
(** Regional events on an embedded topology: each arrival draws a disc
    center uniformly in the unit square and fails every currently-alive
    edge whose midpoint lies within [radius].  Arrivals hitting no alive
    edge are skipped.  Raises [Invalid_argument] without coordinates. *)

val merge_schedules : edge_count:int -> burst list -> burst list -> burst list
(** Merge two schedules by [fail_at] (stable: on ties, bursts from the
    first argument come first), dropping any burst that touches an edge
    still down from an earlier kept burst — composing group or regional
    events with the existing single-link flap schedules without ever
    double-failing an edge. *)

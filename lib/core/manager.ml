module J = Dr_obs.Journal
module C = Dr_obs.Journal.Causal
module Tm = Dr_telemetry.Telemetry

let c_reprotect_queued = Tm.Counter.make "manager.reprotect.queued"
let c_reprotect_drained = Tm.Counter.make "manager.reprotect.drained"

type stats = {
  mutable requests : int;
  mutable accepted : int;
  mutable rejected_no_primary : int;
  mutable rejected_no_backup : int;
  mutable released : int;
  mutable degraded : int;
  mutable unprotected : int;
}

(* Reprotection queue: connections a failure left without any backup wait
   here for releases/repairs to free resources, in FIFO order. *)
type reprotect_entry = {
  re_id : int;
  re_scheme : Routing.scheme;
  re_count : int;
  re_since : float;
  re_span : C.span;
      (* open [reprotect-dwell] span, closed when the entry settles with
         the exact unprotected dwell time *)
}

type reprotect_stats = {
  mutable queued : int;
  mutable drained : int;
  mutable attempts : int;
  mutable abandoned : int;
  mutable unprotected_time : float;
}

type reprotect_router =
  Routing.scheme ->
  Net_state.t ->
  primary:Dr_topo.Path.t ->
  bw:int ->
  existing:Dr_topo.Path.t list ->
  count:int ->
  Dr_topo.Path.t list

let default_reprotect_router scheme state ~primary ~bw ~existing ~count =
  Routing.additional_backups scheme state ~primary ~bw ~existing ~count

let chain_reprotect_router scheme state ~primary ~bw ~existing ~count =
  Routing.additional_chain_members scheme state ~primary ~bw ~existing ~count
  |> List.map (fun m -> m.Routing.cm_path)

type t = {
  state : Net_state.t;
  route : Routing.route_fn;
  stats : stats;
  mutable reprotect : reprotect_entry list;
  mutable reprotect_router : reprotect_router;
  rstats : reprotect_stats;
}

let make ~state ~route =
  {
    state;
    route;
    stats =
      {
        requests = 0;
        accepted = 0;
        rejected_no_primary = 0;
        rejected_no_backup = 0;
        released = 0;
        degraded = 0;
        unprotected = 0;
      };
    reprotect = [];
    reprotect_router = default_reprotect_router;
    rstats =
      {
        queued = 0;
        drained = 0;
        attempts = 0;
        abandoned = 0;
        unprotected_time = 0.0;
      };
  }

let create ~graph ~capacity ~spare_policy ~route =
  make ~state:(Net_state.create ~graph ~capacity ~spare_policy) ~route

let create_srlg ~srlg ~graph ~capacity ~spare_policy ~route =
  make ~state:(Net_state.create_srlg ~srlg ~graph ~capacity ~spare_policy) ~route

let set_reprotect_router t f = t.reprotect_router <- f

let state t = t.state
let stats t = t.stats
let route_fn t = t.route
let reprotect_stats t = t.rstats
let reprotect_pending t = List.length t.reprotect

(* ---- snapshot / rollback -------------------------------------------------
   A manager snapshot is a {!Net_state.Snapshot} plus the manager's own
   mutable truth: admission statistics, the reprotection queue (entries are
   immutable records, so the list is shared) and its counters.  Rollback
   restores all of it in place, so a speculative admission leaves no trace
   in the stats a later verdict is derived from. *)

type snapshot = {
  mutable sn_state : Net_state.Snapshot.t;
  sn_stats : stats;
  mutable sn_reprotect : reprotect_entry list;
  sn_rstats : reprotect_stats;
}

let copy_stats_into (dst : stats) (src : stats) =
  dst.requests <- src.requests;
  dst.accepted <- src.accepted;
  dst.rejected_no_primary <- src.rejected_no_primary;
  dst.rejected_no_backup <- src.rejected_no_backup;
  dst.released <- src.released;
  dst.degraded <- src.degraded;
  dst.unprotected <- src.unprotected

let copy_rstats_into (dst : reprotect_stats) (src : reprotect_stats) =
  dst.queued <- src.queued;
  dst.drained <- src.drained;
  dst.attempts <- src.attempts;
  dst.abandoned <- src.abandoned;
  dst.unprotected_time <- src.unprotected_time

let snapshot ?into t =
  match into with
  | Some s ->
      (* [capture ~into] hands back a fresh snapshot on a shape mismatch
         (buffer from another topology) — keep whichever one holds the
         captured data. *)
      s.sn_state <- Net_state.Snapshot.capture ~into:s.sn_state t.state;
      copy_stats_into s.sn_stats t.stats;
      s.sn_reprotect <- t.reprotect;
      copy_rstats_into s.sn_rstats t.rstats;
      s
  | None ->
      {
        sn_state = Net_state.Snapshot.capture t.state;
        sn_stats = { t.stats with requests = t.stats.requests };
        sn_reprotect = t.reprotect;
        sn_rstats = { t.rstats with queued = t.rstats.queued };
      }

let rollback t s =
  Net_state.Snapshot.rollback t.state s.sn_state;
  copy_stats_into t.stats s.sn_stats;
  t.reprotect <- s.sn_reprotect;
  copy_rstats_into t.rstats s.sn_rstats

(* ---- serialization (checkpoint) ------------------------------------------
   The manager's mutable truth beyond the {!Net_state}: admission stats,
   reprotection counters, and the reprotection queue.  Queue entries carry
   their open dwell span's (trace, span) ids so a recovered manager closes
   the {e same} spans an uncrashed run would — keeping post-recovery
   journal bytes identical. *)

module Serial = struct
  type reprotect_repr = {
    rr_id : int;
    rr_scheme : string;
    rr_count : int;
    rr_since : float;
    rr_trace : int;
    rr_span : int;
  }

  type repr = {
    m_state : Net_state.Serial.repr;
    m_stats : stats;
    m_rstats : reprotect_stats;
    m_reprotect : reprotect_repr list;
  }

  let dump t =
    {
      m_state = Net_state.Serial.dump t.state;
      m_stats = { t.stats with requests = t.stats.requests };
      m_rstats = { t.rstats with queued = t.rstats.queued };
      m_reprotect =
        List.map
          (fun e ->
            {
              rr_id = e.re_id;
              rr_scheme = Routing.scheme_name e.re_scheme;
              rr_count = e.re_count;
              rr_since = e.re_since;
              rr_trace = C.trace_id e.re_span;
              rr_span = C.span_id e.re_span;
            })
          t.reprotect;
    }

  let restore t (r : repr) =
    Net_state.Serial.restore t.state r.m_state;
    copy_stats_into t.stats r.m_stats;
    copy_rstats_into t.rstats r.m_rstats;
    t.reprotect <-
      List.map
        (fun e ->
          let scheme =
            match Routing.scheme_of_string e.rr_scheme with
            | Ok s -> s
            | Error msg -> invalid_arg ("Manager.Serial.restore: " ^ msg)
          in
          {
            re_id = e.rr_id;
            re_scheme = scheme;
            re_count = e.rr_count;
            re_since = e.rr_since;
            re_span = C.of_ids ~trace:e.rr_trace ~span:e.rr_span;
          })
        r.m_reprotect
end

let queue_reprotect t ~id ~scheme ?(backup_count = 1) ~now () =
  match Net_state.find t.state id with
  | None -> ()
  | Some conn ->
      if conn.backups = [] && not (List.exists (fun e -> e.re_id = id) t.reprotect)
      then begin
        let span =
          if !J.on then C.root ~conn:id ~t0:now "reprotect-dwell" else C.null
        in
        t.reprotect <-
          t.reprotect
          @ [
              {
                re_id = id;
                re_scheme = scheme;
                re_count = backup_count;
                re_since = now;
                re_span = span;
              };
            ];
        t.rstats.queued <- t.rstats.queued + 1;
        Tm.Counter.incr c_reprotect_queued;
        if !J.on then
          J.record
            (J.Reprotect_queued { conn = id; pending = List.length t.reprotect })
      end

let drain_reprotect t ~now =
  let drained = ref 0 in
  let settle e =
    t.rstats.unprotected_time <-
      t.rstats.unprotected_time +. (now -. e.re_since);
    if !J.on then C.close e.re_span ~dur:(now -. e.re_since)
  in
  let keep =
    List.filter
      (fun e ->
        match Net_state.find t.state e.re_id with
        | None ->
            (* Torn down (or lost) while waiting: stop tracking it. *)
            t.rstats.abandoned <- t.rstats.abandoned + 1;
            settle e;
            false
        | Some conn ->
            if conn.backups <> [] then begin
              (* Re-protected by some other path (e.g. a later step 4). *)
              incr drained;
              t.rstats.drained <- t.rstats.drained + 1;
              Tm.Counter.incr c_reprotect_drained;
              settle e;
              false
            end
            else begin
              t.rstats.attempts <- t.rstats.attempts + 1;
              match
                t.reprotect_router e.re_scheme t.state ~primary:conn.primary
                  ~bw:conn.bw ~existing:[] ~count:e.re_count
              with
              | [] -> true (* still no resources; keep waiting *)
              | fresh -> (
                  match
                    Net_state.replace_backups_drop t.state ~id:e.re_id
                      ~backups:fresh
                  with
                  | [] -> true (* none could be hosted after all *)
                  | kept ->
                      incr drained;
                      t.rstats.drained <- t.rstats.drained + 1;
                      Tm.Counter.incr c_reprotect_drained;
                      settle e;
                      if !J.on then
                        J.record
                          (J.Reprotected
                             { conn = e.re_id; fresh = List.length kept });
                      false)
            end)
      t.reprotect
  in
  t.reprotect <- keep;
  !drained

let flush_reprotect t ~now =
  List.iter
    (fun e ->
      t.rstats.abandoned <- t.rstats.abandoned + 1;
      t.rstats.unprotected_time <-
        t.rstats.unprotected_time +. (now -. e.re_since);
      if !J.on then C.close e.re_span ~dur:(now -. e.re_since))
    t.reprotect;
  t.reprotect <- []

let apply t (item : Dr_sim.Scenario.item) =
  (* The scenario item's time is the simulation clock for every journal
     event the routing/admission machinery emits below. *)
  if !J.on then J.set_now item.time;
  match item.event with
  | Dr_sim.Scenario.Request { conn; src; dst; bw; duration = _ } -> (
      t.stats.requests <- t.stats.requests + 1;
      if !J.on then J.record (J.Request { conn; src; dst; bw });
      (* Admission trace: a root span with a [route] child pushed as the
         ambient current span, so the flooding layer can attach its own
         span without a signature change.  Admission is instantaneous in
         simulation time; the spans carry structure, not duration. *)
      let sp_adm = if !J.on then C.root ~conn "admission" else C.null in
      let sp_route =
        if !J.on then C.child ~parent:sp_adm ~conn "route" else C.null
      in
      let routed =
        if !J.on then
          C.with_current sp_route (fun () -> t.route t.state ~src ~dst ~bw)
        else t.route t.state ~src ~dst ~bw
      in
      if !J.on then C.close sp_route ~dur:0.0;
      match routed with
      | Error Routing.No_primary ->
          t.stats.rejected_no_primary <- t.stats.rejected_no_primary + 1;
          if !J.on then begin
            C.close sp_adm ~dur:0.0;
            J.record
              (J.Rejected { conn; reason = Routing.reject_reason_name Routing.No_primary })
          end
      | Error Routing.No_backup ->
          t.stats.rejected_no_backup <- t.stats.rejected_no_backup + 1;
          if !J.on then begin
            C.close sp_adm ~dur:0.0;
            J.record
              (J.Rejected { conn; reason = Routing.reject_reason_name Routing.No_backup })
          end
      | Ok { Routing.primary; backups } ->
          let c = Net_state.admit t.state ~id:conn ~bw ~primary ~backups in
          t.stats.accepted <- t.stats.accepted + 1;
          if backups = [] then t.stats.unprotected <- t.stats.unprotected + 1;
          if c.degraded then t.stats.degraded <- t.stats.degraded + 1;
          if !J.on then begin
            C.close sp_adm ~dur:0.0;
            J.record
              (J.Admitted
                 { conn; backups = List.length backups; degraded = c.degraded })
          end)
  | Dr_sim.Scenario.Release { conn } -> (
      (* Rejected connections have no state to tear down. *)
      match Net_state.find t.state conn with
      | None -> ()
      | Some _ ->
          Net_state.release t.state ~id:conn;
          t.stats.released <- t.stats.released + 1;
          if !J.on then J.record (J.Teardown { conn });
          (* A release frees resources: give waiting unprotected
             connections another chance at a backup. *)
          if t.reprotect <> [] then ignore (drain_reprotect t ~now:item.time))

let run t scenario = Dr_sim.Scenario.iter scenario (fun item -> apply t item)

let acceptance_ratio t =
  if t.stats.requests = 0 then 1.0
  else float_of_int t.stats.accepted /. float_of_int t.stats.requests

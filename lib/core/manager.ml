module J = Dr_obs.Journal

type stats = {
  mutable requests : int;
  mutable accepted : int;
  mutable rejected_no_primary : int;
  mutable rejected_no_backup : int;
  mutable released : int;
  mutable degraded : int;
  mutable unprotected : int;
}

type t = { state : Net_state.t; route : Routing.route_fn; stats : stats }

let create ~graph ~capacity ~spare_policy ~route =
  {
    state = Net_state.create ~graph ~capacity ~spare_policy;
    route;
    stats =
      {
        requests = 0;
        accepted = 0;
        rejected_no_primary = 0;
        rejected_no_backup = 0;
        released = 0;
        degraded = 0;
        unprotected = 0;
      };
  }

let state t = t.state
let stats t = t.stats

let apply t (item : Dr_sim.Scenario.item) =
  (* The scenario item's time is the simulation clock for every journal
     event the routing/admission machinery emits below. *)
  if !J.on then J.set_now item.time;
  match item.event with
  | Dr_sim.Scenario.Request { conn; src; dst; bw; duration = _ } -> (
      t.stats.requests <- t.stats.requests + 1;
      if !J.on then J.record (J.Request { conn; src; dst; bw });
      match t.route t.state ~src ~dst ~bw with
      | Error Routing.No_primary ->
          t.stats.rejected_no_primary <- t.stats.rejected_no_primary + 1;
          if !J.on then
            J.record
              (J.Rejected { conn; reason = Routing.reject_reason_name Routing.No_primary })
      | Error Routing.No_backup ->
          t.stats.rejected_no_backup <- t.stats.rejected_no_backup + 1;
          if !J.on then
            J.record
              (J.Rejected { conn; reason = Routing.reject_reason_name Routing.No_backup })
      | Ok { Routing.primary; backups } ->
          let c = Net_state.admit t.state ~id:conn ~bw ~primary ~backups in
          t.stats.accepted <- t.stats.accepted + 1;
          if backups = [] then t.stats.unprotected <- t.stats.unprotected + 1;
          if c.degraded then t.stats.degraded <- t.stats.degraded + 1;
          if !J.on then
            J.record
              (J.Admitted
                 { conn; backups = List.length backups; degraded = c.degraded }))
  | Dr_sim.Scenario.Release { conn } -> (
      (* Rejected connections have no state to tear down. *)
      match Net_state.find t.state conn with
      | None -> ()
      | Some _ ->
          Net_state.release t.state ~id:conn;
          t.stats.released <- t.stats.released + 1;
          if !J.on then J.record (J.Teardown { conn }))

let run t scenario = Dr_sim.Scenario.iter scenario (fun item -> apply t item)

let acceptance_ratio t =
  if t.stats.requests = 0 then 1.0
  else float_of_int t.stats.accepted /. float_of_int t.stats.requests

(** Accumulated Primary-route Link Vector (paper §2.1, §3).

    For a link [L_i], the APLV records, for every potential failure point
    [j], how many primary channels cross [j] whose backup channels cross
    [L_i]:

    {v a_{i,j} = |{ P_k : P_k in PSET_i  and  j in LSET(P_k) }| v}

    Modelling note: the paper indexes APLV by link and fails one link at a
    time, while also declaring every connection between two nodes to be a
    pair of unidirectional links that share fate (a cable cut takes both
    directions).  We therefore index the vector by {e undirected edge} — the
    real failure domain — which coincides with the paper's per-link
    indexing whenever no two primaries use opposite directions of one edge
    (true of all the paper's examples).

    [a_{i,j}] answers two questions:
    - {b routing}: how many conflicts does choosing [L_i] for a new backup
      create, given where the new primary runs (D-LSR), or in aggregate
      (P-LSR's [‖APLV_i‖₁])?
    - {b multiplexing}: how much spare must [L_i] reserve so that any
      single failure can activate every backup that needs it —
      [max_j a_{i,j}] connections' worth (§5). *)

type t

val create : unit -> t
(** Empty vector (no backups registered on the link). *)

val register : t -> edge_lset:int list -> unit
(** A backup joined this link; [edge_lset] is the (duplicate-free) edge set
    of its {e primary} route, carried by the backup-path register packet. *)

val unregister : t -> edge_lset:int list -> unit
(** The backup left (release packet).  Raises [Invalid_argument] if some
    count would go negative. *)

val get : t -> int -> int
(** [get t j] is [a_{i,j}] (0 when absent). *)

val copy : t -> t
(** Independent deep copy: mutations of either side never show through
    the other.  Snapshot support for the what-if layer. *)

val assign : into:t -> from:t -> unit
(** Overwrite [into] with [from]'s contents (deep, independent).  The
    allocation-light form of {!copy} used when a snapshot buffer is
    reused across captures/rollbacks. *)

val norm1 : t -> int
(** [‖APLV_i‖₁ = Σ_j a_{i,j}] — P-LSR's scalar (maintained O(1)). *)

val max_element : t -> int
(** [max_j a_{i,j}], the spare requirement in connection counts; 0 when
    empty. *)

val backup_count : t -> int
(** [|PSET_i|]: how many backups are registered on this link. *)

val support : t -> int list
(** Failure points with non-zero count, sorted — the Conflict Vector's set
    of 1-bits. *)

val conflict_count_with : t -> edge_lset:int list -> int
(** D-LSR's cost term: [Σ_{j in edge_lset} (a_{i,j} > 0 ? 1 : 0)] — the
    number of links of the new primary that already conflict here. *)

val overlap_weight_with : t -> edge_lset:int list -> int
(** [Σ_{j in edge_lset} a_{i,j}] — how many existing conflicts a backup
    with this primary would meet on the link (used by tests and
    diagnostics). *)

val pp : Format.formatter -> t -> unit

(** {1 Per-SRLG aggregation}

    The resilience extension treats a shared-risk link group as one
    failure domain.  The mappings are passed as functions
    (see {!Dr_resilience.Srlg}) so this module stays representation
    agnostic.  With singleton groups ([groups_of_edge j = [j]],
    [edges_of_group g = [g]]) each aggregate reduces exactly to its
    per-edge original. *)

val group_support : t -> groups_of_edge:(int -> int list) -> int list
(** SRLG groups containing at least one conflicting failure point —
    {!support} lifted to groups, sorted and deduplicated. *)

val group_conflict_count_with :
  t -> groups:int list -> edges_of_group:(int -> int list) -> int
(** D-LSR's cost term lifted to failure domains: how many of the given
    groups have some member edge with [a_{i,j} > 0].  With singleton
    groups equals [conflict_count_with ~edge_lset:groups]. *)

val group_max_weight :
  t -> groups:int list -> edges_of_group:(int -> int list) -> int
(** [max_g Σ_{j in g} a_{i,j}] over the given groups — the worst single
    group failure's activation count on this link (the generalised §5
    spare rule, in connection counts).  With singleton groups equals the
    maximum [a_{i,j}] over [groups]. *)

(* Differential harness: replay randomized admission workloads, querying
   the fast path ({!Routing}) and the oracle ({!Routing_reference}) on the
   same state, and record every disagreement.  Both sides only read the
   network state, so interleaving their queries is safe; mutations (admit,
   release, churn) go through {!Net_state} once, after the comparison. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Gen = Dr_topo.Gen
module Rng = Dr_rng.Splitmix64
module Dist = Dr_rng.Dist

type params = {
  graphs : int;
  nodes : int;
  avg_degree : float;
  admissions : int;
  seed : int;
  capacity : int;
  max_bw : int;
  backup_count : int;
  churn_every : int;
  invariants_every : int;
}

let default_params =
  {
    graphs = 4;
    nodes = 30;
    avg_degree = 4.0;
    admissions = 60;
    seed = 42;
    capacity = 60;
    max_bw = 4;
    backup_count = 2;
    churn_every = 7;
    invariants_every = 20;
  }

type report = {
  graphs_run : int;
  admissions_checked : int;
  admitted : int;
  rejected : int;
  verdicts_checked : int;
  churn_events : int;
  divergence_count : int;
  divergences : string list;
}

let empty_report =
  {
    graphs_run = 0;
    admissions_checked = 0;
    admitted = 0;
    rejected = 0;
    verdicts_checked = 0;
    churn_events = 0;
    divergence_count = 0;
    divergences = [];
  }

let max_kept_divergences = 8

let merge a b =
  {
    graphs_run = a.graphs_run + b.graphs_run;
    admissions_checked = a.admissions_checked + b.admissions_checked;
    admitted = a.admitted + b.admitted;
    rejected = a.rejected + b.rejected;
    verdicts_checked = a.verdicts_checked + b.verdicts_checked;
    churn_events = a.churn_events + b.churn_events;
    divergence_count = a.divergence_count + b.divergence_count;
    divergences =
      (let kept = a.divergences @ b.divergences in
       if List.length kept <= max_kept_divergences then kept
       else List.filteri (fun i _ -> i < max_kept_divergences) kept);
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>graphs        %d@,\
     admissions    %d  (admitted %d, rejected %d)@,\
     link verdicts %d@,\
     churn events  %d@,\
     divergences   %d@]"
    r.graphs_run r.admissions_checked r.admitted r.rejected r.verdicts_checked
    r.churn_events r.divergence_count;
  if r.divergences <> [] then begin
    Format.fprintf ppf "@,@[<v>";
    List.iter (fun d -> Format.fprintf ppf "  %s@," d) r.divergences;
    Format.fprintf ppf "@]"
  end

(* --- per-graph check ----------------------------------------------------- *)

(* Bit-level float equality: the acceptance bar is exact reproduction of the
   oracle's arithmetic, not tolerance-based closeness. *)
let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let pp_links ppf p =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (List.map string_of_int (Path.links p)))

let path_opt_str = function
  | None -> "none"
  | Some p -> Format.asprintf "%a" pp_links p

let paths_str ps = String.concat " " (List.map (Format.asprintf "%a" pp_links) ps)

let same_path a b = Path.links a = Path.links b

let same_paths a b =
  List.length a = List.length b && List.for_all2 same_path a b

type ctx = {
  mutable divergence_count : int;
  mutable divergences : string list;  (* newest first while accumulating *)
  mutable verdicts : int;
}

let diverge ctx fmt =
  Format.kasprintf
    (fun msg ->
      ctx.divergence_count <- ctx.divergence_count + 1;
      if List.length ctx.divergences < max_kept_divergences then
        ctx.divergences <- msg :: ctx.divergences)
    fmt

let verdict_str = function
  | Routing.Dead -> "dead"
  | Routing.No_bandwidth { required } -> Printf.sprintf "no-bw(%d)" required
  | Routing.Cost p ->
      Printf.sprintf "cost(q=%h conflict=%h eps=%h)" p.Routing.q
        p.Routing.conflict p.Routing.eps

(* Compare the full per-link verdict decomposition of the fast path against
   the oracle, plus the coherence of each side's cost function with its own
   verdict.  [earlier] exercises the earlier-backup Q-penalty branch. *)
let check_verdicts ctx ~where scheme state ~primary ~earlier ~bw =
  let graph = Net_state.graph state in
  let fast_v =
    Routing.backup_link_verdict ~earlier_backups:earlier scheme state ~primary
      ~bw
  and ref_v =
    Routing_reference.backup_link_verdict ~earlier_backups:earlier scheme state
      ~primary ~bw
  in
  let fast_cost = Routing.backup_link_cost scheme state ~primary ~bw
  and ref_cost = Routing_reference.backup_link_cost scheme state ~primary ~bw in
  Graph.iter_links graph (fun l ->
      ctx.verdicts <- ctx.verdicts + 1;
      let vf = fast_v l and vr = ref_v l in
      let same =
        match (vf, vr) with
        | Routing.Dead, Routing.Dead -> true
        | Routing.No_bandwidth { required = a }, Routing.No_bandwidth
            { required = b } ->
            a = b
        | Routing.Cost p, Routing.Cost p' ->
            feq p.Routing.q p'.Routing.q
            && feq p.Routing.conflict p'.Routing.conflict
            && feq p.Routing.eps p'.Routing.eps
        | _ -> false
      in
      if not same then
        diverge ctx "%s: link %d verdict fast=%s ref=%s" where l
          (verdict_str vf) (verdict_str vr);
      (* The scalar cost functions ignore earlier backups; compare them (and
         their agreement with the earlier-free verdicts) only in that case. *)
      if earlier = [] then begin
        let cf = fast_cost l and cr = ref_cost l in
        if not (feq cf cr) then
          diverge ctx "%s: link %d cost fast=%h ref=%h" where l cf cr;
        let expected =
          match vr with
          | Routing.Cost p -> Routing.parts_total p
          | Routing.Dead | Routing.No_bandwidth _ -> infinity
        in
        if not (feq cf expected) then
          diverge ctx "%s: link %d cost %h <> verdict total %h" where l cf
            expected
      end)

let check_caches ctx ~where state =
  match Net_state.check_routing_caches state with
  | Ok () -> ()
  | Error msg -> diverge ctx "%s: cache drift: %s" where msg

let scheme_names = [ (Routing.Plsr, "plsr"); (Dlsr, "dlsr"); (Spf, "spf") ]

let run_scheme params ~graph ~graph_index ~scheme ~name ctx =
  let state =
    Net_state.create ~graph ~capacity:params.capacity
      ~spare_policy:Net_state.Multiplexed
  in
  let rng =
    Rng.create (params.seed + (graph_index * 7919) + (Hashtbl.hash name * 13))
  in
  let n = Graph.node_count graph in
  let active = ref [] and next_id = ref 0 in
  let admissions = ref 0 and admitted = ref 0 and rejected = ref 0 in
  let churn = ref 0 in
  let step_where step = Printf.sprintf "g%d/%s step %d" graph_index name step in
  for step = 1 to params.admissions do
    let where = step_where step in
    let src, dst = Dist.pick_distinct_pair rng n in
    let bw = Dist.uniform_int rng ~lo:1 ~hi:params.max_bw in
    incr admissions;
    let fast_primary = Routing.find_primary state ~src ~dst ~bw
    and ref_primary = Routing_reference.find_primary state ~src ~dst ~bw in
    (match (fast_primary, ref_primary) with
    | None, None -> incr rejected
    | Some pf, Some pr when same_path pf pr ->
        let primary = pf in
        check_verdicts ctx ~where scheme state ~primary ~earlier:[] ~bw;
        let fast_backups =
          Routing.find_backups scheme state ~primary ~bw
            ~count:params.backup_count
        and ref_backups =
          Routing_reference.find_backups scheme state ~primary ~bw
            ~count:params.backup_count
        in
        if not (same_paths fast_backups ref_backups) then
          diverge ctx "%s: backups fast=%s ref=%s" where
            (paths_str fast_backups) (paths_str ref_backups);
        (match ref_backups with
        | first :: _ ->
            check_verdicts ctx ~where scheme state ~primary ~earlier:[ first ]
              ~bw
        | [] -> ());
        if ref_backups = [] then incr rejected
        else begin
          let id = !next_id in
          incr next_id;
          ignore
            (Net_state.admit state ~id ~bw ~primary ~backups:ref_backups
              : Net_state.conn);
          active := id :: !active;
          incr admitted;
          check_caches ctx ~where state
        end
    | _ ->
        incr rejected;
        diverge ctx "%s: primary fast=%s ref=%s" where
          (path_opt_str fast_primary) (path_opt_str ref_primary));
    (* Random release keeps the state from saturating and exercises the
       cache decrements. *)
    (match !active with
    | id :: rest when Dist.uniform_int rng ~lo:0 ~hi:3 = 0 ->
        Net_state.release state ~id;
        active := rest;
        check_caches ctx ~where state
    | _ -> ());
    if params.churn_every > 0 && step mod params.churn_every = 0 then begin
      incr churn;
      let failed = ref [] in
      Graph.iter_edges graph (fun e ->
          if Net_state.edge_failed state ~edge:e then failed := e :: !failed);
      (match Dist.uniform_int rng ~lo:0 ~hi:2 with
      | 0 ->
          let e = Dist.uniform_int rng ~lo:0 ~hi:(Graph.edge_count graph - 1) in
          if not (Net_state.edge_failed state ~edge:e) then
            Net_state.fail_edge state ~edge:e
      | 1 ->
          let v = Dist.uniform_int rng ~lo:0 ~hi:(n - 1) in
          Net_state.fail_node state ~node:v
      | _ -> (
          match !failed with
          | [] -> ()
          | es ->
              let e = List.nth es (Dist.uniform_int rng ~lo:0 ~hi:(List.length es - 1)) in
              Net_state.restore_edge state ~edge:e));
      check_caches ctx ~where state
    end;
    if params.invariants_every > 0 && step mod params.invariants_every = 0 then
      match Net_state.check_invariants state with
      | Ok () -> ()
      | Error msg -> diverge ctx "%s: invariant: %s" where msg
  done;
  (* Drain the survivors so release-side cache deltas are fully exercised. *)
  List.iter
    (fun id ->
      Net_state.release state ~id;
      check_caches ctx ~where:(step_where params.admissions) state)
    !active;
  (!admissions, !admitted, !rejected, !churn)

let run_graph params ~graph_index =
  if params.nodes < 2 then invalid_arg "Routing_check: nodes < 2";
  let rng = Rng.create (params.seed + (graph_index * 1_000_003)) in
  let graph =
    Gen.waxman ~rng ~n:params.nodes ~avg_degree:params.avg_degree ()
  in
  let ctx = { divergence_count = 0; divergences = []; verdicts = 0 } in
  let admissions = ref 0
  and admitted = ref 0
  and rejected = ref 0
  and churn = ref 0 in
  List.iter
    (fun (scheme, name) ->
      let a, ad, rj, ch =
        run_scheme params ~graph ~graph_index ~scheme ~name ctx
      in
      admissions := !admissions + a;
      admitted := !admitted + ad;
      rejected := !rejected + rj;
      churn := !churn + ch)
    scheme_names;
  {
    graphs_run = 1;
    admissions_checked = !admissions;
    admitted = !admitted;
    rejected = !rejected;
    verdicts_checked = ctx.verdicts;
    churn_events = !churn;
    divergence_count = ctx.divergence_count;
    divergences = List.rev ctx.divergences;
  }

let run ?progress params =
  let report = ref empty_report in
  for g = 0 to params.graphs - 1 do
    let r = run_graph params ~graph_index:g in
    (match progress with Some f -> f g r | None -> ());
    report := merge !report r
  done;
  !report

(** Conflict Vector (paper §3.2) — D-LSR's abridged form of the APLV.

    [CV_i] is the bit vector with [c_{i,j} = 1] iff [a_{i,j} > 0]: it keeps
    the {e positions} of conflicts but drops the counts.  D-LSR distributes
    CVs in link-state advertisements (N bits per link instead of N
    integers); P-LSR distributes only [‖APLV‖₁] (one integer).

    In this implementation the CV is a materialised view over {!Aplv}: the
    routing code queries the APLV directly, while this module provides the
    packed representation used to measure the link-state database and
    advertisement sizes (the routing-overhead experiment). *)

type t
(** Immutable packed bit vector. *)

val of_aplv : Aplv.t -> domains:int -> t
(** Snapshot the conflict bits of an APLV.  [domains] is the number of
    failure domains in the network (bit-vector length, the paper's N). *)

val of_bits : bool array -> t

val length : t -> int
(** Number of bits (N). *)

val get : t -> int -> bool
(** [get cv j] is [c_{i,j}]. *)

val popcount : t -> int

val conflict_count_with : t -> edge_lset:int list -> int
(** [Σ_{j in edge_lset} c_{i,j}] — exactly D-LSR's link-cost term, computed
    from the packed form. *)

val byte_size : t -> int
(** Size in bytes of the packed representation (advertisement payload). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders as a 0/1 string, e.g. [1010010]. *)

(** {1 Per-SRLG aggregation}

    Group-level views of the packed bits, for the resilience extension's
    diagnostics (see {!Dr_resilience.Srlg}).  With singleton groups each
    reduces to its per-edge original. *)

val group_popcount : t -> groups:int -> edges_of_group:(int -> int list) -> int
(** Number of SRLG groups (ids [0..groups-1]) with any member bit set —
    {!popcount} over failure domains. *)

val group_conflict_count_with :
  t -> groups:int list -> edges_of_group:(int -> int list) -> int
(** How many of the given groups have some member bit set — D-LSR's cost
    term over failure domains, from the packed form. *)

(* Reference (oracle) implementation of the routing layer.

   This module is the routing code exactly as it stood before the
   incremental fast path landed: per-query allocation of every search
   array, set-based membership tests, and scheme cost terms recomputed
   from the authoritative per-link {!Aplv.t} on every Dijkstra relaxation
   (no {!Net_state} caches).  It is kept as an executable specification:
   the differential harness ({!Routing_check}, `drtp_sim check-routing`,
   the qcheck property suite) asserts that {!Routing} picks identical
   routes with bit-identical cost decompositions, and the benchmark
   reports the fast path's speedup against it.

   Two deliberate deltas from the historical code, neither observable in
   results: telemetry probes and flight-recorder hooks are stripped (the
   oracle must not double-count admissions or double-journal routes when
   run next to the live path), and the pre-workspace BFS/Dijkstra bodies
   are inlined here instead of calling {!Dr_topo.Shortest_path} (whose
   single-pair queries now run on the fast workspaces). *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Pqueue = Dr_pqueue.Pqueue

type scheme = Routing.scheme = Plsr | Dlsr | Spf

let scheme_name = Routing.scheme_name
let epsilon = Routing.epsilon
let q_constant = Routing.q_constant

let link_alive state l =
  not (Net_state.edge_failed state ~edge:(Graph.edge_of_link l))

(* --- pre-workspace searches, verbatim ----------------------------------- *)

let unreachable = max_int

let min_hop_path g ~usable ~src ~dst =
  let n = Graph.node_count g in
  if src = dst then invalid_arg "Routing_reference.min_hop_path: src = dst";
  let dist = Array.make n unreachable in
  let prev = Array.make n (-1) in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if v = dst then found := true
    else
      Array.iter
        (fun l ->
          if usable l then begin
            let w = Graph.link_dst g l in
            if dist.(w) = unreachable then begin
              dist.(w) <- dist.(v) + 1;
              prev.(w) <- l;
              Queue.add w queue
            end
          end)
        (Graph.out_links g v)
  done;
  if dist.(dst) = unreachable then None
  else begin
    let rec rebuild v acc =
      if v = src then acc
      else
        let l = prev.(v) in
        rebuild (Graph.link_src g l) (l :: acc)
    in
    Some (Path.of_links g (rebuild dst []))
  end

let dijkstra_path g ~cost ~src ~dst =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let prev_link = Array.make n (-1) in
  let settled = Array.make n false in
  dist.(src) <- 0.0;
  let queue = Pqueue.create () in
  Pqueue.add queue ~key:0.0 src;
  let rec drain () =
    match Pqueue.pop queue with
    | None -> ()
    | Some (d, v) ->
        if not settled.(v) then begin
          settled.(v) <- true;
          Array.iter
            (fun l ->
              let c = cost l in
              if c < 0.0 then
                invalid_arg "Routing_reference.dijkstra: negative cost";
              if c < infinity then begin
                let w = Graph.link_dst g l in
                let nd = d +. c in
                if nd < dist.(w) then begin
                  dist.(w) <- nd;
                  prev_link.(w) <- l;
                  Pqueue.add queue ~key:nd w
                end
              end)
            (Graph.out_links g v)
        end;
        drain ()
  in
  drain ();
  if dist.(dst) = infinity then None
  else if prev_link.(dst) = -1 then None (* dst is the source itself *)
  else begin
    let rec rebuild v acc =
      let l = prev_link.(v) in
      if l = -1 then acc else rebuild (Graph.link_src g l) (l :: acc)
    in
    Some (dist.(dst), Path.of_links g (rebuild dst []))
  end

(* --- the routing layer, verbatim ----------------------------------------- *)

let find_primary state ~src ~dst ~bw =
  let resources = Net_state.resources state in
  let usable l =
    link_alive state l && Resources.primary_feasible resources ~link:l ~bw
  in
  min_hop_path (Net_state.graph state) ~usable ~src ~dst

type cost_parts = Routing.cost_parts = { q : float; conflict : float; eps : float }

let parts_total p = p.q +. p.conflict +. p.eps

type link_verdict = Routing.link_verdict =
  | Dead
  | No_bandwidth of { required : int }
  | Cost of cost_parts

let backup_link_verdict_general scheme state ~primary ~earlier_backups ~bw =
  let resources = Net_state.resources state in
  let primary_edges = Path.edge_set primary in
  let primary_edge_list = Path.Link_set.elements primary_edges in
  let primary_links = Path.lset primary in
  (* Exact per-link share counts over the earlier backups (multiplicity
     matters: admission requires fitting on top of every reservation). *)
  let earlier_share_count =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun b ->
        List.iter
          (fun l ->
            Hashtbl.replace tbl l
              (1 + Option.value (Hashtbl.find_opt tbl l) ~default:0))
          (Path.links b))
      earlier_backups;
    tbl
  in
  let earlier_edges =
    List.fold_left
      (fun acc b -> Path.Link_set.union acc (Path.edge_set b))
      Path.Link_set.empty earlier_backups
  in
  fun l ->
    let own_shares =
      (if Path.Link_set.mem l primary_links then 1 else 0)
      + Option.value (Hashtbl.find_opt earlier_share_count l) ~default:0
    in
    let required = bw * (1 + own_shares) in
    if not (link_alive state l) then Dead
    else if not (Resources.backup_feasible resources ~link:l ~bw:required) then
      No_bandwidth { required }
    else
      let q =
        let e = Graph.edge_of_link l in
        (if Path.Link_set.mem e primary_edges then q_constant else 0.0)
        +. if Path.Link_set.mem e earlier_edges then q_constant else 0.0
      in
      match scheme with
      | Spf -> Cost { q; conflict = 1.0; eps = 0.0 }
      | Plsr ->
          Cost
            {
              q;
              conflict = float_of_int (Aplv.norm1 (Net_state.aplv state l));
              eps = epsilon;
            }
      | Dlsr ->
          Cost
            {
              q;
              conflict =
                float_of_int
                  (Aplv.conflict_count_with (Net_state.aplv state l)
                     ~edge_lset:primary_edge_list);
              eps = epsilon;
            }

let backup_link_verdict ?(earlier_backups = []) scheme state ~primary ~bw =
  backup_link_verdict_general scheme state ~primary ~earlier_backups ~bw

let backup_link_cost_general scheme state ~primary ~earlier_backups ~bw =
  let verdict =
    backup_link_verdict_general scheme state ~primary ~earlier_backups ~bw
  in
  fun l ->
    match verdict l with
    | Dead -> infinity
    | No_bandwidth _ -> infinity
    | Cost p -> parts_total p

let backup_link_cost scheme state ~primary ~bw =
  backup_link_cost_general scheme state ~primary ~earlier_backups:[] ~bw

let find_backup_general ?max_hops scheme state ~primary ~earlier_backups ~bw =
  let cost = backup_link_cost_general scheme state ~primary ~earlier_backups ~bw in
  let graph = Net_state.graph state in
  let src = Path.src primary and dst = Path.dst primary in
  match max_hops with
  | None -> (
      match dijkstra_path graph ~cost ~src ~dst with
      | None -> None
      | Some (_, p) -> Some p)
  | Some h -> (
      match
        Dr_topo.Constrained_path.cheapest_within_hops graph ~cost ~src ~dst
          ~max_hops:h
      with
      | None -> None
      | Some (_, p) -> Some p)

let find_backup ?max_hops scheme state ~primary ~bw =
  find_backup_general ?max_hops scheme state ~primary ~earlier_backups:[] ~bw

let collect_backups ?max_hops scheme state ~primary ~bw ~count ~existing =
  let rec collect earlier fresh k =
    if k = 0 then List.rev fresh
    else
      match
        find_backup_general ?max_hops scheme state ~primary
          ~earlier_backups:earlier ~bw
      with
      | None -> List.rev fresh
      | Some b ->
          if
            Path.links b = Path.links primary
            || List.exists (fun b' -> Path.links b' = Path.links b) earlier
          then List.rev fresh
          else collect (b :: earlier) (b :: fresh) (k - 1)
  in
  collect (List.rev existing) [] count

let find_backups ?max_hops scheme state ~primary ~bw ~count =
  collect_backups ?max_hops scheme state ~primary ~bw ~count ~existing:[]

let additional_backups ?max_hops scheme state ~primary ~bw ~existing ~count =
  collect_backups ?max_hops scheme state ~primary ~bw ~count ~existing

type reject_reason = Routing.reject_reason = No_primary | No_backup
type route_pair = Routing.route_pair = { primary : Path.t; backups : Path.t list }
type route_fn = Routing.route_fn

let link_state_route_fn ?(backup_count = 1) ?backup_hop_slack scheme ~with_backup
    : route_fn =
 fun state ~src ~dst ~bw ->
  match find_primary state ~src ~dst ~bw with
  | None -> Error No_primary
  | Some primary ->
      if not with_backup then Ok { primary; backups = [] }
      else (
        let max_hops =
          Option.map (fun slack -> Path.hops primary + slack) backup_hop_slack
        in
        match find_backups ?max_hops scheme state ~primary ~bw ~count:backup_count with
        | [] -> Error No_backup
        | backups -> Ok { primary; backups })

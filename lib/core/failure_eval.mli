(** Snapshot fault-tolerance evaluation — the paper's [P_act-bk] metric.

    "[P_act-bk] is the probability of activating a backup channel when the
    corresponding primary channel is disabled by a single link failure"
    (§6.2).  For every undirected edge carrying at least one primary we
    hypothetically fail it and ask how many of the affected connections
    could activate their backups {e simultaneously} out of the spare
    bandwidth reserved on the backups' links:

    - a backup that itself crosses the failed edge cannot activate;
    - a connection tries its backups in priority order and activates the
      first that fits (the paper's "one of its backups is promoted");
    - activating connections draw [bw] units from each backup link's spare
      pool ([SC_i] in the paper counts how many such grants a link can
      make); grants are made greedily in connection-id order — when
      conflicting backups were multiplexed over the same spare (§5's
      fallback), the later ones lose, exactly the contention the routing
      schemes try to design away.

    The evaluation is hypothetical: it never mutates the state, so it can
    be run on periodic snapshots during a scenario replay. *)

type edge_outcome = {
  edge : int;
  affected : int;  (** primaries disabled by this edge's failure *)
  activated : int;  (** backups that got spare on all their links *)
}

type result = {
  attempts : int;  (** Σ affected over evaluated edges *)
  successes : int;  (** Σ activated *)
  edges_evaluated : int;  (** edges that carried at least one primary *)
  per_edge : edge_outcome list;
}

val fault_tolerance : result -> float
(** [successes / attempts]; 1.0 when nothing was at risk (no attempts). *)

val merge_results : result -> result -> result
(** Pool two results as if their evaluations ran in one stream: counts
    add, [per_edge] concatenates in argument order.  Exact (integer)
    merging — used to fold per-worker shards of the double-failure
    Monte-Carlo back into one result. *)

val empty_result : result
(** The identity for {!merge_results} (all counts zero). *)

val evaluate : ?spare_only:bool -> Net_state.t -> result
(** Evaluate all single-edge failures on the current state.
    [spare_only] (default [true]) restricts activation to the reserved
    spare pool, matching the paper's [SC_i]; with [false], activation may
    also consume free bandwidth (an optimistic variant used in
    sensitivity checks). *)

val evaluate_edge : ?spare_only:bool -> Net_state.t -> edge:int -> edge_outcome
(** The same evaluation for one edge. *)

(** {1 Node failures (extension E3)}

    A router breakdown takes out every incident edge at once — the other
    persistent-failure class of §1.  The DRTP machinery handles it with
    the same backups, but the single-failure spare sizing of §5 no longer
    guarantees coverage, so node-failure tolerance is strictly harder.
    Connections terminating {e at} the failed node are unrecoverable by
    any routing scheme and are reported separately, not counted as
    attempts. *)

type node_outcome = {
  node : int;
  transit_affected : int;
      (** primaries crossing the node without terminating there *)
  transit_activated : int;
  endpoint_lost : int;  (** connections whose src or dst is the node *)
}

val evaluate_node : ?spare_only:bool -> Net_state.t -> node:int -> node_outcome

val evaluate_nodes : ?spare_only:bool -> Net_state.t -> result
(** Aggregate over all nodes with at least one affected transit primary
    ([attempts]/[successes] count transit connections; [per_edge] is empty
    in this variant). *)

(** {1 Simultaneous double failures}

    The §5 spare rule sizes each link's pool for the worst {e single}
    failure; two near-simultaneous edge failures can activate conflicting
    backups beyond it, and a backup may lose both its primary and itself.
    This quantifies the paper's single-failure assumption ("we assume that
    only a single link can fail between two successive recovery
    actions"). *)

type pair_outcome = { edges : int * int; affected : int; activated : int }

val evaluate_edge_pair :
  ?spare_only:bool -> Net_state.t -> edges:int * int -> pair_outcome
(** Fail two edges at once: victims are primaries crossing either; a
    backup must avoid both and win spare on all its links. *)

val evaluate_double :
  ?spare_only:bool ->
  ?samples:int ->
  ?seed:int ->
  Net_state.t ->
  result
(** Monte-Carlo over random distinct edge pairs ([samples], default 200):
    the double-failure analogue of {!evaluate} ([per_edge] left empty). *)

(** {1 Correlated (SRLG) failures}

    The generalised multiplexing rule sizes spare for the worst single
    {e shared-risk group}; these evaluations measure what it buys.  With
    the singleton model, {!evaluate_srlg} is exactly {!evaluate} (group
    id = edge id, identical greedy order). *)

val evaluate_edges :
  ?spare_only:bool -> Net_state.t -> edges:int list -> int * int
(** Fail a whole edge set at once; returns [(affected, activated)].
    Victims are primaries crossing any member (in connection-id order); a
    backup must avoid every member and win its bandwidth on all its
    links. *)

type group_outcome = { group : int; affected : int; activated : int }

val evaluate_group :
  ?spare_only:bool -> Net_state.t -> group:int -> group_outcome
(** {!evaluate_edges} over one SRLG group's members. *)

val evaluate_srlg : ?spare_only:bool -> Net_state.t -> result
(** Exact sweep over every group of the state's SRLG model ([per_edge]
    left empty). *)

val evaluate_regional :
  ?spare_only:bool ->
  ?samples:int ->
  ?seed:int ->
  Net_state.t ->
  radius:float ->
  result
(** Monte-Carlo regional events: [samples] (default 200) random disc
    centers in the unit square, each failing every edge whose midpoint
    falls within [radius].  Raises [Invalid_argument] when the graph has
    no coordinates or [radius <= 0]. *)

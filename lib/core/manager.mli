(** DR-connection manager: drives a {!Dr_sim.Scenario} against a routing
    scheme over a {!Net_state}.

    This is the per-router "DR-connection manager" of §2.2, executed
    network-wide: it performs the four management steps — select and
    reserve a primary route, find a backup route, register the backup along
    its path (APLV updates and spare adjustment happen inside
    {!Net_state.admit}), and release both on termination.

    Requests that cannot be routed are rejected whole (a DR-connection
    without its backup provides no dependability, so a failed backup search
    releases the primary), and the rejection reason is recorded.  Releases
    of rejected connections are ignored. *)

type stats = {
  mutable requests : int;
  mutable accepted : int;
  mutable rejected_no_primary : int;
  mutable rejected_no_backup : int;
  mutable released : int;
  mutable degraded : int;
      (** admissions whose backup could not get its full spare reservation
          somewhere (conflicting backups multiplexed, §5 fallback). *)
  mutable unprotected : int;
      (** admissions that went through with no backup at all (possible for
          route functions that allow it, e.g. bounded flooding with
          [allow_unprotected]). *)
}

type t

val create :
  graph:Dr_topo.Graph.t ->
  capacity:int ->
  spare_policy:Net_state.spare_policy ->
  route:Routing.route_fn ->
  t

val state : t -> Net_state.t
val stats : t -> stats

val apply : t -> Dr_sim.Scenario.item -> unit
(** Process one request or release event. *)

val run : t -> Dr_sim.Scenario.t -> unit
(** Replay a whole scenario (no sampling hooks; see
    {!Dr_exp.Runner} for measured runs). *)

val acceptance_ratio : t -> float
(** accepted / requests; 1.0 before any request. *)

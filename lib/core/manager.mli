(** DR-connection manager: drives a {!Dr_sim.Scenario} against a routing
    scheme over a {!Net_state}.

    This is the per-router "DR-connection manager" of §2.2, executed
    network-wide: it performs the four management steps — select and
    reserve a primary route, find a backup route, register the backup along
    its path (APLV updates and spare adjustment happen inside
    {!Net_state.admit}), and release both on termination.

    Requests that cannot be routed are rejected whole (a DR-connection
    without its backup provides no dependability, so a failed backup search
    releases the primary), and the rejection reason is recorded.  Releases
    of rejected connections are ignored. *)

type stats = {
  mutable requests : int;
  mutable accepted : int;
  mutable rejected_no_primary : int;
  mutable rejected_no_backup : int;
  mutable released : int;
  mutable degraded : int;
      (** admissions whose backup could not get its full spare reservation
          somewhere (conflicting backups multiplexed, §5 fallback). *)
  mutable unprotected : int;
      (** admissions that went through with no backup at all (possible for
          route functions that allow it, e.g. bounded flooding with
          [allow_unprotected]). *)
}

(** Counters for the reprotection queue — graceful degradation under
    churn: connections a failure left with no backup wait here, and each
    release or repair retries backup establishment for them in FIFO
    order. *)
type reprotect_stats = {
  mutable queued : int;  (** entries ever enqueued *)
  mutable drained : int;  (** entries that regained a backup *)
  mutable attempts : int;  (** backup searches run on behalf of waiters *)
  mutable abandoned : int;
      (** entries whose connection ended (teardown/loss/flush) before a
          backup could be found *)
  mutable unprotected_time : float;
      (** total seconds queue entries spent waiting without protection *)
}

type t

val create :
  graph:Dr_topo.Graph.t ->
  capacity:int ->
  spare_policy:Net_state.spare_policy ->
  route:Routing.route_fn ->
  t

val create_srlg :
  srlg:Dr_resilience.Srlg.t ->
  graph:Dr_topo.Graph.t ->
  capacity:int ->
  spare_policy:Net_state.spare_policy ->
  route:Routing.route_fn ->
  t
(** {!create} over a shared-risk-group model
    ({!Net_state.create_srlg}).  With a singleton model behaviour is
    identical to {!create}. *)

val state : t -> Net_state.t
val stats : t -> stats

val route_fn : t -> Routing.route_fn
(** The route function this manager admits with — lets the service layer
    build bit-exact replica managers for parallel what-if evaluation. *)

(** {1 Snapshot / rollback}

    {!Net_state.Snapshot} extended with the manager's own mutable truth —
    admission statistics, the reprotection queue and its counters — so a
    speculative admission (the service layer's what-if path) can be rolled
    back without leaving a trace anywhere a later decision reads. *)

type snapshot

val snapshot : ?into:snapshot -> t -> snapshot
(** Capture the manager and its state.  [~into] reuses a previous
    snapshot's buffers when the topology matches. *)

val rollback : t -> snapshot -> unit
(** Restore manager and state, in place, to the captured truth. *)

(** {1 Serialization (checkpoints)}

    {!Net_state.Serial} extended with the manager's own mutable truth:
    admission stats, reprotection counters, and the reprotection queue.
    Queue entries carry their open dwell span's (trace, span) ids so a
    recovered manager closes the same spans an uncrashed run would. *)

module Serial : sig
  type reprotect_repr = {
    rr_id : int;
    rr_scheme : string;  (** {!Routing.scheme_name} form *)
    rr_count : int;
    rr_since : float;
    rr_trace : int;
    rr_span : int;
  }

  type repr = {
    m_state : Net_state.Serial.repr;
    m_stats : stats;
    m_rstats : reprotect_stats;
    m_reprotect : reprotect_repr list;
  }

  val dump : t -> repr

  val restore : t -> repr -> unit
  (** Overwrite a same-topology manager in place.  Raises
      [Invalid_argument] on shape mismatch or an unknown scheme name. *)
end

val apply : t -> Dr_sim.Scenario.item -> unit
(** Process one request or release event. *)

val run : t -> Dr_sim.Scenario.t -> unit
(** Replay a whole scenario (no sampling hooks; see
    {!Dr_exp.Runner} for measured runs). *)

val acceptance_ratio : t -> float
(** accepted / requests; 1.0 before any request. *)

(** {1 Reprotection queue} *)

val queue_reprotect :
  t -> id:int -> scheme:Routing.scheme -> ?backup_count:int -> now:float -> unit -> unit
(** Enqueue a live, backup-less connection for reprotection ([backup_count]
    backups wanted, default 1).  No-op if the connection is gone, already
    has a backup, or is already queued. *)

val drain_reprotect : t -> now:float -> int
(** Retry backup establishment for every queued connection (FIFO), keeping
    the ones that still cannot be protected.  Returns how many entries
    left the queue with a backup.  {!apply} calls this automatically after
    each release; failure drivers should call it after each repair. *)

val flush_reprotect : t -> now:float -> unit
(** End-of-run accounting: mark all remaining entries abandoned, charging
    their unprotected time up to [now], and empty the queue. *)

val reprotect_pending : t -> int
(** Entries currently waiting. *)

val reprotect_stats : t -> reprotect_stats

type reprotect_router =
  Routing.scheme ->
  Net_state.t ->
  primary:Dr_topo.Path.t ->
  bw:int ->
  existing:Dr_topo.Path.t list ->
  count:int ->
  Dr_topo.Path.t list
(** How {!drain_reprotect} searches for replacement backups. *)

val default_reprotect_router : reprotect_router
(** {!Routing.additional_backups} — the pre-SRLG behaviour and the
    default for every manager. *)

val chain_reprotect_router : reprotect_router
(** {!Routing.additional_chain_members} (paths only): replacements are
    SRLG-disjoint from the primary where feasible.  With a singleton
    model this selects exactly the same routes as the default. *)

val set_reprotect_router : t -> reprotect_router -> unit
(** Install the router used for subsequent {!drain_reprotect} calls. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Shortest_path = Dr_topo.Shortest_path
module Tm = Dr_telemetry.Telemetry
module J = Dr_obs.Journal

(* Telemetry: route-computation timers (one per scheme) and the causes of
   infeasibility, both per candidate link and per request. *)
let t_find_primary = Tm.Timer.make "routing.find_primary"
let t_find_backup = Tm.Timer.make "routing.find_backup"
let t_route_plsr = Tm.Timer.make "routing.route.P-LSR"
let t_route_dlsr = Tm.Timer.make "routing.route.D-LSR"
let t_route_spf = Tm.Timer.make "routing.route.SPF"
let c_link_dead = Tm.Counter.make "routing.link.rejected.dead"
let c_link_no_bw = Tm.Counter.make "routing.link.rejected.bandwidth"
let c_accepted = Tm.Counter.make "routing.accepted"
let c_reject_no_primary = Tm.Counter.make "routing.reject.no_primary"
let c_reject_no_backup = Tm.Counter.make "routing.reject.no_backup"

type scheme = Plsr | Dlsr | Spf

let scheme_name = function Plsr -> "P-LSR" | Dlsr -> "D-LSR" | Spf -> "SPF"

let scheme_of_string s =
  match String.lowercase_ascii s with
  | "p-lsr" | "plsr" -> Ok Plsr
  | "d-lsr" | "dlsr" -> Ok Dlsr
  | "spf" -> Ok Spf
  | other -> Error (Printf.sprintf "unknown scheme %S (want p-lsr, d-lsr or spf)" other)

let epsilon = 1e-3
let q_constant = 1.0e6

let link_alive state l =
  not (Net_state.edge_failed state ~edge:(Graph.edge_of_link l))

let find_primary state ~src ~dst ~bw =
  Tm.Timer.time t_find_primary (fun () ->
      let result =
        let resources = Net_state.resources state in
        let usable l =
          link_alive state l && Resources.primary_feasible resources ~link:l ~bw
        in
        Shortest_path.min_hop_path (Net_state.graph state) ~usable ~src ~dst ()
      in
      (match result with
      | Some p when !J.on ->
          J.record (J.Primary_chosen { src; dst; bw; links = Path.links p })
      | Some _ | None -> ());
      result)

type cost_parts = { q : float; conflict : float; eps : float }

let parts_total p = p.q +. p.conflict +. p.eps

type link_verdict =
  | Dead
  | No_bandwidth of { required : int }
  | Cost of cost_parts

(* The per-link cost decomposition every scheme's total is assembled from.
   [backup_link_cost_general] below sums the parts in exactly the order
   [parts_total] uses, so an explained row always matches the Dijkstra
   cost bit for bit. *)
let backup_link_verdict_general scheme state ~primary ~earlier_backups ~bw =
  let resources = Net_state.resources state in
  let primary_edges = Path.edge_set primary in
  let primary_edge_list = Path.Link_set.elements primary_edges in
  let primary_links = Path.lset primary in
  let earlier_links =
    List.fold_left
      (fun acc b -> Path.Link_set.union acc (Path.lset b))
      Path.Link_set.empty earlier_backups
  in
  let earlier_edges =
    List.fold_left
      (fun acc b -> Path.Link_set.union acc (Path.edge_set b))
      Path.Link_set.empty earlier_backups
  in
  fun l ->
    (* A backup sharing a directed link with routes of its own connection
       must fit on top of their reservations there. *)
    let own_shares =
      (if Path.Link_set.mem l primary_links then 1 else 0)
      + if Path.Link_set.mem l earlier_links then 1 else 0
    in
    let required = bw * (1 + own_shares) in
    if not (link_alive state l) then Dead
    else if not (Resources.backup_feasible resources ~link:l ~bw:required) then
      No_bandwidth { required }
    else
      let q =
        (* The paper's large constant Q: sharing a failure domain with the
           primary is heavily penalised but not forbidden — a source whose
           only attachment edge carries the primary has no disjoint
           alternative, and the paper only requires *minimal* overlap.
           Subsequent backups get the same penalty on earlier backups'
           edges: a second backup matters exactly when the first cannot
           activate. *)
        let e = Graph.edge_of_link l in
        (if Path.Link_set.mem e primary_edges then q_constant else 0.0)
        +. if Path.Link_set.mem e earlier_edges then q_constant else 0.0
      in
      match scheme with
      | Spf -> Cost { q; conflict = 1.0; eps = 0.0 }
      | Plsr ->
          Cost
            {
              q;
              conflict = float_of_int (Net_state.aplv_norm state l);
              eps = epsilon;
            }
      | Dlsr ->
          Cost
            {
              q;
              conflict =
                float_of_int
                  (Net_state.conflict_count state ~link:l
                     ~edge_lset:primary_edge_list);
              eps = epsilon;
            }

let backup_link_verdict ?(earlier_backups = []) scheme state ~primary ~bw =
  backup_link_verdict_general scheme state ~primary ~earlier_backups ~bw

let backup_link_cost_general scheme state ~primary ~earlier_backups ~bw =
  let verdict =
    backup_link_verdict_general scheme state ~primary ~earlier_backups ~bw
  in
  fun l ->
    match verdict l with
    | Dead ->
        Tm.Counter.incr c_link_dead;
        infinity
    | No_bandwidth _ ->
        Tm.Counter.incr c_link_no_bw;
        infinity
    | Cost p -> parts_total p

let backup_link_cost scheme state ~primary ~bw =
  backup_link_cost_general scheme state ~primary ~earlier_backups:[] ~bw

(* --- workspace fast path -------------------------------------------------- *)

(* Per-domain routing workspace: epoch-stamped membership arrays replacing
   the per-query [Path.Link_set] values of {!backup_link_verdict_general}.
   A query marks its primary/earlier links and edges once (stamping slots
   with the query's epoch), then every Dijkstra relaxation answers "is
   this link on the primary?" with one array read instead of a balanced
   tree descent.  The primary's edge LSET is also staged into a flat array
   so D-LSR's conflict term is a tight loop over {!Net_state}'s dense
   conflict-count mirror.  One workspace per domain (Domain.DLS) keeps
   [--jobs N] pools race-free; the cost closures built on it are consumed
   within a single search, before any other query reuses the epoch. *)
module Ws = struct
  type t = {
    mutable prim_link : int array; (* per link: epoch when on the primary *)
    mutable earl_link : int array; (* per link: epoch when on an earlier backup *)
    mutable prim_edge : int array; (* per edge: epoch when under the primary *)
    mutable earl_edge : int array; (* per edge: epoch when under an earlier backup *)
    mutable pedges : int array; (* the primary's edge LSET, staged *)
    mutable pedge_n : int;
    mutable epoch : int;
  }

  let create () =
    {
      prim_link = [||];
      earl_link = [||];
      prim_edge = [||];
      earl_edge = [||];
      pedges = [||];
      pedge_n = 0;
      epoch = 0;
    }

  let key = Domain.DLS.new_key create

  let get ~links ~edges =
    let ws = Domain.DLS.get key in
    if Array.length ws.prim_link < links then begin
      ws.prim_link <- Array.make links 0;
      ws.earl_link <- Array.make links 0
    end;
    if Array.length ws.prim_edge < edges then begin
      ws.prim_edge <- Array.make edges 0;
      ws.earl_edge <- Array.make edges 0;
      ws.pedges <- Array.make edges 0
    end;
    ws.epoch <- ws.epoch + 1;
    ws
end

(* Allocation-free twin of {!backup_link_cost_general}.  Chases the same
   decomposition — [q +. conflict +. eps] in {!parts_total}'s association
   order, with the conflict term read from {!Net_state}'s incremental
   caches — so its finite values are bit-identical to the public cost
   (asserted by the differential harness against {!Routing_reference}). *)
let fast_backup_link_cost scheme state ~primary ~earlier_backups ~bw =
  let graph = Net_state.graph state in
  let resources = Net_state.resources state in
  let ws =
    Ws.get ~links:(Graph.link_count graph) ~edges:(Graph.edge_count graph)
  in
  let ep = ws.Ws.epoch in
  let prim_link = ws.Ws.prim_link
  and earl_link = ws.Ws.earl_link
  and prim_edge = ws.Ws.prim_edge
  and earl_edge = ws.Ws.earl_edge
  and pedges = ws.Ws.pedges in
  List.iter (fun l -> prim_link.(l) <- ep) (Path.links primary);
  let n = ref 0 in
  Path.Link_set.iter
    (fun e ->
      pedges.(!n) <- e;
      incr n;
      prim_edge.(e) <- ep)
    (Path.edge_set primary);
  ws.Ws.pedge_n <- !n;
  List.iter
    (fun b ->
      List.iter (fun l -> earl_link.(l) <- ep) (Path.links b);
      Path.Link_set.iter (fun e -> earl_edge.(e) <- ep) (Path.edge_set b))
    earlier_backups;
  let pedge_n = ws.Ws.pedge_n in
  fun l ->
    let own_shares =
      (if prim_link.(l) = ep then 1 else 0)
      + if earl_link.(l) = ep then 1 else 0
    in
    let required = bw * (1 + own_shares) in
    if not (link_alive state l) then begin
      Tm.Counter.incr c_link_dead;
      infinity
    end
    else if not (Resources.backup_feasible resources ~link:l ~bw:required) then begin
      Tm.Counter.incr c_link_no_bw;
      infinity
    end
    else
      let e = Graph.edge_of_link l in
      let q =
        (if prim_edge.(e) = ep then q_constant else 0.0)
        +. if earl_edge.(e) = ep then q_constant else 0.0
      in
      match scheme with
      | Spf -> q +. 1.0 +. 0.0
      | Plsr -> q +. float_of_int (Net_state.aplv_norm state l) +. epsilon
      | Dlsr ->
          q
          +. float_of_int
               (Net_state.conflict_count_arr state ~link:l ~edges:pedges
                  ~n:pedge_n)
          +. epsilon

(* Journal the chosen backup with its per-link cost decomposition.  The
   network state is unchanged during route computation, so re-deriving the
   verdicts here reproduces exactly the costs the search minimised. *)
let journal_backup_chosen scheme state ~primary ~earlier_backups ~bw path =
  let verdict =
    backup_link_verdict_general scheme state ~primary ~earlier_backups ~bw
  in
  let links =
    List.map
      (fun l ->
        match verdict l with
        | Cost p ->
            { J.lc_link = l; lc_q = p.q; lc_conflict = p.conflict; lc_eps = p.eps }
        | Dead | No_bandwidth _ ->
            (* Unreachable: the search only returns feasible links. *)
            { J.lc_link = l; lc_q = infinity; lc_conflict = 0.0; lc_eps = 0.0 })
      (Path.links path)
  in
  J.record
    (J.Backup_chosen
       {
         src = Path.src primary;
         dst = Path.dst primary;
         bw;
         scheme = scheme_name scheme;
         rank = List.length earlier_backups;
         links;
       })

let find_backup_general ?max_hops scheme state ~primary ~earlier_backups ~bw =
  Tm.Timer.time t_find_backup (fun () ->
      let cost =
        fast_backup_link_cost scheme state ~primary ~earlier_backups ~bw
      in
      let graph = Net_state.graph state in
      let src = Path.src primary and dst = Path.dst primary in
      let found =
        match max_hops with
        | None -> (
            match Shortest_path.dijkstra_path graph ~cost ~src ~dst with
            | None -> None
            | Some (_, p) -> Some p)
        | Some h -> (
            (* QoS-bounded backup (paper §2: a backup longer than the delay
               budget allows is useless): cheapest conflict cost within the hop
               budget. *)
            match Dr_topo.Constrained_path.cheapest_within_hops graph ~cost ~src
                    ~dst ~max_hops:h
            with
            | None -> None
            | Some (_, p) -> Some p)
      in
      (match found with
      | Some p when !J.on ->
          journal_backup_chosen scheme state ~primary ~earlier_backups ~bw p
      | Some _ | None -> ());
      found)

let find_backup ?max_hops scheme state ~primary ~bw =
  find_backup_general ?max_hops scheme state ~primary ~earlier_backups:[] ~bw

let collect_backups ?max_hops scheme state ~primary ~bw ~count ~existing =
  let rec collect earlier fresh k =
    if k = 0 then List.rev fresh
    else
      match
        find_backup_general ?max_hops scheme state ~primary
          ~earlier_backups:earlier ~bw
      with
      | None -> List.rev fresh
      | Some b ->
          (* A repeat of the primary or of an already-chosen route adds no
             protection; the search is exhausted. *)
          if
            Path.links b = Path.links primary
            || List.exists (fun b' -> Path.links b' = Path.links b) earlier
          then List.rev fresh
          else collect (b :: earlier) (b :: fresh) (k - 1)
  in
  collect (List.rev existing) [] count

let find_backups ?max_hops scheme state ~primary ~bw ~count =
  collect_backups ?max_hops scheme state ~primary ~bw ~count ~existing:[]

let additional_backups ?max_hops scheme state ~primary ~bw ~existing ~count =
  collect_backups ?max_hops scheme state ~primary ~bw ~count ~existing

type reject_reason = No_primary | No_backup

let reject_reason_name = function
  | No_primary -> "no-primary"
  | No_backup -> "no-backup"

type route_pair = { primary : Path.t; backups : Path.t list }

type route_fn =
  Net_state.t -> src:int -> dst:int -> bw:int -> (route_pair, reject_reason) result

let route_timer = function
  | Plsr -> t_route_plsr
  | Dlsr -> t_route_dlsr
  | Spf -> t_route_spf

let count_route_result = function
  | Ok _ -> Tm.Counter.incr c_accepted
  | Error No_primary -> Tm.Counter.incr c_reject_no_primary
  | Error No_backup -> Tm.Counter.incr c_reject_no_backup

let link_state_route_fn ?(backup_count = 1) ?backup_hop_slack scheme ~with_backup
    : route_fn =
 fun state ~src ~dst ~bw ->
  let result =
    Tm.Timer.time (route_timer scheme) (fun () ->
        match find_primary state ~src ~dst ~bw with
        | None -> Error No_primary
        | Some primary ->
            if not with_backup then Ok { primary; backups = [] }
            else (
              let max_hops =
                Option.map
                  (fun slack -> Path.hops primary + slack)
                  backup_hop_slack
              in
              match
                find_backups ?max_hops scheme state ~primary ~bw
                  ~count:backup_count
              with
              | [] -> Error No_backup
              | backups -> Ok { primary; backups }))
  in
  count_route_result result;
  result

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Shortest_path = Dr_topo.Shortest_path
module Srlg = Dr_resilience.Srlg
module Tm = Dr_telemetry.Telemetry
module J = Dr_obs.Journal

(* Telemetry: route-computation timers (one per scheme) and the causes of
   infeasibility, both per candidate link and per request. *)
let t_find_primary = Tm.Timer.make "routing.find_primary"
let t_find_backup = Tm.Timer.make "routing.find_backup"
let t_route_plsr = Tm.Timer.make "routing.route.P-LSR"
let t_route_dlsr = Tm.Timer.make "routing.route.D-LSR"
let t_route_spf = Tm.Timer.make "routing.route.SPF"
let c_link_dead = Tm.Counter.make "routing.link.rejected.dead"
let c_link_no_bw = Tm.Counter.make "routing.link.rejected.bandwidth"
let c_accepted = Tm.Counter.make "routing.accepted"
let c_reject_no_primary = Tm.Counter.make "routing.reject.no_primary"
let c_reject_no_backup = Tm.Counter.make "routing.reject.no_backup"

type scheme = Plsr | Dlsr | Spf

let scheme_name = function Plsr -> "P-LSR" | Dlsr -> "D-LSR" | Spf -> "SPF"

let scheme_of_string s =
  match String.lowercase_ascii s with
  | "p-lsr" | "plsr" -> Ok Plsr
  | "d-lsr" | "dlsr" -> Ok Dlsr
  | "spf" -> Ok Spf
  | other -> Error (Printf.sprintf "unknown scheme %S (want p-lsr, d-lsr or spf)" other)

let epsilon = 1e-3
let q_constant = 1.0e6

let link_alive state l =
  not (Net_state.edge_failed state ~edge:(Graph.edge_of_link l))

let find_primary state ~src ~dst ~bw =
  Tm.Timer.time t_find_primary (fun () ->
      let result =
        let resources = Net_state.resources state in
        let usable l =
          link_alive state l && Resources.primary_feasible resources ~link:l ~bw
        in
        Shortest_path.min_hop_path (Net_state.graph state) ~usable ~src ~dst ()
      in
      (match result with
      | Some p when !J.on ->
          J.record (J.Primary_chosen { src; dst; bw; links = Path.links p })
      | Some _ | None -> ());
      result)

type cost_parts = { q : float; conflict : float; eps : float }

let parts_total p = p.q +. p.conflict +. p.eps

type link_verdict =
  | Dead
  | No_bandwidth of { required : int }
  | Cost of cost_parts

(* The per-link cost decomposition every scheme's total is assembled from.
   [backup_link_cost_general] below sums the parts in exactly the order
   [parts_total] uses, so an explained row always matches the Dijkstra
   cost bit for bit. *)
let backup_link_verdict_general scheme state ~primary ~earlier_backups ~bw =
  let resources = Net_state.resources state in
  let primary_edges = Path.edge_set primary in
  let primary_edge_list = Path.Link_set.elements primary_edges in
  let primary_links = Path.lset primary in
  (* Directed-link share counts over the earlier backups: a link two
     earlier members both use must host the new backup on top of BOTH
     reservations, so multiplicity matters (admission counts occurrences
     the same way). *)
  let earlier_share_count =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun b ->
        List.iter
          (fun l ->
            Hashtbl.replace tbl l
              (1 + Option.value (Hashtbl.find_opt tbl l) ~default:0))
          (Path.links b))
      earlier_backups;
    tbl
  in
  let earlier_edges =
    List.fold_left
      (fun acc b -> Path.Link_set.union acc (Path.edge_set b))
      Path.Link_set.empty earlier_backups
  in
  (* Failure domains are SRLG groups: a link shares the primary's (or an
     earlier backup's) fate when its edge belongs to any group one of
     their edges belongs to.  With the singleton model this degenerates
     to plain edge membership, bit-identically — that branch is the
     pre-SRLG code verbatim. *)
  let srlg = Net_state.srlg state in
  let shares_primary, shares_earlier =
    if Srlg.is_singleton srlg then
      ( (fun e -> Path.Link_set.mem e primary_edges),
        fun e -> Path.Link_set.mem e earlier_edges )
    else
      let group_set edges =
        Path.Link_set.fold
          (fun e acc ->
            Array.fold_left
              (fun acc g -> Path.Link_set.add g acc)
              acc
              (Srlg.groups_of_edge_arr srlg e))
          edges Path.Link_set.empty
      in
      let primary_groups = group_set primary_edges
      and earlier_groups = group_set earlier_edges in
      let shares groups e =
        Array.exists
          (fun g -> Path.Link_set.mem g groups)
          (Srlg.groups_of_edge_arr srlg e)
      in
      (shares primary_groups, shares earlier_groups)
  in
  fun l ->
    (* A backup sharing a directed link with routes of its own connection
       must fit on top of their reservations there. *)
    let own_shares =
      (if Path.Link_set.mem l primary_links then 1 else 0)
      + Option.value (Hashtbl.find_opt earlier_share_count l) ~default:0
    in
    let required = bw * (1 + own_shares) in
    if not (link_alive state l) then Dead
    else if not (Resources.backup_feasible resources ~link:l ~bw:required) then
      No_bandwidth { required }
    else
      let q =
        (* The paper's large constant Q: sharing a failure domain with the
           primary is heavily penalised but not forbidden — a source whose
           only attachment edge carries the primary has no disjoint
           alternative, and the paper only requires *minimal* overlap.
           Subsequent backups get the same penalty on earlier backups'
           edges: a second backup matters exactly when the first cannot
           activate. *)
        let e = Graph.edge_of_link l in
        (if shares_primary e then q_constant else 0.0)
        +. if shares_earlier e then q_constant else 0.0
      in
      match scheme with
      | Spf -> Cost { q; conflict = 1.0; eps = 0.0 }
      | Plsr ->
          Cost
            {
              q;
              conflict = float_of_int (Net_state.aplv_norm state l);
              eps = epsilon;
            }
      | Dlsr ->
          Cost
            {
              q;
              conflict =
                float_of_int
                  (Net_state.conflict_count state ~link:l
                     ~edge_lset:primary_edge_list);
              eps = epsilon;
            }

let backup_link_verdict ?(earlier_backups = []) scheme state ~primary ~bw =
  backup_link_verdict_general scheme state ~primary ~earlier_backups ~bw

let backup_link_cost_general scheme state ~primary ~earlier_backups ~bw =
  let verdict =
    backup_link_verdict_general scheme state ~primary ~earlier_backups ~bw
  in
  fun l ->
    match verdict l with
    | Dead ->
        Tm.Counter.incr c_link_dead;
        infinity
    | No_bandwidth _ ->
        Tm.Counter.incr c_link_no_bw;
        infinity
    | Cost p -> parts_total p

let backup_link_cost scheme state ~primary ~bw =
  backup_link_cost_general scheme state ~primary ~earlier_backups:[] ~bw

(* --- workspace fast path -------------------------------------------------- *)

(* Per-domain routing workspace: epoch-stamped membership arrays replacing
   the per-query [Path.Link_set] values of {!backup_link_verdict_general}.
   A query marks its primary/earlier links and edges once (stamping slots
   with the query's epoch), then every Dijkstra relaxation answers "is
   this link on the primary?" with one array read instead of a balanced
   tree descent.  The primary's edge LSET is also staged into a flat array
   so D-LSR's conflict term is a tight loop over {!Net_state}'s dense
   conflict-count mirror.  One workspace per domain (Domain.DLS) keeps
   [--jobs N] pools race-free; the cost closures built on it are consumed
   within a single search, before any other query reuses the epoch. *)
module Ws = struct
  type t = {
    mutable prim_link : int array; (* per link: epoch when on the primary *)
    mutable earl_link : int array; (* per link: epoch when on an earlier backup *)
    mutable earl_n : int array; (* per link: earlier backups using it (valid
                                   when earl_link carries the epoch) *)
    mutable prim_edge : int array; (* per edge: epoch when under the primary *)
    mutable earl_edge : int array; (* per edge: epoch when under an earlier backup *)
    mutable prim_group : int array; (* per SRLG: epoch when under the primary *)
    mutable earl_group : int array; (* per SRLG: epoch when under an earlier backup *)
    mutable pedges : int array; (* the primary's edge LSET, staged *)
    mutable pedge_n : int;
    mutable epoch : int;
  }

  let create () =
    {
      prim_link = [||];
      earl_link = [||];
      earl_n = [||];
      prim_edge = [||];
      earl_edge = [||];
      prim_group = [||];
      earl_group = [||];
      pedges = [||];
      pedge_n = 0;
      epoch = 0;
    }

  let key = Domain.DLS.new_key create

  let get ?(groups = 0) ~links ~edges () =
    let ws = Domain.DLS.get key in
    if Array.length ws.prim_link < links then begin
      ws.prim_link <- Array.make links 0;
      ws.earl_link <- Array.make links 0;
      ws.earl_n <- Array.make links 0
    end;
    if Array.length ws.prim_edge < edges then begin
      ws.prim_edge <- Array.make edges 0;
      ws.earl_edge <- Array.make edges 0;
      ws.pedges <- Array.make edges 0
    end;
    if Array.length ws.prim_group < groups then begin
      ws.prim_group <- Array.make groups 0;
      ws.earl_group <- Array.make groups 0
    end;
    ws.epoch <- ws.epoch + 1;
    ws
end

(* Allocation-free twin of {!backup_link_cost_general}.  Chases the same
   decomposition — [q +. conflict +. eps] in {!parts_total}'s association
   order, with the conflict term read from {!Net_state}'s incremental
   caches — so its finite values are bit-identical to the public cost
   (asserted by the differential harness against {!Routing_reference}). *)
let fast_backup_link_cost scheme state ~primary ~earlier_backups ~bw =
  let graph = Net_state.graph state in
  let resources = Net_state.resources state in
  let srlg = Net_state.srlg state in
  let singleton = Srlg.is_singleton srlg in
  let ws =
    Ws.get
      ~groups:(if singleton then 0 else Srlg.group_count srlg)
      ~links:(Graph.link_count graph) ~edges:(Graph.edge_count graph) ()
  in
  let ep = ws.Ws.epoch in
  let prim_link = ws.Ws.prim_link
  and earl_link = ws.Ws.earl_link
  and earl_n = ws.Ws.earl_n
  and prim_edge = ws.Ws.prim_edge
  and earl_edge = ws.Ws.earl_edge
  and prim_group = ws.Ws.prim_group
  and earl_group = ws.Ws.earl_group
  and pedges = ws.Ws.pedges in
  List.iter (fun l -> prim_link.(l) <- ep) (Path.links primary);
  let n = ref 0 in
  Path.Link_set.iter
    (fun e ->
      pedges.(!n) <- e;
      incr n;
      prim_edge.(e) <- ep;
      if not singleton then
        Array.iter
          (fun g -> prim_group.(g) <- ep)
          (Srlg.groups_of_edge_arr srlg e))
    (Path.edge_set primary);
  ws.Ws.pedge_n <- !n;
  List.iter
    (fun b ->
      List.iter
        (fun l ->
          if earl_link.(l) = ep then earl_n.(l) <- earl_n.(l) + 1
          else begin
            earl_link.(l) <- ep;
            earl_n.(l) <- 1
          end)
        (Path.links b);
      Path.Link_set.iter
        (fun e ->
          earl_edge.(e) <- ep;
          if not singleton then
            Array.iter
              (fun g -> earl_group.(g) <- ep)
              (Srlg.groups_of_edge_arr srlg e))
        (Path.edge_set b))
    earlier_backups;
  let pedge_n = ws.Ws.pedge_n in
  fun l ->
    let own_shares =
      (if prim_link.(l) = ep then 1 else 0)
      + if earl_link.(l) = ep then earl_n.(l) else 0
    in
    let required = bw * (1 + own_shares) in
    if not (link_alive state l) then begin
      Tm.Counter.incr c_link_dead;
      infinity
    end
    else if not (Resources.backup_feasible resources ~link:l ~bw:required) then begin
      Tm.Counter.incr c_link_no_bw;
      infinity
    end
    else
      let e = Graph.edge_of_link l in
      let q =
        if singleton then
          (if prim_edge.(e) = ep then q_constant else 0.0)
          +. if earl_edge.(e) = ep then q_constant else 0.0
        else
          (* SRLG generalisation: the link shares a failure domain when any
             group owning its edge is stamped.  Kept as a separate branch
             so the singleton hot path above stays the pre-SRLG code
             verbatim (and bit-identical). *)
          let owners = Srlg.groups_of_edge_arr srlg e in
          (if Array.exists (fun g -> prim_group.(g) = ep) owners then
             q_constant
           else 0.0)
          +.
          if Array.exists (fun g -> earl_group.(g) = ep) owners then q_constant
          else 0.0
      in
      match scheme with
      | Spf -> q +. 1.0 +. 0.0
      | Plsr -> q +. float_of_int (Net_state.aplv_norm state l) +. epsilon
      | Dlsr ->
          q
          +. float_of_int
               (Net_state.conflict_count_arr state ~link:l ~edges:pedges
                  ~n:pedge_n)
          +. epsilon

(* Journal the chosen backup with its per-link cost decomposition.  The
   network state is unchanged during route computation, so re-deriving the
   verdicts here reproduces exactly the costs the search minimised. *)
let journal_backup_chosen scheme state ~primary ~earlier_backups ~bw path =
  let verdict =
    backup_link_verdict_general scheme state ~primary ~earlier_backups ~bw
  in
  let links =
    List.map
      (fun l ->
        match verdict l with
        | Cost p ->
            { J.lc_link = l; lc_q = p.q; lc_conflict = p.conflict; lc_eps = p.eps }
        | Dead | No_bandwidth _ ->
            (* Unreachable: the search only returns feasible links. *)
            { J.lc_link = l; lc_q = infinity; lc_conflict = 0.0; lc_eps = 0.0 })
      (Path.links path)
  in
  J.record
    (J.Backup_chosen
       {
         src = Path.src primary;
         dst = Path.dst primary;
         bw;
         scheme = scheme_name scheme;
         rank = List.length earlier_backups;
         links;
       })

let find_backup_general ?max_hops scheme state ~primary ~earlier_backups ~bw =
  Tm.Timer.time t_find_backup (fun () ->
      let cost =
        fast_backup_link_cost scheme state ~primary ~earlier_backups ~bw
      in
      let graph = Net_state.graph state in
      let src = Path.src primary and dst = Path.dst primary in
      let found =
        match max_hops with
        | None -> (
            match Shortest_path.dijkstra_path graph ~cost ~src ~dst with
            | None -> None
            | Some (_, p) -> Some p)
        | Some h -> (
            (* QoS-bounded backup (paper §2: a backup longer than the delay
               budget allows is useless): cheapest conflict cost within the hop
               budget. *)
            match Dr_topo.Constrained_path.cheapest_within_hops graph ~cost ~src
                    ~dst ~max_hops:h
            with
            | None -> None
            | Some (_, p) -> Some p)
      in
      (match found with
      | Some p when !J.on ->
          journal_backup_chosen scheme state ~primary ~earlier_backups ~bw p
      | Some _ | None -> ());
      found)

let find_backup ?max_hops scheme state ~primary ~bw =
  find_backup_general ?max_hops scheme state ~primary ~earlier_backups:[] ~bw

let collect_backups ?max_hops scheme state ~primary ~bw ~count ~existing =
  let rec collect earlier fresh k =
    if k = 0 then List.rev fresh
    else
      match
        find_backup_general ?max_hops scheme state ~primary
          ~earlier_backups:earlier ~bw
      with
      | None -> List.rev fresh
      | Some b ->
          (* A repeat of the primary or of an already-chosen route adds no
             protection; the search is exhausted. *)
          if
            Path.links b = Path.links primary
            || List.exists (fun b' -> Path.links b' = Path.links b) earlier
          then List.rev fresh
          else collect (b :: earlier) (b :: fresh) (k - 1)
  in
  collect (List.rev existing) [] count

let find_backups ?max_hops scheme state ~primary ~bw ~count =
  collect_backups ?max_hops scheme state ~primary ~bw ~count ~existing:[]

let additional_backups ?max_hops scheme state ~primary ~bw ~existing ~count =
  collect_backups ?max_hops scheme state ~primary ~bw ~count ~existing

(* ---- k-resilient backup chains ------------------------------------------- *)

type chain_member = { cm_path : Path.t; cm_rank : int; cm_disjoint : bool }

(* Post-hoc disjointness flags for a singleton-model chain: member i is
   disjoint when it shares no failure group with the primary, the existing
   backups, or any earlier member.  (With singleton groups that's plain
   edge-disjointness.) *)
let chain_disjoint_flags srlg ~primary ~existing paths =
  let seen = ref Path.Link_set.empty in
  let add p =
    Path.Link_set.iter
      (fun e ->
        Array.iter
          (fun g -> seen := Path.Link_set.add g !seen)
          (Srlg.groups_of_edge_arr srlg e))
      (Path.edge_set p)
  in
  add primary;
  List.iter add existing;
  List.map
    (fun p ->
      let disjoint =
        Path.Link_set.for_all
          (fun e ->
            Array.for_all
              (fun g -> not (Path.Link_set.mem g !seen))
              (Srlg.groups_of_edge_arr srlg e))
          (Path.edge_set p)
      in
      add p;
      (p, disjoint))
    paths

let collect_chain ?max_hops scheme state ~primary ~bw ~count ~existing =
  let srlg = Net_state.srlg state in
  let base_rank = List.length existing in
  if Srlg.is_singleton srlg then
    (* Bit-identity by construction: with singleton groups the chain is
       exactly the multi-backup selection the soft Q-penalised search
       produces (the k=1 golden-fixture gate depends on this), with
       disjointness recovered post hoc. *)
    collect_backups ?max_hops scheme state ~primary ~bw ~count ~existing
    |> chain_disjoint_flags srlg ~primary ~existing
    |> List.mapi (fun i (p, disjoint) ->
           { cm_path = p; cm_rank = base_rank + i; cm_disjoint = disjoint })
  else begin
    let graph = Net_state.graph state in
    let src = Path.src primary and dst = Path.dst primary in
    let banned = Array.make (Srlg.group_count srlg) false in
    let ban p =
      Path.Link_set.iter
        (fun e ->
          Array.iter
            (fun g -> banned.(g) <- true)
            (Srlg.groups_of_edge_arr srlg e))
        (Path.edge_set p)
    in
    ban primary;
    List.iter ban existing;
    (* Strict pass: links whose edge lies in any banned group are pruned
       outright, so a hit is fully SRLG-disjoint from the primary and
       from every earlier chain member. *)
    let find_strict earlier =
      Tm.Timer.time t_find_backup (fun () ->
          let base =
            fast_backup_link_cost scheme state ~primary
              ~earlier_backups:earlier ~bw
          in
          let cost l =
            if
              Array.exists
                (fun g -> banned.(g))
                (Srlg.groups_of_edge_arr srlg (Graph.edge_of_link l))
            then infinity
            else base l
          in
          match max_hops with
          | None -> (
              match Shortest_path.dijkstra_path graph ~cost ~src ~dst with
              | None -> None
              | Some (_, p) -> Some p)
          | Some h -> (
              match
                Dr_topo.Constrained_path.cheapest_within_hops graph ~cost ~src
                  ~dst ~max_hops:h
              with
              | None -> None
              | Some (_, p) -> Some p))
    in
    let rec collect earlier fresh rank k =
      if k = 0 then List.rev fresh
      else
        match find_strict earlier with
        | Some p ->
            (* A strict hit can never duplicate the primary or an earlier
               member — their edges' groups are banned. *)
            if !J.on then
              journal_backup_chosen scheme state ~primary
                ~earlier_backups:earlier ~bw p;
            ban p;
            collect (p :: earlier)
              ({ cm_path = p; cm_rank = rank; cm_disjoint = true } :: fresh)
              (rank + 1) (k - 1)
        | None -> (
            (* Graceful fallback when disjointness is infeasible: the soft
               Q-penalised search (the paper requires *minimal*, not zero,
               overlap).  Any fully disjoint route would have survived the
               strict pass, so a fallback member is genuinely
               non-disjoint. *)
            match
              find_backup_general ?max_hops scheme state ~primary
                ~earlier_backups:earlier ~bw
            with
            | None -> List.rev fresh
            | Some p ->
                if
                  Path.links p = Path.links primary
                  || List.exists (fun b -> Path.links b = Path.links p) earlier
                then List.rev fresh
                else begin
                  ban p;
                  collect (p :: earlier)
                    ({ cm_path = p; cm_rank = rank; cm_disjoint = false }
                    :: fresh)
                    (rank + 1) (k - 1)
                end)
    in
    collect (List.rev existing) [] base_rank count
  end

let find_backup_chain ?max_hops scheme state ~primary ~bw ~k =
  let chain =
    collect_chain ?max_hops scheme state ~primary ~bw ~count:k ~existing:[]
  in
  (match chain with
  | _ :: _ when !J.on ->
      J.record
        (J.Chain_built
           {
             src = Path.src primary;
             dst = Path.dst primary;
             members = List.length chain;
             disjoint =
               List.length (List.filter (fun m -> m.cm_disjoint) chain);
           })
  | _ -> ());
  chain

let additional_chain_members ?max_hops scheme state ~primary ~bw ~existing
    ~count =
  collect_chain ?max_hops scheme state ~primary ~bw ~count ~existing

type reject_reason = No_primary | No_backup

let reject_reason_name = function
  | No_primary -> "no-primary"
  | No_backup -> "no-backup"

type route_pair = { primary : Path.t; backups : Path.t list }

type route_fn =
  Net_state.t -> src:int -> dst:int -> bw:int -> (route_pair, reject_reason) result

let route_timer = function
  | Plsr -> t_route_plsr
  | Dlsr -> t_route_dlsr
  | Spf -> t_route_spf

let count_route_result = function
  | Ok _ -> Tm.Counter.incr c_accepted
  | Error No_primary -> Tm.Counter.incr c_reject_no_primary
  | Error No_backup -> Tm.Counter.incr c_reject_no_backup

let link_state_route_fn ?(backup_count = 1) ?backup_hop_slack scheme ~with_backup
    : route_fn =
 fun state ~src ~dst ~bw ->
  let result =
    Tm.Timer.time (route_timer scheme) (fun () ->
        match find_primary state ~src ~dst ~bw with
        | None -> Error No_primary
        | Some primary ->
            if not with_backup then Ok { primary; backups = [] }
            else (
              let max_hops =
                Option.map
                  (fun slack -> Path.hops primary + slack)
                  backup_hop_slack
              in
              match
                find_backups ?max_hops scheme state ~primary ~bw
                  ~count:backup_count
              with
              | [] -> Error No_backup
              | backups -> Ok { primary; backups }))
  in
  count_route_result result;
  result

let chain_route_fn ?(k = 1) ?backup_hop_slack scheme : route_fn =
 fun state ~src ~dst ~bw ->
  let result =
    Tm.Timer.time (route_timer scheme) (fun () ->
        match find_primary state ~src ~dst ~bw with
        | None -> Error No_primary
        | Some primary -> (
            let max_hops =
              Option.map
                (fun slack -> Path.hops primary + slack)
                backup_hop_slack
            in
            match find_backup_chain ?max_hops scheme state ~primary ~bw ~k with
            | [] -> Error No_backup
            | chain ->
                Ok { primary; backups = List.map (fun m -> m.cm_path) chain }))
  in
  count_route_result result;
  result

type t = { capacity : int array; prime : int array; spare : int array }

let create ~link_count ~capacity =
  if link_count <= 0 then invalid_arg "Resources.create: no links";
  if capacity <= 0 then invalid_arg "Resources.create: capacity must be positive";
  {
    capacity = Array.make link_count capacity;
    prime = Array.make link_count 0;
    spare = Array.make link_count 0;
  }

let create_heterogeneous capacities =
  if Array.length capacities = 0 then invalid_arg "Resources.create_heterogeneous";
  Array.iter
    (fun c -> if c <= 0 then invalid_arg "Resources.create_heterogeneous: capacity <= 0")
    capacities;
  {
    capacity = Array.copy capacities;
    prime = Array.make (Array.length capacities) 0;
    spare = Array.make (Array.length capacities) 0;
  }

let link_count t = Array.length t.capacity
let capacity t l = t.capacity.(l)
let prime_bw t l = t.prime.(l)
let spare_bw t l = t.spare.(l)
let free t l = t.capacity.(l) - t.prime.(l) - t.spare.(l)
let available_for_backup t l = t.capacity.(l) - t.prime.(l)

let primary_feasible t ~link ~bw = free t link >= bw
let backup_feasible t ~link ~bw = available_for_backup t link >= bw

let reserve_primary t ~link ~bw =
  if bw <= 0 then invalid_arg "Resources.reserve_primary: bw must be positive";
  if free t link < bw then invalid_arg "Resources.reserve_primary: insufficient free bandwidth";
  t.prime.(link) <- t.prime.(link) + bw

let release_primary t ~link ~bw =
  if bw <= 0 then invalid_arg "Resources.release_primary: bw must be positive";
  if t.prime.(link) < bw then invalid_arg "Resources.release_primary: releasing more than reserved";
  t.prime.(link) <- t.prime.(link) - bw

let grow_spare t ~link ~want =
  if want < 0 then invalid_arg "Resources.grow_spare: negative request";
  let granted = min want (free t link) in
  t.spare.(link) <- t.spare.(link) + granted;
  granted

let shrink_spare t ~link ~amount =
  if amount < 0 then invalid_arg "Resources.shrink_spare: negative amount";
  if t.spare.(link) < amount then invalid_arg "Resources.shrink_spare: not enough spare";
  t.spare.(link) <- t.spare.(link) - amount

let spare_to_prime t ~link ~bw =
  if bw <= 0 then invalid_arg "Resources.spare_to_prime: bw must be positive";
  if t.spare.(link) < bw then invalid_arg "Resources.spare_to_prime: not enough spare";
  t.spare.(link) <- t.spare.(link) - bw;
  t.prime.(link) <- t.prime.(link) + bw

(* ---- snapshots ----------------------------------------------------------- *)

(* Capacities are immutable after construction, so a snapshot carries only
   the two mutable pools.  [capture ~into] reuses the buffers of an earlier
   snapshot of a same-shaped state, making steady-state captures
   allocation-free. *)

type snapshot = { s_prime : int array; s_spare : int array }

let capture ?into t =
  let n = Array.length t.prime in
  match into with
  | Some s when Array.length s.s_prime = n ->
      Array.blit t.prime 0 s.s_prime 0 n;
      Array.blit t.spare 0 s.s_spare 0 n;
      s
  | Some _ | None -> { s_prime = Array.copy t.prime; s_spare = Array.copy t.spare }

let restore t s =
  let n = Array.length t.prime in
  if Array.length s.s_prime <> n then
    invalid_arg "Resources.restore: snapshot link count mismatch";
  Array.blit s.s_prime 0 t.prime 0 n;
  Array.blit s.s_spare 0 t.spare 0 n

(* ---- serialization hooks ------------------------------------------------- *)

(* Checkpointing (dr_persist) needs the raw pools: copies out, blits in.
   [set_pools] validates lengths but not the pool invariants — callers run
   [check_invariants] after a full state restore. *)

let pools t = (Array.copy t.prime, Array.copy t.spare)

let set_pools t ~prime ~spare =
  let n = Array.length t.prime in
  if Array.length prime <> n || Array.length spare <> n then
    invalid_arg "Resources.set_pools: link count mismatch";
  Array.blit prime 0 t.prime 0 n;
  Array.blit spare 0 t.spare 0 n

let sum arr = Array.fold_left ( + ) 0 arr
let total_capacity t = sum t.capacity
let total_prime t = sum t.prime
let total_spare t = sum t.spare

let check_invariants t =
  let bad = ref None in
  Array.iteri
    (fun l c ->
      if !bad = None then begin
        if t.prime.(l) < 0 then bad := Some (Printf.sprintf "link %d: negative prime" l)
        else if t.spare.(l) < 0 then bad := Some (Printf.sprintf "link %d: negative spare" l)
        else if t.prime.(l) + t.spare.(l) > c then
          bad := Some (Printf.sprintf "link %d: over-committed (%d + %d > %d)" l t.prime.(l) t.spare.(l) c)
      end)
    t.capacity;
  match !bad with None -> Ok () | Some msg -> Error msg

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path

type edge_outcome = { edge : int; affected : int; activated : int }

type result = {
  attempts : int;
  successes : int;
  edges_evaluated : int;
  per_edge : edge_outcome list;
}

let fault_tolerance r =
  if r.attempts = 0 then 1.0
  else float_of_int r.successes /. float_of_int r.attempts

let merge_results a b =
  {
    attempts = a.attempts + b.attempts;
    successes = a.successes + b.successes;
    edges_evaluated = a.edges_evaluated + b.edges_evaluated;
    per_edge = a.per_edge @ b.per_edge;
  }

let empty_result = { attempts = 0; successes = 0; edges_evaluated = 0; per_edge = [] }

let evaluate_edge ?(spare_only = true) state ~edge =
  let resources = Net_state.resources state in
  let victims = Net_state.primaries_crossing_edge state edge in
  let affected = List.length victims in
  if affected = 0 then { edge; affected = 0; activated = 0 }
  else begin
    (* Per-link budget of simultaneous activation grants, in bandwidth
       units.  Only links appearing in some victim's backup matter; keep
       the budgets sparse. *)
    let budget = Hashtbl.create 32 in
    let budget_of l =
      match Hashtbl.find_opt budget l with
      | Some b -> b
      | None ->
          let b =
            Resources.spare_bw resources l
            + if spare_only then 0 else Resources.free resources l
          in
          Hashtbl.replace budget l b;
          b
    in
    let activated = ref 0 in
    (* Try a victim's backups in priority order; the first one that avoids
       the failed edge and finds spare on every link wins. *)
    let try_backup conn b =
      if Path.crosses_edge b edge then false
      else begin
        let links = Path.links b in
        if List.for_all (fun l -> budget_of l >= conn.Net_state.bw) links then begin
          List.iter
            (fun l -> Hashtbl.replace budget l (budget_of l - conn.Net_state.bw))
            links;
          true
        end
        else false
      end
    in
    List.iter
      (fun (conn : Net_state.conn) ->
        if List.exists (try_backup conn) conn.backups then incr activated)
      victims;
    { edge; affected; activated = !activated }
  end

type node_outcome = {
  node : int;
  transit_affected : int;
  transit_activated : int;
  endpoint_lost : int;
}

let evaluate_node ?(spare_only = true) state ~node =
  let graph = Net_state.graph state in
  let resources = Net_state.resources state in
  let failed_edges =
    Array.to_list (Graph.out_links graph node) |> List.map Graph.edge_of_link
  in
  let crosses_any p = List.exists (fun e -> Path.crosses_edge p e) failed_edges in
  (* Victims: distinct connections whose primary crosses any incident
     edge. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      List.iter
        (fun (c : Net_state.conn) -> Hashtbl.replace seen c.id c)
        (Net_state.primaries_crossing_edge state e))
    failed_edges;
  let victims =
    Hashtbl.fold (fun _ c acc -> c :: acc) seen []
    |> List.sort (fun (a : Net_state.conn) b -> compare a.id b.id)
  in
  let budget = Hashtbl.create 32 in
  let budget_of l =
    match Hashtbl.find_opt budget l with
    | Some b -> b
    | None ->
        let b =
          Resources.spare_bw resources l
          + if spare_only then 0 else Resources.free resources l
        in
        Hashtbl.replace budget l b;
        b
  in
  let transit_affected = ref 0 and transit_activated = ref 0 in
  let endpoint_lost = ref 0 in
  let try_backup (conn : Net_state.conn) b =
    if crosses_any b then false
    else begin
      let links = Path.links b in
      if List.for_all (fun l -> budget_of l >= conn.bw) links then begin
        List.iter (fun l -> Hashtbl.replace budget l (budget_of l - conn.bw)) links;
        true
      end
      else false
    end
  in
  List.iter
    (fun (conn : Net_state.conn) ->
      if conn.src = node || conn.dst = node then incr endpoint_lost
      else begin
        incr transit_affected;
        if List.exists (try_backup conn) conn.backups then incr transit_activated
      end)
    victims;
  {
    node;
    transit_affected = !transit_affected;
    transit_activated = !transit_activated;
    endpoint_lost = !endpoint_lost;
  }

let evaluate_nodes ?spare_only state =
  let graph = Net_state.graph state in
  let attempts = ref 0 and successes = ref 0 and evaluated = ref 0 in
  for node = 0 to Graph.node_count graph - 1 do
    let o = evaluate_node ?spare_only state ~node in
    if o.transit_affected > 0 then begin
      incr evaluated;
      attempts := !attempts + o.transit_affected;
      successes := !successes + o.transit_activated
    end
  done;
  {
    attempts = !attempts;
    successes = !successes;
    edges_evaluated = !evaluated;
    per_edge = [];
  }

type pair_outcome = { edges : int * int; affected : int; activated : int }

let evaluate_edge_pair ?(spare_only = true) state ~edges:(e1, e2) =
  let resources = Net_state.resources state in
  let crosses p = Path.crosses_edge p e1 || Path.crosses_edge p e2 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      List.iter
        (fun (c : Net_state.conn) -> Hashtbl.replace seen c.id c)
        (Net_state.primaries_crossing_edge state e))
    [ e1; e2 ];
  let victims =
    Hashtbl.fold (fun _ c acc -> c :: acc) seen []
    |> List.sort (fun (a : Net_state.conn) b -> compare a.id b.id)
  in
  let budget = Hashtbl.create 32 in
  let budget_of l =
    match Hashtbl.find_opt budget l with
    | Some b -> b
    | None ->
        let b =
          Resources.spare_bw resources l
          + if spare_only then 0 else Resources.free resources l
        in
        Hashtbl.replace budget l b;
        b
  in
  let activated = ref 0 in
  let try_backup (conn : Net_state.conn) b =
    if crosses b then false
    else begin
      let links = Path.links b in
      if List.for_all (fun l -> budget_of l >= conn.bw) links then begin
        List.iter (fun l -> Hashtbl.replace budget l (budget_of l - conn.bw)) links;
        true
      end
      else false
    end
  in
  List.iter
    (fun (conn : Net_state.conn) ->
      if List.exists (try_backup conn) conn.backups then incr activated)
    victims;
  { edges = (e1, e2); affected = List.length victims; activated = !activated }

let evaluate_double ?spare_only ?(samples = 200) ?(seed = 1) state =
  let graph = Net_state.graph state in
  let edge_count = Graph.edge_count graph in
  if edge_count < 2 then invalid_arg "Failure_eval.evaluate_double: need >= 2 edges";
  let rng = Dr_rng.Splitmix64.create seed in
  let attempts = ref 0 and successes = ref 0 and evaluated = ref 0 in
  for _ = 1 to samples do
    let e1, e2 = Dr_rng.Dist.pick_distinct_pair rng edge_count in
    let o = evaluate_edge_pair ?spare_only state ~edges:(e1, e2) in
    if o.affected > 0 then begin
      incr evaluated;
      attempts := !attempts + o.affected;
      successes := !successes + o.activated
    end
  done;
  {
    attempts = !attempts;
    successes = !successes;
    edges_evaluated = !evaluated;
    per_edge = [];
  }

let evaluate ?spare_only state =
  let graph = Net_state.graph state in
  let attempts = ref 0 and successes = ref 0 and evaluated = ref 0 in
  let per_edge = ref [] in
  Graph.iter_edges graph (fun e ->
      let outcome = evaluate_edge ?spare_only state ~edge:e in
      if outcome.affected > 0 then begin
        incr evaluated;
        attempts := !attempts + outcome.affected;
        successes := !successes + outcome.activated;
        per_edge := outcome :: !per_edge
      end);
  {
    attempts = !attempts;
    successes = !successes;
    edges_evaluated = !evaluated;
    per_edge = List.rev !per_edge;
  }

(* ---- correlated (SRLG / regional) failures ------------------------------- *)

(* Shared core: fail a whole edge set at once.  Victims are primaries
   crossing any member; a backup must avoid every member and win its
   bandwidth on all links, greedily in connection-id order — the same
   contention model as the single-edge evaluation. *)
let evaluate_edges ?(spare_only = true) state ~edges =
  let resources = Net_state.resources state in
  let in_set = Hashtbl.create 8 in
  List.iter (fun e -> Hashtbl.replace in_set e ()) edges;
  let crosses_any p =
    List.exists
      (fun l -> Hashtbl.mem in_set (Graph.edge_of_link l))
      (Path.links p)
  in
  let victims = Net_state.primaries_crossing_edges state ~edges in
  let budget = Hashtbl.create 32 in
  let budget_of l =
    match Hashtbl.find_opt budget l with
    | Some b -> b
    | None ->
        let b =
          Resources.spare_bw resources l
          + if spare_only then 0 else Resources.free resources l
        in
        Hashtbl.replace budget l b;
        b
  in
  let activated = ref 0 in
  let try_backup (conn : Net_state.conn) b =
    if crosses_any b then false
    else begin
      let links = Path.links b in
      if List.for_all (fun l -> budget_of l >= conn.bw) links then begin
        List.iter (fun l -> Hashtbl.replace budget l (budget_of l - conn.bw)) links;
        true
      end
      else false
    end
  in
  List.iter
    (fun (conn : Net_state.conn) ->
      if List.exists (try_backup conn) conn.backups then incr activated)
    victims;
  (List.length victims, !activated)

type group_outcome = { group : int; affected : int; activated : int }

let evaluate_group ?spare_only state ~group =
  let srlg = Net_state.srlg state in
  let edges = Dr_resilience.Srlg.edges_of_group srlg group in
  let affected, activated = evaluate_edges ?spare_only state ~edges in
  { group; affected; activated }

let evaluate_srlg ?spare_only state =
  let srlg = Net_state.srlg state in
  let attempts = ref 0 and successes = ref 0 and evaluated = ref 0 in
  for g = 0 to Dr_resilience.Srlg.group_count srlg - 1 do
    let o = evaluate_group ?spare_only state ~group:g in
    if o.affected > 0 then begin
      incr evaluated;
      attempts := !attempts + o.affected;
      successes := !successes + o.activated
    end
  done;
  {
    attempts = !attempts;
    successes = !successes;
    edges_evaluated = !evaluated;
    per_edge = [];
  }

let evaluate_regional ?spare_only ?(samples = 200) ?(seed = 1) state ~radius =
  if radius <= 0.0 then
    invalid_arg "Failure_eval.evaluate_regional: radius must be positive";
  let graph = Net_state.graph state in
  match Graph.coords graph with
  | None -> invalid_arg "Failure_eval.evaluate_regional: graph has no coordinates"
  | Some coords ->
      let edge_count = Graph.edge_count graph in
      let midpoints =
        Array.init edge_count (fun e ->
            let u, v = Graph.edge_endpoints graph e in
            let ux, uy = coords.(u) and vx, vy = coords.(v) in
            ((ux +. vx) /. 2.0, (uy +. vy) /. 2.0))
      in
      let rng = Dr_rng.Splitmix64.create seed in
      let attempts = ref 0 and successes = ref 0 and evaluated = ref 0 in
      for _ = 1 to samples do
        let cx = Dr_rng.Splitmix64.float rng 1.0
        and cy = Dr_rng.Splitmix64.float rng 1.0 in
        let hit = ref [] in
        for e = edge_count - 1 downto 0 do
          let mx, my = midpoints.(e) in
          let dx = mx -. cx and dy = my -. cy in
          if (dx *. dx) +. (dy *. dy) <= radius *. radius then hit := e :: !hit
        done;
        if !hit <> [] then begin
          let affected, activated = evaluate_edges ?spare_only state ~edges:!hit in
          if affected > 0 then begin
            incr evaluated;
            attempts := !attempts + affected;
            successes := !successes + activated
          end
        end
      done;
      {
        attempts = !attempts;
        successes = !successes;
        edges_evaluated = !evaluated;
        per_edge = [];
      }

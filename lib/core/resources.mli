(** Per-link bandwidth accounting.

    Every directed link divides its capacity into three pools, exactly the
    quantities of the paper's notation (§2.1 and §4.1):

    - [prime_bw] — bandwidth reserved by primary channels;
    - [spare_bw] — bandwidth reserved as {e spare} for backup channels
      (shared by multiplexing, §5);
    - free — the un-allocated remainder, [capacity - prime_bw - spare_bw].

    Units are abstract integer "bandwidth units" (the paper's [bw_req] is
    constant per connection, so a unit is most naturally one connection's
    worth, but nothing here assumes that).

    A primary may be admitted on a link iff [free >= bw] (spare is {e not}
    stolen from backups: the paper's primary-flag test is
    [total_bw - (prime_bw + spare_bw) > bw_req]).  A backup route may use a
    link iff [available_for_backup = capacity - prime_bw >= bw], since a
    backup can share the existing spare pool. *)

type t

val create : link_count:int -> capacity:int -> t
(** Uniform capacity on every link (the paper's identical link
    capacities). *)

val create_heterogeneous : int array -> t
(** One capacity per link. *)

val link_count : t -> int
val capacity : t -> int -> int
val prime_bw : t -> int -> int
val spare_bw : t -> int -> int

val free : t -> int -> int
(** [capacity - prime_bw - spare_bw]. *)

val available_for_backup : t -> int -> int
(** [capacity - prime_bw]: un-allocated plus the shared spare pool. *)

val primary_feasible : t -> link:int -> bw:int -> bool
val backup_feasible : t -> link:int -> bw:int -> bool

val reserve_primary : t -> link:int -> bw:int -> unit
(** Raises [Invalid_argument] if [free < bw] — callers must test first. *)

val release_primary : t -> link:int -> bw:int -> unit

val grow_spare : t -> link:int -> want:int -> int
(** [grow_spare t ~link ~want] moves up to [want] units from free to spare
    and returns the amount actually moved ([min want free]). *)

val shrink_spare : t -> link:int -> amount:int -> unit
(** Return [amount] spare units to the free pool.  Raises
    [Invalid_argument] if the link holds less spare than that. *)

val spare_to_prime : t -> link:int -> bw:int -> unit
(** Backup activation: convert [bw] units of spare into primary reservation
    on this link (the promoted channel now carries traffic).  Raises
    [Invalid_argument] if [spare_bw < bw]. *)

(** {1 Snapshots}

    Capacities are immutable, so a snapshot records only the prime and
    spare pools.  Used by {!Net_state}'s snapshot/rollback layer. *)

type snapshot

val capture : ?into:snapshot -> t -> snapshot
(** Copy the mutable pools.  [~into] reuses a previous snapshot's buffers
    when the link counts match (allocation-free steady state); otherwise a
    fresh snapshot is returned. *)

val restore : t -> snapshot -> unit
(** Overwrite the pools from a snapshot.  Raises [Invalid_argument] on a
    link-count mismatch (snapshot taken from a different topology). *)

val pools : t -> int array * int array
(** [(prime, spare)] as fresh copies — the raw material a checkpoint
    serialises. *)

val set_pools : t -> prime:int array -> spare:int array -> unit
(** Overwrite both pools from arrays (checkpoint restore).  Raises
    [Invalid_argument] on a length mismatch; pool invariants are {e not}
    re-checked here — run {!check_invariants} after a full restore. *)

val total_capacity : t -> int
val total_prime : t -> int
val total_spare : t -> int

val check_invariants : t -> (unit, string) result
(** All pools non-negative and [prime + spare <= capacity] on every link. *)

(** Differential checking of the routing fast path against the oracle.

    Replays randomized admission workloads on Waxman graphs, querying
    {!Routing} (the incremental fast path) and {!Routing_reference} (the
    verbatim pre-change code) side by side on the {e same} network state,
    and records every disagreement: a different primary or backup route, a
    per-link {!Routing.cost_parts} decomposition that differs in any bit,
    or a drifted incremental cache ({!Net_state.check_routing_caches}).

    One {!run_graph} call is self-contained and deterministic in
    [(params, graph_index)], so graph indices can be fanned out across a
    {!Dr_parallel.Pool} and the merged report is identical at any [--jobs].
    Exposed as [drtp_sim check-routing] and driven by the qcheck
    differential suite in [test/test_differential.ml]. *)

type params = {
  graphs : int;  (** number of independent Waxman graphs *)
  nodes : int;
  avg_degree : float;
  admissions : int;  (** random admission attempts per graph {e per scheme} *)
  seed : int;
  capacity : int;  (** per-link capacity, bandwidth units *)
  max_bw : int;  (** request bandwidths are uniform on [1, max_bw] *)
  backup_count : int;  (** backups requested per admission *)
  churn_every : int;
      (** inject a failure/repair event every this many admission attempts
          (0 disables churn) *)
  invariants_every : int;
      (** run {!Net_state.check_invariants} every this many attempts
          (0 disables; {!Net_state.check_routing_caches} still runs after
          every mutation) *)
}

val default_params : params
(** 4 graphs × 3 schemes × 60 admissions on 30-node degree-4 Waxman
    networks, with churn every 7 attempts — ≥ 500 randomized admissions
    per run, the floor the acceptance criteria ask for. *)

type report = {
  graphs_run : int;
  admissions_checked : int;  (** admission attempts compared (all schemes) *)
  admitted : int;  (** attempts where both sides produced a full route pair *)
  rejected : int;
  verdicts_checked : int;  (** per-link cost decompositions compared *)
  churn_events : int;
  divergence_count : int;
  divergences : string list;
      (** first few divergence descriptions, oldest first *)
}

val empty_report : report

val merge : report -> report -> report
(** Sum the counters; keep the first few divergence messages. *)

val pp_report : Format.formatter -> report -> unit

val run_graph : params -> graph_index:int -> report
(** Check one graph (index in [0, graphs-1]) under all three schemes.
    Deterministic in [(params, graph_index)]. *)

val run : ?progress:(int -> report -> unit) -> params -> report
(** All graphs sequentially, merged.  [progress] is called after each
    graph with its index and per-graph report. *)

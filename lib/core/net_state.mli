(** Network-wide DR-connection state: the authoritative book-keeping that
    the paper's per-router "DR-connection managers" maintain collectively.

    One value of this type holds, for a given topology:
    - per-link bandwidth pools ({!Resources});
    - per-link APLVs, updated from the primary-route LSETs carried by
      backup-path register/release packets (paper §2.2);
    - the connection table (primary route, backup routes, bandwidth) — a
      DR-connection has one primary and {e one or more} backup channels
      (paper §2), held in priority order;
    - the spare-reservation policy of §5 (grow spare to cover the worst
      single failure; if free bandwidth is short, multiplex conflicting
      backups anyway and remember the deficit; reclaim freed primary
      bandwidth into deficient spare pools).

    The simulator is centralised, but every routing decision made on top of
    this state is restricted to the information the paper's schemes
    distribute (see {!Routing} and the flooding library). *)

type spare_policy =
  | Multiplexed
      (** Paper §5: per link, reserve [max_j a_{i,j}] connections' worth of
          spare — enough for the worst single failure domain. *)
  | Dedicated
      (** No multiplexing: spare equals the sum of all backup bandwidths on
          the link (the "too expensive to be practically useful" strawman
          of §2, used as ablation A1). *)

type conn = {
  id : int;
  src : int;
  dst : int;
  bw : int;
  mutable primary : Dr_topo.Path.t;
      (** mutated only by {!promote_backup} (DRTP step 3). *)
  mutable backups : Dr_topo.Path.t list;
      (** in priority order; mutated by {!promote_backup} and
          {!replace_backups}. *)
  mutable degraded : bool;
      (** true if, at some point while registered, a link of some backup
          could not reserve the spare the policy asked for (conflicting
          backups share spare there — §5's fallback). *)
}

type t

val create :
  graph:Dr_topo.Graph.t -> capacity:int -> spare_policy:spare_policy -> t
(** Singleton SRLG model: one risk group per edge, the paper's
    independent-failure world.  Equivalent to
    [create_srlg ~srlg:(Srlg.singletons ...)]. *)

val create_srlg :
  srlg:Dr_resilience.Srlg.t ->
  graph:Dr_topo.Graph.t ->
  capacity:int ->
  spare_policy:spare_policy ->
  t
(** Install a shared-risk-group model over the graph's edges.  The model
    re-keys the spare-multiplexing rule: spare on a link is sized for the
    worst single {e SRLG} failure instead of the worst single edge.  With
    a singleton model every computation is bit-identical to {!create}'s
    behaviour.  Raises [Invalid_argument] on an edge-count mismatch with
    the graph. *)

val graph : t -> Dr_topo.Graph.t
val resources : t -> Resources.t
val spare_policy : t -> spare_policy

val srlg : t -> Dr_resilience.Srlg.t
(** The installed shared-risk-group model. *)

val aplv : t -> int -> Aplv.t
(** The APLV of a directed link (do not mutate). *)

val aplv_norm : t -> int -> int
(** Cached [‖APLV_i‖₁] of a directed link — always equal to
    [Aplv.norm1 (aplv t l)], but a flat array read.  P-LSR's per-link cost
    term; maintained incrementally by every backup register/release. *)

val conflict_count : t -> link:int -> edge_lset:int list -> int
(** Cached D-LSR cost term: [Σ_{j ∈ edge_lset} (a_{link,j} > 0 ? 1 : 0)]
    — always equal to [Aplv.conflict_count_with (aplv t link) ~edge_lset],
    but served from a dense per-(link, edge) count mirror maintained
    incrementally (no hashtable probes in Dijkstra relaxation). *)

val conflict_count_arr : t -> link:int -> edges:int array -> n:int -> int
(** {!conflict_count} over the first [n] entries of [edges] — the
    allocation-free form the routing fast path uses (the query's primary
    LSET staged once into a workspace array). *)

val check_routing_caches : t -> (unit, string) result
(** Recompute [aplv_norm] and the conflict-count mirror from the
    authoritative per-link {!Aplv.t} values and report the first drifted
    slot.  O(links × edges); the differential harness and the soak test
    call it after every mutation. *)

val conflict_vector : t -> int -> Conflict_vector.t
(** Packed CV snapshot of a link (D-LSR's advertisement payload). *)

val aplv_updates : t -> int
(** Number of per-link APLV mutations (register/release packet link visits)
    so far — the advertisement-traffic driver measured by the overhead
    experiment. *)

(** {1 Connection lifecycle} *)

val admit :
  t ->
  id:int ->
  bw:int ->
  primary:Dr_topo.Path.t ->
  backups:Dr_topo.Path.t list ->
  conn
(** Reserve primary bandwidth on every primary link and register each
    backup (APLV update + spare adjustment per the policy).  Raises
    [Invalid_argument] if the id is in use, a primary link lacks free
    bandwidth, or a backup link cannot host its backup at all (available
    bandwidth below the backup's requirement given the primary and the
    connection's other backups crossing the same link).  Callers are
    expected to have routed with the matching feasibility predicates. *)

val release : t -> id:int -> unit
(** Tear down: free primary bandwidth, unregister every backup (APLV
    decrement, spare shrink to the new requirement), then re-assign freed
    bandwidth to spare pools still in deficit (§5 last paragraph).
    Raises [Invalid_argument] for an unknown id. *)

val find : t -> int -> conn option
val active_count : t -> int
val iter_conns : t -> (conn -> unit) -> unit

(** {1 Failure-domain queries} *)

val primaries_crossing_edge : t -> int -> conn list
(** Connections whose primary route crosses the given undirected edge —
    the set that must switch over when that edge fails.  Sorted by id. *)

val primaries_crossing_edges : t -> edges:int list -> conn list
(** Distinct connections whose primary crosses any of the given edges —
    the victim set of a correlated failure.  Sorted by id. *)

val primaries_crossing_group : t -> group:int -> conn list
(** {!primaries_crossing_edges} over an SRLG group's member edges. *)

val spare_required : t -> link:int -> int
(** Spare the policy wants on the link, in bandwidth units: [Multiplexed]
    → worst single-{e SRLG} activation burst (the generalised §5 rule;
    with singleton groups, exactly the paper's worst single edge);
    [Dedicated] → total backup bandwidth. *)

val spare_deficit : t -> link:int -> int
(** [max 0 (spare_required - spare_bw)]: positive iff conflicting backups
    currently share spare on this link. *)

val total_spare_deficit : t -> int

val backup_count_on_link : t -> link:int -> int

(** {1 Promotions (failure recovery)} *)

val promote_backup : t -> id:int -> ?index:int -> unit -> unit
(** Activate backup [index] (default 0) of connection [id] (DRTP step 3):
    the old primary's bandwidth is released, the chosen backup becomes the
    new primary — consuming spare (or free) bandwidth on its links — and
    the remaining backups are re-registered against the new primary's
    LSET; any that no longer fit are silently dropped from the backup
    list.  Raises [Invalid_argument] if [index] is out of range or the
    chosen backup's links lack spare+free bandwidth; callers must first
    check feasibility with {!activation_feasible}. *)

val activation_feasible : t -> id:int -> ?index:int -> unit -> bool
(** True if every link of backup [index] (default 0) can currently supply
    the connection's bandwidth from spare plus free pools. *)

val drop : t -> id:int -> unit
(** Remove a connection whose primary has failed without switching (the
    failed primary's reservations on surviving links are returned; all
    backups are unregistered). *)

val reroute_primary : t -> id:int -> primary:Dr_topo.Path.t -> unit
(** Move the connection's primary onto a new route (local-detour
    restoration): release the old primary's bandwidth, reserve the new
    route (raises [Invalid_argument] if some new link lacks free
    bandwidth — check first), and re-register every backup against the
    new primary's LSET, silently dropping backups that no longer fit.
    The new route must share the connection's endpoints. *)

val replace_backups : t -> id:int -> backups:Dr_topo.Path.t list -> unit
(** Resource reconfiguration (DRTP step 4): unregister the current backups
    and register the given set.  [[]] leaves the connection unprotected.
    Raises [Invalid_argument] if a new backup link cannot host it. *)

val replace_backups_drop :
  t -> id:int -> backups:Dr_topo.Path.t list -> Dr_topo.Path.t list
(** Like {!replace_backups}, but a member whose links can no longer host
    it is silently dropped (the same graceful policy {!promote_backup}
    applies to survivors) instead of raising; returns the members kept.
    The raising variant is right when the caller just computed the set
    against current resources; this one is right for recovery drivers,
    where concurrent activations may have converted a surviving backup's
    spare into prime since it was found. *)

val fail_edge : t -> edge:int -> unit
(** Mark both directions of an edge as failed.  Failed links are excluded
    by the routing layers' feasibility predicates; existing reservations on
    them are untouched (the recovery driver decides what happens to the
    affected connections).  Used by the dynamic recovery simulation. *)

val edge_failed : t -> edge:int -> bool

val restore_edge : t -> edge:int -> unit

val fail_group : t -> group:int -> unit
(** Fail every member edge of an SRLG group (correlated failure).
    Restore with {!restore_group}. *)

val restore_group : t -> group:int -> unit

val fail_node : t -> node:int -> unit
(** Fail every edge incident to the node (router breakdown, the other
    persistent-failure class of §1).  Restore with {!restore_node}. *)

val restore_node : t -> node:int -> unit

(** {1 Snapshot / rollback}

    Speculative admissions and what-if failure probes (the service layer's
    [what_if_admit] / [what_if_fail_edge]) run against the truth and then
    roll it back, so the mutable state must be restorable {e bit-exactly}:
    resource pools, per-link APLVs, the PR 4 [aplv_norm]/conflict-count
    mirrors, the SRLG spare-weight tables ([SC_i] sizing), the connection
    table, the primary index and the failure flags.  The immutable model
    (graph, SRLG, capacities) is shared, not copied. *)

module Snapshot : sig
  type state := t

  type t
  (** A deep copy of one state's mutable truth. *)

  val capture : ?into:t -> state -> t
  (** Snapshot the state.  [~into] reuses the buffers of a previous
      snapshot of the same topology (allocation-light steady state; a
      shape mismatch falls back to a fresh snapshot). *)

  val rollback : state -> t -> unit
  (** Restore the state, in place, to exactly the captured truth —
      including fresh connection records (speculative runs may have
      mutated the live ones) and a rebuilt primary index.  The state
      value's physical identity is preserved: closures and managers
      holding it stay valid.  Raises [Invalid_argument] if the snapshot
      came from a different topology. *)
end

(** {1 Serialization (checkpoints)}

    A checkpoint cannot logically re-admit the surviving connections — the
    accessor digest includes the [aplv_updates] odometer and
    history-dependent spare pools and [degraded] flags that a replay of
    admissions would not reproduce.  [Serial.dump] therefore captures the
    minimal mutable truth (raw resource pools, failure flags, odometer,
    connection table with routes as link-id lists) and [Serial.restore]
    rebuilds every derived structure — APLVs, the dense mirrors, SRLG
    spare weights, backup totals, the primary index — by replaying the
    registration arithmetic only, then blitting the pools verbatim.  The
    result is bit-identical under the accessor digest; used by
    [dr_persist]'s on-disk checkpoints. *)

module Serial : sig
  type conn_repr = {
    r_id : int;
    r_src : int;
    r_dst : int;
    r_bw : int;
    r_degraded : bool;
    r_primary : int list;  (** primary route as link ids *)
    r_backups : int list list;  (** backups, in priority order *)
  }

  type repr = {
    r_prime : int array;
    r_spare : int array;
    r_failed : bool array;
    r_aplv_updates : int;
    r_conns : conn_repr list;  (** sorted by id *)
  }

  val dump : t -> repr
  (** Copy out the minimal mutable truth. *)

  val restore : t -> repr -> unit
  (** Overwrite a same-topology state, in place, with the dumped truth.
      Emits no journal events and touches no telemetry counters.  Raises
      [Invalid_argument] on a topology shape mismatch or if a dumped route
      is not a valid path of the state's graph. *)
end

(** {1 Integrity} *)

val check_invariants : t -> (unit, string) result
(** Deep check: resource invariants, routing-cache coherence
    ({!check_routing_caches}), APLV consistency against the connection
    table, spare levels not above policy requirement plus deficit
    bookkeeping coherent.  O(connections × path length + links × edges);
    test and debug use. *)

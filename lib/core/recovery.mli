(** Dynamic failure handling — DRTP steps 2–4 (detection, reporting &
    switching, resource reconfiguration) plus the reactive baseline the
    paper argues against (§1).

    The snapshot metric ({!Failure_eval}) asks {e whether} backups can
    activate; this module plays an actual failure forward and also answers
    {e how fast}, with an explicit signalling-latency model:

    - the node adjacent to the failed edge detects the failure after
      [detection_delay];
    - the failure report travels hop-by-hop up the primary towards the
      source ([link_delay] per hop);
    - {b DRTP}: the source activates the prepared backup by signalling
      along it ([link_delay] per backup hop) — no route computation, no
      admission test races; activation fails only on spare contention;
    - {b reactive}: the source computes a fresh route
      ([route_computation]), then signals along it; if no feasible route
      exists it backs off exponentially and retries (Banerjea's delayed
      retries) — but each retry only helps if resources have been freed
      meanwhile, so persistent shortage ends in connection loss.

    After switching, DRTP step 4 re-establishes dependability: promoted
    connections get a fresh backup, and surviving connections whose backup
    crossed the failed edge get their backup re-routed. *)

type timing = {
  detection_delay : float;  (** seconds until the adjacent node notices *)
  link_delay : float;  (** per-hop signalling delay, seconds *)
  route_computation : float;  (** reactive route computation time, seconds *)
  retry_backoff : float;  (** reactive first-retry backoff, seconds; doubles *)
  max_retries : int;
}

val default_timing : timing
(** 10 ms detection, 1 ms per hop, 5 ms route computation, 100 ms initial
    backoff, 3 retries. *)

(** Retransmission policy for lossy control-plane signalling (only
    consulted when a fault plan is installed). *)
type retrans = {
  rto : float;  (** retransmission timeout before the first resend; doubles *)
  max_retransmits : int;  (** resends before giving up on the signal *)
}

val default_retrans : retrans
(** 50 ms RTO, 4 retransmissions. *)

type outcome =
  | Switched of { latency : float; reprotected : bool }
      (** Backup activated; [reprotected] = the connection still has at
          least one backup after the reconfiguration step. *)
  | Rerouted of { latency : float; retries : int }  (** reactive success *)
  | Lost of { latency : float }
      (** Connection dropped; [latency] is the time wasted discovering
          that. *)

val outcome_is_recovered : outcome -> bool

type report = {
  edge : int;
      (** the failed edge ([fail_group_drtp]: the group's first member
          edge, or -1 for an empty group) *)
  failed_edges : int list;
      (** every edge this event took down — [[edge]] for the single-edge
          entry points, the group's member list for {!fail_group_drtp} *)
  outcomes : (int * outcome) list;  (** per affected connection id *)
  backups_rerouted : int;
      (** unaffected connections whose backup crossed the failed edge and
          was re-routed (step 4) *)
  backups_unprotected : int;
      (** ... for which no replacement backup could be found *)
  unprotected_ids : int list;
      (** live connections this failure left without any backup: step-4
          top-up failures plus reactive-fallback reroutes — the candidates
          for {!Manager}'s reprotection queue *)
  retransmits : int;  (** control messages retransmitted (fault plan only) *)
  messages_dropped : int;  (** control messages lost (fault plan only) *)
}

val recovered_fraction : report -> float
(** Recovered / affected; 1.0 when no connection was affected. *)

val fail_edge_drtp :
  Net_state.t ->
  scheme:Routing.scheme ->
  ?timing:timing ->
  ?reconfigure:bool ->
  ?backup_count:int ->
  ?faults:Dr_faults.Faults.t ->
  ?retrans:retrans ->
  edge:int ->
  unit ->
  report
(** Fail an edge under DRTP: detect, report, switch every affected
    connection to its highest-priority usable backup (in connection-id
    order — concurrent activations contend for spare bandwidth exactly as
    in {!Failure_eval}), then reconfigure ([reconfigure] defaults to
    [true]): promoted connections and connections whose backups died are
    topped back up to [backup_count] (default 1) backups where routes
    exist.  The edge is left marked failed; call
    {!Net_state.restore_edge} to repair it.

    With a [faults] plan installed, failure reports and activation signals
    are subject to loss: each lost copy is retransmitted after a doubling
    timeout ([retrans], default {!default_retrans}), and the slept backoff
    time is added to the phase that spent it.  A report whose
    retransmissions are exhausted falls back to a reactive reroute (the
    source only learns of the failure by timeout); an activation signal
    whose retransmissions are exhausted falls through to the next usable
    backup, and past the last backup to the reactive fallback.  With no
    plan — or a {!Dr_faults.Faults.zero_spec} plan — behaviour, latencies
    and journal output are bit-identical to the lossless code path. *)

val fail_edges_drtp :
  Net_state.t ->
  scheme:Routing.scheme ->
  ?timing:timing ->
  ?reconfigure:bool ->
  ?backup_count:int ->
  ?faults:Dr_faults.Faults.t ->
  ?retrans:retrans ->
  ?group:int ->
  edges:int list ->
  unit ->
  report
(** Fail an arbitrary edge set as one correlated event — the core
    {!fail_group_drtp} delegates to.  With [group] the set is failed as
    that SRLG (via {!Net_state.fail_group}); without it — regional bursts
    from {!Dr_resilience.Srlg.regional_schedule} carry no group identity —
    each edge is failed individually (restore with
    {!Net_state.restore_edge}) and the [group-failed] journal record
    carries group [-1].  Failover, fallback, timing and reconfiguration
    semantics are exactly those of {!fail_group_drtp}. *)

val fail_group_drtp :
  Net_state.t ->
  scheme:Routing.scheme ->
  ?timing:timing ->
  ?reconfigure:bool ->
  ?backup_count:int ->
  ?faults:Dr_faults.Faults.t ->
  ?retrans:retrans ->
  group:int ->
  unit ->
  report
(** Fail a whole shared-risk group (correlated failure) under DRTP: every
    member edge goes down as one event, victims are the connections whose
    primary crosses {e any} member, and each victim fails over down its
    backup chain in priority order to the first member that survives the
    entire group and can get its bandwidth.  A victim whose chain is
    exhausted (no member survives — e.g. the group partitions the
    topology — or none can get bandwidth) is reported [Lost], never an
    exception; journal kinds [group-failed], [chain-failover] and
    [chain-exhausted] trace the walk.  Reconfiguration (step 4) tops
    chains back up to [backup_count] members with
    {!Routing.additional_chain_members}, so replacements avoid the
    still-failed group's SRLGs.  The group is left failed; restore with
    {!Net_state.restore_group}. *)

val fail_edge_reactive :
  Net_state.t -> ?timing:timing -> edge:int -> unit -> report
(** Fail an edge under the reactive baseline: affected connections release
    their routes and sequentially attempt re-establishment over min-hop
    feasible paths, with exponential-backoff retries on shortage. *)

val fail_edge_local_detour :
  Net_state.t -> ?timing:timing -> edge:int -> unit -> report
(** Fail an edge under SFI-style local restoration (the Zheng & Shin line
    of work the paper's §1 surveys): the router upstream of the failure
    splices a min-hop detour around the failed edge into the existing
    primary, drawing on {e free} bandwidth only (nothing was reserved in
    advance).  No failure report travels to the source, so the latency is
    detection + local route computation + detour signalling.  Loops the
    splice would create are removed.  Connections whose detour cannot be
    found or funded are dropped.  Reported as [Rerouted] outcomes. *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Srlg = Dr_resilience.Srlg
module Tm = Dr_telemetry.Telemetry
module J = Dr_obs.Journal

(* Telemetry: APLV register/unregister traffic (the LSR schemes' signalling
   cost) and conflict-vector packings (D-LSR's advertisement payload). *)
let c_aplv_updates = Tm.Counter.make "net_state.aplv.updates"
let c_cv_builds = Tm.Counter.make "net_state.cv.builds"

type spare_policy = Multiplexed | Dedicated

type conn = {
  id : int;
  src : int;
  dst : int;
  bw : int;
  mutable primary : Path.t;
  mutable backups : Path.t list;
  mutable degraded : bool;
}

type t = {
  graph : Graph.t;
  resources : Resources.t;
  aplv : Aplv.t array; (* per directed link *)
  aplv_norm : int array;
      (* per directed link: cached [‖APLV_i‖₁], kept in lock-step with
         [aplv] by {!register_backup}/{!unregister_backup} — P-LSR's cost
         term as a flat array read instead of a record chase *)
  conflict_counts : int array array;
      (* per directed link: dense mirror of the APLV counts, indexed by
         failure edge ([conflict_counts.(l).(j) = a_{l,j}]).  D-LSR's
         relaxation reads it as [a_{l,j} > 0] in O(1) per edge instead of
         a hashtable probe.  Maintained with O(|LSET|) deltas per link
         visit, i.e. O(|LSET|·|route|) per admit/release. *)
  spare_weight : (int, int) Hashtbl.t array;
      (* per directed link: SRLG group -> total backup bandwidth that the
         group's failure would activate here.  Under the singleton model
         group ids coincide with edge ids, so this is the paper's
         per-failure-edge table exactly. *)
  srlg : Srlg.t;
  backup_total : int array; (* per directed link: sum of backup bandwidths *)
  conns : (int, conn) Hashtbl.t;
  edge_primaries : (int, conn) Hashtbl.t array; (* per edge: id -> conn *)
  failed : bool array; (* per edge *)
  spare_policy : spare_policy;
  mutable aplv_updates : int;
}

let make ~srlg ~graph ~capacity ~spare_policy =
  let links = Graph.link_count graph in
  let edges = Graph.edge_count graph in
  let srlg =
    match srlg with
    | None -> Srlg.singletons ~edge_count:edges
    | Some s ->
        if Srlg.edge_count s <> edges then
          invalid_arg "Net_state.create: SRLG model edge count mismatch";
        s
  in
  {
    graph;
    resources = Resources.create ~link_count:links ~capacity;
    aplv = Array.init links (fun _ -> Aplv.create ());
    aplv_norm = Array.make links 0;
    conflict_counts = Array.init links (fun _ -> Array.make edges 0);
    spare_weight = Array.init links (fun _ -> Hashtbl.create 8);
    backup_total = Array.make links 0;
    conns = Hashtbl.create 256;
    srlg;
    edge_primaries = Array.init edges (fun _ -> Hashtbl.create 8);
    failed = Array.make edges false;
    spare_policy;
    aplv_updates = 0;
  }

let create ~graph ~capacity ~spare_policy =
  make ~srlg:None ~graph ~capacity ~spare_policy

let create_srlg ~srlg ~graph ~capacity ~spare_policy =
  make ~srlg:(Some srlg) ~graph ~capacity ~spare_policy

let graph t = t.graph
let srlg t = t.srlg
let resources t = t.resources
let spare_policy t = t.spare_policy
let aplv t l = t.aplv.(l)
let aplv_updates t = t.aplv_updates
let aplv_norm t l = t.aplv_norm.(l)

let conflict_count t ~link ~edge_lset =
  let counts = t.conflict_counts.(link) in
  List.fold_left (fun acc j -> if counts.(j) > 0 then acc + 1 else acc) 0 edge_lset

let conflict_count_arr t ~link ~edges ~n =
  let counts = t.conflict_counts.(link) in
  let acc = ref 0 in
  for k = 0 to n - 1 do
    if counts.(Array.unsafe_get edges k) > 0 then incr acc
  done;
  !acc

let conflict_vector t l =
  Tm.Counter.incr c_cv_builds;
  Conflict_vector.of_aplv t.aplv.(l) ~domains:(Graph.edge_count t.graph)

let edge_lset_of_path p = Path.Link_set.elements (Path.edge_set p)

let spare_required t ~link =
  match t.spare_policy with
  | Dedicated -> t.backup_total.(link)
  | Multiplexed -> Hashtbl.fold (fun _ w acc -> max w acc) t.spare_weight.(link) 0

let spare_deficit t ~link =
  max 0 (spare_required t ~link - Resources.spare_bw t.resources link)

let total_spare_deficit t =
  let total = ref 0 in
  for l = 0 to Graph.link_count t.graph - 1 do
    total := !total + spare_deficit t ~link:l
  done;
  !total

let backup_count_on_link t ~link = Aplv.backup_count t.aplv.(link)

(* Journal any movement of [link]'s spare pool [SC_i] made by [f] — the
   quantity the multiplexing rule (§5) sizes and the flight recorder's
   spare-change event reports before/after. *)
let journal_spare t link f =
  if !J.on then begin
    let before = Resources.spare_bw t.resources link in
    let r = f () in
    let after = Resources.spare_bw t.resources link in
    if after <> before then J.record (J.Spare_change { link; before; after });
    r
  end
  else f ()

(* Try to lift any spare deficit on [link] out of the free pool. *)
let reclaim_spare t link =
  journal_spare t link @@ fun () ->
  let d = spare_deficit t ~link in
  if d > 0 then ignore (Resources.grow_spare t.resources ~link ~want:d)

let adjust_spare_after_register t link =
  journal_spare t link @@ fun () ->
  let req = spare_required t ~link in
  let have = Resources.spare_bw t.resources link in
  if req > have then
    let granted = Resources.grow_spare t.resources ~link ~want:(req - have) in
    granted = req - have
  else true

let adjust_spare_after_unregister t link =
  journal_spare t link @@ fun () ->
  let req = spare_required t ~link in
  let have = Resources.spare_bw t.resources link in
  if have > req then Resources.shrink_spare t.resources ~link ~amount:(have - req)

(* Register one backup on every link of its route, carrying the edge-LSET of
   its primary (the backup-path register packet of §2.2).  The spare table
   is keyed by the primary's {e failure domains} — the SRLG groups its
   edges belong to (one weight unit per group per backup, however many of
   the group's edges the primary crosses) — so {!spare_required} sizes the
   pool for the worst single {e group} failure.  Under the singleton model
   the group list is the edge LSET itself and the bookkeeping is
   bit-identical to the per-edge original.  Returns false if some link
   could not reserve the full spare requirement. *)
let register_backup t ~bw ~primary_edges ~backup_path =
  let groups = Srlg.groups_of_edges t.srlg primary_edges in
  let fully_reserved = ref true in
  List.iter
    (fun l ->
      Aplv.register t.aplv.(l) ~edge_lset:primary_edges;
      t.aplv_updates <- t.aplv_updates + 1;
      Tm.Counter.incr c_aplv_updates;
      let counts = t.conflict_counts.(l) in
      List.iter
        (fun e ->
          counts.(e) <- counts.(e) + 1;
          t.aplv_norm.(l) <- t.aplv_norm.(l) + 1)
        primary_edges;
      List.iter
        (fun g ->
          let w = Option.value ~default:0 (Hashtbl.find_opt t.spare_weight.(l) g) in
          Hashtbl.replace t.spare_weight.(l) g (w + bw))
        groups;
      t.backup_total.(l) <- t.backup_total.(l) + bw;
      if not (adjust_spare_after_register t l) then fully_reserved := false)
    (Path.links backup_path);
  !fully_reserved

let unregister_backup t ~bw ~primary_edges ~backup_path =
  let groups = Srlg.groups_of_edges t.srlg primary_edges in
  List.iter
    (fun l ->
      Aplv.unregister t.aplv.(l) ~edge_lset:primary_edges;
      t.aplv_updates <- t.aplv_updates + 1;
      Tm.Counter.incr c_aplv_updates;
      let counts = t.conflict_counts.(l) in
      List.iter
        (fun e ->
          counts.(e) <- counts.(e) - 1;
          t.aplv_norm.(l) <- t.aplv_norm.(l) - 1)
        primary_edges;
      List.iter
        (fun g ->
          match Hashtbl.find_opt t.spare_weight.(l) g with
          | None -> invalid_arg "Net_state: spare-weight underflow"
          | Some w ->
              if w < bw then invalid_arg "Net_state: spare-weight underflow"
              else if w = bw then Hashtbl.remove t.spare_weight.(l) g
              else Hashtbl.replace t.spare_weight.(l) g (w - bw))
        groups;
      t.backup_total.(l) <- t.backup_total.(l) - bw;
      adjust_spare_after_unregister t l)
    (Path.links backup_path)

(* How many extra units link [l] must still be able to host for [backup],
   given reservations the same connection makes on that link with its
   primary and with backups registered before this one. *)
let occurrences l links =
  List.fold_left (fun n x -> if x = l then n + 1 else n) 0 links

let backup_admissible t ~bw ~primary ~earlier_backups backup =
  let primary_links = Path.links primary in
  List.for_all
    (fun l ->
      let own_primary = occurrences l primary_links in
      let own_backups =
        List.fold_left
          (fun n b -> n + occurrences l (Path.links b))
          0 earlier_backups
      in
      Resources.available_for_backup t.resources l
      >= bw * (1 + own_primary + own_backups))
    (Path.links backup)

let admit t ~id ~bw ~primary ~backups =
  if Hashtbl.mem t.conns id then invalid_arg "Net_state.admit: connection id in use";
  if bw <= 0 then invalid_arg "Net_state.admit: bandwidth must be positive";
  let primary_links = Path.links primary in
  List.iter
    (fun l ->
      if not (Resources.primary_feasible t.resources ~link:l ~bw) then
        invalid_arg "Net_state.admit: primary link lacks free bandwidth")
    primary_links;
  let rec check_backups earlier = function
    | [] -> ()
    | b :: rest ->
        if not (backup_admissible t ~bw ~primary ~earlier_backups:earlier b) then
          invalid_arg "Net_state.admit: backup link cannot host backup";
        check_backups (b :: earlier) rest
  in
  check_backups [] backups;
  List.iter (fun l -> Resources.reserve_primary t.resources ~link:l ~bw) primary_links;
  let conn =
    { id; src = Path.src primary; dst = Path.dst primary; bw; primary; backups; degraded = false }
  in
  let primary_edges = edge_lset_of_path primary in
  List.iter
    (fun b ->
      if not (register_backup t ~bw ~primary_edges ~backup_path:b) then
        conn.degraded <- true)
    backups;
  List.iter (fun e -> Hashtbl.replace t.edge_primaries.(e) id conn) primary_edges;
  Hashtbl.add t.conns id conn;
  conn

let find t id = Hashtbl.find_opt t.conns id
let active_count t = Hashtbl.length t.conns
let iter_conns t f = Hashtbl.iter (fun _ c -> f c) t.conns

let primaries_crossing_edge t e =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.edge_primaries.(e) []
  |> List.sort (fun a b -> compare a.id b.id)

let primaries_crossing_edges t ~edges =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.iter (fun id c -> Hashtbl.replace seen id c) t.edge_primaries.(e))
    edges;
  Hashtbl.fold (fun _ c acc -> c :: acc) seen []
  |> List.sort (fun a b -> compare a.id b.id)

let primaries_crossing_group t ~group =
  primaries_crossing_edges t ~edges:(Srlg.edges_of_group t.srlg group)

let remove_primary_index t conn =
  List.iter
    (fun e -> Hashtbl.remove t.edge_primaries.(e) conn.id)
    (edge_lset_of_path conn.primary)

let touched_links conn =
  Path.links conn.primary @ List.concat_map Path.links conn.backups

let unregister_all_backups t conn =
  let primary_edges = edge_lset_of_path conn.primary in
  List.iter
    (fun b -> unregister_backup t ~bw:conn.bw ~primary_edges ~backup_path:b)
    conn.backups

let release t ~id =
  match Hashtbl.find_opt t.conns id with
  | None -> invalid_arg "Net_state.release: unknown connection"
  | Some conn ->
      let links = touched_links conn in
      List.iter
        (fun l -> Resources.release_primary t.resources ~link:l ~bw:conn.bw)
        (Path.links conn.primary);
      unregister_all_backups t conn;
      remove_primary_index t conn;
      Hashtbl.remove t.conns id;
      (* §5: freed resources flow to spare pools still in deficit. *)
      List.iter (fun l -> reclaim_spare t l) links

let drop t ~id =
  (* Same resource motions as a release; kept separate so callers (and
     statistics) distinguish voluntary teardown from failure-induced loss. *)
  release t ~id

let nth_backup conn index =
  match List.nth_opt conn.backups index with
  | Some b -> b
  | None -> invalid_arg "Net_state: backup index out of range"

let activation_feasible t ~id ?(index = 0) () =
  match Hashtbl.find_opt t.conns id with
  | None -> false
  | Some conn -> (
      match List.nth_opt conn.backups index with
      | None -> false
      | Some b ->
          List.for_all
            (fun l -> Resources.backup_feasible t.resources ~link:l ~bw:conn.bw)
            (Path.links b))

let promote_backup t ~id ?(index = 0) () =
  match Hashtbl.find_opt t.conns id with
  | None -> invalid_arg "Net_state.promote_backup: unknown connection"
  | Some conn ->
      let chosen = nth_backup conn index in
      if not (activation_feasible t ~id ~index ()) then
        invalid_arg "Net_state.promote_backup: activation infeasible";
      List.iter
        (fun l -> Resources.release_primary t.resources ~link:l ~bw:conn.bw)
        (Path.links conn.primary);
      unregister_all_backups t conn;
      (* The activated channel's bandwidth comes from free first, then from
         the shared spare pool — stealing spare is exactly the conflict the
         routing schemes try to avoid. *)
      List.iter
        (fun l ->
          journal_spare t l @@ fun () ->
          let free = Resources.free t.resources l in
          if free >= conn.bw then Resources.reserve_primary t.resources ~link:l ~bw:conn.bw
          else begin
            let from_spare = conn.bw - free in
            Resources.spare_to_prime t.resources ~link:l ~bw:from_spare;
            if free > 0 then Resources.reserve_primary t.resources ~link:l ~bw:free
          end)
        (Path.links chosen);
      remove_primary_index t conn;
      let remaining = List.filteri (fun i _ -> i <> index) conn.backups in
      conn.primary <- chosen;
      conn.backups <- [];
      List.iter
        (fun e -> Hashtbl.replace t.edge_primaries.(e) id conn)
        (edge_lset_of_path chosen);
      (* Re-register the surviving backups against the new primary's LSET;
         ones the network can no longer host are dropped from the list (the
         recovery driver's step 4 may find replacements). *)
      let primary_edges = edge_lset_of_path chosen in
      List.iter
        (fun b ->
          if
            backup_admissible t ~bw:conn.bw ~primary:chosen
              ~earlier_backups:conn.backups b
          then begin
            if not (register_backup t ~bw:conn.bw ~primary_edges ~backup_path:b)
            then conn.degraded <- true;
            conn.backups <- conn.backups @ [ b ]
          end)
        remaining

let reroute_primary t ~id ~primary =
  match Hashtbl.find_opt t.conns id with
  | None -> invalid_arg "Net_state.reroute_primary: unknown connection"
  | Some conn ->
      if Path.src primary <> conn.src || Path.dst primary <> conn.dst then
        invalid_arg "Net_state.reroute_primary: endpoint mismatch";
      let old_links = Path.links conn.primary in
      unregister_all_backups t conn;
      List.iter
        (fun l -> Resources.release_primary t.resources ~link:l ~bw:conn.bw)
        old_links;
      (* All-or-nothing reservation of the new route. *)
      let new_links = Path.links primary in
      let feasible =
        (* Count repeated links in the new route (spliced detours may cross
           a link twice before simplification). *)
        let needed = Hashtbl.create 8 in
        List.iter
          (fun l ->
            Hashtbl.replace needed l
              (conn.bw + Option.value ~default:0 (Hashtbl.find_opt needed l)))
          new_links;
        Hashtbl.fold
          (fun l need acc -> acc && Resources.free t.resources l >= need)
          needed true
      in
      if not feasible then begin
        (* Roll back: re-reserve the old primary (its bandwidth was just
           freed, so this cannot fail) and re-register the backups. *)
        List.iter
          (fun l -> Resources.reserve_primary t.resources ~link:l ~bw:conn.bw)
          old_links;
        let primary_edges = edge_lset_of_path conn.primary in
        List.iter
          (fun b -> ignore (register_backup t ~bw:conn.bw ~primary_edges ~backup_path:b))
          conn.backups;
        invalid_arg "Net_state.reroute_primary: insufficient free bandwidth"
      end;
      List.iter
        (fun l -> Resources.reserve_primary t.resources ~link:l ~bw:conn.bw)
        new_links;
      remove_primary_index t conn;
      let backups = conn.backups in
      conn.primary <- primary;
      conn.backups <- [];
      List.iter
        (fun e -> Hashtbl.replace t.edge_primaries.(e) id conn)
        (edge_lset_of_path primary);
      let primary_edges = edge_lset_of_path primary in
      List.iter
        (fun b ->
          if
            backup_admissible t ~bw:conn.bw ~primary ~earlier_backups:conn.backups b
          then begin
            if not (register_backup t ~bw:conn.bw ~primary_edges ~backup_path:b)
            then conn.degraded <- true;
            conn.backups <- conn.backups @ [ b ]
          end)
        backups

let replace_backups t ~id ~backups =
  match Hashtbl.find_opt t.conns id with
  | None -> invalid_arg "Net_state.replace_backups: unknown connection"
  | Some conn ->
      let primary_edges = edge_lset_of_path conn.primary in
      unregister_all_backups t conn;
      conn.backups <- [];
      let rec check earlier = function
        | [] -> ()
        | b :: rest ->
            if not (backup_admissible t ~bw:conn.bw ~primary:conn.primary ~earlier_backups:earlier b)
            then invalid_arg "Net_state.replace_backups: backup link cannot host backup";
            check (b :: earlier) rest
      in
      check [] backups;
      List.iter
        (fun b ->
          if not (register_backup t ~bw:conn.bw ~primary_edges ~backup_path:b) then
            conn.degraded <- true)
        backups;
      conn.backups <- backups

let replace_backups_drop t ~id ~backups =
  match Hashtbl.find_opt t.conns id with
  | None -> invalid_arg "Net_state.replace_backups_drop: unknown connection"
  | Some conn ->
      let primary_edges = edge_lset_of_path conn.primary in
      unregister_all_backups t conn;
      conn.backups <- [];
      (* Same sequential admissibility walk as {!replace_backups}, but an
         infeasible member is dropped instead of raising: under correlated
         failures, earlier victims' activations may have converted spare to
         prime on a surviving backup's links, and losing that member is the
         graceful outcome (the reprotection queue can retry later). *)
      let kept =
        List.rev
          (List.fold_left
             (fun kept b ->
               if
                 backup_admissible t ~bw:conn.bw ~primary:conn.primary
                   ~earlier_backups:kept b
               then b :: kept
               else kept)
             [] backups)
      in
      List.iter
        (fun b ->
          if not (register_backup t ~bw:conn.bw ~primary_edges ~backup_path:b)
          then conn.degraded <- true)
        kept;
      conn.backups <- kept;
      kept

let fail_edge t ~edge = t.failed.(edge) <- true
let edge_failed t ~edge = t.failed.(edge)
let restore_edge t ~edge = t.failed.(edge) <- false

let incident_edges t node =
  Array.to_list (Graph.out_links t.graph node) |> List.map Graph.edge_of_link

let fail_group t ~group =
  List.iter (fun e -> fail_edge t ~edge:e) (Srlg.edges_of_group t.srlg group)

let restore_group t ~group =
  List.iter (fun e -> restore_edge t ~edge:e) (Srlg.edges_of_group t.srlg group)

let fail_node t ~node =
  List.iter (fun e -> fail_edge t ~edge:e) (incident_edges t node)

let restore_node t ~node =
  List.iter (fun e -> restore_edge t ~edge:e) (incident_edges t node)

(* ---- snapshot / rollback -------------------------------------------------
   Speculative admissions and what-if failure probes must never mutate the
   truth.  A snapshot deep-copies every mutable piece of the state —
   resource pools, APLVs and both PR 4 mirrors, the SRLG spare-weight
   tables, the connection table (with fresh [conn] records, since those are
   themselves mutable), the primary index and the failure flags — and a
   rollback writes it all back {e in place}, preserving the physical
   identity of [t] (route functions and managers close over it).  The
   graph, SRLG model and capacities are immutable and shared.

   Capture with [~into] reuses a previous snapshot's arrays and hashtables,
   so the steady-state cost of a what-if is two memcpy-style sweeps of the
   mutable state, with no per-capture large allocations. *)

module Snapshot = struct
  type state = t

  type t = {
    s_resources : Resources.snapshot;
    s_aplv : Aplv.t array;
    s_aplv_norm : int array;
    s_conflict : int array array;
    s_spare_weight : (int, int) Hashtbl.t array;
    s_backup_total : int array;
    mutable s_conns : conn list; (* deep copies, sorted by id *)
    s_failed : bool array;
    mutable s_aplv_updates : int;
  }

  let copy_conn (c : conn) =
    {
      id = c.id;
      src = c.src;
      dst = c.dst;
      bw = c.bw;
      primary = c.primary;
      backups = c.backups;
      degraded = c.degraded;
    }

  let copy_table ~into ~from =
    Hashtbl.reset into;
    Hashtbl.iter (fun k v -> Hashtbl.replace into k v) from

  let conn_list (st : state) =
    Hashtbl.fold (fun _ c acc -> copy_conn c :: acc) st.conns []
    |> List.sort (fun a b -> compare a.id b.id)

  let capture ?into (st : state) =
    let links = Graph.link_count st.graph in
    let edges = Graph.edge_count st.graph in
    let fresh () =
      {
        s_resources = Resources.capture st.resources;
        s_aplv = Array.map Aplv.copy st.aplv;
        s_aplv_norm = Array.copy st.aplv_norm;
        s_conflict = Array.map Array.copy st.conflict_counts;
        s_spare_weight = Array.map Hashtbl.copy st.spare_weight;
        s_backup_total = Array.copy st.backup_total;
        s_conns = conn_list st;
        s_failed = Array.copy st.failed;
        s_aplv_updates = st.aplv_updates;
      }
    in
    match into with
    | Some s
      when Array.length s.s_aplv = links && Array.length s.s_failed = edges ->
        ignore (Resources.capture ~into:s.s_resources st.resources : Resources.snapshot);
        for l = 0 to links - 1 do
          Aplv.assign ~into:s.s_aplv.(l) ~from:st.aplv.(l);
          Array.blit st.conflict_counts.(l) 0 s.s_conflict.(l) 0 edges;
          copy_table ~into:s.s_spare_weight.(l) ~from:st.spare_weight.(l)
        done;
        Array.blit st.aplv_norm 0 s.s_aplv_norm 0 links;
        Array.blit st.backup_total 0 s.s_backup_total 0 links;
        Array.blit st.failed 0 s.s_failed 0 edges;
        s.s_conns <- conn_list st;
        s.s_aplv_updates <- st.aplv_updates;
        s
    | Some _ | None -> fresh ()

  let rollback (st : state) s =
    let links = Graph.link_count st.graph in
    let edges = Graph.edge_count st.graph in
    if Array.length s.s_aplv <> links || Array.length s.s_failed <> edges then
      invalid_arg "Net_state.Snapshot.rollback: snapshot shape mismatch";
    Resources.restore st.resources s.s_resources;
    for l = 0 to links - 1 do
      Aplv.assign ~into:st.aplv.(l) ~from:s.s_aplv.(l);
      Array.blit s.s_conflict.(l) 0 st.conflict_counts.(l) 0 edges;
      copy_table ~into:st.spare_weight.(l) ~from:s.s_spare_weight.(l)
    done;
    Array.blit s.s_aplv_norm 0 st.aplv_norm 0 links;
    Array.blit s.s_backup_total 0 st.backup_total 0 links;
    Array.blit s.s_failed 0 st.failed 0 edges;
    (* Restore the connection table from fresh copies — the speculative run
       may have mutated the live records in place — and rebuild the
       primary index to point at the restored records. *)
    Hashtbl.reset st.conns;
    Array.iter Hashtbl.reset st.edge_primaries;
    List.iter
      (fun saved ->
        let c = copy_conn saved in
        Hashtbl.add st.conns c.id c;
        List.iter
          (fun e -> Hashtbl.replace st.edge_primaries.(e) c.id c)
          (edge_lset_of_path c.primary))
      s.s_conns;
    st.aplv_updates <- s.s_aplv_updates
end

(* ---- serialization (checkpoint) ------------------------------------------
   A checkpoint cannot re-run admissions: the digest includes the
   [aplv_updates] odometer and history-dependent spare pools / [degraded]
   flags, none of which a logical replay of the surviving connections would
   reproduce.  Instead [Serial.dump] captures the minimal mutable truth —
   the raw resource pools, failure flags, odometer, and the connection
   table with routes as link-id lists — and [Serial.restore] rebuilds every
   derived structure (APLVs, both PR 4 mirrors, SRLG spare weights, backup
   totals, primary index) by replaying the registration {e arithmetic}
   only: no spare-pool adjustment (pools are blitted verbatim afterwards),
   no telemetry, no journal events.  APLV registration is commutative
   hashtable arithmetic and every digest-visible read of it is sorted or
   aggregate, so the rebuilt state is bit-identical under the accessor
   digest. *)

module Serial = struct
  type conn_repr = {
    r_id : int;
    r_src : int;
    r_dst : int;
    r_bw : int;
    r_degraded : bool;
    r_primary : int list;
    r_backups : int list list;
  }

  type repr = {
    r_prime : int array;
    r_spare : int array;
    r_failed : bool array;
    r_aplv_updates : int;
    r_conns : conn_repr list; (* sorted by id *)
  }

  let dump (t : t) =
    let prime, spare = Resources.pools t.resources in
    let conns =
      Hashtbl.fold
        (fun _ (c : conn) acc ->
          {
            r_id = c.id;
            r_src = c.src;
            r_dst = c.dst;
            r_bw = c.bw;
            r_degraded = c.degraded;
            r_primary = Path.links c.primary;
            r_backups = List.map Path.links c.backups;
          }
          :: acc)
        t.conns []
      |> List.sort (fun a b -> compare a.r_id b.r_id)
    in
    {
      r_prime = prime;
      r_spare = spare;
      r_failed = Array.copy t.failed;
      r_aplv_updates = t.aplv_updates;
      r_conns = conns;
    }

  (* Registration arithmetic only — compare {!register_backup}. *)
  let register_arith (t : t) ~bw ~primary_edges ~groups ~backup_path =
    List.iter
      (fun l ->
        Aplv.register t.aplv.(l) ~edge_lset:primary_edges;
        let counts = t.conflict_counts.(l) in
        List.iter
          (fun e ->
            counts.(e) <- counts.(e) + 1;
            t.aplv_norm.(l) <- t.aplv_norm.(l) + 1)
          primary_edges;
        List.iter
          (fun g ->
            let w = Option.value ~default:0 (Hashtbl.find_opt t.spare_weight.(l) g) in
            Hashtbl.replace t.spare_weight.(l) g (w + bw))
          groups;
        t.backup_total.(l) <- t.backup_total.(l) + bw)
      (Path.links backup_path)

  let restore (t : t) (r : repr) =
    let links = Graph.link_count t.graph in
    let edges = Graph.edge_count t.graph in
    if
      Array.length r.r_prime <> links
      || Array.length r.r_failed <> edges
    then invalid_arg "Net_state.Serial.restore: topology shape mismatch";
    let empty = Aplv.create () in
    for l = 0 to links - 1 do
      Aplv.assign ~into:t.aplv.(l) ~from:empty;
      Array.fill t.conflict_counts.(l) 0 edges 0;
      t.aplv_norm.(l) <- 0;
      t.backup_total.(l) <- 0;
      Hashtbl.reset t.spare_weight.(l)
    done;
    Hashtbl.reset t.conns;
    Array.iter Hashtbl.reset t.edge_primaries;
    List.iter
      (fun cr ->
        let primary = Path.of_links t.graph cr.r_primary in
        let backups = List.map (Path.of_links t.graph) cr.r_backups in
        let conn =
          {
            id = cr.r_id;
            src = cr.r_src;
            dst = cr.r_dst;
            bw = cr.r_bw;
            primary;
            backups;
            degraded = cr.r_degraded;
          }
        in
        if conn.src <> Path.src primary || conn.dst <> Path.dst primary then
          invalid_arg "Net_state.Serial.restore: endpoint mismatch";
        let primary_edges = edge_lset_of_path primary in
        let groups = Srlg.groups_of_edges t.srlg primary_edges in
        List.iter
          (fun b -> register_arith t ~bw:conn.bw ~primary_edges ~groups ~backup_path:b)
          backups;
        List.iter
          (fun e -> Hashtbl.replace t.edge_primaries.(e) conn.id conn)
          primary_edges;
        Hashtbl.add t.conns conn.id conn)
      r.r_conns;
    Array.blit r.r_failed 0 t.failed 0 edges;
    Resources.set_pools t.resources ~prime:r.r_prime ~spare:r.r_spare;
    t.aplv_updates <- r.r_aplv_updates
end

(* The routing fast path never reads the APLV hashtables — only the dense
   [aplv_norm]/[conflict_counts] mirrors.  This check recomputes both from
   the authoritative {!Aplv.t} per link and reports the first slot where a
   mirror has drifted.  O(links × edges); driven by the differential
   harness and the soak test after every mutation. *)
let check_routing_caches t =
  let links = Graph.link_count t.graph in
  let edges = Graph.edge_count t.graph in
  let issue = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !issue = None then issue := Some s) fmt in
  for l = 0 to links - 1 do
    let norm = Aplv.norm1 t.aplv.(l) in
    if t.aplv_norm.(l) <> norm then
      fail "link %d: cached aplv_norm %d, APLV says %d" l t.aplv_norm.(l) norm;
    let counts = t.conflict_counts.(l) in
    for j = 0 to edges - 1 do
      let a = Aplv.get t.aplv.(l) j in
      if counts.(j) <> a then
        fail "link %d edge %d: cached conflict count %d, APLV says %d" l j
          counts.(j) a
    done
  done;
  match !issue with None -> Ok () | Some msg -> Error msg

let check_invariants t =
  match Resources.check_invariants t.resources with
  | Error _ as e -> e
  | Ok () -> (
  match check_routing_caches t with
  | Error _ as e -> e
  | Ok () -> (
      let links = Graph.link_count t.graph in
      (* Rebuild expected per-link state from the connection table. *)
      let expect_prime = Array.make links 0 in
      let expect_weight = Array.init links (fun _ -> Hashtbl.create 8) in
      let expect_backups = Array.make links 0 in
      let expect_total = Array.make links 0 in
      Hashtbl.iter
        (fun _ conn ->
          List.iter
            (fun l -> expect_prime.(l) <- expect_prime.(l) + conn.bw)
            (Path.links conn.primary);
          let groups =
            Srlg.groups_of_edges t.srlg (edge_lset_of_path conn.primary)
          in
          List.iter
            (fun b ->
              List.iter
                (fun l ->
                  expect_backups.(l) <- expect_backups.(l) + 1;
                  expect_total.(l) <- expect_total.(l) + conn.bw;
                  List.iter
                    (fun g ->
                      let w =
                        Option.value ~default:0 (Hashtbl.find_opt expect_weight.(l) g)
                      in
                      Hashtbl.replace expect_weight.(l) g (w + conn.bw))
                    groups)
                (Path.links b))
            conn.backups)
        t.conns;
      let issue = ref None in
      let fail fmt = Printf.ksprintf (fun s -> if !issue = None then issue := Some s) fmt in
      for l = 0 to links - 1 do
        if Resources.prime_bw t.resources l <> expect_prime.(l) then
          fail "link %d: prime_bw %d, expected %d" l
            (Resources.prime_bw t.resources l) expect_prime.(l);
        if Aplv.backup_count t.aplv.(l) <> expect_backups.(l) then
          fail "link %d: %d backups registered, expected %d" l
            (Aplv.backup_count t.aplv.(l)) expect_backups.(l);
        if t.backup_total.(l) <> expect_total.(l) then
          fail "link %d: backup_total %d, expected %d" l t.backup_total.(l)
            expect_total.(l);
        Hashtbl.iter
          (fun g w ->
            let got = Option.value ~default:0 (Hashtbl.find_opt t.spare_weight.(l) g) in
            if got <> w then fail "link %d group %d: spare weight %d, expected %d" l g got w)
          expect_weight.(l);
        Hashtbl.iter
          (fun g w ->
            if Option.value ~default:0 (Hashtbl.find_opt expect_weight.(l) g) <> w then
              fail "link %d group %d: stale spare weight %d" l g w)
          t.spare_weight.(l);
        let req = spare_required t ~link:l in
        let have = Resources.spare_bw t.resources l in
        if have > req then fail "link %d: spare %d exceeds requirement %d" l have req
      done;
      match !issue with None -> Ok () | Some msg -> Error msg))

type t = { bits : Bytes.t; length : int }

let make_empty length =
  { bits = Bytes.make ((length + 7) / 8) '\000'; length }

let set_bit t j =
  let byte = j / 8 and bit = j mod 8 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl bit)))

let get t j =
  if j < 0 || j >= t.length then invalid_arg "Conflict_vector.get: out of range";
  let byte = j / 8 and bit = j mod 8 in
  Char.code (Bytes.get t.bits byte) land (1 lsl bit) <> 0

let of_aplv aplv ~domains =
  if domains < 0 then invalid_arg "Conflict_vector.of_aplv: negative size";
  let t = make_empty domains in
  List.iter
    (fun j ->
      if j >= domains then invalid_arg "Conflict_vector.of_aplv: domain out of range";
      set_bit t j)
    (Aplv.support aplv);
  t

let of_bits bits =
  let t = make_empty (Array.length bits) in
  Array.iteri (fun j b -> if b then set_bit t j) bits;
  t

let length t = t.length

let popcount t =
  let count = ref 0 in
  for j = 0 to t.length - 1 do
    if get t j then incr count
  done;
  !count

let conflict_count_with t ~edge_lset =
  List.fold_left (fun acc j -> if get t j then acc + 1 else acc) 0 edge_lset

let byte_size t = Bytes.length t.bits

let equal a b = a.length = b.length && Bytes.equal a.bits b.bits

let pp ppf t =
  for j = 0 to t.length - 1 do
    Format.pp_print_char ppf (if get t j then '1' else '0')
  done

(* ---- per-SRLG aggregation ------------------------------------------------ *)

let group_popcount t ~groups ~edges_of_group =
  let count = ref 0 in
  for g = 0 to groups - 1 do
    if List.exists (fun j -> get t j) (edges_of_group g) then incr count
  done;
  !count

let group_conflict_count_with t ~groups ~edges_of_group =
  List.fold_left
    (fun acc g ->
      if List.exists (fun j -> get t j) (edges_of_group g) then acc + 1
      else acc)
    0 groups

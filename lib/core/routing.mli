(** Route selection for primary and backup channels (paper §3).

    {b Primary} channels take the minimum-hop path whose every link has
    enough {e free} bandwidth (spare is not preempted — §4.1's
    primary-flag rule applied network-wide).

    {b Backup} channels are found with Dijkstra over scheme-specific link
    costs.  In all schemes, a link lying on an edge of the primary route
    costs the paper's large constant [Q] on top of its scheme cost:
    overlap with the primary is avoided whenever any alternative exists,
    but a connection whose endpoints have no disjoint path (degree-1
    attachment) may still be protected by a minimally-overlapping backup —
    the paper's requirement (2) is {e minimal}, not zero, overlap.  A link
    whose available bandwidth [capacity - prime_bw] is below the request
    (doubled where the backup rides its own primary's directed link), or
    whose edge is marked failed, is excluded from the search outright, so
    every returned backup is admissible.  The small constant ε is a
    per-hop tie-break steering equal-cost choices to the shortest route.

    - {b P-LSR} (§3.1): cost [‖APLV_i‖₁ + ε].  Minimising the path sum
      maximises the estimated probability of successful backup activation
      (the product in Eq. 2).
    - {b D-LSR} (§3.2): cost [Σ_{j ∈ LSET(P_x)} c_{i,j} + ε] — the exact
      number of the new primary's failure domains already conflicting on
      the link.
    - {b SPF}: conflict-blind constant cost (ablation A3 — "even random
      selection can find a backup with small conflicts" in well-connected
      networks).

    {b Fast path.}  Route computations are the simulator's dominant cost,
    so the searches run allocation-free: scheme cost terms are read from
    {!Net_state}'s incrementally-maintained caches ({!Net_state.aplv_norm}
    and the dense conflict-count mirror behind
    {!Net_state.conflict_count}), per-query route membership is stamped
    into a per-domain epoch workspace instead of built as sets, and the
    underlying searches reuse {!Dr_topo.Shortest_path}'s per-domain
    workspaces.  The pre-change implementation is retained verbatim in
    {!Routing_reference}; the differential harness ({!Routing_check},
    [drtp_sim check-routing]) asserts both pick identical routes with
    bit-identical {!cost_parts} decompositions. *)

type scheme = Plsr | Dlsr | Spf

val scheme_name : scheme -> string
val scheme_of_string : string -> (scheme, string) result

val epsilon : float
(** The tie-break constant ε (1e-3; path length ≤ node count keeps the sum
    below any unit conflict difference). *)

val q_constant : float
(** The paper's large constant Q (1e6 — far above any achievable conflict
    sum, so one primary-overlapping hop outweighs any conflict count). *)

val find_primary : Net_state.t -> src:int -> dst:int -> bw:int -> Dr_topo.Path.t option
(** Minimum-hop feasible primary route, deterministic tie-break. *)

val backup_link_cost :
  scheme -> Net_state.t -> primary:Dr_topo.Path.t -> bw:int -> int -> float
(** The cost assigned to one link when routing a backup for [primary];
    [infinity] means infeasible. *)

type cost_parts = {
  q : float;  (** Q-penalty for overlapping the primary's (or an earlier
                  backup's) failure domain *)
  conflict : float;
      (** scheme term: [‖APLV_i‖₁] (P-LSR), [Σ c_{i,j}] (D-LSR), 1 (SPF) *)
  eps : float;  (** ε tie-break (0 for SPF) *)
}

val parts_total : cost_parts -> float
(** [q +. conflict +. eps], associated left to right —
    {!backup_link_cost} computes its finite costs through this exact
    expression, so explained parts sum {e bit-identically} to the search
    cost. *)

type link_verdict =
  | Dead  (** the link's edge is marked failed *)
  | No_bandwidth of { required : int }
      (** [capacity - prime_bw < required] (the requirement is doubled
          where the backup rides its own connection's links) *)
  | Cost of cost_parts  (** feasible, with the decomposed cost *)

val backup_link_verdict :
  ?earlier_backups:Dr_topo.Path.t list ->
  scheme ->
  Net_state.t ->
  primary:Dr_topo.Path.t ->
  bw:int ->
  int ->
  link_verdict
(** The explainable form of {!backup_link_cost}: why a link is infeasible,
    or the decomposition of its cost.  [backup_link_cost l] is [infinity]
    exactly when the verdict is [Dead] or [No_bandwidth], and
    [parts_total p] when it is [Cost p]. *)

val find_backup :
  ?max_hops:int ->
  scheme ->
  Net_state.t ->
  primary:Dr_topo.Path.t ->
  bw:int ->
  Dr_topo.Path.t option
(** Minimum-cost backup route from the primary's source to its
    destination, or [None] when no feasible route exists.  [max_hops]
    bounds the backup's length — the paper's observation that a backup
    longer than the connection's QoS (delay) budget cannot be used; with
    the bound, the search minimises conflict cost among routes within
    budget (a layered dynamic program instead of plain Dijkstra). *)

val find_backups :
  ?max_hops:int ->
  scheme ->
  Net_state.t ->
  primary:Dr_topo.Path.t ->
  bw:int ->
  count:int ->
  Dr_topo.Path.t list
(** Up to [count] backup routes in priority order (the paper's "one or
    more backup channels").  Each further backup is routed with the links
    of the already-chosen backups penalised by [Q] on top of the scheme
    cost (a later backup is only useful when the earlier ones cannot
    activate, so it should avoid sharing their fate), and with the
    bandwidth requirement raised on links the connection already uses.
    Returns fewer than [count] when no further feasible route exists. *)

val additional_backups :
  ?max_hops:int ->
  scheme ->
  Net_state.t ->
  primary:Dr_topo.Path.t ->
  bw:int ->
  existing:Dr_topo.Path.t list ->
  count:int ->
  Dr_topo.Path.t list
(** Like {!find_backups}, but extending an existing backup set: returns up
    to [count] {e new} routes, each avoiding (Q-penalising) the primary,
    the existing backups and the previously returned routes.  Used by the
    recovery reconfiguration step to top a connection back up to its
    target protection level. *)

(** {1 k-resilient backup chains (SRLG-aware)}

    A {e chain} is an ordered list of up to [k] backups selected to
    survive correlated (shared-risk-group) failures: each member is
    first sought with every link of a banned SRLG — any group touched by
    the primary or an earlier member — pruned outright, and only when no
    such fully-disjoint route exists does the search fall back to the
    soft Q-penalised selection of {!find_backups} ([cm_disjoint = false]
    marks these graceful fallbacks).  With the singleton SRLG model the
    chain {e is} {!find_backups}'s selection, path for path (the
    k=1/singleton equivalence the golden-fixture CI gate checks), with
    disjointness recovered as plain edge-disjointness. *)

type chain_member = {
  cm_path : Dr_topo.Path.t;
  cm_rank : int;  (** 0-based priority (failover order) *)
  cm_disjoint : bool;
      (** fully SRLG-disjoint from the primary and all earlier members *)
}

val find_backup_chain :
  ?max_hops:int ->
  scheme ->
  Net_state.t ->
  primary:Dr_topo.Path.t ->
  bw:int ->
  k:int ->
  chain_member list
(** Up to [k] chain members in failover order; journals one
    [chain-built] event (and a [backup-chosen] decomposition per member)
    when the journal is on.  May return fewer than [k] members — or none
    — when no further feasible route exists. *)

val additional_chain_members :
  ?max_hops:int ->
  scheme ->
  Net_state.t ->
  primary:Dr_topo.Path.t ->
  bw:int ->
  existing:Dr_topo.Path.t list ->
  count:int ->
  chain_member list
(** Extend an existing chain: up to [count] new members, each avoiding
    the SRLGs of the primary, the existing members and the previously
    returned routes ([cm_rank] continues from [List.length existing]).
    The recovery reconfiguration step uses this to top an exhausted
    chain back up. *)

type reject_reason = No_primary | No_backup

val reject_reason_name : reject_reason -> string

type route_pair = {
  primary : Dr_topo.Path.t;
  backups : Dr_topo.Path.t list;  (** in priority order; may be empty *)
}

type route_fn =
  Net_state.t -> src:int -> dst:int -> bw:int -> (route_pair, reject_reason) result
(** The pluggable routing interface the connection {!Manager} drives; the
    bounded-flooding scheme provides its own implementation of this type. *)

val link_state_route_fn :
  ?backup_count:int -> ?backup_hop_slack:int -> scheme -> with_backup:bool -> route_fn
(** The link-state schemes as a {!route_fn}: primary first, then
    [backup_count] (default 1) of the scheme's backups.  A request is
    rejected with [No_backup] when not even one backup can be found;
    beyond the first, missing backups merely shorten the list.
    [backup_hop_slack] bounds every backup to
    [hops(primary) + slack] links (the QoS-budget model of extension E5);
    omitted = unbounded.  [with_backup:false] gives the no-backup
    baseline used to measure capacity overhead (it never returns
    [No_backup]). *)

val chain_route_fn : ?k:int -> ?backup_hop_slack:int -> scheme -> route_fn
(** {!find_backup_chain} as a {!route_fn}: primary first, then a
    k-resilient chain (default [k = 1]) as the backup list in failover
    order.  With the singleton SRLG model this is path-for-path identical
    to [link_state_route_fn ~backup_count:k scheme ~with_backup:true]. *)

type t = {
  counts : (int, int) Hashtbl.t;
  mutable norm1 : int;
  mutable backups : int;
}

let create () = { counts = Hashtbl.create 16; norm1 = 0; backups = 0 }

let get t j = Option.value ~default:0 (Hashtbl.find_opt t.counts j)

let check_no_duplicates edge_lset =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun j ->
      if Hashtbl.mem seen j then invalid_arg "Aplv: duplicate edge in LSET";
      Hashtbl.add seen j ())
    edge_lset

let register t ~edge_lset =
  check_no_duplicates edge_lset;
  List.iter
    (fun j ->
      Hashtbl.replace t.counts j (get t j + 1);
      t.norm1 <- t.norm1 + 1)
    edge_lset;
  t.backups <- t.backups + 1

let unregister t ~edge_lset =
  check_no_duplicates edge_lset;
  List.iter
    (fun j ->
      let c = get t j in
      if c <= 0 then invalid_arg "Aplv.unregister: count underflow";
      if c = 1 then Hashtbl.remove t.counts j else Hashtbl.replace t.counts j (c - 1);
      t.norm1 <- t.norm1 - 1)
    edge_lset;
  if t.backups <= 0 then invalid_arg "Aplv.unregister: no backup registered";
  t.backups <- t.backups - 1

let copy t =
  { counts = Hashtbl.copy t.counts; norm1 = t.norm1; backups = t.backups }

let assign ~into ~from =
  Hashtbl.reset into.counts;
  Hashtbl.iter (fun j c -> Hashtbl.replace into.counts j c) from.counts;
  into.norm1 <- from.norm1;
  into.backups <- from.backups

let norm1 t = t.norm1

let max_element t = Hashtbl.fold (fun _ c acc -> max c acc) t.counts 0

let backup_count t = t.backups

let support t =
  Hashtbl.fold (fun j c acc -> if c > 0 then j :: acc else acc) t.counts []
  |> List.sort compare

let conflict_count_with t ~edge_lset =
  List.fold_left (fun acc j -> if get t j > 0 then acc + 1 else acc) 0 edge_lset

let overlap_weight_with t ~edge_lset =
  List.fold_left (fun acc j -> acc + get t j) 0 edge_lset

let pp ppf t =
  let entries =
    Hashtbl.fold (fun j c acc -> (j, c) :: acc) t.counts [] |> List.sort compare
  in
  Format.fprintf ppf "@[<h>{";
  List.iteri
    (fun i (j, c) ->
      if i > 0 then Format.pp_print_string ppf "; ";
      Format.fprintf ppf "%d:%d" j c)
    entries;
  Format.fprintf ppf "} |.|=%d max=%d backups=%d@]" t.norm1 (max_element t) t.backups

(* ---- per-SRLG aggregation ------------------------------------------------ *)

(* The SRLG generalisation views a group of edges as one failure domain.
   These aggregations take the edge->groups mapping as a function so the
   module stays independent of the model's representation. *)

let group_support t ~groups_of_edge =
  support t |> List.concat_map groups_of_edge |> List.sort_uniq compare

let group_conflict_count_with t ~groups ~edges_of_group =
  List.fold_left
    (fun acc g ->
      if List.exists (fun j -> get t j > 0) (edges_of_group g) then acc + 1
      else acc)
    0 groups

let group_max_weight t ~groups ~edges_of_group =
  List.fold_left
    (fun acc g ->
      max acc
        (List.fold_left (fun s j -> s + get t j) 0 (edges_of_group g)))
    0 groups

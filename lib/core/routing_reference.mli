(** Reference (oracle) routing implementation — the exact pre-fast-path
    code, kept executable.

    Same interface as {!Routing} (every type is an equation on
    {!Routing}'s, so values interoperate), but every query is computed the
    slow, obviously-correct way: fresh search arrays per call, set-based
    membership, scheme cost terms recomputed from the per-link {!Aplv.t}
    rather than read from {!Net_state}'s incremental caches.  No
    telemetry, no journal events: an oracle run must not perturb the
    observability of the live path it is checked against.

    Used by the differential harness ({!Routing_check},
    [drtp_sim check-routing], the qcheck differential suite) and by the
    benchmark's fast-vs-reference admission-throughput gate.  Any route or
    cost this module and {!Routing} disagree on — down to the last bit of
    the {!Routing.cost_parts} decomposition — is a bug in the fast path. *)

type scheme = Routing.scheme = Plsr | Dlsr | Spf

val scheme_name : scheme -> string

val epsilon : float
(** Equal to {!Routing.epsilon}. *)

val q_constant : float
(** Equal to {!Routing.q_constant}. *)

val find_primary :
  Net_state.t -> src:int -> dst:int -> bw:int -> Dr_topo.Path.t option
(** Pre-change {!Routing.find_primary}: BFS with per-call arrays. *)

type cost_parts = Routing.cost_parts = {
  q : float;
  conflict : float;
  eps : float;
}

val parts_total : cost_parts -> float

type link_verdict = Routing.link_verdict =
  | Dead
  | No_bandwidth of { required : int }
  | Cost of cost_parts

val backup_link_cost :
  scheme -> Net_state.t -> primary:Dr_topo.Path.t -> bw:int -> int -> float

val backup_link_verdict :
  ?earlier_backups:Dr_topo.Path.t list ->
  scheme ->
  Net_state.t ->
  primary:Dr_topo.Path.t ->
  bw:int ->
  int ->
  link_verdict

val find_backup :
  ?max_hops:int ->
  scheme ->
  Net_state.t ->
  primary:Dr_topo.Path.t ->
  bw:int ->
  Dr_topo.Path.t option
(** Pre-change {!Routing.find_backup}: allocating Dijkstra (or the
    hop-bounded dynamic program), costs recomputed from the APLVs. *)

val find_backups :
  ?max_hops:int ->
  scheme ->
  Net_state.t ->
  primary:Dr_topo.Path.t ->
  bw:int ->
  count:int ->
  Dr_topo.Path.t list

val additional_backups :
  ?max_hops:int ->
  scheme ->
  Net_state.t ->
  primary:Dr_topo.Path.t ->
  bw:int ->
  existing:Dr_topo.Path.t list ->
  count:int ->
  Dr_topo.Path.t list

type reject_reason = Routing.reject_reason = No_primary | No_backup

type route_pair = Routing.route_pair = {
  primary : Dr_topo.Path.t;
  backups : Dr_topo.Path.t list;
}

type route_fn = Routing.route_fn

val link_state_route_fn :
  ?backup_count:int -> ?backup_hop_slack:int -> scheme -> with_backup:bool -> route_fn
(** Pre-change {!Routing.link_state_route_fn} — drop-in for
    {!Manager.create}'s [route] argument, so whole scenario replays can be
    driven against the oracle (the benchmark's reference side). *)

module Graph = Dr_topo.Graph
module Path = Dr_topo.Path
module Tm = Dr_telemetry.Telemetry
module J = Dr_obs.Journal
module C = Dr_obs.Journal.Causal
module Faults = Dr_faults.Faults
module Backoff = Dr_faults.Backoff

(* Telemetry: recovery outcomes per victim connection and the latency
   distributions the E1 extension reports.  Activation latencies live in
   [0, ~0.1 s] with the default timing constants, hence the histogram
   range. *)
let c_switched = Tm.Counter.make "recovery.switched"
let c_rerouted = Tm.Counter.make "recovery.rerouted"
let c_lost = Tm.Counter.make "recovery.lost"
let c_reprotected = Tm.Counter.make "recovery.reprotected"
let c_backup_rerouted = Tm.Counter.make "recovery.backup.rerouted"
let c_backup_unprotected = Tm.Counter.make "recovery.backup.unprotected"
let c_reattempts = Tm.Counter.make "recovery.reestablish.attempts"
let c_msg_dropped = Tm.Counter.make "recovery.msg.dropped"
let c_retransmits = Tm.Counter.make "recovery.msg.retransmits"
let c_fallback_reroutes = Tm.Counter.make "recovery.fallback.reroutes"
let c_group_failures = Tm.Counter.make "recovery.group.failures"
let c_chain_failover = Tm.Counter.make "recovery.chain.failover"
let c_chain_exhausted = Tm.Counter.make "recovery.chain.exhausted"
let t_activation = Tm.Timer.make ~hist:(0.0, 0.1, 20) "recovery.activation_latency"
let t_reroute = Tm.Timer.make "recovery.reroute_latency"

type timing = {
  detection_delay : float;
  link_delay : float;
  route_computation : float;
  retry_backoff : float;
  max_retries : int;
}

let default_timing =
  {
    detection_delay = 0.010;
    link_delay = 0.001;
    route_computation = 0.005;
    retry_backoff = 0.100;
    max_retries = 3;
  }

type retrans = { rto : float; max_retransmits : int }

let default_retrans = { rto = 0.050; max_retransmits = 4 }

type outcome =
  | Switched of { latency : float; reprotected : bool }
  | Rerouted of { latency : float; retries : int }
  | Lost of { latency : float }

let outcome_is_recovered = function
  | Switched _ | Rerouted _ -> true
  | Lost _ -> false

type report = {
  edge : int;
  failed_edges : int list;
  outcomes : (int * outcome) list;
  backups_rerouted : int;
  backups_unprotected : int;
  unprotected_ids : int list;
  retransmits : int;
  messages_dropped : int;
}

let recovered_fraction r =
  match r.outcomes with
  | [] -> 1.0
  | outcomes ->
      let recovered =
        List.length (List.filter (fun (_, o) -> outcome_is_recovered o) outcomes)
      in
      float_of_int recovered /. float_of_int (List.length outcomes)

(* Hops from the connection's source to the node that detects the failure
   (the upstream endpoint of the failed edge on the primary). *)
let report_hops conn edge =
  let rec scan i = function
    | [] -> invalid_arg "Recovery.report_hops: primary does not cross the edge"
    | l :: rest -> if Graph.edge_of_link l = edge then i else scan (i + 1) rest
  in
  scan 0 (Path.links conn.Net_state.primary)

(* Undirected edges of a path, in hop order. *)
let edge_list_of_path p = List.map Graph.edge_of_link (Path.links p)

(* [report_hops] generalised to a failed edge *set*: hops to the first
   primary hop lying in the set — that endpoint's report reaches the
   source first. *)
let report_hops_any (conn : Net_state.conn) in_group =
  let rec scan i = function
    | [] ->
        invalid_arg "Recovery.report_hops_any: primary does not cross the group"
    | l :: rest ->
        if Hashtbl.mem in_group (Graph.edge_of_link l) then i
        else scan (i + 1) rest
  in
  scan 0 (Path.links conn.Net_state.primary)

(* The backup a victim activates: first in priority order (from position
   [from] on) that survives the failure and can get its bandwidth. *)
let usable_backup_index ?(from = 0) state (conn : Net_state.conn) edge =
  let rec scan i = function
    | [] -> None
    | b :: rest ->
        if
          i >= from
          && (not (Path.crosses_edge b edge))
          && Net_state.activation_feasible state ~id:conn.id ~index:i ()
        then Some (i, b)
        else scan (i + 1) rest
  in
  scan 0 conn.backups

(* One control-plane transmission under the fault plan: redraw after each
   loss until the message gets through or the sender exhausts its
   retransmission budget.  Returns [(delivered, extra)], where [extra] is
   the backoff time the sender slept on timeouts — exactly 0.0 without a
   plan, so zero-fault latencies stay bit-identical to the lossless
   code path. *)
let transmit ~faults ~retrans ~cls ~id ~dropped ~resent ~span ~at =
  match faults with
  | None -> (true, 0.0)
  | Some f ->
      let b =
        Backoff.make ~base:retrans.rto ~max_attempts:retrans.max_retransmits ()
      in
      let rec go attempt =
        if Faults.deliver f cls then (true, Backoff.total_before b ~attempt)
        else begin
          incr dropped;
          Tm.Counter.incr c_msg_dropped;
          if !J.on then
            J.record (J.Message_dropped { cls = Faults.cls_name cls; id });
          if Backoff.exhausted b ~attempt then begin
            (* The sender learns of the final loss by one more timeout. *)
            if !J.on then
              C.leaf ~parent:span ~conn:id
                ~t0:(at +. Backoff.total_before b ~attempt)
                ~dur:(Backoff.delay b ~attempt:(attempt + 1))
                "timeout-wait";
            (false, Backoff.total_before b ~attempt:(attempt + 1))
          end
          else begin
            incr resent;
            Tm.Counter.incr c_retransmits;
            if !J.on then begin
              J.record
                (J.Retransmit
                   { cls = Faults.cls_name cls; conn = id; attempt = attempt + 1 });
              C.leaf ~parent:span ~conn:id
                ~t0:(at +. Backoff.total_before b ~attempt)
                ~dur:(Backoff.delay b ~attempt:(attempt + 1))
                "retransmit-wait"
            end;
            go (attempt + 1)
          end
        end
      in
      go 0

let fail_edge_drtp state ~scheme ?(timing = default_timing) ?(reconfigure = true)
    ?(backup_count = 1) ?faults ?(retrans = default_retrans) ~edge () =
  Net_state.fail_edge state ~edge;
  let victims = Net_state.primaries_crossing_edge state edge in
  (* Connections whose backups (not primary) die with this edge: collect
     before any promotion changes the tables. *)
  let broken_backups = ref [] in
  Net_state.iter_conns state (fun c ->
      if
        (not (Path.crosses_edge c.primary edge))
        && List.exists (fun b -> Path.crosses_edge b edge) c.backups
      then broken_backups := c.id :: !broken_backups);
  if !J.on then
    J.record (J.Failure_detected { edge; victims = List.length victims });
  let dropped = ref 0 and resent = ref 0 in
  let fallback_unprotected = ref [] in
  let switched = ref [] in
  (* Reactive fallback once a signal's retransmissions are exhausted: tear
     the connection down and try a fresh (unprotected) primary, as the
     reactive scheme would. *)
  let fallback (conn : Net_state.conn) ~sp_root ~base ~spent =
    Net_state.drop state ~id:conn.id;
    match Routing.find_primary state ~src:conn.src ~dst:conn.dst ~bw:conn.bw with
    | Some p ->
        let wire = timing.link_delay *. float_of_int (Path.hops p) in
        let latency = spent +. timing.route_computation +. wire in
        ignore (Net_state.admit state ~id:conn.id ~bw:conn.bw ~primary:p ~backups:[]);
        Tm.Counter.incr c_fallback_reroutes;
        fallback_unprotected := conn.id :: !fallback_unprotected;
        if !J.on then begin
          C.leaf ~parent:sp_root ~conn:conn.id ~t0:(base +. spent)
            ~dur:timing.route_computation "route-comp";
          C.leaf ~parent:sp_root ~conn:conn.id
            ~t0:(base +. spent +. timing.route_computation)
            ~dur:wire "wire";
          C.close sp_root ~dur:latency;
          J.record (J.Rerouted { conn = conn.id; latency; retries = 0 })
        end;
        `Fell_back latency
    | None ->
        if !J.on then begin
          C.close sp_root ~dur:spent;
          J.record (J.Connection_lost { conn = conn.id; latency = spent })
        end;
        `Lost spent
  in
  let tagged =
    List.map
      (fun (conn : Net_state.conn) ->
        let hops = report_hops conn edge in
        let detection = timing.detection_delay in
        let base = J.now () in
        let sp_root =
          if !J.on then C.root ~conn:conn.id "recovery" else C.null
        in
        if !J.on then
          C.leaf ~parent:sp_root ~conn:conn.id ~t0:base ~dur:detection
            "detect";
        let report = timing.link_delay *. float_of_int hops in
        let sp_report =
          if !J.on then
            C.child ~parent:sp_root ~conn:conn.id ~t0:(base +. detection)
              "report"
          else C.null
        in
        let rep_ok, rep_extra =
          transmit ~faults ~retrans ~cls:Faults.Report ~id:conn.id ~dropped
            ~resent ~span:sp_report
            ~at:(base +. detection +. report)
        in
        (* Retransmission time rides on the phase that spent it, so the
           journal's detection/report/activation decomposition still sums
           to the full recovery latency. *)
        let report = report +. rep_extra in
        if !J.on then C.close sp_report ~dur:report;
        let notify = detection +. report in
        if !J.on then
          J.record (J.Report_hop { conn = conn.id; hops; detection; report });
        if not rep_ok then (conn.id, fallback conn ~sp_root ~base ~spent:notify)
        else
          (* Walk the surviving backups in priority order; a lost
             activation signal burns its retransmission budget and falls
             through to the next backup.  [tries] buffers each burned
             member's (start, cost) so the spans can attach to whichever
             phase the outcome settles on (activate vs failover-wasted). *)
          let rec activate from wasted tries tried =
            match usable_backup_index ~from state conn edge with
            | Some (index, b) ->
                let act_ok, act_extra =
                  transmit ~faults ~retrans ~cls:Faults.Activation ~id:conn.id
                    ~dropped ~resent ~span:C.null ~at:0.0
                in
                if act_ok then begin
                  let wire = timing.link_delay *. float_of_int (Path.hops b) in
                  let activation = wasted +. act_extra +. wire in
                  let latency = notify +. activation in
                  Net_state.promote_backup state ~id:conn.id ~index ();
                  if !J.on then begin
                    let sp_act =
                      C.child ~parent:sp_root ~conn:conn.id
                        ~t0:(base +. notify) "activate"
                    in
                    List.iter
                      (fun (t0, dur) ->
                        C.leaf ~parent:sp_act ~conn:conn.id ~t0 ~dur
                          "failover-wait")
                      (List.rev tries);
                    if act_extra > 0.0 then
                      C.leaf ~parent:sp_act ~conn:conn.id
                        ~t0:(base +. notify +. wasted) ~dur:act_extra
                        "retransmit-wait";
                    C.leaf ~parent:sp_act ~conn:conn.id
                      ~t0:(base +. notify +. wasted +. act_extra) ~dur:wire
                      "wire";
                    C.close sp_act ~dur:activation;
                    C.close sp_root ~dur:latency;
                    J.record
                      (J.Backup_activated
                         { conn = conn.id; index; detection; report; activation })
                  end;
                  switched := (conn.id, latency) :: !switched;
                  `Switched latency
                end
                else
                  activate (index + 1) (wasted +. act_extra)
                    (if !J.on then
                       (base +. notify +. wasted, act_extra) :: tries
                     else tries)
                    true
            | None ->
                if tried then begin
                  (* Backups existed, but every activation signal was
                     lost: fall back to a reactive reroute. *)
                  if !J.on then
                    C.leaf ~parent:sp_root ~conn:conn.id ~t0:(base +. notify)
                      ~dur:wasted "failover-wasted";
                  fallback conn ~sp_root ~base ~spent:(notify +. wasted)
                end
                else begin
                  Net_state.drop state ~id:conn.id;
                  if !J.on then begin
                    C.close sp_root ~dur:notify;
                    J.record (J.Backup_contended { conn = conn.id });
                    J.record
                      (J.Connection_lost { conn = conn.id; latency = notify })
                  end;
                  `Lost notify
                end
          in
          (conn.id, activate 0 0.0 [] false))
      victims
  in
  (* DRTP step 4: re-protect the promoted connections and re-route the
     backups the failure destroyed. *)
  let reprotected = Hashtbl.create 8 in
  let rerouted = ref 0 and unprotected = ref 0 in
  let step4_unprotected = ref [] in
  if reconfigure then begin
    let top_up id =
      match Net_state.find state id with
      | None -> `Gone (* also a victim, and it was dropped *)
      | Some conn ->
          let surviving =
            List.filter (fun b -> not (Path.crosses_edge b edge)) conn.backups
          in
          let fresh =
            Routing.additional_backups scheme state ~primary:conn.primary
              ~bw:conn.bw ~existing:surviving
              ~count:(max 0 (backup_count - List.length surviving))
          in
          Net_state.replace_backups state ~id ~backups:(surviving @ fresh);
          if surviving @ fresh = [] then `Unprotected
          else begin
            if !J.on then
              J.record (J.Reprotected { conn = id; fresh = List.length fresh });
            if fresh <> [] then `Rerouted else `Kept
          end
    in
    List.iter
      (fun (id, _) ->
        match top_up id with
        | `Gone -> ()
        | `Unprotected -> step4_unprotected := id :: !step4_unprotected
        | `Rerouted | `Kept -> Hashtbl.replace reprotected id ())
      !switched;
    List.iter
      (fun id ->
        match top_up id with
        | `Gone | `Kept -> ()
        | `Rerouted -> incr rerouted
        | `Unprotected ->
            incr unprotected;
            step4_unprotected := id :: !step4_unprotected)
      !broken_backups
  end;
  let outcomes =
    List.map
      (fun (id, tag) ->
        match tag with
        | `Lost latency ->
            Tm.Counter.incr c_lost;
            (id, Lost { latency })
        | `Fell_back latency ->
            Tm.Counter.incr c_rerouted;
            Tm.Timer.record t_reroute latency;
            (id, Rerouted { latency; retries = 0 })
        | `Switched latency ->
            Tm.Counter.incr c_switched;
            Tm.Timer.record t_activation latency;
            let reprotected = Hashtbl.mem reprotected id in
            if reprotected then Tm.Counter.incr c_reprotected;
            (id, Switched { latency; reprotected }))
      tagged
  in
  Tm.Counter.add c_backup_rerouted !rerouted;
  Tm.Counter.add c_backup_unprotected !unprotected;
  {
    edge;
    failed_edges = [ edge ];
    outcomes;
    backups_rerouted = !rerouted;
    backups_unprotected = !unprotected;
    unprotected_ids =
      List.rev !fallback_unprotected @ List.rev !step4_unprotected;
    retransmits = !resent;
    messages_dropped = !dropped;
  }

(* Remove loops from a node walk: when a node repeats, cut the cycle back
   to its first occurrence (the neighbour that followed the repeat in the
   original walk is also adjacent to the first occurrence). *)
let simplify_walk nodes =
  let rec go acc = function
    | [] -> List.rev acc
    | v :: rest ->
        if List.mem v acc then begin
          let rec cut = function
            | w :: _ as acc' when w = v -> acc'
            | _ :: tl -> cut tl
            | [] -> [ v ]
          in
          go (cut acc) rest
        end
        else go (v :: acc) rest
  in
  go [] nodes

let fail_edge_local_detour state ?(timing = default_timing) ~edge () =
  Net_state.fail_edge state ~edge;
  let graph = Net_state.graph state in
  let victims = Net_state.primaries_crossing_edge state edge in
  if !J.on then
    J.record (J.Failure_detected { edge; victims = List.length victims });
  let outcomes =
    List.map
      (fun (conn : Net_state.conn) ->
        (* The upstream endpoint of the failed link detects and repairs
           locally — no report to the source. *)
        let base = J.now () in
        let sp_root =
          if !J.on then C.root ~conn:conn.id "recovery" else C.null
        in
        let lost_phases latency =
          C.leaf ~parent:sp_root ~conn:conn.id ~t0:base
            ~dur:timing.detection_delay "detect";
          C.leaf ~parent:sp_root ~conn:conn.id
            ~t0:(base +. timing.detection_delay)
            ~dur:timing.route_computation "route-comp";
          C.close sp_root ~dur:latency
        in
        let primary_nodes = Path.nodes graph conn.primary in
        let rec find_failed prefix = function
          | l :: rest when Graph.edge_of_link l <> edge ->
              find_failed (Graph.link_dst graph l :: prefix) rest
          | l :: _ -> (List.rev prefix, Graph.link_src graph l, Graph.link_dst graph l)
          | [] -> invalid_arg "local_detour: primary does not cross the edge"
        in
        let _, u, v =
          find_failed [ List.hd primary_nodes ] (Path.links conn.primary)
        in
        let resources = Net_state.resources state in
        let usable l =
          (not (Net_state.edge_failed state ~edge:(Graph.edge_of_link l)))
          && Resources.free resources l >= conn.bw
        in
        let detour = Dr_topo.Shortest_path.min_hop_path graph ~usable ~src:u ~dst:v () in
        match detour with
        | None ->
            let latency = timing.detection_delay +. timing.route_computation in
            Net_state.drop state ~id:conn.id;
            Tm.Counter.incr c_lost;
            if !J.on then begin
              lost_phases latency;
              J.record (J.Connection_lost { conn = conn.id; latency })
            end;
            (conn.id, Lost { latency })
        | Some d ->
            (* Splice the detour in place of the failed hop and drop any
               loops the splice created: prefix(..u) @ detour(u..v) @
               suffix(v..). *)
            let rec splice acc = function
              | [] -> List.rev acc
              | n :: rest when n = u ->
                  List.rev acc @ Path.nodes graph d @ skip_until_v rest
              | n :: rest -> splice (n :: acc) rest
            and skip_until_v = function
              | n :: rest when n = v -> rest
              | _ :: rest -> skip_until_v rest
              | [] -> []
            in
            let new_nodes = simplify_walk (splice [] primary_nodes) in
            let new_primary = Path.of_nodes graph new_nodes in
            (try
               Net_state.reroute_primary state ~id:conn.id ~primary:new_primary;
               let wire = timing.link_delay *. float_of_int (Path.hops d) in
               let latency =
                 timing.detection_delay +. timing.route_computation +. wire
               in
               Tm.Counter.incr c_rerouted;
               Tm.Timer.record t_reroute latency;
               if !J.on then begin
                 C.leaf ~parent:sp_root ~conn:conn.id ~t0:base
                   ~dur:timing.detection_delay "detect";
                 C.leaf ~parent:sp_root ~conn:conn.id
                   ~t0:(base +. timing.detection_delay)
                   ~dur:timing.route_computation "route-comp";
                 C.leaf ~parent:sp_root ~conn:conn.id
                   ~t0:(base +. timing.detection_delay
                        +. timing.route_computation)
                   ~dur:wire "wire";
                 C.close sp_root ~dur:latency;
                 J.record (J.Rerouted { conn = conn.id; latency; retries = 0 })
               end;
               (conn.id, Rerouted { latency; retries = 0 })
             with Invalid_argument _ ->
               let latency = timing.detection_delay +. timing.route_computation in
               Net_state.drop state ~id:conn.id;
               Tm.Counter.incr c_lost;
               if !J.on then begin
                 lost_phases latency;
                 J.record (J.Connection_lost { conn = conn.id; latency })
               end;
               (conn.id, Lost { latency })))
      victims
  in
  {
    edge;
    failed_edges = [ edge ];
    outcomes;
    backups_rerouted = 0;
    backups_unprotected = 0;
    unprotected_ids = [];
    retransmits = 0;
    messages_dropped = 0;
  }

let fail_edge_reactive state ?(timing = default_timing) ~edge () =
  Net_state.fail_edge state ~edge;
  let victims = Net_state.primaries_crossing_edge state edge in
  if !J.on then
    J.record (J.Failure_detected { edge; victims = List.length victims });
  (* Everyone loses their channel first (the failed route is torn down),
     then re-establishment attempts proceed. *)
  let notify_of = Hashtbl.create 8 in
  List.iter
    (fun (conn : Net_state.conn) ->
      let hops = report_hops conn edge in
      let detection = timing.detection_delay in
      let report = timing.link_delay *. float_of_int hops in
      let notify = detection +. report in
      let base = J.now () in
      let sp_root =
        if !J.on then C.root ~conn:conn.id "recovery" else C.null
      in
      if !J.on then begin
        C.leaf ~parent:sp_root ~conn:conn.id ~t0:base ~dur:detection "detect";
        C.leaf ~parent:sp_root ~conn:conn.id ~t0:(base +. detection)
          ~dur:report "report";
        J.record (J.Report_hop { conn = conn.id; hops; detection; report })
      end;
      Hashtbl.replace notify_of conn.id
        (notify, conn.src, conn.dst, conn.bw, sp_root, base);
      Net_state.drop state ~id:conn.id)
    victims;
  (* Retry pacing: doubling backoff before attempt [n] (0-based).
     [Backoff.total_before] with the default factor is bit-identical to the
     historical [retry_backoff *. (2^n - 1)] closed form. *)
  let backoff =
    Backoff.make ~base:timing.retry_backoff ~max_attempts:timing.max_retries ()
  in
  let outcomes =
    List.map
      (fun (conn : Net_state.conn) ->
        let notify, src, dst, bw, sp_root, base =
          Hashtbl.find notify_of conn.id
        in
        let backoff_phases n =
          (* Phase leaves for the n-attempt search: total backoff slept,
             then the per-attempt route computations — folded after
             detect/report they re-compose [spent] bit-exactly. *)
          let bt = Backoff.total_before backoff ~attempt:n in
          let rct = timing.route_computation *. float_of_int (n + 1) in
          C.leaf ~parent:sp_root ~conn:conn.id ~t0:(base +. notify) ~dur:bt
            "backoff-wait";
          C.leaf ~parent:sp_root ~conn:conn.id ~t0:(base +. notify +. bt)
            ~dur:rct "route-comp"
        in
        let rec attempt n =
          Tm.Counter.incr c_reattempts;
          let spent =
            notify
            +. Backoff.total_before backoff ~attempt:n
            +. (timing.route_computation *. float_of_int (n + 1))
          in
          match Routing.find_primary state ~src ~dst ~bw with
          | Some p ->
              let wire = timing.link_delay *. float_of_int (Path.hops p) in
              let latency = spent +. wire in
              ignore (Net_state.admit state ~id:conn.id ~bw ~primary:p ~backups:[]);
              Tm.Counter.incr c_rerouted;
              Tm.Timer.record t_reroute latency;
              if !J.on then begin
                backoff_phases n;
                C.leaf ~parent:sp_root ~conn:conn.id ~t0:(base +. spent)
                  ~dur:wire "wire";
                C.close sp_root ~dur:latency;
                J.record (J.Rerouted { conn = conn.id; latency; retries = n })
              end;
              (conn.id, Rerouted { latency; retries = n })
          | None ->
              if Backoff.exhausted backoff ~attempt:n then begin
                Tm.Counter.incr c_lost;
                if !J.on then begin
                  backoff_phases n;
                  C.close sp_root ~dur:spent;
                  J.record (J.Connection_lost { conn = conn.id; latency = spent })
                end;
                (conn.id, Lost { latency = spent })
              end
              else attempt (n + 1)
        in
        attempt 0)
      victims
  in
  {
    edge;
    failed_edges = [ edge ];
    outcomes;
    backups_rerouted = 0;
    backups_unprotected = 0;
    unprotected_ids = [];
    retransmits = 0;
    messages_dropped = 0;
  }

(* ---- correlated (SRLG) failures ------------------------------------------ *)

(* [fail_edge_drtp] generalised to an arbitrary edge set failing as one
   event.  Kept as a separate function — not a wrapper the single-edge
   path routes through — so the single-edge code above stays bit-identical
   to its pre-SRLG behaviour (latencies, journal and all).  When [group] is
   given the set is an SRLG and the state is failed/journalled under that
   label; otherwise (regional bursts with no group identity) the edges are
   failed individually and journalled as group [-1]. *)
let fail_edges_drtp state ~scheme ?(timing = default_timing)
    ?(reconfigure = true) ?(backup_count = 1) ?faults
    ?(retrans = default_retrans) ?group ~edges () =
  let in_group = Hashtbl.create 8 in
  List.iter (fun e -> Hashtbl.replace in_group e ()) edges;
  let crosses_failed p =
    List.exists (fun e -> Hashtbl.mem in_group e) (edge_list_of_path p)
  in
  (match group with
  | Some group -> Net_state.fail_group state ~group
  | None -> List.iter (fun edge -> Net_state.fail_edge state ~edge) edges);
  Tm.Counter.incr c_group_failures;
  let victims = Net_state.primaries_crossing_edges state ~edges in
  let broken_backups = ref [] in
  Net_state.iter_conns state (fun c ->
      if
        (not (crosses_failed c.primary))
        && List.exists crosses_failed c.backups
      then broken_backups := c.id :: !broken_backups);
  if !J.on then
    J.record
      (J.Group_failed
         {
           group = (match group with Some g -> g | None -> -1);
           edges = List.length edges;
           victims = List.length victims;
         });
  let dropped = ref 0 and resent = ref 0 in
  let fallback_unprotected = ref [] in
  let switched = ref [] in
  let fallback (conn : Net_state.conn) ~sp_root ~base ~spent =
    Net_state.drop state ~id:conn.id;
    match Routing.find_primary state ~src:conn.src ~dst:conn.dst ~bw:conn.bw with
    | Some p ->
        let wire = timing.link_delay *. float_of_int (Path.hops p) in
        let latency = spent +. timing.route_computation +. wire in
        ignore (Net_state.admit state ~id:conn.id ~bw:conn.bw ~primary:p ~backups:[]);
        Tm.Counter.incr c_fallback_reroutes;
        fallback_unprotected := conn.id :: !fallback_unprotected;
        if !J.on then begin
          C.leaf ~parent:sp_root ~conn:conn.id ~t0:(base +. spent)
            ~dur:timing.route_computation "route-comp";
          C.leaf ~parent:sp_root ~conn:conn.id
            ~t0:(base +. spent +. timing.route_computation)
            ~dur:wire "wire";
          C.close sp_root ~dur:latency;
          J.record (J.Rerouted { conn = conn.id; latency; retries = 0 })
        end;
        `Fell_back latency
    | None ->
        if !J.on then begin
          C.close sp_root ~dur:spent;
          J.record (J.Connection_lost { conn = conn.id; latency = spent })
        end;
        `Lost spent
  in
  (* First usable chain member at or past [from]: survives *every* failed
     edge of the group and can get its bandwidth. *)
  let usable_member ~from (conn : Net_state.conn) =
    let rec scan i = function
      | [] -> None
      | b :: rest ->
          if
            i >= from
            && (not (crosses_failed b))
            && Net_state.activation_feasible state ~id:conn.id ~index:i ()
          then Some (i, b)
          else scan (i + 1) rest
    in
    scan 0 conn.backups
  in
  let tagged =
    List.map
      (fun (conn : Net_state.conn) ->
        (* Detection happens at the failed primary hop nearest the source:
           that endpoint's report arrives first. *)
        let hops = report_hops_any conn in_group in
        let detection = timing.detection_delay in
        let base = J.now () in
        let sp_root =
          if !J.on then C.root ~conn:conn.id "recovery" else C.null
        in
        if !J.on then
          C.leaf ~parent:sp_root ~conn:conn.id ~t0:base ~dur:detection
            "detect";
        let report = timing.link_delay *. float_of_int hops in
        let sp_report =
          if !J.on then
            C.child ~parent:sp_root ~conn:conn.id ~t0:(base +. detection)
              "report"
          else C.null
        in
        let rep_ok, rep_extra =
          transmit ~faults ~retrans ~cls:Faults.Report ~id:conn.id ~dropped
            ~resent ~span:sp_report
            ~at:(base +. detection +. report)
        in
        let report = report +. rep_extra in
        if !J.on then C.close sp_report ~dur:report;
        let notify = detection +. report in
        if !J.on then
          J.record (J.Report_hop { conn = conn.id; hops; detection; report });
        if not rep_ok then (conn.id, fallback conn ~sp_root ~base ~spent:notify)
        else
          (* Ordered failover down the chain: walk members in priority
             order; a lost activation signal burns its budget and falls
             through to the next member. *)
          let rec activate from wasted tries tried =
            match usable_member ~from conn with
            | Some (index, b) ->
                let act_ok, act_extra =
                  transmit ~faults ~retrans ~cls:Faults.Activation ~id:conn.id
                    ~dropped ~resent ~span:C.null ~at:0.0
                in
                if act_ok then begin
                  let wire = timing.link_delay *. float_of_int (Path.hops b) in
                  let activation = wasted +. act_extra +. wire in
                  let latency = notify +. activation in
                  Net_state.promote_backup state ~id:conn.id ~index ();
                  Tm.Counter.incr c_chain_failover;
                  if !J.on then begin
                    let sp_act =
                      C.child ~parent:sp_root ~conn:conn.id
                        ~t0:(base +. notify) "activate"
                    in
                    List.iter
                      (fun (t0, dur) ->
                        C.leaf ~parent:sp_act ~conn:conn.id ~t0 ~dur
                          "failover-wait")
                      (List.rev tries);
                    if act_extra > 0.0 then
                      C.leaf ~parent:sp_act ~conn:conn.id
                        ~t0:(base +. notify +. wasted) ~dur:act_extra
                        "retransmit-wait";
                    C.leaf ~parent:sp_act ~conn:conn.id
                      ~t0:(base +. notify +. wasted +. act_extra) ~dur:wire
                      "wire";
                    C.close sp_act ~dur:activation;
                    C.close sp_root ~dur:latency;
                    J.record
                      (J.Backup_activated
                         { conn = conn.id; index; detection; report; activation });
                    let remaining =
                      match Net_state.find state conn.id with
                      | Some c -> List.length c.backups
                      | None -> 0
                    in
                    J.record
                      (J.Chain_failover
                         { conn = conn.id; depth = index; remaining })
                  end;
                  switched := (conn.id, latency) :: !switched;
                  `Switched latency
                end
                else
                  activate (index + 1) (wasted +. act_extra)
                    (if !J.on then
                       (base +. notify +. wasted, act_extra) :: tries
                     else tries)
                    true
            | None ->
                Tm.Counter.incr c_chain_exhausted;
                if !J.on then J.record (J.Chain_exhausted { conn = conn.id });
                if tried then begin
                  if !J.on then
                    C.leaf ~parent:sp_root ~conn:conn.id ~t0:(base +. notify)
                      ~dur:wasted "failover-wasted";
                  fallback conn ~sp_root ~base ~spent:(notify +. wasted)
                end
                else begin
                  Net_state.drop state ~id:conn.id;
                  if !J.on then begin
                    C.close sp_root ~dur:notify;
                    J.record (J.Backup_contended { conn = conn.id });
                    J.record
                      (J.Connection_lost { conn = conn.id; latency = notify })
                  end;
                  `Lost notify
                end
          in
          (conn.id, activate 0 0.0 [] false))
      victims
  in
  (* Step 4, chain-aware: top exhausted chains back up with members that
     avoid the still-failed group's SRLGs. *)
  let reprotected = Hashtbl.create 8 in
  let rerouted = ref 0 and unprotected = ref 0 in
  let step4_unprotected = ref [] in
  if reconfigure then begin
    let top_up id =
      match Net_state.find state id with
      | None -> `Gone
      | Some conn ->
          let surviving = List.filter (fun b -> not (crosses_failed b)) conn.backups in
          let fresh =
            Routing.additional_chain_members scheme state ~primary:conn.primary
              ~bw:conn.bw ~existing:surviving
              ~count:(max 0 (backup_count - List.length surviving))
            |> List.map (fun m -> m.Routing.cm_path)
          in
          (* Drop variant: earlier victims of the same burst may have
             activated through a surviving member's links, converting the
             spare it needs into prime. *)
          let kept =
            Net_state.replace_backups_drop state ~id
              ~backups:(surviving @ fresh)
          in
          if kept = [] then `Unprotected
          else begin
            if !J.on then
              J.record (J.Reprotected { conn = id; fresh = List.length fresh });
            if fresh <> [] then `Rerouted else `Kept
          end
    in
    List.iter
      (fun (id, _) ->
        match top_up id with
        | `Gone -> ()
        | `Unprotected -> step4_unprotected := id :: !step4_unprotected
        | `Rerouted | `Kept -> Hashtbl.replace reprotected id ())
      !switched;
    List.iter
      (fun id ->
        match top_up id with
        | `Gone | `Kept -> ()
        | `Rerouted -> incr rerouted
        | `Unprotected ->
            incr unprotected;
            step4_unprotected := id :: !step4_unprotected)
      !broken_backups
  end;
  let outcomes =
    List.map
      (fun (id, tag) ->
        match tag with
        | `Lost latency ->
            Tm.Counter.incr c_lost;
            (id, Lost { latency })
        | `Fell_back latency ->
            Tm.Counter.incr c_rerouted;
            Tm.Timer.record t_reroute latency;
            (id, Rerouted { latency; retries = 0 })
        | `Switched latency ->
            Tm.Counter.incr c_switched;
            Tm.Timer.record t_activation latency;
            let reprotected = Hashtbl.mem reprotected id in
            if reprotected then Tm.Counter.incr c_reprotected;
            (id, Switched { latency; reprotected }))
      tagged
  in
  Tm.Counter.add c_backup_rerouted !rerouted;
  Tm.Counter.add c_backup_unprotected !unprotected;
  {
    edge = (match edges with e :: _ -> e | [] -> -1);
    failed_edges = edges;
    outcomes;
    backups_rerouted = !rerouted;
    backups_unprotected = !unprotected;
    unprotected_ids =
      List.rev !fallback_unprotected @ List.rev !step4_unprotected;
    retransmits = !resent;
    messages_dropped = !dropped;
  }

let fail_group_drtp state ~scheme ?(timing = default_timing)
    ?(reconfigure = true) ?(backup_count = 1) ?faults
    ?(retrans = default_retrans) ~group () =
  let srlg = Net_state.srlg state in
  let edges = Dr_resilience.Srlg.edges_of_group srlg group in
  fail_edges_drtp state ~scheme ~timing ~reconfigure ~backup_count ?faults
    ~retrans ~group ~edges ()

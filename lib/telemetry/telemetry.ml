module Summary = Dr_stats.Summary
module Histogram = Dr_stats.Histogram

let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* Domain-safety: worker domains (the dr_parallel pool) update metrics and
   emit spans concurrently with the coordinator.  A single lock serialises
   every mutation and sink write; it is only ever taken behind the [!on]
   check, so the disabled fast path stays a load and a branch.  The lock
   also keeps JSONL trace lines from interleaving mid-record. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let clock = ref Unix.gettimeofday
let set_clock f = clock := f

type attr = String of string | Int of int | Float of float | Bool of bool

(* ---- registry ----------------------------------------------------------- *)

type counter = { c_name : string; mutable c_value : int; mutable c_touched : bool }

type gauge = {
  g_name : string;
  mutable g_value : float;
  mutable g_max : float;
  mutable g_touched : bool;
}

type timer = {
  t_name : string;
  mutable t_summary : Summary.t;
  t_hist_spec : (float * float * int) option;
  mutable t_hist : Histogram.t option;
}

(* One global registry per metric kind.  Metrics are created at
   module-initialisation time in the instrumented libraries, so the tables
   stay small; lookups only happen at creation and per span. *)
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let timers : (string, timer) Hashtbl.t = Hashtbl.create 32

let fresh_hist = Option.map (fun (lo, hi, bins) -> Histogram.create ~lo ~hi ~bins)

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ c ->
      c.c_value <- 0;
      c.c_touched <- false)
    counters;
  Hashtbl.iter
    (fun _ g ->
      g.g_value <- 0.0;
      g.g_max <- neg_infinity;
      g.g_touched <- false)
    gauges;
  Hashtbl.iter
    (fun _ t ->
      t.t_summary <- Summary.create ();
      t.t_hist <- fresh_hist t.t_hist_spec)
    timers

module Counter = struct
  type t = counter

  let make name =
    locked @@ fun () ->
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_value = 0; c_touched = false } in
        Hashtbl.add counters name c;
        c

  let incr c =
    if !on then
      locked @@ fun () ->
      c.c_value <- c.c_value + 1;
      c.c_touched <- true

  let add c n =
    if !on then
      locked @@ fun () ->
      c.c_value <- c.c_value + n;
      c.c_touched <- true

  let value c = c.c_value
end

module Gauge = struct
  type t = gauge

  let make name =
    locked @@ fun () ->
    match Hashtbl.find_opt gauges name with
    | Some g -> g
    | None ->
        let g =
          { g_name = name; g_value = 0.0; g_max = neg_infinity; g_touched = false }
        in
        Hashtbl.add gauges name g;
        g

  let set g v =
    if !on then
      locked @@ fun () ->
      g.g_value <- v;
      if v > g.g_max then g.g_max <- v;
      g.g_touched <- true

  let value g = g.g_value
  let max_seen g = g.g_max
end

module Timer = struct
  type t = timer

  let make ?hist name =
    locked @@ fun () ->
    match Hashtbl.find_opt timers name with
    | Some t -> t
    | None ->
        let t =
          {
            t_name = name;
            t_summary = Summary.create ();
            t_hist_spec = hist;
            t_hist = fresh_hist hist;
          }
        in
        Hashtbl.add timers name t;
        t

  (* Caller holds [mu] (or is single-domain by construction). *)
  let record_unlocked t dur =
    Summary.add t.t_summary dur;
    match t.t_hist with None -> () | Some h -> Histogram.add h dur

  let record t dur = if !on then locked @@ fun () -> record_unlocked t dur

  let time t f =
    if not !on then f ()
    else begin
      let t0 = !clock () in
      match f () with
      | v ->
          record t (!clock () -. t0);
          v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          record t (!clock () -. t0);
          Printexc.raise_with_backtrace e bt
    end

  let count t = Summary.count t.t_summary
  let total_s t = Summary.mean t.t_summary *. float_of_int (Summary.count t.t_summary)
  let summary t = t.t_summary
end

(* ---- sinks -------------------------------------------------------------- *)

type record =
  | Span_record of {
      name : string;
      ts : float;
      dur : float;
      attrs : (string * attr) list;
    }
  | Event_record of { name : string; ts : float; attrs : (string * attr) list }

let json_escape buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  json_escape buf s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* JSON has no NaN/Infinity literals; clamp them to null. *)
let json_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

let json_attr = function
  | String s -> json_string s
  | Int n -> string_of_int n
  | Float v -> json_float v
  | Bool b -> string_of_bool b

let json_attrs attrs =
  String.concat ","
    (List.map (fun (k, v) -> json_string k ^ ":" ^ json_attr v) attrs)

let sorted_bindings tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let touched_counters () =
  List.filter (fun c -> c.c_touched) (sorted_bindings counters)
  |> List.sort (fun a b -> compare a.c_name b.c_name)

let touched_gauges () =
  List.filter (fun g -> g.g_touched) (sorted_bindings gauges)
  |> List.sort (fun a b -> compare a.g_name b.g_name)

let touched_timers () =
  List.filter (fun t -> Summary.count t.t_summary > 0) (sorted_bindings timers)
  |> List.sort (fun a b -> compare a.t_name b.t_name)

let dump_metrics_jsonl oc =
  List.iter
    (fun c ->
      Printf.fprintf oc "{\"type\":\"counter\",\"name\":%s,\"value\":%d}\n"
        (json_string c.c_name) c.c_value)
    (touched_counters ());
  List.iter
    (fun g ->
      Printf.fprintf oc "{\"type\":\"gauge\",\"name\":%s,\"value\":%s,\"max\":%s}\n"
        (json_string g.g_name) (json_float g.g_value) (json_float g.g_max))
    (touched_gauges ());
  List.iter
    (fun t ->
      let s = t.t_summary in
      Printf.fprintf oc
        "{\"type\":\"timer\",\"name\":%s,\"count\":%d,\"total_s\":%s,\"mean_s\":%s,\"min_s\":%s,\"max_s\":%s}\n"
        (json_string t.t_name) (Summary.count s)
        (json_float (Summary.mean s *. float_of_int (Summary.count s)))
        (json_float (Summary.mean s))
        (json_float (Summary.min_value s))
        (json_float (Summary.max_value s)))
    (touched_timers ())

module Sink = struct
  type t = { emit : record -> unit; close_fn : unit -> unit }

  let noop = { emit = (fun _ -> ()); close_fn = (fun () -> ()) }

  let jsonl oc =
    let emit = function
      | Span_record { name; ts; dur; attrs } ->
          Printf.fprintf oc
            "{\"type\":\"span\",\"name\":%s,\"ts\":%s,\"dur_s\":%s,\"attrs\":{%s}}\n"
            (json_string name) (json_float ts) (json_float dur) (json_attrs attrs)
      | Event_record { name; ts; attrs } ->
          Printf.fprintf oc "{\"type\":\"event\",\"name\":%s,\"ts\":%s,\"attrs\":{%s}}\n"
            (json_string name) (json_float ts) (json_attrs attrs)
    in
    let close_fn () =
      dump_metrics_jsonl oc;
      close_out oc
    in
    { emit; close_fn }

  let current = ref noop
  let set s = current := s

  let close () =
    let s = !current in
    current := noop;
    s.close_fn ()
end

module Span = struct
  let with_ ?(attrs = []) ~name f =
    if not !on then f ()
    else begin
      let timer = Timer.make name in
      let t0 = !clock () in
      let finish () =
        let dur = !clock () -. t0 in
        locked @@ fun () ->
        Timer.record_unlocked timer dur;
        (!Sink.current).Sink.emit (Span_record { name; ts = t0; dur; attrs })
      in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          finish ();
          Printexc.raise_with_backtrace e bt
    end

  let event ?(attrs = []) name =
    if !on then begin
      let ts = !clock () in
      locked @@ fun () ->
      (!Sink.current).Sink.emit (Event_record { name; ts; attrs })
    end
end

(* ---- GC / memory high-water --------------------------------------------- *)

(* Registered eagerly (registration is cheap and the table omits untouched
   metrics); sampled only on demand — [Gc.quick_stat] reads no heap census
   so a per-run sample costs nothing measurable. *)
let g_gc_minor_words = Gauge.make "gc.minor_words"
let g_gc_major_words = Gauge.make "gc.major_words"
let g_gc_promoted_words = Gauge.make "gc.promoted_words"
let g_gc_heap_words = Gauge.make "gc.heap_words"
let g_gc_top_heap_words = Gauge.make "gc.top_heap_words"
let g_gc_major_collections = Gauge.make "gc.major_collections"

let observe_gc () =
  if !on then begin
    let s = Gc.quick_stat () in
    Gauge.set g_gc_minor_words s.Gc.minor_words;
    Gauge.set g_gc_major_words s.Gc.major_words;
    Gauge.set g_gc_promoted_words s.Gc.promoted_words;
    Gauge.set g_gc_heap_words (float_of_int s.Gc.heap_words);
    Gauge.set g_gc_top_heap_words (float_of_int s.Gc.top_heap_words);
    Gauge.set g_gc_major_collections (float_of_int s.Gc.major_collections)
  end

(* ---- end-of-run summary ------------------------------------------------- *)

let pp_time ppf seconds =
  if Float.is_nan seconds then Format.fprintf ppf "-"
  else if seconds < 1e-6 then Format.fprintf ppf "%.0fns" (seconds *. 1e9)
  else if seconds < 1e-3 then Format.fprintf ppf "%.2fus" (seconds *. 1e6)
  else if seconds < 1.0 then Format.fprintf ppf "%.2fms" (seconds *. 1e3)
  else Format.fprintf ppf "%.3fs" seconds

let pp_summary ppf () =
  let cs = touched_counters () and gs = touched_gauges () and ts = touched_timers () in
  Format.fprintf ppf "@[<v># Telemetry summary@,";
  if cs = [] && gs = [] && ts = [] then
    Format.fprintf ppf "(no metrics recorded)@,"
  else begin
    if cs <> [] then begin
      Format.fprintf ppf "@,%-44s %12s@," "counter" "value";
      List.iter
        (fun c -> Format.fprintf ppf "%-44s %12d@," c.c_name c.c_value)
        cs
    end;
    if gs <> [] then begin
      Format.fprintf ppf "@,%-44s %12s %12s@," "gauge" "last" "max";
      List.iter
        (fun g -> Format.fprintf ppf "%-44s %12.1f %12.1f@," g.g_name g.g_value g.g_max)
        gs
    end;
    if ts <> [] then begin
      Format.fprintf ppf "@,%-36s %9s %9s %9s %9s %9s@," "timer" "count" "total"
        "mean" "min" "max";
      List.iter
        (fun t ->
          let s = t.t_summary in
          let count = Summary.count s in
          let tm v = Format.asprintf "%a" pp_time v in
          Format.fprintf ppf "%-36s %9d %9s %9s %9s %9s@," t.t_name count
            (tm (Summary.mean s *. float_of_int count))
            (tm (Summary.mean s))
            (tm (Summary.min_value s))
            (tm (Summary.max_value s)))
        ts;
      List.iter
        (fun t ->
          match t.t_hist with
          | Some h when Histogram.count h > 0 ->
              Format.fprintf ppf "@,%s (seconds):@,%a@," t.t_name Histogram.pp h
          | Some _ | None -> ())
        ts
    end
  end;
  Format.fprintf ppf "@]"

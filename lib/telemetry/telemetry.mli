(** Telemetry: named metrics, tracing spans and pluggable sinks.

    The simulator's observability layer.  Instrumented modules create
    metrics once at module-initialisation time and update them from their
    hot paths; all updates are guarded by a single global switch so that a
    disabled metric costs one load and one conditional branch — cheap
    enough to leave the instrumentation in the hot loops permanently (the
    bench harness enforces a <= 2% overhead budget for the disabled case).

    Three metric kinds:
    - {b counters} — monotone event counts (CDPs sent, routes rejected);
    - {b gauges} — last-written level plus the high-water mark (event-queue
      depth);
    - {b timers} — duration accumulators backed by {!Dr_stats.Summary}
      (and optionally a {!Dr_stats.Histogram}).

    Spans ({!Span.with_}) time a scope, feed the timer of the same name
    and emit one record to the current {!Sink}.  Timestamps come from the
    installed clock ({!set_clock}): [Unix.gettimeofday] by default, or the
    simulation clock when a driver installs it.

    {b Domain-safety.}  Metric updates, metric registration and sink
    emission are serialised by an internal lock, so instrumented code may
    run in {!Dr_parallel} worker domains: counts are exact and JSONL
    trace lines never interleave.  The lock is only taken behind the
    enabled check — the disabled fast path is still a single load and
    branch.  {!set_enabled}, {!set_clock}, {!Sink.set} and {!Sink.close}
    remain coordinator-only operations: call them from the main domain
    while no worker is running. *)

val on : bool ref
(** The master switch, exposed as a ref so call sites can guard compound
    instrumentation with a single [if !Telemetry.on then ...].  Treat as
    read-only; flip it with {!set_enabled}. *)

val enabled : unit -> bool

val set_enabled : bool -> unit

val set_clock : (unit -> float) -> unit
(** Install the timestamp source used by spans and {!Timer.time}.  The
    default is [Unix.gettimeofday]; a discrete-event driver may install
    its simulated clock instead. *)

val reset : unit -> unit
(** Zero every registered metric (registrations survive; the sink and the
    enabled flag are untouched).  Meant for tests and multi-run drivers. *)

(** Attribute values attached to spans and events. *)
type attr = String of string | Int of int | Float of float | Bool of bool

module Counter : sig
  type t

  val make : string -> t
  (** Create (or look up — names are unique) the counter called [name]. *)

  val incr : t -> unit
  (** No-op while telemetry is disabled. *)

  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val make : string -> t
  val set : t -> float -> unit
  val value : t -> float

  val max_seen : t -> float
  (** High-water mark over all [set] calls since the last {!reset};
      [neg_infinity] when never set. *)
end

module Timer : sig
  type t

  val make : ?hist:float * float * int -> string -> t
  (** [make ?hist name] creates the timer called [name].  With
      [~hist:(lo, hi, bins)] every recorded duration also feeds a
      {!Dr_stats.Histogram} over [lo, hi) seconds, rendered by
      {!pp_summary}. *)

  val record : t -> float -> unit
  (** Record one duration, in seconds.  No-op while disabled. *)

  val time : t -> (unit -> 'a) -> 'a
  (** Run the thunk and record its wall-clock duration (also on
      exception).  While disabled this is a tail call to the thunk. *)

  val count : t -> int
  val total_s : t -> float
  val summary : t -> Dr_stats.Summary.t
end

module Span : sig
  val with_ : ?attrs:(string * attr) list -> name:string -> (unit -> 'a) -> 'a
  (** Time the scope: feeds the {!Timer} registered under [name] and emits
      one span record (name, start timestamp, duration, attributes) to the
      current sink.  Exceptions propagate after the span is recorded.
      While disabled this is a tail call to the thunk. *)

  val event : ?attrs:(string * attr) list -> string -> unit
  (** Emit an instantaneous event record to the sink (no timer). *)
end

module Sink : sig
  type t
  (** Where span/event records go.  Exactly one sink is current at a time;
      the default {!noop} drops everything. *)

  val noop : t

  val jsonl : out_channel -> t
  (** One JSON object per line.  Spans:
      [{"type":"span","name":...,"ts":...,"dur_s":...,"attrs":{...}}];
      events are the same without ["dur_s"].  {!close} appends a snapshot
      of every registered metric
      ([{"type":"counter"|"gauge"|"timer",...}]) and closes the channel. *)

  val set : t -> unit
  val close : unit -> unit
  (** Flush the current sink (for {!jsonl}: dump the metric snapshot and
      close the channel) and restore {!noop}. *)
end

val observe_gc : unit -> unit
(** Sample [Gc.quick_stat] into the [gc.*] gauges: allocation odometers
    ([gc.minor_words], [gc.major_words], [gc.promoted_words]) and the
    memory high-water mark ([gc.top_heap_words], with [gc.heap_words] and
    [gc.major_collections] alongside).  The gauges' high-water tracking
    makes repeated samples cumulative-max.  No-op while disabled; cheap
    enough to call once per run or sample point. *)

val pp_summary : Format.formatter -> unit -> unit
(** The end-of-run summary: one table per metric kind, sorted by name,
    plus the histograms of timers that carry one.  Metrics that were never
    touched are omitted. *)

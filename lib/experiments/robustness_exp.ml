module Graph = Dr_topo.Graph
module Scenario = Dr_sim.Scenario
module Engine = Dr_sim.Engine
module Manager = Drtp.Manager
module Net_state = Drtp.Net_state
module Recovery = Drtp.Recovery
module Routing = Drtp.Routing
module Faults = Dr_faults.Faults
module Pool = Dr_parallel.Pool
module J = Dr_obs.Journal
module Summary = Dr_stats.Summary

type row = {
  loss : float;
  mtbf : float;
  mttr : float;
  failures : int;
  affected : int;
  recovered : int;
  success_ratio : float;
  latency_mean_ms : float;
  retransmits : int;
  messages_dropped : int;
  reprotect_queued : int;
  reprotect_drained : int;
  unprotected_time_s : float;
}

type event = Workload of Scenario.item | Fail of int | Repair of int

(* One chaos cell: a full workload replay with a seeded flap timeline and a
   seeded loss plan, both derived from the cell's own [seed] — never shared
   across cells, which is what keeps the sweep [--jobs]-independent. *)
let run_cell (cfg : Config.t) ~avg_degree ~traffic ~lambda ~scheme ~loss ~mtbf
    ~mttr ~seed ?(queue = true) ?(fault_layer = true) () =
  let graph = Config.make_graph cfg ~avg_degree in
  let scenario = Config.make_scenario cfg traffic ~lambda in
  let faults =
    if fault_layer then Some (Faults.create ~seed (Faults.uniform_spec loss))
    else None
  in
  let timeline =
    Faults.flap_schedule ~seed:(seed + 1) ~edge_count:(Graph.edge_count graph)
      ~mtbf ~mttr ~horizon:cfg.Config.horizon ()
  in
  let route = Routing.link_state_route_fn scheme ~with_backup:true in
  let manager =
    Manager.create ~graph ~capacity:cfg.Config.capacity
      ~spare_policy:Net_state.Multiplexed ~route
  in
  let state = Manager.state manager in
  let engine : event Engine.t = Engine.create () in
  let failures = ref 0 in
  let affected = ref 0 and recovered = ref 0 in
  let retransmits = ref 0 and dropped = ref 0 in
  let latency = Summary.create () in
  let end_now = ref 0.0 in
  let handler engine event =
    let now = Engine.now engine in
    end_now := max !end_now now;
    match event with
    | Workload item -> Manager.apply manager item
    | Repair e ->
        Net_state.restore_edge state ~edge:e;
        (* A repair frees resources: retry the waiting unprotected
           connections. *)
        if queue then ignore (Manager.drain_reprotect manager ~now)
    | Fail e ->
        incr failures;
        let report =
          Recovery.fail_edge_drtp state ~scheme ?faults ~edge:e ()
        in
        affected := !affected + List.length report.Recovery.outcomes;
        List.iter
          (fun (_, outcome) ->
            match outcome with
            | Recovery.Switched { latency = l; _ }
            | Recovery.Rerouted { latency = l; _ } ->
                incr recovered;
                Summary.add latency l
            | Recovery.Lost _ -> ())
          report.Recovery.outcomes;
        retransmits := !retransmits + report.Recovery.retransmits;
        dropped := !dropped + report.Recovery.messages_dropped;
        if queue then
          List.iter
            (fun id -> Manager.queue_reprotect manager ~id ~scheme ~now ())
            report.Recovery.unprotected_ids
  in
  Scenario.iter scenario (fun item ->
      if item.Scenario.time <= cfg.Config.horizon then
        Engine.schedule engine ~at:item.Scenario.time (Workload item));
  List.iter
    (fun (f : Faults.flap) ->
      Engine.schedule engine ~at:f.fail_at (Fail f.edge);
      Engine.schedule engine ~at:f.repair_at (Repair f.edge))
    timeline;
  Engine.run engine ~handler;
  (match Net_state.check_invariants state with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Robustness_exp: invariant violated: " ^ msg));
  Manager.flush_reprotect manager ~now:(max !end_now cfg.Config.horizon);
  let rs = Manager.reprotect_stats manager in
  {
    loss;
    mtbf;
    mttr;
    failures = !failures;
    affected = !affected;
    recovered = !recovered;
    success_ratio =
      (if !affected = 0 then 1.0
       else float_of_int !recovered /. float_of_int !affected);
    latency_mean_ms =
      (if Summary.count latency = 0 then 0.0
       else 1000.0 *. Summary.mean latency);
    retransmits = !retransmits;
    messages_dropped = !dropped;
    reprotect_queued = rs.Manager.queued;
    reprotect_drained = rs.Manager.drained;
    unprotected_time_s = rs.Manager.unprotected_time;
  }

(* ---- the sweep ---------------------------------------------------------- *)

let default_losses = [ 0.0; 0.05; 0.2 ]
let default_mtbfs = [ 600.0; 120.0 ]

let cell_seed ~seed i = seed + (1000 * i)

let run ?pool (cfg : Config.t) ~avg_degree ~traffic ~lambda ~scheme
    ?(losses = default_losses) ?(mtbfs = default_mtbfs) ?(mttr = 60.0)
    ?(queue = true) ?(fault_layer = true) ?(seed = 1913) () =
  let cells =
    List.concat_map (fun loss -> List.map (fun mtbf -> (loss, mtbf)) mtbfs) losses
  in
  let tasks = Array.of_list (List.mapi (fun i c -> (i, c)) cells) in
  let f (i, (loss, mtbf)) =
    run_cell cfg ~avg_degree ~traffic ~lambda ~scheme ~loss ~mtbf ~mttr
      ~seed:(cell_seed ~seed i) ~queue ~fault_layer ()
  in
  (* Same deterministic journal merge as {!Runner.run_many}: each cell
     records into a private buffer, re-appended in task-index order, so the
     merged journal is byte-identical for any [--jobs] count. *)
  let results =
    if not !J.on then
      match pool with
      | Some pool -> Pool.map pool f tasks
      | None -> Pool.with_pool ~jobs:1 (fun pool -> Pool.map pool f tasks)
    else begin
      let coordinator = J.current () in
      let g ((i, _) as task) =
        J.capture ~trace_seed:(cell_seed ~seed i) (fun () -> f task)
      in
      let merge _i = function
        | Ok (_, journal_entries) -> J.append_entries coordinator journal_entries
        | Error _ -> ()
      in
      let res =
        match pool with
        | Some pool -> Pool.map ~on_result:merge pool g tasks
        | None ->
            Pool.with_pool ~jobs:1 (fun pool ->
                Pool.map ~on_result:merge pool g tasks)
      in
      Array.map (function Ok (m, _) -> Ok m | Error e -> Error e) res
    end
  in
  Array.to_list
    (Array.map
       (function
         | Ok r -> r
         | Error (e : Pool.error) ->
             invalid_arg ("Robustness_exp: cell failed: " ^ e.Pool.message))
       results)

let pp ppf rows =
  Format.fprintf ppf
    "@[<v># Robustness: recovery under control-plane loss and repair churn@,\
     loss   mtbf(s) mttr(s) failures affected recovered success  latency(ms) \
     retrans dropped rq-queued rq-drained unprotected(s)@,";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%5.2f  %7.0f %7.0f %8d %8d %9d %7.4f  %11.3f %7d %7d %9d %10d %14.3f@,"
        r.loss r.mtbf r.mttr r.failures r.affected r.recovered r.success_ratio
        r.latency_mean_ms r.retransmits r.messages_dropped r.reprotect_queued
        r.reprotect_drained r.unprotected_time_s)
    rows;
  Format.fprintf ppf "@]"

module Rng = Dr_rng.Splitmix64

type traffic = UT | NT

let traffic_name = function UT -> "UT" | NT -> "NT"

let traffic_of_string s =
  match String.uppercase_ascii s with
  | "UT" -> Ok UT
  | "NT" -> Ok NT
  | other -> Error (Printf.sprintf "unknown traffic pattern %S (want UT or NT)" other)

type t = {
  nodes : int;
  capacity : int;
  bw_req : int;
  lifetime_lo : float;
  lifetime_hi : float;
  warmup : float;
  horizon : float;
  sample_every : float;
  hotspot_count : int;
  hotspot_fraction : float;
  topology_seed : int;
  workload_seed : int;
}

let default =
  {
    nodes = 60;
    capacity = 30;
    bw_req = 1;
    lifetime_lo = 20.0 *. 60.0;
    lifetime_hi = 60.0 *. 60.0;
    warmup = 4800.0;
    horizon = 10800.0;
    sample_every = 300.0;
    hotspot_count = 10;
    hotspot_fraction = 0.5;
    topology_seed = 42;
    workload_seed = 4242;
  }

let lambdas_for_degree degree =
  if degree < 3.5 then [ 0.2; 0.3; 0.4; 0.5; 0.6; 0.7 ]
  else [ 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

let make_graph cfg ~avg_degree =
  (* Mix the degree into the seed so E=3 and E=4 differ but each is
     reproducible. *)
  let seed = cfg.topology_seed + int_of_float (avg_degree *. 1000.0) in
  let rng = Rng.create seed in
  Dr_topo.Gen.waxman ~rng ~n:cfg.nodes ~avg_degree ()

let make_scenario cfg traffic ~lambda =
  let seed =
    cfg.workload_seed
    + int_of_float (lambda *. 1000.0)
    + match traffic with UT -> 0 | NT -> 500_000
  in
  let rng = Rng.create seed in
  let pattern =
    match traffic with
    | UT -> Dr_sim.Workload.Uniform
    | NT ->
        Dr_sim.Workload.hotspot_pattern rng ~node_count:cfg.nodes
          ~hotspots:cfg.hotspot_count ~fraction:cfg.hotspot_fraction
  in
  let spec =
    {
      Dr_sim.Workload.arrival_rate = lambda;
      horizon = cfg.horizon;
      lifetime_lo = cfg.lifetime_lo;
      lifetime_hi = cfg.lifetime_hi;
      bw = Dr_sim.Workload.constant_bw cfg.bw_req;
      pattern;
    }
  in
  Dr_sim.Workload.generate rng ~node_count:cfg.nodes spec

let pp_table1 ppf cfg =
  let row ppf (k, v) = Format.fprintf ppf "| %-34s | %-22s |" k v in
  let rows =
    [
      ("number of nodes", string_of_int cfg.nodes);
      ("average node degree (E)", "3 and 4");
      ("link capacity C (units/direction)", string_of_int cfg.capacity);
      ("bw_req (units per DR-connection)", string_of_int cfg.bw_req);
      ( "connection lifetime t_req",
        Printf.sprintf "uniform [%.0f, %.0f] min" (cfg.lifetime_lo /. 60.0)
          (cfg.lifetime_hi /. 60.0) );
      ("arrival process", "Poisson, rate lambda");
      ("lambda sweep (E=3)", "0.2 .. 0.7 /s");
      ("lambda sweep (E=4)", "0.4 .. 1.0 /s");
      ("traffic patterns", "UT, NT (10 hotspots, 50%)");
      ("topology generator", "Waxman");
      ("warmup before measuring", Printf.sprintf "%.0f s" cfg.warmup);
      ("arrival horizon", Printf.sprintf "%.0f s" cfg.horizon);
      ("fault-tolerance sampling period", Printf.sprintf "%.0f s" cfg.sample_every);
    ]
  in
  Format.fprintf ppf "@[<v>Table 1: simulation parameters@,";
  List.iter (fun r -> Format.fprintf ppf "%a@," row r) rows;
  Format.fprintf ppf "@]"

module Bounded_flood = Dr_flood.Bounded_flood
module Routing = Drtp.Routing
module Pool = Dr_parallel.Pool

(* Ablation tables are small fixed grids with no partial-result story:
   a run that keeps raising after the pool's retry aborts the table. *)
let ok_or_fail = function
  | Ok m -> m
  | Error (e : Pool.error) ->
      failwith
        (Printf.sprintf "Ablation: task %d failed after %d attempt(s): %s"
           e.Pool.index e.Pool.attempts e.Pool.message)

let run_all ?pool cfg tasks =
  Array.map ok_or_fail (Runner.run_many ?pool cfg tasks)

type mux_row = {
  label : string;
  ft : float;
  avg_active : float;
  overhead_pct : float;
  spare_fraction : float;
}

let no_multiplexing ?pool (cfg : Config.t) ~avg_degree ~traffic ~lambda =
  let graph = Config.make_graph cfg ~avg_degree in
  let scenario = Config.make_scenario cfg traffic ~lambda in
  let ms =
    run_all ?pool cfg
      (Array.map
         (fun s -> (graph, scenario, s))
         [|
           Runner.No_backup;
           Runner.Lsr Routing.Dlsr;
           Runner.Lsr_dedicated Routing.Dlsr;
         |])
  in
  let base_active = ms.(0).Runner.avg_active in
  let overhead m =
    if base_active <= 0.0 then 0.0
    else 100.0 *. (base_active -. m.Runner.avg_active) /. base_active
  in
  let row m =
    {
      label = m.Runner.label;
      ft = m.Runner.ft_overall;
      avg_active = m.Runner.avg_active;
      overhead_pct = overhead m;
      spare_fraction = m.Runner.avg_spare_fraction;
    }
  in
  [
    {
      label = "no-backup";
      ft = 0.0;
      avg_active = base_active;
      overhead_pct = 0.0;
      spare_fraction = 0.0;
    };
    row ms.(1);
    row ms.(2);
  ]

type flood_row = {
  rho : float;
  beta0 : int;
  beta1 : int;
  ft : float;
  acceptance : float;
  messages_per_request : float;
}

let default_flood_points =
  [
    (1.0, 0, 0);
    (1.0, 2, 0);
    (1.0, 2, 1);
    (1.0, 2, 2);
    (1.0, 3, 1);
    (1.5, 2, 1);
    (1.5, 3, 2);
  ]

let flood_scope ?pool (cfg : Config.t) ~avg_degree ~traffic ~lambda
    ?(points = default_flood_points) () =
  let graph = Config.make_graph cfg ~avg_degree in
  let scenario = Config.make_scenario cfg traffic ~lambda in
  let points = Array.of_list points in
  let ms =
    run_all ?pool cfg
      (Array.map
         (fun (rho, beta0, beta1) ->
           let flood_cfg =
             { Bounded_flood.default_config with rho; beta0; beta1 }
           in
           (graph, scenario, Runner.Bf flood_cfg))
         points)
  in
  Array.to_list
    (Array.mapi
       (fun i (rho, beta0, beta1) ->
         let m = ms.(i) in
         {
           rho;
           beta0;
           beta1;
           ft = m.Runner.ft_overall;
           acceptance = m.Runner.acceptance;
           messages_per_request =
             Option.value ~default:0.0 m.Runner.flood_messages_per_request;
         })
       points)

type blind_row = {
  avg_degree : float;
  scheme : string;
  ft : float;
  spare_fraction : float;
  avg_active : float;
  degraded : int;
}

let conflict_blind ?pool (cfg : Config.t) ~traffic ~lambda =
  (* Tasks carry their own graph: the two degrees use different
     topologies, and run_many is agnostic to that. *)
  let plan =
    List.concat_map
      (fun avg_degree ->
        let graph = Config.make_graph cfg ~avg_degree in
        let scenario = Config.make_scenario cfg traffic ~lambda in
        List.map
          (fun scheme -> (avg_degree, graph, scenario, scheme))
          [
            Runner.Lsr Routing.Dlsr;
            Runner.Lsr Routing.Plsr;
            Runner.Lsr Routing.Spf;
          ])
      [ 3.0; 4.0 ]
    |> Array.of_list
  in
  let ms =
    run_all ?pool cfg
      (Array.map (fun (_, graph, scenario, scheme) -> (graph, scenario, scheme)) plan)
  in
  Array.to_list
    (Array.mapi
       (fun i (avg_degree, _, _, _) ->
         let m = ms.(i) in
         {
           avg_degree;
           scheme = m.Runner.label;
           ft = m.Runner.ft_overall;
           spare_fraction = m.Runner.avg_spare_fraction;
           avg_active = m.Runner.avg_active;
           degraded = m.Runner.degraded;
         })
       plan)

type backup_count_row = {
  backups : int;
  ft : float;
  overhead_pct : float;
  acceptance : float;
  node_ft : float;
  double_ft : float;
}

(* The double-failure Monte-Carlo is split into a fixed number of sample
   chunks with per-chunk seeds, merged back in chunk order with
   {!Drtp.Failure_eval.merge_results}.  The chunking is independent of
   the pool's job count, so the estimate is the same for any [~jobs]. *)
let double_chunks = 8

let double_ft_of ?pool state ~samples =
  let base = samples / double_chunks and rem = samples mod double_chunks in
  let chunks =
    Array.init double_chunks (fun c ->
        (c, base + if c < rem then 1 else 0))
  in
  let eval (c, n) =
    if n = 0 then Drtp.Failure_eval.empty_result
    else Drtp.Failure_eval.evaluate_double ~samples:n ~seed:(1 + c) state
  in
  let results =
    match pool with
    | Some pool -> Pool.map pool eval chunks
    | None -> Array.map (fun chunk -> Ok (eval chunk)) chunks
  in
  let merged =
    Array.fold_left
      (fun acc r ->
        match r with
        | Ok r -> Drtp.Failure_eval.merge_results acc r
        | Error (e : Pool.error) ->
            failwith
              (Printf.sprintf
                 "Ablation: Monte-Carlo chunk %d failed after %d attempt(s): %s"
                 e.Pool.index e.Pool.attempts e.Pool.message))
      Drtp.Failure_eval.empty_result results
  in
  Drtp.Failure_eval.fault_tolerance merged

let backup_count ?pool (cfg : Config.t) ~avg_degree ~traffic ~lambda
    ?(counts = [ 0; 1; 2 ]) () =
  let graph = Config.make_graph cfg ~avg_degree in
  let scenario = Config.make_scenario cfg traffic ~lambda in
  let counts = Array.of_list counts in
  let scheme_of k =
    if k = 0 then Runner.No_backup else Runner.Lsr_k (Routing.Dlsr, k)
  in
  (* Measured replays (baseline first, then one per k) go through the
     pool together; the per-k end states for the Monte-Carlo are loaded
     afterwards on the calling domain and their sample chunks pooled. *)
  let ms =
    run_all ?pool cfg
      (Array.append
         [| (graph, scenario, Runner.No_backup) |]
         (Array.map (fun k -> (graph, scenario, scheme_of k)) counts))
  in
  let base_active = ms.(0).Runner.avg_active in
  Array.to_list
    (Array.mapi
       (fun i k ->
         let m = ms.(i + 1) in
         let double_ft =
           if k = 0 then 0.0
           else
             let state =
               Runner.load_state cfg ~graph ~scenario ~scheme:(scheme_of k)
                 ~until:cfg.Config.horizon
             in
             double_ft_of ?pool state ~samples:400
         in
         {
           backups = k;
           ft = (if k = 0 then 0.0 else m.Runner.ft_overall);
           overhead_pct =
             (if base_active <= 0.0 then 0.0
              else 100.0 *. (base_active -. m.Runner.avg_active) /. base_active);
           acceptance = m.Runner.acceptance;
           node_ft = (if k = 0 then 0.0 else m.Runner.node_ft_overall);
           double_ft;
         })
       counts)

type qos_row = {
  slack : int option;
  ft : float;
  acceptance : float;
  rejected_no_backup : int;
  avg_backup_hops : float;
}

let qos_bound ?pool (cfg : Config.t) ~avg_degree ~traffic ~lambda
    ?(slacks = [ Some 0; Some 1; Some 2; Some 4; None ]) () =
  let graph = Config.make_graph cfg ~avg_degree in
  let scenario = Config.make_scenario cfg traffic ~lambda in
  let slacks = Array.of_list slacks in
  let ms =
    run_all ?pool cfg
      (Array.map
         (fun slack ->
           let scheme =
             match slack with
             | Some s -> Runner.Lsr_bounded (Routing.Dlsr, s)
             | None -> Runner.Lsr Routing.Dlsr
           in
           (graph, scenario, scheme))
         slacks)
  in
  Array.to_list
    (Array.mapi
       (fun i slack ->
         let m = ms.(i) in
         {
           slack;
           ft = m.Runner.ft_overall;
           acceptance = m.Runner.acceptance;
           rejected_no_backup = m.Runner.rejected_no_backup;
           avg_backup_hops = m.Runner.avg_backup_hops;
         })
       slacks)

type class_row = {
  mix : string;
  ft : float;
  acceptance : float;
  avg_active : float;
  spare_fraction : float;
  degraded : int;
}

let traffic_classes ?pool (cfg : Config.t) ~avg_degree ~traffic ~lambda () =
  let graph = Config.make_graph cfg ~avg_degree in
  let mixes =
    [|
      ("audio (1u)", Dr_sim.Workload.constant_bw 1);
      ("mixed 70/30", Dr_sim.Workload.Classes [ (1, 0.7); (4, 0.3) ]);
      ("video (4u)", Dr_sim.Workload.constant_bw 4);
    |]
  in
  (* Regenerate each scenario with the same seeds but the mix's bandwidth
     distribution; generation stays on the calling domain so the RNG
     streams are untouched by scheduling. *)
  let scenario_of bw =
    let seed =
      cfg.Config.workload_seed
      + int_of_float (lambda *. 1000.0)
      + match traffic with Config.UT -> 0 | Config.NT -> 500_000
    in
    let rng = Dr_rng.Splitmix64.create seed in
    let pattern =
      match traffic with
      | Config.UT -> Dr_sim.Workload.Uniform
      | Config.NT ->
          Dr_sim.Workload.hotspot_pattern rng ~node_count:cfg.Config.nodes
            ~hotspots:cfg.Config.hotspot_count
            ~fraction:cfg.Config.hotspot_fraction
    in
    let spec =
      {
        Dr_sim.Workload.arrival_rate = lambda;
        horizon = cfg.Config.horizon;
        lifetime_lo = cfg.Config.lifetime_lo;
        lifetime_hi = cfg.Config.lifetime_hi;
        bw;
        pattern;
      }
    in
    Dr_sim.Workload.generate rng ~node_count:cfg.Config.nodes spec
  in
  let ms =
    run_all ?pool cfg
      (Array.map
         (fun (_, bw) -> (graph, scenario_of bw, Runner.Lsr Routing.Dlsr))
         mixes)
  in
  Array.to_list
    (Array.mapi
       (fun i (mix, _) ->
         let m = ms.(i) in
         {
           mix;
           ft = m.Runner.ft_overall;
           acceptance = m.Runner.acceptance;
           avg_active = m.Runner.avg_active;
           spare_fraction = m.Runner.avg_spare_fraction;
           degraded = m.Runner.degraded;
         })
       mixes)

let pp_mux ppf rows =
  Format.fprintf ppf
    "@[<v># Ablation A1: backup multiplexing vs dedicated spare@,\
     scheme            ft      active   overhead%%  spare%%@,";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-16s %.4f  %7.1f  %8.1f  %5.1f@," r.label r.ft
        r.avg_active r.overhead_pct
        (100.0 *. r.spare_fraction))
    rows;
  Format.fprintf ppf "@]"

let pp_flood ppf rows =
  Format.fprintf ppf
    "@[<v># Ablation A2: flooding scope (rho, beta0, beta1)@,\
     rho  beta0 beta1   ft      accept  msgs/request@,";
  List.iter
    (fun r ->
      Format.fprintf ppf "%.1f  %5d %5d   %.4f  %.3f  %8.1f@," r.rho r.beta0
        r.beta1 r.ft r.acceptance r.messages_per_request)
    rows;
  Format.fprintf ppf "@]"

let pp_blind ppf rows =
  Format.fprintf ppf
    "@[<v># Ablation A3: conflict-aware vs conflict-blind backup routing@,\
     E    scheme   ft      spare%%  active  degraded@,";
  List.iter
    (fun r ->
      Format.fprintf ppf "%.0f    %-7s %.4f  %5.1f  %7.1f  %8d@," r.avg_degree
        r.scheme r.ft
        (100.0 *. r.spare_fraction)
        r.avg_active r.degraded)
    rows;
  Format.fprintf ppf "@]"

let pp_qos ppf rows =
  Format.fprintf ppf
    "@[<v># Extension E5: QoS (delay) budget on backups, D-LSR@,\
     slack      ft      accept  rej-no-backup  backup-hops@,";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-9s  %.4f  %.3f  %13d  %11.2f@,"
        (match r.slack with None -> "unbounded" | Some s -> string_of_int s)
        r.ft r.acceptance r.rejected_no_backup r.avg_backup_hops)
    rows;
  Format.fprintf ppf "@]"

let pp_classes ppf rows =
  Format.fprintf ppf
    "@[<v># Traffic classes (D-LSR): heterogeneous bandwidths@,\
     mix          ft      accept  active   spare%%  degraded@,";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-11s  %.4f  %.3f  %7.1f  %5.1f  %8d@," r.mix r.ft
        r.acceptance r.avg_active
        (100.0 *. r.spare_fraction)
        r.degraded)
    rows;
  Format.fprintf ppf "@]"

let pp_backup_count ppf rows =
  Format.fprintf ppf
    "@[<v># Extension E2: backups per DR-connection (D-LSR routing)@,\
     k    edge-ft  node-ft  double-ft  overhead%%  accept@,";
  List.iter
    (fun r ->
      Format.fprintf ppf "%d    %.4f   %.4f   %.4f    %7.1f   %.3f@," r.backups
        r.ft r.node_ft r.double_ft r.overhead_pct r.acceptance)
    rows;
  Format.fprintf ppf "@]"

module Graph = Dr_topo.Graph
module Scenario = Dr_sim.Scenario
module Engine = Dr_sim.Engine
module Manager = Drtp.Manager
module Net_state = Drtp.Net_state
module Routing = Drtp.Routing
module Failure_eval = Drtp.Failure_eval
module Faults = Dr_faults.Faults
module Shard_sim = Dr_shard.Shard_sim
module Pool = Dr_parallel.Pool
module J = Dr_obs.Journal

type row = {
  parts : int;
  interval : float;
  loss : float;
  cut : int;
  requests : int;
  accepted : int;
  acceptance : float;
  inter_shard : int;
  setup_failures : int;
  crankbacks : int;
  lost : int;
  lsa_per_second : float;
  avg_staleness : float;
  decision_age : float;
  lag_mean : float;
  lag_max : float;
  divergence : float;
  ft : float;
  avg_active : float;
}

let default_parts = [ 1; 2; 4; 8 ]
let default_intervals = [ 0.0; 5.0; 30.0 ]
let default_losses = [ 0.0; 0.1 ]

(* The centralised control arm: the same workload and sampling cadence
   driven straight through Drtp.Manager on ground truth.  The single-shard
   sharded run must reproduce these rows byte-for-byte (the CI gate). *)
let run_centralised (cfg : Config.t) ~graph ~scenario ~scheme ~backup_count
    ~parts ~interval ~loss =
  let route =
    if backup_count = 0 then Routing.link_state_route_fn scheme ~with_backup:false
    else Routing.link_state_route_fn ~backup_count scheme ~with_backup:true
  in
  let manager =
    Manager.create ~graph ~capacity:cfg.Config.capacity
      ~spare_policy:Net_state.Multiplexed ~route
  in
  let state = Manager.state manager in
  let engine : [ `Workload of Scenario.item | `Sample ] Engine.t =
    Engine.create ()
  in
  let warmup = cfg.Config.warmup and horizon = cfg.Config.horizon in
  let attempts = ref 0 and successes = ref 0 in
  let cursor = ref warmup in
  let active_time = ref 0.0 in
  let integrate_to t =
    let t = min t horizon in
    if t > !cursor then begin
      active_time :=
        !active_time
        +. (float_of_int (Net_state.active_count state) *. (t -. !cursor));
      cursor := t
    end
  in
  let handler engine event =
    integrate_to (Engine.now engine);
    match event with
    | `Workload item -> Manager.apply manager item
    | `Sample ->
        let r = Failure_eval.evaluate state in
        attempts := !attempts + r.Failure_eval.attempts;
        successes := !successes + r.Failure_eval.successes
  in
  Scenario.iter scenario (fun item ->
      if item.Scenario.time <= horizon then
        Engine.schedule engine ~at:item.Scenario.time (`Workload item));
  let rec schedule_samples t =
    if t <= horizon then begin
      Engine.schedule engine ~at:t `Sample;
      schedule_samples (t +. cfg.Config.sample_every)
    end
  in
  schedule_samples warmup;
  Engine.run engine ~handler;
  integrate_to horizon;
  let window = horizon -. warmup in
  let s = Manager.stats manager in
  {
    parts;
    interval;
    loss;
    cut = 0;
    requests = s.Manager.requests;
    accepted = s.Manager.accepted;
    acceptance = Manager.acceptance_ratio manager;
    inter_shard = 0;
    setup_failures = 0;
    crankbacks = 0;
    lost = 0;
    lsa_per_second = 0.0;
    avg_staleness = 0.0;
    decision_age = 0.0;
    lag_mean = 0.0;
    lag_max = 0.0;
    divergence = 0.0;
    ft =
      (if !attempts = 0 then 1.0
       else float_of_int !successes /. float_of_int !attempts);
    avg_active = (if window > 0.0 then !active_time /. window else 0.0);
  }

let run_cell (cfg : Config.t) ~avg_degree ~traffic ~lambda ~scheme ~backup_count
    ~parts ~interval ~loss ~lsa_refresh ~flood_delay ~hop_delay ~max_retries
    ~partition_seed ?(baseline = false) ~seed () =
  let graph = Config.make_graph cfg ~avg_degree in
  let scenario = Config.make_scenario cfg traffic ~lambda in
  if baseline then
    run_centralised cfg ~graph ~scenario ~scheme ~backup_count ~parts ~interval
      ~loss
  else begin
    let faults =
      if loss > 0.0 then
        Some
          (Faults.create ~seed:(seed + 3)
             { Faults.zero_spec with p_lsa = loss; p_setup = loss; p_ack = loss })
      else None
    in
    let config =
      {
        Shard_sim.default_config with
        Shard_sim.scheme;
        backup_count;
        parts;
        partition_seed;
        lsa_interval = interval;
        lsa_refresh;
        lsa_flood_delay = flood_delay;
        hop_delay;
        max_retries;
        faults;
      }
    in
    let r =
      Shard_sim.run ~config ~graph ~capacity:cfg.Config.capacity ~scenario
        ~warmup:cfg.Config.warmup ~horizon:cfg.Config.horizon
        ~sample_every:cfg.Config.sample_every ()
    in
    let s = r.Shard_sim.stats in
    {
      parts;
      interval;
      loss;
      cut = r.Shard_sim.cut_edges;
      requests = s.Shard_sim.requests;
      accepted = s.Shard_sim.accepted;
      acceptance = r.Shard_sim.acceptance;
      inter_shard = s.Shard_sim.inter_shard;
      setup_failures = s.Shard_sim.setup_failures;
      crankbacks = s.Shard_sim.crankbacks;
      lost = s.Shard_sim.lost_after_retries;
      lsa_per_second = r.Shard_sim.lsa_per_second;
      avg_staleness = r.Shard_sim.avg_staleness;
      decision_age = r.Shard_sim.decision_age_mean;
      lag_mean = r.Shard_sim.convergence_lag_mean;
      lag_max = r.Shard_sim.convergence_lag_max;
      divergence = r.Shard_sim.divergence_fraction;
      ft = r.Shard_sim.ft_overall;
      avg_active = r.Shard_sim.avg_active;
    }
  end

let cell_seed ~seed i = seed + (1000 * i)

let run ?pool (cfg : Config.t) ~avg_degree ~traffic ~lambda ~scheme
    ?(backup_count = 1) ?(parts_list = default_parts)
    ?(intervals = default_intervals) ?(losses = default_losses)
    ?(lsa_refresh = 30.0) ?(flood_delay = 0.050) ?(hop_delay = 0.001)
    ?(max_retries = 1) ?(baseline = false) ?(seed = 6311) () =
  let cells =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun i -> List.map (fun l -> (p, i, l)) losses)
          intervals)
      parts_list
  in
  let tasks = Array.of_list (List.mapi (fun i c -> (i, c)) cells) in
  let f (i, (parts, interval, loss)) =
    run_cell cfg ~avg_degree ~traffic ~lambda ~scheme ~backup_count ~parts
      ~interval ~loss ~lsa_refresh ~flood_delay ~hop_delay ~max_retries
      ~partition_seed:(seed + 17) ~baseline ~seed:(cell_seed ~seed i) ()
  in
  (* Same deterministic journal merge as {!Resilience_exp.run}: each cell
     records into a private buffer, re-appended in task-index order, so the
     merged journal is byte-identical for any [--jobs] count. *)
  let results =
    if not !J.on then
      match pool with
      | Some pool -> Pool.map pool f tasks
      | None -> Pool.with_pool ~jobs:1 (fun pool -> Pool.map pool f tasks)
    else begin
      let coordinator = J.current () in
      let g ((i, _) as task) =
        J.capture ~trace_seed:(cell_seed ~seed i) (fun () -> f task)
      in
      let merge _i = function
        | Ok (_, journal_entries) -> J.append_entries coordinator journal_entries
        | Error _ -> ()
      in
      let res =
        match pool with
        | Some pool -> Pool.map ~on_result:merge pool g tasks
        | None ->
            Pool.with_pool ~jobs:1 (fun pool ->
                Pool.map ~on_result:merge pool g tasks)
      in
      Array.map (function Ok (m, _) -> Ok m | Error e -> Error e) res
    end
  in
  Array.to_list
    (Array.map
       (function
         | Ok r -> r
         | Error (e : Pool.error) ->
             invalid_arg ("Shard_exp: cell failed: " ^ e.Pool.message))
       results)

let pp ppf rows =
  Format.fprintf ppf
    "@[<v># Sharded control plane: staleness divergence and convergence lag@,\
     shards lsa-int loss   cut accept  inter setfail crank lost  lsa/s  \
     stale    age(s)  lag(s) lagmax  diverge     ft  active@,";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%6d %7.1f %4.2f %5d %6.4f %6d %7d %5d %4d %6.2f %6.2f %9.3f %7.3f \
         %6.1f %8.4f %6.4f %7.1f@,"
        r.parts r.interval r.loss r.cut r.acceptance r.inter_shard
        r.setup_failures r.crankbacks r.lost r.lsa_per_second r.avg_staleness
        r.decision_age r.lag_mean r.lag_max r.divergence r.ft r.avg_active)
    rows;
  (* Headline: per shard count, what heavier LSA damping costs in
     divergent decisions. *)
  List.iter
    (fun p ->
      let group = List.filter (fun r -> r.parts = p && r.loss = 0.0) rows in
      match group with
      | [] | [ _ ] -> ()
      | _ ->
          let by_interval =
            List.sort (fun a b -> compare a.interval b.interval) group
          in
          let lo = List.hd by_interval
          and hi = List.hd (List.rev by_interval) in
          if lo.interval < hi.interval then
            Format.fprintf ppf
              "shards %d: divergence %0.4f at interval %.1fs -> %0.4f at \
               %.1fs@,"
              p lo.divergence lo.interval hi.divergence hi.interval)
    (List.sort_uniq compare
       (List.filter_map
          (fun r -> if r.parts > 1 then Some r.parts else None)
          rows));
  Format.fprintf ppf "@]"

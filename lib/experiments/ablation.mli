(** Ablation studies for the design choices DESIGN.md calls out.

    - {b A1, no multiplexing}: reserve dedicated spare per backup instead
      of §5's shared pool.  Reproduces the paper's §2 argument that a
      dedicated disjoint backup "reduces the network capacity by at least
      50%", i.e. multiplexing is what makes DR-connections affordable.
    - {b A2, flooding scope}: sweep (ρ, β₀, β₁) to expose the routing
      overhead ↔ acceptance/fault-tolerance trade-off behind the paper's
      chosen operating point (§4.1, §6.2).
    - {b A3, conflict-blind routing}: replace the conflict-aware link costs
      with plain shortest-path backup selection; the gap quantifies "the
      lower the network connectivity, the more sophisticated routing
      algorithm is necessary" (§6.2).

    Every table runs its independent replays through an optional
    {!Dr_parallel.Pool} ([?pool]); rows come back in the fixed table
    order regardless of job count.  A replay that keeps raising after the
    pool's retry aborts the table with [Failure] — these small grids have
    no partial-result story. *)

type mux_row = {
  label : string;
  ft : float;
  avg_active : float;
  overhead_pct : float;
  spare_fraction : float;
}

val no_multiplexing :
  ?pool:Dr_parallel.Pool.t ->
  Config.t ->
  avg_degree:float ->
  traffic:Config.traffic ->
  lambda:float ->
  mux_row list
(** D-LSR with multiplexed vs dedicated spare, plus the no-backup baseline
    reference. *)

type flood_row = {
  rho : float;
  beta0 : int;
  beta1 : int;
  ft : float;
  acceptance : float;
  messages_per_request : float;
}

val flood_scope :
  ?pool:Dr_parallel.Pool.t ->
  Config.t ->
  avg_degree:float ->
  traffic:Config.traffic ->
  lambda:float ->
  ?points:(float * int * int) list ->
  unit ->
  flood_row list

type blind_row = {
  avg_degree : float;
  scheme : string;
  ft : float;
  spare_fraction : float;
      (** conflict-blind routing pays in spare bandwidth even when the
          §5 spare-growth rule keeps fault-tolerance up *)
  avg_active : float;
  degraded : int;
}

val conflict_blind :
  ?pool:Dr_parallel.Pool.t ->
  Config.t ->
  traffic:Config.traffic ->
  lambda:float ->
  blind_row list
(** D-LSR / P-LSR / SPF at E = 3 and E = 4: fault-tolerance plus the
    capacity price of ignoring conflicts. *)

type backup_count_row = {
  backups : int;
  ft : float;
  overhead_pct : float;
  acceptance : float;
  node_ft : float;
      (** fault-tolerance under single-node failures (extension E3) *)
  double_ft : float;
      (** fault-tolerance under simultaneous double-edge failures (sampled
          on the loaded network at the horizon) — the regime §5's
          single-failure spare sizing does not cover *)
}

val backup_count :
  ?pool:Dr_parallel.Pool.t ->
  Config.t ->
  avg_degree:float ->
  traffic:Config.traffic ->
  lambda:float ->
  ?counts:int list ->
  unit ->
  backup_count_row list
(** Extension E2: D-LSR with k = 0, 1, 2 backups per DR-connection — the
    paper's "one or more backup channels".  More backups buy edge- and
    especially node-failure tolerance at a capacity cost.

    The double-failure Monte-Carlo is split into a fixed number of
    sample chunks with per-chunk seeds and merged back exactly with
    {!Drtp.Failure_eval.merge_results}, so [double_ft] does not depend
    on the pool's job count. *)

type qos_row = {
  slack : int option;  (** [None] = unbounded *)
  ft : float;
  acceptance : float;
  rejected_no_backup : int;
  avg_backup_hops : float;
}

val qos_bound :
  ?pool:Dr_parallel.Pool.t ->
  Config.t ->
  avg_degree:float ->
  traffic:Config.traffic ->
  lambda:float ->
  ?slacks:int option list ->
  unit ->
  qos_row list
(** Extension E5: bound every backup to [hops(primary) + slack] links —
    the paper's delay-budget remark in §2.  Tight budgets forfeit
    protection (rejections) and force conflictful short backups;
    loose ones recover the unbounded behaviour. *)

type class_row = {
  mix : string;
  ft : float;
  acceptance : float;
  avg_active : float;
  spare_fraction : float;
  degraded : int;
}

val traffic_classes :
  ?pool:Dr_parallel.Pool.t ->
  Config.t ->
  avg_degree:float ->
  traffic:Config.traffic ->
  lambda:float ->
  unit ->
  class_row list
(** Heterogeneous bandwidth classes (Table 1's "video and audio"
    motivation): audio-only (1 unit), mixed 70/30 audio/video (4 units),
    video-only — at the same request rate.  Exercises the
    bandwidth-weighted multiplexing rule; bigger flows are harder to pack
    and to protect. *)

val pp_mux : Format.formatter -> mux_row list -> unit
val pp_flood : Format.formatter -> flood_row list -> unit
val pp_blind : Format.formatter -> blind_row list -> unit
val pp_backup_count : Format.formatter -> backup_count_row list -> unit
val pp_qos : Format.formatter -> qos_row list -> unit
val pp_classes : Format.formatter -> class_row list -> unit

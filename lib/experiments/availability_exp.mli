(** Extension E6: service availability under continuous failure/repair.

    The paper's metrics are snapshots; what a subscriber of a "dependable"
    connection ultimately buys is {e availability} — the fraction of its
    lifetime the connection actually carried traffic.  This experiment
    runs the workload with an ongoing failure process (edge failures
    arriving as a Poisson process, each repaired after an exponential
    time) and charges every affected connection its real downtime:

    - a DRTP switchover costs its detection + reporting + activation
      latency (milliseconds);
    - a reactive re-establishment costs its route computation, signalling
      and backoff retries;
    - a connection that cannot be recovered is {e dropped} and charged the
      rest of its committed lifetime.

    Availability = 1 − Σ downtime / Σ delivered service time, across all
    admitted connections. *)

type row = {
  label : string;
  mtbf : float;  (** mean time between (network-wide) failures, seconds *)
  failures : int;
  switchovers : int;
  reroutes : int;
  drops : int;
  downtime_s : float;
  service_s : float;
  availability : float;
  nines : float;  (** −log₁₀(1 − availability); 3.0 = "three nines" *)
}

val run :
  Config.t ->
  avg_degree:float ->
  traffic:Config.traffic ->
  lambda:float ->
  ?mtbf:float ->
  ?mttr:float ->
  ?failure_seed:int ->
  unit ->
  row list
(** One row per approach (DRTP/D-LSR, DRTP/P-LSR, reactive), identical
    workload and failure timeline.  Defaults: one failure every 600 s on
    average, repaired after 120 s on average. *)

val pp : Format.formatter -> row list -> unit

(** Experiment configuration — the paper's Table 1 plus calibration.

    The published table is partly illegible in the scan, so the constants
    below are calibrated to reproduce the operating points the text states
    explicitly: 60-node Waxman networks with average degrees 3 and 4,
    connection lifetimes uniform in [20, 60] minutes, Poisson arrivals with
    λ swept over 0.2…1.0, and {e saturation at λ ≈ 0.5 for E = 3 and
    λ ≈ 0.9 for E = 4} (§6.2).  With λ in requests/second network-wide and
    a mean lifetime of 40 min, λ = 0.5 holds ≈ 1200 connections of ≈ 4.3
    hops each — ≈ 5200 link-units against the 180 × 30 = 5400 units a
    degree-3 network offers, i.e. saturation, as required. *)

type traffic = UT | NT

val traffic_name : traffic -> string
val traffic_of_string : string -> (traffic, string) result

type t = {
  nodes : int;  (** 60 *)
  capacity : int;  (** per-link, per-direction bandwidth units; 30 *)
  bw_req : int;  (** units per DR-connection; 1 *)
  lifetime_lo : float;  (** 20 min *)
  lifetime_hi : float;  (** 60 min *)
  warmup : float;  (** measurement starts here, seconds *)
  horizon : float;  (** arrivals generated until here, seconds *)
  sample_every : float;  (** fault-tolerance snapshot period, seconds *)
  hotspot_count : int;  (** NT: pre-selected destinations; 10 *)
  hotspot_fraction : float;  (** NT: share of traffic they draw; 0.5 *)
  topology_seed : int;
  workload_seed : int;
}

val default : t

val lambdas_for_degree : float -> float list
(** The λ sweep the paper plots: 0.2–0.7 for E = 3 (Fig. 4a/5a),
    0.4–1.0 for E = 4 (Fig. 4b/5b). *)

val make_graph : t -> avg_degree:float -> Dr_topo.Graph.t
(** The Waxman topology for this configuration (deterministic in
    [topology_seed] and the degree). *)

val make_scenario : t -> traffic -> lambda:float -> Dr_sim.Scenario.t
(** The shared scenario file for one (traffic, λ) cell — identical across
    schemes, like the paper's Matlab-generated scenario files
    (deterministic in [workload_seed], traffic and λ). *)

val pp_table1 : Format.formatter -> t -> unit
(** Render the reproduction's Table 1. *)

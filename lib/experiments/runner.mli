(** Measured scenario replay: one (topology, scenario, scheme) run.

    Replays the scenario through a {!Drtp.Manager}, and in the measurement
    window [warmup, horizon]:
    - samples the snapshot fault-tolerance ({!Drtp.Failure_eval}) every
      [sample_every] seconds;
    - integrates the number of active connections over time (the quantity
      behind the paper's capacity-overhead metric);
    - tracks spare reservations and multiplexing deficits.  *)

type scheme_spec =
  | Lsr of Drtp.Routing.scheme  (** P-LSR / D-LSR / SPF, multiplexed spare *)
  | Lsr_k of Drtp.Routing.scheme * int
      (** extension E2: the paper's "one or more" backups — route and
          register k backups per connection *)
  | Lsr_bounded of Drtp.Routing.scheme * int
      (** extension E5: QoS-bounded backups — every backup at most
          [hops(primary) + slack] links long *)
  | Lsr_dedicated of Drtp.Routing.scheme
      (** ablation A1: same routing, no backup multiplexing *)
  | Bf of Dr_flood.Bounded_flood.config  (** bounded flooding *)
  | Bf_no_backup of Dr_flood.Bounded_flood.config
      (** flooding-routed primaries without backups: BF's own overhead
          reference, so the capacity-overhead metric isolates the cost of
          backups from the difference in primary routing *)
  | No_backup  (** baseline: min-hop primaries only (overhead reference) *)

val scheme_label : scheme_spec -> string

val paper_schemes : scheme_spec list
(** The paper's three: D-LSR, P-LSR, BF (default flooding parameters). *)

type measurement = {
  label : string;
  snapshots : int;
  ft_overall : float;
      (** P_act-bk aggregated over all snapshots and edges:
          Σ successes / Σ attempts *)
  ft_per_snapshot : Dr_stats.Summary.t;
  node_ft_overall : float;
      (** fault-tolerance against single-node failures (extension E3):
          transit activations / transit victims, aggregated over
          snapshots; endpoint connections of the failed node are excluded
          (unrecoverable by any scheme) *)
  avg_active : float;  (** time-averaged active DR-connections *)
  requests : int;
  accepted : int;
  rejected_no_primary : int;
  rejected_no_backup : int;
  degraded : int;
  unprotected : int;
      (** connections admitted without any backup (BF single-candidate
          acceptances; always 0 for the LSR schemes) *)
  acceptance : float;
  avg_spare_fraction : float;
      (** spare bandwidth / total capacity, averaged over snapshots *)
  avg_deficit_units : float;
      (** total spare deficit in bandwidth units, averaged over snapshots *)
  flood_messages_per_request : float option;  (** BF only *)
  avg_backup_hops : float;  (** mean backup length at admission *)
  avg_primary_hops : float;
}

val run :
  Config.t ->
  graph:Dr_topo.Graph.t ->
  scenario:Dr_sim.Scenario.t ->
  scheme:scheme_spec ->
  measurement
(** Replay [scenario] under [scheme].  Deterministic. *)

val run_many :
  ?pool:Dr_parallel.Pool.t ->
  ?on_result:(int -> (measurement, Dr_parallel.Pool.error) result -> unit) ->
  Config.t ->
  (Dr_topo.Graph.t * Dr_sim.Scenario.t * scheme_spec) array ->
  (measurement, Dr_parallel.Pool.error) result array
(** Run one measured replay per task through a {!Dr_parallel.Pool}
    (inline, single-job execution when [pool] is absent).  Tasks are
    independent — each builds its own manager and network state — and the
    result array is keyed by task index, so output is identical for any
    job count.  A task that keeps raising after the pool's retry becomes
    an [Error] element instead of aborting the batch.  [on_result] is
    invoked from the calling domain in task order. *)

val load_state :
  ?srlg:Dr_resilience.Srlg.t ->
  Config.t ->
  graph:Dr_topo.Graph.t ->
  scenario:Dr_sim.Scenario.t ->
  scheme:scheme_spec ->
  until:float ->
  Drtp.Net_state.t
(** Replay events up to time [until] and hand back the loaded network
    state — for analyses the measurement loop does not perform (e.g. the
    double-failure Monte-Carlo).  [srlg] installs a shared-risk model on
    the state ({!Drtp.Net_state.create_srlg}); omitted = singletons. *)

module Graph = Dr_topo.Graph
module Scenario = Dr_sim.Scenario
module Engine = Dr_sim.Engine
module Manager = Drtp.Manager
module Net_state = Drtp.Net_state
module Recovery = Drtp.Recovery
module Routing = Drtp.Routing
module Failure_eval = Drtp.Failure_eval
module Srlg = Dr_resilience.Srlg
module Pool = Dr_parallel.Pool
module J = Dr_obs.Journal
module Summary = Dr_stats.Summary

type row = {
  k : int;
  mean_size : int;
  groups : int;
  acceptance : float;
  bursts : int;
  affected : int;
  recovered : int;
  lost : int;
  success_ratio : float;
  latency_mean_ms : float;
  srlg_coverage : float;
}

type event =
  | Workload of Scenario.item
  | Fail of Srlg.burst
  | Repair of int
  | Repair_edges of int list

(* One cell: a full workload replay under a seeded correlated-failure
   timeline over a seeded SRLG partition.  Both timelines derive from the
   cell's own [seed] — never shared across cells, which keeps the sweep
   [--jobs]-independent. *)
let run_cell (cfg : Config.t) ~avg_degree ~traffic ~lambda ~scheme ~k
    ~mean_size ~mtbf ~mttr ?regional ?overlay ?(baseline = false) ~seed () =
  let graph = Config.make_graph cfg ~avg_degree in
  let scenario = Config.make_scenario cfg traffic ~lambda in
  let edge_count = Graph.edge_count graph in
  let srlg =
    match overlay with
    | Some extra ->
        Srlg.random_overlay ~seed:(seed + 2) ~edge_count ~extra
          ~size:(max 2 mean_size)
    | None ->
        if mean_size <= 1 then Srlg.singletons ~edge_count
        else Srlg.random_partition ~seed:(seed + 2) ~edge_count ~mean_size
  in
  let bursts =
    let base =
      Srlg.group_schedule ~seed:(seed + 1) srlg ~mtbf ~mttr
        ~horizon:cfg.Config.horizon ()
    in
    match regional with
    | None -> base
    | Some radius ->
        let reg =
          Srlg.regional_schedule ~seed:(seed + 4) ~graph ~radius ~mtbf ~mttr
            ~horizon:cfg.Config.horizon ()
        in
        Srlg.merge_schedules ~edge_count base reg
  in
  let route =
    if baseline then Routing.link_state_route_fn ~backup_count:k scheme ~with_backup:true
    else Routing.chain_route_fn ~k scheme
  in
  let manager =
    Manager.create_srlg ~srlg ~graph ~capacity:cfg.Config.capacity
      ~spare_policy:Net_state.Multiplexed ~route
  in
  if not baseline then
    Manager.set_reprotect_router manager Manager.chain_reprotect_router;
  let state = Manager.state manager in
  let engine : event Engine.t = Engine.create () in
  let n_bursts = ref 0 in
  let affected = ref 0 and recovered = ref 0 and lost = ref 0 in
  let latency = Summary.create () in
  let end_now = ref 0.0 in
  let handler engine event =
    let now = Engine.now engine in
    end_now := max !end_now now;
    match event with
    | Workload item -> Manager.apply manager item
    | Repair g ->
        Net_state.restore_group state ~group:g;
        ignore (Manager.drain_reprotect manager ~now)
    | Repair_edges edges ->
        List.iter (fun edge -> Net_state.restore_edge state ~edge) edges;
        ignore (Manager.drain_reprotect manager ~now)
    | Fail b ->
        incr n_bursts;
        let report =
          match b.Srlg.group with
          | Some g ->
              Recovery.fail_group_drtp state ~scheme ~backup_count:k ~group:g ()
          | None ->
              (* Regional bursts carry a bare edge set, no group identity. *)
              Recovery.fail_edges_drtp state ~scheme ~backup_count:k
                ~edges:b.Srlg.edges ()
        in
        affected := !affected + List.length report.Recovery.outcomes;
        List.iter
          (fun (_, outcome) ->
            match outcome with
            | Recovery.Switched { latency = l; _ }
            | Recovery.Rerouted { latency = l; _ } ->
                incr recovered;
                Summary.add latency l
            | Recovery.Lost _ -> incr lost)
          report.Recovery.outcomes;
        List.iter
          (fun id ->
            Manager.queue_reprotect manager ~id ~scheme ~backup_count:k ~now ())
          report.Recovery.unprotected_ids
  in
  Scenario.iter scenario (fun item ->
      if item.Scenario.time <= cfg.Config.horizon then
        Engine.schedule engine ~at:item.Scenario.time (Workload item));
  List.iter
    (fun (b : Srlg.burst) ->
      Engine.schedule engine ~at:b.Srlg.fail_at (Fail b);
      match b.Srlg.group with
      | Some g -> Engine.schedule engine ~at:b.Srlg.repair_at (Repair g)
      | None ->
          Engine.schedule engine ~at:b.Srlg.repair_at (Repair_edges b.Srlg.edges))
    bursts;
  Engine.run engine ~handler;
  (match Net_state.check_invariants state with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Resilience_exp: invariant violated: " ^ msg));
  Manager.flush_reprotect manager ~now:(max !end_now cfg.Config.horizon);
  (* All groups were repaired by the schedule, so this is a static
     what-if over the surviving admission state: the fraction of
     primaries that would ride out the failure of their worst SRLG. *)
  let ft = Failure_eval.fault_tolerance (Failure_eval.evaluate_srlg state) in
  {
    k;
    mean_size;
    groups = Srlg.group_count srlg;
    acceptance = Manager.acceptance_ratio manager;
    bursts = !n_bursts;
    affected = !affected;
    recovered = !recovered;
    lost = !lost;
    success_ratio =
      (if !affected = 0 then 1.0
       else float_of_int !recovered /. float_of_int !affected);
    latency_mean_ms =
      (if Summary.count latency = 0 then 0.0
       else 1000.0 *. Summary.mean latency);
    srlg_coverage = ft;
  }

(* ---- the sweep ---------------------------------------------------------- *)

let default_ks = [ 1; 2; 3 ]
let default_sizes = [ 1; 4 ]

let cell_seed ~seed i = seed + (1000 * i)

let run ?pool (cfg : Config.t) ~avg_degree ~traffic ~lambda ~scheme
    ?(ks = default_ks) ?(mean_sizes = default_sizes) ?(mtbf = 300.0)
    ?(mttr = 60.0) ?regional ?overlay ?(baseline = false) ?(seed = 4217) () =
  let cells =
    List.concat_map (fun s -> List.map (fun k -> (k, s)) ks) mean_sizes
  in
  let tasks = Array.of_list (List.mapi (fun i c -> (i, c)) cells) in
  let f (i, (k, mean_size)) =
    run_cell cfg ~avg_degree ~traffic ~lambda ~scheme ~k ~mean_size ~mtbf ~mttr
      ?regional ?overlay ~baseline ~seed:(cell_seed ~seed i) ()
  in
  (* Same deterministic journal merge as {!Runner.run_many}: each cell
     records into a private buffer, re-appended in task-index order, so the
     merged journal is byte-identical for any [--jobs] count. *)
  let results =
    if not !J.on then
      match pool with
      | Some pool -> Pool.map pool f tasks
      | None -> Pool.with_pool ~jobs:1 (fun pool -> Pool.map pool f tasks)
    else begin
      let coordinator = J.current () in
      let g ((i, _) as task) =
        J.capture ~trace_seed:(cell_seed ~seed i) (fun () -> f task)
      in
      let merge _i = function
        | Ok (_, journal_entries) -> J.append_entries coordinator journal_entries
        | Error _ -> ()
      in
      let res =
        match pool with
        | Some pool -> Pool.map ~on_result:merge pool g tasks
        | None ->
            Pool.with_pool ~jobs:1 (fun pool ->
                Pool.map ~on_result:merge pool g tasks)
      in
      Array.map (function Ok (m, _) -> Ok m | Error e -> Error e) res
    end
  in
  Array.to_list
    (Array.map
       (function
         | Ok r -> r
         | Error (e : Pool.error) ->
             invalid_arg ("Resilience_exp: cell failed: " ^ e.Pool.message))
       results)

let pp ppf rows =
  Format.fprintf ppf
    "@[<v># Resilience: k-resilient chains under correlated (SRLG) failures@,\
     k  srlg-size groups accept  bursts affected recovered lost success  \
     latency(ms) srlg-ft@,";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%d  %9d %6d %6.4f %7d %8d %9d %4d %7.4f  %11.3f %7.4f@," r.k
        r.mean_size r.groups r.acceptance r.bursts r.affected r.recovered
        r.lost r.success_ratio r.latency_mean_ms r.srlg_coverage)
    rows;
  (* Headline: for each non-singleton density, how much of the k=1
     degradation do deeper chains win back? *)
  List.iter
    (fun size ->
      match
        List.filter (fun r -> r.mean_size = size && r.mean_size > 1) rows
      with
      | [] -> ()
      | group -> (
          let at k = List.find_opt (fun r -> r.k = k) group in
          let best =
            List.fold_left
              (fun acc r ->
                match acc with
                | Some b when b.success_ratio >= r.success_ratio -> acc
                | _ -> Some r)
              None group
          in
          match (at 1, best) with
          | Some r1, Some rb when rb.k > 1 ->
              Format.fprintf ppf
                "srlg-size %d: success %0.4f at k=1 -> %0.4f at k=%d@," size
                r1.success_ratio rb.success_ratio rb.k
          | _ -> ()))
    (List.sort_uniq compare (List.map (fun r -> r.mean_size) rows));
  Format.fprintf ppf "@]"

module Scenario = Dr_sim.Scenario
module Manager = Drtp.Manager
module Net_state = Drtp.Net_state
module Recovery = Drtp.Recovery
module Routing = Drtp.Routing

type row = {
  label : string;
  failures_injected : int;
  affected : int;
  recovered : int;
  recovery_ratio : float;
  latency_mean_ms : float;
  latency_p99_ms : float;
  reprotected : int;
  retries_total : int;
}

type approach = Drtp_scheme of Routing.scheme | Local_detour | Reactive

let approach_label = function
  | Drtp_scheme s -> "DRTP/" ^ Routing.scheme_name s
  | Local_detour -> "local-detour"
  | Reactive -> "reactive"

let run (cfg : Config.t) ~avg_degree ~traffic ~lambda ?(failures = 40) ?(seed = 7)
    () =
  let graph = Config.make_graph cfg ~avg_degree in
  let scenario = Config.make_scenario cfg traffic ~lambda in
  let items = Scenario.items scenario in
  (* One shared failure plan: (time, edge) pairs spread after warmup. *)
  let rng = Dr_rng.Splitmix64.create seed in
  let gap = (cfg.horizon -. cfg.warmup) /. float_of_int (failures + 1) in
  let plan =
    List.init failures (fun i ->
        ( cfg.warmup +. (gap *. float_of_int (i + 1)),
          Dr_rng.Splitmix64.int rng (Dr_topo.Graph.edge_count graph) ))
  in
  let run_approach approach =
    let route =
      match approach with
      | Drtp_scheme s -> Routing.link_state_route_fn s ~with_backup:true
      | Local_detour | Reactive ->
          Routing.link_state_route_fn Routing.Plsr ~with_backup:false
    in
    let manager =
      Manager.create ~graph ~capacity:cfg.capacity
        ~spare_policy:Net_state.Multiplexed ~route
    in
    let state = Manager.state manager in
    let idx = ref 0 in
    let replay_until t =
      while
        !idx < Array.length items
        && items.(!idx).Scenario.time <= t
      do
        Manager.apply manager items.(!idx);
        incr idx
      done
    in
    let affected = ref 0 and recovered = ref 0 and reprotected = ref 0 in
    let retries_total = ref 0 in
    let latencies = ref [] in
    List.iter
      (fun (t, edge) ->
        replay_until t;
        let report =
          match approach with
          | Drtp_scheme s -> Recovery.fail_edge_drtp state ~scheme:s ~edge ()
          | Local_detour -> Recovery.fail_edge_local_detour state ~edge ()
          | Reactive -> Recovery.fail_edge_reactive state ~edge ()
        in
        List.iter
          (fun (_, outcome) ->
            incr affected;
            match outcome with
            | Recovery.Switched { latency; reprotected = r } ->
                incr recovered;
                if r then incr reprotected;
                latencies := latency :: !latencies
            | Recovery.Rerouted { latency; retries } ->
                incr recovered;
                retries_total := !retries_total + retries;
                latencies := latency :: !latencies
            | Recovery.Lost _ -> ())
          report.Recovery.outcomes;
        (* Single-failure assumption: repair before the next failure. *)
        Net_state.restore_edge state ~edge)
      plan;
    let lat_ms = Array.of_list (List.map (fun l -> 1000.0 *. l) !latencies) in
    let mean =
      if Array.length lat_ms = 0 then 0.0
      else Array.fold_left ( +. ) 0.0 lat_ms /. float_of_int (Array.length lat_ms)
    in
    let p99 =
      if Array.length lat_ms = 0 then 0.0
      else Dr_stats.Histogram.quantile lat_ms 0.99
    in
    {
      label = approach_label approach;
      failures_injected = failures;
      affected = !affected;
      recovered = !recovered;
      recovery_ratio =
        (if !affected = 0 then 1.0
         else float_of_int !recovered /. float_of_int !affected);
      latency_mean_ms = mean;
      latency_p99_ms = p99;
      reprotected = !reprotected;
      retries_total = !retries_total;
    }
  in
  List.map run_approach
    [ Drtp_scheme Routing.Dlsr; Drtp_scheme Routing.Plsr; Local_detour; Reactive ]

let pp ppf rows =
  Format.fprintf ppf
    "@[<v># Extension E1: failure recovery, DRTP vs reactive@,\
     approach      failures affected recovered ratio   lat-mean(ms) lat-p99(ms) reprotected retries@,";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s  %8d %8d %9d %.4f  %11.2f %11.2f %11d %7d@,"
        r.label r.failures_injected r.affected r.recovered r.recovery_ratio
        r.latency_mean_ms r.latency_p99_ms r.reprotected r.retries_total)
    rows;
  Format.fprintf ppf "@]"

module Summary = Dr_stats.Summary

type cell = {
  traffic : Config.traffic;
  lambda : float;
  label : string;
  ft : Summary.t;
  node_ft : Summary.t;
  overhead_pct : Summary.t;
  acceptance : Summary.t;
}

type t = { avg_degree : float; seeds : int list; cells : cell list }

(* A duplicated seed would replay the identical sweep and silently count
   it twice in every mean and CI — drop repeats (keeping first-occurrence
   order) and say so. *)
let dedupe_seeds seeds =
  let seen = Hashtbl.create 8 in
  let kept =
    List.filter
      (fun s ->
        if Hashtbl.mem seen s then false
        else begin
          Hashtbl.add seen s ();
          true
        end)
      seeds
  in
  let dropped = List.length seeds - List.length kept in
  if dropped > 0 then
    Printf.eprintf
      "Replicate.run: dropped %d duplicate seed%s (each seed is counted once)\n%!"
      dropped
      (if dropped = 1 then "" else "s");
  kept

let run ?pool ?(progress = fun _ -> ()) (cfg : Config.t) ~avg_degree ~seeds
    ?traffics ?lambdas ?schemes () =
  let seeds = dedupe_seeds seeds in
  if seeds = [] then invalid_arg "Replicate.run: need at least one seed";
  let table : (Config.traffic * float * string, cell) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  let cell_for key =
    match Hashtbl.find_opt table key with
    | Some c -> c
    | None ->
        let traffic, lambda, label = key in
        let c =
          {
            traffic;
            lambda;
            label;
            ft = Summary.create ();
            node_ft = Summary.create ();
            overhead_pct = Summary.create ();
            acceptance = Summary.create ();
          }
        in
        Hashtbl.add table key c;
        order := key :: !order;
        c
  in
  List.iter
    (fun seed ->
      let cfg =
        {
          cfg with
          Config.topology_seed = cfg.Config.topology_seed + (7919 * seed);
          workload_seed = cfg.Config.workload_seed + (104729 * seed);
        }
      in
      let sweep =
        Sweep.run ?pool ~progress cfg ~avg_degree ?traffics ?lambdas ?schemes ()
      in
      List.iter
        (fun (c : Sweep.cell) ->
          let m = c.Sweep.measurement in
          let cell = cell_for (c.Sweep.traffic, c.Sweep.lambda, m.Runner.label) in
          Summary.add cell.ft m.Runner.ft_overall;
          Summary.add cell.node_ft m.Runner.node_ft_overall;
          Summary.add cell.overhead_pct (Sweep.capacity_overhead_pct c);
          Summary.add cell.acceptance m.Runner.acceptance)
        sweep.Sweep.cells)
    seeds;
  {
    avg_degree;
    seeds;
    cells = List.rev_map (fun key -> Hashtbl.find table key) !order;
  }

let print_aggregate ppf (t : t) ~title ~select =
  Format.fprintf ppf "@[<v># %s (E = %.0f, %d seeds)@," title t.avg_degree
    (List.length t.seeds);
  Format.fprintf ppf "# traffic lambda scheme        mean      ci95@,";
  List.iter
    (fun c ->
      let s = select c in
      Format.fprintf ppf "%-4s %.2f %-12s %9.4f  ±%.4f@,"
        (Config.traffic_name c.traffic) c.lambda c.label (Summary.mean s)
        (Summary.ci95_halfwidth s))
    t.cells;
  Format.fprintf ppf "@]"

let print_figure4 ppf t =
  print_aggregate ppf t ~title:"Figure 4 (replicated): fault-tolerance"
    ~select:(fun c -> c.ft)

let print_figure5 ppf t =
  print_aggregate ppf t ~title:"Figure 5 (replicated): capacity overhead %"
    ~select:(fun c -> c.overhead_pct)

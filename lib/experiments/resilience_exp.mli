(** k-resilient chains under correlated (SRLG) failures.

    The paper's dependability story assumes independent single-link
    failures; this sweep measures what happens when that assumption breaks.
    Each cell replays the standard workload over a seeded random SRLG
    partition ({!Dr_resilience.Srlg.random_partition}) while a seeded
    correlated-failure schedule fails whole groups at a time
    ({!Dr_resilience.Srlg.group_schedule}), and connections carry
    [k]-resilient backup chains ({!Drtp.Routing.chain_route_fn}).

    The headline comparison: with [mean_size = 1] (singleton SRLGs, the
    paper's world) k = 1 already covers single failures, while with larger
    groups the k = 1 success ratio degrades and k >= 2 chains with
    SRLG-disjoint members win the coverage back — at an acceptance-ratio
    cost the table also shows. *)

type row = {
  k : int;  (** backup-chain depth *)
  mean_size : int;  (** SRLG density knob; 1 = singleton model *)
  groups : int;  (** group count of the cell's SRLG model *)
  acceptance : float;  (** admission acceptance ratio *)
  bursts : int;  (** correlated failure events replayed *)
  affected : int;  (** primaries hit by a burst *)
  recovered : int;  (** failovers that landed on a surviving member *)
  lost : int;  (** chain exhausted, connection dropped *)
  success_ratio : float;  (** recovered / affected; 1.0 if none affected *)
  latency_mean_ms : float;  (** mean failover latency *)
  srlg_coverage : float;
      (** static {!Drtp.Failure_eval.evaluate_srlg} fault tolerance of the
          end-of-run state (all groups repaired) *)
}

val default_ks : int list
(** [[1; 2; 3]] — the chain depths the standard sweep compares. *)

val default_sizes : int list
(** [[1; 4]] — singleton control plus one correlated density. *)

val run_cell :
  Config.t ->
  avg_degree:float ->
  traffic:Config.traffic ->
  lambda:float ->
  scheme:Drtp.Routing.scheme ->
  k:int ->
  mean_size:int ->
  mtbf:float ->
  mttr:float ->
  ?regional:float ->
  ?overlay:int ->
  ?baseline:bool ->
  seed:int ->
  unit ->
  row
(** One (k, srlg-density) cell.  [baseline] routes with
    [Routing.link_state_route_fn ~backup_count:k] (SRLG-blind backup
    sets) instead of [Routing.chain_route_fn] — the control arm showing
    what SRLG-aware chain construction buys.  [regional] merges a
    geographic burst schedule ({!Dr_resilience.Srlg.regional_schedule}
    with that disc radius) into the group timeline — those bursts carry no
    group identity and are replayed through
    {!Drtp.Recovery.fail_edges_drtp}.  [overlay] swaps the SRLG partition
    for {!Dr_resilience.Srlg.random_overlay}: singletons plus that many
    random overlapping groups of [mean_size] edges.  Deterministic in
    [seed]. *)

val run :
  ?pool:Dr_parallel.Pool.t ->
  Config.t ->
  avg_degree:float ->
  traffic:Config.traffic ->
  lambda:float ->
  scheme:Drtp.Routing.scheme ->
  ?ks:int list ->
  ?mean_sizes:int list ->
  ?mtbf:float ->
  ?mttr:float ->
  ?regional:float ->
  ?overlay:int ->
  ?baseline:bool ->
  ?seed:int ->
  unit ->
  row list
(** The k × density sweep (defaults k ∈ {1,2,3}, sizes ∈ {1,4}).  Cell
    seeds are [seed + 1000·i]; journal entries are merged in task-index
    order, so output is byte-identical for any [--jobs] count. *)

val pp : Format.formatter -> row list -> unit

(** Extension E4: link-state staleness ablation.

    The centralised harness gives routing perfect information; the
    distributed protocol of {!Dr_proto.Protocol_sim} routes on
    advertisements damped by a per-link minimum origination interval.
    This experiment sweeps that interval and measures what staleness
    costs: setup failures (bandwidth promised by an old advertisement but
    gone on arrival), acceptance, fault-tolerance and advertisement
    traffic — the freshness/overhead trade-off implied by §3's remark
    that extended link-state packets "introduce additional routing
    traffic". *)

type row = {
  min_lsa_interval : float;
  acceptance : float;
  setup_failure_rate : float;  (** setup failures per request *)
  lost_after_retries : int;
  ft : float;
  lsa_per_second : float;
  avg_stale_links : float;
}

val run :
  Config.t ->
  avg_degree:float ->
  traffic:Config.traffic ->
  lambda:float ->
  ?intervals:float list ->
  unit ->
  row list
(** Default intervals: 0 (fresh), 1, 5, 30, 120 seconds. *)

val pp : Format.formatter -> row list -> unit

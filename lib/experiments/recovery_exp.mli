(** Extension E1: dynamic failure recovery — DRTP vs reactive restoration.

    The paper motivates DRTP by the weaknesses of reactive restoration
    (§1): no recovery guarantee under resource contention and multi-second
    restoration latencies.  This experiment loads the network to a target
    λ, then injects a series of single-edge failures (repairing each before
    the next, per the paper's single-failure assumption) and measures, for
    DRTP with each routing scheme and for the reactive baseline:

    - recovery success ratio;
    - recovery latency (detection + reporting + switch/re-establishment);
    - for DRTP, how often step 4 managed to re-protect the survivors. *)

type row = {
  label : string;
  failures_injected : int;
  affected : int;
  recovered : int;
  recovery_ratio : float;
  latency_mean_ms : float;
  latency_p99_ms : float;
  reprotected : int;  (** DRTP: promoted connections that got a new backup *)
  retries_total : int;  (** reactive: total retry attempts *)
}

val run :
  Config.t ->
  avg_degree:float ->
  traffic:Config.traffic ->
  lambda:float ->
  ?failures:int ->
  ?seed:int ->
  unit ->
  row list
(** One row per approach: DRTP/D-LSR, DRTP/P-LSR, SFI-style local detour
    (splice a min-hop detour around the failure at the detecting router —
    the §1 related-work alternative), and reactive end-to-end
    re-establishment.  Each approach replays the same scenario and suffers
    the same failure sequence. *)

val pp : Format.formatter -> row list -> unit
